package bimode_test

// One benchmark per table and figure of the paper, plus the ablation
// benches DESIGN.md calls out and raw predictor-throughput benches.
//
// The per-figure benchmarks run the experiment drivers at a reduced
// dynamic budget (benchDynamic branches per workload) so `go test
// -bench=.` finishes on a laptop; they report the headline rates as
// custom metrics (mispredict percentages, interruption counts). Full-
// scale regeneration is `go run ./cmd/paper`, whose output EXPERIMENTS.md
// records.

import (
	"fmt"
	"sync"
	"testing"

	"bimode"
	"bimode/internal/analysis"
	"bimode/internal/baselines"
	"bimode/internal/core"
	"bimode/internal/experiments"
	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/synth"
	"bimode/internal/trace"
	"bimode/internal/workloads"
)

const benchDynamic = 300000

var benchCfg = experiments.Config{Dynamic: benchDynamic, MinSizeBits: 10, MaxSizeBits: 13}

// benchSource caches materialized workloads across benchmarks.
var benchSource = func() func(name string) trace.Source {
	var mu sync.Mutex
	cache := map[string]trace.Source{}
	return func(name string) trace.Source {
		mu.Lock()
		defer mu.Unlock()
		if s, ok := cache[name]; ok {
			return s
		}
		s := trace.Materialize(workloads.MustGet(name, workloads.Options{Dynamic: benchDynamic}))
		cache[name] = s
		return s
	}
}()

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table1()) != 6 {
			b.Fatal("table 1 incomplete")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(experiments.Config{Dynamic: benchDynamic})
		if len(rows) != 14 {
			b.Fatal("table 2 incomplete")
		}
	}
}

// BenchmarkFigure2 runs the full three-scheme size sweep (both suites)
// and reports the suite-average rates at the largest size.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := experiments.Figures234(benchCfg)
		last := len(f.SPECAvg.BiMode) - 1
		b.ReportMetric(100*f.SPECAvg.Gshare1PHT[last], "spec-1PHT-%")
		b.ReportMetric(100*f.SPECAvg.GshareBest[last], "spec-best-%")
		b.ReportMetric(100*f.SPECAvg.BiMode[last], "spec-bimode-%")
		b.ReportMetric(100*f.IBSAvg.BiMode[last], "ibs-bimode-%")
	}
}

// BenchmarkFigure3 sweeps the six SPEC benchmarks individually.
func BenchmarkFigure3(b *testing.B) {
	benchFigPanels(b, synth.SuiteSPEC)
}

// BenchmarkFigure4 sweeps the eight IBS benchmarks individually.
func BenchmarkFigure4(b *testing.B) {
	benchFigPanels(b, synth.SuiteIBS)
}

func benchFigPanels(b *testing.B, suite string) {
	sources := experiments.SuiteSources(suite, benchCfg)
	for i := 0; i < b.N; i++ {
		const s = 12
		sweep := sim.SweepGshare(s, sources)
		best := sim.PickBestGshare(s, sweep)
		jobs := make([]sim.Job, len(sources))
		for j, src := range sources {
			jobs[j] = sim.Job{
				Make:   func() predictor.Predictor { return core.MustNew(core.DefaultConfig(s - 1)) },
				Source: src,
			}
		}
		bm := sim.RunAll(jobs)
		b.ReportMetric(100*sim.AverageRate(sweep[s]), "1PHT-%")
		b.ReportMetric(100*best.AvgRate, "best-%")
		b.ReportMetric(100*sim.AverageRate(bm), "bimode-%")
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ex, err := experiments.Table3("gcc", benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*ex.WBShare, "wb-share-%")
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hist, addr, err := experiments.Figure5("gcc", benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*hist.WBArea, "hist-wb-%")
		b.ReportMetric(100*hist.NonDominantArea, "hist-nondom-%")
		b.ReportMetric(100*addr.WBArea, "addr-wb-%")
		b.ReportMetric(100*addr.NonDominantArea, "addr-nondom-%")
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bm, err := experiments.Figure6("gcc", benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*bm.DominantArea, "dom-%")
		b.ReportMetric(100*bm.WBArea, "wb-%")
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t4, err := experiments.Table4("gcc", benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		hi := t4.HistoryIndexed
		bm := t4.BiMode
		b.ReportMetric(float64(hi[0]+hi[1]+hi[2]), "gshare-changes")
		b.ReportMetric(float64(bm[0]+bm[1]+bm[2]), "bimode-changes")
	}
}

func BenchmarkFigure7(b *testing.B) {
	benchClassBreakdown(b, "gcc")
}

func BenchmarkFigure8(b *testing.B) {
	benchClassBreakdown(b, "go")
}

func benchClassBreakdown(b *testing.B, workload string) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figures78(workload, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		// Report the 1K-counter row (middle triple).
		for _, p := range pts[3:6] {
			b.ReportMetric(100*(p.SNT+p.ST+p.WB), p.Label+"-%")
		}
	}
}

// ---- Ablation benches (DESIGN.md section 4) ----

func ablationRate(b *testing.B, mk func() predictor.Predictor) float64 {
	b.Helper()
	srcs := []trace.Source{benchSource("gcc"), benchSource("vortex"), benchSource("groff")}
	jobs := make([]sim.Job, len(srcs))
	for i, s := range srcs {
		jobs[i] = sim.Job{Make: mk, Source: s}
	}
	return sim.AverageRate(sim.RunAll(jobs))
}

// BenchmarkAblationChoiceUpdate compares the paper's partial choice
// update against always updating the choice predictor.
func BenchmarkAblationChoiceUpdate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(9)
		partial := ablationRate(b, func() predictor.Predictor { return core.MustNew(cfg) })
		full := cfg
		full.FullChoiceUpdate = true
		fullRate := ablationRate(b, func() predictor.Predictor { return core.MustNew(full) })
		b.ReportMetric(100*partial, "partial-%")
		b.ReportMetric(100*fullRate, "full-%")
	}
}

// BenchmarkAblationBankUpdate compares selective direction-bank update
// against training both banks.
func BenchmarkAblationBankUpdate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(10)
		sel := ablationRate(b, func() predictor.Predictor { return core.MustNew(cfg) })
		both := cfg
		both.UpdateBothBanks = true
		bothRate := ablationRate(b, func() predictor.Predictor { return core.MustNew(both) })
		b.ReportMetric(100*sel, "selective-%")
		b.ReportMetric(100*bothRate, "bothbanks-%")
	}
}

// BenchmarkAblationChoiceSize varies the choice table relative to the
// direction banks (the paper uses choice == one bank).
func BenchmarkAblationChoiceSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, c := range []int{8, 10, 12} {
			rate := ablationRate(b, func() predictor.Predictor {
				return core.MustNew(core.Config{ChoiceBits: c, BankBits: 10, HistoryBits: 10})
			})
			b.ReportMetric(100*rate, fmt.Sprintf("choice%d-%%", c))
		}
	}
}

// BenchmarkExtensionRivals compares bi-mode against the other de-aliasing
// designs ([Lee97] comparison) at roughly 2 KB budgets.
func BenchmarkExtensionRivals(b *testing.B) {
	rivals := []struct {
		label string
		mk    func() predictor.Predictor
	}{
		{"bimode", func() predictor.Predictor { return core.MustNew(core.DefaultConfig(12)) }},
		{"gshare", func() predictor.Predictor { return baselines.NewGshare(13, 13) }},
		{"agree", func() predictor.Predictor { return baselines.NewAgree(13, 13, 11) }},
		{"e-gskew", func() predictor.Predictor { return baselines.NewGskew(12, 12, true) }},
		{"yags", func() predictor.Predictor { return baselines.NewYAGS(12, 11, 11, 6) }},
	}
	for i := 0; i < b.N; i++ {
		for _, r := range rivals {
			b.ReportMetric(100*ablationRate(b, r.mk), r.label+"-%")
		}
	}
}

// BenchmarkStudyOverhead measures the two-pass Section 4 analysis.
func BenchmarkStudyOverhead(b *testing.B) {
	src := benchSource("gcc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := analysis.RunStudy(func() predictor.Predictor { return baselines.NewGshare(8, 8) }, src)
		if err != nil {
			b.Fatal(err)
		}
		if st.Branches == 0 {
			b.Fatal("empty study")
		}
	}
}

// ---- Raw predictor throughput (predict+update per branch) ----

func BenchmarkPredictorThroughput(b *testing.B) {
	specs := []string{
		"smith:a=12", "gshare:i=12,h=12", "bimode:b=11",
		"agree:i=12,h=12,b=10", "gskew:b=11,h=11,p=1", "yags:c=11,e=10,h=10,t=6",
		"pas:b=10,h=8,s=2",
	}
	src := benchSource("gcc").(*trace.Memory)
	recs := src.Records()
	for _, spec := range specs {
		spec := spec
		b.Run(spec, func(b *testing.B) {
			p, err := bimode.NewPredictor(spec)
			if err != nil {
				b.Fatal(err)
			}
			miss := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := recs[i%len(recs)]
				if p.Predict(r.PC) != r.Taken {
					miss++
				}
				p.Update(r.PC, r.Taken)
			}
			b.ReportMetric(float64(miss)/float64(b.N)*100, "miss-%")
		})
	}
}

// BenchmarkFetchEngine runs the full front end (direction + BTB + RAS)
// over a control-flow trace.
func BenchmarkFetchEngine(b *testing.B) {
	src, err := bimode.ControlWorkload("perl", bimode.WorkloadOptions{Dynamic: benchDynamic})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		eng := bimode.NewFetchEngine(bimode.FetchConfig{
			Direction:  core.MustNew(core.DefaultConfig(11)),
			BTBSetBits: 9, BTBWays: 4, BTBTagBits: 8, RASSize: 16,
		})
		m := eng.Run(src)
		b.ReportMetric(m.BubblesPerKiloEvent(), "bubbles/1k")
		b.ReportMetric(100*m.DirectionRate(), "dir-miss-%")
	}
}

// BenchmarkResolutionLag measures update-latency sensitivity.
func BenchmarkResolutionLag(b *testing.B) {
	src := benchSource("gcc")
	for i := 0; i < b.N; i++ {
		for _, lag := range []int{0, 8, 32} {
			r := sim.RunDelayed(core.MustNew(core.DefaultConfig(11)), src, lag)
			b.ReportMetric(100*r.MispredictRate(), fmt.Sprintf("lag%d-%%", lag))
		}
	}
}

// BenchmarkInterference runs the conflict/capacity decomposition.
func BenchmarkInterference(b *testing.B) {
	src := benchSource("gcc")
	for i := 0; i < b.N; i++ {
		gs, err := analysis.MeasureInterference(baselines.NewGshare(12, 12), src)
		if err != nil {
			b.Fatal(err)
		}
		bm, err := analysis.MeasureInterference(core.MustNew(core.DefaultConfig(11)), src)
		if err != nil {
			b.Fatal(err)
		}
		_, gsConf, _ := gs.Rates()
		_, bmConf, _ := bm.Rates()
		b.ReportMetric(100*gsConf, "gshare-conflict-%")
		b.ReportMetric(100*bmConf, "bimode-conflict-%")
	}
}

// BenchmarkTraceGeneration measures the synthetic workload generator.
func BenchmarkTraceGeneration(b *testing.B) {
	prof, _ := synth.ProfileByName("gcc")
	prof = prof.WithDynamic(benchDynamic)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := synth.MustWorkload(prof).Stream()
		n := 0
		for {
			if _, ok := st.Next(); !ok {
				break
			}
			n++
		}
		if n != benchDynamic {
			b.Fatal("short stream")
		}
	}
	b.ReportMetric(float64(benchDynamic), "branches/op")
}
