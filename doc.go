// Package bimode is a Go reproduction of "The Bi-Mode Branch Predictor"
// (Lee, Chen, and Mudge, MICRO-30, 1997): the bi-mode predictor itself,
// every baseline predictor the paper measures against, trace-driven
// simulation, calibrated synthetic stand-ins for the paper's SPEC CINT95
// and IBS-Ultrix workloads, and the Section 4 bias-class analysis.
//
// This root package is the public facade: it re-exports the pieces a
// downstream user needs to build predictors, run workloads, and measure
// accuracy. The implementation lives under internal/ (one package per
// subsystem; see DESIGN.md for the inventory), the runnable experiment
// drivers under cmd/, and worked examples under examples/.
//
// # Quick start
//
//	src, _ := bimode.Workload("gcc", bimode.WorkloadOptions{})
//	p := bimode.DefaultBiMode(11) // 2^11-counter banks, 1.5 KB total
//	res := bimode.Run(p, src)
//	fmt.Printf("%s on %s: %.2f%% mispredict\n",
//		p.Name(), src.Name(), 100*res.MispredictRate())
//
// To compare against the paper's baselines, construct predictors from
// spec strings ("gshare:i=12,h=12", "smith:a=12", "agree:i=12,h=12",
// ...) with NewPredictor, or implement the Predictor interface directly
// and feed it to Run.
//
// To regenerate the paper's tables and figures, run:
//
//	go run ./cmd/paper
package bimode
