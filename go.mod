module bimode

go 1.22
