package main

import "testing"

func TestStudyGshare(t *testing.T) {
	if err := run([]string{"-w", "xlisp", "-p", "gshare:i=8,h=8", "-n", "30000"}); err != nil {
		t.Fatal(err)
	}
}

func TestStudyBiMode(t *testing.T) {
	if err := run([]string{"-w", "compress", "-p", "bimode:b=7", "-n", "30000"}); err != nil {
		t.Fatal(err)
	}
}

func TestStudyErrors(t *testing.T) {
	cases := [][]string{
		{"-w", "bogus"},
		{"-w", "xlisp", "-p", "bogus"},
		{"-w", "xlisp", "-p", "taken"}, // not Indexed
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
