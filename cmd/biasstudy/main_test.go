package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestStudyGshare is the smoke test: the Section 4 study on a tiny
// workload must render every section of the report.
func TestStudyGshare(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-w", "xlisp", "-p", "gshare:i=8,h=8", "-n", "30000"}, &buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"gshare.1PHT(8) on xlisp", "% mispredict",
		"bias breakdown", "dominant", "WB",
		"misprediction by bias class", "bias-class interruptions",
		"most contended counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if !strings.Contains(text, "#") {
		t.Error("output has no rendered bars")
	}
}

func TestStudyBiMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-w", "compress", "-p", "bimode:b=7", "-n", "30000"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bi-mode(7c,7b,7h) on compress") {
		t.Error("output missing study header")
	}
}

func TestStudyErrors(t *testing.T) {
	cases := [][]string{
		{"-w", "bogus"},
		{"-w", "xlisp", "-p", "bogus"},
		{"-w", "xlisp", "-p", "taken"}, // not Indexed
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
