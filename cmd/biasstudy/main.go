// Command biasstudy runs the Section 4 bias-class analysis for one
// predictor over one workload: area shares (Figures 5-6), the most
// contended counter's normalized counts (Table 3), bias-class
// interruption counts (Table 4), and misprediction attributed to each
// class (Figures 7-8).
//
// Usage:
//
//	biasstudy -w gcc -p 'gshare:i=8,h=8'
//	biasstudy -w go -p 'bimode:b=9' -n 2000000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bimode/internal/analysis"
	"bimode/internal/predictor"
	"bimode/internal/textplot"
	"bimode/internal/trace"
	"bimode/internal/workloads"
	"bimode/internal/zoo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "biasstudy:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("biasstudy", flag.ContinueOnError)
	var (
		wl      = fs.String("w", "gcc", "workload name")
		spec    = fs.String("p", "gshare:i=8,h=8", "predictor spec (must expose counter indices)")
		dynamic = fs.Int("n", 0, "dynamic branches (0 = calibrated default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, err := workloads.Get(*wl, workloads.Options{Dynamic: *dynamic})
	if err != nil {
		return err
	}
	mat := trace.Materialize(src)
	if _, err := zoo.New(*spec); err != nil {
		return err
	}
	study, err := analysis.RunStudy(func() predictor.Predictor { return zoo.MustNew(*spec) }, mat)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "%s on %s: %d branches, %.2f%% mispredict, %d counters touched, %d substreams\n\n",
		study.Predictor, study.Workload, study.Branches,
		100*study.MispredictRate(), len(study.Counters), len(study.Substreams))

	d, nd, w := study.AreaShares()
	fmt.Fprintln(out, "bias breakdown (dynamic-weighted area shares, cf. Figures 5-6):")
	fmt.Fprintln(out, textplot.Bar("dominant", d, 40))
	fmt.Fprintln(out, textplot.Bar("non-dominant", nd, 40))
	fmt.Fprintln(out, textplot.Bar("WB", w, 40))

	fmt.Fprintln(out, "\nmisprediction by bias class (cf. Figures 7-8):")
	for _, c := range []analysis.Class{analysis.SNT, analysis.ST, analysis.WB} {
		fmt.Fprintln(out, textplot.Bar(c.String(), study.ClassRate(c), 40))
	}

	fmt.Fprintf(out, "\nbias-class interruptions (cf. Table 4): dominant=%d non-dominant=%d WB=%d\n",
		study.Interruptions[analysis.CatDominant],
		study.Interruptions[analysis.CatNonDominant],
		study.Interruptions[analysis.CatWB])

	pcs := map[uint32]uint64{}
	st := mat.Stream()
	for {
		r, ok := st.Next()
		if !ok {
			break
		}
		if _, seen := pcs[r.Static]; !seen {
			pcs[r.Static] = r.PC &^ (1 << 63)
		}
	}
	if ex, ok := analysis.FindExample(study, func(s uint32) uint64 { return pcs[s] }); ok {
		fmt.Fprintf(out, "\nmost contended counter (cf. Table 3): counter %d, dominant %s %.1f%%, WB %.1f%%\n",
			ex.Counter, ex.DominantClass, 100*ex.DominantShare, 100*ex.WBShare)
		rows := ex.Rows
		if len(rows) > 8 {
			rows = rows[:8]
		}
		for _, r := range rows {
			fmt.Fprintf(out, "  pc=0x%-8x count=%-8d taken=%-8d class=%-4s normalized=%5.1f%%\n",
				r.PC, r.Count, r.Taken, r.Class, 100*r.Normalized)
		}
	}
	return nil
}
