package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateAndInfo(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.trace")
	if err := run([]string{"-w", "verilog", "-n", "10000", "-o", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-info", path}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-w", "verilog"},
		{"-o", "/tmp/x.trace"},
		{"-w", "bogus", "-o", filepath.Join(t.TempDir(), "y.trace")},
		{"-info", "/nonexistent-file.trace"},
		{"-w", "verilog", "-n", "100", "-o", "/nonexistent-dir/zzz/x.trace"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestProgramWorkloadTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.trace")
	if err := run([]string{"-w", "lzw", "-n", "5000", "-o", path, "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-info", path}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONProfileTrace(t *testing.T) {
	dir := t.TempDir()
	prof := filepath.Join(dir, "mine.json")
	if err := os.WriteFile(prof, []byte(`{"name":"mine","statics":200,"dynamic":8000}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "mine.trace")
	if err := run([]string{"-w", prof, "-o", out}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-info", out}); err != nil {
		t.Fatal(err)
	}
	// Invalid profile must fail.
	if err := os.WriteFile(prof, []byte(`{"statics":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-w", prof, "-o", out}); err == nil {
		t.Fatalf("invalid profile must fail")
	}
}
