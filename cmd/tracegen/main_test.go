package main

import (
	"bimode/internal/trace"

	"os"
	"path/filepath"
	"testing"
)

func TestGenerateAndInfo(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.trace")
	if err := run([]string{"-w", "verilog", "-n", "10000", "-o", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-info", path}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-w", "verilog"},
		{"-o", "/tmp/x.trace"},
		{"-w", "bogus", "-o", filepath.Join(t.TempDir(), "y.trace")},
		{"-info", "/nonexistent-file.trace"},
		{"-w", "verilog", "-n", "100", "-o", "/nonexistent-dir/zzz/x.trace"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestProgramWorkloadTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.trace")
	if err := run([]string{"-w", "lzw", "-n", "5000", "-o", path, "-seed", "9"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-info", path}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONProfileTrace(t *testing.T) {
	dir := t.TempDir()
	prof := filepath.Join(dir, "mine.json")
	if err := os.WriteFile(prof, []byte(`{"name":"mine","statics":200,"dynamic":8000}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "mine.trace")
	if err := run([]string{"-w", prof, "-o", out}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-info", out}); err != nil {
		t.Fatal(err)
	}
	// Invalid profile must fail.
	if err := os.WriteFile(prof, []byte(`{"statics":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-w", prof, "-o", out}); err == nil {
		t.Fatalf("invalid profile must fail")
	}
}

func TestColumnarFormat(t *testing.T) {
	dir := t.TempDir()
	row := filepath.Join(dir, "w.trace")
	col := filepath.Join(dir, "w.bmc")
	if err := run([]string{"-w", "verilog", "-n", "10000", "-o", row}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-w", "verilog", "-n", "10000", "-format", "columnar", "-o", col}); err != nil {
		t.Fatal(err)
	}
	// -info sniffs both formats and must agree on the statistics.
	if err := run([]string{"-info", col}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(row)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(col)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := trace.Decode(a)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := trace.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Len() != mb.Len() || ma.Name() != mb.Name() || ma.StaticCount() != mb.StaticCount() {
		t.Fatalf("formats disagree: (%q,%d,%d) vs (%q,%d,%d)",
			ma.Name(), ma.StaticCount(), ma.Len(), mb.Name(), mb.StaticCount(), mb.Len())
	}
	for i := range ma.Records() {
		if ma.Records()[i] != mb.Records()[i] {
			t.Fatalf("record %d differs between formats", i)
		}
	}
	if err := run([]string{"-w", "verilog", "-n", "100", "-format", "bogus", "-o", col}); err == nil {
		t.Fatalf("unknown format accepted")
	}
	if err := run([]string{"-w", "verilog", "-n", "100", "-format", "columnar", "-block", "0", "-o", col}); err == nil {
		t.Fatalf("bad block size accepted")
	}
}
