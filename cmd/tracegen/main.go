// Command tracegen generates, saves, and inspects branch traces in the
// repository's binary format, so expensive workloads can be generated
// once and replayed from disk.
//
// Usage:
//
//	tracegen -w gcc -o gcc.trace
//	tracegen -w gcc -format columnar -o gcc.bmc
//	tracegen -info gcc.trace              # sniffs either binary format
//	tracegen -w playout -n 1000000 -o playout.trace
//	tracegen -w mine.json -o mine.trace   # user-defined profile
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bimode/internal/synth"
	"bimode/internal/trace"
	"bimode/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		wl      = fs.String("w", "", "workload to generate")
		out     = fs.String("o", "", "output trace file")
		dynamic = fs.Int("n", 0, "dynamic branches (0 = calibrated default)")
		seed    = fs.Uint64("seed", 0, "workload seed override")
		format  = fs.String("format", "varint", "output format: varint (row) or columnar (block-compressed, checksummed)")
		block   = fs.Int("block", trace.DefaultColumnarBlock, "records per block for -format columnar")
		info    = fs.String("info", "", "print statistics of an existing trace file (either format) and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *info != "" {
		data, err := os.ReadFile(*info)
		if err != nil {
			return err
		}
		m, err := trace.Decode(data)
		if err != nil {
			return err
		}
		stats := trace.Collect(m)
		fmt.Printf("%s: %d static sites (%d declared), %d dynamic branches, %.1f%% taken\n",
			stats.Name, stats.StaticBranches, m.StaticCount(), stats.DynamicBranches, 100*stats.TakenRate())
		return nil
	}

	if *wl == "" || *out == "" {
		return fmt.Errorf("need -w <workload> and -o <file> (or -info <file>)")
	}
	var src trace.Source
	if strings.HasSuffix(*wl, ".json") {
		f, err := os.Open(*wl)
		if err != nil {
			return err
		}
		prof, err := synth.ReadProfile(f)
		f.Close()
		if err != nil {
			return err
		}
		if *dynamic > 0 {
			prof = prof.WithDynamic(*dynamic)
		}
		if *seed != 0 {
			prof = prof.WithSeed(*seed)
		}
		src, err = synth.NewWorkload(prof)
		if err != nil {
			return err
		}
	} else {
		var err error
		src, err = workloads.Get(*wl, workloads.Options{Dynamic: *dynamic, Seed: *seed})
		if err != nil {
			return err
		}
	}
	m := trace.Materialize(src)
	var encode func(f *os.File) error
	switch *format {
	case "varint":
		encode = func(f *os.File) error { return trace.Write(f, m) }
	case "columnar":
		encode = func(f *os.File) error { return trace.WriteColumnarBlocks(f, m, *block) }
	default:
		return fmt.Errorf("unknown -format %q (want varint or columnar)", *format)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d branches, %d bytes (%.2f bytes/branch)\n",
		*out, m.Len(), st.Size(), float64(st.Size())/float64(m.Len()))
	return nil
}
