// Command obsreport runs predictors through the instrumented simulation
// tier (sim.Observe) and renders the resulting sim.Reports: the aliasing
// breakdown behind the paper's Section 4 argument (destructive / neutral /
// constructive), choice-vs-bank agreement for bi-mode-family predictors,
// the hardest-to-predict static branches (H2P top-N), and engine
// throughput. The report bundle can be written as JSON for archival and
// regression diffing, and -http exposes expvar (/debug/vars, including
// the sim_observed_* counters) and pprof endpoints while it runs.
//
// Usage:
//
//	obsreport -w gcc -p 'bimode:b=10,gshare:i=11;h=11'
//	obsreport -w all-spec -p bimode:b=9 -n 200000 -o report.json
//	obsreport -w go -p trimode:b=9 -http localhost:6060
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"bimode/internal/experiments"
	_ "bimode/internal/faults" // registers sim_faults_injected for the counters block
	"bimode/internal/sim"
	"bimode/internal/synth"
	"bimode/internal/textplot"
	"bimode/internal/trace"
	"bimode/internal/workloads"
	"bimode/internal/zoo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}

// Bundle is the JSON document -o writes: every completed report of the
// invocation, plus one annotation per (spec, workload) cell that failed.
type Bundle struct {
	Reports []sim.Report `json:"reports"`
	Errors  []string     `json:"errors,omitempty"`
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("obsreport", flag.ContinueOnError)
	var (
		wl         = fs.String("w", "gcc", "workloads: comma list, or all-spec / all-ibs")
		specsArg   = fs.String("p", "bimode:b=10,gshare:i=11;h=11", "comma-separated predictor specs (use ';' for spec-internal separators)")
		dynamic    = fs.Int("n", 0, "dynamic branches per workload (0 = calibrated default)")
		topN       = fs.Int("top", 10, "H2P ranking length per report")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for the report grid (0 = sequential reference path)")
		outFile    = fs.String("o", "", "write the report bundle as JSON to this file")
		httpAddr   = fs.String("http", "", "serve expvar/pprof debug endpoints on this address while running (e.g. localhost:6060)")
		jobTimeout = fs.Duration("job-timeout", 0, "per-report deadline (0 = none); timed-out reports are retried per -retries")
		retries    = fs.Int("retries", 0, "retry budget per report for transient failures")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Suite workload generation panics through a Must-materialization on
	// cancellation; degrade that to a clean error like any failed cell.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("obsreport aborted: %v", r)
		}
	}()

	if *httpAddr != "" {
		ln, err := startDebugServer(*httpAddr)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Fprintf(out, "debug endpoints at http://%s/debug/vars and /debug/pprof/\n\n", ln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	sched := sim.NewScheduler(*parallel).WithContext(ctx)
	if *jobTimeout > 0 || *retries > 0 {
		sched = sched.WithPolicy(sim.Policy{
			JobTimeout: *jobTimeout,
			MaxRetries: *retries,
			Backoff:    100 * time.Millisecond,
		})
	}
	cfg := experiments.Config{Dynamic: *dynamic, Sched: sched}
	var sources []trace.Source
	switch *wl {
	case "all-spec":
		sources = experiments.SuiteSources(synth.SuiteSPEC, cfg)
	case "all-ibs":
		sources = experiments.SuiteSources(synth.SuiteIBS, cfg)
	default:
		for _, name := range strings.Split(*wl, ",") {
			src, err := workloads.Get(strings.TrimSpace(name), workloads.Options{Dynamic: *dynamic})
			if err != nil {
				return err
			}
			sources = append(sources, trace.Materialize(src))
		}
	}

	var specs []string
	for _, raw := range strings.Split(*specsArg, ",") {
		spec := strings.ReplaceAll(strings.TrimSpace(raw), ";", ",")
		if spec == "" {
			continue
		}
		if _, err := zoo.New(spec); err != nil {
			return err
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return fmt.Errorf("no specs to run")
	}

	// Collect the (spec, workload) grid through the scheduler into indexed
	// slots, then render in grid order — output is identical at any -parallel.
	// A failed cell (timeout, cancellation, panic) degrades to an annotated
	// gap; the completed reports still render and the bundle records the
	// failures instead of the whole invocation aborting.
	grid := make([]sim.Report, len(specs)*len(sources))
	errs := sched.DoContext(len(grid), func(ctx context.Context, k int) error {
		spec, src := specs[k/len(sources)], sources[k%len(sources)]
		rep, err := sim.ObserveContext(ctx, zoo.MustNew(spec), src, sim.ObserveOptions{TopN: *topN})
		if err != nil {
			return err
		}
		grid[k] = *rep
		return nil
	})
	var bundle Bundle
	for k := range grid {
		if errs[k] != nil {
			spec, src := specs[k/len(sources)], sources[k%len(sources)]
			bundle.Errors = append(bundle.Errors, fmt.Sprintf("%s on %s: %v", spec, src.Name(), errs[k]))
			continue
		}
		bundle.Reports = append(bundle.Reports, grid[k])
	}
	for i := range bundle.Reports {
		renderReport(out, &bundle.Reports[i])
	}
	if len(bundle.Errors) > 0 {
		fmt.Fprint(out, experiments.RenderFootnotes(bundle.Errors))
	}
	renderCounters(out)

	if *outFile != "" {
		data, err := json.MarshalIndent(bundle, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(*outFile, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d reports to %s\n", len(bundle.Reports), *outFile)
	}
	if len(bundle.Errors) > 0 {
		return fmt.Errorf("%d of %d reports did not complete", len(bundle.Errors), len(grid))
	}
	return nil
}

// renderCounters prints the scheduler/fault expvars, so a terminal run
// surfaces the same runtime counters -http exposes at /debug/vars.
func renderCounters(out io.Writer) {
	fmt.Fprintf(out, "runtime counters:")
	for _, name := range []string{
		"sim_sched_jobs_inflight", "sim_sched_jobs_completed",
		"sim_sched_retries", "sim_sched_cancelled", "sim_faults_injected",
	} {
		val := "0"
		if v := expvar.Get(name); v != nil {
			val = v.String()
		}
		fmt.Fprintf(out, " %s=%s", strings.TrimPrefix(name, "sim_"), val)
	}
	fmt.Fprintln(out)
}

// renderReport draws one report for a terminal.
func renderReport(out io.Writer, r *sim.Report) {
	fmt.Fprintf(out, "%s on %s: %d branches (%d static), %.2f%% mispredict, %.1f Mbr/s instrumented\n",
		r.Predictor, r.Workload, r.Branches, r.StaticBranches,
		100*r.MispredictRate, r.BranchesPerSec/1e6)

	if m := r.Interference; m != nil && r.Branches > 0 {
		n := float64(r.Branches)
		fmt.Fprintf(out, "aliasing over %d counters (shares of all accesses; %.1f%% aliased, %.1f%% cold):\n",
			m.Counters, 100*float64(m.Aliased)/n, 100*float64(m.Cold)/n)
		fmt.Fprintln(out, textplot.Bar("destructive", float64(m.Destructive)/n, 40))
		fmt.Fprintln(out, textplot.Bar("neutral", float64(m.Neutral)/n, 40))
		fmt.Fprintln(out, textplot.Bar("constructive", float64(m.Constructive)/n, 40))
	}
	if c := r.Choice; c != nil && c.Branches > 0 {
		n := float64(c.Branches)
		fmt.Fprintf(out, "choice: agrees with outcome %.1f%%, prediction follows choice %.1f%%, partial-update holds %.1f%%\n",
			100*float64(c.AgreeOutcome)/n, 100*float64(c.PredictionAgrees)/n, 100*float64(c.PartialHold)/n)
		if len(c.BankUse) > 0 {
			fmt.Fprintf(out, "bank use:")
			for b, cnt := range c.BankUse {
				fmt.Fprintf(out, " bank%d=%.1f%%", b, 100*float64(cnt)/n)
			}
			fmt.Fprintln(out)
		}
	}
	if len(r.TopBranches) > 0 {
		fmt.Fprintf(out, "hardest branches (%.1f%% of all mispredictions):\n", 100*r.TopShare)
		for _, b := range r.TopBranches {
			fmt.Fprintf(out, "  pc=0x%-10x static=%-6d count=%-8d taken=%-8d miss=%-8d rate=%5.1f%%\n",
				b.PC, b.Static, b.Count, b.Taken, b.Mispredicts, 100*b.MissRate)
		}
	}
	fmt.Fprintln(out)
}

// startDebugServer serves http.DefaultServeMux — where net/http/pprof and
// expvar register themselves — on addr until the listener closes.
func startDebugServer(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	go srv.Serve(ln)
	return ln, nil
}
