package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestObsreportSmoke(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "report.json")
	var buf bytes.Buffer
	err := run([]string{"-w", "xlisp,compress", "-p", "bimode:b=8,gshare:i=9;h=9",
		"-n", "20000", "-top", "4", "-o", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"bi-mode(8c,8b,8h) on xlisp", "gshare.1PHT(9) on compress",
		"destructive", "neutral", "constructive",
		"choice: agrees with outcome", "hardest branches", "wrote 4 reports",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var bundle Bundle
	if err := json.Unmarshal(data, &bundle); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(bundle.Reports) != 4 {
		t.Fatalf("got %d reports, want 4", len(bundle.Reports))
	}
	for _, r := range bundle.Reports {
		if r.Branches != 20000 {
			t.Errorf("%s/%s: branches = %d, want 20000", r.Predictor, r.Workload, r.Branches)
		}
		if r.Interference == nil {
			t.Errorf("%s/%s: no interference metrics", r.Predictor, r.Workload)
		}
		if len(r.TopBranches) == 0 || len(r.TopBranches) > 4 {
			t.Errorf("%s/%s: top branches length %d", r.Predictor, r.Workload, len(r.TopBranches))
		}
		if r.BranchesPerSec <= 0 {
			t.Errorf("%s/%s: missing throughput", r.Predictor, r.Workload)
		}
	}
}

func TestObsreportDebugEndpoints(t *testing.T) {
	ln, err := startDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Run something instrumented so the expvar counters are non-zero.
	if err := run([]string{"-w", "sortbench", "-p", "smith:a=8", "-n", "5000"}, io.Discard); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", ln.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	vars := get("/debug/vars")
	for _, name := range []string{"sim_observed_runs", "sim_observed_branches", "sim_observed_mispredicts"} {
		if !strings.Contains(vars, name) {
			t.Errorf("/debug/vars missing %s", name)
		}
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(vars), &parsed); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if n, ok := parsed["sim_observed_branches"].(float64); !ok || n < 5000 {
		t.Errorf("sim_observed_branches = %v, want >= 5000", parsed["sim_observed_branches"])
	}
	if !strings.Contains(get("/debug/pprof/cmdline"), string(filepath.Separator)) {
		t.Error("/debug/pprof/cmdline returned no path")
	}
}

func TestObsreportErrors(t *testing.T) {
	cases := [][]string{
		{"-w", "bogus-bench"},
		{"-p", "warlock:x=1", "-w", "sortbench", "-n", "1000"},
		{"-p", "", "-w", "sortbench", "-n", "1000"},
		{"-http", "256.0.0.1:bad"},
		{"-bogusflag"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

// TestObsreportDegradedRun pins graceful degradation: reports that blow
// their per-job deadline (1ns has always elapsed by the first
// cooperative check, however fast the engine gets) become annotated gaps
// and a non-zero exit, and the runtime-counters block still renders.
func TestObsreportDegradedRun(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-w", "xlisp", "-p", "bimode:b=8,smith:a=8",
		"-n", "500000", "-job-timeout", "1ns"}, &buf)
	if err == nil {
		t.Fatal("degraded run must exit non-zero")
	}
	text := buf.String()
	for _, want := range []string{"did not complete", "[!]", "deadline",
		"runtime counters:", "sched_cancelled=", "faults_injected="} {
		if !strings.Contains(text, want) {
			t.Errorf("degraded output missing %q:\n%s", want, text)
		}
	}
}

// TestObsreportCountersBlock: a healthy run surfaces the scheduler and
// fault expvars on the terminal, not just at /debug/vars.
func TestObsreportCountersBlock(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-w", "sortbench", "-p", "smith:a=8", "-n", "5000"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"runtime counters:", "sched_jobs_completed=",
		"sched_retries=", "sched_cancelled=", "faults_injected="} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
