// Command bimodesim runs one or more predictors over one or more workloads
// and prints the misprediction rate and hardware cost of every pairing.
//
// Usage:
//
//	bimodesim [-n branches] [-seed s] -w gcc,go -p bimode:b=11,gshare:i=12
//	bimodesim -list
//
// Workloads are the fourteen calibrated synthetic benchmarks (SPEC CINT95
// and IBS-Ultrix stand-ins), the instrumented programs, a binary trace
// file produced by tracegen (prefix with @, e.g. -w @gcc.trace), or a
// user-defined profile (any name ending in .json; see synth.ReadProfile
// for the schema).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/synth"
	"bimode/internal/trace"
	"bimode/internal/workloads"
	"bimode/internal/zoo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bimodesim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bimodesim", flag.ContinueOnError)
	var (
		workloadList = fs.String("w", "gcc", "comma-separated workload names, or @file for a saved trace")
		predList     = fs.String("p", "bimode:b=11;gshare:i=12,h=12", "semicolon-separated predictor specs")
		branches     = fs.Int("n", 0, "override dynamic branch count per workload (0 = profile default)")
		seed         = fs.Uint64("seed", 0, "override workload seed (0 = profile default)")
		parallel     = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for the job grid (0 = sequential reference path)")
		list         = fs.Bool("list", false, "list available workloads and predictor specs, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println("workloads:")
		for _, name := range workloads.Names() {
			fmt.Println("  " + name)
		}
		fmt.Println("predictor spec examples:")
		for _, s := range zoo.Known() {
			fmt.Println("  " + s)
		}
		return nil
	}

	var sources []trace.Source
	for _, name := range strings.Split(*workloadList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if path, ok := strings.CutPrefix(name, "@"); ok {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			m, err := trace.Read(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("reading %s: %w", path, err)
			}
			sources = append(sources, m)
			continue
		}
		if strings.HasSuffix(name, ".json") {
			f, err := os.Open(name)
			if err != nil {
				return err
			}
			prof, err := synth.ReadProfile(f)
			f.Close()
			if err != nil {
				return err
			}
			if *branches > 0 {
				prof = prof.WithDynamic(*branches)
			}
			if *seed != 0 {
				prof = prof.WithSeed(*seed)
			}
			w, err := synth.NewWorkload(prof)
			if err != nil {
				return err
			}
			sources = append(sources, w)
			continue
		}
		src, err := workloads.Get(name, workloads.Options{Dynamic: *branches, Seed: *seed})
		if err != nil {
			return err
		}
		sources = append(sources, src)
	}
	if len(sources) == 0 {
		return fmt.Errorf("no workloads selected")
	}

	var makes []func() predictor.Predictor
	for _, spec := range strings.Split(*predList, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		if _, err := zoo.New(spec); err != nil { // validate early
			return err
		}
		spec := spec
		makes = append(makes, func() predictor.Predictor { return zoo.MustNew(spec) })
	}
	if len(makes) == 0 {
		return fmt.Errorf("no predictors selected")
	}

	var jobs []sim.Job
	for _, src := range sources {
		mat := trace.Materialize(src)
		for _, mk := range makes {
			jobs = append(jobs, sim.Job{Make: mk, Source: mat})
		}
	}
	for _, res := range sim.NewScheduler(*parallel).RunAll(jobs) {
		if res.Err != nil {
			return res.Err
		}
		fmt.Println(res)
	}
	return nil
}
