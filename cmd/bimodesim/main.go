// Command bimodesim runs one or more predictors over one or more workloads
// and prints the misprediction rate and hardware cost of every pairing.
//
// Usage:
//
//	bimodesim [-n branches] [-seed s] -w gcc,go -p bimode:b=11,gshare:i=12
//	bimodesim -w all -p bimode:b=14 -checkpoint run.ckpt   # kill and ...
//	bimodesim -w all -p bimode:b=14 -checkpoint run.ckpt -resume
//	bimodesim -list
//
// Workloads are the fourteen calibrated synthetic benchmarks (SPEC CINT95
// and IBS-Ultrix stand-ins), the instrumented programs, a binary trace
// file produced by tracegen (prefix with @, e.g. -w @gcc.trace), or a
// user-defined profile (any name ending in .json; see synth.ReadProfile
// for the schema).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/synth"
	"bimode/internal/trace"
	"bimode/internal/workloads"
	"bimode/internal/zoo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bimodesim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bimodesim", flag.ContinueOnError)
	var (
		workloadList = fs.String("w", "gcc", "comma-separated workload names, or @file for a saved trace")
		predList     = fs.String("p", "bimode:b=11;gshare:i=12,h=12", "semicolon-separated predictor specs")
		branches     = fs.Int("n", 0, "override dynamic branch count per workload (0 = profile default)")
		seed         = fs.Uint64("seed", 0, "override workload seed (0 = profile default)")
		parallel     = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for the job grid (0 = sequential reference path)")
		list         = fs.Bool("list", false, "list available workloads and predictor specs, then exit")
		jobTimeout   = fs.Duration("job-timeout", 0, "per-job deadline (0 = none); timed-out jobs are retried per -retries")
		retries      = fs.Int("retries", 0, "retry budget per job for transient failures")
		checkpoint   = fs.String("checkpoint", "", "journal completed cells to this file; rerun with -resume to continue a killed run")
		resume       = fs.Bool("resume", false, "resume from the -checkpoint file instead of truncating it")
		partEvery    = fs.Int("part-every", 1<<20, "records between mid-cell snapshots when checkpointing (0 = completed cells only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println("workloads:")
		for _, name := range workloads.Names() {
			fmt.Println("  " + name)
		}
		fmt.Println("predictor spec examples:")
		for _, s := range zoo.Known() {
			fmt.Println("  " + s)
		}
		return nil
	}

	var sources []trace.Source
	for _, name := range strings.Split(*workloadList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if path, ok := strings.CutPrefix(name, "@"); ok {
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			m, err := trace.Read(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("reading %s: %w", path, err)
			}
			sources = append(sources, m)
			continue
		}
		if strings.HasSuffix(name, ".json") {
			f, err := os.Open(name)
			if err != nil {
				return err
			}
			prof, err := synth.ReadProfile(f)
			f.Close()
			if err != nil {
				return err
			}
			if *branches > 0 {
				prof = prof.WithDynamic(*branches)
			}
			if *seed != 0 {
				prof = prof.WithSeed(*seed)
			}
			w, err := synth.NewWorkload(prof)
			if err != nil {
				return err
			}
			sources = append(sources, w)
			continue
		}
		src, err := workloads.Get(name, workloads.Options{Dynamic: *branches, Seed: *seed})
		if err != nil {
			return err
		}
		sources = append(sources, src)
	}
	if len(sources) == 0 {
		return fmt.Errorf("no workloads selected")
	}

	var makes []func() predictor.Predictor
	for _, spec := range strings.Split(*predList, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		if _, err := zoo.New(spec); err != nil { // validate early
			return err
		}
		spec := spec
		makes = append(makes, func() predictor.Predictor { return zoo.MustNew(spec) })
	}
	if len(makes) == 0 {
		return fmt.Errorf("no predictors selected")
	}

	// Sources go into the jobs unmaterialized: RunAll materializes each
	// distinct source once, through the scheduler, so generation observes
	// the cancellation context too.
	var jobs []sim.Job
	for _, src := range sources {
		for _, mk := range makes {
			jobs = append(jobs, sim.Job{Make: mk, Source: src})
		}
	}

	// An interrupt cancels the fan-out cooperatively: completed cells are
	// still printed (and journaled), the rest come back tagged.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	sched := sim.NewScheduler(*parallel).WithContext(ctx)
	if *jobTimeout > 0 || *retries > 0 {
		sched = sched.WithPolicy(sim.Policy{
			JobTimeout: *jobTimeout,
			MaxRetries: *retries,
			Backoff:    100 * time.Millisecond,
		})
	}
	if *checkpoint != "" {
		key := fmt.Sprintf("bimodesim|w=%s|p=%s|n=%d|seed=%d", *workloadList, *predList, *branches, *seed)
		j, err := openJournal(*checkpoint, key, *resume)
		if err != nil {
			return err
		}
		j.PartEvery = *partEvery
		defer j.Close()
		sched = sched.WithJournal(j)
	}

	failed, total := 0, len(jobs)
	var firstErr error
	for _, res := range sched.RunAll(jobs) {
		if res.Err != nil {
			failed++
			if firstErr == nil {
				firstErr = res.Err
			}
			fmt.Fprintf(os.Stderr, "bimodesim: [!] %s: %v\n", res.Workload, res.Err)
			continue
		}
		fmt.Println(res)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d cells did not complete (first: %w)", failed, total, firstErr)
	}
	return nil
}

// openJournal creates or resumes the checkpoint file, announcing how many
// cells a resume will serve from cache.
func openJournal(path, key string, resume bool) (*sim.Journal, error) {
	if resume {
		j, err := sim.ResumeJournal(path, key)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "bimodesim: resuming %s (%d completed cells cached)\n", path, j.Cells())
		return j, nil
	}
	return sim.CreateJournal(path, key)
}
