package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBasic(t *testing.T) {
	err := run([]string{"-w", "xlisp", "-p", "bimode:b=8;smith:a=9", "-n", "20000"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-w", "unknown-bench", "-n", "1000"},
		{"-w", "xlisp", "-p", "martian:x=1"},
		{"-w", "", "-p", "smith:a=4"},
		{"-w", "xlisp", "-p", ""},
		{"-w", "@/nonexistent.trace"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestRunFromTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	// Generate a trace with tracegen's machinery by writing one directly.
	if err := run([]string{"-w", "compress", "-n", "5000", "-p", "smith:a=6"}); err != nil {
		t.Fatal(err)
	}
	// Write a real trace file via the trace package by shelling through
	// the tracegen flow is out of scope here; instead assert that a
	// malformed file errors cleanly.
	if err := os.WriteFile(path, []byte("BMT1 garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-w", "@" + path, "-p", "smith:a=6"}); err == nil {
		t.Fatalf("malformed trace must fail")
	}
}

func TestRunWithJSONProfile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mine.json")
	profile := `{"name": "mine", "statics": 300, "dynamic": 15000, "frac_loop": 0.2, "frac_weak": 0.1}`
	if err := os.WriteFile(path, []byte(profile), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-w", path, "-p", "bimode:b=8"}); err != nil {
		t.Fatal(err)
	}
	// Malformed profile must fail cleanly.
	if err := os.WriteFile(path, []byte(`{"statics": 0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-w", path, "-p", "bimode:b=8"}); err == nil {
		t.Fatalf("invalid profile must fail")
	}
	if err := run([]string{"-w", filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatalf("missing profile file must fail")
	}
}

func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	args := []string{"-w", "xlisp,compress", "-p", "bimode:b=8;smith:a=9", "-n", "20000", "-checkpoint", ckpt}
	if err := run(args); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	// A resume of a completed run serves every cell from cache and
	// succeeds without re-simulating.
	if err := run(append(args[:len(args):len(args)], "-resume")); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	// Resuming under a different plan (another predictor set changes the
	// journal key) must refuse rather than serve mismatched cells.
	bad := []string{"-w", "xlisp,compress", "-p", "smith:a=4", "-n", "20000", "-checkpoint", ckpt, "-resume"}
	if err := run(bad); err == nil {
		t.Fatal("resume with a different plan must fail")
	}
}
