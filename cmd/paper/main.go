// Command paper regenerates every table and figure of the paper's
// evaluation section and writes the results to a directory (default
// ./results) as text reports and CSV series.
//
// Usage:
//
//	paper                  # everything, default scale (paper counts / 8)
//	paper -quick           # reduced dynamic budget for a fast smoke run
//	paper -only fig2,table4
//	paper -out mydir -n 3000000
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"bimode/internal/experiments"
	"bimode/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("paper", flag.ContinueOnError)
	var (
		out      = fs.String("out", "results", "output directory")
		only     = fs.String("only", "", "comma-separated subset: table1,table2,fig2,fig3,fig4,table3,fig5,fig6,table4,fig7,fig8,rivals,programs,ctxswitch")
		dynamic  = fs.Int("n", 0, "override dynamic branches per workload (0 = calibrated defaults)")
		quick    = fs.Bool("quick", false, "fast smoke run (600k branches per workload)")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for simulation grids (0 = sequential reference path)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Dynamic: *dynamic, Sched: sim.NewScheduler(*parallel)}
	if *quick && *dynamic == 0 {
		cfg.Dynamic = 600000
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	emit := func(name, content string) error {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Printf("==== %s ====\n%s\n", name, content)
		return nil
	}

	start := time.Now()

	if sel("table1") {
		if err := emit("table1.txt", experiments.RenderTable1(experiments.Table1())); err != nil {
			return err
		}
	}
	if sel("table2") {
		if err := emit("table2.txt", experiments.RenderTable2(experiments.Table2(cfg))); err != nil {
			return err
		}
	}

	if sel("fig2") || sel("fig3") || sel("fig4") {
		fmt.Fprintf(os.Stderr, "paper: running Figures 2-4 sweep (every gshare history length x every size x 14 benchmarks)...\n")
		f := experiments.Figures234(cfg)
		if sel("fig2") {
			var b strings.Builder
			b.WriteString(experiments.RenderSizeCurves(f.SPECAvg))
			b.WriteString("\n")
			b.WriteString(experiments.RenderSizeCurves(f.IBSAvg))
			b.WriteString("\ngshare.best history bits per size:\n")
			fmt.Fprintf(&b, "  SPEC: %v\n  IBS:  %v\n  (sizes 2^%v counters)\n",
				f.BestHistorySPEC, f.BestHistoryIBS, f.SizeBits)
			fmt.Fprintf(&b, "\ncost advantage of bi-mode over gshare.best at equal accuracy (upper half of axis):\n")
			fmt.Fprintf(&b, "  SPEC: %s   IBS: %s\n",
				formatAdvantage(experiments.CostAdvantage(f.SPECAvg)),
				formatAdvantage(experiments.CostAdvantage(f.IBSAvg)))
			if err := emit("figure2.txt", b.String()); err != nil {
				return err
			}
			if err := emit("figure2.csv", experiments.CurvesCSV(append([]experiments.SizeCurves{f.SPECAvg}, f.IBSAvg))); err != nil {
				return err
			}
		}
		if sel("fig3") {
			var b strings.Builder
			for _, c := range f.SPEC {
				b.WriteString(experiments.RenderSizeCurves(c))
				b.WriteString("\n")
			}
			if err := emit("figure3.txt", b.String()); err != nil {
				return err
			}
			if err := emit("figure3.csv", experiments.CurvesCSV(f.SPEC)); err != nil {
				return err
			}
		}
		if sel("fig4") {
			var b strings.Builder
			for _, c := range f.IBS {
				b.WriteString(experiments.RenderSizeCurves(c))
				b.WriteString("\n")
			}
			if err := emit("figure4.txt", b.String()); err != nil {
				return err
			}
			if err := emit("figure4.csv", experiments.CurvesCSV(f.IBS)); err != nil {
				return err
			}
		}
	}

	if sel("fig5") {
		hist, addr, err := experiments.Figure5("gcc", cfg)
		if err != nil {
			return err
		}
		content := experiments.RenderBreakdown(hist) + "\n" + experiments.RenderBreakdown(addr)
		if err := emit("figure5.txt", content); err != nil {
			return err
		}
		if err := emit("figure5.csv", experiments.BreakdownCSV(hist, addr)); err != nil {
			return err
		}
	}
	if sel("fig6") {
		bm, err := experiments.Figure6("gcc", cfg)
		if err != nil {
			return err
		}
		if err := emit("figure6.txt", experiments.RenderBreakdown(bm)); err != nil {
			return err
		}
	}
	if sel("table3") {
		ex, err := experiments.Table3("gcc", cfg)
		if err != nil {
			return err
		}
		if err := emit("table3.txt", experiments.RenderTable3(ex)); err != nil {
			return err
		}
	}
	if sel("table4") {
		t, err := experiments.Table4("gcc", cfg)
		if err != nil {
			return err
		}
		if err := emit("table4.txt", experiments.RenderTable4(t)); err != nil {
			return err
		}
	}
	if sel("fig7") {
		pts, err := experiments.Figures78("gcc", cfg)
		if err != nil {
			return err
		}
		if err := emit("figure7.txt", experiments.RenderFigures78("gcc", pts)); err != nil {
			return err
		}
		if err := emit("figure7.csv", experiments.ClassBreakdownCSV("gcc", pts)); err != nil {
			return err
		}
	}
	if sel("programs") {
		res, err := experiments.ProgramsCrossCheck(cfg)
		if err != nil {
			return err
		}
		if err := emit("programs.txt", experiments.RenderProgramsCrossCheck(res)); err != nil {
			return err
		}
	}
	if sel("ctxswitch") {
		rows, err := experiments.ContextSwitch("gcc", "sdet", 500, cfg)
		if err != nil {
			return err
		}
		if err := emit("ctxswitch.txt", experiments.RenderContextSwitch("gcc", "sdet", 500, rows)); err != nil {
			return err
		}
	}
	if sel("rivals") {
		rows := experiments.Rivals(cfg)
		if err := emit("rivals.txt", experiments.RenderRivals(rows)); err != nil {
			return err
		}
	}
	if sel("fig8") {
		pts, err := experiments.Figures78("go", cfg)
		if err != nil {
			return err
		}
		if err := emit("figure8.txt", experiments.RenderFigures78("go", pts)); err != nil {
			return err
		}
		if err := emit("figure8.csv", experiments.ClassBreakdownCSV("go", pts)); err != nil {
			return err
		}
	}

	fmt.Fprintf(os.Stderr, "paper: done in %v\n", time.Since(start).Round(time.Second))
	return nil
}

// formatAdvantage renders a CostAdvantage result, marking lower bounds
// (bi-mode better than anything gshare.best achieves in the swept range).
func formatAdvantage(factor float64, lowerBound bool) string {
	if lowerBound {
		return fmt.Sprintf(">= %.2fx", factor)
	}
	return fmt.Sprintf("%.2fx", factor)
}
