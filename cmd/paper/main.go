// Command paper regenerates every table and figure of the paper's
// evaluation section and writes the results to a directory (default
// ./results) as text reports and CSV series.
//
// A failed artifact (a canceled run, a damaged trace, a panicking cell)
// degrades instead of aborting: the other artifacts are still produced,
// the failures are written to footnotes.txt in the output directory, and
// the exit status is non-zero. With -checkpoint, an interrupted run can
// be resumed from where it was killed.
//
// Usage:
//
//	paper                  # everything, default scale (paper counts / 8)
//	paper -quick           # reduced dynamic budget for a fast smoke run
//	paper -only fig2,table4
//	paper -out mydir -n 3000000
//	paper -checkpoint paper.ckpt           # ^C partway, then:
//	paper -checkpoint paper.ckpt -resume
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"bimode/internal/experiments"
	"bimode/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("paper", flag.ContinueOnError)
	var (
		out        = fs.String("out", "results", "output directory")
		only       = fs.String("only", "", "comma-separated subset: table1,table2,fig2,fig3,fig4,table3,fig5,fig6,table4,fig7,fig8,rivals,programs,ctxswitch")
		dynamic    = fs.Int("n", 0, "override dynamic branches per workload (0 = calibrated defaults)")
		quick      = fs.Bool("quick", false, "fast smoke run (600k branches per workload)")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for simulation grids (0 = sequential reference path)")
		jobTimeout = fs.Duration("job-timeout", 0, "per-job deadline (0 = none); timed-out jobs are retried per -retries")
		retries    = fs.Int("retries", 0, "retry budget per job for transient failures")
		checkpoint = fs.String("checkpoint", "", "journal completed simulation cells to this file; rerun with -resume to continue a killed run")
		resume     = fs.Bool("resume", false, "resume from the -checkpoint file instead of truncating it")
		partEvery  = fs.Int("part-every", 1<<20, "records between mid-cell snapshots when checkpointing (0 = completed cells only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	sched := sim.NewScheduler(*parallel).WithContext(ctx)
	if *jobTimeout > 0 || *retries > 0 {
		sched = sched.WithPolicy(sim.Policy{
			JobTimeout: *jobTimeout,
			MaxRetries: *retries,
			Backoff:    100 * time.Millisecond,
		})
	}
	cfg := experiments.Config{Dynamic: *dynamic, Sched: sched}
	if *quick && *dynamic == 0 {
		cfg.Dynamic = 600000
	}
	if *checkpoint != "" {
		// The key pins every flag that shapes the fan-out sequence the
		// journal's (seq, idx) cells are keyed by.
		key := fmt.Sprintf("paper|only=%s|n=%d", *only, cfg.Dynamic)
		var j *sim.Journal
		var err error
		if *resume {
			if j, err = sim.ResumeJournal(*checkpoint, key); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "paper: resuming %s (%d completed cells cached)\n", *checkpoint, j.Cells())
		} else if j, err = sim.CreateJournal(*checkpoint, key); err != nil {
			return err
		}
		j.PartEvery = *partEvery
		defer j.Close()
		cfg.Sched = sched.WithJournal(j)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	emit := func(name, content string) error {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Printf("==== %s ====\n%s\n", name, content)
		return nil
	}

	// artifact runs one generator with a degradation guard: an error or a
	// panic (a canceled sweep, an injected fault reaching a Must-
	// constructor) is annotated and the remaining artifacts still run.
	var fails []string
	artifact := func(name string, gen func() error) {
		defer func() {
			if r := recover(); r != nil {
				fails = append(fails, fmt.Sprintf("%s: %v", name, r))
				fmt.Fprintf(os.Stderr, "paper: [!] %s did not complete: %v\n", name, r)
			}
		}()
		if err := gen(); err != nil {
			fails = append(fails, fmt.Sprintf("%s: %v", name, err))
			fmt.Fprintf(os.Stderr, "paper: [!] %s did not complete: %v\n", name, err)
		}
	}

	start := time.Now()

	if sel("table1") {
		artifact("table1", func() error {
			return emit("table1.txt", experiments.RenderTable1(experiments.Table1()))
		})
	}
	if sel("table2") {
		artifact("table2", func() error {
			return emit("table2.txt", experiments.RenderTable2(experiments.Table2(cfg)))
		})
	}

	if sel("fig2") || sel("fig3") || sel("fig4") {
		artifact("figures2-4", func() error {
			fmt.Fprintf(os.Stderr, "paper: running Figures 2-4 sweep (every gshare history length x every size x 14 benchmarks)...\n")
			f := experiments.Figures234(cfg)
			// Failed cells render as gaps with a footnote on each affected
			// figure; they also count against the run's exit status.
			fails = append(fails, f.Failures...)
			notes := experiments.RenderFootnotes(f.Failures)
			if sel("fig2") {
				var b strings.Builder
				b.WriteString(experiments.RenderSizeCurves(f.SPECAvg))
				b.WriteString("\n")
				b.WriteString(experiments.RenderSizeCurves(f.IBSAvg))
				b.WriteString("\ngshare.best history bits per size:\n")
				fmt.Fprintf(&b, "  SPEC: %v\n  IBS:  %v\n  (sizes 2^%v counters)\n",
					f.BestHistorySPEC, f.BestHistoryIBS, f.SizeBits)
				fmt.Fprintf(&b, "\ncost advantage of bi-mode over gshare.best at equal accuracy (upper half of axis):\n")
				fmt.Fprintf(&b, "  SPEC: %s   IBS: %s\n",
					formatAdvantage(experiments.CostAdvantage(f.SPECAvg)),
					formatAdvantage(experiments.CostAdvantage(f.IBSAvg)))
				b.WriteString(notes)
				if err := emit("figure2.txt", b.String()); err != nil {
					return err
				}
				if err := emit("figure2.csv", experiments.CurvesCSV(append([]experiments.SizeCurves{f.SPECAvg}, f.IBSAvg))); err != nil {
					return err
				}
			}
			if sel("fig3") {
				var b strings.Builder
				for _, c := range f.SPEC {
					b.WriteString(experiments.RenderSizeCurves(c))
					b.WriteString("\n")
				}
				b.WriteString(notes)
				if err := emit("figure3.txt", b.String()); err != nil {
					return err
				}
				if err := emit("figure3.csv", experiments.CurvesCSV(f.SPEC)); err != nil {
					return err
				}
			}
			if sel("fig4") {
				var b strings.Builder
				for _, c := range f.IBS {
					b.WriteString(experiments.RenderSizeCurves(c))
					b.WriteString("\n")
				}
				b.WriteString(notes)
				if err := emit("figure4.txt", b.String()); err != nil {
					return err
				}
				if err := emit("figure4.csv", experiments.CurvesCSV(f.IBS)); err != nil {
					return err
				}
			}
			return nil
		})
	}

	if sel("fig5") {
		artifact("fig5", func() error {
			hist, addr, err := experiments.Figure5("gcc", cfg)
			if err != nil {
				return err
			}
			content := experiments.RenderBreakdown(hist) + "\n" + experiments.RenderBreakdown(addr)
			if err := emit("figure5.txt", content); err != nil {
				return err
			}
			return emit("figure5.csv", experiments.BreakdownCSV(hist, addr))
		})
	}
	if sel("fig6") {
		artifact("fig6", func() error {
			bm, err := experiments.Figure6("gcc", cfg)
			if err != nil {
				return err
			}
			return emit("figure6.txt", experiments.RenderBreakdown(bm))
		})
	}
	if sel("table3") {
		artifact("table3", func() error {
			ex, err := experiments.Table3("gcc", cfg)
			if err != nil {
				return err
			}
			return emit("table3.txt", experiments.RenderTable3(ex))
		})
	}
	if sel("table4") {
		artifact("table4", func() error {
			t, err := experiments.Table4("gcc", cfg)
			if err != nil {
				return err
			}
			return emit("table4.txt", experiments.RenderTable4(t))
		})
	}
	if sel("fig7") {
		artifact("fig7", func() error {
			pts, err := experiments.Figures78("gcc", cfg)
			if err != nil {
				return err
			}
			if err := emit("figure7.txt", experiments.RenderFigures78("gcc", pts)); err != nil {
				return err
			}
			return emit("figure7.csv", experiments.ClassBreakdownCSV("gcc", pts))
		})
	}
	if sel("programs") {
		artifact("programs", func() error {
			res, err := experiments.ProgramsCrossCheck(cfg)
			if err != nil {
				return err
			}
			return emit("programs.txt", experiments.RenderProgramsCrossCheck(res))
		})
	}
	if sel("ctxswitch") {
		artifact("ctxswitch", func() error {
			rows, err := experiments.ContextSwitch("gcc", "sdet", 500, cfg)
			if err != nil {
				return err
			}
			return emit("ctxswitch.txt", experiments.RenderContextSwitch("gcc", "sdet", 500, rows))
		})
	}
	if sel("rivals") {
		artifact("rivals", func() error {
			return emit("rivals.txt", experiments.RenderRivals(experiments.Rivals(cfg)))
		})
	}
	if sel("fig8") {
		artifact("fig8", func() error {
			pts, err := experiments.Figures78("go", cfg)
			if err != nil {
				return err
			}
			if err := emit("figure8.txt", experiments.RenderFigures78("go", pts)); err != nil {
				return err
			}
			return emit("figure8.csv", experiments.ClassBreakdownCSV("go", pts))
		})
	}

	fmt.Fprintf(os.Stderr, "paper: done in %v\n", time.Since(start).Round(time.Second))
	if len(fails) > 0 {
		notePath := filepath.Join(*out, "footnotes.txt")
		if werr := os.WriteFile(notePath, []byte(experiments.RenderFootnotes(fails)), 0o644); werr != nil {
			return fmt.Errorf("%d artifact(s) did not complete (and writing %s failed: %v)", len(fails), notePath, werr)
		}
		return fmt.Errorf("%d artifact(s) did not complete; see %s", len(fails), notePath)
	}
	return nil
}

// formatAdvantage renders a CostAdvantage result, marking lower bounds
// (bi-mode better than anything gshare.best achieves in the swept range).
func formatAdvantage(factor float64, lowerBound bool) string {
	if lowerBound {
		return fmt.Sprintf(">= %.2fx", factor)
	}
	return fmt.Sprintf("%.2fx", factor)
}
