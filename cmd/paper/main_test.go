package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPaperSubset(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-out", dir, "-only", "table1,table2,table3,table4,fig5,fig6,fig7,fig8", "-n", "30000"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"table1.txt", "table2.txt", "table3.txt", "table4.txt",
		"figure5.txt", "figure6.txt", "figure7.txt", "figure8.txt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing output %s: %v", f, err)
		}
	}
}

func TestPaperFig2Small(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-only", "fig2", "-n", "15000"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatalf("empty csv")
	}
}

func TestPaperErrors(t *testing.T) {
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatalf("bad flag must fail")
	}
	if err := run([]string{"-out", "/dev/null/impossible"}); err == nil {
		t.Fatalf("bad output dir must fail")
	}
}

// TestPaperDegradedRun pins graceful degradation: with a per-job deadline
// no simulation can meet (1ns has always elapsed by the first
// cooperative check, regardless of engine speed), the affected artifacts
// become annotated footnotes, the artifacts that need no simulation are
// still produced, and the exit status is non-zero.
func TestPaperDegradedRun(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-out", dir, "-only", "table1,fig2", "-n", "400000", "-job-timeout", "1ns"})
	if err == nil {
		t.Fatal("degraded run must exit non-zero")
	}
	if _, err := os.Stat(filepath.Join(dir, "table1.txt")); err != nil {
		t.Errorf("unaffected artifact missing: %v", err)
	}
	notes, err := os.ReadFile(filepath.Join(dir, "footnotes.txt"))
	if err != nil {
		t.Fatalf("degraded run wrote no footnotes.txt: %v", err)
	}
	if !strings.Contains(string(notes), "figures2-4") {
		t.Errorf("footnotes.txt does not name the failed artifact:\n%s", notes)
	}
}

func TestPaperCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "paper.ckpt")
	args := []string{"-out", dir, "-only", "table2", "-n", "25000", "-checkpoint", ckpt}
	if err := run(args); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if err := run(append(args[:len(args):len(args)], "-resume")); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if err := run(append(args[:len(args):len(args)], "-n", "26000", "-resume")); err == nil {
		t.Fatal("resume with a different plan must fail")
	}
}
