package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPaperSubset(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-out", dir, "-only", "table1,table2,table3,table4,fig5,fig6,fig7,fig8", "-n", "30000"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"table1.txt", "table2.txt", "table3.txt", "table4.txt",
		"figure5.txt", "figure6.txt", "figure7.txt", "figure8.txt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing output %s: %v", f, err)
		}
	}
}

func TestPaperFig2Small(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-only", "fig2", "-n", "15000"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatalf("empty csv")
	}
}

func TestPaperErrors(t *testing.T) {
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatalf("bad flag must fail")
	}
	if err := run([]string{"-out", "/dev/null/impossible"}); err == nil {
		t.Fatalf("bad output dir must fail")
	}
}
