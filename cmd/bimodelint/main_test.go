package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, want 0; stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"hotpath", "capladder", "registry", "counterarith"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("run(-only nope) = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr missing explanation: %s", errOut.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("run(bad flag) = %d, want 2", code)
	}
}

// TestCleanPackages drives the real loader over two small leaf packages;
// the repo-wide run is covered by CI and internal/lint's TestRepoIsClean.
func TestCleanPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool and the source importer; skipped in -short")
	}
	var out, errOut bytes.Buffer
	code := run([]string{"./internal/counter", "./internal/history"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}
