package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, want 0; stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"hotpath", "capladder", "registry", "counterarith", "allocproof", "detlint", "ctxflow"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("run(-only nope) = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr missing explanation: %s", errOut.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("run(bad flag) = %d, want 2", code)
	}
}

// TestCleanPackages drives the real loader over two small leaf packages;
// the repo-wide run is covered by CI and internal/lint's TestRepoIsClean.
func TestCleanPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool and the source importer; skipped in -short")
	}
	var out, errOut bytes.Buffer
	code := run([]string{"./internal/counter", "./internal/history"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}

// TestJSONOutput pins the -json contract consumers script against: the
// output is always a JSON array of {file,line,col,analyzer,message}
// objects — an empty array (not null, not silence) when clean.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool and the source importer; skipped in -short")
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-json", "-only", "hotpath,counterarith", "./internal/counter"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run(-json) = %d, want 0\nstderr: %s", code, errOut.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a findings array: %v\n%s", err, out.String())
	}
	if findings == nil {
		t.Errorf("-json emitted null for a clean run; want an empty array:\n%s", out.String())
	}
	if len(findings) != 0 {
		t.Errorf("expected no findings, got %d:\n%s", len(findings), out.String())
	}
}

// TestWriteLedgerRequiresPath pins the usage exit code: -write-ledger
// without -ledger is an error before any loading happens.
func TestWriteLedgerRequiresPath(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-write-ledger"}, &out, &errOut); code != 2 {
		t.Fatalf("run(-write-ledger) = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "requires -ledger") {
		t.Errorf("stderr missing usage explanation: %s", errOut.String())
	}
}

// TestLedgerMissingFile: checking against a ledger that was never
// committed is a load error (exit 2), not silent drift.
func TestLedgerMissingFile(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the diagnostic build; skipped in -short")
	}
	var out, errOut bytes.Buffer
	missing := filepath.Join(t.TempDir(), "nope.json")
	if code := run([]string{"-ledger", missing}, &out, &errOut); code != 2 {
		t.Fatalf("run(-ledger missing) = %d, want 2\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "regenerate with -write-ledger") {
		t.Errorf("stderr missing the recovery hint: %s", errOut.String())
	}
}

// TestLedgerRoundTripCLI exercises the full maintenance cycle through the
// driver: -write-ledger produces a file whose immediate drift check is
// clean (exit 0), and a ledger from a different compiler series fails the
// check (exit 1) with the regenerate hint.
func TestLedgerRoundTripCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the diagnostic build; skipped in -short")
	}
	ledger := filepath.Join(t.TempDir(), "ledger.json")

	var out, errOut bytes.Buffer
	if code := run([]string{"-ledger", ledger, "-write-ledger"}, &out, &errOut); code != 0 {
		t.Fatalf("write: run = %d, want 0\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "wrote") {
		t.Errorf("write output missing confirmation: %s", out.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-ledger", ledger}, &out, &errOut); code != 0 {
		t.Fatalf("check: run = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "ledger clean") {
		t.Errorf("check output missing clean confirmation: %s", out.String())
	}

	// Forge a cross-series ledger: the check must drift, not pass.
	data, err := os.ReadFile(ledger)
	if err != nil {
		t.Fatal(err)
	}
	forged := strings.Replace(string(data), `"go": "go1.`, `"go": "go0.`, 1)
	if forged == string(data) {
		t.Fatalf("could not forge compiler series in ledger:\n%s", data)
	}
	if err := os.WriteFile(ledger, []byte(forged), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-ledger", ledger}, &out, &errOut); code != 1 {
		t.Fatalf("forged check: run = %d, want 1\nstdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "compiler series changed") {
		t.Errorf("forged check output missing series explanation: %s", out.String())
	}
}
