// Command bimodelint runs the repository's custom static-analysis suite
// (internal/lint) over module packages: the hotpath purity contract, the
// predictor and trace capability ladders, registry hygiene, the
// saturating-counter encapsulation, the compiler-evidence allocation/BCE
// proofs, the determinism call-graph check, and the context-flow
// cancellation contract. It is stdlib-only, so it runs anywhere the go
// toolchain does:
//
//	go run ./cmd/bimodelint ./...
//	go run ./cmd/bimodelint -only hotpath,counterarith ./internal/core
//	go run ./cmd/bimodelint -json ./... > findings.json
//
// The hotpath ledger (lint/hotpath_ledger.json) is maintained through the
// same command:
//
//	go run ./cmd/bimodelint -ledger lint/hotpath_ledger.json               # check for drift
//	go run ./cmd/bimodelint -ledger lint/hotpath_ledger.json -write-ledger # regenerate
//
// Exit status: 0 clean, 1 diagnostics or ledger drift reported, 2 load or
// usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"bimode/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the machine-readable diagnostic shape emitted by -json:
// one object per finding, in the same order as the text output.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("bimodelint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	ledgerPath := fs.String("ledger", "", "hotpath ledger file to check for drift (skips the analyzers)")
	writeLedger := fs.Bool("write-ledger", false, "with -ledger: regenerate the ledger file instead of checking it")
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: bimodelint [-only names] [-list] [-json] [-ledger file [-write-ledger]] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *writeLedger && *ledgerPath == "" {
		fmt.Fprintln(errOut, "bimodelint: -write-ledger requires -ledger <file>")
		return 2
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(errOut, "bimodelint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	prog, err := lint.NewProgram(".")
	if err != nil {
		fmt.Fprintf(errOut, "bimodelint: %v\n", err)
		return 2
	}

	if *ledgerPath != "" {
		return runLedger(prog, *ledgerPath, *writeLedger, out, errOut)
	}

	paths, err := prog.Expand(fs.Args())
	if err != nil {
		fmt.Fprintf(errOut, "bimodelint: %v\n", err)
		return 2
	}
	var pkgs []*lint.Package
	for _, path := range paths {
		pkg, err := prog.CheckPackage(path)
		if err != nil {
			fmt.Fprintf(errOut, "bimodelint: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	diags := lint.Run(prog, pkgs, analyzers)
	if *asJSON {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(errOut, "bimodelint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(out, "bimodelint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// runLedger regenerates or drift-checks the committed hotpath ledger.
func runLedger(prog *lint.Program, path string, write bool, out, errOut io.Writer) int {
	live, err := lint.BuildLedger(prog)
	if err != nil {
		fmt.Fprintf(errOut, "bimodelint: building ledger: %v\n", err)
		return 2
	}
	if write {
		if dir := filepath.Dir(path); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintf(errOut, "bimodelint: %v\n", err)
				return 2
			}
		}
		if err := os.WriteFile(path, live.Encode(), 0o644); err != nil {
			fmt.Fprintf(errOut, "bimodelint: %v\n", err)
			return 2
		}
		fmt.Fprintf(out, "bimodelint: wrote %s (%d strict hotpath functions)\n", path, len(live.Functions))
		return 0
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(errOut, "bimodelint: reading ledger: %v (regenerate with -write-ledger)\n", err)
		return 2
	}
	committed, err := lint.DecodeLedger(data)
	if err != nil {
		fmt.Fprintf(errOut, "bimodelint: %v\n", err)
		return 2
	}
	drift := lint.DiffLedgers(committed, live)
	for _, line := range drift {
		fmt.Fprintln(out, line)
	}
	if len(drift) > 0 {
		fmt.Fprintf(out, "bimodelint: hotpath ledger drift: %d line(s); regenerate with -ledger %s -write-ledger and review the diff\n", len(drift), path)
		return 1
	}
	fmt.Fprintf(out, "bimodelint: hotpath ledger clean (%d strict hotpath functions)\n", len(committed.Functions))
	return 0
}
