// Command bimodelint runs the repository's custom static-analysis suite
// (internal/lint) over module packages: the hotpath purity contract, the
// predictor capability ladder, registry hygiene, and the saturating-
// counter encapsulation. It is stdlib-only, so it runs anywhere the go
// toolchain does:
//
//	go run ./cmd/bimodelint ./...
//	go run ./cmd/bimodelint -only hotpath,counterarith ./internal/core
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load or usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bimode/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("bimodelint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: bimodelint [-only names] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(errOut, "bimodelint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	prog, err := lint.NewProgram(".")
	if err != nil {
		fmt.Fprintf(errOut, "bimodelint: %v\n", err)
		return 2
	}
	paths, err := prog.Expand(fs.Args())
	if err != nil {
		fmt.Fprintf(errOut, "bimodelint: %v\n", err)
		return 2
	}
	var pkgs []*lint.Package
	for _, path := range paths {
		pkg, err := prog.CheckPackage(path)
		if err != nil {
			fmt.Fprintf(errOut, "bimodelint: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	diags := lint.Run(prog, pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(out, "bimodelint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
