package main

import "testing"

func TestFetchsim(t *testing.T) {
	if err := run([]string{"-w", "sdet", "-p", "bimode:b=9", "-n", "30000"}); err != nil {
		t.Fatal(err)
	}
}

func TestFetchsimErrors(t *testing.T) {
	cases := [][]string{
		{"-w", "lzw"}, // programs have no control-flow model
		{"-w", "sdet", "-p", "martian"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
