// Command fetchsim runs the front-end model — direction predictor +
// branch target buffer + return address stack — over a workload's
// control-flow trace and reports where the fetch bubbles come from.
//
// Usage:
//
//	fetchsim -w perl -p bimode:b=11
//	fetchsim -w gcc -p 'gshare:i=12,h=12' -btb-sets 9 -btb-ways 4 -ras 16
package main

import (
	"flag"
	"fmt"
	"os"

	"bimode/internal/fetch"
	"bimode/internal/synth"
	"bimode/internal/zoo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fetchsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fetchsim", flag.ContinueOnError)
	var (
		wl      = fs.String("w", "perl", "synthetic benchmark (control-flow traces need the program model)")
		spec    = fs.String("p", "bimode:b=11", "direction predictor spec")
		setBits = fs.Int("btb-sets", 9, "log2 BTB sets")
		ways    = fs.Int("btb-ways", 4, "BTB associativity")
		tagBits = fs.Int("btb-tags", 8, "BTB partial tag width")
		rasSize = fs.Int("ras", 16, "return address stack depth")
		dynamic = fs.Int("n", 0, "control-transfer events (0 = calibrated default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	prof, ok := synth.ProfileByName(*wl)
	if !ok {
		return fmt.Errorf("unknown synthetic benchmark %q (control-flow traces are generated from the program model)", *wl)
	}
	if *dynamic > 0 {
		prof = prof.WithDynamic(*dynamic)
	}
	w, err := synth.NewWorkload(prof)
	if err != nil {
		return err
	}
	dir, err := zoo.New(*spec)
	if err != nil {
		return err
	}
	eng := fetch.NewEngine(fetch.Config{
		Direction:  dir,
		BTBSetBits: *setBits, BTBWays: *ways, BTBTagBits: *tagBits,
		RASSize: *rasSize,
	})
	fmt.Printf("front end: %s + BTB(2^%d sets x %d ways) + RAS(%d) = %d bits of state\n",
		dir.Name(), *setBits, *ways, *rasSize, eng.CostBits())
	m := eng.Run(w)
	fmt.Printf("%v\n", m)
	fmt.Printf("breakdown: %d direction, %d target, %d btb-miss, %d ras-miss -> %d bubble cycles\n",
		m.DirectionMisses, m.TargetMisses, m.BTBMisses, m.RASMisses, m.BubbleCycles)
	return nil
}
