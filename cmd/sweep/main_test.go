package main

import "testing"

func TestSweepBasic(t *testing.T) {
	err := run([]string{"-w", "xlisp,compress", "-schemes", "gshare1,bimode,smith", "-min", "8", "-max", "9", "-n", "20000"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepBest(t *testing.T) {
	err := run([]string{"-w", "xlisp", "-schemes", "gsharebest", "-min", "8", "-max", "8", "-n", "20000"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepRivals(t *testing.T) {
	err := run([]string{"-w", "lzw", "-schemes", "agree,gskew,yags,gag,pag", "-min", "8", "-max", "8", "-n", "20000"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSweepErrors(t *testing.T) {
	cases := [][]string{
		{"-w", "bogus-bench", "-min", "8", "-max", "8"},
		{"-schemes", "warlock", "-min", "8", "-max", "8"},
		{"-min", "12", "-max", "8"},
		{"-min", "2", "-max", "30"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
