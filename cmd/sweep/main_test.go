package main

import (
	"bytes"
	"io"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestSweepBasic is the smoke test: a tiny synthetic sweep must produce a
// well-formed table — every selected scheme header, one row per workload,
// an AVERAGE row, and parseable in-range rates.
func TestSweepBasic(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-w", "xlisp,compress", "-schemes", "gshare1,bimode,smith",
		"-min", "8", "-max", "9", "-n", "20000"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if text == "" {
		t.Fatal("no output")
	}
	for _, want := range []string{"gshare.1PHT", "bi-mode", "smith", "xlisp", "compress", "AVERAGE"} {
		if c := strings.Count(text, want); c == 0 {
			t.Errorf("output missing %q", want)
		}
	}
	if c := strings.Count(text, "AVERAGE"); c != 3 {
		t.Errorf("got %d AVERAGE rows, want one per scheme (3)", c)
	}
	// Every AVERAGE row carries one rate per swept size, each in (0,100).
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "AVERAGE") {
			continue
		}
		fields := strings.Fields(line)[1:]
		if len(fields) != 2 {
			t.Fatalf("AVERAGE row has %d rates, want 2: %q", len(fields), line)
		}
		for _, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil || v <= 0 || v >= 100 {
				t.Errorf("implausible rate %q in %q (err %v)", f, line, err)
			}
		}
	}
}

func TestSweepBest(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-w", "xlisp", "-schemes", "gsharebest", "-min", "8", "-max", "8", "-n", "20000"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gshare.best") {
		t.Error("output missing gshare.best header")
	}
}

func TestSweepRivals(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-w", "lzw", "-schemes", "agree,gskew,yags,gag,pag",
		"-min", "8", "-max", "8", "-n", "20000"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"agree", "e-gskew", "yags", "GAg", "PAg"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSweepErrors(t *testing.T) {
	cases := [][]string{
		{"-w", "bogus-bench", "-min", "8", "-max", "8"},
		{"-schemes", "warlock", "-min", "8", "-max", "8"},
		{"-min", "12", "-max", "8"},
		{"-min", "2", "-max", "30"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestSweepCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sweep.ckpt")
	args := []string{"-w", "xlisp", "-schemes", "bimode,smith",
		"-min", "8", "-max", "9", "-n", "20000", "-checkpoint", ckpt}
	var first, resumed bytes.Buffer
	if err := run(args, &first); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if err := run(append(args[:len(args):len(args)], "-resume"), &resumed); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if first.String() != resumed.String() {
		t.Errorf("resumed output differs from the original run:\n%s\nvs\n%s", first.String(), resumed.String())
	}
	// A different size axis changes the fan-out plan; the journal key
	// must refuse it.
	bad := append(args[:len(args):len(args)], "-max", "10", "-resume")
	if err := run(bad, io.Discard); err == nil {
		t.Fatal("resume with a different plan must fail")
	}
}
