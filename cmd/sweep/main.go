// Command sweep runs size sweeps in the style of the paper's Figures 2-4
// for an arbitrary set of schemes, printing a rate-vs-size table per
// workload and a suite average.
//
// Usage:
//
//	sweep -w gcc,go,vortex -min 10 -max 15
//	sweep -w all-spec -schemes bimode,gshare1,gsharebest,smith,agree,gskew,yags
//	sweep -w gcc -n 3000000
//	sweep -checkpoint sweep.ckpt            # interrupt, then:
//	sweep -checkpoint sweep.ckpt -resume
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"bimode/internal/baselines"
	"bimode/internal/core"
	"bimode/internal/experiments"
	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/synth"
	"bimode/internal/trace"
	"bimode/internal/workloads"
)

// scheme builds a predictor at a given size point (2^s counters of
// gshare-equivalent budget).
type scheme struct {
	name string
	mk   func(s int) predictor.Predictor
	// cost returns the scheme's actual cost in bytes at size point s.
	cost func(s int) float64
	// sweep marks schemes that need the per-size gshare.best search.
	sweep bool
}

func schemes() map[string]scheme {
	gcost := func(s int) float64 { return float64(int(1)<<uint(s)) / 4 }
	return map[string]scheme{
		"gshare1": {
			name: "gshare.1PHT",
			mk:   func(s int) predictor.Predictor { return baselines.NewGshare(s, s) },
			cost: gcost,
		},
		"gsharebest": {name: "gshare.best", sweep: true, cost: gcost},
		"bimode": {
			name: "bi-mode",
			mk:   func(s int) predictor.Predictor { return core.MustNew(core.DefaultConfig(s - 1)) },
			cost: func(s int) float64 { return 3 * float64(int(1)<<uint(s-1)) / 4 },
		},
		"smith": {
			name: "smith",
			mk:   func(s int) predictor.Predictor { return baselines.NewSmith(s) },
			cost: gcost,
		},
		"agree": {
			name: "agree",
			mk:   func(s int) predictor.Predictor { return baselines.NewAgree(s, s, s-2) },
			cost: func(s int) float64 { return float64(int(1)<<uint(s))/4 + 2*float64(int(1)<<uint(s-2))/8 },
		},
		"gskew": {
			name: "e-gskew",
			mk:   func(s int) predictor.Predictor { return baselines.NewGskew(s-1, s-1, true) },
			cost: func(s int) float64 { return 3 * float64(int(1)<<uint(s-1)) / 4 },
		},
		"yags": {
			name: "yags",
			mk:   func(s int) predictor.Predictor { return baselines.NewYAGS(s-1, s-2, s-2, 6) },
			cost: func(s int) float64 {
				return float64(int(1)<<uint(s-1))/4 + 2*float64(int(1)<<uint(s-2))*9/8
			},
		},
		"trimode": {
			name: "tri-mode",
			mk:   func(s int) predictor.Predictor { return core.MustNewTriMode(core.DefaultConfig(s - 2)) },
			cost: func(s int) float64 {
				n := int(1) << uint(s-2)
				return float64(3*n*2+n*3) / 8
			},
		},
		"filter": {
			name: "filter",
			mk:   func(s int) predictor.Predictor { return baselines.NewFilter(s, s, s-2, 32) },
			cost: func(s int) float64 {
				return float64(int(1)<<uint(s))/4 + 5*float64(int(1)<<uint(s-2))/8
			},
		},
		"gag": {
			name: "GAg",
			mk:   func(s int) predictor.Predictor { return baselines.NewGAg(s) },
			cost: gcost,
		},
		"pag": {
			name: "PAg",
			mk:   func(s int) predictor.Predictor { return baselines.NewPAg(10, s) },
			cost: gcost,
		},
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		wl         = fs.String("w", "all-spec", "workloads: comma list, or all-spec / all-ibs / all")
		schemeL    = fs.String("schemes", "gshare1,gsharebest,bimode", "comma list of schemes: gshare1,gsharebest,bimode,trimode,filter,smith,agree,gskew,yags,gag,pag")
		minBits    = fs.Int("min", 10, "log2 of the smallest gshare-equivalent counter count")
		maxBits    = fs.Int("max", 17, "log2 of the largest")
		dynamic    = fs.Int("n", 0, "dynamic branches per workload (0 = calibrated default)")
		parallel   = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for the sweep grid (0 = sequential reference path)")
		jobTimeout = fs.Duration("job-timeout", 0, "per-job deadline (0 = none); timed-out jobs are retried per -retries")
		retries    = fs.Int("retries", 0, "retry budget per job for transient failures")
		checkpoint = fs.String("checkpoint", "", "journal completed cells to this file; rerun with -resume to continue a killed run")
		resume     = fs.Bool("resume", false, "resume from the -checkpoint file instead of truncating it")
		partEvery  = fs.Int("part-every", 1<<20, "records between mid-cell snapshots when checkpointing (0 = completed cells only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *minBits < 4 || *maxBits > 24 || *minBits > *maxBits {
		return fmt.Errorf("size range [%d,%d] invalid", *minBits, *maxBits)
	}
	// Workload generation runs through the scheduler too; a cancellation
	// there surfaces as a panic from the Must-materialization, which we
	// convert into the clean partial-exit the simulation path gets.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep aborted: %v", r)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	sched := sim.NewScheduler(*parallel).WithContext(ctx)
	if *jobTimeout > 0 || *retries > 0 {
		sched = sched.WithPolicy(sim.Policy{
			JobTimeout: *jobTimeout,
			MaxRetries: *retries,
			Backoff:    100 * time.Millisecond,
		})
	}
	if *checkpoint != "" {
		key := fmt.Sprintf("sweep|w=%s|schemes=%s|min=%d|max=%d|n=%d", *wl, *schemeL, *minBits, *maxBits, *dynamic)
		var j *sim.Journal
		if *resume {
			if j, err = sim.ResumeJournal(*checkpoint, key); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "sweep: resuming %s (%d completed cells cached)\n", *checkpoint, j.Cells())
		} else if j, err = sim.CreateJournal(*checkpoint, key); err != nil {
			return err
		}
		j.PartEvery = *partEvery
		defer j.Close()
		sched = sched.WithJournal(j)
	}
	cfg := experiments.Config{Dynamic: *dynamic, Sched: sched}

	var sources []trace.Source
	switch *wl {
	case "all-spec":
		sources = experiments.SuiteSources(synth.SuiteSPEC, cfg)
	case "all-ibs":
		sources = experiments.SuiteSources(synth.SuiteIBS, cfg)
	case "all":
		sources = append(experiments.SuiteSources(synth.SuiteSPEC, cfg),
			experiments.SuiteSources(synth.SuiteIBS, cfg)...)
	default:
		for _, name := range strings.Split(*wl, ",") {
			src, err := workloads.Get(strings.TrimSpace(name), workloads.Options{Dynamic: *dynamic})
			if err != nil {
				return err
			}
			sources = append(sources, trace.Materialize(src))
		}
	}

	known := schemes()
	var sel []scheme
	for _, k := range strings.Split(*schemeL, ",") {
		sc, ok := known[strings.TrimSpace(k)]
		if !ok {
			return fmt.Errorf("unknown scheme %q", k)
		}
		sel = append(sel, sc)
	}

	// rate[scheme][size][workload]
	var fails []string
	for _, sc := range sel {
		fmt.Fprintf(out, "\n%s\n", sc.name)
		fmt.Fprintf(out, "%-12s", "workload")
		for s := *minBits; s <= *maxBits; s++ {
			fmt.Fprintf(out, "%9.3gK", sc.cost(s)/1024)
		}
		fmt.Fprintln(out)
		perSize := make([][]sim.Result, 0, *maxBits-*minBits+1)
		for s := *minBits; s <= *maxBits; s++ {
			if sc.sweep {
				best := sched.FindBestGshare(s, sources)
				perSize = append(perSize, best.PerWorkload)
				continue
			}
			s := s
			jobs := make([]sim.Job, len(sources))
			for i, src := range sources {
				jobs[i] = sim.Job{Make: func() predictor.Predictor { return sc.mk(s) }, Source: src}
			}
			perSize = append(perSize, sched.RunAll(jobs))
		}
		for j, results := range perSize {
			for _, r := range results {
				if r.Err != nil {
					fails = append(fails, fmt.Sprintf("%s @ %s, size 2^%d: %v", sc.name, r.Workload, *minBits+j, r.Err))
				}
			}
		}
		for i, src := range sources {
			fmt.Fprintf(out, "%-12s", src.Name())
			for j := range perSize {
				fmt.Fprint(out, cellText(perSize[j][i]))
			}
			fmt.Fprintln(out)
		}
		fmt.Fprintf(out, "%-12s", "AVERAGE")
		for j := range perSize {
			fmt.Fprint(out, avgText(perSize[j]))
		}
		fmt.Fprintln(out)
	}
	if len(fails) > 0 {
		fmt.Fprintf(out, "\n%s", experiments.RenderFootnotes(fails))
		return fmt.Errorf("%d cell(s) did not complete", len(fails))
	}
	return nil
}

// cellText renders one table cell, degrading a failed cell to an aligned
// gap instead of a bogus number.
func cellText(r sim.Result) string {
	if r.Err != nil {
		return fmt.Sprintf("%10s", "--")
	}
	return fmt.Sprintf("%10.2f", 100*r.MispredictRate())
}

// avgText renders a suite-average cell; any failed constituent makes the
// average a gap (a partial average would silently misstate the suite).
func avgText(results []sim.Result) string {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Sprintf("%10s", "--")
		}
	}
	return fmt.Sprintf("%10.2f", 100*sim.AverageRate(results))
}
