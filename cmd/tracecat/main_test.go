package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bimode/internal/trace"
)

// fixture writes a small row-format trace to dir and returns its path.
func fixture(t *testing.T, dir string) string {
	t.Helper()
	recs := make([]trace.Record, 300)
	for i := range recs {
		recs[i] = trace.Record{PC: uint64(0x2000 + 8*(i%11)), Static: uint32(i % 11), Taken: i%4 != 0}
	}
	m := trace.NewMemory("fixture", 11, recs)
	path := filepath.Join(dir, "fixture.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, m); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConvertThenVerify(t *testing.T) {
	dir := t.TempDir()
	row := fixture(t, dir)
	col := filepath.Join(dir, "fixture.bmc")
	var out bytes.Buffer
	if err := run([]string{"convert", "-o", col, row}, &out); err != nil {
		t.Fatalf("convert to columnar: %v", err)
	}
	data, err := os.ReadFile(col)
	if err != nil {
		t.Fatal(err)
	}
	if !trace.IsColumnar(data) {
		t.Fatalf("convert did not produce a columnar file")
	}
	if err := run([]string{"verify", row, col}, &out); err != nil {
		t.Fatalf("verify row vs columnar: %v", err)
	}
	// Round trip back to varint and verify against the original.
	back := filepath.Join(dir, "back.trace")
	if err := run([]string{"convert", "-format", "varint", "-o", back, col}, &out); err != nil {
		t.Fatalf("convert back to varint: %v", err)
	}
	if err := run([]string{"verify", row, back}, &out); err != nil {
		t.Fatalf("verify after round trip: %v", err)
	}
	if !strings.Contains(out.String(), "identical") {
		t.Fatalf("verify output does not say identical: %q", out.String())
	}
}

func TestVerifyDetectsDifferences(t *testing.T) {
	dir := t.TempDir()
	row := fixture(t, dir)
	other := filepath.Join(dir, "other.trace")
	m := trace.NewMemory("fixture", 11, []trace.Record{{PC: 1, Static: 0, Taken: true}})
	f, err := os.Create(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, m); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if err := run([]string{"verify", row, other}, &out); err == nil {
		t.Fatalf("verify accepted differing traces")
	}
}

func TestImportTextCapture(t *testing.T) {
	dir := t.TempDir()
	capture := filepath.Join(dir, "capture.txt")
	lines := "# capture\n0x1000 1\n0x1008,0\n0x1000 t\n"
	if err := os.WriteFile(capture, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	col := filepath.Join(dir, "capture.bmc")
	var out bytes.Buffer
	if err := run([]string{"import", "-name", "cap", "-o", col, capture}, &out); err != nil {
		t.Fatalf("import: %v", err)
	}
	data, err := os.ReadFile(col)
	if err != nil {
		t.Fatal(err)
	}
	m, err := trace.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "cap" || m.Len() != 3 || m.StaticCount() != 2 {
		t.Fatalf("imported trace shape (%q,%d,%d), want (cap,2,3)", m.Name(), m.StaticCount(), m.Len())
	}
	if err := run([]string{"info", col}, &out); err != nil {
		t.Fatalf("info on imported columnar: %v", err)
	}
	if !strings.Contains(out.String(), "columnar") {
		t.Fatalf("info did not report the columnar layout: %q", out.String())
	}
}

func TestInfoBothFormats(t *testing.T) {
	dir := t.TempDir()
	row := fixture(t, dir)
	col := filepath.Join(dir, "fixture.bmc")
	var out bytes.Buffer
	if err := run([]string{"convert", "-o", col, row}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"info", row}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "varint") {
		t.Fatalf("info on row file: %q", out.String())
	}
	out.Reset()
	if err := run([]string{"info", col}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "blocks of") {
		t.Fatalf("info on columnar file lacks block layout: %q", out.String())
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	row := fixture(t, dir)
	var out bytes.Buffer
	cases := [][]string{
		{},
		{"frobnicate"},
		{"convert", row},
		{"convert", "-o", filepath.Join(dir, "x.bmc"), "/nonexistent.trace"},
		{"convert", "-format", "bogus", "-o", filepath.Join(dir, "x.bmc"), row},
		{"import", "-o", filepath.Join(dir, "x.bmc"), "/nonexistent.txt"},
		{"info"},
		{"info", "/nonexistent.trace"},
		{"verify", row},
		{"verify", row, "/nonexistent.trace"},
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
