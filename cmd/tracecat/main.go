// Command tracecat converts, imports, inspects and verifies on-disk
// branch traces. It is the migration path between the legacy row varint
// format ("BMT1") and the block-compressed columnar format ("BMC1"),
// and the entry point for external (pc, taken) captures.
//
// Usage:
//
//	tracecat convert -o gcc.bmc gcc.trace          # row -> columnar
//	tracecat convert -format varint -o x.trace x.bmc
//	tracecat import -name capture -o cap.bmc capture.txt
//	tracecat info gcc.bmc                          # sniff + stats
//	tracecat verify gcc.trace gcc.bmc              # record-for-record proof
//
// Every subcommand sniffs input formats from the magic, so conversion is
// idempotent and verify compares traces across formats.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bimode/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracecat:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("need a subcommand: convert, import, info, or verify")
	}
	switch args[0] {
	case "convert":
		return runConvert(args[1:], out)
	case "import":
		return runImport(args[1:], out)
	case "info":
		return runInfo(args[1:], out)
	case "verify":
		return runVerify(args[1:], out)
	}
	return fmt.Errorf("unknown subcommand %q (want convert, import, info, or verify)", args[0])
}

// writeAs encodes m to path in the requested format and reports the
// resulting size.
func writeAs(out io.Writer, path, format string, block int, m *trace.Memory) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case "varint":
		err = trace.Write(f, m)
	case "columnar":
		err = trace.WriteColumnarBlocks(f, m, block)
	default:
		err = fmt.Errorf("unknown -format %q (want varint or columnar)", format)
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	perBranch := 0.0
	if m.Len() > 0 {
		perBranch = float64(st.Size()) / float64(m.Len())
	}
	fmt.Fprintf(out, "wrote %s (%s): %d branches, %d bytes (%.2f bytes/branch)\n",
		path, format, m.Len(), st.Size(), perBranch)
	return nil
}

func runConvert(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracecat convert", flag.ContinueOnError)
	var (
		o      = fs.String("o", "", "output trace file")
		format = fs.String("format", "columnar", "output format: varint or columnar")
		block  = fs.Int("block", trace.DefaultColumnarBlock, "records per block for columnar output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *o == "" || fs.NArg() != 1 {
		return fmt.Errorf("usage: tracecat convert -o <out> [-format varint|columnar] <in>")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	m, err := trace.Decode(data)
	if err != nil {
		return err
	}
	return writeAs(out, *o, *format, *block, m)
}

func runImport(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracecat import", flag.ContinueOnError)
	var (
		o      = fs.String("o", "", "output trace file")
		name   = fs.String("name", "", "workload name for the imported trace (default: input filename)")
		format = fs.String("format", "columnar", "output format: varint or columnar")
		block  = fs.Int("block", trace.DefaultColumnarBlock, "records per block for columnar output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *o == "" || fs.NArg() != 1 {
		return fmt.Errorf("usage: tracecat import -o <out> [-name <name>] <capture.txt>")
	}
	in := fs.Arg(0)
	if *name == "" {
		*name = in
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	m, err := trace.ImportText(f, *name)
	f.Close()
	if err != nil {
		return err
	}
	return writeAs(out, *o, *format, *block, m)
}

func runInfo(args []string, out io.Writer) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: tracecat info <file>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	if trace.IsColumnar(data) {
		c, err := trace.OpenColumnar(data)
		if err != nil {
			return err
		}
		m := trace.Materialize(c)
		stats := trace.Collect(m)
		fmt.Fprintf(out, "%s: columnar, %d blocks of %d, %d static sites (%d declared), %d dynamic branches, %.1f%% taken\n",
			stats.Name, c.NumBlocks(), c.BlockSize(), stats.StaticBranches, m.StaticCount(),
			stats.DynamicBranches, 100*stats.TakenRate())
		return nil
	}
	m, err := trace.Decode(data)
	if err != nil {
		return err
	}
	stats := trace.Collect(m)
	fmt.Fprintf(out, "%s: varint, %d static sites (%d declared), %d dynamic branches, %.1f%% taken\n",
		stats.Name, stats.StaticBranches, m.StaticCount(), stats.DynamicBranches, 100*stats.TakenRate())
	return nil
}

func runVerify(args []string, out io.Writer) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: tracecat verify <a> <b>")
	}
	mems := make([]*trace.Memory, 2)
	for i, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if mems[i], err = trace.Decode(data); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	a, b := mems[0], mems[1]
	if a.Name() != b.Name() {
		return fmt.Errorf("names differ: %q vs %q", a.Name(), b.Name())
	}
	if a.StaticCount() != b.StaticCount() {
		return fmt.Errorf("static counts differ: %d vs %d", a.StaticCount(), b.StaticCount())
	}
	if a.Len() != b.Len() {
		return fmt.Errorf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Records() {
		if a.Records()[i] != b.Records()[i] {
			return fmt.Errorf("record %d differs: %+v vs %+v", i, a.Records()[i], b.Records()[i])
		}
	}
	fmt.Fprintf(out, "identical: %q, %d static sites, %d branches\n", a.Name(), a.StaticCount(), a.Len())
	return nil
}
