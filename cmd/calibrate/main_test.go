package main

import "testing"

func TestCalibrateRuns(t *testing.T) {
	if err := run([]string{"-w", "xlisp", "-n", "30000", "-i", "8"}); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateErrors(t *testing.T) {
	if err := run([]string{"-w", "bogus"}); err == nil {
		t.Fatalf("unknown benchmark must fail")
	}
	if err := run([]string{"-zzz"}); err == nil {
		t.Fatalf("bad flag must fail")
	}
}
