// Command calibrate prints the diagnostic measurements used to calibrate
// the synthetic workloads against the paper's benchmarks: intrinsic
// predictability floors, per-branch history-pattern diversity, the
// misprediction-vs-history-length curve, and per-behavior-class error.
//
// Usage:
//
//	calibrate -w gcc
//	calibrate -w go -n 2000000 -i 12
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"bimode/internal/analysis"
	"bimode/internal/baselines"
	"bimode/internal/sim"
	"bimode/internal/synth"
	"bimode/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("calibrate", flag.ContinueOnError)
	var (
		wl        = fs.String("w", "gcc", "synthetic benchmark name")
		dynamic   = fs.Int("n", 1500000, "dynamic branches")
		indexBits = fs.Int("i", 12, "table size (log2 counters) for the history sweep")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	prof, ok := synth.ProfileByName(*wl)
	if !ok {
		return fmt.Errorf("unknown synthetic benchmark %q", *wl)
	}
	prof = prof.WithDynamic(*dynamic)
	src := trace.Materialize(synth.MustWorkload(prof))
	kinds := synth.SiteKinds(prof)

	floors(src, kinds)
	diversity(src)
	fmt.Printf("  %v\n", analysis.MeasureBiasDistribution(src))
	historySweep(src, *indexBits)
	return nil
}

// floors measures the best possible misprediction of per-static-majority
// and per-(static, 12-bit history)-majority oracles — lower bounds for
// address-indexed and history-indexed predictors respectively.
func floors(src trace.Source, kinds []string) {
	histMaj := map[uint64]*cnt{}
	staticMaj := map[uint32]*cnt{}
	perKindTot := map[string]int{}
	var ghr uint64
	n := 0
	st := src.Stream()
	for {
		r, ok := st.Next()
		if !ok {
			break
		}
		n++
		perKindTot[kinds[r.Static]]++
		hk := uint64(r.Static)<<12 | ghr&0xFFF
		for _, m := range []*cnt{getOr(histMaj, hk), getOrU32(staticMaj, r.Static)} {
			if r.Taken {
				m.t++
			} else {
				m.nt++
			}
		}
		ghr = ghr<<1 | b2u(r.Taken)
	}
	missOf := func(c *cnt) int {
		if c.nt < c.t {
			return c.nt
		}
		return c.t
	}
	mh, ms := 0, 0
	for _, c := range histMaj {
		mh += missOf(c)
	}
	for _, c := range staticMaj {
		ms += missOf(c)
	}
	fmt.Printf("%s: %d branches\n", src.Name(), n)
	fmt.Printf("  oracle floors: per-static %.2f%%, per-(static,12h) %.2f%% (%d substream contexts)\n",
		100*float64(ms)/float64(n), 100*float64(mh)/float64(n), len(histMaj))
	var ks []string
	for k := range perKindTot {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	fmt.Printf("  dynamic mix:")
	for _, k := range ks {
		fmt.Printf(" %s=%.1f%%", k, 100*float64(perKindTot[k])/float64(n))
	}
	fmt.Println()
}

// diversity reports dynamic-weighted history-pattern diversity per static
// branch, the quantity that controls table contention.
func diversity(src trace.Source) {
	patterns := map[uint32]map[uint64]int{}
	visits := map[uint32]int{}
	var ghr uint64
	n := 0
	st := src.Stream()
	for {
		r, ok := st.Next()
		if !ok {
			break
		}
		n++
		m := patterns[r.Static]
		if m == nil {
			m = map[uint64]int{}
			patterns[r.Static] = m
		}
		m[ghr&0xFFF]++
		visits[r.Static]++
		ghr = ghr<<1 | b2u(r.Taken)
	}
	wPat, wEnt := 0.0, 0.0
	for s, m := range patterns {
		H := 0.0
		for _, c := range m {
			p := float64(c) / float64(visits[s])
			H -= p * math.Log2(p)
		}
		wPat += float64(visits[s]) * float64(len(m))
		wEnt += float64(visits[s]) * H
	}
	fmt.Printf("  12-bit window diversity (dyn-weighted): %.1f patterns/static, %.2f bits entropy/static\n",
		wPat/float64(n), wEnt/float64(n))
}

// historySweep prints the misprediction-vs-history-length curve at one
// table size; its shape (dip at moderate history, recovery toward full
// history at large tables) is the calibration target.
func historySweep(src trace.Source, indexBits int) {
	sweep := sim.SweepGshare(indexBits, []trace.Source{src})
	fmt.Printf("  gshare rate vs history at 2^%d counters:", indexBits)
	for h := 0; h <= indexBits; h++ {
		fmt.Printf(" %d:%.2f", h, 100*sweep[h][0].MispredictRate())
	}
	fmt.Println()
	_ = baselines.NewSmith // keep import for future extensions
}

// cnt is a taken/not-taken tally.
type cnt struct{ nt, t int }

func getOr(m map[uint64]*cnt, k uint64) *cnt {
	v := m[k]
	if v == nil {
		v = &cnt{}
		m[k] = v
	}
	return v
}

func getOrU32(m map[uint32]*cnt, k uint32) *cnt {
	v := m[k]
	if v == nil {
		v = &cnt{}
		m[k] = v
	}
	return v
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
