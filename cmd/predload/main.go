// Command predload drives load at a running predserve instance and
// reports what the service actually delivered: completed sessions/sec,
// request latency percentiles (P50/P95/P99), and how the server degraded
// under pressure (429s with Retry-After versus hard failures).
//
// Each worker runs complete sessions in a loop for the test duration:
// create a session, stream a synthetic trace in fixed-size text chunks,
// fetch the final report, delete the session. Every HTTP round-trip is
// timed; overload rejections (429) are counted separately and never
// retried mid-session, so a saturated server shows up as honest 429
// counts rather than inflated latency.
//
// Usage:
//
//	predload -addr http://localhost:8470 -d 10s -workers 8
//	predload -addr http://localhost:8470 -d 5s -workers 32 -chunk 2000
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"bimode/internal/synth"
	"bimode/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "predload:", err)
		os.Exit(1)
	}
}

// result is one worker's tally, merged after the run.
type result struct {
	sessions  int
	requests  int
	rejected  int // 429s
	errors    int // anything else non-2xx, or transport failures
	latencies []time.Duration
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("predload", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8470", "predserve base URL")
		d       = fs.Duration("d", 5*time.Second, "test duration")
		workers = fs.Int("workers", 4, "concurrent session loops")
		chunk   = fs.Int("chunk", 1000, "records per ingest request")
		chunks  = fs.Int("chunks", 4, "ingest requests per session")
		spec    = fs.String("spec", "bimode:b=11", "predictor spec per session")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 || *chunk < 1 || *chunks < 1 {
		return fmt.Errorf("workers, chunk and chunks must be positive")
	}

	// One shared synthetic trace, rendered to text once; workers slice it.
	mem := trace.Materialize(synth.MustWorkload(synth.Profiles()[0].WithDynamic(*chunk * *chunks)))
	recs := mem.Records()
	bodies := make([]string, *chunks)
	for i := range bodies {
		var sb strings.Builder
		for _, rec := range recs[i**chunk : (i+1)**chunk] {
			dir := "0"
			if rec.Taken {
				dir = "1"
			}
			fmt.Fprintf(&sb, "0x%x %s\n", rec.PC, dir)
		}
		bodies[i] = sb.String()
	}

	base := strings.TrimRight(*addr, "/")
	tr := &http.Transport{MaxIdleConnsPerHost: *workers}
	client := &http.Client{Transport: tr, Timeout: 2 * time.Minute}
	defer tr.CloseIdleConnections()

	deadline := time.Now().Add(*d)
	results := make([]result, *workers)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[w] = worker(client, base, *spec, bodies, deadline)
		}()
	}
	wg.Wait()

	var total result
	for _, r := range results {
		total.sessions += r.sessions
		total.requests += r.requests
		total.rejected += r.rejected
		total.errors += r.errors
		total.latencies = append(total.latencies, r.latencies...)
	}
	elapsed := *d
	fmt.Fprintf(out, "predload: %d workers, %v against %s\n", *workers, elapsed, base)
	fmt.Fprintf(out, "sessions:     %d (%.1f sessions/sec)\n",
		total.sessions, float64(total.sessions)/elapsed.Seconds())
	fmt.Fprintf(out, "requests:     %d (%.1f req/sec)\n",
		total.requests, float64(total.requests)/elapsed.Seconds())
	fmt.Fprintf(out, "rejected 429: %d\n", total.rejected)
	fmt.Fprintf(out, "errors:       %d\n", total.errors)
	if len(total.latencies) > 0 {
		sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })
		fmt.Fprintf(out, "latency:      p50 %v  p95 %v  p99 %v  max %v\n",
			percentile(total.latencies, 50), percentile(total.latencies, 95),
			percentile(total.latencies, 99), total.latencies[len(total.latencies)-1].Round(time.Microsecond))
	}
	if total.sessions == 0 && total.errors > 0 {
		return fmt.Errorf("no session completed (%d errors)", total.errors)
	}
	return nil
}

// worker runs complete sessions until the deadline. A session that hits
// an overload rejection or an error is abandoned (counted, not retried):
// the load generator measures the server's policy, it does not fight it.
func worker(client *http.Client, base, spec string, bodies []string, deadline time.Time) result {
	var res result
	for time.Now().Before(deadline) {
		id, ok := oneRequest(client, &res, "POST", base+"/v1/sessions",
			fmt.Sprintf(`{"name":"predload","specs":[%q]}`, spec), http.StatusCreated)
		if !ok {
			continue
		}
		alive := true
		for _, body := range bodies {
			if _, ok := oneRequest(client, &res, "POST", base+"/v1/sessions/"+id+"/branches", body, http.StatusOK); !ok {
				alive = false
				break
			}
		}
		if alive {
			if _, ok := oneRequest(client, &res, "GET", base+"/v1/sessions/"+id, "", http.StatusOK); ok {
				res.sessions++
			}
		}
		oneRequest(client, &res, "DELETE", base+"/v1/sessions/"+id, "", http.StatusOK)
	}
	return res
}

// oneRequest performs and times a single round-trip, classifying the
// outcome into the tally. It returns the response's session id (when the
// body carries one) and whether the request landed the wanted status.
func oneRequest(client *http.Client, res *result, method, url, body string, want int) (string, bool) {
	var rd io.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		res.errors++
		return "", false
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		res.errors++
		return "", false
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	res.requests++
	res.latencies = append(res.latencies, time.Since(start))
	switch {
	case resp.StatusCode == want:
		var rep struct {
			ID string `json:"id"`
		}
		json.Unmarshal(data, &rep)
		return rep.ID, true
	case resp.StatusCode == http.StatusTooManyRequests:
		res.rejected++
		return "", false
	default:
		res.errors++
		return "", false
	}
}

// percentile reads the p-th percentile from sorted latencies.
func percentile(sorted []time.Duration, p int) time.Duration {
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx].Round(time.Microsecond)
}
