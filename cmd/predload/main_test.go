package main

import (
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"bimode/internal/serve"
)

// startTarget spins an in-process prediction service for predload to hit.
func startTarget(t *testing.T, cfg serve.Config) string {
	t.Helper()
	cfg.Dir = t.TempDir()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL
}

var sessionsRE = regexp.MustCompile(`sessions:\s+(\d+)\s+\(([\d.]+) sessions/sec\)`)
var rejectedRE = regexp.MustCompile(`rejected 429:\s+(\d+)`)

// TestPredloadSmoke is the CI smoke: a short run against a healthy server
// must complete sessions at a non-zero rate, with latency percentiles in
// the output and no errors.
func TestPredloadSmoke(t *testing.T) {
	base := startTarget(t, serve.Config{})
	var out strings.Builder
	err := run([]string{"-addr", base, "-d", "500ms", "-workers", "2",
		"-chunk", "200", "-chunks", "2"}, &out)
	if err != nil {
		t.Fatalf("predload: %v\n%s", err, out.String())
	}
	m := sessionsRE.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no sessions line in output:\n%s", out.String())
	}
	n, _ := strconv.Atoi(m[1])
	rate, _ := strconv.ParseFloat(m[2], 64)
	if n == 0 || rate == 0 {
		t.Fatalf("zero sessions/sec against a healthy server:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "latency:") {
		t.Errorf("no latency line in output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "errors:       0") {
		t.Errorf("errors against a healthy server:\n%s", out.String())
	}
}

// TestPredloadOverload drives a deliberately starved server: the load
// generator must surface the 429s instead of hiding or retrying them.
func TestPredloadOverload(t *testing.T) {
	base := startTarget(t, serve.Config{
		IngestRate:  100, // far below what one worker produces
		IngestBurst: 100,
	})
	var out strings.Builder
	err := run([]string{"-addr", base, "-d", "500ms", "-workers", "4",
		"-chunk", "200", "-chunks", "2"}, &out)
	if err != nil {
		t.Fatalf("predload: %v\n%s", err, out.String())
	}
	m := rejectedRE.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no rejected line in output:\n%s", out.String())
	}
	if n, _ := strconv.Atoi(m[1]); n == 0 {
		t.Errorf("starved server produced zero 429s:\n%s", out.String())
	}
}

// TestPredloadNoServer pins the failure mode: nothing listening means a
// non-nil error, promptly.
func TestPredloadNoServer(t *testing.T) {
	var out strings.Builder
	start := time.Now()
	err := run([]string{"-addr", "http://127.0.0.1:1", "-d", "300ms", "-workers", "1"}, &out)
	if err == nil {
		t.Fatalf("no error with nothing listening:\n%s", out.String())
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("took %v to fail against a dead address", elapsed)
	}
}

// TestPredloadBadFlags pins flag validation.
func TestPredloadBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-workers", "0"}, &out); err == nil {
		t.Fatal("workers=0 accepted")
	}
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}
