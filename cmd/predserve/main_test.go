package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read run's output while run is still writing.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

var listenRE = regexp.MustCompile(`listening on (http://[^\s]+)`)

// startServer runs the binary's run() on an ephemeral port and waits for
// its listen line, returning the base URL and a cancel-and-wait stopper.
func startServer(t *testing.T, args ...string) (string, *syncBuffer, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return m[1], out, func() error {
				cancel()
				select {
				case err := <-errc:
					return err
				case <-time.After(10 * time.Second):
					t.Fatal("predserve did not drain within 10s")
					return nil
				}
			}
		}
		select {
		case err := <-errc:
			t.Fatalf("predserve exited before listening: %v\n%s", err, out.String())
		case <-time.After(10 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listen line within 5s:\n%s", out.String())
		}
	}
}

// TestServeIngestDrain is the binary's end-to-end smoke: serve, create a
// session, ingest, read the report, then drain cleanly on cancellation
// (the SIGTERM path, minus the signal).
func TestServeIngestDrain(t *testing.T) {
	base, out, stop := startServer(t, "-dir", t.TempDir(), "-grace", "5s")

	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()

	resp, err = http.Post(base+"/v1/sessions", "application/json",
		strings.NewReader(`{"name":"smoke","specs":["bimode:b=11"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || rep.ID == "" {
		t.Fatalf("create: status %d id %q", resp.StatusCode, rep.ID)
	}

	resp, err = http.Post(base+"/v1/sessions/"+rep.ID+"/branches", "text/plain",
		strings.NewReader("0x1000 1\n0x2000 0\n0x1000 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Accepted int `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res.Accepted != 3 {
		t.Fatalf("ingest accepted %d, want 3", res.Accepted)
	}

	if err := stop(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, want := range []string{"draining", "drained"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	// Past drain, the port is released.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Errorf("server still answering after drain")
	}
}

// TestDurabilityAcrossRestart: a second predserve over the same -dir
// resumes the first one's sessions.
func TestDurabilityAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	base, _, stop := startServer(t, "-dir", dir)
	resp, err := http.Post(base+"/v1/sessions", "application/json",
		strings.NewReader(`{"specs":["smith:a=12"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	resp, err = http.Post(base+"/v1/sessions/"+rep.ID+"/branches", "text/plain",
		strings.NewReader("0x1000 1\n0x2000 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := stop(); err != nil {
		t.Fatal(err)
	}

	base2, _, stop2 := startServer(t, "-dir", dir)
	defer stop2()
	resp, err = http.Get(base2 + "/v1/sessions/" + rep.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Cursor int `json:"cursor"`
	}
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || got.Cursor != 2 {
		t.Fatalf("restarted server: status %d cursor %d, want 200/2", resp.StatusCode, got.Cursor)
	}
}

// TestBadFlags pins the flag error path.
func TestBadFlags(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := run(ctx, []string{"-no-such-flag"}, io.Discard); err == nil {
		t.Fatal("bad flag accepted")
	}
}
