// Command predserve runs the prediction service (internal/serve):
// branch-prediction simulation as a crash-safe HTTP service. Clients
// open sessions naming predictor specs, stream branch traces — text
// captures, "BMT1" row binary, or "BMC1" columnar bodies — and read
// incremental mispredict / aliasing / H2P reports as the trace grows.
//
// Every acknowledged ingest is journaled before the response is sent, so
// killing the process (or the box) loses only unacknowledged requests:
// restart predserve over the same -dir and every session resumes at its
// reported cursor with byte-identical reports. SIGINT/SIGTERM drains
// gracefully: /readyz flips, new sessions are refused, in-flight work
// finishes within the -grace window.
//
// Usage:
//
//	predserve -dir /var/lib/predserve
//	predserve -addr :8470 -max-resident 32 -ingest-rate 2e6
//
//	curl -XPOST localhost:8470/v1/sessions -d '{"specs":["bimode:b=11"]}'
//	curl -XPOST localhost:8470/v1/sessions/<id>/branches --data-binary @capture.txt
//	curl localhost:8470/v1/sessions/<id>
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bimode/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "predserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("predserve", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8470", "listen address")
		dir         = fs.String("dir", "", "session journal directory (empty: a temp dir — no durability across restarts)")
		maxSessions = fs.Int("max-sessions", 1024, "cap on live sessions, resident or spilled")
		maxResident = fs.Int("max-resident", 64, "cap on sessions with predictors in memory (LRU spills past it)")
		maxInFlight = fs.Int("max-inflight", 64, "cap on concurrently executing session requests")
		maxBody     = fs.Int64("max-body", 8<<20, "cap on one request body, bytes")
		ingestRate  = fs.Float64("ingest-rate", 0, "records/second admitted across all sessions (0 = unlimited)")
		ingestBurst = fs.Float64("ingest-burst", 0, "token-bucket burst for -ingest-rate (default: the rate)")
		timeout     = fs.Duration("timeout", 30*time.Second, "per-request processing deadline")
		readTimeout = fs.Duration("read-timeout", 60*time.Second, "whole-request read deadline (bounds slow-loris bodies)")
		grace       = fs.Duration("grace", 15*time.Second, "drain window after SIGINT/SIGTERM")
		compact     = fs.Int64("compact", 4<<20, "journal size triggering compaction, bytes")
		topN        = fs.Int("top", 5, "H2P ranking length per spec report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := serve.Config{
		Dir:            *dir,
		MaxSessions:    *maxSessions,
		MaxResident:    *maxResident,
		MaxInFlight:    *maxInFlight,
		MaxBodyBytes:   *maxBody,
		IngestRate:     *ingestRate,
		IngestBurst:    *ingestBurst,
		RequestTimeout: *timeout,
		CompactBytes:   *compact,
		TopN:           *topN,
	}
	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "predserve: listening on http://%s\n", ln.Addr())

	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting sessions, let in-flight requests
	// finish inside the grace window, then force-close. The shutdown
	// context must outlive the (already canceled) signal context.
	fmt.Fprintf(out, "predserve: draining (grace %v)\n", *grace)
	s.BeginDrain()
	sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), *grace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	<-errc // Serve has returned ErrServerClosed
	fmt.Fprintln(out, "predserve: drained")
	return nil
}
