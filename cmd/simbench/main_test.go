package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestSimbenchSmoke(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	err := run([]string{"-o", out, "-n", "20000", "-reps", "1",
		"-specs", "bimode:b=8,gshare:i=10;h=10"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.GenericBranchesPerSec <= 0 || r.BatchedBranchesPerSec <= 0 {
			t.Errorf("%s: non-positive throughput: %+v", r.Spec, r)
		}
		if r.Branches != 6*20000 {
			t.Errorf("%s: branches = %d, want %d (6 SPEC workloads x 20000)", r.Spec, r.Branches, 6*20000)
		}
		if r.Mispredicts <= 0 || r.Mispredicts >= r.Branches {
			t.Errorf("%s: implausible mispredict count %d", r.Spec, r.Mispredicts)
		}
	}
	if len(rep.Workloads) != 6 {
		t.Errorf("got %d workloads, want 6", len(rep.Workloads))
	}
	if rep.Decode == nil {
		t.Fatalf("report is missing the decode-throughput entry")
	}
	if rep.Decode.Records != 6*20000 {
		t.Errorf("decode entry covered %d records, want %d", rep.Decode.Records, 6*20000)
	}
	if rep.Decode.VarintRecordsPerSec <= 0 || rep.Decode.ColumnarRecordsPerSec <= 0 || rep.Decode.Speedup <= 0 {
		t.Errorf("non-positive decode throughput: %+v", rep.Decode)
	}
	if rep.Decode.VarintBytes <= 0 || rep.Decode.ColumnarBytes <= 0 {
		t.Errorf("decode entry lacks encoded sizes: %+v", rep.Decode)
	}
}

func TestSimbenchErrors(t *testing.T) {
	if err := run([]string{"-n", "0"}); err == nil {
		t.Error("expected error for -n 0")
	}
	if err := run([]string{"-specs", "nosuch:x=1", "-n", "1000"}); err == nil {
		t.Error("expected error for unknown spec")
	}
	if err := run([]string{"-bogusflag"}); err == nil {
		t.Error("expected flag parse error")
	}
	if err := run([]string{"-tol", "1.5", "-n", "1000"}); err == nil {
		t.Error("expected error for out-of-range -tol")
	}
	if err := run([]string{"-against", "no-such-baseline.json",
		"-specs", "smith:a=8", "-n", "1000", "-reps", "1",
		"-o", filepath.Join(t.TempDir(), "bench.json")}); err == nil {
		t.Error("expected error for missing baseline file")
	}
}

// TestGuardAgainst exercises the CI regression guard directly: ratios at
// or above the geomean floor pass, suite-wide drops beyond tol fail, a
// single collapsed spec fails even when the geomean survives, and
// degenerate baselines (no overlap, unreadable, malformed) fail loudly
// rather than vacuously passing.
func TestGuardAgainst(t *testing.T) {
	dir := t.TempDir()
	writeBase := func(name string, rep Report) string {
		t.Helper()
		path := filepath.Join(dir, name)
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := writeBase("base.json", Report{Results: []Result{
		{Spec: "bimode:b=8", Speedup: 2.0},
		{Spec: "smith:a=10", Speedup: 1.5},
	}})

	cases := []struct {
		name    string
		fresh   []Result
		tol     float64
		wantErr bool
	}{
		{"unchanged", []Result{{Spec: "bimode:b=8", Speedup: 2.0}, {Spec: "smith:a=10", Speedup: 1.5}}, 0.05, false},
		{"within tol", []Result{{Spec: "bimode:b=8", Speedup: 1.91}}, 0.05, false},
		{"improved", []Result{{Spec: "smith:a=10", Speedup: 3.0}}, 0.05, false},
		{"suite-wide regression", []Result{{Spec: "bimode:b=8", Speedup: 1.7}}, 0.05, true},
		{"one of two regressed", []Result{{Spec: "bimode:b=8", Speedup: 2.0}, {Spec: "smith:a=10", Speedup: 1.0}}, 0.05, true},
		{"single collapse, geomean ok", []Result{{Spec: "bimode:b=8", Speedup: 3.2}, {Spec: "smith:a=10", Speedup: 0.75}}, 0.15, true},
		{"zero tol exact", []Result{{Spec: "bimode:b=8", Speedup: 2.0}}, 0, false},
		{"unknown specs only", []Result{{Spec: "other:x=1", Speedup: 9.0}}, 0.05, true},
	}
	for _, tc := range cases {
		err := guardAgainst(base, Report{Results: tc.fresh}, tc.tol)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: guardAgainst err = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
	}

	if err := guardAgainst(filepath.Join(dir, "absent.json"), Report{Results: cases[0].fresh}, 0.05); err == nil {
		t.Error("missing baseline file should fail")
	}
	badPath := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := guardAgainst(badPath, Report{Results: cases[0].fresh}, 0.05); err == nil {
		t.Error("malformed baseline should fail")
	}

	// Decode-throughput guard: covered when both reports carry the entry,
	// machine-relative, per-spec-style floor of 1-3*tol.
	decBase := writeBase("decode-base.json", Report{
		Results: []Result{{Spec: "bimode:b=8", Speedup: 2.0}},
		Decode:  &DecodeResult{Speedup: 8.0},
	})
	okFresh := Report{
		Results: []Result{{Spec: "bimode:b=8", Speedup: 2.0}},
		Decode:  &DecodeResult{Speedup: 7.5},
	}
	if err := guardAgainst(decBase, okFresh, 0.15); err != nil {
		t.Errorf("decode within tolerance failed the guard: %v", err)
	}
	collapsedFresh := Report{
		Results: []Result{{Spec: "bimode:b=8", Speedup: 2.0}},
		Decode:  &DecodeResult{Speedup: 3.0},
	}
	if err := guardAgainst(decBase, collapsedFresh, 0.15); err == nil {
		t.Error("collapsed decode speedup passed the guard")
	}
	// A fresh report without a decode entry still guards the spec results.
	if err := guardAgainst(decBase, Report{Results: okFresh.Results}, 0.15); err != nil {
		t.Errorf("missing fresh decode entry should not fail the guard: %v", err)
	}
}

// TestSimbenchGuardEndToEnd runs a tiny measurement, then re-runs it in
// guard mode against its own output with a generous tolerance — the shape
// CI uses against the committed BENCH_sim.json.
func TestSimbenchGuardEndToEnd(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := run([]string{"-o", base, "-n", "5000", "-reps", "1", "-specs", "smith:a=10"}); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-o", filepath.Join(dir, "fresh.json"), "-n", "5000", "-reps", "1",
		"-specs", "smith:a=10", "-against", base, "-tol", "0.95"})
	if err != nil {
		t.Fatalf("guard run failed: %v", err)
	}
}
