package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestSimbenchSmoke(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	err := run([]string{"-o", out, "-n", "20000", "-reps", "1",
		"-specs", "bimode:b=8,gshare:i=10;h=10"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.GenericBranchesPerSec <= 0 || r.BatchedBranchesPerSec <= 0 {
			t.Errorf("%s: non-positive throughput: %+v", r.Spec, r)
		}
		if r.Branches != 6*20000 {
			t.Errorf("%s: branches = %d, want %d (6 SPEC workloads x 20000)", r.Spec, r.Branches, 6*20000)
		}
		if r.Mispredicts <= 0 || r.Mispredicts >= r.Branches {
			t.Errorf("%s: implausible mispredict count %d", r.Spec, r.Mispredicts)
		}
	}
	if len(rep.Workloads) != 6 {
		t.Errorf("got %d workloads, want 6", len(rep.Workloads))
	}
}

func TestSimbenchErrors(t *testing.T) {
	if err := run([]string{"-n", "0"}); err == nil {
		t.Error("expected error for -n 0")
	}
	if err := run([]string{"-specs", "nosuch:x=1", "-n", "1000"}); err == nil {
		t.Error("expected error for unknown spec")
	}
	if err := run([]string{"-bogusflag"}); err == nil {
		t.Error("expected flag parse error")
	}
}
