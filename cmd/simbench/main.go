// Command simbench measures simulation-engine throughput (branches/sec)
// for the generic Predict/Update loop vs the batched capability fast
// path over the SPEC suite, and writes the comparison as JSON. The
// committed BENCH_sim.json at the repository root is this command's
// output and serves as the baseline for future performance work.
//
// Usage:
//
//	simbench                          # default specs, write BENCH_sim.json
//	simbench -o bench.json -reps 5
//	simbench -specs bimode:b=11 -n 100000
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"bimode/internal/experiments"
	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/synth"
	"bimode/internal/trace"
	"bimode/internal/zoo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
}

// defaultSpecs covers each fast-path tier: full BatchRunner loops
// (bi-mode, gshare, smith), fused Steppers (tri-mode, GAs), and the
// generic loop as the common baseline.
const defaultSpecs = "bimode:b=11,trimode:b=10,gshare:i=12;h=12,smith:a=12,gas:h=10;s=2"

// defaultDynamic keeps each workload's record slice (16 B/branch)
// cache-resident so the measurement reflects the engines rather than
// DRAM bandwidth; see internal/sim/throughput_bench_test.go.
const defaultDynamic = 1 << 18

// Result is one spec's generic-vs-batched comparison, suite-aggregated.
type Result struct {
	Spec                  string  `json:"spec"`
	Predictor             string  `json:"predictor"`
	GenericBranchesPerSec float64 `json:"generic_branches_per_sec"`
	BatchedBranchesPerSec float64 `json:"batched_branches_per_sec"`
	Speedup               float64 `json:"speedup"`
	Branches              int     `json:"branches"`
	Mispredicts           int     `json:"mispredicts"`
}

// SuiteParallel is the suite-level scheduler measurement: the full
// (spec x workload) job grid dispatched through the sequential reference
// scheduler and through worker pools of increasing width. Unlike the
// per-spec engine numbers it measures RunAll itself — pool dispatch,
// shared materialization and result collection. The Workers/Parallel*
// fields are the widest (GOMAXPROCS) point of the curve. On a
// single-core host every speedup sits near 1.0 by construction — above
// it only by what the pool saves in dispatch overhead — and the guard
// never reads these fields (pool speedup is a property of the host's
// core count, not the code).
type SuiteParallel struct {
	Jobs                     int           `json:"jobs"`
	Workers                  int           `json:"workers"`
	SequentialBranchesPerSec float64       `json:"sequential_branches_per_sec"`
	ParallelBranchesPerSec   float64       `json:"parallel_branches_per_sec"`
	Speedup                  float64       `json:"speedup"`
	Curve                    []WorkerPoint `json:"curve"`
}

// WorkerPoint is one pool width's measurement of the suite grid.
type WorkerPoint struct {
	Workers        int     `json:"workers"`
	BranchesPerSec float64 `json:"branches_per_sec"`
	// Speedup is relative to the sequential reference scheduler.
	Speedup float64 `json:"speedup"`
}

// DecodeResult compares on-disk trace decode throughput: the legacy row
// varint decoder (trace.Read, record at a time through a byte reader)
// against columnar block iteration (trace.OpenColumnar + BlockStream,
// a block of records at a time over raw slices). Both decode the same
// suite of workloads; Speedup is columnar over varint on this host.
type DecodeResult struct {
	Records               int     `json:"records"`
	VarintBytes           int     `json:"varint_bytes"`
	ColumnarBytes         int     `json:"columnar_bytes"`
	VarintRecordsPerSec   float64 `json:"varint_records_per_sec"`
	ColumnarRecordsPerSec float64 `json:"columnar_records_per_sec"`
	Speedup               float64 `json:"speedup"`
}

// Report is the top-level BENCH_sim.json document.
type Report struct {
	Suite              string         `json:"suite"`
	Workloads          []string       `json:"workloads"`
	DynamicPerWorkload int            `json:"dynamic_per_workload"`
	Reps               int            `json:"reps"`
	GoVersion          string         `json:"go_version"`
	GOARCH             string         `json:"goarch"`
	Results            []Result       `json:"results"`
	SuiteParallel      *SuiteParallel `json:"suite_parallel,omitempty"`
	Decode             *DecodeResult  `json:"decode,omitempty"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("simbench", flag.ContinueOnError)
	var (
		out     = fs.String("o", "BENCH_sim.json", "output JSON file")
		specs   = fs.String("specs", defaultSpecs, "comma-separated predictor specs (use ';' for spec-internal separators)")
		n       = fs.Int("n", defaultDynamic, "dynamic branches per SPEC workload")
		reps    = fs.Int("reps", 3, "repetitions per measurement (best is kept)")
		against = fs.String("against", "", "baseline report to guard against: fail when batched/generic speedups regress vs the baseline by more than -tol")
		tol     = fs.Float64("tol", 0.15, "allowed fractional regression for -against: geomean floor 1-tol, per-spec floor 1-3*tol")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 || *reps <= 0 {
		return fmt.Errorf("-n and -reps must be positive")
	}
	if *tol < 0 || *tol >= 1 {
		return fmt.Errorf("-tol must be in [0,1)")
	}

	srcs := experiments.SuiteSources(synth.SuiteSPEC, experiments.Config{Dynamic: *n})
	if len(srcs) == 0 {
		return fmt.Errorf("no SPEC workloads")
	}
	var names []string
	for _, p := range synth.Profiles() {
		if p.Suite == synth.SuiteSPEC {
			names = append(names, p.Name)
		}
	}

	rep := Report{
		Suite:              synth.SuiteSPEC,
		Workloads:          names,
		DynamicPerWorkload: *n,
		Reps:               *reps,
		GoVersion:          runtime.Version(),
		GOARCH:             runtime.GOARCH,
	}

	var parsed []string
	for _, raw := range strings.Split(*specs, ",") {
		spec := strings.ReplaceAll(strings.TrimSpace(raw), ";", ",")
		if spec == "" {
			continue
		}
		p, err := zoo.New(spec)
		if err != nil {
			return err
		}
		parsed = append(parsed, spec)
		genSecs, genMiss, branches := measure(sim.RunGeneric, spec, srcs, *reps)
		batSecs, batMiss, _ := measure(sim.Run, spec, srcs, *reps)
		if genMiss != batMiss {
			return fmt.Errorf("%s: engines disagree: generic %d mispredicts, batched %d", spec, genMiss, batMiss)
		}
		r := Result{
			Spec:                  spec,
			Predictor:             p.Name(),
			GenericBranchesPerSec: float64(branches) / genSecs,
			BatchedBranchesPerSec: float64(branches) / batSecs,
			Branches:              branches,
			Mispredicts:           batMiss,
		}
		r.Speedup = r.BatchedBranchesPerSec / r.GenericBranchesPerSec
		rep.Results = append(rep.Results, r)
		fmt.Printf("%-20s generic %6.1f Mbr/s  batched %6.1f Mbr/s  speedup %.2fx\n",
			spec, r.GenericBranchesPerSec/1e6, r.BatchedBranchesPerSec/1e6, r.Speedup)
	}

	if len(rep.Results) == 0 {
		return fmt.Errorf("no specs to measure")
	}

	sp := measureSuite(parsed, srcs, *reps)
	rep.SuiteParallel = &sp
	fmt.Printf("%-20s seq %9.1f Mbr/s  (%d jobs)\n",
		"suite RunAll", sp.SequentialBranchesPerSec/1e6, sp.Jobs)
	for _, pt := range sp.Curve {
		fmt.Printf("%-20s pool(%d) %7.1f Mbr/s  speedup %.2fx\n",
			"", pt.Workers, pt.BranchesPerSec/1e6, pt.Speedup)
	}

	dec, err := measureDecode(srcs, *reps)
	if err != nil {
		return err
	}
	rep.Decode = &dec
	fmt.Printf("%-20s varint %6.1f Mrec/s  columnar %6.1f Mrec/s  speedup %.2fx\n",
		"trace decode", dec.VarintRecordsPerSec/1e6, dec.ColumnarRecordsPerSec/1e6, dec.Speedup)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)

	if *against != "" {
		if err := guardAgainst(*against, rep, *tol); err != nil {
			return err
		}
		fmt.Printf("guard: within %.0f%% of %s\n", 100**tol, *against)
	}
	return nil
}

// guardAgainst is the CI benchmark-smoke guard. For every spec present in
// both the fresh measurement and the baseline report it forms the ratio of
// batched/generic speedups (fresh over baseline) — a machine-relative
// quantity, since absolute branches/sec means nothing on CI hardware that
// differs from the machine that wrote the baseline — and fails when:
//
//   - the geometric mean of the ratios drops below 1-tol, the signature of
//     overhead creeping into the shared fast path (e.g. instrumentation
//     leaking into sim.Run), which depresses every spec together; or
//   - any single ratio drops below 1-3*tol, the signature of one tier
//     silently losing its capability fast path and falling back to the
//     generic loop.
//
// Per-spec ratios are individually noisy (short measurements, shared CI
// cores), which is why the suite-wide check uses the geometric mean and
// the per-spec floor is 3x looser.
//
// When both the fresh report and the baseline carry a decode entry, the
// same machine-relative treatment covers it: the columnar/varint decode
// speedup ratio (fresh over baseline) must stay above the per-spec floor
// 1-3*tol, catching the columnar block decoder silently losing its edge
// over the record-at-a-time path.
func guardAgainst(path string, fresh Report, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseBySpec := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseBySpec[r.Spec] = r
	}
	var collapsed []string
	logSum, matched := 0.0, 0
	for _, r := range fresh.Results {
		b, ok := baseBySpec[r.Spec]
		if !ok || b.Speedup <= 0 || r.Speedup <= 0 {
			continue
		}
		matched++
		ratio := r.Speedup / b.Speedup
		logSum += math.Log(ratio)
		if ratio < 1-3*tol {
			collapsed = append(collapsed, fmt.Sprintf(
				"%s: speedup %.2fx is %.0f%% below baseline %.2fx (per-spec floor %.0f%%)",
				r.Spec, r.Speedup, 100*(1-ratio), b.Speedup, 100*3*tol))
		}
	}
	if matched == 0 {
		return fmt.Errorf("guard: no measured spec appears in baseline %s", path)
	}
	if len(collapsed) > 0 {
		return fmt.Errorf("guard: fast path collapsed for:\n  %s", strings.Join(collapsed, "\n  "))
	}
	if gm := math.Exp(logSum / float64(matched)); gm < 1-tol {
		return fmt.Errorf("guard: suite-wide fast-path regression: geomean speedup ratio %.3f below floor %.3f (%d specs vs %s)",
			gm, 1-tol, matched, path)
	}
	if fresh.Decode != nil && base.Decode != nil && base.Decode.Speedup > 0 && fresh.Decode.Speedup > 0 {
		if ratio := fresh.Decode.Speedup / base.Decode.Speedup; ratio < 1-3*tol {
			return fmt.Errorf("guard: decode throughput collapsed: columnar/varint speedup %.2fx is %.0f%% below baseline %.2fx",
				fresh.Decode.Speedup, 100*(1-ratio), base.Decode.Speedup)
		}
	}
	return nil
}

// measureDecode times full-file decode of the suite in both on-disk
// formats, best of reps passes per workload per format. The varint path
// is trace.Read — the record-at-a-time decoder every pre-columnar tool
// used; the columnar path is trace.OpenColumnar (index + checksum
// validation) plus a full BlockStream drain, the exact sequence
// sim.Run's block dispatch performs.
func measureDecode(srcs []trace.Source, reps int) (DecodeResult, error) {
	var dec DecodeResult
	rows := make([][]byte, len(srcs))
	cols := make([][]byte, len(srcs))
	for i, src := range srcs {
		m := trace.Materialize(src)
		dec.Records += m.Len()
		var row, col bytes.Buffer
		if err := trace.Write(&row, m); err != nil {
			return dec, err
		}
		if err := trace.WriteColumnar(&col, m); err != nil {
			return dec, err
		}
		rows[i], cols[i] = row.Bytes(), col.Bytes()
		dec.VarintBytes += row.Len()
		dec.ColumnarBytes += col.Len()
	}

	timeBest := func(pass func() (int, error)) (float64, error) {
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			n, err := pass()
			if err != nil {
				return 0, err
			}
			if n != dec.Records {
				return 0, fmt.Errorf("decode pass yielded %d records, want %d", n, dec.Records)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best.Seconds(), nil
	}

	varSecs, err := timeBest(func() (int, error) {
		n := 0
		for _, data := range rows {
			m, err := trace.Read(bytes.NewReader(data))
			if err != nil {
				return 0, err
			}
			n += m.Len()
		}
		return n, nil
	})
	if err != nil {
		return dec, err
	}
	colSecs, err := timeBest(func() (int, error) {
		n := 0
		for _, data := range cols {
			c, err := trace.OpenColumnar(data)
			if err != nil {
				return 0, err
			}
			bs := c.BlockStream()
			for {
				recs, err := bs.NextBlock()
				if err != nil {
					return 0, err
				}
				if recs == nil {
					break
				}
				n += len(recs)
			}
		}
		return n, nil
	})
	if err != nil {
		return dec, err
	}
	dec.VarintRecordsPerSec = float64(dec.Records) / varSecs
	dec.ColumnarRecordsPerSec = float64(dec.Records) / colSecs
	dec.Speedup = dec.ColumnarRecordsPerSec / dec.VarintRecordsPerSec
	return dec, nil
}

// suiteWorkerCounts returns the pool widths the suite curve samples:
// powers of two up to GOMAXPROCS, always ending at GOMAXPROCS itself.
func suiteWorkerCounts() []int {
	max := runtime.GOMAXPROCS(0)
	var counts []int
	for w := 1; w < max; w *= 2 {
		counts = append(counts, w)
	}
	return append(counts, max)
}

// measureSuite times the full (spec x workload) grid through RunAll on
// the sequential reference scheduler and on pools of every width in
// suiteWorkerCounts, keeping each path's best of reps passes. Every
// width runs the identical grid, so each curve point isolates what that
// pool width buys (or costs) at suite granularity on this host.
func measureSuite(specs []string, srcs []trace.Source, reps int) SuiteParallel {
	var jobs []sim.Job
	for _, spec := range specs {
		spec := spec
		for _, src := range srcs {
			jobs = append(jobs, sim.Job{
				Make:   func() predictor.Predictor { return zoo.MustNew(spec) },
				Source: src,
			})
		}
	}
	branches := 0
	grid := func(s *sim.Scheduler) float64 {
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			results := s.RunAll(jobs)
			if d := time.Since(start); d < best {
				best = d
			}
			if rep == 0 {
				branches = 0
				for _, r := range results {
					branches += r.Branches
				}
			}
		}
		return best.Seconds()
	}
	seqSecs := grid(sim.NewScheduler(0))
	sp := SuiteParallel{
		Jobs:                     len(jobs),
		SequentialBranchesPerSec: float64(branches) / seqSecs,
	}
	for _, w := range suiteWorkerCounts() {
		secs := grid(sim.NewScheduler(w))
		sp.Curve = append(sp.Curve, WorkerPoint{
			Workers:        w,
			BranchesPerSec: float64(branches) / secs,
			Speedup:        seqSecs / secs,
		})
		// The widest point doubles as the headline parallel measurement.
		sp.Workers = w
		sp.ParallelBranchesPerSec = float64(branches) / secs
		sp.Speedup = seqSecs / secs
	}
	return sp
}

// measure runs the given engine for one spec over every source, reps
// times per workload, keeping each workload's best (minimum) wall time
// so the first pass's cold-cache cost is excluded. It returns the summed
// best times alongside the suite totals, which are identical across reps
// because the predictor is reset before every pass.
func measure(engine func(p predictor.Predictor, src trace.Source) sim.Result, spec string, srcs []trace.Source, reps int) (secs float64, mispredicts, branches int) {
	p := zoo.MustNew(spec)
	total := time.Duration(0)
	for _, src := range srcs {
		best := time.Duration(1<<63 - 1)
		var res sim.Result
		for rep := 0; rep < reps; rep++ {
			p.Reset()
			start := time.Now()
			res = engine(p, src)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		total += best
		mispredicts += res.Mispredicts
		branches += res.Branches
	}
	return total.Seconds(), mispredicts, branches
}
