// Command simbench measures simulation-engine throughput (branches/sec)
// for the generic Predict/Update loop vs the batched capability fast
// path over the SPEC suite, and writes the comparison as JSON. The
// committed BENCH_sim.json at the repository root is this command's
// output and serves as the baseline for future performance work.
//
// Usage:
//
//	simbench                          # default specs, write BENCH_sim.json
//	simbench -o bench.json -reps 5
//	simbench -specs bimode:b=11 -n 100000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"bimode/internal/experiments"
	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/synth"
	"bimode/internal/trace"
	"bimode/internal/zoo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
}

// defaultSpecs covers each fast-path tier: full BatchRunner loops
// (bi-mode, gshare, smith), fused Steppers (tri-mode, GAs), and the
// generic loop as the common baseline.
const defaultSpecs = "bimode:b=11,trimode:b=10,gshare:i=12;h=12,smith:a=12,gas:h=10;s=2"

// defaultDynamic keeps each workload's record slice (16 B/branch)
// cache-resident so the measurement reflects the engines rather than
// DRAM bandwidth; see internal/sim/throughput_bench_test.go.
const defaultDynamic = 1 << 18

// Result is one spec's generic-vs-batched comparison, suite-aggregated.
type Result struct {
	Spec                  string  `json:"spec"`
	Predictor             string  `json:"predictor"`
	GenericBranchesPerSec float64 `json:"generic_branches_per_sec"`
	BatchedBranchesPerSec float64 `json:"batched_branches_per_sec"`
	Speedup               float64 `json:"speedup"`
	Branches              int     `json:"branches"`
	Mispredicts           int     `json:"mispredicts"`
}

// Report is the top-level BENCH_sim.json document.
type Report struct {
	Suite              string   `json:"suite"`
	Workloads          []string `json:"workloads"`
	DynamicPerWorkload int      `json:"dynamic_per_workload"`
	Reps               int      `json:"reps"`
	GoVersion          string   `json:"go_version"`
	GOARCH             string   `json:"goarch"`
	Results            []Result `json:"results"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("simbench", flag.ContinueOnError)
	var (
		out   = fs.String("o", "BENCH_sim.json", "output JSON file")
		specs = fs.String("specs", defaultSpecs, "comma-separated predictor specs (use ';' for spec-internal separators)")
		n     = fs.Int("n", defaultDynamic, "dynamic branches per SPEC workload")
		reps  = fs.Int("reps", 3, "repetitions per measurement (best is kept)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 || *reps <= 0 {
		return fmt.Errorf("-n and -reps must be positive")
	}

	srcs := experiments.SuiteSources(synth.SuiteSPEC, experiments.Config{Dynamic: *n})
	if len(srcs) == 0 {
		return fmt.Errorf("no SPEC workloads")
	}
	var names []string
	for _, p := range synth.Profiles() {
		if p.Suite == synth.SuiteSPEC {
			names = append(names, p.Name)
		}
	}

	rep := Report{
		Suite:              synth.SuiteSPEC,
		Workloads:          names,
		DynamicPerWorkload: *n,
		Reps:               *reps,
		GoVersion:          runtime.Version(),
		GOARCH:             runtime.GOARCH,
	}

	for _, raw := range strings.Split(*specs, ",") {
		spec := strings.ReplaceAll(strings.TrimSpace(raw), ";", ",")
		if spec == "" {
			continue
		}
		p, err := zoo.New(spec)
		if err != nil {
			return err
		}
		genSecs, genMiss, branches := measure(sim.RunGeneric, spec, srcs, *reps)
		batSecs, batMiss, _ := measure(sim.Run, spec, srcs, *reps)
		if genMiss != batMiss {
			return fmt.Errorf("%s: engines disagree: generic %d mispredicts, batched %d", spec, genMiss, batMiss)
		}
		r := Result{
			Spec:                  spec,
			Predictor:             p.Name(),
			GenericBranchesPerSec: float64(branches) / genSecs,
			BatchedBranchesPerSec: float64(branches) / batSecs,
			Branches:              branches,
			Mispredicts:           batMiss,
		}
		r.Speedup = r.BatchedBranchesPerSec / r.GenericBranchesPerSec
		rep.Results = append(rep.Results, r)
		fmt.Printf("%-20s generic %6.1f Mbr/s  batched %6.1f Mbr/s  speedup %.2fx\n",
			spec, r.GenericBranchesPerSec/1e6, r.BatchedBranchesPerSec/1e6, r.Speedup)
	}

	if len(rep.Results) == 0 {
		return fmt.Errorf("no specs to measure")
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// measure runs the given engine for one spec over every source, reps
// times per workload, keeping each workload's best (minimum) wall time
// so the first pass's cold-cache cost is excluded. It returns the summed
// best times alongside the suite totals, which are identical across reps
// because the predictor is reset before every pass.
func measure(engine func(p predictor.Predictor, src trace.Source) sim.Result, spec string, srcs []trace.Source, reps int) (secs float64, mispredicts, branches int) {
	p := zoo.MustNew(spec)
	total := time.Duration(0)
	for _, src := range srcs {
		best := time.Duration(1<<63 - 1)
		var res sim.Result
		for rep := 0; rep < reps; rep++ {
			p.Reset()
			start := time.Now()
			res = engine(p, src)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		total += best
		mispredicts += res.Mispredicts
		branches += res.Branches
	}
	return total.Seconds(), mispredicts, branches
}
