// Command fingerprint probes a branch predictor from the outside and
// reports the structure the probe suite infers: history depth and
// scope, index width, index-hash class, table capacity and
// choice-mechanism presence, each with a separation confidence.
//
// Usage:
//
//	fingerprint -p bimode:b=11                 # one spec, text report
//	fingerprint -p bimode:b=11 -o json         # machine-readable report
//	fingerprint -p bimode:b=11 -against        # diff vs declared geometry
//	fingerprint -all -against                  # audit the whole zoo
//
// With -against the command compares the inferred structure to the
// spec's declared geometry (zoo.Describe) through the observability
// adapter and exits non-zero on any disagreement — the command-line
// twin of TestFingerprintZoo.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"bimode/internal/fingerprint"
	"bimode/internal/predictor"
	"bimode/internal/zoo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fingerprint:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fingerprint", flag.ContinueOnError)
	var (
		predList = fs.String("p", "", "semicolon-separated predictor specs to probe")
		all      = fs.Bool("all", false, "probe every example spec the zoo knows")
		output   = fs.String("o", "text", "output format: text or json")
		against  = fs.Bool("against", false, "diff the inference against the spec's declared geometry; non-zero exit on mismatch")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "probe worker goroutines (0 = sequential reference path)")
		rounds   = fs.Int("rounds", 0, "repetitions per probe (0 = default)")
		maxh     = fs.Int("maxh", 0, "history-sweep ceiling in bits (0 = default)")
		maxk     = fs.Int("maxk", 0, "stride-sweep ceiling in bits (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *output != "text" && *output != "json" {
		return fmt.Errorf("unknown output format %q (want text or json)", *output)
	}

	var specs []string
	if *all {
		specs = zoo.Known()
	} else if *predList != "" {
		for _, s := range strings.Split(*predList, ";") {
			if s = strings.TrimSpace(s); s != "" {
				specs = append(specs, s)
			}
		}
	}
	if len(specs) == 0 {
		return fmt.Errorf("no predictors selected; use -p spec[;spec...] or -all")
	}

	opts := fingerprint.Options{Rounds: *rounds, MaxHistory: *maxh, MaxIndexBits: *maxk, Workers: *parallel}
	mismatched := 0
	for i, spec := range specs {
		spec := spec
		if _, err := zoo.New(spec); err != nil {
			return err
		}
		rep := fingerprint.Fingerprint(spec, func() predictor.Predictor { return zoo.MustNew(spec) }, opts)

		switch *output {
		case "json":
			b, err := rep.JSON()
			if err != nil {
				return err
			}
			fmt.Fprintln(out, string(b))
		default:
			if i > 0 {
				fmt.Fprintln(out)
			}
			fmt.Fprint(out, rep.String())
		}

		if *against {
			g, err := zoo.Describe(spec)
			if err != nil {
				return err
			}
			diffs := fingerprint.Expected(g, opts).Diff(rep)
			if len(diffs) == 0 {
				fmt.Fprintf(out, "  against declared geometry: MATCH\n")
			} else {
				mismatched++
				fmt.Fprintf(out, "  against declared geometry: %d mismatches\n", len(diffs))
				for _, d := range diffs {
					fmt.Fprintf(out, "    %s\n", d)
				}
			}
		}
	}
	if mismatched > 0 {
		return fmt.Errorf("%d of %d predictors disagree with their declared geometry", mismatched, len(specs))
	}
	return nil
}
