package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestFingerprintCmdText(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-p", "gshare:i=12,h=8", "-parallel", "2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"fingerprint: gshare:i=12,h=8", "history bits", "pc index bits", "stride sweep"} {
		if !strings.Contains(got, want) {
			t.Errorf("text output missing %q:\n%s", want, got)
		}
	}
}

func TestFingerprintCmdJSON(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-p", "smith:a=12", "-o", "json", "-parallel", "2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep struct {
		Predictor   string `json:"predictor"`
		HistoryBits int    `json:"history_bits"`
		IndexHash   string `json:"index_hash"`
		PCIndexBits int    `json:"pc_index_bits"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if rep.Predictor != "smith:a=12" || rep.IndexHash != "pc" || rep.PCIndexBits != 12 {
		t.Errorf("unexpected report: %+v", rep)
	}
}

func TestFingerprintCmdAgainst(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-p", "bimode:b=11", "-against", "-parallel", "2"}, &out); err != nil {
		t.Fatalf("run -against: %v", err)
	}
	if !strings.Contains(out.String(), "against declared geometry: MATCH") {
		t.Errorf("expected a MATCH line:\n%s", out.String())
	}
}

func TestFingerprintCmdErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Error("no predictors selected: want error")
	}
	if err := run([]string{"-p", "nosuch:x=1"}, &out); err == nil {
		t.Error("unknown spec: want error")
	}
	if err := run([]string{"-p", "taken", "-o", "yaml"}, &out); err == nil {
		t.Error("unknown output format: want error")
	}
}
