package trace

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzColumnarRoundTrip is the columnar sibling of FuzzRoundTrip, with a
// stronger corruption clause the checksummed format can actually
// promise: any trace the writer produces at any block size must decode
// back record-for-record through the block iterator; every strict prefix
// must be rejected with a located *ColumnarDecodeError; and a
// single-byte flip anywhere in the file must yield a typed error —
// never a wrong-answer decode (the row format only promises not to
// panic; the per-block CRCs upgrade that to detection).
func FuzzColumnarRoundTrip(f *testing.F) {
	f.Add("gcc", uint16(8), uint16(4), []byte{0x01, 0x02, 0x03, 0x04, 0xFF, 0x00, 0x10, 0x81})
	f.Add("", uint16(1), uint16(1), []byte{})
	f.Add("block-boundary", uint16(16), uint16(3), bytes.Repeat([]byte{0x5A, 0x01, 0x03, 0x01}, 9))
	f.Add("one-giant-block", uint16(64), uint16(512), bytes.Repeat([]byte{0x10, 0x00, 0x01, 0x00}, 32))
	f.Add("single", uint16(2), uint16(7), []byte{0xFE, 0xFF, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, name string, statics, blockSize uint16, raw []byte) {
		nStatics := int(statics)%1024 + 1
		bs := int(blockSize)%512 + 1
		// Same structured record synthesis as FuzzRoundTrip: 4 bytes per
		// record, capped so the prefix and flip scans stay fast.
		if len(raw) > 4*64 {
			raw = raw[:4*64]
		}
		var recs []Record
		pc := uint64(0x1000)
		for i := 0; i+4 <= len(raw); i += 4 {
			delta := int64(int16(uint16(raw[i]) | uint16(raw[i+1])<<8))
			pc += uint64(delta * 4)
			recs = append(recs, Record{
				PC:     pc,
				Static: uint32(int(raw[i+2]) % nStatics),
				Taken:  raw[i+3]&1 != 0,
			})
		}
		m := NewMemory(name, nStatics, recs)

		var buf bytes.Buffer
		if err := WriteColumnarBlocks(&buf, m, bs); err != nil {
			t.Fatalf("WriteColumnarBlocks(%d) failed on a valid trace: %v", bs, err)
		}
		enc := buf.Bytes()

		c, err := OpenColumnar(enc)
		if err != nil {
			t.Fatalf("OpenColumnar rejected WriteColumnarBlocks output: %v", err)
		}
		if c.Name() != m.Name() || c.StaticCount() != m.StaticCount() || c.Len() != m.Len() {
			t.Fatalf("shape changed: (%q,%d,%d) vs (%q,%d,%d)",
				c.Name(), c.StaticCount(), c.Len(), m.Name(), m.StaticCount(), m.Len())
		}
		got, err := drainAll(c)
		if err != nil {
			t.Fatalf("block iteration failed on a valid file: %v", err)
		}
		if len(got) != len(recs) {
			t.Fatalf("decoded %d records, want %d", len(got), len(recs))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("record %d changed: %+v vs %+v", i, got[i], recs[i])
			}
		}

		// Truncation at EVERY boundary: the header declares the record
		// count and block size, so no strict prefix can be complete. The
		// error must locate itself — a block index in range (or -1 for the
		// header) and a byte offset inside the prefix.
		numBlocks := int64(c.NumBlocks())
		for cut := 0; cut < len(enc); cut++ {
			_, err := OpenColumnar(enc[:cut])
			if err == nil {
				t.Fatalf("truncation to %d/%d bytes was accepted", cut, len(enc))
			}
			var dec *ColumnarDecodeError
			if !errors.As(err, &dec) {
				t.Fatalf("truncation to %d bytes: error %v is not a *ColumnarDecodeError", cut, err)
			}
			if dec.Offset < 0 || dec.Offset > int64(cut) {
				t.Fatalf("truncation to %d bytes: offset %d outside the prefix", cut, dec.Offset)
			}
			if dec.Block < -1 || dec.Block >= numBlocks {
				t.Fatalf("truncation to %d bytes: block index %d out of range", cut, dec.Block)
			}
		}

		// A single-byte flip derived from the input must be DETECTED, not
		// merely survived: either OpenColumnar rejects it (header CRC,
		// structure, or block CRC) or — if the flip somehow leaves the
		// index valid — the decode itself errors. Silently returning
		// records from a damaged file is the failure this format exists to
		// rule out.
		if len(enc) > 0 && len(raw) > 1 {
			pos := int(raw[0]) % len(enc)
			corrupt := append([]byte{}, enc...)
			corrupt[pos] ^= raw[1] | 1
			c2, err := OpenColumnar(corrupt)
			if err == nil {
				if _, derr := drainAll(c2); derr == nil {
					t.Fatalf("flip of %#x at byte %d/%d decoded silently",
						raw[1]|1, pos, len(enc))
				}
			} else {
				var dec *ColumnarDecodeError
				if !errors.As(err, &dec) {
					t.Fatalf("flip at byte %d: error %v is not a *ColumnarDecodeError", pos, err)
				}
			}
		}
	})
}
