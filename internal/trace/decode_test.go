package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func encodedFixture(t *testing.T) (*Memory, []byte) {
	t.Helper()
	recs := []Record{
		{PC: 0x1000, Static: 0, Taken: true},
		{PC: 0x1010, Static: 1, Taken: false},
		{PC: 0x1000, Static: 0, Taken: true},
		{PC: 0x1024, Static: 2, Taken: true},
	}
	m := NewMemory("decode-fixture", 3, recs)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return m, buf.Bytes()
}

// TestDecodeErrorLocatesHeaderDamage: failures before any record carry
// Record == -1 and still satisfy errors.Is(err, ErrBadFormat).
func TestDecodeErrorLocatesHeaderDamage(t *testing.T) {
	_, err := Read(strings.NewReader("NOPE...."))
	var dec *DecodeError
	if !errors.As(err, &dec) {
		t.Fatalf("bad magic: error %v is not a *DecodeError", err)
	}
	if dec.Record != -1 {
		t.Errorf("header failure reported record %d, want -1", dec.Record)
	}
	if !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad magic no longer unwraps to ErrBadFormat: %v", err)
	}
	if !strings.Contains(err.Error(), "header") {
		t.Errorf("header failure message does not say so: %q", err)
	}
}

// TestDecodeErrorLocatesMidStreamTruncation: a file cut inside the
// record stream names the record being decoded and the byte offset of
// the cut, and unwraps to the standard truncation sentinel.
func TestDecodeErrorLocatesMidStreamTruncation(t *testing.T) {
	m, enc := encodedFixture(t)
	// Cut two bytes into the record payload region: past the header, so
	// the failure lands on a record, not the header.
	cut := len(enc) - 3
	_, err := Read(bytes.NewReader(enc[:cut]))
	var dec *DecodeError
	if !errors.As(err, &dec) {
		t.Fatalf("truncated stream: error %v is not a *DecodeError", err)
	}
	if dec.Record < 0 || dec.Record >= int64(m.Len()) {
		t.Errorf("record index %d out of range [0,%d)", dec.Record, m.Len())
	}
	if dec.Offset <= 0 || dec.Offset > int64(cut) {
		t.Errorf("offset %d outside the %d-byte prefix", dec.Offset, cut)
	}
	if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncation does not unwrap to an EOF sentinel: %v", err)
	}
}

// recordStarts returns the byte offset where each record of m's encoding
// begins, derived from the encoding itself: the header is identical for
// any record count below 128 and the delta chain of a prefix encodes
// byte-identically, so the length of the i-record prefix encoding IS
// record i's start offset.
func recordStarts(t *testing.T, m *Memory) []int {
	t.Helper()
	starts := make([]int, m.Len())
	for i := range starts {
		var buf bytes.Buffer
		if err := Write(&buf, NewMemory(m.Name(), m.StaticCount(), m.Records()[:i])); err != nil {
			t.Fatalf("Write prefix %d: %v", i, err)
		}
		starts[i] = buf.Len()
	}
	return starts
}

// TestDecodeErrorOffsetAnchors pins the DecodeError.Offset contract: the
// offset is the first byte of the damaged field, for corruption and
// truncation alike. The decoder used to report consumed-byte counts,
// which anchored truncation at the cut point but corruption one field
// past the damage; this is the regression test for that fix.
func TestDecodeErrorOffsetAnchors(t *testing.T) {
	m, enc := encodedFixture(t)
	starts := recordStarts(t, m)
	last := m.Len() - 1

	// Corrupt the last record's outcome word (static out of range): the
	// damage is the word itself, which starts the record.
	corrupt := append([]byte(nil), enc...)
	corrupt[starts[last]] = byte(m.StaticCount()) << 1
	_, err := Read(bytes.NewReader(corrupt))
	var dec *DecodeError
	if !errors.As(err, &dec) {
		t.Fatalf("corrupt outcome word: %v is not a *DecodeError", err)
	}
	if dec.Record != int64(last) || dec.Offset != int64(starts[last]) {
		t.Errorf("corrupt outcome word located at (record %d, byte %d), want (%d, %d)",
			dec.Record, dec.Offset, last, starts[last])
	}

	// Cut mid-varint inside record 0's pc delta (the delta field starts
	// one byte after the record, and zigzag(0x1000) encodes in two
	// bytes): the error must anchor at the field start, not the cut.
	deltaStart := starts[0] + 1
	if _, err := Read(bytes.NewReader(enc[:deltaStart+1])); !errors.As(err, &dec) {
		t.Fatalf("mid-varint cut: %v is not a *DecodeError", err)
	}
	if dec.Record != 0 || dec.Offset != int64(deltaStart) {
		t.Errorf("mid-varint cut located at (record %d, byte %d), want (0, %d)",
			dec.Record, dec.Offset, deltaStart)
	}

	// Cut exactly on a record boundary: the missing record's first field
	// starts at the cut.
	if _, err := Read(bytes.NewReader(enc[:starts[2]])); !errors.As(err, &dec) {
		t.Fatalf("boundary cut: %v is not a *DecodeError", err)
	}
	if dec.Record != 2 || dec.Offset != int64(starts[2]) {
		t.Errorf("boundary cut located at (record %d, byte %d), want (2, %d)",
			dec.Record, dec.Offset, starts[2])
	}
}

// TestDecodeErrorLocatesCorruptRecord: structural damage inside a record
// (an out-of-range static site) reports the record index and offset and
// remains an ErrBadFormat.
func TestDecodeErrorLocatesCorruptRecord(t *testing.T) {
	m, enc := encodedFixture(t)
	// The last record's outcome word is 2 bytes from the end (site<<1|taken,
	// then the pc delta). Force its site beyond the static count.
	corrupt := append([]byte(nil), enc...)
	corrupt[len(corrupt)-2] = byte(m.StaticCount()) << 1
	_, err := Read(bytes.NewReader(corrupt))
	var dec *DecodeError
	if !errors.As(err, &dec) {
		t.Fatalf("corrupt record: error %v is not a *DecodeError", err)
	}
	if !errors.Is(err, ErrBadFormat) {
		t.Errorf("corrupt record no longer unwraps to ErrBadFormat: %v", err)
	}
	if dec.Record != int64(m.Len()-1) {
		t.Errorf("corrupt record reported index %d, want %d", dec.Record, m.Len()-1)
	}
	if dec.Offset <= 0 || dec.Offset > int64(len(corrupt)) {
		t.Errorf("offset %d outside the file", dec.Offset)
	}
}
