// Package trace defines the branch-trace representation shared by the
// workload generators, the simulator, and the analysis tooling, together
// with a compact binary on-disk format.
//
// The paper's traces (IBS-Ultrix hardware-monitor traces and SPEC CINT95
// ATOM traces) record, per dynamic conditional branch, the branch address
// and its outcome; that is exactly what a Record carries. Branch sites
// additionally carry a stable dense identifier so the Section 4 analysis
// can attribute substreams to static branches without hashing PCs.
package trace

import "context"

// Record is one dynamic conditional branch.
type Record struct {
	// PC is the branch instruction address. Word-aligned; bit 63 may carry
	// the backward-branch flag consumed by the static BTFN predictor (see
	// baselines.BackwardBit) and is masked off by table indexing because
	// indices use low bits only.
	PC uint64
	// Static is the dense identifier of the static branch site this
	// dynamic branch belongs to, in [0, trace's StaticCount).
	Static uint32
	// Taken is the resolved branch direction.
	Taken bool
}

// Stream is a source of dynamic branches. Implementations are single-use
// and not safe for concurrent use; obtain a fresh Stream per simulation
// from a Source.
type Stream interface {
	// Next returns the next dynamic branch. ok is false when the stream is
	// exhausted.
	Next() (rec Record, ok bool)
}

// Batched is the optional Source capability behind the simulator's fast
// path: a source whose entire trace is available as one flat slice, so a
// simulation loop can range over records instead of paying an interface
// call per branch. *Memory implements it. The returned slice must be
// identical to what Stream would produce and must not be mutated by
// callers.
type Batched interface {
	// Records returns the full trace in stream order.
	Records() []Record
}

// Sized is the optional Source capability of knowing the trace length
// without draining a stream; Materialize uses it to preallocate exactly.
type Sized interface {
	// Len returns the number of dynamic branches a fresh Stream yields.
	Len() int
}

// Source produces identical fresh Streams on demand, allowing the
// multi-pass analyses (Figures 7-8) and parallel sweeps to replay one
// workload many times.
type Source interface {
	// Name identifies the workload, e.g. "gcc".
	Name() string
	// StaticCount returns the number of static branch sites that can
	// appear in the stream (the bound on Record.Static).
	StaticCount() int
	// Stream returns a fresh stream positioned at the first branch. The
	// stream contents are identical on every call.
	Stream() Stream
}

// SliceStream adapts an in-memory record slice to the Stream interface.
type SliceStream struct {
	recs []Record
	pos  int
}

// NewSliceStream returns a Stream over recs.
func NewSliceStream(recs []Record) *SliceStream { return &SliceStream{recs: recs} }

// Next implements Stream.
func (s *SliceStream) Next() (Record, bool) {
	if s.pos >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// Memory is an in-memory Source: a named, fully materialized trace.
type Memory struct {
	name    string
	statics int
	recs    []Record
}

// NewMemory returns an in-memory Source over recs. statics must bound
// every Record.Static.
func NewMemory(name string, statics int, recs []Record) *Memory {
	return &Memory{name: name, statics: statics, recs: recs}
}

// Name implements Source.
func (m *Memory) Name() string { return m.name }

// StaticCount implements Source.
func (m *Memory) StaticCount() int { return m.statics }

// Stream implements Source.
func (m *Memory) Stream() Stream { return NewSliceStream(m.recs) }

// Len returns the number of dynamic branches in the trace.
func (m *Memory) Len() int { return len(m.recs) }

// Records exposes the underlying records; callers must not mutate them.
func (m *Memory) Records() []Record { return m.recs }

// Materialize drains a Source into an in-memory trace, which is cheaper to
// replay than regenerating. Traces at this repository's default scale
// (2M branches x 16 bytes) fit comfortably in memory. A *Memory source is
// returned as-is (it is already materialized and immutable); sources
// implementing Sized get an exact preallocation instead of growth
// doublings.
func Materialize(src Source) *Memory {
	m, err := MaterializeContext(context.Background(), src)
	if err != nil {
		// The background context never cancels, so this fires only for a
		// damaged Blocked source — the same panic its Stream would raise.
		panic(err)
	}
	return m
}

// MaterializeContext is Materialize with cooperative cancellation: while
// draining the stream it checks ctx between 64K-record chunks and
// abandons the materialization with ctx's error, so a canceled or
// deadline-bounded suite is not stuck behind an expensive (or stalled)
// generator. With a non-cancelable ctx the check compiles down to
// nothing and the drain is identical to Materialize.
func MaterializeContext(ctx context.Context, src Source) (*Memory, error) {
	return MaterializeIntoContext(ctx, src, nil)
}

// MaterializeIntoContext is MaterializeContext draining into a caller-
// provided buffer: buf's capacity is reused (its contents are discarded)
// and grown only if the source outgrows it. This is the arena entry point
// for callers that materialize traces repeatedly — the sim scheduler
// recycles the record slices of traces it materialized internally — and
// it is exactly MaterializeContext when buf is nil. The returned Memory
// aliases buf's array when it sufficed; the caller must not reuse buf
// while the Memory is live.
func MaterializeIntoContext(ctx context.Context, src Source, buf []Record) (*Memory, error) {
	if m, ok := src.(*Memory); ok {
		return m, nil
	}
	capacity := 1 << 20
	if s, ok := src.(Sized); ok {
		if n := s.Len(); n >= 0 {
			capacity = n
		}
	}
	cancelable := ctx.Done() != nil
	recs := buf[:0]
	if cap(recs) < capacity {
		recs = make([]Record, 0, capacity)
	}
	// Block-capable sources drain block-at-a-time: one bulk append per
	// block instead of a Next interface call per record, with the
	// cooperative cancellation check at block granularity. This is the
	// path that makes columnar files cheap to materialize into the
	// scheduler's arena buffers.
	if bl, ok := src.(Blocked); ok {
		bs := bl.BlockStream()
		for {
			if cancelable {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			batch, err := bs.NextBlock()
			if err != nil {
				return nil, err
			}
			if batch == nil {
				break
			}
			recs = append(recs, batch...)
		}
		return NewMemory(src.Name(), src.StaticCount(), recs), nil
	}
	st := src.Stream()
	for {
		if cancelable && len(recs)&(1<<16-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		r, ok := st.Next()
		if !ok {
			break
		}
		recs = append(recs, r)
	}
	return NewMemory(src.Name(), src.StaticCount(), recs), nil
}
