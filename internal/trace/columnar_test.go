package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// synthetic builds a deterministic n-record trace exercising the
// encoder's interesting cases: clustered forward/backward PC deltas, the
// bit-63 backward flag, dense static reuse.
func synthetic(name string, n int) *Memory {
	rng := rand.New(rand.NewSource(int64(n)*7919 + 17))
	statics := n/4 + 1
	recs := make([]Record, n)
	pc := uint64(0x400000)
	for i := range recs {
		pc += uint64(int64(rng.Intn(64)-16) * 4)
		p := pc
		if rng.Intn(8) == 0 {
			p |= 1 << 63 // backward-branch flag
		}
		recs[i] = Record{PC: p, Static: uint32(rng.Intn(statics)), Taken: rng.Intn(3) != 0}
	}
	return NewMemory(name, statics, recs)
}

func encodeColumnar(t *testing.T, m *Memory, blockSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteColumnarBlocks(&buf, m, blockSize); err != nil {
		t.Fatalf("WriteColumnarBlocks(%d): %v", blockSize, err)
	}
	return buf.Bytes()
}

func drainBlocks(t *testing.T, c *Columnar) []Record {
	t.Helper()
	bs := c.BlockStream()
	var out []Record
	for {
		recs, err := bs.NextBlock()
		if err != nil {
			t.Fatalf("NextBlock: %v", err)
		}
		if recs == nil {
			return out
		}
		out = append(out, recs...)
	}
}

func TestColumnarRoundTrip(t *testing.T) {
	m := synthetic("columnar-rt", 10_000)
	enc := encodeColumnar(t, m, DefaultColumnarBlock)
	c, err := OpenColumnar(enc)
	if err != nil {
		t.Fatalf("OpenColumnar: %v", err)
	}
	if c.Name() != m.Name() || c.StaticCount() != m.StaticCount() || c.Len() != m.Len() {
		t.Fatalf("shape changed: (%q,%d,%d) vs (%q,%d,%d)",
			c.Name(), c.StaticCount(), c.Len(), m.Name(), m.StaticCount(), m.Len())
	}
	got := drainBlocks(t, c)
	if len(got) != m.Len() {
		t.Fatalf("decoded %d records, want %d", len(got), m.Len())
	}
	for i, r := range got {
		if r != m.Records()[i] {
			t.Fatalf("record %d changed: %+v vs %+v", i, r, m.Records()[i])
		}
	}
}

// TestColumnarBlockBoundaries is the table-driven boundary sweep the
// issue calls for: 0, 1, N-1, N, N+1 and 3N+1 records at block size N
// must all index into the right number of blocks, hand out full blocks
// except the last, and reproduce the records exactly — through both the
// block iterator and the record stream.
func TestColumnarBlockBoundaries(t *testing.T) {
	const N = 64
	for _, n := range []int{0, 1, N - 1, N, N + 1, 3*N + 1} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			m := synthetic("boundary", n)
			enc := encodeColumnar(t, m, N)
			c, err := OpenColumnar(enc)
			if err != nil {
				t.Fatalf("OpenColumnar: %v", err)
			}
			wantBlocks := (n + N - 1) / N
			if c.NumBlocks() != wantBlocks {
				t.Fatalf("%d records at block %d indexed %d blocks, want %d", n, N, c.NumBlocks(), wantBlocks)
			}
			bs := c.BlockStream()
			seen := 0
			for b := 0; ; b++ {
				recs, err := bs.NextBlock()
				if err != nil {
					t.Fatalf("block %d: %v", b, err)
				}
				if recs == nil {
					break
				}
				want := N
				if b == wantBlocks-1 {
					want = n - (wantBlocks-1)*N
				}
				if len(recs) != want {
					t.Fatalf("block %d holds %d records, want %d", b, len(recs), want)
				}
				for k, r := range recs {
					if r != m.Records()[seen+k] {
						t.Fatalf("block %d record %d differs", b, k)
					}
				}
				seen += len(recs)
			}
			if seen != n {
				t.Fatalf("iterated %d records, want %d", seen, n)
			}
			// The record stream must agree with the block iterator.
			st := c.Stream()
			for i := 0; i < n; i++ {
				r, ok := st.Next()
				if !ok || r != m.Records()[i] {
					t.Fatalf("stream record %d: ok=%v r=%+v want %+v", i, ok, r, m.Records()[i])
				}
			}
			if _, ok := st.Next(); ok {
				t.Fatalf("stream yielded a record past the end")
			}
		})
	}
}

// TestColumnarTruncation: every strict prefix of a columnar file must be
// rejected at OpenColumnar with a located *ColumnarDecodeError — the
// record count is declared up front, so no prefix can satisfy it.
func TestColumnarTruncation(t *testing.T) {
	m := synthetic("torn", 3*16+5)
	enc := encodeColumnar(t, m, 16)
	for cut := 0; cut < len(enc); cut++ {
		_, err := OpenColumnar(enc[:cut])
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes was accepted", cut, len(enc))
		}
		var dec *ColumnarDecodeError
		if !errors.As(err, &dec) {
			t.Fatalf("truncation to %d bytes: %v is not a *ColumnarDecodeError", cut, err)
		}
		if dec.Offset < 0 || dec.Offset > int64(cut) {
			t.Fatalf("truncation to %d bytes: offset %d outside the prefix", cut, dec.Offset)
		}
		if dec.Block < -1 || dec.Block >= int64((m.Len()+15)/16) {
			t.Fatalf("truncation to %d bytes: block %d out of range", cut, dec.Block)
		}
	}
}

// TestColumnarTornFinalBlock pins the named edge case: a file cut inside
// its last (partial) block reports that block's index.
func TestColumnarTornFinalBlock(t *testing.T) {
	const N = 16
	m := synthetic("torn-final", 2*N+7) // final block holds 7 records
	enc := encodeColumnar(t, m, N)
	_, err := OpenColumnar(enc[:len(enc)-3])
	var dec *ColumnarDecodeError
	if !errors.As(err, &dec) {
		t.Fatalf("torn final block: %v is not a *ColumnarDecodeError", err)
	}
	if dec.Block != 2 {
		t.Fatalf("torn final block reported block %d, want 2", dec.Block)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrBadFormat) {
		t.Fatalf("torn final block unwraps to neither EOF nor ErrBadFormat: %v", err)
	}
}

// TestColumnarCorruptionDetected: a flipped byte anywhere — header,
// lengths, payload streams, outcome bits, CRC footers — must yield a
// typed error, never a silently different trace. This is the checksum
// guarantee the row format cannot make.
func TestColumnarCorruptionDetected(t *testing.T) {
	m := synthetic("corrupt", 200)
	enc := encodeColumnar(t, m, 64)
	for pos := 0; pos < len(enc); pos++ {
		for _, bit := range []byte{0x01, 0x80} {
			corrupt := append([]byte(nil), enc...)
			corrupt[pos] ^= bit
			c, err := OpenColumnar(corrupt)
			if err == nil {
				// Structure and checksums passed (conceivable only if the
				// flip is detected later); the decode itself must fail —
				// a full drain is obligated to surface it.
				if _, derr := drainAll(c); derr == nil {
					t.Fatalf("flip of bit %#x at byte %d/%d decoded silently", bit, pos, len(enc))
				}
				continue
			}
			var dec *ColumnarDecodeError
			if !errors.As(err, &dec) {
				t.Fatalf("flip at byte %d: %v is not a *ColumnarDecodeError", pos, err)
			}
		}
	}
}

// drainAll is drainBlocks without the test harness, returning the error.
func drainAll(c *Columnar) ([]Record, error) {
	bs := c.BlockStream()
	var out []Record
	for {
		recs, err := bs.NextBlock()
		if err != nil {
			return nil, err
		}
		if recs == nil {
			return out, nil
		}
		out = append(out, recs...)
	}
}

// TestColumnarCorruptFooterNamesBlock: damage in block b's CRC footer is
// attributed to block b at the footer's offset.
func TestColumnarCorruptFooterNamesBlock(t *testing.T) {
	m := synthetic("footer", 3*32)
	enc := encodeColumnar(t, m, 32)
	c, err := OpenColumnar(enc)
	if err != nil {
		t.Fatalf("OpenColumnar: %v", err)
	}
	// The middle block's footer sits 4 bytes before block 2's start.
	corrupt := append([]byte(nil), enc...)
	footerOff := c.blocks[2].start - 4
	corrupt[footerOff] ^= 0xFF
	_, err = OpenColumnar(corrupt)
	var dec *ColumnarDecodeError
	if !errors.As(err, &dec) {
		t.Fatalf("corrupt footer: %v is not a *ColumnarDecodeError", err)
	}
	if dec.Block != 1 {
		t.Errorf("corrupt footer of block 1 reported block %d", dec.Block)
	}
	if dec.Offset != int64(footerOff) {
		t.Errorf("corrupt footer at byte %d reported offset %d", footerOff, dec.Offset)
	}
	if !errors.Is(err, ErrBadFormat) {
		t.Errorf("checksum mismatch does not unwrap to ErrBadFormat: %v", err)
	}
}

// TestColumnarFlippedOutcomeBit: the satellite's headline case — a
// single flipped direction bit is caught by the block CRC instead of
// flowing into the simulator as a wrong-answer trace.
func TestColumnarFlippedOutcomeBit(t *testing.T) {
	m := synthetic("outcome", 100)
	enc := encodeColumnar(t, m, 64)
	c, err := OpenColumnar(enc)
	if err != nil {
		t.Fatalf("OpenColumnar: %v", err)
	}
	corrupt := append([]byte(nil), enc...)
	corrupt[c.blocks[0].outOff] ^= 0x01 // record 0's direction
	_, err = OpenColumnar(corrupt)
	var dec *ColumnarDecodeError
	if !errors.As(err, &dec) || dec.Block != 0 {
		t.Fatalf("flipped outcome bit: err %v, want a *ColumnarDecodeError for block 0", err)
	}
}

// TestColumnarLyingStreams: a file whose checksums are honest but whose
// static column lies (site beyond the declared count) is caught by the
// decoder, not passed through. Built by encoding a Memory that violates
// the Static bound — the writer is faithful, so the CRCs validate.
func TestColumnarLyingStreams(t *testing.T) {
	bad := NewMemory("liar", 1, []Record{{PC: 4, Static: 2, Taken: true}})
	enc := encodeColumnar(t, bad, 8)
	c, err := OpenColumnar(enc)
	if err != nil {
		t.Fatalf("OpenColumnar rejected structurally valid file: %v", err)
	}
	_, err = drainAll(c)
	var dec *ColumnarDecodeError
	if !errors.As(err, &dec) {
		t.Fatalf("out-of-range static decoded without a typed error: %v", err)
	}
	if !errors.Is(err, ErrBadFormat) {
		t.Errorf("out-of-range static does not unwrap to ErrBadFormat: %v", err)
	}
}

func TestColumnarTrailingGarbage(t *testing.T) {
	m := synthetic("trailing", 10)
	enc := encodeColumnar(t, m, 8)
	if _, err := OpenColumnar(append(append([]byte(nil), enc...), 0x00)); err == nil {
		t.Fatalf("trailing byte was accepted")
	}
}

func TestColumnarWriterRejectsBadBlockSize(t *testing.T) {
	m := synthetic("bad-block", 4)
	var buf bytes.Buffer
	if err := WriteColumnarBlocks(&buf, m, 0); err == nil {
		t.Fatalf("block size 0 accepted")
	}
	if err := WriteColumnarBlocks(&buf, m, maxColumnarBlock+1); err == nil {
		t.Fatalf("oversized block accepted")
	}
}

// TestColumnarConcurrentStreams: one *Columnar serves independent
// iterators concurrently (the scheduler-pool contract); run with -race.
func TestColumnarConcurrentStreams(t *testing.T) {
	m := synthetic("concurrent", 5000)
	c, err := OpenColumnar(encodeColumnar(t, m, 256))
	if err != nil {
		t.Fatalf("OpenColumnar: %v", err)
	}
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			recs, err := drainAll(c)
			if err == nil && len(recs) != m.Len() {
				err = fmt.Errorf("drained %d records, want %d", len(recs), m.Len())
			}
			errs <- err
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestDecodeSniffsFormats: Decode materializes either on-disk format.
func TestDecodeSniffsFormats(t *testing.T) {
	m := synthetic("sniff", 500)
	var row bytes.Buffer
	if err := Write(&row, m); err != nil {
		t.Fatal(err)
	}
	col := encodeColumnar(t, m, 128)
	if !IsColumnar(col) || IsColumnar(row.Bytes()) {
		t.Fatalf("IsColumnar misclassifies")
	}
	for _, enc := range [][]byte{row.Bytes(), col} {
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if got.Len() != m.Len() || got.Name() != m.Name() {
			t.Fatalf("Decode changed shape")
		}
		for i, r := range got.Records() {
			if r != m.Records()[i] {
				t.Fatalf("Decode changed record %d", i)
			}
		}
	}
}

func TestImportText(t *testing.T) {
	in := strings.Join([]string{
		"# an external capture",
		"0x1000 1",
		"0x1008,0",
		"4112 t",
		"1008 n", // bare decimal
		"0x1000 taken",
		"",
		"dead 0", // bare hex (has hex letters)
	}, "\n")
	m, err := ImportText(strings.NewReader(in), "capture")
	if err != nil {
		t.Fatalf("ImportText: %v", err)
	}
	if m.Len() != 6 || m.Name() != "capture" {
		t.Fatalf("imported %d records, want 6", m.Len())
	}
	want := []Record{
		{PC: 0x1000, Static: 0, Taken: true},
		{PC: 0x1008, Static: 1, Taken: false},
		{PC: 4112, Static: 2, Taken: true},
		{PC: 1008, Static: 3, Taken: false},
		{PC: 0x1000, Static: 0, Taken: true}, // site id reused
		{PC: 0xdead, Static: 4, Taken: false},
	}
	for i, r := range m.Records() {
		if r != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, r, want[i])
		}
	}
	if m.StaticCount() != 5 {
		t.Fatalf("static count %d, want 5", m.StaticCount())
	}

	for _, bad := range []string{"0x1000", "zzz 1", "0x1000 maybe"} {
		if _, err := ImportText(strings.NewReader(bad), "bad"); err == nil {
			t.Errorf("ImportText accepted %q", bad)
		}
	}

	// An imported trace must survive both binary formats.
	var row bytes.Buffer
	if err := Write(&row, m); err != nil {
		t.Fatal(err)
	}
	if got, err := Read(&row); err != nil || got.Len() != m.Len() {
		t.Fatalf("imported trace row round-trip: %v", err)
	}
	c, err := OpenColumnar(encodeColumnar(t, m, 4))
	if err != nil {
		t.Fatalf("imported trace columnar round-trip: %v", err)
	}
	if got := drainBlocks(t, c); len(got) != m.Len() {
		t.Fatalf("imported trace columnar drained %d records", len(got))
	}
}

// TestColumnarMaterializeBlockPath: MaterializeContext over a Blocked
// source must produce the identical Memory the record stream would.
func TestColumnarMaterializeBlockPath(t *testing.T) {
	m := synthetic("materialize", 3000)
	c, err := OpenColumnar(encodeColumnar(t, m, 100))
	if err != nil {
		t.Fatalf("OpenColumnar: %v", err)
	}
	got := Materialize(c)
	if got.Len() != m.Len() || got.Name() != m.Name() || got.StaticCount() != m.StaticCount() {
		t.Fatalf("materialized shape changed")
	}
	for i, r := range got.Records() {
		if r != m.Records()[i] {
			t.Fatalf("materialized record %d changed", i)
		}
	}
}
