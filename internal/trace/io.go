package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format ("BMT1"):
//
//	header:  magic "BMT1" | uvarint staticCount | uvarint recordCount |
//	         name length uvarint | name bytes
//	records: per record, uvarint static<<1|taken followed by the zig-zag
//	         encoded difference of the PC from the previous record's PC.
//
// Delta-encoding the PC keeps traces small (branch working sets are
// clustered), and varints make the format self-delimiting.

const magic = "BMT1"

// ErrBadFormat reports a malformed or truncated trace file.
var ErrBadFormat = errors.New("trace: malformed trace data")

// Write serializes a materialized trace to w in the binary format.
func Write(w io.Writer, m *Memory) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(m.statics)); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(m.recs))); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(m.name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(m.name); err != nil {
		return err
	}
	prevPC := uint64(0)
	for _, r := range m.recs {
		v := uint64(r.Static) << 1
		if r.Taken {
			v |= 1
		}
		if err := putUvarint(v); err != nil {
			return err
		}
		if err := putUvarint(zigzag(int64(r.PC - prevPC))); err != nil {
			return err
		}
		prevPC = r.PC
	}
	return bw.Flush()
}

// DecodeError locates a trace-decoding failure: the index of the record
// being decoded when the decoder stopped (headerRecord while still in the
// file header) and the byte offset it had consumed. It wraps the
// underlying cause, so errors.Is still sees ErrBadFormat, io.EOF and
// io.ErrUnexpectedEOF through it — callers branch on the class with %w
// semantics and render the location from the fields.
type DecodeError struct {
	// Record is the zero-based index of the record being decoded, or
	// headerRecord (-1) if decoding failed in the file header.
	Record int64
	// Offset is the byte offset of the first byte of the field whose
	// decode or validation failed — the position of the damage. The
	// anchor is the field START consistently: a file cut mid-varint and
	// an out-of-range value both point at the beginning of the damaged
	// field, never at however many bytes the varint reader happened to
	// consume past it. (TestDecodeErrorOffsetAnchors pins this; the
	// decoder once reported consumed-byte counts, which placed
	// truncation at the cut but corruption one field too late.)
	Offset int64
	// Err is the underlying cause.
	Err error
}

// headerRecord is the DecodeError.Record value for failures in the file
// header, before any record.
const headerRecord = -1

func (e *DecodeError) Error() string {
	if e.Record == headerRecord {
		return fmt.Sprintf("trace: decoding header at byte %d: %v", e.Offset, e.Err)
	}
	return fmt.Sprintf("trace: decoding record %d at byte %d: %v", e.Record, e.Offset, e.Err)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// countingReader tracks how many bytes the decoder has consumed, giving
// DecodeError its offset. It implements io.ByteReader for the uvarint
// decoder and io.Reader for the fixed-size header fields.
type countingReader struct {
	br  *bufio.Reader
	off int64
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.off++
	}
	return b, err
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.off += int64(n)
	return n, err
}

// Read deserializes a trace previously written by Write. Failures are
// reported as a *DecodeError carrying the record index and byte offset
// where decoding stopped, wrapping the underlying cause (ErrBadFormat for
// structural damage, an I/O error for truncation).
func Read(r io.Reader) (*Memory, error) {
	cr := &countingReader{br: bufio.NewReader(r)}
	// field tracks the start offset of the field currently being decoded;
	// every error anchors there, so truncation mid-varint and a
	// bad value inside a fully-read field report the same position — the
	// field's first byte — rather than whatever the reader consumed.
	field := int64(0)
	headerErr := func(err error) error {
		return &DecodeError{Record: headerRecord, Offset: field, Err: err}
	}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(cr, head); err != nil {
		return nil, headerErr(fmt.Errorf("reading magic: %w", err))
	}
	if string(head) != magic {
		return nil, headerErr(fmt.Errorf("%w: bad magic %q", ErrBadFormat, head))
	}
	field = cr.off
	statics, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, headerErr(fmt.Errorf("reading static count: %w", err))
	}
	field = cr.off
	count, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, headerErr(fmt.Errorf("reading record count: %w", err))
	}
	field = cr.off
	nameLen, err := binary.ReadUvarint(cr)
	if err != nil {
		return nil, headerErr(fmt.Errorf("reading name length: %w", err))
	}
	if nameLen > 1<<16 {
		return nil, headerErr(fmt.Errorf("%w: unreasonable name length %d", ErrBadFormat, nameLen))
	}
	field = cr.off
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(cr, nameBuf); err != nil {
		return nil, headerErr(fmt.Errorf("reading name: %w", err))
	}
	// Preallocation is capped: count is untrusted input and records are
	// appended (and validated) one at a time anyway.
	prealloc := count
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	recs := make([]Record, 0, prealloc)
	prevPC := uint64(0)
	for i := uint64(0); i < count; i++ {
		recordErr := func(err error) error {
			return &DecodeError{Record: int64(i), Offset: field, Err: err}
		}
		field = cr.off
		v, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, recordErr(fmt.Errorf("reading outcome word: %w", err))
		}
		static := v >> 1
		if static >= statics {
			// The damage is the outcome word itself, so the error stays
			// anchored at its first byte (field is not advanced).
			return nil, recordErr(fmt.Errorf("%w: site %d >= static count %d", ErrBadFormat, static, statics))
		}
		field = cr.off
		delta, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, recordErr(fmt.Errorf("reading pc delta: %w", err))
		}
		pc := prevPC + uint64(unzigzag(delta))
		prevPC = pc
		recs = append(recs, Record{PC: pc, Static: uint32(static), Taken: v&1 != 0})
	}
	return NewMemory(string(nameBuf), int(statics), recs), nil
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
