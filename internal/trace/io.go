package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format ("BMT1"):
//
//	header:  magic "BMT1" | uvarint staticCount | uvarint recordCount |
//	         name length uvarint | name bytes
//	records: per record, uvarint static<<1|taken followed by the zig-zag
//	         encoded difference of the PC from the previous record's PC.
//
// Delta-encoding the PC keeps traces small (branch working sets are
// clustered), and varints make the format self-delimiting.

const magic = "BMT1"

// ErrBadFormat reports a malformed or truncated trace file.
var ErrBadFormat = errors.New("trace: malformed trace data")

// Write serializes a materialized trace to w in the binary format.
func Write(w io.Writer, m *Memory) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(m.statics)); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(m.recs))); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(m.name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(m.name); err != nil {
		return err
	}
	prevPC := uint64(0)
	for _, r := range m.recs {
		v := uint64(r.Static) << 1
		if r.Taken {
			v |= 1
		}
		if err := putUvarint(v); err != nil {
			return err
		}
		if err := putUvarint(zigzag(int64(r.PC - prevPC))); err != nil {
			return err
		}
		prevPC = r.PC
	}
	return bw.Flush()
}

// Read deserializes a trace previously written by Write.
func Read(r io.Reader) (*Memory, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, head)
	}
	statics, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading static count: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading record count: %w", err)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("%w: unreasonable name length %d", ErrBadFormat, nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	// Preallocation is capped: count is untrusted input and records are
	// appended (and validated) one at a time anyway.
	prealloc := count
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	recs := make([]Record, 0, prealloc)
	prevPC := uint64(0)
	for i := uint64(0); i < count; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
		}
		static := v >> 1
		if static >= statics {
			return nil, fmt.Errorf("%w: record %d site %d >= static count %d", ErrBadFormat, i, static, statics)
		}
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading record %d pc: %w", i, err)
		}
		pc := prevPC + uint64(unzigzag(delta))
		prevPC = pc
		recs = append(recs, Record{PC: pc, Static: uint32(static), Taken: v&1 != 0})
	}
	return NewMemory(string(nameBuf), int(statics), recs), nil
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
