package trace

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// External-capture import and format sniffing: the entry points
// cmd/tracecat and cmd/tracegen use to accept traces that did not
// originate here — externally captured (pc, taken) text/CSV files and
// on-disk traces in either binary format.

// Decode sniffs the magic of an encoded trace and materializes it: row
// varint files ("BMT1") through Read, columnar files ("BMC1") through
// OpenColumnar. Tools that only ever iterate batches should prefer
// OpenColumnar directly and keep the zero-copy handle.
func Decode(data []byte) (*Memory, error) {
	if len(data) >= len(columnarMagic) && string(data[:len(columnarMagic)]) == columnarMagic {
		c, err := OpenColumnar(data)
		if err != nil {
			return nil, err
		}
		return MaterializeContext(context.Background(), c)
	}
	return Read(bytes.NewReader(data))
}

// IsColumnar reports whether data starts with the columnar magic.
func IsColumnar(data []byte) bool {
	return len(data) >= len(columnarMagic) && string(data[:len(columnarMagic)]) == columnarMagic
}

// TextScanner parses a simple external branch capture record at a time:
// one dynamic branch per line as "pc taken" or "pc,taken" (CSV), where
// pc is hexadecimal (with or without 0x) or decimal and taken is 1/0,
// t/n, T/N, taken/not. Blank lines and lines starting with '#' are
// skipped. Static site ids are assigned densely in first-appearance
// order of the PC — the identifier contract workload generators follow —
// and the site table can be seeded and carried across scanners, which is
// how a long-running ingest (cmd/predserve) keeps one consistent id
// space over many request bodies without ever materializing a whole
// capture.
//
// Usage follows bufio.Scanner: Scan until it returns false, reading each
// Record, then check Err. Errors carry the one-based line number of the
// offending line (blank and comment lines count), exactly as ImportText
// reports them.
type TextScanner struct {
	sc     *bufio.Scanner
	sites  map[uint64]uint32
	rec    Record
	err    error
	lineNo int
}

// NewTextScanner returns a scanner over r with a fresh site table.
func NewTextScanner(r io.Reader) *TextScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &TextScanner{sc: sc, sites: map[uint64]uint32{}}
}

// SetSites replaces the scanner's site table with sites (pc -> static
// id), so new PCs extend an existing id space. The map is used directly,
// not copied; ids already present must be dense in [0, len(sites)).
func (s *TextScanner) SetSites(sites map[uint64]uint32) {
	if sites == nil {
		sites = map[uint64]uint32{}
	}
	s.sites = sites
}

// Sites exposes the scanner's live site table: every PC seen so far
// mapped to its dense static id. Callers must not mutate it mid-scan.
func (s *TextScanner) Sites() map[uint64]uint32 { return s.sites }

// Record returns the record parsed by the last successful Scan.
func (s *TextScanner) Record() Record { return s.rec }

// Err returns the first error the scan hit, nil at clean end of input.
func (s *TextScanner) Err() error { return s.err }

// Scan advances to the next record, skipping blanks and comments. It
// returns false at end of input or on the first malformed line; Err
// distinguishes the two.
func (s *TextScanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for s.sc.Scan() {
		s.lineNo++
		line := strings.TrimSpace(s.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var fields []string
		if strings.Contains(line, ",") {
			fields = strings.Split(line, ",")
		} else {
			fields = strings.Fields(line)
		}
		if len(fields) < 2 {
			s.err = fmt.Errorf("trace: import line %d: need \"pc taken\", got %q", s.lineNo, line)
			return false
		}
		pc, err := parsePC(strings.TrimSpace(fields[0]))
		if err != nil {
			s.err = fmt.Errorf("trace: import line %d: %v", s.lineNo, err)
			return false
		}
		taken, err := parseTaken(strings.TrimSpace(fields[1]))
		if err != nil {
			s.err = fmt.Errorf("trace: import line %d: %v", s.lineNo, err)
			return false
		}
		st, ok := s.sites[pc]
		if !ok {
			st = uint32(len(s.sites))
			s.sites[pc] = st
		}
		s.rec = Record{PC: pc, Static: st, Taken: taken}
		return true
	}
	if err := s.sc.Err(); err != nil {
		// A scanner error surfaces while reading the line after the last
		// one delivered, so the failing line is lineNo+1.
		s.err = fmt.Errorf("trace: import line %d: %w", s.lineNo+1, err)
	}
	return false
}

// ImportText drains a TextScanner over r into a materialized trace; see
// TextScanner for the accepted formats and the error contract.
func ImportText(r io.Reader, name string) (*Memory, error) {
	sc := NewTextScanner(r)
	var recs []Record
	for sc.Scan() {
		recs = append(recs, sc.Record())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	statics := len(sc.Sites())
	if statics == 0 {
		statics = 1 // a well-formed empty trace still declares a site space
	}
	return NewMemory(name, statics, recs), nil
}

// parsePC accepts 0x-prefixed hex, bare hex containing hex letters, and
// decimal branch addresses.
func parsePC(s string) (uint64, error) {
	lower := strings.ToLower(s)
	if v, ok := strings.CutPrefix(lower, "0x"); ok {
		pc, err := strconv.ParseUint(v, 16, 64)
		if err != nil {
			return 0, fmt.Errorf("bad pc %q: %v", s, err)
		}
		return pc, nil
	}
	if pc, err := strconv.ParseUint(lower, 10, 64); err == nil {
		return pc, nil
	}
	pc, err := strconv.ParseUint(lower, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("bad pc %q: %v", s, err)
	}
	return pc, nil
}

// parseTaken accepts the direction spellings real capture tools emit.
func parseTaken(s string) (bool, error) {
	switch strings.ToLower(s) {
	case "1", "t", "taken", "true", "y":
		return true, nil
	case "0", "n", "not", "not-taken", "false", "nt":
		return false, nil
	}
	return false, fmt.Errorf("bad taken flag %q (want 1/0, t/n, taken/not)", s)
}
