package trace

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// External-capture import and format sniffing: the entry points
// cmd/tracecat and cmd/tracegen use to accept traces that did not
// originate here — externally captured (pc, taken) text/CSV files and
// on-disk traces in either binary format.

// Decode sniffs the magic of an encoded trace and materializes it: row
// varint files ("BMT1") through Read, columnar files ("BMC1") through
// OpenColumnar. Tools that only ever iterate batches should prefer
// OpenColumnar directly and keep the zero-copy handle.
func Decode(data []byte) (*Memory, error) {
	if len(data) >= len(columnarMagic) && string(data[:len(columnarMagic)]) == columnarMagic {
		c, err := OpenColumnar(data)
		if err != nil {
			return nil, err
		}
		return MaterializeContext(context.Background(), c)
	}
	return Read(bytes.NewReader(data))
}

// IsColumnar reports whether data starts with the columnar magic.
func IsColumnar(data []byte) bool {
	return len(data) >= len(columnarMagic) && string(data[:len(columnarMagic)]) == columnarMagic
}

// ImportText parses a simple external branch capture into a trace: one
// dynamic branch per line as "pc taken" or "pc,taken" (CSV), where pc is
// hexadecimal (with or without 0x) or decimal and taken is 1/0, t/n,
// T/N, taken/not. Blank lines and lines starting with '#' are skipped.
// Static site ids are assigned densely in first-appearance order of the
// PC, which is exactly the identifier contract workload generators
// follow, so imported traces flow through the simulator, the scheduler
// and the columnar writer like any synthetic workload.
func ImportText(r io.Reader, name string) (*Memory, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var recs []Record
	sites := map[uint64]uint32{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var fields []string
		if strings.Contains(line, ",") {
			fields = strings.Split(line, ",")
		} else {
			fields = strings.Fields(line)
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("trace: import line %d: need \"pc taken\", got %q", lineNo, line)
		}
		pc, err := parsePC(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("trace: import line %d: %v", lineNo, err)
		}
		taken, err := parseTaken(strings.TrimSpace(fields[1]))
		if err != nil {
			return nil, fmt.Errorf("trace: import line %d: %v", lineNo, err)
		}
		st, ok := sites[pc]
		if !ok {
			st = uint32(len(sites))
			sites[pc] = st
		}
		recs = append(recs, Record{PC: pc, Static: st, Taken: taken})
	}
	if err := sc.Err(); err != nil {
		// A scanner error surfaces while reading the line after the last
		// one delivered, so the failing line is lineNo+1.
		return nil, fmt.Errorf("trace: import line %d: %w", lineNo+1, err)
	}
	statics := len(sites)
	if statics == 0 {
		statics = 1 // a well-formed empty trace still declares a site space
	}
	return NewMemory(name, statics, recs), nil
}

// parsePC accepts 0x-prefixed hex, bare hex containing hex letters, and
// decimal branch addresses.
func parsePC(s string) (uint64, error) {
	lower := strings.ToLower(s)
	if v, ok := strings.CutPrefix(lower, "0x"); ok {
		pc, err := strconv.ParseUint(v, 16, 64)
		if err != nil {
			return 0, fmt.Errorf("bad pc %q: %v", s, err)
		}
		return pc, nil
	}
	if pc, err := strconv.ParseUint(lower, 10, 64); err == nil {
		return pc, nil
	}
	pc, err := strconv.ParseUint(lower, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("bad pc %q: %v", s, err)
	}
	return pc, nil
}

// parseTaken accepts the direction spellings real capture tools emit.
func parseTaken(s string) (bool, error) {
	switch strings.ToLower(s) {
	case "1", "t", "taken", "true", "y":
		return true, nil
	case "0", "n", "not", "not-taken", "false", "nt":
		return false, nil
	}
	return false, fmt.Errorf("bad taken flag %q (want 1/0, t/n, taken/not)", s)
}
