package trace

import (
	"bytes"
	"testing"
)

// FuzzRead ensures the binary trace decoder never panics or hangs on
// malformed input, and that valid traces it accepts round-trip.
func FuzzRead(f *testing.F) {
	// Seed with a valid trace and some mutations.
	m := NewMemory("seed", 3, []Record{
		{PC: 0x1000, Static: 0, Taken: true},
		{PC: 0x1008, Static: 2, Taken: false},
	})
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte("BMT1"))
	f.Add([]byte("BMT1\x00\x00\x00"))
	f.Add(valid[:len(valid)-1])
	f.Add(append(append([]byte{}, valid...), 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		// Anything accepted must re-serialize and re-read identically.
		var out bytes.Buffer
		if err := Write(&out, got); err != nil {
			t.Fatalf("accepted trace failed to re-serialize: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("round-trip of accepted trace failed: %v", err)
		}
		if again.Len() != got.Len() || again.Name() != got.Name() {
			t.Fatalf("round-trip changed shape")
		}
		for i := range got.Records() {
			if got.Records()[i] != again.Records()[i] {
				t.Fatalf("round-trip changed record %d", i)
			}
		}
	})
}
