package trace

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzRead ensures the binary trace decoder never panics or hangs on
// malformed input, and that valid traces it accepts round-trip.
func FuzzRead(f *testing.F) {
	// Seed with a valid trace and some mutations.
	m := NewMemory("seed", 3, []Record{
		{PC: 0x1000, Static: 0, Taken: true},
		{PC: 0x1008, Static: 2, Taken: false},
	})
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte("BMT1"))
	f.Add([]byte("BMT1\x00\x00\x00"))
	f.Add(valid[:len(valid)-1])
	f.Add(append(append([]byte{}, valid...), 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		// Anything accepted must re-serialize and re-read identically.
		var out bytes.Buffer
		if err := Write(&out, got); err != nil {
			t.Fatalf("accepted trace failed to re-serialize: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("round-trip of accepted trace failed: %v", err)
		}
		if again.Len() != got.Len() || again.Name() != got.Name() {
			t.Fatalf("round-trip changed shape")
		}
		for i := range got.Records() {
			if got.Records()[i] != again.Records()[i] {
				t.Fatalf("round-trip changed record %d", i)
			}
		}
	})
}

// FuzzRoundTrip drives the writer/reader pair from structured inputs: any
// trace the writer can produce must be read back record-for-record, every
// strict prefix of the encoding (a truncated file) must error rather than
// panic or silently succeed, and single-byte corruption must never panic.
func FuzzRoundTrip(f *testing.F) {
	f.Add("gcc", uint16(8), []byte{0x01, 0x02, 0x03, 0x04, 0xFF, 0x00, 0x10, 0x81})
	f.Add("", uint16(1), []byte{})
	f.Add("a trace with a long-ish name", uint16(1024), bytes.Repeat([]byte{0xAB, 0x40, 0x07}, 40))
	// A record-heavy trace so the prefix scan spends most cuts mid-stream,
	// deep in the record loop rather than the header.
	f.Add("midstream", uint16(16), bytes.Repeat([]byte{0x5A, 0x01, 0x03, 0x01}, 64))

	f.Fuzz(func(t *testing.T, name string, statics uint16, raw []byte) {
		nStatics := int(statics)%1024 + 1
		// Decode records from the raw bytes: 4 bytes each — 2 for the PC
		// delta (zig-zag style around the previous PC), 1 for the static
		// site, 1 whose low bit is the outcome. Capped so the prefix scan
		// below stays fast.
		if len(raw) > 4*64 {
			raw = raw[:4*64]
		}
		var recs []Record
		pc := uint64(0x1000)
		for i := 0; i+4 <= len(raw); i += 4 {
			delta := int64(int16(uint16(raw[i]) | uint16(raw[i+1])<<8))
			pc += uint64(delta * 4)
			recs = append(recs, Record{
				PC:     pc,
				Static: uint32(int(raw[i+2]) % nStatics),
				Taken:  raw[i+3]&1 != 0,
			})
		}
		m := NewMemory(name, nStatics, recs)

		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("Write failed on a valid trace: %v", err)
		}
		enc := buf.Bytes()

		got, err := Read(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("Read rejected Write's output: %v", err)
		}
		if got.Name() != m.Name() || got.StaticCount() != m.StaticCount() || got.Len() != m.Len() {
			t.Fatalf("shape changed: (%q,%d,%d) vs (%q,%d,%d)",
				got.Name(), got.StaticCount(), got.Len(), m.Name(), m.StaticCount(), m.Len())
		}
		for i := range recs {
			if got.Records()[i] != recs[i] {
				t.Fatalf("record %d changed: %+v vs %+v", i, got.Records()[i], recs[i])
			}
		}

		// Truncation at EVERY boundary must error, never panic: the header
		// carries the record count, so a strict prefix can never satisfy it.
		// The error must be a located *DecodeError whose offset points
		// inside the prefix and whose record index is in range.
		for cut := 0; cut < len(enc); cut++ {
			_, err := Read(bytes.NewReader(enc[:cut]))
			if err == nil {
				t.Fatalf("truncation to %d/%d bytes was accepted", cut, len(enc))
			}
			var dec *DecodeError
			if !errors.As(err, &dec) {
				t.Fatalf("truncation to %d bytes: error %v is not a *DecodeError", cut, err)
			}
			if dec.Offset < 0 || dec.Offset > int64(cut) {
				t.Fatalf("truncation to %d bytes: offset %d outside the prefix", cut, dec.Offset)
			}
			if dec.Record < -1 || dec.Record >= int64(len(recs)) {
				t.Fatalf("truncation to %d bytes: record index %d out of range", cut, dec.Record)
			}
		}

		// Corruption derived from the input must never panic; rejecting or
		// accepting-with-different-contents are both fine.
		if len(enc) > 0 && len(raw) > 1 {
			pos := int(raw[0]) % len(enc)
			corrupt := append([]byte{}, enc...)
			corrupt[pos] ^= raw[1] | 1
			if m2, err := Read(bytes.NewReader(corrupt)); err == nil {
				// Whatever was accepted must still re-serialize cleanly.
				var out bytes.Buffer
				if err := Write(&out, m2); err != nil {
					t.Fatalf("corrupt-accepted trace failed to re-serialize: %v", err)
				}
			}
		}
	})
}
