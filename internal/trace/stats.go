package trace

// Stats summarizes a branch trace: the quantities the paper's Table 2
// reports per benchmark, plus the taken rate.
type Stats struct {
	// Name is the workload name.
	Name string
	// StaticBranches is the number of distinct static branch sites that
	// actually appeared in the stream (Table 2, "static conditional
	// branches").
	StaticBranches int
	// DynamicBranches is the number of dynamic conditional branches
	// (Table 2, "dynamic conditional branches").
	DynamicBranches int
	// Taken is the number of dynamic branches that were taken.
	Taken int
}

// TakenRate returns the fraction of dynamic branches that were taken.
func (s Stats) TakenRate() float64 {
	if s.DynamicBranches == 0 {
		return 0
	}
	return float64(s.Taken) / float64(s.DynamicBranches)
}

// Collect runs a fresh stream of src to completion and gathers statistics.
func Collect(src Source) Stats {
	seen := make([]bool, src.StaticCount())
	s := Stats{Name: src.Name()}
	st := src.Stream()
	for {
		r, ok := st.Next()
		if !ok {
			break
		}
		s.DynamicBranches++
		if r.Taken {
			s.Taken++
		}
		if int(r.Static) < len(seen) && !seen[r.Static] {
			seen[r.Static] = true
			s.StaticBranches++
		}
	}
	return s
}
