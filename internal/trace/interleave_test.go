package trace

import "testing"

func mkSource(name string, statics int, n int, taken bool) *Memory {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{PC: uint64(0x1000 + 4*(i%statics)), Static: uint32(i % statics), Taken: taken}
	}
	return NewMemory(name, statics, recs)
}

func TestInterleaveRoundRobin(t *testing.T) {
	a := mkSource("a", 2, 10, true)
	b := mkSource("b", 3, 10, false)
	m, err := Interleave("mix", 5, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 20 {
		t.Fatalf("merged length = %d, want 20", m.Len())
	}
	if m.StaticCount() != 5 {
		t.Fatalf("merged statics = %d, want 5", m.StaticCount())
	}
	recs := m.Records()
	// First quantum from a (taken), second from b (not taken).
	for i := 0; i < 5; i++ {
		if !recs[i].Taken {
			t.Fatalf("record %d should come from source a", i)
		}
		if recs[5+i].Taken {
			t.Fatalf("record %d should come from source b", 5+i)
		}
	}
	// Sources must not share static ids or PC regions.
	seenA, seenB := map[uint32]bool{}, map[uint32]bool{}
	for _, r := range recs {
		if r.Taken {
			seenA[r.Static] = true
			if r.PC>>28 != 0 {
				t.Fatalf("source a PC region wrong: %x", r.PC)
			}
		} else {
			seenB[r.Static] = true
			if r.PC>>28 != 1 {
				t.Fatalf("source b PC region wrong: %x", r.PC)
			}
		}
	}
	for s := range seenA {
		if seenB[s] {
			t.Fatalf("static id %d shared between sources", s)
		}
	}
}

func TestInterleaveUnevenLengths(t *testing.T) {
	a := mkSource("a", 2, 4, true)
	b := mkSource("b", 2, 12, false)
	m, err := Interleave("mix", 3, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 16 {
		t.Fatalf("merged length = %d, want 16", m.Len())
	}
}

func TestInterleaveErrors(t *testing.T) {
	a := mkSource("a", 1, 4, true)
	if _, err := Interleave("x", 0, a, a); err == nil {
		t.Fatalf("zero quantum must fail")
	}
	if _, err := Interleave("x", 4, a); err == nil {
		t.Fatalf("single source must fail")
	}
}

func TestInterleavePreservesBackwardBit(t *testing.T) {
	recs := []Record{{PC: 0x100 | 1<<63, Static: 0, Taken: true}}
	a := NewMemory("a", 1, recs)
	b := mkSource("b", 1, 1, false)
	m, err := Interleave("mix", 1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Records()[0].PC&(1<<63) == 0 {
		t.Fatalf("backward bit lost in interleaving")
	}
}
