package trace

// Control-flow trace types: the richer event stream the fetch-engine
// substrate consumes. Where Record covers conditional branch directions
// only (all the paper needs), ControlRecord covers every control-transfer
// instruction — conditional branches with their taken targets, direct and
// indirect jumps, calls and returns — so branch target buffers and return
// address stacks can be evaluated too.

// Kind classifies a control-transfer instruction.
type Kind uint8

// Control-transfer kinds.
const (
	// KindBranch is a conditional direct branch.
	KindBranch Kind = iota
	// KindJump is an unconditional direct jump.
	KindJump
	// KindCall is a direct call (pushes a return address).
	KindCall
	// KindReturn is a return (pops the return address stack).
	KindReturn
	// KindIndirect is an indirect jump (register target, no return).
	KindIndirect
	// KindIndirectCall is an indirect call (register target, pushes a
	// return address).
	KindIndirectCall
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindBranch:
		return "branch"
	case KindJump:
		return "jump"
	case KindCall:
		return "call"
	case KindReturn:
		return "return"
	case KindIndirect:
		return "indirect"
	case KindIndirectCall:
		return "indirect-call"
	default:
		return "unknown"
	}
}

// ControlRecord is one dynamic control-transfer instruction.
type ControlRecord struct {
	// PC is the instruction address.
	PC uint64
	// Kind classifies the instruction.
	Kind Kind
	// Taken is the direction of conditional branches; true for all
	// always-taken kinds.
	Taken bool
	// Target is the destination when the transfer is taken (the
	// fallthrough address is PC+4 by convention).
	Target uint64
	// Static identifies the static site (conditional branches reuse the
	// direction trace's identifiers; other kinds get their own space).
	Static uint32
}

// ControlStream is a single pass over a control-flow trace.
type ControlStream interface {
	// Next returns the next control-transfer event; ok is false at the
	// end of the trace.
	Next() (ControlRecord, bool)
}

// ControlSource produces identical fresh control-flow streams.
type ControlSource interface {
	// Name identifies the workload.
	Name() string
	// ControlFlow returns a fresh stream positioned at the first event.
	ControlFlow() ControlStream
}
