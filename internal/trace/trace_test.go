package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sample() []Record {
	return []Record{
		{PC: 0x1000, Static: 0, Taken: true},
		{PC: 0x1008, Static: 1, Taken: false},
		{PC: 0x1000, Static: 0, Taken: true},
		{PC: 1 << 63, Static: 2, Taken: false}, // backward-bit PC
	}
}

func TestSliceStream(t *testing.T) {
	st := NewSliceStream(sample())
	var got []Record
	for {
		r, ok := st.Next()
		if !ok {
			break
		}
		got = append(got, r)
	}
	if len(got) != 4 || got[0].PC != 0x1000 || got[3].Static != 2 {
		t.Fatalf("stream replay wrong: %+v", got)
	}
	if _, ok := st.Next(); ok {
		t.Fatalf("exhausted stream must keep returning ok=false")
	}
}

func TestMemorySource(t *testing.T) {
	m := NewMemory("demo", 3, sample())
	if m.Name() != "demo" || m.StaticCount() != 3 || m.Len() != 4 {
		t.Fatalf("memory metadata wrong")
	}
	// Two streams must be identical and independent.
	s1, s2 := m.Stream(), m.Stream()
	r1, _ := s1.Next()
	r1b, _ := s1.Next()
	r2, _ := s2.Next()
	if r1 != r2 || r1b == r2 {
		t.Fatalf("streams must be independent replays")
	}
}

func TestMaterialize(t *testing.T) {
	m := NewMemory("demo", 3, sample())
	m2 := Materialize(m)
	if m2.Len() != m.Len() || m2.Name() != "demo" {
		t.Fatalf("materialize must preserve contents")
	}
}

func TestCollectStats(t *testing.T) {
	s := Collect(NewMemory("demo", 3, sample()))
	if s.DynamicBranches != 4 || s.StaticBranches != 3 || s.Taken != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.TakenRate() != 0.5 {
		t.Fatalf("taken rate = %v", s.TakenRate())
	}
	if (Stats{}).TakenRate() != 0 {
		t.Fatalf("empty stats taken rate must be 0")
	}
}

func TestRoundTrip(t *testing.T) {
	m := NewMemory("demo-trace", 3, sample())
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "demo-trace" || got.StaticCount() != 3 || got.Len() != 4 {
		t.Fatalf("roundtrip metadata wrong: %s %d %d", got.Name(), got.StaticCount(), got.Len())
	}
	for i, r := range got.Records() {
		if r != m.Records()[i] {
			t.Fatalf("record %d: got %+v want %+v", i, r, m.Records()[i])
		}
	}
}

// TestRoundTripProperty: arbitrary record sequences survive the binary
// format bit-for-bit.
func TestRoundTripProperty(t *testing.T) {
	f := func(pcs []uint32, takens []bool) bool {
		n := len(pcs)
		if len(takens) < n {
			n = len(takens)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{PC: uint64(pcs[i]), Static: uint32(i), Taken: takens[i]}
		}
		statics := n
		if statics == 0 {
			statics = 1
		}
		m := NewMemory("prop", statics, recs)
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Len() != n {
			return false
		}
		for i, r := range got.Records() {
			if r != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("NOPE....")); err == nil {
		t.Fatalf("bad magic must fail")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	m := NewMemory("x", 2, sample())
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatalf("truncated trace must fail")
	}
	if _, err := Read(bytes.NewReader(raw[:3])); err == nil {
		t.Fatalf("truncated header must fail")
	}
}

func TestReadRejectsOutOfRangeStatic(t *testing.T) {
	// statics declared as 1 but a record references site 2.
	m := NewMemory("x", 1, []Record{{PC: 4, Static: 2, Taken: true}})
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatalf("static id out of declared range must fail")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 12345, -12345, 1 << 40, -(1 << 40)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag roundtrip of %d gave %d", v, got)
		}
	}
}
