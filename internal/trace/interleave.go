package trace

import "fmt"

// Interleave builds a source that round-robins between workloads in
// fixed quanta of dynamic branches, the way the paper's IBS-Ultrix traces
// mix kernel and user activity (they were captured across the whole
// machine) and the way context switches interleave processes. Each
// input's PCs are offset into a disjoint address region and its static
// ids into a disjoint id range, so the MERGED trace is well-formed; the
// predictors still collide through their limited index bits, which is
// the effect being studied.
func Interleave(name string, quantum int, sources ...Source) (*Memory, error) {
	if quantum < 1 {
		return nil, fmt.Errorf("trace: interleave quantum %d must be positive", quantum)
	}
	if len(sources) < 2 {
		return nil, fmt.Errorf("trace: interleaving needs at least two sources")
	}

	streams := make([]Stream, len(sources))
	staticBase := make([]uint32, len(sources))
	pcBase := make([]uint64, len(sources))
	totalStatics := 0
	for i, src := range sources {
		streams[i] = src.Stream()
		staticBase[i] = uint32(totalStatics)
		totalStatics += src.StaticCount()
		// 256 MB of address space per source keeps regions disjoint
		// while leaving low index bits untouched.
		pcBase[i] = uint64(i) << 28
	}

	var recs []Record
	live := len(streams)
	for live > 0 {
		for i := range streams {
			if streams[i] == nil {
				continue
			}
			for k := 0; k < quantum; k++ {
				r, ok := streams[i].Next()
				if !ok {
					streams[i] = nil
					live--
					break
				}
				backward := r.PC & (1 << 63)
				recs = append(recs, Record{
					PC:     (r.PC&^(1<<63) + pcBase[i]) | backward,
					Static: r.Static + staticBase[i],
					Taken:  r.Taken,
				})
			}
		}
	}
	return NewMemory(name, totalStatics, recs), nil
}
