package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Columnar trace format ("BMC1"): the block-structured, column-oriented
// sibling of the record-at-a-time varint format in io.go, built for batch
// iteration — the decoder hands whole blocks of records to the engine
// (the shape sim.RunBatch and the interleaved kernels consume) instead of
// paying an interface call and a varint state machine per record.
//
// Layout (all integers are uvarints unless stated):
//
//	header:  magic "BMC1" | staticCount | recordCount | blockSize |
//	         name length | name bytes | 4-byte LE CRC32-IEEE of the
//	         header bytes after the magic
//	blocks:  ceil(recordCount/blockSize) blocks; every block holds
//	         exactly blockSize records except the last, which holds the
//	         remainder (>= 1). Per block:
//	           count | pcLen | stLen
//	           pc stream   (pcLen bytes):  count zig-zag varint deltas of
//	                                       the PC rotated left one bit;
//	                                       the delta chain restarts at 0
//	                                       each block, so blocks decode
//	                                       independently
//	           static stream (stLen bytes): count uvarint static site ids
//	           outcome bit-vector (ceil(count/8) bytes): bit j, LSB
//	                                       first, is record j's direction
//	           footer: 4-byte LE CRC32-IEEE of the block from its count
//	                   varint through the outcome bytes
//
// Splitting the columns means each stream is homogeneous — PC deltas
// compress to 1-2 bytes in branch-clustered code, static ids to 1-2
// bytes, outcomes to one bit — and the outcome column is consumed
// directly as a bit-vector with no per-record branch. PCs are rotated
// left one bit before delta encoding because bit 63 carries the
// backward-branch flag: rotating moves the flag into bit 0, so two
// nearby addresses that differ only in the flag still delta to a 1-2
// byte varint instead of a 10-byte one. The per-block CRCs
// (plus the header CRC and the exact-count structural rules) make every
// single-byte corruption detectable: a columnar decode either returns
// exactly what was written or a typed *ColumnarDecodeError, never a
// silently wrong trace. OpenColumnar validates structure and checksums
// up front in one cheap pass without decoding payloads, so iteration
// over a validated file does not re-verify per pass.

// columnarMagic distinguishes columnar files from the "BMT1" row format.
const columnarMagic = "BMC1"

// DefaultColumnarBlock is the records-per-block the writers use unless
// told otherwise: 4096 records keep a block's three streams (~12 KB)
// inside L1/L2 while amortizing the per-block bookkeeping to noise.
const DefaultColumnarBlock = 4096

// maxColumnarBlock bounds the block size a file may declare; beyond it
// the per-block scratch buffer would defeat the streaming design.
const maxColumnarBlock = 1 << 20

// ColumnarDecodeError locates a columnar-decoding failure: the index of
// the block being decoded (headerBlock, -1, while still in the file
// header) and the absolute byte offset of the field where decoding
// stopped. It wraps the underlying cause, so errors.Is sees ErrBadFormat
// and the io sentinels through it, exactly like the row format's
// DecodeError.
type ColumnarDecodeError struct {
	// Block is the zero-based index of the block being decoded, or -1 if
	// decoding failed in the file header.
	Block int64
	// Offset is the byte offset of the first byte of the field whose
	// decode or validation failed — the position of the damage.
	Offset int64
	// Err is the underlying cause.
	Err error
}

// headerBlock is the ColumnarDecodeError.Block value for failures in the
// file header, before any block.
const headerBlock = -1

func (e *ColumnarDecodeError) Error() string {
	if e.Block == headerBlock {
		return fmt.Sprintf("trace: decoding columnar header at byte %d: %v", e.Offset, e.Err)
	}
	return fmt.Sprintf("trace: decoding columnar block %d at byte %d: %v", e.Block, e.Offset, e.Err)
}

func (e *ColumnarDecodeError) Unwrap() error { return e.Err }

// Blocked is the optional Source capability behind block-batch
// iteration: the trace is available as a sequence of ready-to-run record
// slices without materializing the whole thing first. sim.Run consumes
// it with one RunBatch-shaped call per block, and Materialize drains it
// block-at-a-time instead of record-at-a-time. *Columnar implements it.
type Blocked interface {
	// BlockStream returns a fresh single-use block iterator positioned at
	// the first block. Iterators from separate calls are independent and
	// may be used concurrently.
	BlockStream() BlockStream
}

// BlockStream is a single pass over a trace in record batches.
type BlockStream interface {
	// NextBlock returns the next block of records, in stream order. The
	// returned slice is valid only until the next NextBlock call (the
	// iterator reuses its scratch buffer). It returns (nil, nil) when the
	// trace is exhausted and a *ColumnarDecodeError if the underlying
	// data is damaged.
	NextBlock() ([]Record, error)
}

// WriteColumnar serializes a materialized trace to w in the columnar
// block format with DefaultColumnarBlock records per block.
func WriteColumnar(w io.Writer, m *Memory) error {
	return WriteColumnarBlocks(w, m, DefaultColumnarBlock)
}

// WriteColumnarBlocks is WriteColumnar with an explicit block size in
// records, for tests and for tools trading block overhead against
// iteration granularity.
func WriteColumnarBlocks(w io.Writer, m *Memory, blockSize int) error {
	if blockSize < 1 || blockSize > maxColumnarBlock {
		return fmt.Errorf("trace: columnar block size %d outside [1, %d]", blockSize, maxColumnarBlock)
	}
	var scratch [binary.MaxVarintLen64]byte
	// Header: magic, then the CRC-covered tail.
	head := make([]byte, 0, 64+len(m.name))
	head = binary.AppendUvarint(head, uint64(m.statics))
	head = binary.AppendUvarint(head, uint64(len(m.recs)))
	head = binary.AppendUvarint(head, uint64(blockSize))
	head = binary.AppendUvarint(head, uint64(len(m.name)))
	head = append(head, m.name...)
	if _, err := io.WriteString(w, columnarMagic); err != nil {
		return err
	}
	if _, err := w.Write(head); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(scratch[:4], crc32.ChecksumIEEE(head))
	if _, err := w.Write(scratch[:4]); err != nil {
		return err
	}

	// Blocks. The three streams are built per block and flushed with the
	// count/length prefix and the CRC footer.
	var pcs, sts, block []byte
	for base := 0; base < len(m.recs); base += blockSize {
		recs := m.recs[base:]
		if len(recs) > blockSize {
			recs = recs[:blockSize]
		}
		pcs, sts = pcs[:0], sts[:0]
		prevRot := uint64(0)
		for _, r := range recs {
			rot := r.PC<<1 | r.PC>>63
			pcs = binary.AppendUvarint(pcs, zigzag(int64(rot-prevRot)))
			prevRot = rot
			sts = binary.AppendUvarint(sts, uint64(r.Static))
		}
		block = block[:0]
		block = binary.AppendUvarint(block, uint64(len(recs)))
		block = binary.AppendUvarint(block, uint64(len(pcs)))
		block = binary.AppendUvarint(block, uint64(len(sts)))
		block = append(block, pcs...)
		block = append(block, sts...)
		outOff := len(block)
		block = append(block, make([]byte, (len(recs)+7)/8)...)
		for j, r := range recs {
			if r.Taken {
				block[outOff+j>>3] |= 1 << (j & 7)
			}
		}
		block = binary.LittleEndian.AppendUint32(block, crc32.ChecksumIEEE(block))
		if _, err := w.Write(block); err != nil {
			return err
		}
	}
	return nil
}

// blockMeta indexes one validated block inside a columnar file.
type blockMeta struct {
	start  int // offset of the count varint (CRC coverage starts here)
	pcOff  int // offset of the pc delta stream
	stOff  int // offset of the static id stream
	outOff int // offset of the outcome bit-vector
	crcOff int // offset of the CRC footer; also end of CRC coverage
	count  int // records in this block
}

// Columnar is a validated columnar trace file held as one byte slice. It
// implements Source (record streaming for every legacy consumer), Sized,
// and Blocked (batch iteration for the engine); the backing bytes are
// shared, never copied, and all iteration state lives in the iterators,
// so one *Columnar serves any number of concurrent streams.
type Columnar struct {
	name      string
	statics   int
	count     int
	blockSize int
	data      []byte
	blocks    []blockMeta
}

// OpenColumnar validates data as a columnar trace file and returns a
// zero-copy handle over it: the header and every block's structure and
// CRC are checked up front (one pass over the bytes, no payload decode),
// so damage is reported here — as a *ColumnarDecodeError with the block
// index and byte offset — rather than mid-iteration. The caller must not
// mutate data while the Columnar or any of its streams is live.
func OpenColumnar(data []byte) (*Columnar, error) {
	headerErr := func(off int, err error) error {
		return &ColumnarDecodeError{Block: headerBlock, Offset: int64(off), Err: err}
	}
	if len(data) < len(columnarMagic) || string(data[:len(columnarMagic)]) != columnarMagic {
		got := data
		if len(got) > len(columnarMagic) {
			got = got[:len(columnarMagic)]
		}
		return nil, headerErr(0, fmt.Errorf("%w: bad magic %q", ErrBadFormat, got))
	}
	off := len(columnarMagic)
	field := off
	next := func(what string) (uint64, error) {
		field = off
		v, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return 0, headerErr(field, fmt.Errorf("reading %s: %w", what, eofOrBad(n)))
		}
		off += n
		return v, nil
	}
	statics, err := next("static count")
	if err != nil {
		return nil, err
	}
	count, err := next("record count")
	if err != nil {
		return nil, err
	}
	blockSize, err := next("block size")
	if err != nil {
		return nil, err
	}
	if blockSize < 1 || blockSize > maxColumnarBlock {
		return nil, headerErr(field, fmt.Errorf("%w: block size %d outside [1, %d]", ErrBadFormat, blockSize, maxColumnarBlock))
	}
	nameLen, err := next("name length")
	if err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, headerErr(field, fmt.Errorf("%w: unreasonable name length %d", ErrBadFormat, nameLen))
	}
	nameOff := off
	if uint64(len(data)-off) < nameLen {
		return nil, headerErr(nameOff, fmt.Errorf("reading name: %w", io.ErrUnexpectedEOF))
	}
	off += int(nameLen)
	if len(data)-off < 4 {
		return nil, headerErr(off, fmt.Errorf("reading header checksum: %w", io.ErrUnexpectedEOF))
	}
	if got, want := binary.LittleEndian.Uint32(data[off:]), crc32.ChecksumIEEE(data[len(columnarMagic):off]); got != want {
		return nil, headerErr(off, fmt.Errorf("%w: header checksum %08x, computed %08x", ErrBadFormat, got, want))
	}
	off += 4

	c := &Columnar{
		name:      string(data[nameOff : nameOff+int(nameLen)]),
		statics:   int(statics),
		count:     int(count),
		blockSize: int(blockSize),
		data:      data,
	}

	// Index and checksum the blocks. Every block except the last must be
	// exactly full, so a dropped or duplicated block is a structural
	// error even before its CRC is consulted.
	numBlocks := (c.count + c.blockSize - 1) / c.blockSize
	c.blocks = make([]blockMeta, 0, numBlocks)
	remaining := c.count
	for b := 0; b < numBlocks; b++ {
		blockErr := func(at int, err error) error {
			return &ColumnarDecodeError{Block: int64(b), Offset: int64(at), Err: err}
		}
		m := blockMeta{start: off}
		field = off
		bnext := func(what string) (uint64, error) {
			field = off
			v, n := binary.Uvarint(data[off:])
			if n <= 0 {
				return 0, blockErr(field, fmt.Errorf("reading %s: %w", what, eofOrBad(n)))
			}
			off += n
			return v, nil
		}
		bcount, err := bnext("record count")
		if err != nil {
			return nil, err
		}
		want := uint64(c.blockSize)
		if b == numBlocks-1 {
			want = uint64(remaining)
		}
		if bcount != want {
			return nil, blockErr(field, fmt.Errorf("%w: block holds %d records, want %d", ErrBadFormat, bcount, want))
		}
		pcLen, err := bnext("pc stream length")
		if err != nil {
			return nil, err
		}
		stLen, err := bnext("static stream length")
		if err != nil {
			return nil, err
		}
		if pcLen > uint64(bcount)*binary.MaxVarintLen64 || stLen > uint64(bcount)*binary.MaxVarintLen64 {
			return nil, blockErr(field, fmt.Errorf("%w: stream lengths %d/%d exceed %d records", ErrBadFormat, pcLen, stLen, bcount))
		}
		outLen := (int(bcount) + 7) / 8
		m.pcOff = off
		m.stOff = m.pcOff + int(pcLen)
		m.outOff = m.stOff + int(stLen)
		m.crcOff = m.outOff + outLen
		m.count = int(bcount)
		if m.crcOff+4 > len(data) {
			return nil, blockErr(off, fmt.Errorf("reading block payload: %w", io.ErrUnexpectedEOF))
		}
		if got, want := binary.LittleEndian.Uint32(data[m.crcOff:]), crc32.ChecksumIEEE(data[m.start:m.crcOff]); got != want {
			return nil, blockErr(m.crcOff, fmt.Errorf("%w: block checksum %08x, computed %08x", ErrBadFormat, got, want))
		}
		off = m.crcOff + 4
		remaining -= m.count
		c.blocks = append(c.blocks, m)
	}
	if off != len(data) {
		return nil, &ColumnarDecodeError{
			Block:  int64(numBlocks),
			Offset: int64(off),
			Err:    fmt.Errorf("%w: %d trailing bytes after final block", ErrBadFormat, len(data)-off),
		}
	}
	return c, nil
}

// OpenColumnarFile reads path into memory and opens it with OpenColumnar.
func OpenColumnarFile(path string) (*Columnar, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return OpenColumnar(data)
}

// eofOrBad maps binary.Uvarint's failure modes (n == 0 truncation,
// n < 0 overflow) onto the decoder's standard sentinels.
func eofOrBad(n int) error {
	if n < 0 {
		return fmt.Errorf("%w: varint overflows uint64", ErrBadFormat)
	}
	return io.ErrUnexpectedEOF
}

// Name implements Source.
func (c *Columnar) Name() string { return c.name }

// StaticCount implements Source.
func (c *Columnar) StaticCount() int { return c.statics }

// Len implements Sized: the number of dynamic branches in the trace.
func (c *Columnar) Len() int { return c.count }

// NumBlocks returns the number of on-disk blocks.
func (c *Columnar) NumBlocks() int { return len(c.blocks) }

// BlockSize returns the records-per-block the file was written with.
func (c *Columnar) BlockSize() int { return c.blockSize }

// BlockStream implements Blocked.
func (c *Columnar) BlockStream() BlockStream { return &columnarBlocks{c: c} }

// columnarBlocks is the block iterator: one scratch record buffer,
// reused for every block, refilled by the columnar decode kernel.
type columnarBlocks struct {
	c       *Columnar
	next    int
	scratch []Record
}

// NextBlock implements BlockStream.
func (it *columnarBlocks) NextBlock() ([]Record, error) {
	if it.next >= len(it.c.blocks) {
		return nil, nil
	}
	b := it.next
	it.next++
	if it.scratch == nil {
		it.scratch = make([]Record, it.c.blockSize)
	}
	recs, err := decodeColumnarBlock(it.c.data, it.c.blocks[b], int64(b), it.c.statics, it.scratch)
	if err != nil {
		return nil, err
	}
	return recs, nil
}

// decodeColumnarBlock expands one indexed block into scratch. The
// payload bytes already passed the CRC at OpenColumnar, so failures here
// mean a crafted (checksum-consistent but structurally lying) file;
// they are still reported as located errors, never decoded wrong.
//
// This is the columnar hot path, and it is why the columns are split:
// each stream is decoded in its own tight loop over a raw byte slice,
// with the 1- and 2-byte varint cases — which cover branch-clustered PC
// deltas and realistic static-site counts — decoded inline (a load, a
// compare, a shift), falling back to binary.Uvarint only for wide
// values. The outcome column is a shift-and-mask per record. Per-column
// loops keep each iteration's branch pattern uniform, so the per-record
// cost is a handful of predictable instructions against the row
// decoder's per-byte interface calls.
func decodeColumnarBlock(data []byte, m blockMeta, block int64, statics int, scratch []Record) ([]Record, error) {
	blockErr := func(at int, err error) error {
		return &ColumnarDecodeError{Block: block, Offset: int64(at), Err: err}
	}
	if m.count > len(scratch) {
		scratch = make([]Record, m.count)
	}
	recs := scratch[:m.count]
	pcB := data[m.pcOff:m.stOff]
	stB := data[m.stOff:m.outOff]
	outB := data[m.outOff:m.crcOff]

	// PC column: zig-zag deltas of the rotated PC, chain restarting at 0
	// for this block. The ≤2-byte case is decoded branchlessly — the varint's length
	// comes out of the continuation bit as an arithmetic mask, not a
	// data-dependent branch, because real delta streams mix 1- and
	// 2-byte values unpredictably and a mispredict per record would
	// cost more than the whole rest of the loop.
	rot := uint64(0)
	i := 0
	for k := range recs {
		var d uint64
		if i+2 <= len(pcB) && pcB[i]&pcB[i+1] < 0x80 {
			b0 := uint64(pcB[i])
			cont := b0 >> 7 // 1 if a second byte follows
			d = (b0 & 0x7f) | uint64(pcB[i+1])<<7&(-cont)
			i += int(1 + cont)
		} else {
			v, n := binary.Uvarint(pcB[i:])
			if n <= 0 {
				return nil, blockErr(m.pcOff+i, fmt.Errorf("reading pc delta %d: %w", k, eofOrBad(n)))
			}
			d = v
			i += n
		}
		rot += uint64(unzigzag(d))
		recs[k].PC = rot>>1 | rot<<63 // undo the writer's rotation
	}
	if i != len(pcB) {
		return nil, blockErr(m.pcOff+i, fmt.Errorf("%w: %d unconsumed pc stream bytes", ErrBadFormat, len(pcB)-i))
	}

	// Static column: uvarint site ids, validated against the header's
	// declared site count.
	maxStatic := uint64(statics)
	j := 0
	for k := range recs {
		field := j // errors anchor at the field's first byte
		var st uint64
		if j+2 <= len(stB) && stB[j]&stB[j+1] < 0x80 {
			b0 := uint64(stB[j])
			cont := b0 >> 7
			st = (b0 & 0x7f) | uint64(stB[j+1])<<7&(-cont)
			j += int(1 + cont)
		} else {
			v, n := binary.Uvarint(stB[j:])
			if n <= 0 {
				return nil, blockErr(m.stOff+j, fmt.Errorf("reading static id %d: %w", k, eofOrBad(n)))
			}
			st = v
			j += n
		}
		if st >= maxStatic {
			return nil, blockErr(m.stOff+field, fmt.Errorf("%w: site %d >= static count %d", ErrBadFormat, st, statics))
		}
		// The outcome bit (LSB first in its column) rides along in the
		// same pass: Static and Taken share a record write this way.
		recs[k].Static = uint32(st)
		recs[k].Taken = outB[k>>3]>>(k&7)&1 != 0
	}
	if j != len(stB) {
		return nil, blockErr(m.stOff+j, fmt.Errorf("%w: %d unconsumed static stream bytes", ErrBadFormat, len(stB)-j))
	}
	return recs, nil
}

// Stream implements Source: record-at-a-time iteration for consumers
// that do not speak blocks, serving from the block decoder's scratch so
// the cost stays one decode per block plus a slice index per record. A
// damaged block (possible only for crafted files — OpenColumnar already
// verified every checksum) panics with the *ColumnarDecodeError, which
// the scheduler's per-job recovery reports as the cell's Result.Err,
// exactly like a generator failing mid-stream.
func (c *Columnar) Stream() Stream {
	return &columnarStream{bs: &columnarBlocks{c: c}}
}

type columnarStream struct {
	bs  *columnarBlocks
	cur []Record
	pos int
}

// Next implements Stream.
func (s *columnarStream) Next() (Record, bool) {
	for s.pos >= len(s.cur) {
		recs, err := s.bs.NextBlock()
		if err != nil {
			panic(err)
		}
		if recs == nil {
			return Record{}, false
		}
		s.cur, s.pos = recs, 0
	}
	r := s.cur[s.pos]
	s.pos++
	return r, true
}
