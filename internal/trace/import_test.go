package trace

import (
	"bufio"
	"errors"
	"strings"
	"testing"
)

// TestImportTextMalformed pins the error surface of ImportText: every
// malformed capture must be rejected with the one-based line number of
// the offending line, counting blank and comment lines, so a user can
// open the capture in an editor and jump straight to it.
func TestImportTextMalformed(t *testing.T) {
	cases := []struct {
		name     string
		in       string
		wantLine string // substring that must appear in the error
		wantSub  string // secondary substring pinning the cause
	}{
		{
			name:     "no fields after comment",
			in:       "# header\nonlyonefield\n",
			wantLine: "line 2",
			wantSub:  `need "pc taken"`,
		},
		{
			name:     "one field csv",
			in:       "0x1000,1\n0x2000,\n",
			wantLine: "line 2",
			wantSub:  "bad taken",
		},
		{
			name:     "bad pc",
			in:       "0x1000 1\n0xzz 1\n",
			wantLine: "line 2",
			wantSub:  `bad pc "0xzz"`,
		},
		{
			name:     "bad pc not hex or decimal",
			in:       "hello! 1\n",
			wantLine: "line 1",
			wantSub:  "bad pc",
		},
		{
			name:     "bad taken flag",
			in:       "0x1000 maybe\n",
			wantLine: "line 1",
			wantSub:  `bad taken flag "maybe"`,
		},
		{
			name:     "blank and comment lines still count",
			in:       "\n# c\n\n0x1000 1\n0x1004 x\n",
			wantLine: "line 5",
			wantSub:  "bad taken",
		},
		{
			name:     "crlf capture",
			in:       "0x1000 1\r\n0x1004 2\r\n",
			wantLine: "line 2",
			wantSub:  "bad taken",
		},
		{
			name:     "csv with spaces",
			in:       "0x1000 , 1\n 0x1004 ,bogus\n",
			wantLine: "line 2",
			wantSub:  "bad taken",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := ImportText(strings.NewReader(tc.in), "bad")
			if err == nil {
				t.Fatalf("ImportText accepted malformed capture %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantLine) {
				t.Errorf("error %q does not name %s", err, tc.wantLine)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestImportTextScannerError drives the sc.Err() path: a line longer
// than the scanner buffer fails with bufio.ErrTooLong, and the error
// must still carry the line number of the over-long line (one past the
// last line successfully delivered).
func TestImportTextScannerError(t *testing.T) {
	long := strings.Repeat("f", 2<<20) // 2 MiB, over the 1 MiB scanner cap
	in := "0x1000 1\n0x1004 0\n" + long + " 1\n"
	_, err := ImportText(strings.NewReader(in), "big")
	if err == nil {
		t.Fatalf("ImportText accepted a %d-byte line", len(long))
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("error %q does not wrap bufio.ErrTooLong", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name line 3", err)
	}

	// Same failure on the very first line: reported as line 1.
	_, err = ImportText(strings.NewReader(long+" 1\n"), "big")
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("first-line scanner error %q does not name line 1", err)
	}
}

// TestImportTextEmpty: a capture of only blanks and comments is a
// well-formed empty trace that still declares one static site.
func TestImportTextEmpty(t *testing.T) {
	m, err := ImportText(strings.NewReader("# nothing here\n\n"), "empty")
	if err != nil {
		t.Fatalf("ImportText: %v", err)
	}
	if m.Len() != 0 {
		t.Fatalf("empty capture produced %d records", m.Len())
	}
	if m.StaticCount() != 1 {
		t.Fatalf("empty capture static count %d, want 1", m.StaticCount())
	}
}
