package trace

import (
	"bufio"
	"errors"
	"strings"
	"testing"
)

// TestImportTextMalformed pins the error surface of ImportText: every
// malformed capture must be rejected with the one-based line number of
// the offending line, counting blank and comment lines, so a user can
// open the capture in an editor and jump straight to it.
func TestImportTextMalformed(t *testing.T) {
	cases := []struct {
		name     string
		in       string
		wantLine string // substring that must appear in the error
		wantSub  string // secondary substring pinning the cause
	}{
		{
			name:     "no fields after comment",
			in:       "# header\nonlyonefield\n",
			wantLine: "line 2",
			wantSub:  `need "pc taken"`,
		},
		{
			name:     "one field csv",
			in:       "0x1000,1\n0x2000,\n",
			wantLine: "line 2",
			wantSub:  "bad taken",
		},
		{
			name:     "bad pc",
			in:       "0x1000 1\n0xzz 1\n",
			wantLine: "line 2",
			wantSub:  `bad pc "0xzz"`,
		},
		{
			name:     "bad pc not hex or decimal",
			in:       "hello! 1\n",
			wantLine: "line 1",
			wantSub:  "bad pc",
		},
		{
			name:     "bad taken flag",
			in:       "0x1000 maybe\n",
			wantLine: "line 1",
			wantSub:  `bad taken flag "maybe"`,
		},
		{
			name:     "blank and comment lines still count",
			in:       "\n# c\n\n0x1000 1\n0x1004 x\n",
			wantLine: "line 5",
			wantSub:  "bad taken",
		},
		{
			name:     "crlf capture",
			in:       "0x1000 1\r\n0x1004 2\r\n",
			wantLine: "line 2",
			wantSub:  "bad taken",
		},
		{
			name:     "csv with spaces",
			in:       "0x1000 , 1\n 0x1004 ,bogus\n",
			wantLine: "line 2",
			wantSub:  "bad taken",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := ImportText(strings.NewReader(tc.in), "bad")
			if err == nil {
				t.Fatalf("ImportText accepted malformed capture %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantLine) {
				t.Errorf("error %q does not name %s", err, tc.wantLine)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestImportTextScannerError drives the sc.Err() path: a line longer
// than the scanner buffer fails with bufio.ErrTooLong, and the error
// must still carry the line number of the over-long line (one past the
// last line successfully delivered).
func TestImportTextScannerError(t *testing.T) {
	long := strings.Repeat("f", 2<<20) // 2 MiB, over the 1 MiB scanner cap
	in := "0x1000 1\n0x1004 0\n" + long + " 1\n"
	_, err := ImportText(strings.NewReader(in), "big")
	if err == nil {
		t.Fatalf("ImportText accepted a %d-byte line", len(long))
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Errorf("error %q does not wrap bufio.ErrTooLong", err)
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name line 3", err)
	}

	// Same failure on the very first line: reported as line 1.
	_, err = ImportText(strings.NewReader(long+" 1\n"), "big")
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("first-line scanner error %q does not name line 1", err)
	}
}

// TestTextScannerStreaming: the record-at-a-time scanner yields exactly
// what ImportText materializes, and a seeded site table carried across
// two scanners assigns one consistent id space — the contract predserve
// relies on when a session's trace arrives over many request bodies.
func TestTextScannerStreaming(t *testing.T) {
	in := "0x1000 1\n0x2000 0\n0x1000 0\n# note\n0x3000 t\n"
	want, err := ImportText(strings.NewReader(in), "w")
	if err != nil {
		t.Fatalf("ImportText: %v", err)
	}
	sc := NewTextScanner(strings.NewReader(in))
	var got []Record
	for sc.Scan() {
		got = append(got, sc.Record())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanner: %v", err)
	}
	if len(got) != want.Len() {
		t.Fatalf("scanner yielded %d records, ImportText %d", len(got), want.Len())
	}
	for i, r := range want.Records() {
		if got[i] != r {
			t.Errorf("record %d: scanner %+v != ImportText %+v", i, got[i], r)
		}
	}

	// Split the same capture across two bodies sharing one site table:
	// ids must continue, not restart.
	sc1 := NewTextScanner(strings.NewReader("0x1000 1\n0x2000 0\n"))
	for sc1.Scan() {
	}
	if err := sc1.Err(); err != nil {
		t.Fatalf("first body: %v", err)
	}
	sc2 := NewTextScanner(strings.NewReader("0x1000 0\n0x3000 t\n"))
	sc2.SetSites(sc1.Sites())
	var second []Record
	for sc2.Scan() {
		second = append(second, sc2.Record())
	}
	if err := sc2.Err(); err != nil {
		t.Fatalf("second body: %v", err)
	}
	if second[0].Static != 0 {
		t.Errorf("0x1000 in the second body got id %d, want the seeded 0", second[0].Static)
	}
	if second[1].Static != 2 {
		t.Errorf("new pc 0x3000 got id %d, want 2 (continuing the seeded space)", second[1].Static)
	}
	if n := len(sc2.Sites()); n != 3 {
		t.Errorf("combined site table has %d entries, want 3", n)
	}
}

// TestTextScannerErrorStops: after a malformed line the scanner stays
// stopped — Scan keeps returning false and Err keeps the first error —
// and the line number matches ImportText's report for the same input.
func TestTextScannerErrorStops(t *testing.T) {
	in := "0x1000 1\n0x2000 maybe\n0x3000 1\n"
	sc := NewTextScanner(strings.NewReader(in))
	n := 0
	for sc.Scan() {
		n++
	}
	if n != 1 {
		t.Fatalf("scanner delivered %d records before the bad line, want 1", n)
	}
	err := sc.Err()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("scanner error %v does not name line 2", err)
	}
	if sc.Scan() {
		t.Errorf("Scan returned true after an error")
	}
	if sc.Err() != err {
		t.Errorf("Err changed after the failed re-Scan")
	}
	_, ierr := ImportText(strings.NewReader(in), "w")
	if ierr == nil || ierr.Error() != err.Error() {
		t.Errorf("ImportText error %q != scanner error %q", ierr, err)
	}
}

// TestImportTextEmpty: a capture of only blanks and comments is a
// well-formed empty trace that still declares one static site.
func TestImportTextEmpty(t *testing.T) {
	m, err := ImportText(strings.NewReader("# nothing here\n\n"), "empty")
	if err != nil {
		t.Fatalf("ImportText: %v", err)
	}
	if m.Len() != 0 {
		t.Fatalf("empty capture produced %d records", m.Len())
	}
	if m.StaticCount() != 1 {
		t.Fatalf("empty capture static count %d, want 1", m.StaticCount())
	}
}
