package zoo

import (
	"fmt"
	"strings"
)

// Geometry is the declared black-box structure of a predictor spec: the
// attributes that internal/fingerprint recovers from the outside with
// crafted probe traces, written down as machine-readable ground truth.
// Every register call supplies a geometry function alongside its factory,
// so a family cannot enter the registry without declaring its structure;
// register validates the declaration against every example spec at
// package init, and the registry analyzer in internal/lint checks the
// geometry argument is statically present at each call site.
//
// The fields describe the predictor as an external prober sees it, not
// its full internal inventory (CostBits covers the latter):
//
//   - HistoryBits is the deepest branch-outcome history that influences
//     a prediction — the largest L for which the repeating pattern
//     T^L F is predictable.
//   - HistoryScope says whose outcomes that history holds: "global"
//     (one register shared by all branches), "peraddr" (a per-branch
//     register), "hybrid" (components of both), or "none".
//   - PerAddrHistoryBits is the per-branch history depth for peraddr
//     and hybrid scopes (for a pure global predictor it is 0). A hybrid
//     can have PerAddrHistoryBits < HistoryBits: the Alpha 21264-style
//     tournament reaches 12 outcomes through its global side but only
//     10 through its per-address side.
//   - PCIndexBits is the stride resolution: the smallest k such that
//     two branches 4*2^k apart can be made to collide in the same
//     counter. For a skewed predictor this is the hash input width
//     (twice the per-bank index width), because single-bit PC
//     differences never collide in a majority of banks below that.
//   - TableEntries is the number of second-level counters one branch's
//     index function can address — the capacity a collision probe is
//     colliding inside. For multi-bank organizations it is the total
//     across banks (gskew: 3·2^b); for bi-mode it is one direction
//     bank (the structure the stride sweep resolves; the choice table
//     is reported through HasChoice).
//   - IndexHash names how PC and history combine into that index:
//     "none" (no table), "pc" (PC only), "xor" (folded), "concat"
//     (disjoint fields), "history" (history only), "skew"
//     (per-bank skewing functions).
//   - HasChoice marks a bias-separating mechanism (bi-mode/tri-mode
//     choice banks, agree bias bits, filter run counters, YAGS choice +
//     exception caches, tournament meta) that lets two opposite-biased
//     branches share a folded index without destructive interference.
//   - HasLoop marks a loop-termination side structure that captures
//     any short repeating pattern regardless of history depth.
//   - Tagged marks tagged (cache-like) components whose capacity a
//     pure index probe cannot see.
type Geometry struct {
	// Family is the registered family name the geometry belongs to.
	Family string `json:"family"`
	// HistoryBits is the deepest observable outcome history.
	HistoryBits int `json:"history_bits"`
	// PerAddrHistoryBits is the per-branch history depth (peraddr and
	// hybrid scopes only).
	PerAddrHistoryBits int `json:"peraddr_history_bits,omitempty"`
	// HistoryScope is "none", "global", "peraddr" or "hybrid".
	HistoryScope string `json:"history_scope"`
	// PCIndexBits is the smallest colliding stride exponent.
	PCIndexBits int `json:"pc_index_bits"`
	// TableEntries is the addressable second-level counter capacity.
	TableEntries int `json:"table_entries"`
	// IndexHash is "none", "pc", "xor", "concat", "history" or "skew".
	IndexHash string `json:"index_hash"`
	// HasChoice marks a bias-separating choice mechanism.
	HasChoice bool `json:"has_choice"`
	// HasLoop marks a loop-termination side predictor.
	HasLoop bool `json:"has_loop,omitempty"`
	// Tagged marks tagged components invisible to index probes.
	Tagged bool `json:"tagged,omitempty"`
}

// History scopes.
const (
	ScopeNone    = "none"
	ScopeGlobal  = "global"
	ScopePerAddr = "peraddr"
	ScopeHybrid  = "hybrid"
)

// Index hash classes.
const (
	HashNone    = "none"
	HashPC      = "pc"
	HashXor     = "xor"
	HashConcat  = "concat"
	HashHistory = "history"
	HashSkew    = "skew"
)

var validScopes = map[string]bool{ScopeNone: true, ScopeGlobal: true, ScopePerAddr: true, ScopeHybrid: true}
var validHashes = map[string]bool{HashNone: true, HashPC: true, HashXor: true, HashConcat: true, HashHistory: true, HashSkew: true}

// Validate checks that a declared geometry is complete and internally
// consistent; register calls it for every example spec at package init,
// so an incomplete declaration cannot ship.
func (g Geometry) Validate() error {
	if !validScopes[g.HistoryScope] {
		return fmt.Errorf("geometry: history scope %q is not one of none/global/peraddr/hybrid", g.HistoryScope)
	}
	if !validHashes[g.IndexHash] {
		return fmt.Errorf("geometry: index hash %q is not one of none/pc/xor/concat/history/skew", g.IndexHash)
	}
	if (g.HistoryScope == ScopeNone) != (g.HistoryBits == 0) {
		return fmt.Errorf("geometry: history scope %q inconsistent with %d history bits", g.HistoryScope, g.HistoryBits)
	}
	if (g.IndexHash == HashNone) != (g.TableEntries == 0) {
		return fmt.Errorf("geometry: index hash %q inconsistent with %d table entries", g.IndexHash, g.TableEntries)
	}
	perAddr := g.HistoryScope == ScopePerAddr || g.HistoryScope == ScopeHybrid
	if perAddr && g.PerAddrHistoryBits <= 0 {
		return fmt.Errorf("geometry: scope %q requires per-address history bits", g.HistoryScope)
	}
	if !perAddr && g.PerAddrHistoryBits != 0 {
		return fmt.Errorf("geometry: scope %q must not declare per-address history bits", g.HistoryScope)
	}
	if g.IndexHash == HashPC && g.HistoryBits != 0 {
		return fmt.Errorf("geometry: pc-indexed predictor cannot consult %d history bits", g.HistoryBits)
	}
	if g.PCIndexBits < 0 {
		return fmt.Errorf("geometry: negative pc index bits %d", g.PCIndexBits)
	}
	return nil
}

// maxInt is a tiny helper for geometry arithmetic.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Describe returns the declared geometry of a spec string, evaluated
// over the spec's parameters exactly as New evaluates its factory.
func Describe(spec string) (Geometry, error) {
	name, opts, _ := strings.Cut(spec, ":")
	pr, err := parseParams(spec, opts)
	if err != nil {
		return Geometry{}, err
	}
	b, ok := registry[strings.ToLower(name)]
	if !ok {
		return Geometry{}, fmt.Errorf("zoo: unknown predictor %q (see package zoo docs for the spec grammar)", name)
	}
	g, err := b.geom(pr)
	if err != nil {
		return Geometry{}, err
	}
	g.Family = strings.ToLower(name)
	if err := g.Validate(); err != nil {
		return Geometry{}, fmt.Errorf("zoo: %q: %v", spec, err)
	}
	return g, nil
}

// MustDescribe is Describe for specs fixed at compile time.
func MustDescribe(spec string) Geometry {
	g, err := Describe(spec)
	if err != nil {
		panic(err)
	}
	return g
}

// Families lists every registered family name in registration order.
func Families() []string {
	out := make([]string, len(registryOrder))
	copy(out, registryOrder)
	return out
}
