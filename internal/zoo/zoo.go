// Package zoo constructs predictors from compact spec strings, giving the
// command-line tools and examples a uniform way to name any predictor in
// the repository.
//
// Spec grammar: name[:key=val[,key=val...]]  — for example:
//
//	smith:a=12              Smith predictor, 2^12 counters
//	gshare:i=12,h=12        single-PHT gshare (paper's gshare.1PHT)
//	gshare:i=12,h=8         multi-PHT gshare (16 PHTs)
//	gselect:a=6,h=6         gselect
//	gag:h=12                GAg
//	gas:h=10,s=2            GAs with 4 PHTs
//	pag:b=10,h=10           PAg
//	pas:b=10,h=8,s=2        PAs
//	bimode:b=11             bi-mode, banks 2^11, defaults c=b, h=b
//	bimode:c=10,b=11,h=9    bi-mode, fully spelled out
//	trimode:b=10            tri-mode extension (third bank for WB branches)
//	filter:i=12,h=12,f=10,m=32  PHT-interference filter [ChangEversPatt96]
//	agree:i=12,h=12,b=10    agree predictor
//	gskew:b=10,h=10         gskew (add p=1 for e-gskew partial update)
//	yags:c=11,e=10,h=10,t=6 YAGS
//	alpha:s=12              Alpha 21264-style tournament (PAs | GAg)
//	loopgshare:i=12,l=8     gshare with a loop-termination side predictor
//	taken | not-taken | btfn  static predictors
//
// Family names are case-insensitive on lookup; their canonical
// (registered) form is lowercase. Each family lives in one register call
// below, which supplies both the factory and the family's declared
// black-box Geometry (the ground truth internal/fingerprint re-derives);
// the registry analyzer in internal/lint statically re-checks the
// registration contract — unique lowercase names, examples that belong to
// their family, builders that can never return a nil predictor with a
// nil error, and a statically present geometry function.
package zoo

import (
	"fmt"
	"strconv"
	"strings"

	"bimode/internal/baselines"
	"bimode/internal/core"
	"bimode/internal/predictor"
)

// params holds parsed key=value options with presence tracking so unknown
// and missing keys can be reported precisely.
type params struct {
	spec string
	vals map[string]int
	used map[string]bool
}

func parseParams(spec, opts string) (*params, error) {
	p := &params{spec: spec, vals: map[string]int{}, used: map[string]bool{}}
	if opts == "" {
		return p, nil
	}
	for _, kv := range strings.Split(opts, ",") {
		key, val, found := strings.Cut(kv, "=")
		if !found {
			return nil, fmt.Errorf("zoo: %q: option %q is not key=value", spec, kv)
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("zoo: %q: option %q: %v", spec, kv, err)
		}
		if _, dup := p.vals[key]; dup {
			return nil, fmt.Errorf("zoo: %q: duplicate option %q", spec, key)
		}
		p.vals[key] = n
	}
	return p, nil
}

// get returns a required parameter.
func (p *params) get(key string) (int, error) {
	v, ok := p.vals[key]
	if !ok {
		return 0, fmt.Errorf("zoo: %q: missing required option %q", p.spec, key)
	}
	p.used[key] = true
	return v, nil
}

// getDefault returns an optional parameter.
func (p *params) getDefault(key string, def int) int {
	v, ok := p.vals[key]
	if !ok {
		return def
	}
	p.used[key] = true
	return v
}

// leftover reports the first unconsumed option, if any.
func (p *params) leftover() error {
	for k := range p.vals {
		if !p.used[k] {
			return fmt.Errorf("zoo: %q: unknown option %q", p.spec, k)
		}
	}
	return nil
}

// builder is one registered spec family: its constructor, its declared
// geometry, and the example specs Known advertises for it.
type builder struct {
	build    func(p *params) (predictor.Predictor, error)
	geom     func(p *params) (Geometry, error)
	examples []string
}

var (
	registry      = map[string]builder{}
	registryOrder []string
)

// register adds a spec family to the registry. The name must be its own
// lowercase form, non-empty and unique; every example must name this
// family; and the geometry function must produce a complete, valid
// Geometry for every example. These rules are enforced twice: here at
// package init, and statically by the registry analyzer in
// internal/lint, which also requires build to use explicit returns and
// never return nil, nil.
//
//bimode:registry
func register(name string, build func(*params) (predictor.Predictor, error), geom func(*params) (Geometry, error), examples ...string) {
	if name == "" || name != strings.ToLower(name) {
		panic(fmt.Sprintf("zoo: register %q: name must be non-empty lowercase", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("zoo: register %q: duplicate registration", name))
	}
	if build == nil {
		panic(fmt.Sprintf("zoo: register %q: nil builder", name))
	}
	if geom == nil {
		panic(fmt.Sprintf("zoo: register %q: nil geometry", name))
	}
	for _, ex := range examples {
		if fam, _, _ := strings.Cut(ex, ":"); fam != name {
			panic(fmt.Sprintf("zoo: register %q: example %q names a different family", name, ex))
		}
		// The declared geometry must be complete for every example the
		// registry advertises: evaluate it against the example's
		// parameters and validate the result, so a family cannot
		// register without machine-readable ground truth.
		_, opts, _ := strings.Cut(ex, ":")
		pr, err := parseParams(ex, opts)
		if err != nil {
			panic(fmt.Sprintf("zoo: register %q: example %q: %v", name, ex, err))
		}
		g, err := geom(pr)
		if err != nil {
			panic(fmt.Sprintf("zoo: register %q: example %q: geometry: %v", name, ex, err))
		}
		if err := g.Validate(); err != nil {
			panic(fmt.Sprintf("zoo: register %q: example %q: %v", name, ex, err))
		}
	}
	registry[name] = builder{build: build, geom: geom, examples: examples}
	registryOrder = append(registryOrder, name)
}

// staticGeometry is the shared geometry of the history-less static
// predictors: no table, no history, nothing for a probe to collide.
func staticGeometry(*params) (Geometry, error) {
	return Geometry{HistoryScope: ScopeNone, IndexHash: HashNone}, nil
}

func init() {
	// The static families are spelled out (rather than looped over) so the
	// registry analyzer can audit each name as a string constant.
	register("taken", func(*params) (predictor.Predictor, error) {
		return baselines.NewStatic("taken"), nil
	}, staticGeometry, "taken")
	register("not-taken", func(*params) (predictor.Predictor, error) {
		return baselines.NewStatic("not-taken"), nil
	}, staticGeometry, "not-taken")
	register("btfn", func(*params) (predictor.Predictor, error) {
		return baselines.NewStatic("btfn"), nil
	}, staticGeometry, "btfn")

	register("smith", func(pr *params) (predictor.Predictor, error) {
		a, err := pr.get("a")
		if err != nil {
			return nil, err
		}
		return baselines.NewSmith(a), nil
	}, func(pr *params) (Geometry, error) {
		a, err := pr.get("a")
		if err != nil {
			return Geometry{}, err
		}
		return Geometry{
			HistoryScope: ScopeNone, PCIndexBits: a,
			TableEntries: 1 << a, IndexHash: HashPC,
		}, nil
	}, "smith:a=12")

	register("gshare", func(pr *params) (predictor.Predictor, error) {
		i, err := pr.get("i")
		if err != nil {
			return nil, err
		}
		return baselines.NewGshare(i, pr.getDefault("h", i)), nil
	}, func(pr *params) (Geometry, error) {
		i, err := pr.get("i")
		if err != nil {
			return Geometry{}, err
		}
		return Geometry{
			HistoryBits: pr.getDefault("h", i), HistoryScope: ScopeGlobal,
			PCIndexBits: i, TableEntries: 1 << i, IndexHash: HashXor,
		}, nil
	}, "gshare:i=12,h=12", "gshare:i=12,h=8")

	register("gselect", func(pr *params) (predictor.Predictor, error) {
		a, err := pr.get("a")
		if err != nil {
			return nil, err
		}
		h, err := pr.get("h")
		if err != nil {
			return nil, err
		}
		return baselines.NewGselect(a, h), nil
	}, func(pr *params) (Geometry, error) {
		a, err := pr.get("a")
		if err != nil {
			return Geometry{}, err
		}
		h, err := pr.get("h")
		if err != nil {
			return Geometry{}, err
		}
		return Geometry{
			HistoryBits: h, HistoryScope: ScopeGlobal,
			PCIndexBits: a, TableEntries: 1 << (a + h), IndexHash: HashConcat,
		}, nil
	}, "gselect:a=6,h=6")

	register("gag", func(pr *params) (predictor.Predictor, error) {
		h, err := pr.get("h")
		if err != nil {
			return nil, err
		}
		return baselines.NewGAg(h), nil
	}, func(pr *params) (Geometry, error) {
		h, err := pr.get("h")
		if err != nil {
			return Geometry{}, err
		}
		return Geometry{
			HistoryBits: h, HistoryScope: ScopeGlobal,
			TableEntries: 1 << h, IndexHash: HashHistory,
		}, nil
	}, "gag:h=12")

	register("gas", func(pr *params) (predictor.Predictor, error) {
		h, err := pr.get("h")
		if err != nil {
			return nil, err
		}
		s, err := pr.get("s")
		if err != nil {
			return nil, err
		}
		return baselines.NewGAs(h, s), nil
	}, func(pr *params) (Geometry, error) {
		h, err := pr.get("h")
		if err != nil {
			return Geometry{}, err
		}
		s, err := pr.get("s")
		if err != nil {
			return Geometry{}, err
		}
		return Geometry{
			HistoryBits: h, HistoryScope: ScopeGlobal,
			PCIndexBits: s, TableEntries: 1 << (h + s), IndexHash: HashConcat,
		}, nil
	}, "gas:h=10,s=2")

	register("pag", func(pr *params) (predictor.Predictor, error) {
		b, err := pr.get("b")
		if err != nil {
			return nil, err
		}
		h, err := pr.get("h")
		if err != nil {
			return nil, err
		}
		return baselines.NewPAg(b, h), nil
	}, func(pr *params) (Geometry, error) {
		_, err := pr.get("b")
		if err != nil {
			return Geometry{}, err
		}
		h, err := pr.get("h")
		if err != nil {
			return Geometry{}, err
		}
		return Geometry{
			HistoryBits: h, PerAddrHistoryBits: h, HistoryScope: ScopePerAddr,
			TableEntries: 1 << h, IndexHash: HashHistory,
		}, nil
	}, "pag:b=10,h=10")

	register("pas", func(pr *params) (predictor.Predictor, error) {
		b, err := pr.get("b")
		if err != nil {
			return nil, err
		}
		h, err := pr.get("h")
		if err != nil {
			return nil, err
		}
		s, err := pr.get("s")
		if err != nil {
			return nil, err
		}
		return baselines.NewPAs(b, h, s), nil
	}, func(pr *params) (Geometry, error) {
		_, err := pr.get("b")
		if err != nil {
			return Geometry{}, err
		}
		h, err := pr.get("h")
		if err != nil {
			return Geometry{}, err
		}
		s, err := pr.get("s")
		if err != nil {
			return Geometry{}, err
		}
		return Geometry{
			HistoryBits: h, PerAddrHistoryBits: h, HistoryScope: ScopePerAddr,
			PCIndexBits: s, TableEntries: 1 << (h + s), IndexHash: HashConcat,
		}, nil
	}, "pas:b=10,h=8,s=2")

	register("bimode", func(pr *params) (predictor.Predictor, error) {
		b, err := pr.get("b")
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			ChoiceBits:  pr.getDefault("c", b),
			BankBits:    b,
			HistoryBits: pr.getDefault("h", b),
		}
		cfg.FullChoiceUpdate = pr.getDefault("fullchoice", 0) != 0
		cfg.UpdateBothBanks = pr.getDefault("bothbanks", 0) != 0
		bm, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		return bm, nil
	}, biModeGeometry, "bimode:b=11", "bimode:c=10,b=11,h=9")

	register("trimode", func(pr *params) (predictor.Predictor, error) {
		b, err := pr.get("b")
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			ChoiceBits:  pr.getDefault("c", b),
			BankBits:    b,
			HistoryBits: pr.getDefault("h", b),
		}
		tm, err := core.NewTriMode(cfg)
		if err != nil {
			return nil, err
		}
		return tm, nil
	}, biModeGeometry, "trimode:b=10")

	register("filter", func(pr *params) (predictor.Predictor, error) {
		i, err := pr.get("i")
		if err != nil {
			return nil, err
		}
		return baselines.NewFilter(i, pr.getDefault("h", i), pr.getDefault("f", i-2),
			uint8(pr.getDefault("m", 32))), nil
	}, func(pr *params) (Geometry, error) {
		i, err := pr.get("i")
		if err != nil {
			return Geometry{}, err
		}
		pr.getDefault("f", i-2)
		pr.getDefault("m", 32)
		return Geometry{
			HistoryBits: pr.getDefault("h", i), HistoryScope: ScopeGlobal,
			PCIndexBits: i, TableEntries: 1 << i, IndexHash: HashXor,
			HasChoice: true,
		}, nil
	}, "filter:i=12,h=12,f=10,m=32")

	register("agree", func(pr *params) (predictor.Predictor, error) {
		i, err := pr.get("i")
		if err != nil {
			return nil, err
		}
		return baselines.NewAgree(i, pr.getDefault("h", i), pr.getDefault("b", i)), nil
	}, func(pr *params) (Geometry, error) {
		i, err := pr.get("i")
		if err != nil {
			return Geometry{}, err
		}
		pr.getDefault("b", i)
		return Geometry{
			HistoryBits: pr.getDefault("h", i), HistoryScope: ScopeGlobal,
			PCIndexBits: i, TableEntries: 1 << i, IndexHash: HashXor,
			HasChoice: true,
		}, nil
	}, "agree:i=12,h=12,b=10")

	register("gskew", func(pr *params) (predictor.Predictor, error) {
		b, err := pr.get("b")
		if err != nil {
			return nil, err
		}
		return baselines.NewGskew(b, pr.getDefault("h", b), pr.getDefault("p", 0) != 0), nil
	}, func(pr *params) (Geometry, error) {
		b, err := pr.get("b")
		if err != nil {
			return Geometry{}, err
		}
		pr.getDefault("p", 0)
		// PCIndexBits is 2b, not b: the skewing functions are bijective
		// per bank, so a single-bit PC difference never collides in a
		// majority of banks until the whole 2b-bit hash input repeats.
		return Geometry{
			HistoryBits: pr.getDefault("h", b), HistoryScope: ScopeGlobal,
			PCIndexBits: 2 * b, TableEntries: 3 << b, IndexHash: HashSkew,
		}, nil
	}, "gskew:b=10,h=10", "gskew:b=10,h=10,p=1")

	register("yags", func(pr *params) (predictor.Predictor, error) {
		c, err := pr.get("c")
		if err != nil {
			return nil, err
		}
		e, err := pr.get("e")
		if err != nil {
			return nil, err
		}
		return baselines.NewYAGS(c, e, pr.getDefault("h", e), pr.getDefault("t", 6)), nil
	}, func(pr *params) (Geometry, error) {
		c, err := pr.get("c")
		if err != nil {
			return Geometry{}, err
		}
		e, err := pr.get("e")
		if err != nil {
			return Geometry{}, err
		}
		pr.getDefault("t", 6)
		return Geometry{
			HistoryBits: pr.getDefault("h", e), HistoryScope: ScopeGlobal,
			PCIndexBits: c, TableEntries: 1 << c, IndexHash: HashXor,
			HasChoice: true, Tagged: true,
		}, nil
	}, "yags:c=11,e=10,h=10,t=6")

	register("alpha", func(pr *params) (predictor.Predictor, error) {
		s, err := pr.get("s")
		if err != nil {
			return nil, err
		}
		return baselines.NewAlpha21264Style(s), nil
	}, func(pr *params) (Geometry, error) {
		s, err := pr.get("s")
		if err != nil {
			return Geometry{}, err
		}
		// The global (GAg) side reaches s outcomes; the per-address
		// (PAs) side reaches s-2 through 4 sets, whose PHT of
		// 2^((s-2)+2) counters is the structure a per-address stride
		// probe resolves.
		return Geometry{
			HistoryBits: s, PerAddrHistoryBits: s - 2, HistoryScope: ScopeHybrid,
			PCIndexBits: 2, TableEntries: 1 << s, IndexHash: HashConcat,
			HasChoice: true,
		}, nil
	}, "alpha:s=12")

	register("loopgshare", func(pr *params) (predictor.Predictor, error) {
		i, err := pr.get("i")
		if err != nil {
			return nil, err
		}
		return baselines.NewWithLoopOverride(
			baselines.NewGshare(i, pr.getDefault("h", i)), pr.getDefault("l", i-4)), nil
	}, func(pr *params) (Geometry, error) {
		i, err := pr.get("i")
		if err != nil {
			return Geometry{}, err
		}
		pr.getDefault("l", i-4)
		return Geometry{
			HistoryBits: pr.getDefault("h", i), HistoryScope: ScopeGlobal,
			PCIndexBits: i, TableEntries: 1 << i, IndexHash: HashXor,
			HasLoop: true,
		}, nil
	}, "loopgshare:i=12,l=8")
}

// biModeGeometry is shared by the bimode and trimode registrations,
// whose observable structure is identical: xor-indexed direction banks
// of 2^b entries behind a PC-indexed choice mechanism.
func biModeGeometry(pr *params) (Geometry, error) {
	b, err := pr.get("b")
	if err != nil {
		return Geometry{}, err
	}
	// A stride only completes a collision once it defeats both the
	// direction banks (b bits) and the choice table (c bits): below
	// that, whichever structure still separates the pair steers the
	// colliding branch to a counter of its own.
	pc := maxInt(b, pr.getDefault("c", b))
	pr.getDefault("fullchoice", 0)
	pr.getDefault("bothbanks", 0)
	return Geometry{
		HistoryBits: pr.getDefault("h", b), HistoryScope: ScopeGlobal,
		PCIndexBits: pc, TableEntries: 1 << pc, IndexHash: HashXor,
		HasChoice: true,
	}, nil
}

// New builds a predictor from a spec string. Construction panics from
// invalid widths are converted to errors.
func New(spec string) (p predictor.Predictor, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("zoo: %q: %v", spec, r)
		}
	}()

	name, opts, _ := strings.Cut(spec, ":")
	pr, perr := parseParams(spec, opts)
	if perr != nil {
		return nil, perr
	}
	b, ok := registry[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("zoo: unknown predictor %q (see package zoo docs for the spec grammar)", name)
	}
	p, err = b.build(pr)
	if err != nil {
		return nil, err
	}
	if p == nil {
		// Unreachable for registrations that pass the registry analyzer;
		// kept as a runtime backstop so a broken builder fails loudly.
		return nil, fmt.Errorf("zoo: %q: builder returned no predictor", spec)
	}
	if err := pr.leftover(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustNew is New that panics on error; for specs fixed at compile time.
func MustNew(spec string) predictor.Predictor {
	p, err := New(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// Known lists the example specs of every registered family, in
// registration order; used for help text and the differential test grids.
func Known() []string {
	var out []string
	for _, name := range registryOrder {
		out = append(out, registry[name].examples...)
	}
	return out
}
