// Package zoo constructs predictors from compact spec strings, giving the
// command-line tools and examples a uniform way to name any predictor in
// the repository.
//
// Spec grammar: name[:key=val[,key=val...]]  — for example:
//
//	smith:a=12              Smith predictor, 2^12 counters
//	gshare:i=12,h=12        single-PHT gshare (paper's gshare.1PHT)
//	gshare:i=12,h=8         multi-PHT gshare (16 PHTs)
//	gselect:a=6,h=6         gselect
//	gag:h=12                GAg
//	gas:h=10,s=2            GAs with 4 PHTs
//	pag:b=10,h=10           PAg
//	pas:b=10,h=8,s=2        PAs
//	bimode:b=11             bi-mode, banks 2^11, defaults c=b, h=b
//	bimode:c=10,b=11,h=9    bi-mode, fully spelled out
//	trimode:b=10            tri-mode extension (third bank for WB branches)
//	filter:i=12,h=12,f=10,m=32  PHT-interference filter [ChangEversPatt96]
//	agree:i=12,h=12,b=10    agree predictor
//	gskew:b=10,h=10         gskew (add p=1 for e-gskew partial update)
//	yags:c=11,e=10,h=10,t=6 YAGS
//	alpha:s=12              Alpha 21264-style tournament (PAs | GAg)
//	loopgshare:i=12,l=8     gshare with a loop-termination side predictor
//	taken | not-taken | btfn  static predictors
//
// Family names are case-insensitive on lookup; their canonical
// (registered) form is lowercase. Each family lives in one register call
// below; the registry analyzer in internal/lint statically re-checks the
// registration contract — unique lowercase names, examples that belong to
// their family, and builders that can never return a nil predictor with a
// nil error.
package zoo

import (
	"fmt"
	"strconv"
	"strings"

	"bimode/internal/baselines"
	"bimode/internal/core"
	"bimode/internal/predictor"
)

// params holds parsed key=value options with presence tracking so unknown
// and missing keys can be reported precisely.
type params struct {
	spec string
	vals map[string]int
	used map[string]bool
}

func parseParams(spec, opts string) (*params, error) {
	p := &params{spec: spec, vals: map[string]int{}, used: map[string]bool{}}
	if opts == "" {
		return p, nil
	}
	for _, kv := range strings.Split(opts, ",") {
		key, val, found := strings.Cut(kv, "=")
		if !found {
			return nil, fmt.Errorf("zoo: %q: option %q is not key=value", spec, kv)
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("zoo: %q: option %q: %v", spec, kv, err)
		}
		if _, dup := p.vals[key]; dup {
			return nil, fmt.Errorf("zoo: %q: duplicate option %q", spec, key)
		}
		p.vals[key] = n
	}
	return p, nil
}

// get returns a required parameter.
func (p *params) get(key string) (int, error) {
	v, ok := p.vals[key]
	if !ok {
		return 0, fmt.Errorf("zoo: %q: missing required option %q", p.spec, key)
	}
	p.used[key] = true
	return v, nil
}

// getDefault returns an optional parameter.
func (p *params) getDefault(key string, def int) int {
	v, ok := p.vals[key]
	if !ok {
		return def
	}
	p.used[key] = true
	return v
}

// leftover reports the first unconsumed option, if any.
func (p *params) leftover() error {
	for k := range p.vals {
		if !p.used[k] {
			return fmt.Errorf("zoo: %q: unknown option %q", p.spec, k)
		}
	}
	return nil
}

// builder is one registered spec family: its constructor plus the example
// specs Known advertises for it.
type builder struct {
	build    func(p *params) (predictor.Predictor, error)
	examples []string
}

var (
	registry      = map[string]builder{}
	registryOrder []string
)

// register adds a spec family to the registry. The name must be its own
// lowercase form, non-empty and unique, and every example must name this
// family. These rules are enforced twice: here at package init, and
// statically by the registry analyzer in internal/lint, which also
// requires build to use explicit returns and never return nil, nil.
//
//bimode:registry
func register(name string, build func(*params) (predictor.Predictor, error), examples ...string) {
	if name == "" || name != strings.ToLower(name) {
		panic(fmt.Sprintf("zoo: register %q: name must be non-empty lowercase", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("zoo: register %q: duplicate registration", name))
	}
	if build == nil {
		panic(fmt.Sprintf("zoo: register %q: nil builder", name))
	}
	for _, ex := range examples {
		if fam, _, _ := strings.Cut(ex, ":"); fam != name {
			panic(fmt.Sprintf("zoo: register %q: example %q names a different family", name, ex))
		}
	}
	registry[name] = builder{build: build, examples: examples}
	registryOrder = append(registryOrder, name)
}

func init() {
	// The static families are spelled out (rather than looped over) so the
	// registry analyzer can audit each name as a string constant.
	register("taken", func(*params) (predictor.Predictor, error) {
		return baselines.NewStatic("taken"), nil
	}, "taken")
	register("not-taken", func(*params) (predictor.Predictor, error) {
		return baselines.NewStatic("not-taken"), nil
	}, "not-taken")
	register("btfn", func(*params) (predictor.Predictor, error) {
		return baselines.NewStatic("btfn"), nil
	}, "btfn")

	register("smith", func(pr *params) (predictor.Predictor, error) {
		a, err := pr.get("a")
		if err != nil {
			return nil, err
		}
		return baselines.NewSmith(a), nil
	}, "smith:a=12")

	register("gshare", func(pr *params) (predictor.Predictor, error) {
		i, err := pr.get("i")
		if err != nil {
			return nil, err
		}
		return baselines.NewGshare(i, pr.getDefault("h", i)), nil
	}, "gshare:i=12,h=12", "gshare:i=12,h=8")

	register("gselect", func(pr *params) (predictor.Predictor, error) {
		a, err := pr.get("a")
		if err != nil {
			return nil, err
		}
		h, err := pr.get("h")
		if err != nil {
			return nil, err
		}
		return baselines.NewGselect(a, h), nil
	}, "gselect:a=6,h=6")

	register("gag", func(pr *params) (predictor.Predictor, error) {
		h, err := pr.get("h")
		if err != nil {
			return nil, err
		}
		return baselines.NewGAg(h), nil
	}, "gag:h=12")

	register("gas", func(pr *params) (predictor.Predictor, error) {
		h, err := pr.get("h")
		if err != nil {
			return nil, err
		}
		s, err := pr.get("s")
		if err != nil {
			return nil, err
		}
		return baselines.NewGAs(h, s), nil
	}, "gas:h=10,s=2")

	register("pag", func(pr *params) (predictor.Predictor, error) {
		b, err := pr.get("b")
		if err != nil {
			return nil, err
		}
		h, err := pr.get("h")
		if err != nil {
			return nil, err
		}
		return baselines.NewPAg(b, h), nil
	}, "pag:b=10,h=10")

	register("pas", func(pr *params) (predictor.Predictor, error) {
		b, err := pr.get("b")
		if err != nil {
			return nil, err
		}
		h, err := pr.get("h")
		if err != nil {
			return nil, err
		}
		s, err := pr.get("s")
		if err != nil {
			return nil, err
		}
		return baselines.NewPAs(b, h, s), nil
	}, "pas:b=10,h=8,s=2")

	register("bimode", func(pr *params) (predictor.Predictor, error) {
		b, err := pr.get("b")
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			ChoiceBits:  pr.getDefault("c", b),
			BankBits:    b,
			HistoryBits: pr.getDefault("h", b),
		}
		cfg.FullChoiceUpdate = pr.getDefault("fullchoice", 0) != 0
		cfg.UpdateBothBanks = pr.getDefault("bothbanks", 0) != 0
		bm, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		return bm, nil
	}, "bimode:b=11", "bimode:c=10,b=11,h=9")

	register("trimode", func(pr *params) (predictor.Predictor, error) {
		b, err := pr.get("b")
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			ChoiceBits:  pr.getDefault("c", b),
			BankBits:    b,
			HistoryBits: pr.getDefault("h", b),
		}
		tm, err := core.NewTriMode(cfg)
		if err != nil {
			return nil, err
		}
		return tm, nil
	}, "trimode:b=10")

	register("filter", func(pr *params) (predictor.Predictor, error) {
		i, err := pr.get("i")
		if err != nil {
			return nil, err
		}
		return baselines.NewFilter(i, pr.getDefault("h", i), pr.getDefault("f", i-2),
			uint8(pr.getDefault("m", 32))), nil
	}, "filter:i=12,h=12,f=10,m=32")

	register("agree", func(pr *params) (predictor.Predictor, error) {
		i, err := pr.get("i")
		if err != nil {
			return nil, err
		}
		return baselines.NewAgree(i, pr.getDefault("h", i), pr.getDefault("b", i)), nil
	}, "agree:i=12,h=12,b=10")

	register("gskew", func(pr *params) (predictor.Predictor, error) {
		b, err := pr.get("b")
		if err != nil {
			return nil, err
		}
		return baselines.NewGskew(b, pr.getDefault("h", b), pr.getDefault("p", 0) != 0), nil
	}, "gskew:b=10,h=10", "gskew:b=10,h=10,p=1")

	register("yags", func(pr *params) (predictor.Predictor, error) {
		c, err := pr.get("c")
		if err != nil {
			return nil, err
		}
		e, err := pr.get("e")
		if err != nil {
			return nil, err
		}
		return baselines.NewYAGS(c, e, pr.getDefault("h", e), pr.getDefault("t", 6)), nil
	}, "yags:c=11,e=10,h=10,t=6")

	register("alpha", func(pr *params) (predictor.Predictor, error) {
		s, err := pr.get("s")
		if err != nil {
			return nil, err
		}
		return baselines.NewAlpha21264Style(s), nil
	}, "alpha:s=12")

	register("loopgshare", func(pr *params) (predictor.Predictor, error) {
		i, err := pr.get("i")
		if err != nil {
			return nil, err
		}
		return baselines.NewWithLoopOverride(
			baselines.NewGshare(i, pr.getDefault("h", i)), pr.getDefault("l", i-4)), nil
	}, "loopgshare:i=12,l=8")
}

// New builds a predictor from a spec string. Construction panics from
// invalid widths are converted to errors.
func New(spec string) (p predictor.Predictor, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("zoo: %q: %v", spec, r)
		}
	}()

	name, opts, _ := strings.Cut(spec, ":")
	pr, perr := parseParams(spec, opts)
	if perr != nil {
		return nil, perr
	}
	b, ok := registry[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("zoo: unknown predictor %q (see package zoo docs for the spec grammar)", name)
	}
	p, err = b.build(pr)
	if err != nil {
		return nil, err
	}
	if p == nil {
		// Unreachable for registrations that pass the registry analyzer;
		// kept as a runtime backstop so a broken builder fails loudly.
		return nil, fmt.Errorf("zoo: %q: builder returned no predictor", spec)
	}
	if err := pr.leftover(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustNew is New that panics on error; for specs fixed at compile time.
func MustNew(spec string) predictor.Predictor {
	p, err := New(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// Known lists the example specs of every registered family, in
// registration order; used for help text and the differential test grids.
func Known() []string {
	var out []string
	for _, name := range registryOrder {
		out = append(out, registry[name].examples...)
	}
	return out
}
