// Package zoo constructs predictors from compact spec strings, giving the
// command-line tools and examples a uniform way to name any predictor in
// the repository.
//
// Spec grammar: name[:key=val[,key=val...]]  — for example:
//
//	smith:a=12              Smith predictor, 2^12 counters
//	gshare:i=12,h=12        single-PHT gshare (paper's gshare.1PHT)
//	gshare:i=12,h=8         multi-PHT gshare (16 PHTs)
//	gselect:a=6,h=6         gselect
//	gag:h=12                GAg
//	gas:h=10,s=2            GAs with 4 PHTs
//	pag:b=10,h=10           PAg
//	pas:b=10,h=8,s=2        PAs
//	bimode:b=11             bi-mode, banks 2^11, defaults c=b, h=b
//	bimode:c=10,b=11,h=9    bi-mode, fully spelled out
//	trimode:b=10            tri-mode extension (third bank for WB branches)
//	filter:i=12,h=12,f=10,m=32  PHT-interference filter [ChangEversPatt96]
//	agree:i=12,h=12,b=10    agree predictor
//	gskew:b=10,h=10         gskew (add p=1 for e-gskew partial update)
//	yags:c=11,e=10,h=10,t=6 YAGS
//	alpha:s=12              Alpha 21264-style tournament (PAs | GAg)
//	loopgshare:i=12,l=8     gshare with a loop-termination side predictor
//	taken | not-taken | btfn  static predictors
package zoo

import (
	"fmt"
	"strconv"
	"strings"

	"bimode/internal/baselines"
	"bimode/internal/core"
	"bimode/internal/predictor"
)

// params holds parsed key=value options with presence tracking so unknown
// and missing keys can be reported precisely.
type params struct {
	spec string
	vals map[string]int
	used map[string]bool
}

func parseParams(spec, opts string) (*params, error) {
	p := &params{spec: spec, vals: map[string]int{}, used: map[string]bool{}}
	if opts == "" {
		return p, nil
	}
	for _, kv := range strings.Split(opts, ",") {
		key, val, found := strings.Cut(kv, "=")
		if !found {
			return nil, fmt.Errorf("zoo: %q: option %q is not key=value", spec, kv)
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return nil, fmt.Errorf("zoo: %q: option %q: %v", spec, kv, err)
		}
		if _, dup := p.vals[key]; dup {
			return nil, fmt.Errorf("zoo: %q: duplicate option %q", spec, key)
		}
		p.vals[key] = n
	}
	return p, nil
}

// get returns a required parameter.
func (p *params) get(key string) (int, error) {
	v, ok := p.vals[key]
	if !ok {
		return 0, fmt.Errorf("zoo: %q: missing required option %q", p.spec, key)
	}
	p.used[key] = true
	return v, nil
}

// getDefault returns an optional parameter.
func (p *params) getDefault(key string, def int) int {
	v, ok := p.vals[key]
	if !ok {
		return def
	}
	p.used[key] = true
	return v
}

// leftover reports the first unconsumed option, if any.
func (p *params) leftover() error {
	for k := range p.vals {
		if !p.used[k] {
			return fmt.Errorf("zoo: %q: unknown option %q", p.spec, k)
		}
	}
	return nil
}

// New builds a predictor from a spec string. Construction panics from
// invalid widths are converted to errors.
func New(spec string) (p predictor.Predictor, err error) {
	defer func() {
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("zoo: %q: %v", spec, r)
		}
	}()

	name, opts, _ := strings.Cut(spec, ":")
	pr, perr := parseParams(spec, opts)
	if perr != nil {
		return nil, perr
	}

	switch name {
	case "taken", "not-taken", "btfn":
		p = baselines.NewStatic(name)
	case "smith":
		a, err := pr.get("a")
		if err != nil {
			return nil, err
		}
		p = baselines.NewSmith(a)
	case "gshare":
		i, err := pr.get("i")
		if err != nil {
			return nil, err
		}
		p = baselines.NewGshare(i, pr.getDefault("h", i))
	case "gselect":
		a, err := pr.get("a")
		if err != nil {
			return nil, err
		}
		h, err := pr.get("h")
		if err != nil {
			return nil, err
		}
		p = baselines.NewGselect(a, h)
	case "gag":
		h, err := pr.get("h")
		if err != nil {
			return nil, err
		}
		p = baselines.NewGAg(h)
	case "gas":
		h, err := pr.get("h")
		if err != nil {
			return nil, err
		}
		s, err := pr.get("s")
		if err != nil {
			return nil, err
		}
		p = baselines.NewGAs(h, s)
	case "pag":
		b, err := pr.get("b")
		if err != nil {
			return nil, err
		}
		h, err := pr.get("h")
		if err != nil {
			return nil, err
		}
		p = baselines.NewPAg(b, h)
	case "pas":
		b, err := pr.get("b")
		if err != nil {
			return nil, err
		}
		h, err := pr.get("h")
		if err != nil {
			return nil, err
		}
		s, err := pr.get("s")
		if err != nil {
			return nil, err
		}
		p = baselines.NewPAs(b, h, s)
	case "bimode":
		b, err := pr.get("b")
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			ChoiceBits:  pr.getDefault("c", b),
			BankBits:    b,
			HistoryBits: pr.getDefault("h", b),
		}
		cfg.FullChoiceUpdate = pr.getDefault("fullchoice", 0) != 0
		cfg.UpdateBothBanks = pr.getDefault("bothbanks", 0) != 0
		bm, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		p = bm
	case "trimode":
		b, err := pr.get("b")
		if err != nil {
			return nil, err
		}
		cfg := core.Config{
			ChoiceBits:  pr.getDefault("c", b),
			BankBits:    b,
			HistoryBits: pr.getDefault("h", b),
		}
		tm, err := core.NewTriMode(cfg)
		if err != nil {
			return nil, err
		}
		p = tm
	case "filter":
		i, err := pr.get("i")
		if err != nil {
			return nil, err
		}
		p = baselines.NewFilter(i, pr.getDefault("h", i), pr.getDefault("f", i-2), uint8(pr.getDefault("m", 32)))
	case "agree":
		i, err := pr.get("i")
		if err != nil {
			return nil, err
		}
		h := pr.getDefault("h", i)
		p = baselines.NewAgree(i, h, pr.getDefault("b", i))
	case "gskew":
		b, err := pr.get("b")
		if err != nil {
			return nil, err
		}
		p = baselines.NewGskew(b, pr.getDefault("h", b), pr.getDefault("p", 0) != 0)
	case "alpha":
		s, err := pr.get("s")
		if err != nil {
			return nil, err
		}
		p = baselines.NewAlpha21264Style(s)
	case "loopgshare":
		i, err := pr.get("i")
		if err != nil {
			return nil, err
		}
		p = baselines.NewWithLoopOverride(
			baselines.NewGshare(i, pr.getDefault("h", i)), pr.getDefault("l", i-4))
	case "yags":
		c, err := pr.get("c")
		if err != nil {
			return nil, err
		}
		e, err := pr.get("e")
		if err != nil {
			return nil, err
		}
		p = baselines.NewYAGS(c, e, pr.getDefault("h", e), pr.getDefault("t", 6))
	default:
		return nil, fmt.Errorf("zoo: unknown predictor %q (see package zoo docs for the spec grammar)", name)
	}
	if err := pr.leftover(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustNew is New that panics on error; for specs fixed at compile time.
func MustNew(spec string) predictor.Predictor {
	p, err := New(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// Known lists one example spec per predictor family, for help text.
func Known() []string {
	return []string{
		"taken", "not-taken", "btfn",
		"smith:a=12",
		"gshare:i=12,h=12", "gshare:i=12,h=8",
		"gselect:a=6,h=6",
		"gag:h=12", "gas:h=10,s=2", "pag:b=10,h=10", "pas:b=10,h=8,s=2",
		"bimode:b=11", "bimode:c=10,b=11,h=9",
		"trimode:b=10",
		"filter:i=12,h=12,f=10,m=32",
		"agree:i=12,h=12,b=10",
		"gskew:b=10,h=10", "gskew:b=10,h=10,p=1",
		"yags:c=11,e=10,h=10,t=6",
		"alpha:s=12",
		"loopgshare:i=12,l=8",
	}
}
