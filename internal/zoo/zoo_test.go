package zoo

import (
	"strings"
	"testing"

	"bimode/internal/predictor"
)

func TestAllKnownSpecsBuild(t *testing.T) {
	for _, spec := range Known() {
		p, err := New(spec)
		if err != nil {
			t.Errorf("spec %q: %v", spec, err)
			continue
		}
		// Exercise the predictor lightly.
		pc := uint64(0x1230)
		for i := 0; i < 10; i++ {
			p.Predict(pc)
			p.Update(pc, i%3 == 0)
		}
		p.Reset()
		if p.CostBits() < 0 {
			t.Errorf("spec %q: negative cost", spec)
		}
	}
}

func TestSpecDefaults(t *testing.T) {
	g, err := New("gshare:i=10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.Name(), "1PHT") {
		t.Fatalf("gshare history should default to the index width: %s", g.Name())
	}
	b, err := New("bimode:b=9")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "bi-mode(9c,9b,9h)" {
		t.Fatalf("bimode defaults wrong: %s", b.Name())
	}
}

func TestSpecAblationFlags(t *testing.T) {
	b, err := New("bimode:b=8,fullchoice=1,bothbanks=1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.Name(), "fullchoice") || !strings.Contains(b.Name(), "bothbanks") {
		t.Fatalf("ablation flags not honored: %s", b.Name())
	}
}

func TestSpecErrors(t *testing.T) {
	bad := []string{
		"",                   // unknown empty name
		"oracle",             // unknown predictor
		"smith",              // missing a
		"smith:a",            // not key=value
		"smith:a=x",          // non-integer
		"smith:a=4,a=5",      // duplicate
		"smith:a=4,z=1",      // unknown option
		"gshare:i=4,h=9",     // h > i
		"gshare:i=99",        // width out of range
		"bimode:b=0",         // bank width invalid
		"gselect:a=5",        // missing h
		"pas:b=4,h=4",        // missing s
		"yags:c=4",           // missing e
		"gskew:b=1",          // bank too small
		"agree:i=4,h=4,b=99", // bias width invalid
		"bimode:b=8,c=40",    // choice width invalid
	}
	for _, spec := range bad {
		if _, err := New(spec); err == nil {
			t.Errorf("spec %q should fail", spec)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNew must panic on bad spec")
		}
	}()
	MustNew("nonsense")
}

func TestStaticSpecs(t *testing.T) {
	for _, spec := range []string{"taken", "not-taken", "btfn"} {
		p, err := New(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		var _ predictor.Predictor = p
	}
}

func TestGeometryDeclaredForEveryKnownSpec(t *testing.T) {
	seen := map[string]bool{}
	for _, spec := range Known() {
		g, err := Describe(spec)
		if err != nil {
			t.Errorf("spec %q: no declared geometry: %v", spec, err)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("spec %q: %v", spec, err)
		}
		fam, _, _ := strings.Cut(spec, ":")
		if g.Family != fam {
			t.Errorf("spec %q: geometry names family %q", spec, g.Family)
		}
		seen[fam] = true
	}
	// The registry check: every registered family is covered by the
	// example sweep above, so none can ship without valid geometry.
	for _, fam := range Families() {
		if !seen[fam] {
			t.Errorf("family %q registered without a geometry-checked example", fam)
		}
	}
}

func TestGeometryValues(t *testing.T) {
	cases := []struct {
		spec string
		want Geometry
	}{
		{"gshare:i=12,h=8", Geometry{Family: "gshare", HistoryBits: 8, HistoryScope: ScopeGlobal,
			PCIndexBits: 12, TableEntries: 1 << 12, IndexHash: HashXor}},
		{"bimode:c=10,b=11,h=9", Geometry{Family: "bimode", HistoryBits: 9, HistoryScope: ScopeGlobal,
			PCIndexBits: 11, TableEntries: 1 << 11, IndexHash: HashXor, HasChoice: true}},
		{"gselect:a=6,h=6", Geometry{Family: "gselect", HistoryBits: 6, HistoryScope: ScopeGlobal,
			PCIndexBits: 6, TableEntries: 1 << 12, IndexHash: HashConcat}},
		{"pas:b=10,h=8,s=2", Geometry{Family: "pas", HistoryBits: 8, PerAddrHistoryBits: 8,
			HistoryScope: ScopePerAddr, PCIndexBits: 2, TableEntries: 1 << 10, IndexHash: HashConcat}},
		{"gskew:b=10,h=10", Geometry{Family: "gskew", HistoryBits: 10, HistoryScope: ScopeGlobal,
			PCIndexBits: 20, TableEntries: 3 << 10, IndexHash: HashSkew}},
		{"alpha:s=12", Geometry{Family: "alpha", HistoryBits: 12, PerAddrHistoryBits: 10,
			HistoryScope: ScopeHybrid, PCIndexBits: 2, TableEntries: 1 << 12, IndexHash: HashConcat, HasChoice: true}},
		{"smith:a=12", Geometry{Family: "smith", HistoryScope: ScopeNone,
			PCIndexBits: 12, TableEntries: 1 << 12, IndexHash: HashPC}},
		{"taken", Geometry{Family: "taken", HistoryScope: ScopeNone, IndexHash: HashNone}},
	}
	for _, c := range cases {
		got, err := Describe(c.spec)
		if err != nil {
			t.Errorf("Describe(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("Describe(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestGeometryErrors(t *testing.T) {
	for _, spec := range []string{"gshare", "nosuch:a=1", "gshare:i=twelve"} {
		if _, err := Describe(spec); err == nil {
			t.Errorf("Describe(%q) succeeded; want error", spec)
		}
	}
}
