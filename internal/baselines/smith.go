package baselines

import (
	"fmt"

	"bimode/internal/counter"
	"bimode/internal/predictor"
	"bimode/internal/trace"
)

// Smith is the classic bimodal predictor [Smith81]: a table of two-bit
// saturating counters indexed by low branch-address bits. It is both a
// baseline in its own right and the building block the paper's choice
// predictor reuses.
type Smith struct {
	table   *counter.Table
	idxMask uint64
	bits    int
}

// NewSmith returns a Smith predictor with 2^indexBits two-bit counters
// initialized to weakly taken (the paper's initialization for all
// PC-indexed tables, footnote 2).
func NewSmith(indexBits int) *Smith {
	if indexBits < 0 || indexBits > 28 {
		panic(fmt.Sprintf("baselines: smith index width %d out of range [0,28]", indexBits))
	}
	return &Smith{
		table:   counter.NewTwoBit(1<<uint(indexBits), counter.WeakTaken),
		idxMask: 1<<uint(indexBits) - 1,
		bits:    indexBits,
	}
}

// Name implements predictor.Predictor.
func (s *Smith) Name() string { return fmt.Sprintf("smith(%da)", s.bits) }

//bimode:hotpath
func (s *Smith) index(pc uint64) int { return int((pc >> 2) & s.idxMask) }

// Predict implements predictor.Predictor.
func (s *Smith) Predict(pc uint64) bool { return s.table.Taken(s.index(pc)) }

// Update implements predictor.Predictor.
func (s *Smith) Update(pc uint64, taken bool) { s.table.Update(s.index(pc), taken) }

// Step implements predictor.Stepper: Predict and Update fused so the
// table index is computed once per branch.
//
//bimode:hotpath
func (s *Smith) Step(pc uint64, taken bool) bool {
	i := s.index(pc)
	pred := s.table.Taken(i)
	s.table.Update(i, taken)
	return pred
}

// RunBatch implements predictor.BatchRunner: the whole-trace loop over
// the raw counter array, branch-free per record (see counter.SatNext).
// The table is two-bit by construction (NewSmith), so the prediction is
// the counter's high bit and the LUT matches counter.Table.Update exactly.
//
//bimode:hotpath
func (s *Smith) RunBatch(recs []trace.Record) int {
	tab := s.table.Raw()
	if len(tab) == 0 {
		return 0 // unreachable; lets the compiler drop bounds checks
	}
	mask := uint64(len(tab) - 1)
	miss := 0
	for i := range recs {
		r := &recs[i]
		var tk uint8
		if r.Taken {
			tk = 1
		}
		idx := (r.PC >> 2) & mask
		v := tab[idx]
		miss += int(v.TakenBit() ^ tk)
		tab[idx] = counter.SatNext(v, tk)
	}
	return miss
}

// Reset implements predictor.Predictor.
func (s *Smith) Reset() { s.table.Reset() }

// CostBits implements predictor.Predictor.
func (s *Smith) CostBits() int { return s.table.CostBits() }

// CounterID implements predictor.Indexed.
func (s *Smith) CounterID(pc uint64) int { return s.index(pc) }

// NumCounters implements predictor.Indexed.
func (s *Smith) NumCounters() int { return s.table.Len() }

// ProbeLookup implements predictor.Probe: one PC-indexed table, no banks,
// no steering structure.
func (s *Smith) ProbeLookup(pc uint64) predictor.Lookup {
	return predictor.Lookup{CounterID: s.index(pc), Bank: -1}
}
