package baselines

import (
	"fmt"

	"bimode/internal/counter"
)

// Smith is the classic bimodal predictor [Smith81]: a table of two-bit
// saturating counters indexed by low branch-address bits. It is both a
// baseline in its own right and the building block the paper's choice
// predictor reuses.
type Smith struct {
	table   *counter.Table
	idxMask uint64
	bits    int
}

// NewSmith returns a Smith predictor with 2^indexBits two-bit counters
// initialized to weakly taken (the paper's initialization for all
// PC-indexed tables, footnote 2).
func NewSmith(indexBits int) *Smith {
	if indexBits < 0 || indexBits > 28 {
		panic(fmt.Sprintf("baselines: smith index width %d out of range [0,28]", indexBits))
	}
	return &Smith{
		table:   counter.NewTwoBit(1<<uint(indexBits), counter.WeakTaken),
		idxMask: 1<<uint(indexBits) - 1,
		bits:    indexBits,
	}
}

// Name implements predictor.Predictor.
func (s *Smith) Name() string { return fmt.Sprintf("smith(%da)", s.bits) }

func (s *Smith) index(pc uint64) int { return int((pc >> 2) & s.idxMask) }

// Predict implements predictor.Predictor.
func (s *Smith) Predict(pc uint64) bool { return s.table.Taken(s.index(pc)) }

// Update implements predictor.Predictor.
func (s *Smith) Update(pc uint64, taken bool) { s.table.Update(s.index(pc), taken) }

// Reset implements predictor.Predictor.
func (s *Smith) Reset() { s.table.Reset() }

// CostBits implements predictor.Predictor.
func (s *Smith) CostBits() int { return s.table.CostBits() }

// CounterID implements predictor.Indexed.
func (s *Smith) CounterID(pc uint64) int { return s.index(pc) }

// NumCounters implements predictor.Indexed.
func (s *Smith) NumCounters() int { return s.table.Len() }
