package baselines

import (
	"testing"

	"bimode/internal/predictor"
)

func TestTournamentSelectsBetterComponent(t *testing.T) {
	// Component a: always predicts taken. Component b: always predicts
	// not-taken. On an always-not-taken branch, the meta counter must
	// learn to trust b.
	a := NewStatic(AlwaysTaken)
	b := NewStatic(AlwaysNotTaken)
	tour := NewTournament(6, a, b)
	pc := uint64(0x100)
	for i := 0; i < 10; i++ {
		tour.Predict(pc)
		tour.Update(pc, false)
	}
	if tour.Predict(pc) {
		t.Fatalf("tournament must have switched to the not-taken component")
	}
	// And back again on a taken branch at a different meta entry.
	pc2 := uint64(0x900)
	for i := 0; i < 10; i++ {
		tour.Update(pc2, true)
	}
	if !tour.Predict(pc2) {
		t.Fatalf("tournament must trust the taken component for a taken branch")
	}
}

func TestTournamentTrainsBothComponents(t *testing.T) {
	local := NewSmith(6)
	global := NewGAg(6)
	tour := NewTournament(6, local, global)
	pc := uint64(0x200)
	for i := 0; i < 20; i++ {
		tour.Update(pc, false)
	}
	if local.Predict(pc) || global.Predict(pc) {
		t.Fatalf("both components must train regardless of selection")
	}
}

func TestTournamentPerBranchSelection(t *testing.T) {
	// A branch needing history (alternating) and a branch where the
	// smith component suffices: the tournament should get both right.
	tour := NewTournament(8, NewSmith(8), NewGAg(8))
	alt, biased := uint64(0x300), uint64(0x340)
	last := false
	for i := 0; i < 400; i++ {
		last = !last
		tour.Predict(alt)
		tour.Update(alt, last)
		tour.Predict(biased)
		tour.Update(biased, true)
	}
	miss := 0
	for i := 0; i < 100; i++ {
		last = !last
		if tour.Predict(alt) != last {
			miss++
		}
		tour.Update(alt, last)
		if !tour.Predict(biased) {
			miss++
		}
		tour.Update(biased, true)
	}
	if miss > 2 {
		t.Fatalf("tournament should handle both branches, missed %d/200", miss)
	}
}

func TestTournamentCostResetName(t *testing.T) {
	tour := NewTournament(6, NewSmith(6), NewGAg(6))
	want := 2*64 + NewSmith(6).CostBits() + NewGAg(6).CostBits()
	if tour.CostBits() != want {
		t.Fatalf("cost = %d, want %d", tour.CostBits(), want)
	}
	pc := uint64(0x80)
	for i := 0; i < 20; i++ {
		tour.Update(pc, false)
	}
	tour.Reset()
	if !tour.Predict(pc) {
		t.Fatalf("reset must restore weakly-taken components")
	}
	if tour.Name() == "" {
		t.Fatalf("name empty")
	}
}

func TestAlpha21264Style(t *testing.T) {
	a := NewAlpha21264Style(10)
	var _ predictor.Predictor = a
	pc := uint64(0x440)
	last := false
	for i := 0; i < 400; i++ {
		last = !last
		a.Predict(pc)
		a.Update(pc, last)
	}
	miss := 0
	for i := 0; i < 100; i++ {
		last = !last
		if a.Predict(pc) != last {
			miss++
		}
		a.Update(pc, last)
	}
	if miss > 2 {
		t.Fatalf("alpha-style predictor must learn alternation, missed %d", miss)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("out-of-range scale must panic")
			}
		}()
		NewAlpha21264Style(2)
	}()
}

func TestTournamentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("bad meta width must panic")
		}
	}()
	NewTournament(-1, NewSmith(4), NewSmith(4))
}
