package baselines

import "testing"

// runLoopTrips feeds n activations of a fixed-trip loop (trip-1 takens
// then one not-taken) through p, returning mispredictions over the last
// scored activations.
func runLoopTrips(p interface {
	Predict(uint64) bool
	Update(uint64, bool)
}, pc uint64, trip, activations, scoreAfter int) int {
	miss := 0
	for a := 0; a < activations; a++ {
		for i := 0; i < trip; i++ {
			want := i < trip-1
			if p.Predict(pc) != want && a >= scoreAfter {
				miss++
			}
			p.Update(pc, want)
		}
	}
	return miss
}

func TestLoopPredictorLearnsExactTrip(t *testing.T) {
	lp := NewLoopPredictor(6)
	pc := uint64(0x100)
	miss := runLoopTrips(lp, pc, 7, 20, 8)
	if miss != 0 {
		t.Fatalf("loop predictor must nail a fixed trip count after warm-up, missed %d", miss)
	}
	if !lp.Confident(pc) {
		t.Fatalf("confidence must be established")
	}
}

func TestLoopPredictorRelearnsChangedTrip(t *testing.T) {
	lp := NewLoopPredictor(6)
	pc := uint64(0x140)
	runLoopTrips(lp, pc, 5, 10, 10)
	// Trip changes: confidence must drop, then recover on the new trip.
	runLoopTrips(lp, pc, 9, 2, 2)
	if lp.Confident(pc) {
		t.Fatalf("confidence must reset after a trip change")
	}
	if miss := runLoopTrips(lp, pc, 9, 10, 6); miss != 0 {
		t.Fatalf("loop predictor must relearn the new trip, missed %d", miss)
	}
}

func TestLoopPredictorIgnoresNonLoops(t *testing.T) {
	lp := NewLoopPredictor(6)
	pc := uint64(0x180)
	// An alternating branch never repeats a trip count consistently at
	// trips > 1 (trip is always 2 here actually: T,N,T,N = trip 2
	// repeated!). Use a pattern with varying run lengths instead.
	runs := []int{3, 5, 2, 7, 4, 6, 3, 5, 2, 8}
	for _, r := range runs {
		for i := 0; i < r; i++ {
			lp.Predict(pc)
			lp.Update(pc, i < r-1)
		}
	}
	if lp.Confident(pc) {
		t.Fatalf("irregular trips must not build confidence")
	}
}

func TestLoopOverrideImprovesGshareOnLongLoops(t *testing.T) {
	// A fixed 40-trip loop: gshare's 8-bit history cannot see the exit
	// coming (window is all taken), so it mispredicts every exit; the
	// loop predictor eliminates those.
	plain := NewGshare(8, 8)
	wrapped := NewWithLoopOverride(NewGshare(8, 8), 6)
	pc := uint64(0x1C0)
	missPlain := runLoopTrips(plain, pc, 40, 30, 10)
	missWrapped := runLoopTrips(wrapped, pc, 40, 30, 10)
	if missPlain < 15 {
		t.Fatalf("setup broken: plain gshare should miss most exits, missed %d", missPlain)
	}
	if missWrapped != 0 {
		t.Fatalf("loop override must remove exit mispredictions, missed %d", missWrapped)
	}
}

func TestLoopPredictorTagging(t *testing.T) {
	lp := NewLoopPredictor(2) // 4 entries: force index conflicts
	a := uint64(0x100)
	b := a + 0x20 // same index (low bits beyond the 2-bit index), different tag
	runLoopTrips(lp, a, 6, 10, 10)
	if lp.Confident(b) {
		t.Fatalf("tag mismatch must not report confidence for another branch")
	}
}

func TestLoopPredictorResetAndCost(t *testing.T) {
	lp := NewLoopPredictor(5)
	pc := uint64(0x80)
	runLoopTrips(lp, pc, 4, 10, 10)
	lp.Reset()
	if lp.Confident(pc) {
		t.Fatalf("reset must clear entries")
	}
	if lp.CostBits() != 32*(8+1+14+14+8) {
		t.Fatalf("cost = %d", lp.CostBits())
	}
	w := NewWithLoopOverride(NewSmith(5), 5)
	if w.CostBits() != NewSmith(5).CostBits()+lp.CostBits() {
		t.Fatalf("override cost must sum components")
	}
	w.Reset()
	if w.Name() == "" {
		t.Fatalf("name empty")
	}
}

func TestLoopPredictorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("bad width must panic")
		}
	}()
	NewLoopPredictor(-1)
}
