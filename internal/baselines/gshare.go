package baselines

import (
	"fmt"

	"bimode/internal/counter"
	"bimode/internal/history"
	"bimode/internal/predictor"
	"bimode/internal/trace"
)

// Gshare is McFarling's gshare predictor [McFarling93] in the generalized
// parameterization the paper sweeps (Section 3.1):
//
// The second level holds 2^index two-bit counters. The low `hist` bits of
// the index come from XOR-ing the global history with low branch-address
// bits; the remaining index-hist bits come from the branch address alone
// and therefore partition the second level into 2^(index-hist) pattern
// history tables (PHTs). hist == index is the familiar single-PHT gshare;
// hist == 0 degenerates to a Smith predictor. The paper's "gshare.best" is
// the hist value that minimizes the suite-average misprediction at each
// size; sim.FindBestGshare performs that search.
type Gshare struct {
	table     *counter.Table
	ghr       *history.Global
	indexBits int
	histBits  int
	idxMask   uint64
}

// NewGshare returns a gshare predictor with 2^indexBits counters and a
// histBits-wide global history register. histBits must not exceed
// indexBits (the paper's m <= n constraint).
func NewGshare(indexBits, histBits int) *Gshare {
	if indexBits < 0 || indexBits > 28 {
		panic(fmt.Sprintf("baselines: gshare index width %d out of range [0,28]", indexBits))
	}
	if histBits < 0 || histBits > indexBits {
		panic(fmt.Sprintf("baselines: gshare history width %d out of range [0,%d]", histBits, indexBits))
	}
	return &Gshare{
		table:     counter.NewTwoBit(1<<uint(indexBits), counter.WeakTaken),
		ghr:       history.NewGlobal(histBits),
		indexBits: indexBits,
		histBits:  histBits,
		idxMask:   1<<uint(indexBits) - 1,
	}
}

// Name implements predictor.Predictor.
func (g *Gshare) Name() string {
	if g.histBits == g.indexBits {
		return fmt.Sprintf("gshare.1PHT(%d)", g.indexBits)
	}
	return fmt.Sprintf("gshare(%di,%dh)", g.indexBits, g.histBits)
}

// HistoryBits returns the global history length in use.
func (g *Gshare) HistoryBits() int { return g.histBits }

// IndexBits returns log2 of the second-level table size.
func (g *Gshare) IndexBits() int { return g.indexBits }

// NumPHTs returns the number of pattern history tables the address bits
// partition the second level into.
func (g *Gshare) NumPHTs() int { return 1 << uint(g.indexBits-g.histBits) }

//bimode:hotpath
func (g *Gshare) index(pc uint64) int {
	return int(((pc >> 2) ^ g.ghr.Value()) & g.idxMask)
}

// Predict implements predictor.Predictor.
func (g *Gshare) Predict(pc uint64) bool { return g.table.Taken(g.index(pc)) }

// Update implements predictor.Predictor.
func (g *Gshare) Update(pc uint64, taken bool) {
	g.table.Update(g.index(pc), taken)
	g.ghr.Push(taken)
}

// Step implements predictor.Stepper: Predict and Update fused so the
// XOR index is computed once per branch.
//
//bimode:hotpath
func (g *Gshare) Step(pc uint64, taken bool) bool {
	i := g.index(pc)
	pred := g.table.Taken(i)
	g.table.Update(i, taken)
	g.ghr.Push(taken)
	return pred
}

// RunBatch implements predictor.BatchRunner: the whole-trace loop with
// the counter array and history register in locals, branch-free per
// record — the counter step goes through counter.SatNext because its
// condition is trace data the host CPU cannot predict. The table is
// two-bit by construction (NewGshare), so the prediction is the counter's
// high bit and the LUT matches counter.Table.Update exactly.
//
//bimode:hotpath
func (g *Gshare) RunBatch(recs []trace.Record) int {
	tab := g.table.Raw()
	if len(tab) == 0 {
		return 0 // unreachable; lets the compiler drop bounds checks
	}
	idxMask := uint64(len(tab) - 1)
	h := g.ghr.Value()
	var hMask uint64
	if n := g.ghr.Bits(); n > 0 {
		hMask = 1<<uint(n) - 1
	}
	miss := 0
	for i := range recs {
		r := &recs[i]
		var tk uint8
		if r.Taken {
			tk = 1
		}
		idx := ((r.PC >> 2) ^ h) & idxMask
		v := tab[idx]
		miss += int(v.TakenBit() ^ tk)
		tab[idx] = counter.SatNext(v, tk)
		h = (h<<1 | uint64(tk)) & hMask
	}
	g.ghr.Set(h)
	return miss
}

// Reset implements predictor.Predictor.
func (g *Gshare) Reset() {
	g.table.Reset()
	g.ghr.Reset()
}

// CostBits implements predictor.Predictor.
func (g *Gshare) CostBits() int { return g.table.CostBits() }

// CounterID implements predictor.Indexed.
func (g *Gshare) CounterID(pc uint64) int { return g.index(pc) }

// NumCounters implements predictor.Indexed.
func (g *Gshare) NumCounters() int { return g.table.Len() }

// ProbeLookup implements predictor.Probe. The bank is the PHT the address
// bits select (always 0 for the single-PHT gshare); gshare has no steering
// structure, so no choice vote is reported.
func (g *Gshare) ProbeLookup(pc uint64) predictor.Lookup {
	i := g.index(pc)
	return predictor.Lookup{CounterID: i, Bank: i >> uint(g.histBits)}
}

// HistoryValue implements predictor.SpeculativeHistory.
func (g *Gshare) HistoryValue() uint64 { return g.ghr.Value() }

// SetHistory implements predictor.SpeculativeHistory.
func (g *Gshare) SetHistory(v uint64) { g.ghr.Set(v) }

// PushHistory implements predictor.SpeculativeHistory.
func (g *Gshare) PushHistory(taken bool) { g.ghr.Push(taken) }

// UpdateCounters implements predictor.SpeculativeHistory: train the
// counter the supplied history snapshot indexes, leaving the register
// untouched.
func (g *Gshare) UpdateCounters(pc uint64, history uint64, taken bool) {
	g.table.Update(int(((pc>>2)^history)&g.idxMask), taken)
}

// Gselect is McFarling's gselect predictor: the index concatenates global
// history bits with branch-address bits instead of XOR-ing them. It is
// included for the two-level design-space studies in the analysis tooling.
type Gselect struct {
	table    *counter.Table
	ghr      *history.Global
	addrBits int
	histBits int
	addrMask uint64
}

// NewGselect returns a gselect predictor whose index concatenates histBits
// of global history with addrBits of branch address (2^(addrBits+histBits)
// counters).
func NewGselect(addrBits, histBits int) *Gselect {
	if addrBits < 0 || histBits < 0 || addrBits+histBits > 28 {
		panic(fmt.Sprintf("baselines: gselect widths (%d,%d) invalid", addrBits, histBits))
	}
	return &Gselect{
		table:    counter.NewTwoBit(1<<uint(addrBits+histBits), counter.WeakTaken),
		ghr:      history.NewGlobal(histBits),
		addrBits: addrBits,
		histBits: histBits,
		addrMask: 1<<uint(addrBits) - 1,
	}
}

// Name implements predictor.Predictor.
func (g *Gselect) Name() string { return fmt.Sprintf("gselect(%da,%dh)", g.addrBits, g.histBits) }

//bimode:hotpath
func (g *Gselect) index(pc uint64) int {
	return int(((pc>>2)&g.addrMask)<<uint(g.histBits) | g.ghr.Value())
}

// Predict implements predictor.Predictor.
func (g *Gselect) Predict(pc uint64) bool { return g.table.Taken(g.index(pc)) }

// Update implements predictor.Predictor.
func (g *Gselect) Update(pc uint64, taken bool) {
	g.table.Update(g.index(pc), taken)
	g.ghr.Push(taken)
}

// Step implements predictor.Stepper: Predict and Update fused so the
// concatenated index is computed once per branch.
//
//bimode:hotpath
func (g *Gselect) Step(pc uint64, taken bool) bool {
	i := g.index(pc)
	pred := g.table.Taken(i)
	g.table.Update(i, taken)
	g.ghr.Push(taken)
	return pred
}

// Reset implements predictor.Predictor.
func (g *Gselect) Reset() {
	g.table.Reset()
	g.ghr.Reset()
}

// CostBits implements predictor.Predictor.
func (g *Gselect) CostBits() int { return g.table.CostBits() }

// CounterID implements predictor.Indexed.
func (g *Gselect) CounterID(pc uint64) int { return g.index(pc) }

// NumCounters implements predictor.Indexed.
func (g *Gselect) NumCounters() int { return g.table.Len() }

// ProbeLookup implements predictor.Probe. The bank is the per-address PHT
// the concatenated index selects (the address half of the index).
func (g *Gselect) ProbeLookup(pc uint64) predictor.Lookup {
	return predictor.Lookup{
		CounterID: g.index(pc),
		Bank:      int((pc >> 2) & g.addrMask),
	}
}
