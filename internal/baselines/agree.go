package baselines

import (
	"fmt"

	"bimode/internal/counter"
	"bimode/internal/history"
	"bimode/internal/predictor"
)

// Agree implements the agree predictor [Sprangle97], the de-aliasing rival
// the paper cites alongside bi-mode. Each static branch carries a biasing
// bit (here set to the branch's first observed outcome, the scheme the
// ISCA'97 paper evaluates); the gshare-indexed PHT counters then predict
// whether the branch will *agree* with its bias bit rather than whether it
// will be taken. Two oppositely biased branches that alias onto the same
// PHT counter now push it in the same ("agree") direction, converting
// destructive interference into neutral interference.
type Agree struct {
	pht      *counter.Table
	bias     []uint8 // 0 = unset, 1 = bias not-taken, 2 = bias taken
	ghr      *history.Global
	idxMask  uint64
	biasMask uint64
	indexBit int
	biasBit  int
	histBits int
}

// NewAgree returns an agree predictor with 2^indexBits PHT counters,
// histBits of global history XOR-ed into the index, and 2^biasBits
// bias-bit entries.
func NewAgree(indexBits, histBits, biasBits int) *Agree {
	if indexBits < 0 || indexBits > 28 || histBits < 0 || histBits > indexBits {
		panic(fmt.Sprintf("baselines: agree widths (%di,%dh) invalid", indexBits, histBits))
	}
	if biasBits < 0 || biasBits > 28 {
		panic(fmt.Sprintf("baselines: agree bias width %d invalid", biasBits))
	}
	return &Agree{
		// Counters predict "agree"; initialize to weakly agree.
		pht:      counter.NewTwoBit(1<<uint(indexBits), counter.WeakTaken),
		bias:     make([]uint8, 1<<uint(biasBits)),
		ghr:      history.NewGlobal(histBits),
		idxMask:  1<<uint(indexBits) - 1,
		biasMask: 1<<uint(biasBits) - 1,
		indexBit: indexBits,
		biasBit:  biasBits,
		histBits: histBits,
	}
}

// Name implements predictor.Predictor.
func (a *Agree) Name() string { return fmt.Sprintf("agree(%di,%dh)", a.indexBit, a.histBits) }

func (a *Agree) index(pc uint64) int   { return int(((pc >> 2) ^ a.ghr.Value()) & a.idxMask) }
func (a *Agree) biasIdx(pc uint64) int { return int((pc >> 2) & a.biasMask) }

// biasTaken returns the branch's bias direction; before the first update a
// branch is presumed biased taken (the common case for loops).
func (a *Agree) biasTaken(pc uint64) bool { return a.bias[a.biasIdx(pc)] != 1 }

// Predict implements predictor.Predictor.
func (a *Agree) Predict(pc uint64) bool {
	agree := a.pht.Taken(a.index(pc))
	return agree == a.biasTaken(pc)
}

// Update implements predictor.Predictor.
func (a *Agree) Update(pc uint64, taken bool) {
	bi := a.biasIdx(pc)
	if a.bias[bi] == 0 {
		// First encounter: latch the outcome as the bias bit.
		if taken {
			a.bias[bi] = 2
		} else {
			a.bias[bi] = 1
		}
	}
	agree := taken == a.biasTaken(pc)
	a.pht.Update(a.index(pc), agree)
	a.ghr.Push(taken)
}

// Reset implements predictor.Predictor.
func (a *Agree) Reset() {
	a.pht.Reset()
	for i := range a.bias {
		a.bias[i] = 0
	}
	a.ghr.Reset()
}

// CostBits implements predictor.Predictor: PHT counters plus one bias bit
// per entry (the valid bit is an artifact of the first-outcome latching
// policy and is charged too, as in the original paper's cost discussion).
func (a *Agree) CostBits() int { return a.pht.CostBits() + 2*len(a.bias) }

// CounterID implements predictor.Indexed.
func (a *Agree) CounterID(pc uint64) int { return a.index(pc) }

// NumCounters implements predictor.Indexed.
func (a *Agree) NumCounters() int { return a.pht.Len() }

// ProbeLookup implements predictor.Probe. The bias bit is agree's steering
// structure: ChoiceTaken carries the branch's latched bias direction, the
// vote the PHT's agree/disagree counter is applied against.
func (a *Agree) ProbeLookup(pc uint64) predictor.Lookup {
	return predictor.Lookup{
		CounterID:   a.index(pc),
		Bank:        -1,
		ChoiceTaken: a.biasTaken(pc),
		HasChoice:   true,
	}
}
