package baselines

import (
	"fmt"

	"bimode/internal/predictor"
)

// LoopPredictor is a loop-termination predictor: per branch (tagged,
// set-indexed by PC) it learns a loop's trip count by watching run
// lengths of taken outcomes, and once the same trip count repeats
// (confidence saturates) it predicts the exact exit point. It is used as
// a side predictor: LoopPredictor.Confident reports whether its
// prediction should override a main predictor — the structure later
// industrial designs (Pentium M and onward) adopted, included here as an
// extension that directly attacks the loop-exit mispredictions the
// bi-mode paper's streams contain.
type LoopPredictor struct {
	entries   []loopEntry
	indexBits int
	tagMask   uint64
	idxMask   uint64
}

type loopEntry struct {
	tag        uint16
	valid      bool
	trip       uint16 // learned iterations per activation (taken count + exit)
	current    uint16 // position within the current activation
	confidence uint8  // consecutive activations with the same trip
}

// loopConfident is the confidence needed before overriding.
const loopConfident = 3

// maxTrip bounds learnable trip counts.
const maxTrip = 1 << 14

// NewLoopPredictor returns a loop predictor with 2^indexBits entries and
// 8-bit partial tags.
func NewLoopPredictor(indexBits int) *LoopPredictor {
	if indexBits < 0 || indexBits > 20 {
		panic(fmt.Sprintf("baselines: loop predictor width %d out of range [0,20]", indexBits))
	}
	return &LoopPredictor{
		entries:   make([]loopEntry, 1<<uint(indexBits)),
		indexBits: indexBits,
		tagMask:   0xFF,
		idxMask:   1<<uint(indexBits) - 1,
	}
}

// Name implements predictor.Predictor.
func (l *LoopPredictor) Name() string { return fmt.Sprintf("loop(%de)", l.indexBits) }

func (l *LoopPredictor) index(pc uint64) int { return int((pc >> 2) & l.idxMask) }
func (l *LoopPredictor) tag(pc uint64) uint16 {
	return uint16((pc >> (2 + uint(l.indexBits))) & l.tagMask)
}

// entry returns the branch's entry and whether the tag matches.
func (l *LoopPredictor) entry(pc uint64) (*loopEntry, bool) {
	e := &l.entries[l.index(pc)]
	return e, e.valid && e.tag == l.tag(pc)
}

// Confident reports whether the loop predictor has a trustworthy
// prediction for this branch right now.
func (l *LoopPredictor) Confident(pc uint64) bool {
	e, hit := l.entry(pc)
	return hit && e.confidence >= loopConfident && e.trip > 1
}

// Predict implements predictor.Predictor: taken while inside the learned
// trip, not-taken at the learned exit position. Without a confident
// entry it defaults to taken (the loop prior).
func (l *LoopPredictor) Predict(pc uint64) bool {
	e, hit := l.entry(pc)
	if !hit || e.confidence < loopConfident || e.trip <= 1 {
		return true
	}
	return e.current+1 < e.trip
}

// Update implements predictor.Predictor.
func (l *LoopPredictor) Update(pc uint64, taken bool) {
	e, hit := l.entry(pc)
	if !hit {
		// Allocate on a not-taken outcome (a loop exit is the natural
		// allocation point; mostly-taken streams allocate lazily).
		if !taken {
			*e = loopEntry{tag: l.tag(pc), valid: true, trip: 1}
		}
		return
	}
	if taken {
		if e.current < maxTrip {
			e.current++
		}
		return
	}
	// Exit: the activation ran current+1 slots (current takens + exit).
	observed := e.current + 1
	if observed == e.trip {
		if e.confidence < 255 {
			e.confidence++
		}
	} else {
		e.trip = observed
		e.confidence = 0
	}
	e.current = 0
}

// Reset implements predictor.Predictor.
func (l *LoopPredictor) Reset() {
	for i := range l.entries {
		l.entries[i] = loopEntry{}
	}
}

// CostBits implements predictor.Predictor: per entry an 8-bit tag, a
// valid bit, two 14-bit counts and an 8-bit confidence.
func (l *LoopPredictor) CostBits() int {
	return len(l.entries) * (8 + 1 + 14 + 14 + 8)
}

// WithLoopOverride wraps a main predictor with a loop predictor: when the
// loop side is confident it overrides the main prediction; both always
// train.
type WithLoopOverride struct {
	main predictor.Predictor
	loop *LoopPredictor
}

// NewWithLoopOverride combines main with a 2^loopBits-entry loop
// predictor.
func NewWithLoopOverride(main predictor.Predictor, loopBits int) *WithLoopOverride {
	return &WithLoopOverride{main: main, loop: NewLoopPredictor(loopBits)}
}

// Name implements predictor.Predictor.
func (w *WithLoopOverride) Name() string {
	return fmt.Sprintf("%s+loop(%de)", w.main.Name(), w.loop.indexBits)
}

// Predict implements predictor.Predictor.
func (w *WithLoopOverride) Predict(pc uint64) bool {
	if w.loop.Confident(pc) {
		return w.loop.Predict(pc)
	}
	return w.main.Predict(pc)
}

// Update implements predictor.Predictor.
func (w *WithLoopOverride) Update(pc uint64, taken bool) {
	w.main.Update(pc, taken)
	w.loop.Update(pc, taken)
}

// Reset implements predictor.Predictor.
func (w *WithLoopOverride) Reset() {
	w.main.Reset()
	w.loop.Reset()
}

// CostBits implements predictor.Predictor.
func (w *WithLoopOverride) CostBits() int { return w.main.CostBits() + w.loop.CostBits() }
