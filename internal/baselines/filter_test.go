package baselines

import "testing"

func TestFilterClassifiesBiasedBranch(t *testing.T) {
	f := NewFilter(8, 8, 8, 8)
	pc := uint64(0x100)
	for i := 0; i < 10; i++ {
		f.Predict(pc)
		f.Update(pc, true)
	}
	if !f.filtered(pc) {
		t.Fatalf("a long same-direction run must trip the filter")
	}
	if !f.Predict(pc) {
		t.Fatalf("filtered branch must predict its run direction")
	}
	// A direction change un-filters the branch.
	f.Update(pc, false)
	if f.filtered(pc) {
		t.Fatalf("direction change must reset the filter")
	}
}

func TestFilterKeepsPHTCleanOfBiasedBranches(t *testing.T) {
	// Two branches that collide in the PHT: a strongly taken one and an
	// alternating one. Once the biased branch is filtered, it stops
	// touching the PHT, so the alternating branch's patterns stay intact.
	filt := NewFilter(4, 4, 8, 4)
	gs := NewGshare(4, 4)
	biased := uint64(0x0)
	hard := uint64(0x4)
	missF, missG := 0, 0
	last := false
	for i := 0; i < 800; i++ {
		// Warm-up window excluded from scoring.
		score := i >= 200
		if filt.Predict(biased) != true && score {
			missF++
		}
		filt.Update(biased, true)
		if gs.Predict(biased) != true && score {
			missG++
		}
		gs.Update(biased, true)

		last = !last
		if filt.Predict(hard) != last && score {
			missF++
		}
		filt.Update(hard, last)
		if gs.Predict(hard) != last && score {
			missG++
		}
		gs.Update(hard, last)
	}
	if missF > missG {
		t.Fatalf("filtering should not lose to plain gshare here: filter=%d gshare=%d", missF, missG)
	}
}

func TestFilterCostAndName(t *testing.T) {
	f := NewFilter(10, 10, 8, 32)
	want := 2*1024 + 256*5
	if f.CostBits() != want {
		t.Fatalf("cost = %d, want %d", f.CostBits(), want)
	}
	if f.Name() != "filter(10i,10h,max32)" {
		t.Fatalf("name = %q", f.Name())
	}
}

func TestFilterReset(t *testing.T) {
	f := NewFilter(6, 6, 6, 4)
	pc := uint64(0x40)
	for i := 0; i < 10; i++ {
		f.Update(pc, false)
	}
	f.Reset()
	if f.filtered(pc) {
		t.Fatalf("reset must clear the filter state")
	}
	if !f.Predict(pc) {
		t.Fatalf("reset must restore the weakly-taken PHT")
	}
}

func TestFilterPanics(t *testing.T) {
	cases := []func(){
		func() { NewFilter(-1, 0, 4, 4) },
		func() { NewFilter(8, 9, 4, 4) },
		func() { NewFilter(8, 8, 30, 4) },
		func() { NewFilter(8, 8, 4, 0) },
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d must panic", i)
				}
			}()
			c()
		}()
	}
}
