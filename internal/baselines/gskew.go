package baselines

import (
	"fmt"

	"bimode/internal/counter"
	"bimode/internal/history"
)

// Gskew implements the skewed branch predictor of Michaud, Seznec and
// Uhlig [MichaudSeznecUhlig97], the hardware-hashing de-aliasing scheme
// the paper compares against (Section 2.2: "hardware hashing is useful for
// small low cost systems; for large systems the bi-mode scheme is the best
// cost-effective scheme to date"). Three banks of two-bit counters are
// indexed by three different skewing functions of (address, history); the
// prediction is the majority vote. Two branches that collide in one bank
// almost never collide in the other two, so the vote outvotes the aliased
// bank.
//
// The skewing functions follow the paper's construction from the bijection
// H(y) = (y >> 1) ^ (lsb(y) * polyTap) and its inverse, applied to the two
// halves of the hashed value.
type Gskew struct {
	banks     [3]*counter.Table
	ghr       *history.Global
	bankBits  int
	histBits  int
	partial   bool
	bankMask  uint64
	inputMask uint64
}

// NewGskew returns a gskew predictor with three banks of 2^bankBits
// counters and histBits of global history hashed into the indices. When
// partial is true the enhanced-gskew partial update policy is used: on a
// correct prediction only the agreeing banks are strengthened, and on a
// misprediction all banks are retrained.
func NewGskew(bankBits, histBits int, partial bool) *Gskew {
	if bankBits < 2 || bankBits > 26 {
		panic(fmt.Sprintf("baselines: gskew bank width %d out of range [2,26]", bankBits))
	}
	if histBits < 0 || histBits > history.MaxGlobalBits {
		panic(fmt.Sprintf("baselines: gskew history width %d invalid", histBits))
	}
	g := &Gskew{
		ghr:       history.NewGlobal(histBits),
		bankBits:  bankBits,
		histBits:  histBits,
		partial:   partial,
		bankMask:  1<<uint(bankBits) - 1,
		inputMask: 1<<uint(2*bankBits) - 1,
	}
	for i := range g.banks {
		g.banks[i] = counter.NewTwoBit(1<<uint(bankBits), counter.WeakTaken)
	}
	return g
}

// Name implements predictor.Predictor.
func (g *Gskew) Name() string {
	tag := "gskew"
	if g.partial {
		tag = "e-gskew"
	}
	return fmt.Sprintf("%s(3x%db,%dh)", tag, g.bankBits, g.histBits)
}

// shuffleH is the skewing bijection H over bankBits-wide values: a right
// shift whose incoming most-significant bit is lsb XOR msb of the input.
func (g *Gskew) shuffleH(y uint64) uint64 {
	n := uint(g.bankBits)
	msbOut := (y ^ y>>(n-1)) & 1
	return (y >> 1) | msbOut<<(n-1)
}

// shuffleHInv is the inverse bijection H^-1 (shuffleH(shuffleHInv(y)) ==
// y; asserted by a property test).
func (g *Gskew) shuffleHInv(y uint64) uint64 {
	n := uint(g.bankBits)
	lsbOut := (y>>(n-1) ^ y>>(n-2)) & 1
	return (y<<1 | lsbOut) & g.bankMask
}

// indices computes the three skewed bank indices for the current
// (address, history) pair.
func (g *Gskew) indices(pc uint64) [3]int {
	v := ((pc >> 2) ^ g.ghr.Value()<<uint(g.bankBits/2)) & g.inputMask
	v1 := v & g.bankMask
	v2 := (v >> uint(g.bankBits)) & g.bankMask
	f0 := g.shuffleH(v1) ^ g.shuffleHInv(v2) ^ v2
	f1 := g.shuffleH(v1) ^ g.shuffleHInv(v2) ^ v1
	f2 := g.shuffleHInv(v1) ^ g.shuffleH(v2) ^ v2
	return [3]int{int(f0), int(f1), int(f2)}
}

// Predict implements predictor.Predictor.
func (g *Gskew) Predict(pc uint64) bool {
	idx := g.indices(pc)
	votes := 0
	for b, i := range idx {
		if g.banks[b].Taken(i) {
			votes++
		}
	}
	return votes >= 2
}

// Update implements predictor.Predictor.
func (g *Gskew) Update(pc uint64, taken bool) {
	idx := g.indices(pc)
	if g.partial {
		correct := g.Predict(pc) == taken
		for b, i := range idx {
			if !correct || g.banks[b].Taken(i) == taken {
				g.banks[b].Update(i, taken)
			}
		}
	} else {
		for b, i := range idx {
			g.banks[b].Update(i, taken)
		}
	}
	g.ghr.Push(taken)
}

// Reset implements predictor.Predictor.
func (g *Gskew) Reset() {
	for _, b := range g.banks {
		b.Reset()
	}
	g.ghr.Reset()
}

// CostBits implements predictor.Predictor.
func (g *Gskew) CostBits() int {
	total := 0
	for _, b := range g.banks {
		total += b.CostBits()
	}
	return total
}
