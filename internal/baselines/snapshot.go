package baselines

import "fmt"

// predictor.Snapshotter implementations for the baselines the suite
// checkpoint machinery persists mid-cell: gshare (which also backs the
// gshare.best sweeps) and the Smith predictor. Each snapshot is a
// one-byte type tag followed by the table and register snapshots; the
// shape validation lives in the counter/history encodings.
const (
	snapTagGshare = 0x11
	snapTagSmith  = 0x12
)

// Snapshot implements predictor.Snapshotter.
func (g *Gshare) Snapshot(dst []byte) []byte {
	dst = append(dst, snapTagGshare)
	dst = g.table.AppendSnapshot(dst)
	return g.ghr.AppendSnapshot(dst)
}

// RestoreSnapshot implements predictor.Snapshotter.
func (g *Gshare) RestoreSnapshot(data []byte) error {
	if len(data) == 0 || data[0] != snapTagGshare {
		return fmt.Errorf("baselines: not a gshare snapshot")
	}
	rest, err := g.table.ReadSnapshot(data[1:])
	if err != nil {
		return fmt.Errorf("baselines: gshare table: %w", err)
	}
	if rest, err = g.ghr.ReadSnapshot(rest); err != nil {
		return fmt.Errorf("baselines: gshare history: %w", err)
	}
	if len(rest) != 0 {
		return fmt.Errorf("baselines: gshare snapshot has %d trailing bytes", len(rest))
	}
	return nil
}

// Snapshot implements predictor.Snapshotter.
func (s *Smith) Snapshot(dst []byte) []byte {
	dst = append(dst, snapTagSmith)
	return s.table.AppendSnapshot(dst)
}

// RestoreSnapshot implements predictor.Snapshotter.
func (s *Smith) RestoreSnapshot(data []byte) error {
	if len(data) == 0 || data[0] != snapTagSmith {
		return fmt.Errorf("baselines: not a smith snapshot")
	}
	rest, err := s.table.ReadSnapshot(data[1:])
	if err != nil {
		return fmt.Errorf("baselines: smith table: %w", err)
	}
	if len(rest) != 0 {
		return fmt.Errorf("baselines: smith snapshot has %d trailing bytes", len(rest))
	}
	return nil
}
