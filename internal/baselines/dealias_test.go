package baselines

import (
	"testing"
	"testing/quick"
)

func TestAgreeConvertsDestructiveAliasing(t *testing.T) {
	// Two strongly biased branches with opposite directions that collide
	// in the PHT: agree stores "agrees with bias" so both push their
	// shared counter the same way; a plain gshare thrashes.
	agree := NewAgree(4, 4, 10)
	gs := NewGshare(4, 4)
	a, b := destructiveAliasPCs() // same PHT counter under steady-state histories
	missAgree, missGshare := 0, 0
	for i := 0; i < 500; i++ {
		if agree.Predict(a) != true {
			missAgree++
		}
		agree.Update(a, true)
		if agree.Predict(b) != false {
			missAgree++
		}
		agree.Update(b, false)

		if gs.Predict(a) != true {
			missGshare++
		}
		gs.Update(a, true)
		if gs.Predict(b) != false {
			missGshare++
		}
		gs.Update(b, false)
	}
	if missAgree*4 > missGshare {
		t.Fatalf("agree should largely remove destructive aliasing: agree=%d gshare=%d", missAgree, missGshare)
	}
}

func TestAgreeBiasLatching(t *testing.T) {
	a := NewAgree(6, 0, 6)
	pc := uint64(0x200)
	// First outcome latches the bias; with zero history the PHT counter
	// then tracks agreement.
	a.Predict(pc)
	a.Update(pc, false) // bias <- not-taken
	for i := 0; i < 4; i++ {
		a.Predict(pc)
		a.Update(pc, false)
	}
	if a.Predict(pc) {
		t.Fatalf("agree must predict the latched not-taken bias")
	}
	a.Reset()
	// After reset the bias is unlatched again; default presumption taken.
	if !a.Predict(pc) {
		t.Fatalf("reset agree should presume taken before first update")
	}
}

func TestAgreeCost(t *testing.T) {
	a := NewAgree(10, 10, 8)
	want := 2*1024 + 2*256
	if a.CostBits() != want {
		t.Fatalf("cost = %d, want %d", a.CostBits(), want)
	}
}

func TestGskewShuffleBijective(t *testing.T) {
	for _, bits := range []int{2, 5, 8, 11} {
		g := NewGskew(bits, 4, false)
		f := func(y uint64) bool {
			y &= g.bankMask
			return g.shuffleHInv(g.shuffleH(y)) == y && g.shuffleH(g.shuffleHInv(y)) == y
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
	}
}

func TestGskewLearnsBias(t *testing.T) {
	for _, partial := range []bool{false, true} {
		g := NewGskew(8, 6, partial)
		pc := uint64(0x540)
		for i := 0; i < 20; i++ {
			g.Predict(pc)
			g.Update(pc, false)
		}
		if g.Predict(pc) {
			t.Fatalf("gskew(partial=%v) must learn a biased branch", partial)
		}
		g.Reset()
		if !g.Predict(pc) {
			t.Fatalf("gskew reset must restore weakly-taken majority")
		}
	}
}

func TestGskewDisperses(t *testing.T) {
	// Two PCs that collide in bank 0 should not collide in all three
	// banks; the majority vote then survives single-bank aliasing.
	g := NewGskew(6, 0, false)
	a, b := uint64(0x100), uint64(0x100+4*(1<<6))
	ia, ib := g.indices(a), g.indices(b)
	same := 0
	for k := 0; k < 3; k++ {
		if ia[k] == ib[k] {
			same++
		}
	}
	if same == 3 {
		t.Fatalf("skewing failed: all three banks collide for %x and %x", a, b)
	}
}

func TestGskewCostAndName(t *testing.T) {
	g := NewGskew(10, 10, true)
	if g.CostBits() != 3*2*1024 {
		t.Fatalf("cost = %d", g.CostBits())
	}
	if g.Name() != "e-gskew(3x10b,10h)" {
		t.Fatalf("name = %q", g.Name())
	}
}

func TestYAGSExceptionLearning(t *testing.T) {
	y := NewYAGS(8, 6, 6, 6)
	pc := uint64(0x700)
	// Train a mostly-taken branch: choice learns taken.
	for i := 0; i < 8; i++ {
		y.Predict(pc)
		y.Update(pc, true)
	}
	if !y.Predict(pc) {
		t.Fatalf("yags must predict the bias direction")
	}
	// Now a history-dependent exception: alternate taken/not-taken; the
	// NT cache should capture the not-taken cases.
	last := false
	for i := 0; i < 300; i++ {
		last = !last
		y.Predict(pc)
		y.Update(pc, last)
	}
	miss := 0
	for i := 0; i < 100; i++ {
		last = !last
		if y.Predict(pc) != last {
			miss++
		}
		y.Update(pc, last)
	}
	if miss > 5 {
		t.Fatalf("yags must learn alternation through its exception cache, missed %d/100", miss)
	}
}

func TestYAGSReset(t *testing.T) {
	y := NewYAGS(6, 6, 6, 6)
	pc := uint64(0x340)
	for i := 0; i < 50; i++ {
		y.Predict(pc)
		y.Update(pc, false)
	}
	y.Reset()
	if !y.Predict(pc) {
		t.Fatalf("reset yags must predict weakly-taken choice default")
	}
}

func TestYAGSCost(t *testing.T) {
	y := NewYAGS(10, 8, 8, 6)
	want := 2*1024 + 2*256*(2+6+1)
	if y.CostBits() != want {
		t.Fatalf("cost = %d, want %d", y.CostBits(), want)
	}
}
