package baselines

import (
	"fmt"

	"bimode/internal/counter"
	"bimode/internal/predictor"
)

// Tournament is McFarling's combining predictor [McFarling93], the design
// the paper's introduction credits to the Alpha 21264: two component
// predictors run in parallel and a PC-indexed table of two-bit "meta"
// counters learns, per branch, which component to trust. Both components
// always train; the meta counter moves toward the component that was
// right when exactly one of them was.
type Tournament struct {
	meta    *counter.Table
	a, b    predictor.Predictor
	metaBit int
	mask    uint64
}

// NewTournament combines predictors a and b under a 2^metaBits-entry
// selector. Meta counters start weakly preferring b (the "global"
// component in the classic pairing).
func NewTournament(metaBits int, a, b predictor.Predictor) *Tournament {
	if metaBits < 0 || metaBits > 28 {
		panic(fmt.Sprintf("baselines: tournament meta width %d out of range [0,28]", metaBits))
	}
	return &Tournament{
		meta:    counter.NewTwoBit(1<<uint(metaBits), counter.WeakTaken),
		a:       a,
		b:       b,
		metaBit: metaBits,
		mask:    1<<uint(metaBits) - 1,
	}
}

// Name implements predictor.Predictor.
func (t *Tournament) Name() string {
	return fmt.Sprintf("tournament(%s|%s,%dm)", t.a.Name(), t.b.Name(), t.metaBit)
}

func (t *Tournament) metaIndex(pc uint64) int { return int((pc >> 2) & t.mask) }

// Predict implements predictor.Predictor: meta counter in the "taken"
// half selects component b.
func (t *Tournament) Predict(pc uint64) bool {
	if t.meta.Taken(t.metaIndex(pc)) {
		return t.b.Predict(pc)
	}
	return t.a.Predict(pc)
}

// Update implements predictor.Predictor.
func (t *Tournament) Update(pc uint64, taken bool) {
	pa := t.a.Predict(pc)
	pb := t.b.Predict(pc)
	if pa != pb {
		// Move the meta counter toward the component that was right.
		t.meta.Update(t.metaIndex(pc), pb == taken)
	}
	t.a.Update(pc, taken)
	t.b.Update(pc, taken)
}

// Reset implements predictor.Predictor.
func (t *Tournament) Reset() {
	t.meta.Reset()
	t.a.Reset()
	t.b.Reset()
}

// CostBits implements predictor.Predictor.
func (t *Tournament) CostBits() int {
	return t.meta.CostBits() + t.a.CostBits() + t.b.CostBits()
}

// NewAlpha21264Style returns the classic pairing at a given scale: a
// per-address two-level component and a global-history component under a
// tournament selector, shaped like (a scaled-down) 21264 predictor.
func NewAlpha21264Style(scaleBits int) *Tournament {
	if scaleBits < 4 || scaleBits > 20 {
		panic(fmt.Sprintf("baselines: alpha scale %d out of range [4,20]", scaleBits))
	}
	local := NewPAs(scaleBits-2, scaleBits-2, 2)
	global := NewGAg(scaleBits)
	return NewTournament(scaleBits-1, local, global)
}
