package baselines

import (
	"fmt"

	"bimode/internal/counter"
	"bimode/internal/history"
	"bimode/internal/trace"
)

// TwoLevel implements the Yeh/Patt two-level adaptive predictor taxonomy
// [YehPatt91, YehPatt92] for the four variants the paper discusses:
//
//	GAg - one global history register, one PHT indexed by history alone
//	GAs - one global history register, address bits select among PHTs
//	PAg - per-address history registers, one shared PHT
//	PAs - per-address history registers, address bits select among PHTs
//
// The second level holds 2^(histBits+setBits) counters organized as
// 2^setBits PHTs of 2^histBits counters; setBits == 0 gives the "g"
// (single-PHT) variants.
type TwoLevel struct {
	name     string
	perAddr  bool
	table    *counter.Table
	ghr      *history.Global     // nil when perAddr
	bht      *history.PerAddress // nil when !perAddr
	histBits int
	setBits  int
	setMask  uint64
}

// NewGAg returns a GAg predictor with a histBits-deep global history.
func NewGAg(histBits int) *TwoLevel { return newGlobalTwoLevel("GAg", histBits, 0) }

// NewGAs returns a GAs predictor: histBits of global history and
// 2^setBits address-selected PHTs.
func NewGAs(histBits, setBits int) *TwoLevel { return newGlobalTwoLevel("GAs", histBits, setBits) }

// NewPAg returns a PAg predictor with 2^bhtBits per-address history
// registers of histBits each and a single shared PHT.
func NewPAg(bhtBits, histBits int) *TwoLevel { return newPerAddrTwoLevel("PAg", bhtBits, histBits, 0) }

// NewPAs returns a PAs predictor: per-address histories and 2^setBits
// address-selected PHTs.
func NewPAs(bhtBits, histBits, setBits int) *TwoLevel {
	return newPerAddrTwoLevel("PAs", bhtBits, histBits, setBits)
}

func newGlobalTwoLevel(name string, histBits, setBits int) *TwoLevel {
	checkTwoLevel(histBits, setBits)
	return &TwoLevel{
		name:     name,
		table:    counter.NewTwoBit(1<<uint(histBits+setBits), counter.WeakTaken),
		ghr:      history.NewGlobal(histBits),
		histBits: histBits,
		setBits:  setBits,
		setMask:  1<<uint(setBits) - 1,
	}
}

func newPerAddrTwoLevel(name string, bhtBits, histBits, setBits int) *TwoLevel {
	checkTwoLevel(histBits, setBits)
	return &TwoLevel{
		name:     name,
		perAddr:  true,
		table:    counter.NewTwoBit(1<<uint(histBits+setBits), counter.WeakTaken),
		bht:      history.NewPerAddress(bhtBits, histBits),
		histBits: histBits,
		setBits:  setBits,
		setMask:  1<<uint(setBits) - 1,
	}
}

func checkTwoLevel(histBits, setBits int) {
	if histBits < 1 || setBits < 0 || histBits+setBits > 28 {
		panic(fmt.Sprintf("baselines: two-level widths (%dh,%ds) invalid", histBits, setBits))
	}
}

// Name implements predictor.Predictor.
func (t *TwoLevel) Name() string {
	if t.setBits == 0 {
		return fmt.Sprintf("%s(%dh)", t.name, t.histBits)
	}
	return fmt.Sprintf("%s(%dh,%ds)", t.name, t.histBits, t.setBits)
}

//bimode:hotpath
func (t *TwoLevel) pattern(pc uint64) uint64 {
	if t.perAddr {
		return t.bht.Value(pc)
	}
	return t.ghr.Value()
}

//bimode:hotpath
func (t *TwoLevel) index(pc uint64) int {
	set := (pc >> 2) & t.setMask
	return int(set<<uint(t.histBits) | t.pattern(pc))
}

// Predict implements predictor.Predictor.
func (t *TwoLevel) Predict(pc uint64) bool { return t.table.Taken(t.index(pc)) }

// Update implements predictor.Predictor.
func (t *TwoLevel) Update(pc uint64, taken bool) {
	t.table.Update(t.index(pc), taken)
	if t.perAddr {
		t.bht.Push(pc, taken)
	} else {
		t.ghr.Push(taken)
	}
}

// Step implements predictor.Stepper: Predict and Update fused so the
// first-level pattern is read and the second-level index computed once
// per branch, for all four variants (GAg/GAs/PAg/PAs).
//
//bimode:hotpath
func (t *TwoLevel) Step(pc uint64, taken bool) bool {
	i := t.index(pc)
	pred := t.table.Taken(i)
	t.table.Update(i, taken)
	if t.perAddr {
		t.bht.Push(pc, taken)
	} else {
		t.ghr.Push(taken)
	}
	return pred
}

// RunBatch implements predictor.BatchRunner. The global-history variants
// (GAg/GAs) get the whole-trace loop with the PHT, the history register
// and the index masks in locals — the same branch-free shape as the
// gshare and fused bi-mode kernels, since a global two-level index is
// just set-bits concatenated with the history pattern. The per-address
// variants keep their first level inside history.PerAddress, so they run
// the fused Step per record instead; their bottleneck is the BHT
// indirection, not dispatch.
//
//bimode:hotpath
func (t *TwoLevel) RunBatch(recs []trace.Record) int {
	if t.perAddr {
		return t.runBatchPerAddr(recs)
	}
	tab := t.table.Raw()
	if len(tab) == 0 {
		return 0 // unreachable (the PHT is non-empty); lets the compiler drop bounds checks
	}
	tabMask := uint64(len(tab) - 1)
	setMask := t.setMask
	shift := uint(t.histBits)
	h := t.ghr.Value()
	var hMask uint64
	if nb := t.ghr.Bits(); nb > 0 {
		hMask = 1<<uint(nb) - 1
	}
	miss := 0
	for i := range recs {
		r := &recs[i]
		tk := counter.OutcomeBit(r.Taken)
		idx := (((r.PC>>2)&setMask)<<shift | h) & tabMask
		v := tab[idx]
		miss += int(v.TakenBit() ^ tk)
		tab[idx] = counter.SatNext(v, tk)
		h = (h<<1 | uint64(tk)) & hMask
	}
	t.ghr.Set(h)
	return miss
}

// runBatchPerAddr is RunBatch for the per-address-history variants
// (PAg/PAs): the fused Step loop.
//
//bimode:hotpath
func (t *TwoLevel) runBatchPerAddr(recs []trace.Record) int {
	miss := 0
	for i := range recs {
		r := &recs[i]
		if t.Step(r.PC, r.Taken) != r.Taken {
			miss++
		}
	}
	return miss
}

// Reset implements predictor.Predictor.
func (t *TwoLevel) Reset() {
	t.table.Reset()
	if t.perAddr {
		t.bht.Reset()
	} else {
		t.ghr.Reset()
	}
}

// CostBits implements predictor.Predictor. Per the paper's cost metric
// only second-level counters are charged; first-level history registers
// are free.
func (t *TwoLevel) CostBits() int { return t.table.CostBits() }

// CounterID implements predictor.Indexed.
func (t *TwoLevel) CounterID(pc uint64) int { return t.index(pc) }

// NumCounters implements predictor.Indexed.
func (t *TwoLevel) NumCounters() int { return t.table.Len() }
