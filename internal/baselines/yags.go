package baselines

import (
	"fmt"

	"bimode/internal/counter"
	"bimode/internal/history"
)

// YAGS ("Yet Another Global Scheme", Eden & Mudge 1998) is the successor
// de-aliasing design from the same group, included here as the paper's
// "future work" direction made concrete: instead of duplicating whole
// direction banks as bi-mode does, YAGS keeps only the *exceptions* to the
// choice predictor's bias in two small tagged caches (a taken-cache
// consulted for not-taken-biased branches and vice versa). A tag hit
// overrides the choice prediction.
type YAGS struct {
	choice    *Smith
	caches    [2]yagsCache // [0] = NT cache (exceptions of taken-biased), [1] = T cache
	ghr       *history.Global
	cacheBits int
	histBits  int
	tagBits   int
	idxMask   uint64
	tagMask   uint64
}

type yagsCache struct {
	tags  []uint16
	valid []bool
	ctrs  *counter.Table
}

// NewYAGS returns a YAGS predictor with a 2^choiceBits choice table, two
// exception caches of 2^cacheBits entries each, tagBits-wide partial tags,
// and histBits of global history.
func NewYAGS(choiceBits, cacheBits, histBits, tagBits int) *YAGS {
	if cacheBits < 0 || cacheBits > 26 || histBits < 0 || histBits > cacheBits {
		panic(fmt.Sprintf("baselines: yags widths (%dc,%dh) invalid", cacheBits, histBits))
	}
	if tagBits < 1 || tagBits > 16 {
		panic(fmt.Sprintf("baselines: yags tag width %d out of range [1,16]", tagBits))
	}
	y := &YAGS{
		choice:    NewSmith(choiceBits),
		ghr:       history.NewGlobal(histBits),
		cacheBits: cacheBits,
		histBits:  histBits,
		tagBits:   tagBits,
		idxMask:   1<<uint(cacheBits) - 1,
		tagMask:   1<<uint(tagBits) - 1,
	}
	for i := range y.caches {
		init := counter.WeakNotTaken
		if i == 1 {
			init = counter.WeakTaken
		}
		y.caches[i] = yagsCache{
			tags:  make([]uint16, 1<<uint(cacheBits)),
			valid: make([]bool, 1<<uint(cacheBits)),
			ctrs:  counter.NewTwoBit(1<<uint(cacheBits), init),
		}
	}
	return y
}

// Name implements predictor.Predictor.
func (y *YAGS) Name() string {
	return fmt.Sprintf("yags(%dc,%dh,%dt)", y.cacheBits, y.histBits, y.tagBits)
}

func (y *YAGS) index(pc uint64) int { return int(((pc >> 2) ^ y.ghr.Value()) & y.idxMask) }
func (y *YAGS) tag(pc uint64) uint16 {
	return uint16((pc >> 2) & y.tagMask)
}

// cacheFor returns the exception cache consulted when the choice predicts
// the given direction: a taken bias consults the NT cache and vice versa.
func (y *YAGS) cacheFor(choiceTaken bool) *yagsCache {
	if choiceTaken {
		return &y.caches[0]
	}
	return &y.caches[1]
}

// Predict implements predictor.Predictor.
func (y *YAGS) Predict(pc uint64) bool {
	choiceTaken := y.choice.Predict(pc)
	c := y.cacheFor(choiceTaken)
	i := y.index(pc)
	if c.valid[i] && c.tags[i] == y.tag(pc) {
		return c.ctrs.Taken(i)
	}
	return choiceTaken
}

// Update implements predictor.Predictor.
func (y *YAGS) Update(pc uint64, taken bool) {
	choiceTaken := y.choice.Predict(pc)
	c := y.cacheFor(choiceTaken)
	i := y.index(pc)
	hit := c.valid[i] && c.tags[i] == y.tag(pc)

	if hit {
		c.ctrs.Update(i, taken)
	} else if taken != choiceTaken {
		// The branch deviated from its bias: allocate an exception entry.
		c.valid[i] = true
		c.tags[i] = y.tag(pc)
		if taken {
			c.ctrs.Set(i, counter.WeakTaken)
		} else {
			c.ctrs.Set(i, counter.WeakNotTaken)
		}
	}

	// Choice update mirrors bi-mode's partial policy: do not weaken the
	// bias when the exception cache covered the deviation.
	if !(choiceTaken != taken && hit && c.ctrs.Taken(i) == taken) {
		y.choice.Update(pc, taken)
	}
	y.ghr.Push(taken)
}

// Reset implements predictor.Predictor.
func (y *YAGS) Reset() {
	y.choice.Reset()
	for i := range y.caches {
		c := &y.caches[i]
		for j := range c.tags {
			c.tags[j] = 0
			c.valid[j] = false
		}
		c.ctrs.Reset()
	}
	y.ghr.Reset()
}

// CostBits implements predictor.Predictor: choice counters plus, for each
// cache entry, a two-bit counter, the partial tag, and a valid bit.
func (y *YAGS) CostBits() int {
	perEntry := 2 + y.tagBits + 1
	return y.choice.CostBits() + 2*(1<<uint(y.cacheBits))*perEntry
}
