// Package baselines implements every comparator predictor the paper uses
// or cites: static predictors, the Smith two-bit bimodal predictor
// [Smith81], the two-level family GAg/GAs/PAg/PAs [YehPatt91, YehPatt92],
// gselect and gshare [McFarling93] with the paper's multi-PHT
// parameterization, the agree predictor [Sprangle97], the skewed predictor
// gskew [MichaudSeznecUhlig97], and YAGS (a follow-up de-aliasing design,
// included as an extension comparator).
package baselines

import "bimode/internal/predictor"

// Static direction policies.
const (
	// AlwaysTaken predicts every branch taken.
	AlwaysTaken = "taken"
	// AlwaysNotTaken predicts every branch not taken.
	AlwaysNotTaken = "not-taken"
	// BTFN predicts backward branches (targets below the branch) taken and
	// forward branches not taken. Our trace format carries no targets, so
	// the workload generators encode direction in a PC convention: branches
	// whose site was declared backward have bit 63 set in their PC as seen
	// by BTFN only. Simulators normally mask that bit off; BTFN reads it.
	BTFN = "btfn"
)

// NewStatic returns a stateless static predictor implementing the given
// policy. Static predictors cost zero counter bits.
func NewStatic(policy string) predictor.Predictor {
	switch policy {
	case AlwaysTaken:
		return &predictor.Func{
			NameStr:   "static-taken",
			PredictFn: func(uint64) bool { return true },
		}
	case AlwaysNotTaken:
		return &predictor.Func{
			NameStr:   "static-not-taken",
			PredictFn: func(uint64) bool { return false },
		}
	case BTFN:
		return &predictor.Func{
			NameStr:   "static-btfn",
			PredictFn: func(pc uint64) bool { return pc&BackwardBit != 0 },
		}
	default:
		panic("baselines: unknown static policy " + policy)
	}
}

// BackwardBit is the PC bit the workload generators set on branch sites
// that are backward (loop) branches, consumed only by the BTFN predictor.
const BackwardBit uint64 = 1 << 63
