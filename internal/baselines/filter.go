package baselines

import (
	"fmt"

	"bimode/internal/counter"
	"bimode/internal/history"
)

// Filter implements the PHT-interference filtering mechanism of Chang,
// Evers and Patt [ChangEversPatt96], another de-aliasing rival the paper
// cites. Each static branch carries a direction bit and a saturating
// run counter; while a branch keeps going the same direction, the run
// counter climbs. Once it saturates, the branch is classified as highly
// biased and predicted by its direction bit WITHOUT consulting (or
// updating) the gshare PHT — filtering the easy branches' updates out of
// the shared table so they cannot interfere with the hard ones.
type Filter struct {
	pht       *counter.Table
	ghr       *history.Global
	dir       []bool  // last direction per filter entry
	run       []uint8 // consecutive same-direction count, saturating
	indexBits int
	histBits  int
	filterMax uint8
	idxMask   uint64
	fltMask   uint64
}

// NewFilter returns a filter predictor: a 2^indexBits-counter gshare PHT
// behind 2^filterBits filter entries whose run counters saturate at
// filterMax.
func NewFilter(indexBits, histBits, filterBits int, filterMax uint8) *Filter {
	if indexBits < 0 || indexBits > 28 || histBits < 0 || histBits > indexBits {
		panic(fmt.Sprintf("baselines: filter widths (%di,%dh) invalid", indexBits, histBits))
	}
	if filterBits < 0 || filterBits > 28 {
		panic(fmt.Sprintf("baselines: filter table width %d invalid", filterBits))
	}
	if filterMax == 0 {
		panic("baselines: filter threshold must be positive")
	}
	return &Filter{
		pht:       counter.NewTwoBit(1<<uint(indexBits), counter.WeakTaken),
		ghr:       history.NewGlobal(histBits),
		dir:       make([]bool, 1<<uint(filterBits)),
		run:       make([]uint8, 1<<uint(filterBits)),
		indexBits: indexBits,
		histBits:  histBits,
		filterMax: filterMax,
		idxMask:   1<<uint(indexBits) - 1,
		fltMask:   1<<uint(filterBits) - 1,
	}
}

// Name implements predictor.Predictor.
func (f *Filter) Name() string {
	return fmt.Sprintf("filter(%di,%dh,max%d)", f.indexBits, f.histBits, f.filterMax)
}

func (f *Filter) index(pc uint64) int  { return int(((pc >> 2) ^ f.ghr.Value()) & f.idxMask) }
func (f *Filter) fIndex(pc uint64) int { return int((pc >> 2) & f.fltMask) }

// filtered reports whether the branch is currently classified highly
// biased.
func (f *Filter) filtered(pc uint64) bool { return f.run[f.fIndex(pc)] >= f.filterMax }

// Predict implements predictor.Predictor.
func (f *Filter) Predict(pc uint64) bool {
	if fi := f.fIndex(pc); f.run[fi] >= f.filterMax {
		return f.dir[fi]
	}
	return f.pht.Taken(f.index(pc))
}

// Update implements predictor.Predictor.
func (f *Filter) Update(pc uint64, taken bool) {
	fi := f.fIndex(pc)
	wasFiltered := f.run[fi] >= f.filterMax

	// The PHT is consulted and trained only by unfiltered branches.
	if !wasFiltered {
		f.pht.Update(f.index(pc), taken)
	}

	// Track the direction run.
	if f.dir[fi] == taken {
		if f.run[fi] < f.filterMax {
			f.run[fi]++
		}
	} else {
		f.dir[fi] = taken
		f.run[fi] = 1
	}
	f.ghr.Push(taken)
}

// Reset implements predictor.Predictor.
func (f *Filter) Reset() {
	f.pht.Reset()
	for i := range f.dir {
		f.dir[i] = false
		f.run[i] = 0
	}
	f.ghr.Reset()
}

// CostBits implements predictor.Predictor: the PHT plus, per filter
// entry, the direction bit and the run counter (ceil(log2(filterMax+1))
// bits, conservatively 4).
func (f *Filter) CostBits() int {
	bitsPerEntry := 1 + 4
	return f.pht.CostBits() + len(f.dir)*bitsPerEntry
}
