package baselines

import (
	"testing"

	"bimode/internal/predictor"
)

// train feeds a repeating outcome sequence for one PC and returns the
// final prediction.
func train(p predictor.Predictor, pc uint64, outcomes []bool, reps int) bool {
	for r := 0; r < reps; r++ {
		for _, o := range outcomes {
			p.Predict(pc)
			p.Update(pc, o)
		}
	}
	return p.Predict(pc)
}

func TestStaticPredictors(t *testing.T) {
	if !NewStatic(AlwaysTaken).Predict(0x100) {
		t.Fatalf("static-taken must predict taken")
	}
	if NewStatic(AlwaysNotTaken).Predict(0x100) {
		t.Fatalf("static-not-taken must predict not taken")
	}
	btfn := NewStatic(BTFN)
	if !btfn.Predict(0x100 | BackwardBit) {
		t.Fatalf("BTFN must predict backward branches taken")
	}
	if btfn.Predict(0x100) {
		t.Fatalf("BTFN must predict forward branches not taken")
	}
	for _, p := range []predictor.Predictor{NewStatic(AlwaysTaken), NewStatic(BTFN)} {
		if p.CostBits() != 0 {
			t.Fatalf("%s must cost 0 bits", p.Name())
		}
		p.Update(0x100, true) // must not panic
		p.Reset()
	}
}

func TestStaticUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("unknown policy must panic")
		}
	}()
	NewStatic("coin-flip")
}

func TestSmithLearnsBias(t *testing.T) {
	s := NewSmith(6)
	if got := train(s, 0x400, []bool{false}, 4); got {
		t.Fatalf("smith must learn a not-taken branch")
	}
	if got := train(s, 0x404, []bool{true}, 4); !got {
		t.Fatalf("smith must learn a taken branch")
	}
}

func TestSmithAliasing(t *testing.T) {
	s := NewSmith(2) // 4 entries: PCs 16 bytes apart alias
	a, b := uint64(0x100), uint64(0x100+4*4)
	train(s, a, []bool{true}, 4)
	if !s.Predict(b) {
		t.Fatalf("aliased PCs must share a counter")
	}
}

func TestSmithCostAndIndexed(t *testing.T) {
	s := NewSmith(10)
	if s.CostBits() != 2*1024 {
		t.Fatalf("cost = %d, want 2048", s.CostBits())
	}
	if s.NumCounters() != 1024 {
		t.Fatalf("NumCounters = %d", s.NumCounters())
	}
	id := s.CounterID(0xABC)
	if id < 0 || id >= 1024 {
		t.Fatalf("CounterID out of range: %d", id)
	}
}

// TestGshareUsesHistory: a branch alternating T/N is unpredictable for a
// two-bit counter but trivial for gshare with history.
func TestGshareUsesHistory(t *testing.T) {
	g := NewGshare(8, 8)
	pc := uint64(0x200)
	// Train on alternating outcomes.
	last := false
	for i := 0; i < 200; i++ {
		last = !last
		g.Predict(pc)
		g.Update(pc, last)
	}
	// Now verify predictions track the alternation.
	miss := 0
	for i := 0; i < 100; i++ {
		last = !last
		if g.Predict(pc) != last {
			miss++
		}
		g.Update(pc, last)
	}
	if miss > 0 {
		t.Fatalf("gshare must predict a learned alternating pattern, missed %d/100", miss)
	}

	s := NewSmith(8)
	last = false
	miss = 0
	for i := 0; i < 200; i++ {
		last = !last
		if i >= 100 && s.Predict(pc) != last {
			miss++
		}
		s.Update(pc, last)
	}
	if miss < 40 {
		t.Fatalf("smith should mispredict an alternating branch heavily, missed only %d/100", miss)
	}
}

// destructiveAliasPCs returns two PCs that, under the steady-state
// histories of the repeating stream [a taken, b not-taken], xor-map to
// the SAME counter of a 16-entry gshare(4,4): before a the history is
// 1010, before b it is 0101, so pca>>2 = 0 and pcb>>2 = 1010^0101 = 1111
// collide at index 10.
func destructiveAliasPCs() (a, b uint64) { return 0x0, 0xF << 2 }

func TestGshareDestructiveAliasing(t *testing.T) {
	g := NewGshare(4, 4)
	a, b := destructiveAliasPCs()
	miss := 0
	for i := 0; i < 400; i++ {
		if g.Predict(a) != true {
			miss++
		}
		g.Update(a, true)
		if g.Predict(b) != false {
			miss++
		}
		g.Update(b, false)
	}
	if miss < 200 {
		t.Fatalf("opposite-bias aliases on one counter should thrash gshare, missed only %d/800", miss)
	}
}

func TestGshareParams(t *testing.T) {
	g := NewGshare(12, 8)
	if g.NumPHTs() != 16 {
		t.Fatalf("NumPHTs = %d, want 16", g.NumPHTs())
	}
	if g.HistoryBits() != 8 || g.IndexBits() != 12 {
		t.Fatalf("params echo wrong")
	}
	if g.Name() != "gshare(12i,8h)" {
		t.Fatalf("name = %q", g.Name())
	}
	if NewGshare(12, 12).Name() != "gshare.1PHT(12)" {
		t.Fatalf("single-PHT name wrong")
	}
	if g.CostBits() != 2*4096 {
		t.Fatalf("cost = %d", g.CostBits())
	}
}

func TestGsharePanics(t *testing.T) {
	for _, c := range [][2]int{{-1, 0}, {29, 0}, {8, 9}, {8, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGshare(%d,%d) must panic", c[0], c[1])
				}
			}()
			NewGshare(c[0], c[1])
		}()
	}
}

func TestGshareReset(t *testing.T) {
	g := NewGshare(6, 6)
	pc := uint64(0x300)
	train(g, pc, []bool{false}, 10)
	g.Reset()
	if !g.Predict(pc) {
		t.Fatalf("reset must restore weakly-taken initialization")
	}
}

func TestGselect(t *testing.T) {
	g := NewGselect(4, 4)
	if g.CostBits() != 2*256 {
		t.Fatalf("cost = %d, want 512", g.CostBits())
	}
	pc := uint64(0x440)
	last := false
	for i := 0; i < 200; i++ {
		last = !last
		g.Predict(pc)
		g.Update(pc, last)
	}
	miss := 0
	for i := 0; i < 100; i++ {
		last = !last
		if g.Predict(pc) != last {
			miss++
		}
		g.Update(pc, last)
	}
	if miss > 0 {
		t.Fatalf("gselect must learn alternation, missed %d", miss)
	}
	if g.NumCounters() != 256 {
		t.Fatalf("NumCounters = %d", g.NumCounters())
	}
}

func TestTwoLevelVariants(t *testing.T) {
	pc := uint64(0x800)
	for _, tl := range []*TwoLevel{NewGAg(6), NewGAs(4, 2), NewPAg(6, 6), NewPAs(4, 4, 2)} {
		last := false
		for i := 0; i < 300; i++ {
			last = !last
			tl.Predict(pc)
			tl.Update(pc, last)
		}
		miss := 0
		for i := 0; i < 100; i++ {
			last = !last
			if tl.Predict(pc) != last {
				miss++
			}
			tl.Update(pc, last)
		}
		if miss > 0 {
			t.Errorf("%s must learn a single branch's alternation, missed %d", tl.Name(), miss)
		}
		tl.Reset()
		if !tl.Predict(pc) {
			t.Errorf("%s reset must restore weakly-taken", tl.Name())
		}
	}
}

func TestTwoLevelNamesAndCost(t *testing.T) {
	if NewGAg(10).Name() != "GAg(10h)" {
		t.Fatalf("GAg name wrong: %s", NewGAg(10).Name())
	}
	if NewGAs(8, 2).Name() != "GAs(8h,2s)" {
		t.Fatalf("GAs name wrong")
	}
	if NewGAs(8, 2).CostBits() != 2*1024 {
		t.Fatalf("GAs cost wrong: %d", NewGAs(8, 2).CostBits())
	}
	// PAg separates per-address histories: two alternating branches in
	// antiphase confuse GAg but not PAg.
	pag := NewPAg(8, 6)
	gag := NewGAg(6)
	a, b := uint64(0x100), uint64(0x104)
	missPAg, missGAg := 0, 0
	la, lb := false, true
	for i := 0; i < 400; i++ {
		la, lb = !la, !lb
		for _, p := range []predictor.Predictor{pag, gag} {
			m := 0
			if p.Predict(a) != la {
				m++
			}
			p.Update(a, la)
			if p.Predict(b) != lb {
				m++
			}
			p.Update(b, lb)
			if i >= 200 {
				if p == predictor.Predictor(pag) {
					missPAg += m
				} else {
					missGAg += m
				}
			}
		}
	}
	if missPAg > 0 {
		t.Fatalf("PAg must track antiphase alternating branches, missed %d", missPAg)
	}
	_ = missGAg // GAg can also learn this via patterns; no assertion
}
