// Package history implements the branch-history structures used by
// two-level predictors: the global history register shared by GAg/GAs/
// gshare/bi-mode, and the per-address branch history table used by
// PAg/PAs.
package history

import "fmt"

// MaxGlobalBits is the widest supported global history register.
const MaxGlobalBits = 63

// Global is a global branch history register: a shift register holding the
// outcomes of the most recent conditional branches, most recent outcome in
// the least significant bit (1 = taken).
type Global struct {
	bits uint64
	mask uint64
	n    int
}

// NewGlobal returns a global history register of n bits (0..63). A zero-
// width register is legal and always reads as zero; it turns gshare into a
// plain PC-indexed table, which the paper's sweeps rely on.
func NewGlobal(n int) *Global {
	if n < 0 || n > MaxGlobalBits {
		panic(fmt.Sprintf("history: global width %d out of range [0,%d]", n, MaxGlobalBits))
	}
	var mask uint64
	if n > 0 {
		mask = 1<<uint(n) - 1
	}
	return &Global{mask: mask, n: n}
}

// Bits returns the register width.
//
//bimode:hotpath
func (g *Global) Bits() int { return g.n }

// Value returns the current history pattern.
//
//bimode:hotpath
func (g *Global) Value() uint64 { return g.bits }

// Push shifts a branch outcome into the register.
//
//bimode:hotpath
func (g *Global) Push(taken bool) {
	g.bits <<= 1
	if taken {
		g.bits |= 1
	}
	g.bits &= g.mask
}

// Set forces the register contents (masked to the register width); used to
// restore history after wrong-path recovery in pipeline models and by
// tests.
//
//bimode:hotpath
func (g *Global) Set(v uint64) { g.bits = v & g.mask }

// Reset clears the register.
func (g *Global) Reset() { g.bits = 0 }

// PerAddress is a table of per-branch history registers (the first level
// of PAg/PAs predictors). Entries are selected by low PC bits, so distinct
// branches may alias onto one register, exactly as in hardware.
type PerAddress struct {
	regs    []uint64
	mask    uint64
	idxMask uint64
	histLen int
}

// NewPerAddress returns a table of 2^indexBits history registers, each
// histBits wide.
func NewPerAddress(indexBits, histBits int) *PerAddress {
	if indexBits < 0 || indexBits > 30 {
		panic(fmt.Sprintf("history: per-address index width %d out of range [0,30]", indexBits))
	}
	if histBits < 1 || histBits > MaxGlobalBits {
		panic(fmt.Sprintf("history: per-address history width %d out of range [1,%d]", histBits, MaxGlobalBits))
	}
	return &PerAddress{
		regs:    make([]uint64, 1<<uint(indexBits)),
		mask:    1<<uint(histBits) - 1,
		idxMask: 1<<uint(indexBits) - 1,
		histLen: histBits,
	}
}

// Len returns the number of history registers.
func (p *PerAddress) Len() int { return len(p.regs) }

// Bits returns the width of each history register.
func (p *PerAddress) Bits() int { return p.histLen }

// index maps a branch PC to its history register. Branch instructions are
// word aligned, so the two low bits carry no information and are dropped.
//
//bimode:hotpath
func (p *PerAddress) index(pc uint64) uint64 { return (pc >> 2) & p.idxMask }

// Value returns the history pattern of the branch at pc.
//
// The register is selected by re-deriving the index mask from len(regs)
// (a power of two equal to idxMask+1 by construction) so the compiler's
// prove pass can drop the bounds check; p.idxMask stays the source of
// truth for index, which callers use to enumerate registers.
//
//bimode:hotpath
func (p *PerAddress) Value(pc uint64) uint64 {
	regs := p.regs
	if len(regs) == 0 {
		return 0 // unreachable: the constructor allocates at least one register
	}
	return regs[uint(pc>>2)&uint(len(regs)-1)]
}

// Push shifts an outcome into the history register of the branch at pc.
//
//bimode:hotpath
func (p *PerAddress) Push(pc uint64, taken bool) {
	regs := p.regs
	if len(regs) == 0 {
		return // unreachable: see Value
	}
	i := uint(pc>>2) & uint(len(regs)-1)
	v := regs[i] << 1
	if taken {
		v |= 1
	}
	regs[i] = v & p.mask
}

// Reset clears every history register.
func (p *PerAddress) Reset() {
	for i := range p.regs {
		p.regs[i] = 0
	}
}
