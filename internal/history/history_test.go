package history

import (
	"testing"
	"testing/quick"
)

func TestGlobalPushAndMask(t *testing.T) {
	g := NewGlobal(4)
	for _, taken := range []bool{true, false, true, true} {
		g.Push(taken)
	}
	if g.Value() != 0b1011 {
		t.Fatalf("history = %04b, want 1011", g.Value())
	}
	g.Push(false) // oldest bit (1) falls off
	if g.Value() != 0b0110 {
		t.Fatalf("history = %04b, want 0110", g.Value())
	}
}

func TestGlobalZeroWidth(t *testing.T) {
	g := NewGlobal(0)
	g.Push(true)
	g.Push(true)
	if g.Value() != 0 {
		t.Fatalf("zero-width history must stay 0, got %d", g.Value())
	}
}

func TestGlobalSetMasks(t *testing.T) {
	g := NewGlobal(3)
	g.Set(0xFF)
	if g.Value() != 7 {
		t.Fatalf("Set must mask to width, got %d", g.Value())
	}
}

func TestGlobalReset(t *testing.T) {
	g := NewGlobal(8)
	g.Push(true)
	g.Reset()
	if g.Value() != 0 {
		t.Fatalf("reset must clear history")
	}
}

func TestGlobalPanics(t *testing.T) {
	for _, n := range []int{-1, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGlobal(%d) must panic", n)
				}
			}()
			NewGlobal(n)
		}()
	}
}

// TestGlobalMatchesReference: the register equals the masked bit string
// of the outcome sequence under any inputs.
func TestGlobalMatchesReference(t *testing.T) {
	f := func(outcomes []bool, width uint8) bool {
		n := int(width%MaxGlobalBits) + 1
		g := NewGlobal(n)
		var ref uint64
		for _, o := range outcomes {
			g.Push(o)
			ref <<= 1
			if o {
				ref |= 1
			}
			ref &= 1<<uint(n) - 1
		}
		return g.Value() == ref
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPerAddressSeparatesBranches(t *testing.T) {
	p := NewPerAddress(4, 6)
	a, b := uint64(0x100), uint64(0x104) // distinct word-aligned PCs
	p.Push(a, true)
	p.Push(a, true)
	p.Push(b, false)
	if p.Value(a) != 0b11 {
		t.Fatalf("history of a = %b, want 11", p.Value(a))
	}
	if p.Value(b) != 0 {
		t.Fatalf("history of b = %b, want 0", p.Value(b))
	}
}

func TestPerAddressAliases(t *testing.T) {
	p := NewPerAddress(2, 4)
	// PCs 2^2 * 4 bytes apart alias onto the same register.
	a := uint64(0x100)
	b := a + 4*(1<<2)
	p.Push(a, true)
	if p.Value(b) != 1 {
		t.Fatalf("aliased PCs must share a register")
	}
}

func TestPerAddressMask(t *testing.T) {
	p := NewPerAddress(2, 3)
	pc := uint64(0x40)
	for i := 0; i < 10; i++ {
		p.Push(pc, true)
	}
	if p.Value(pc) != 7 {
		t.Fatalf("history must mask to 3 bits, got %b", p.Value(pc))
	}
}

func TestPerAddressReset(t *testing.T) {
	p := NewPerAddress(3, 4)
	p.Push(0x20, true)
	p.Reset()
	if p.Value(0x20) != 0 {
		t.Fatalf("reset must clear all registers")
	}
}

func TestPerAddressPanics(t *testing.T) {
	cases := [][2]int{{-1, 4}, {31, 4}, {4, 0}, {4, 64}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPerAddress(%d,%d) must panic", c[0], c[1])
				}
			}()
			NewPerAddress(c[0], c[1])
		}()
	}
}
