package history

import (
	"bytes"
	"testing"
)

func TestGlobalSnapshotRoundTrip(t *testing.T) {
	src := NewGlobal(11)
	for i, taken := range []bool{true, true, false, true, false, false, true} {
		_ = i
		src.Push(taken)
	}
	snap := src.AppendSnapshot(nil)

	dst := NewGlobal(11)
	rest, err := dst.ReadSnapshot(snap)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("ReadSnapshot left %d bytes", len(rest))
	}
	if dst.Value() != src.Value() {
		t.Fatalf("restored %#x, want %#x", dst.Value(), src.Value())
	}
	if again := dst.AppendSnapshot(nil); !bytes.Equal(again, snap) {
		t.Fatalf("re-snapshot differs from original")
	}
}

func TestGlobalSnapshotRejectsMismatch(t *testing.T) {
	src := NewGlobal(11)
	src.Push(true)
	snap := src.AppendSnapshot(nil)

	cases := []struct {
		name string
		dst  *Global
		data []byte
	}{
		{"wrong width", NewGlobal(12), snap},
		{"truncated", NewGlobal(11), snap[:4]},
		{"empty", NewGlobal(11), nil},
	}
	for _, tc := range cases {
		before := tc.dst.Value()
		if _, err := tc.dst.ReadSnapshot(tc.data); err == nil {
			t.Errorf("%s: ReadSnapshot accepted bad data", tc.name)
		}
		if tc.dst.Value() != before {
			t.Errorf("%s: register mutated on error", tc.name)
		}
	}
}

func TestGlobalSnapshotRejectsMaskedBits(t *testing.T) {
	snap := NewGlobal(4).AppendSnapshot(nil)
	snap[5] = 0xff // set bits above a 4-bit register's mask
	dst := NewGlobal(4)
	if _, err := dst.ReadSnapshot(snap); err == nil {
		t.Fatalf("ReadSnapshot accepted out-of-mask history bits")
	}
}
