package history

import (
	"encoding/binary"
	"fmt"
)

// Snapshot encoding for history registers, the second building block of
// the predictor.Snapshotter implementations: one byte of register width
// followed by the 8-byte little-endian register value. The width is
// validated on restore so a snapshot can only land in an identically
// configured register, and the value is validated against the register
// mask so corrupted bytes cannot set history bits the predictor's index
// arithmetic assumes are zero.

// AppendSnapshot appends the register's state to dst and returns the
// extended slice.
func (g *Global) AppendSnapshot(dst []byte) []byte {
	dst = append(dst, byte(g.n))
	return binary.LittleEndian.AppendUint64(dst, g.bits)
}

// ReadSnapshot restores register state previously captured by
// AppendSnapshot, consuming it from the front of data and returning the
// remainder. On error the register is unchanged.
func (g *Global) ReadSnapshot(data []byte) ([]byte, error) {
	if len(data) < 9 {
		return nil, fmt.Errorf("history: snapshot truncated: %d of 9 bytes", len(data))
	}
	if int(data[0]) != g.n {
		return nil, fmt.Errorf("history: snapshot width %d does not match register width %d", data[0], g.n)
	}
	v := binary.LittleEndian.Uint64(data[1:9])
	if v&^g.mask != 0 {
		return nil, fmt.Errorf("history: snapshot value %#x exceeds %d-bit register", v, g.n)
	}
	g.bits = v
	return data[9:], nil
}
