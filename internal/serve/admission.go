package serve

import (
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"
)

// Admission control: the three gates that keep an overloaded server
// degrading predictably — 429 with a truthful Retry-After — instead of
// collapsing into unbounded memory or latency.
//
//  1. A session cap (Config.MaxSessions): the total number of live
//     sessions, resident or spilled, is bounded; creation past the cap
//     is refused.
//  2. An in-flight gate (Config.MaxInFlight): a semaphore over
//     concurrently executing session requests. Excess requests are
//     rejected immediately rather than queued, so latency under
//     overload stays flat and the client's Retry-After is honest.
//  3. A token-bucket on ingested records (Config.IngestRate/IngestBurst):
//     the shared budget for how fast the server will simulate, across
//     all sessions. A request whose batch exceeds the available tokens
//     is refused with the exact wait that would cover the deficit.
//
// Memory is additionally bounded by the resident-predictor LRU (see
// Server.enforceResidentCap): admission never needs to account for
// predictor storage because eviction keeps it capped independently.

// httpError is an error that knows its status code; ingest and session
// machinery return it up to the handlers, which render it as JSON (with
// a Retry-After header when the error carries a wait).
type httpError struct {
	code       int
	msg        string
	retryAfter time.Duration
}

func (e *httpError) Error() string { return e.msg }

func httpErrorf(code int, format string, args ...any) *httpError {
	return &httpError{code: code, msg: fmt.Sprintf(format, args...)}
}

// overloadError builds the 429 the gates share.
func overloadError(what string, retryAfter time.Duration) *httpError {
	return &httpError{
		code:       http.StatusTooManyRequests,
		msg:        "overloaded: " + what,
		retryAfter: retryAfter,
	}
}

// tokenBucket is a standard leaky-bucket rate limiter over a float
// token count, with an injectable clock so tests (and the chaos
// schedules) are deterministic. rate <= 0 disables it.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate, burst float64, now func() time.Time) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst < rate {
		burst = rate
	}
	b := &tokenBucket{rate: rate, burst: burst, tokens: burst, now: now}
	b.last = now()
	return b
}

// take withdraws n tokens if available. When they are not, it reports
// the wait after which the deficit would have refilled; nothing is
// withdrawn, so a retried request is charged once. A nil bucket admits
// everything.
func (b *tokenBucket) take(n int) (time.Duration, bool) {
	if b == nil || n <= 0 {
		return 0, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
	}
	b.last = now
	need := float64(n)
	if need > b.burst {
		// A batch larger than the bucket can never succeed; report the
		// time to refill the whole burst so the client learns to chunk.
		return time.Duration(b.burst / b.rate * float64(time.Second)), false
	}
	if b.tokens >= need {
		b.tokens -= need
		return 0, true
	}
	wait := time.Duration((need - b.tokens) / b.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return wait, false
}

// inflightGate is the request-concurrency semaphore.
type inflightGate chan struct{}

func newInflightGate(n int) inflightGate {
	if n <= 0 {
		return nil
	}
	return make(inflightGate, n)
}

// tryAcquire claims a slot without blocking; a nil gate always admits.
func (g inflightGate) tryAcquire() bool {
	if g == nil {
		return true
	}
	select {
	case g <- struct{}{}:
		return true
	default:
		return false
	}
}

func (g inflightGate) release() {
	if g != nil {
		<-g
	}
}

// retryAfterHeader formats a wait as the whole-second Retry-After value
// HTTP requires, rounding up so the client never retries early.
func retryAfterHeader(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}
