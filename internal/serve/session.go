package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/trace"
)

// A session is one client's long-lived simulation: a set of predictor
// instances being trained incrementally by streamed trace chunks, plus
// the per-static bookkeeping (site table, occurrence and mispredict
// counts, aliasing trackers) behind its reports.
//
// Sessions live in two states. Resident: predictors in memory, journal
// open, requests apply directly. Spilled: nothing in memory but the
// header (id, name, admitted specs); the journal on disk holds the last
// committed snapshot. The transition is free in both directions because
// every successful ingest journals a full snapshot before it is
// acknowledged — eviction just drops memory, and residency is restored
// by reloading the snapshot. A crash (or Server.Kill, its test double)
// is the same transition taken involuntarily: whatever was in memory is
// gone, and the journal's last snapshot — the last acknowledged request
// — is exactly what comes back.
//
// Lock order: session.mu strictly before Server.mu. A session request
// holds session.mu for its duration; Server.mu is taken only for brief
// map/LRU edits. Eviction of OTHER sessions therefore never happens
// while holding any session lock — see Server.enforceResidentCap.
type session struct {
	id   string
	name string

	// Everything below mu is guarded by it.
	mu        chan struct{} // 1-slot semaphore: a mutex tests can TryLock via select
	resident  bool
	journal   *sessionJournal
	specs     []*specState
	footnotes []string
	pcs       []uint64          // dense static id -> branch PC
	sites     map[uint64]uint32 // branch PC -> dense static id
	occ       []int64           // per-static occurrence counts
	cursor    int               // records committed (the durability watermark)

	lruToken any // opaque LRU handle owned by the Server, nil when spilled
}

// lock acquires the session, respecting ctx so a request bounded by a
// deadline does not queue forever behind a slow neighbor on the same id.
func (sess *session) lock(ctx context.Context) error {
	select {
	case sess.mu <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctxError(ctx.Err())
	}
}

func (sess *session) unlock() { <-sess.mu }

// specState is one predictor's slice of a session.
type specState struct {
	spec string
	p    predictor.Predictor
	snap predictor.Snapshotter
	idx  predictor.Indexed // nil when the family is not Indexed

	mispredicts int64
	miss        []int64 // per-static mispredicts (the H2P input)
	// last tracks, per second-level counter, the static id that consulted
	// it most recently (-1 = never): the streaming aliasing proxy. A
	// consult whose owner differs is a conflict; a conflicting consult
	// that also mispredicts is destructive interference (Section 3).
	last             []int32
	aliasConflicts   int64
	aliasDestructive int64
	failed           bool // disabled by a runtime failure; counts frozen
}

// newSpecState wires the optional capabilities for a freshly built
// predictor. Only Snapshotter-capable predictors are admitted — without
// a snapshot the session could not honor its durability contract.
func newSpecState(spec string, p predictor.Predictor) (*specState, error) {
	snap, ok := p.(predictor.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("predictor %q does not support snapshots", p.Name())
	}
	sp := &specState{spec: spec, p: p, snap: snap}
	if idx, ok := p.(predictor.Indexed); ok {
		sp.idx = idx
		sp.last = make([]int32, idx.NumCounters())
		for i := range sp.last {
			sp.last[i] = -1
		}
	}
	return sp, nil
}

// buildPredictor constructs a predictor from a spec through the Server's
// Build seam, converting panics to errors (the zoo.New contract already
// does, but the seam is test-injectable) and retrying transient failures
// with doubling backoff — the scheduler's Policy idiom, so a FlakyMake
// construction fault heals here exactly as it does in a batch suite.
func (s *Server) buildPredictor(ctx context.Context, spec string) (predictor.Predictor, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		p, err := buildOnce(s.cfg.Build, spec)
		if err == nil {
			return p, nil
		}
		lastErr = err
		if !sim.Retryable(err) || attempt >= s.cfg.MaxRetries {
			return nil, lastErr
		}
		s.ctr.buildRetries.Add(1)
		if !sleepCtx(ctx, s.cfg.RetryBackoff<<uint(attempt)) {
			return nil, fmt.Errorf("%v (retry abandoned: %w)", lastErr, ctx.Err())
		}
	}
}

func buildOnce(build func(string) (predictor.Predictor, error), spec string) (p predictor.Predictor, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("serve: building %q: %w", spec, e)
			} else {
				err = fmt.Errorf("serve: building %q: %v", spec, r)
			}
		}
	}()
	return build(spec)
}

// sleepCtx sleeps for d unless ctx cancels first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// siteFor maps a branch PC to the session's dense static id, assigning
// the next id on first appearance and growing every per-static array to
// cover it. The site table may run ahead of the arrays (the text scanner
// inserts PCs as it parses), so growth is by-need here.
func (sess *session) siteFor(pc uint64) uint32 {
	st, ok := sess.sites[pc]
	if !ok {
		st = uint32(len(sess.sites))
		sess.sites[pc] = st
	}
	for int(st) >= len(sess.pcs) {
		sess.pcs = append(sess.pcs, 0)
		sess.occ = append(sess.occ, 0)
		for _, sp := range sess.specs {
			sp.miss = append(sp.miss, 0)
		}
	}
	sess.pcs[st] = pc
	return st
}

// applyChunk runs one chunk of records through every live spec. Static
// ids are remapped by PC into the session's id space first — a binary
// body's embedded Static ids belong to the client's capture, not to this
// session — then each spec processes the whole chunk, so one spec's
// runtime failure (caught in runSpecChunk) cannot corrupt another's
// interleaving.
func (sess *session) applyChunk(recs []trace.Record) {
	for i := range recs {
		st := sess.siteFor(recs[i].PC)
		recs[i].Static = st
		sess.occ[st]++
	}
	for _, sp := range sess.specs {
		if !sp.failed {
			sess.runSpecChunk(sp, recs)
		}
	}
	sess.cursor += len(recs)
}

// runSpecChunk trains one spec on a chunk. A panic anywhere in the
// predictor disables the spec — counts freeze, a footnote records where
// and why — and the session carries on with its surviving specs: the
// graceful-degradation contract, per spec rather than per request.
func (sess *session) runSpecChunk(sp *specState, recs []trace.Record) {
	done := 0
	defer func() {
		if r := recover(); r != nil {
			sp.failed = true
			sess.footnotes = append(sess.footnotes, fmt.Sprintf(
				"spec %q disabled at record %d: %v", sp.spec, sess.cursor+done, r))
		}
	}()
	for _, rec := range recs {
		pc, taken, st := rec.PC, rec.Taken, rec.Static
		conflict := false
		if sp.idx != nil {
			cid := sp.idx.CounterID(pc)
			if prev := sp.last[cid]; prev >= 0 && prev != int32(st) {
				conflict = true
				sp.aliasConflicts++
			}
			sp.last[cid] = int32(st)
		}
		predicted := sp.p.Predict(pc)
		sp.p.Update(pc, taken)
		if predicted != taken {
			sp.mispredicts++
			sp.miss[st]++
			if conflict {
				sp.aliasDestructive++
			}
		}
		done++
	}
}

// buildSnap captures the session's complete committed state as one
// journal snapshot.
func (sess *session) buildSnap() *sessionSnap {
	snap := &sessionSnap{
		Cursor:    sess.cursor,
		PCs:       append([]uint64(nil), sess.pcs...),
		Occ:       append([]int64(nil), sess.occ...),
		Footnotes: append([]string(nil), sess.footnotes...),
	}
	for _, sp := range sess.specs {
		ss := specSnap{
			Spec:             sp.spec,
			Mispredicts:      sp.mispredicts,
			Miss:             append([]int64(nil), sp.miss...),
			AliasConflicts:   sp.aliasConflicts,
			AliasDestructive: sp.aliasDestructive,
			Failed:           sp.failed,
		}
		if !sp.failed {
			ss.State = sp.snap.Snapshot(nil)
			ss.Last = packInt32s(sp.last)
		}
		snap.Specs = append(snap.Specs, ss)
	}
	return snap
}

// restoreState rebuilds the session's in-memory state from a journal
// snapshot (nil = a session that never committed: fresh predictors, zero
// counts). Predictor construction retries transients like creation did;
// any mismatch between the snapshot and freshly built predictors means
// the journal does not describe this server's world, and the session is
// unrecoverable rather than approximately recovered.
func (s *Server) restoreState(ctx context.Context, sess *session, snap *sessionSnap) error {
	specs := make([]*specState, 0, len(sess.specsAdmitted()))
	if snap == nil {
		sess.pcs, sess.occ, sess.cursor = nil, nil, 0
		sess.sites = map[uint64]uint32{}
		sess.footnotes = append([]string(nil), sess.journal.hdr.Footnotes...)
		for _, spec := range sess.specsAdmitted() {
			p, err := s.buildPredictor(ctx, spec)
			if err != nil {
				return fmt.Errorf("rebuilding %q: %w", spec, err)
			}
			sp, err := newSpecState(spec, p)
			if err != nil {
				return fmt.Errorf("rebuilding %q: %w", spec, err)
			}
			specs = append(specs, sp)
		}
		sess.specs = specs
		return nil
	}
	admitted := sess.specsAdmitted()
	if len(snap.Specs) != len(admitted) {
		return fmt.Errorf("snapshot has %d specs, session admitted %d", len(snap.Specs), len(admitted))
	}
	sess.pcs = append([]uint64(nil), snap.PCs...)
	sess.occ = append([]int64(nil), snap.Occ...)
	if len(sess.occ) != len(sess.pcs) {
		return fmt.Errorf("snapshot occ/pcs length mismatch: %d != %d", len(sess.occ), len(sess.pcs))
	}
	sess.sites = make(map[uint64]uint32, len(sess.pcs))
	for st, pc := range sess.pcs {
		sess.sites[pc] = uint32(st)
	}
	sess.cursor = snap.Cursor
	sess.footnotes = append([]string(nil), snap.Footnotes...)
	for i, ss := range snap.Specs {
		if ss.Spec != admitted[i] {
			return fmt.Errorf("snapshot spec %d is %q, session admitted %q", i, ss.Spec, admitted[i])
		}
		if len(ss.Miss) > len(sess.pcs) {
			return fmt.Errorf("spec %q: %d miss rows for %d statics", ss.Spec, len(ss.Miss), len(sess.pcs))
		}
		sp := &specState{
			spec:             ss.Spec,
			mispredicts:      ss.Mispredicts,
			miss:             append(make([]int64, 0, len(sess.pcs)), ss.Miss...),
			aliasConflicts:   ss.AliasConflicts,
			aliasDestructive: ss.AliasDestructive,
			failed:           ss.Failed,
		}
		for len(sp.miss) < len(sess.pcs) {
			sp.miss = append(sp.miss, 0)
		}
		if ss.Failed {
			// A disabled spec never runs again; its predictor is rebuilt
			// only for the report's name/cost, and a rebuild failure just
			// leaves those blank.
			if p, err := s.buildPredictor(ctx, ss.Spec); err == nil {
				sp.p = p
			}
			specs = append(specs, sp)
			continue
		}
		p, err := s.buildPredictor(ctx, ss.Spec)
		if err != nil {
			return fmt.Errorf("rebuilding %q: %w", ss.Spec, err)
		}
		live, err := newSpecState(ss.Spec, p)
		if err != nil {
			return fmt.Errorf("rebuilding %q: %w", ss.Spec, err)
		}
		if err := live.snap.RestoreSnapshot(ss.State); err != nil {
			return fmt.Errorf("restoring %q: %w", ss.Spec, err)
		}
		if live.idx != nil {
			last, err := unpackInt32s(ss.Last)
			if err != nil {
				return fmt.Errorf("restoring %q aliasing tracker: %w", ss.Spec, err)
			}
			if len(last) != len(live.last) {
				return fmt.Errorf("restoring %q: %d counter owners for %d counters", ss.Spec, len(last), len(live.last))
			}
			live.last = last
		}
		live.mispredicts = sp.mispredicts
		live.miss = sp.miss
		live.aliasConflicts = sp.aliasConflicts
		live.aliasDestructive = sp.aliasDestructive
		specs = append(specs, live)
	}
	sess.specs = specs
	return nil
}

// specsAdmitted returns the session's admitted spec strings (the journal
// header's plan, valid resident or spilled).
func (sess *session) specsAdmitted() []string { return sess.journal.hdr.Specs }

// report assembles the session's current Report. It reads only committed
// state, carries no timing, and is therefore byte-for-byte reproducible
// from the journal alone — the property the kill-and-resume test pins.
func (sess *session) report(topN int) Report {
	rep := Report{
		ID:        sess.id,
		Name:      sess.name,
		Cursor:    sess.cursor,
		Statics:   len(sess.pcs),
		Footnotes: append([]string(nil), sess.footnotes...),
		Specs:     []SpecReport{},
	}
	for _, sp := range sess.specs {
		sr := SpecReport{
			Spec:        sp.spec,
			Mispredicts: sp.mispredicts,
			Failed:      sp.failed,
		}
		if sess.cursor > 0 {
			sr.MispredictRate = float64(sp.mispredicts) / float64(sess.cursor)
		}
		if sp.p != nil {
			sr.Predictor = sp.p.Name()
			sr.CostBytes = predictor.CostBytes(sp.p)
		}
		if sp.idx != nil {
			sr.Aliasing = &AliasingReport{
				Counters:    len(sp.last),
				Conflicts:   sp.aliasConflicts,
				Destructive: sp.aliasDestructive,
			}
		}
		sr.Top = h2pTop(sp.miss, sess.occ, sess.pcs, topN)
		rep.Specs = append(rep.Specs, sr)
	}
	return rep
}

// ingest streams one request body into the session: sniff the format,
// decode, apply in bounded chunks (checking the deadline and the ingest
// token bucket at every chunk boundary), and commit by journaling a
// snapshot. Nothing is acknowledged before the journal flush returns; on
// ANY error the session's in-memory state is dropped and the journal's
// last snapshot stands, so a failed request rolls back exactly to the
// previous commit and the client retries from the reported cursor.
func (s *Server) ingest(ctx context.Context, sess *session, body io.Reader) (int, error) {
	accepted, err := s.ingestApply(ctx, sess, body)
	if err != nil {
		s.ctr.rollbacks.Add(1)
		s.dropResident(sess)
		return 0, err
	}
	if err := sess.journal.append(sess.buildSnap()); err != nil {
		s.ctr.rollbacks.Add(1)
		s.dropResident(sess)
		return 0, fmt.Errorf("serve: committing session %s: %w", sess.id, err)
	}
	s.ctr.ingested.Add(int64(accepted))
	return accepted, nil
}

// ingestChunk is the unit of admission: deadline and rate are checked
// per chunk, so a huge body cannot blow past either between checks.
const ingestChunk = 4096

func (s *Server) ingestApply(ctx context.Context, sess *session, body io.Reader) (int, error) {
	head := make([]byte, 4)
	n, err := io.ReadFull(body, head)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return 0, bodyError(err)
	}
	head = head[:n]
	if string(head) == "BMT1" || trace.IsColumnar(head) {
		rest, err := io.ReadAll(body)
		if err != nil {
			return 0, bodyError(err)
		}
		mem, err := trace.Decode(append(head, rest...))
		if err != nil {
			return 0, httpErrorf(http.StatusBadRequest, "decoding trace body: %v", err)
		}
		recs := append([]trace.Record(nil), mem.Records()...)
		total := 0
		for len(recs) > 0 {
			chunk := recs
			if len(chunk) > ingestChunk {
				chunk = chunk[:ingestChunk]
			}
			if err := s.admitChunk(ctx, len(chunk)); err != nil {
				return 0, err
			}
			sess.applyChunk(chunk)
			total += len(chunk)
			recs = recs[len(chunk):]
		}
		return total, nil
	}

	// Anything else is the text capture format, parsed record-at-a-time —
	// a body never has to materialize. The body's transport errors are
	// tracked out-of-band: when the limiter cuts the body mid-line, the
	// scanner sees the partial line first and reports a parse error, but
	// the truncation — not the parse — is the real failure.
	tracked := &errTrackReader{r: body}
	sc := trace.NewTextScanner(io.MultiReader(bytes.NewReader(head), tracked))
	sc.SetSites(sess.sites)
	total := 0
	chunk := make([]trace.Record, 0, ingestChunk)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		if err := s.admitChunk(ctx, len(chunk)); err != nil {
			return err
		}
		sess.applyChunk(chunk)
		total += len(chunk)
		chunk = chunk[:0]
		return nil
	}
	for sc.Scan() {
		chunk = append(chunk, sc.Record())
		if len(chunk) == ingestChunk {
			if err := flush(); err != nil {
				return 0, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		if tracked.err != nil {
			return 0, bodyError(tracked.err)
		}
		return 0, httpErrorf(http.StatusBadRequest, "%v", err)
	}
	if err := flush(); err != nil {
		return 0, err
	}
	return total, nil
}

// admitChunk applies the per-chunk gates: the request deadline and the
// shared ingest token bucket.
func (s *Server) admitChunk(ctx context.Context, n int) error {
	if err := ctx.Err(); err != nil {
		return ctxError(err)
	}
	if wait, ok := s.bucket.take(n); !ok {
		s.ctr.overload.Add(1)
		return overloadError("ingest rate", wait)
	}
	return nil
}

// ctxError maps a context failure to its HTTP rendering: the request's
// deadline elapsed or the client went away; either way the work rolled
// back and the client should retry from the committed cursor.
func ctxError(err error) error {
	return &httpError{code: http.StatusRequestTimeout,
		msg: fmt.Sprintf("request abandoned: %v", err), retryAfter: time.Second}
}

// bodyError maps a failure reading the request body. An over-limit body
// is the client's fault (413); anything else — a cut connection, a slow
// loris that tripped the server's read deadline — is reported as 400
// with the transport error, and the request rolls back.
func bodyError(err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return httpErrorf(http.StatusRequestEntityTooLarge, "request body over %d bytes", mbe.Limit)
	}
	return httpErrorf(http.StatusBadRequest, "reading request body: %v", err)
}

// errTrackReader remembers the first transport error a body read hits,
// so the ingest can tell a truncated body from a malformed one even when
// the truncation point parses as garbage first.
type errTrackReader struct {
	r   io.Reader
	err error
}

func (t *errTrackReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err != nil && err != io.EOF && t.err == nil {
		t.err = err
	}
	return n, err
}

// packInt32s encodes the aliasing tracker for a snapshot (little-endian).
func packInt32s(v []int32) []byte {
	out := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(x))
	}
	return out
}

func unpackInt32s(data []byte) ([]int32, error) {
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("owner array length %d is not a multiple of 4", len(data))
	}
	out := make([]int32, len(data)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(data[4*i:]))
	}
	return out, nil
}
