package serve

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The service-layer kill-and-resume suite: the analogue of internal/sim's
// TestKillResumeEquivalence, one layer up. The contract under test is the
// commit-per-request durability rule — everything a client was told is
// committed survives any crash, byte-for-byte, and everything else rolls
// back to the last acknowledged cursor.

// TestKillResumeEquivalence runs every exposed Snapshotter family
// through crash-shaped interruptions:
//
//  1. ingest part of a trace, record the report
//  2. Kill (drop all in-memory state with no journal write — exactly
//     what a process crash loses)
//  3. the report must come back byte-identical, and
//  4. ingesting the remainder must land the session in the same state as
//     an uninterrupted control session fed the whole trace.
func TestKillResumeEquivalence(t *testing.T) {
	for _, spec := range snapSpecs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			s, base := newTestServer(t, Config{})
			mem := testTrace(t, 6000)
			recs := mem.Records()

			victim := createSession(t, base, spec)
			control := createSession(t, base, spec)

			// Control ingests everything in one uninterrupted stream.
			ingestText(t, base, control.ID, textBody(recs))

			// The victim is killed between every chunk.
			cuts := []int{0, 1500, 3000, 4500, len(recs)}
			for i := 0; i+1 < len(cuts); i++ {
				ingestText(t, base, victim.ID, textBody(recs[cuts[i]:cuts[i+1]]))
				before, rep := rawReport(t, base, victim.ID)
				if rep.Cursor != cuts[i+1] {
					t.Fatalf("cursor %d after ingesting to %d", rep.Cursor, cuts[i+1])
				}
				s.Kill()
				after, _ := rawReport(t, base, victim.ID)
				if !bytes.Equal(before, after) {
					t.Fatalf("report changed across kill at cursor %d:\nbefore: %s\nafter:  %s",
						cuts[i+1], before, after)
				}
			}

			rawV, _ := rawReport(t, base, victim.ID)
			rawC, _ := rawReport(t, base, control.ID)
			got := strings.ReplaceAll(string(rawV), victim.ID, "SESSION")
			want := strings.ReplaceAll(string(rawC), control.ID, "SESSION")
			if got != want {
				t.Fatalf("killed-and-resumed state diverged from uninterrupted control:\ngot:  %s\nwant: %s", got, want)
			}
		})
	}
}

// TestServerRestartRecovery: a brand-new Server over the same journal
// directory re-registers every session and serves identical reports —
// process death, not just session eviction.
func TestServerRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	mem := testTrace(t, 3000)

	s1, base1 := newTestServer(t, Config{Dir: dir})
	rep := createSession(t, base1, "bimode:b=11", "smith:a=12")
	ingestText(t, base1, rep.ID, textBody(mem.Records()))
	before, _ := rawReport(t, base1, rep.ID)
	// Simulate a hard stop: drop everything in memory, release handles.
	s1.Kill()
	s1.Close()

	_, base2 := newTestServer(t, Config{Dir: dir})
	after, got := rawReport(t, base2, rep.ID)
	if !bytes.Equal(before, after) {
		t.Fatalf("report changed across server restart:\nbefore: %s\nafter:  %s", before, after)
	}
	if got.Cursor != mem.Len() {
		t.Fatalf("restart lost committed records: cursor %d", got.Cursor)
	}
	// The recovered session is live, not a read-only fossil.
	res := ingestText(t, base2, rep.ID, "0x1234 1\n")
	if res.Report.Cursor != mem.Len()+1 {
		t.Fatalf("recovered session refuses ingest: cursor %d", res.Report.Cursor)
	}
}

// TestUnacknowledgedLossOnly: records in a request that was never
// acknowledged (its body failed mid-stream) are not merely invisible —
// after a kill and resume they were provably never applied.
func TestUnacknowledgedLossOnly(t *testing.T) {
	s, base := newTestServer(t, Config{})
	mem := testTrace(t, 2000)
	recs := mem.Records()

	rep := createSession(t, base, "gshare:i=12,h=12")
	ingestText(t, base, rep.ID, textBody(recs[:1000]))
	committed, _ := rawReport(t, base, rep.ID)

	// A failing body: valid lines followed by garbage. The valid prefix
	// must NOT be committed.
	bad := textBody(recs[1000:1500]) + "0xnope nope\n"
	resp := doJSON(t, "POST", base+"/v1/sessions/"+rep.ID+"/branches", strings.NewReader(bad), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d", resp.StatusCode)
	}
	s.Kill()
	after, got := rawReport(t, base, rep.ID)
	if !bytes.Equal(committed, after) {
		t.Fatalf("failed request leaked state:\nbefore: %s\nafter:  %s", committed, after)
	}
	if got.Cursor != 1000 {
		t.Fatalf("cursor %d, want the last acknowledged 1000", got.Cursor)
	}
}

// TestDamagedJournalQuarantined: interior journal damage makes the
// session unrecoverable — 410, the file set aside as .damaged, never
// guessed-at state.
func TestDamagedJournalQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, base := newTestServer(t, Config{Dir: dir})
	rep := createSession(t, base, "smith:a=12")
	ingestText(t, base, rep.ID, "0x1000 1\n0x2000 0\n")
	ingestText(t, base, rep.ID, "0x1000 0\n")
	s.Kill() // release in-memory state so recovery must read the file

	path := journalPath(dir, rep.ID)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Damage the header line — interior damage, not a torn tail.
	data[10] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	resp := doJSON(t, "GET", base+"/v1/sessions/"+rep.ID, nil, nil)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("damaged session: status %d, want 410", resp.StatusCode)
	}
	if _, err := os.Stat(path + ".damaged"); err != nil {
		t.Fatalf("damaged journal not quarantined: %v", err)
	}
	// The id is gone from the table entirely.
	if resp := doJSON(t, "GET", base+"/v1/sessions/"+rep.ID, nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("quarantined session still registered: status %d", resp.StatusCode)
	}
}

// TestTornTailTolerated: a journal whose final line was cut mid-write (a
// killed writer) recovers to the previous snapshot instead of being
// quarantined.
func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	s, base := newTestServer(t, Config{Dir: dir})
	rep := createSession(t, base, "smith:a=12")
	ingestText(t, base, rep.ID, "0x1000 1\n0x2000 0\n")
	committed, _ := rawReport(t, base, rep.ID)
	ingestText(t, base, rep.ID, "0x3000 1\n")
	s.Kill()

	// Tear the last line: chop the file mid-way through it.
	path := journalPath(dir, rep.ID)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	last := lines[len(lines)-1]
	torn := data[:len(data)-len(last)/2-1]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	after, got := rawReport(t, base, rep.ID)
	if got.Cursor != 2 {
		t.Fatalf("torn tail recovered to cursor %d, want 2", got.Cursor)
	}
	if !bytes.Equal(committed, after) {
		t.Fatalf("torn-tail recovery diverged:\nwant: %s\ngot:  %s", committed, after)
	}
}

// TestJournalCompaction: a long-lived session's journal stays bounded,
// and compaction is invisible to the session's state.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	s, base := newTestServer(t, Config{Dir: dir, CompactBytes: 8 * 1024})
	mem := testTrace(t, 4000)
	recs := mem.Records()

	rep := createSession(t, base, "bimode:b=11")
	for i := 0; i+100 <= len(recs); i += 100 {
		ingestText(t, base, rep.ID, textBody(recs[i:i+100]))
	}
	fi, err := os.Stat(journalPath(dir, rep.ID))
	if err != nil {
		t.Fatal(err)
	}
	// 40 snapshots of a 2^11-bank bimode would be megabytes; compaction
	// must have kept the file near one snapshot's size.
	if fi.Size() > 64*1024 {
		t.Fatalf("journal grew to %d bytes despite CompactBytes=8KiB", fi.Size())
	}

	before, got := rawReport(t, base, rep.ID)
	if got.Cursor != 4000 {
		t.Fatalf("cursor %d", got.Cursor)
	}
	s.Kill()
	after, _ := rawReport(t, base, rep.ID)
	if !bytes.Equal(before, after) {
		t.Fatalf("compacted journal lost state:\nbefore: %s\nafter: %s", before, after)
	}

	// No stray temp files linger.
	matches, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(matches) != 0 {
		t.Fatalf("compaction left temp files: %v", matches)
	}
}
