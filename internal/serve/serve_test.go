package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/synth"
	"bimode/internal/trace"
	"bimode/internal/zoo"
)

// snapSpecs are the Snapshotter-capable families the service exposes;
// the kill-resume suite runs every one of them.
var snapSpecs = []string{"bimode:b=11", "trimode:b=10", "gshare:i=12,h=12", "smith:a=12"}

// testTrace returns a small deterministic synthetic workload.
func testTrace(t *testing.T, dynamic int) *trace.Memory {
	t.Helper()
	p := synth.Profiles()[0].WithDynamic(dynamic)
	return trace.Materialize(synth.MustWorkload(p))
}

// textBody renders records in the text capture format.
func textBody(recs []trace.Record) string {
	var sb strings.Builder
	for _, rec := range recs {
		dir := "0"
		if rec.Taken {
			dir = "1"
		}
		fmt.Fprintf(&sb, "0x%x %s\n", rec.PC, dir)
	}
	return sb.String()
}

// newTestServer builds a Server on a temp dir and serves it over
// httptest; limits default high enough to stay out of the way unless a
// test lowers them.
func newTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts.URL
}

// doJSON performs one request and decodes the response body into out
// (when non-nil), returning the response for status/header checks.
func doJSON(t *testing.T, method, url string, body io.Reader, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("%s %s: reading response: %v", method, url, err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp
}

// createSession opens a session and fails the test on any non-201.
func createSession(t *testing.T, base string, specs ...string) Report {
	t.Helper()
	body, _ := json.Marshal(createRequest{Name: "test", Specs: specs})
	var rep Report
	resp := doJSON(t, "POST", base+"/v1/sessions", bytes.NewReader(body), &rep)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	return rep
}

// ingestText streams a text body into a session, expecting success.
func ingestText(t *testing.T, base, id, body string) ingestResult {
	t.Helper()
	var res ingestResult
	resp := doJSON(t, "POST", base+"/v1/sessions/"+id+"/branches", strings.NewReader(body), &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	return res
}

// rawReport fetches a session report as raw bytes (the byte-equivalence
// currency of the kill-resume suite) plus its parsed form.
func rawReport(t *testing.T, base, id string) ([]byte, Report) {
	t.Helper()
	resp, err := http.Get(base + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: status %d: %s", resp.StatusCode, data)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	return data, rep
}

// TestSessionLifecycle walks the happy path end to end: create, ingest,
// incremental report, list, delete, gone.
func TestSessionLifecycle(t *testing.T) {
	_, base := newTestServer(t, Config{})
	mem := testTrace(t, 5000)
	recs := mem.Records()

	rep := createSession(t, base, "bimode:b=11", "smith:a=12")
	if rep.Cursor != 0 || len(rep.Specs) != 2 {
		t.Fatalf("fresh session: cursor %d, %d specs", rep.Cursor, len(rep.Specs))
	}

	res := ingestText(t, base, rep.ID, textBody(recs[:3000]))
	if res.Accepted != 3000 || res.Report.Cursor != 3000 {
		t.Fatalf("first ingest: accepted %d, cursor %d", res.Accepted, res.Report.Cursor)
	}
	res = ingestText(t, base, rep.ID, textBody(recs[3000:]))
	if res.Report.Cursor != len(recs) {
		t.Fatalf("second ingest: cursor %d, want %d", res.Report.Cursor, len(recs))
	}
	if res.Report.Statics == 0 {
		t.Fatalf("no statics after %d records", len(recs))
	}
	for _, sr := range res.Report.Specs {
		if sr.Mispredicts == 0 {
			t.Errorf("spec %q: zero mispredicts over a synthetic workload", sr.Spec)
		}
		if sr.Predictor == "" || sr.CostBytes == 0 {
			t.Errorf("spec %q: missing predictor identity (%q, %v)", sr.Spec, sr.Predictor, sr.CostBytes)
		}
	}
	// The bimode spec is Indexed: its aliasing proxy and H2P ranking must
	// be populated.
	if a := res.Report.Specs[0].Aliasing; a == nil || a.Counters == 0 {
		t.Errorf("bimode spec: no aliasing report (%+v)", a)
	}
	if len(res.Report.Specs[0].Top) == 0 {
		t.Errorf("bimode spec: empty H2P ranking")
	}

	var list []sessionSummary
	doJSON(t, "GET", base+"/v1/sessions", nil, &list)
	if len(list) != 1 || list[0].ID != rep.ID {
		t.Fatalf("list: %+v", list)
	}

	if resp := doJSON(t, "DELETE", base+"/v1/sessions/"+rep.ID, nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, "GET", base+"/v1/sessions/"+rep.ID, nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session still answers: status %d", resp.StatusCode)
	}
}

// TestIngestFormatsEquivalent streams identical records as text, row
// binary and columnar; the three sessions must end in identical state
// (ids aside) because binary Static ids are remapped by PC.
func TestIngestFormatsEquivalent(t *testing.T) {
	_, base := newTestServer(t, Config{})
	mem := testTrace(t, 4000)

	var row, col bytes.Buffer
	if err := trace.Write(&row, mem); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteColumnar(&col, mem); err != nil {
		t.Fatal(err)
	}
	bodies := map[string][]byte{
		"text": []byte(textBody(mem.Records())),
		"bmt1": row.Bytes(),
		"bmc1": col.Bytes(),
	}

	reports := map[string]string{}
	for name, body := range bodies {
		rep := createSession(t, base, "bimode:b=11", "gshare:i=12,h=12")
		resp := doJSON(t, "POST", base+"/v1/sessions/"+rep.ID+"/branches", bytes.NewReader(body), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s ingest: status %d", name, resp.StatusCode)
		}
		raw, got := rawReport(t, base, rep.ID)
		if got.Cursor != mem.Len() {
			t.Fatalf("%s: cursor %d, want %d", name, got.Cursor, mem.Len())
		}
		reports[name] = strings.ReplaceAll(string(raw), rep.ID, "SESSION")
	}
	if reports["text"] != reports["bmt1"] || reports["text"] != reports["bmc1"] {
		t.Errorf("formats diverged:\ntext: %s\nbmt1: %s\nbmc1: %s",
			reports["text"], reports["bmt1"], reports["bmc1"])
	}
}

// TestCreateDegradation: unusable specs are footnoted away, not fatal —
// unless nothing survives, which is the client's error.
func TestCreateDegradation(t *testing.T) {
	_, base := newTestServer(t, Config{})

	rep := createSession(t, base, "bimode:b=11", "nosuch:x=1", "gag:h=10")
	if len(rep.Specs) != 1 || rep.Specs[0].Spec != "bimode:b=11" {
		t.Fatalf("admitted specs: %+v", rep.Specs)
	}
	if len(rep.Footnotes) != 2 {
		t.Fatalf("footnotes: %v", rep.Footnotes)
	}
	for _, fn := range rep.Footnotes {
		if !strings.Contains(fn, "rejected") {
			t.Errorf("footnote %q does not say rejected", fn)
		}
	}
	// gag is a real family without Snapshotter: its footnote must say so
	// rather than claim the spec is unknown.
	if !strings.Contains(rep.Footnotes[1], "snapshot") {
		t.Errorf("non-snapshotter footnote: %q", rep.Footnotes[1])
	}

	body, _ := json.Marshal(createRequest{Specs: []string{"nosuch:x=1"}})
	if resp := doJSON(t, "POST", base+"/v1/sessions", bytes.NewReader(body), nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("all-bad create: status %d", resp.StatusCode)
	}
	body, _ = json.Marshal(createRequest{})
	if resp := doJSON(t, "POST", base+"/v1/sessions", bytes.NewReader(body), nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty create: status %d", resp.StatusCode)
	}
}

// panicAfterPredictor wraps a predictor to panic on the nth Update —
// the runtime-failure seam for degradation tests.
type panicAfterPredictor struct {
	predictor.Predictor
	left int
}

func (p *panicAfterPredictor) Update(pc uint64, taken bool) {
	p.left--
	if p.left < 0 {
		panic("injected predictor failure")
	}
	p.Predictor.Update(pc, taken)
}

func (p *panicAfterPredictor) Snapshot(dst []byte) []byte {
	return p.Predictor.(predictor.Snapshotter).Snapshot(dst)
}
func (p *panicAfterPredictor) RestoreSnapshot(data []byte) error {
	return p.Predictor.(predictor.Snapshotter).RestoreSnapshot(data)
}

// TestRuntimeDegradation: a spec that panics mid-ingest is disabled with
// a footnote; the session's other specs keep going and later ingests
// succeed.
func TestRuntimeDegradation(t *testing.T) {
	cfg := Config{Build: func(spec string) (predictor.Predictor, error) {
		p, err := zoo.New(spec)
		if err != nil {
			return nil, err
		}
		if spec == "smith:a=12" {
			return &panicAfterPredictor{Predictor: p, left: 100}, nil
		}
		return p, nil
	}}
	_, base := newTestServer(t, cfg)
	mem := testTrace(t, 2000)

	rep := createSession(t, base, "bimode:b=11", "smith:a=12")
	res := ingestText(t, base, rep.ID, textBody(mem.Records()))
	if res.Report.Cursor != mem.Len() {
		t.Fatalf("ingest around the failure: cursor %d, want %d", res.Report.Cursor, mem.Len())
	}
	var failed, live *SpecReport
	for i := range res.Report.Specs {
		if res.Report.Specs[i].Spec == "smith:a=12" {
			failed = &res.Report.Specs[i]
		} else {
			live = &res.Report.Specs[i]
		}
	}
	if failed == nil || !failed.Failed {
		t.Fatalf("injected failure not reported: %+v", res.Report.Specs)
	}
	if live == nil || live.Failed || live.Mispredicts == 0 {
		t.Fatalf("surviving spec damaged: %+v", live)
	}
	found := false
	for _, fn := range res.Report.Footnotes {
		if strings.Contains(fn, "smith:a=12") && strings.Contains(fn, "disabled") {
			found = true
		}
	}
	if !found {
		t.Errorf("no disable footnote: %v", res.Report.Footnotes)
	}

	// The degraded session still ingests, and the failed spec's counts
	// stay frozen.
	frozen := failed.Mispredicts
	res = ingestText(t, base, rep.ID, textBody(mem.Records()[:500]))
	for _, sr := range res.Report.Specs {
		if sr.Spec == "smith:a=12" && sr.Mispredicts != frozen {
			t.Errorf("failed spec counts moved: %d -> %d", frozen, sr.Mispredicts)
		}
	}
}

// TestTransientBuildRetry: construction failures marked sim.Transient
// heal through the bounded-backoff retry loop, invisibly to the client.
func TestTransientBuildRetry(t *testing.T) {
	fails := 2
	cfg := Config{
		MaxRetries:   3,
		RetryBackoff: time.Millisecond,
		Build: func(spec string) (predictor.Predictor, error) {
			if fails > 0 {
				fails--
				return nil, sim.Transient(fmt.Errorf("injected construction failure"))
			}
			return zoo.New(spec)
		},
	}
	s, base := newTestServer(t, cfg)
	rep := createSession(t, base, "bimode:b=11")
	if len(rep.Specs) != 1 || len(rep.Footnotes) != 0 {
		t.Fatalf("transient failures leaked into the session: %+v", rep)
	}
	if got := s.ctr.buildRetries.Load(); got != 2 {
		t.Errorf("build_retries = %d, want 2", got)
	}

	// A permanent failure, by contrast, burns no retries and footnotes.
	permanent := Config{
		RetryBackoff: time.Millisecond,
		Build: func(spec string) (predictor.Predictor, error) {
			return nil, fmt.Errorf("permanently broken")
		},
	}
	_, base2 := newTestServer(t, permanent)
	body, _ := json.Marshal(createRequest{Specs: []string{"bimode:b=11"}})
	if resp := doJSON(t, "POST", base2+"/v1/sessions", bytes.NewReader(body), nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("permanent failure: status %d", resp.StatusCode)
	}
}

// TestBadBodies: decode failures are client errors that roll back —
// the cursor never moves, and a clean retry succeeds.
func TestBadBodies(t *testing.T) {
	_, base := newTestServer(t, Config{})
	mem := testTrace(t, 1000)
	rep := createSession(t, base, "bimode:b=11")
	url := base + "/v1/sessions/" + rep.ID + "/branches"

	good := textBody(mem.Records()[:100])
	ingestText(t, base, rep.ID, good)

	cases := []struct {
		name string
		body []byte
	}{
		{"bad text line", []byte("0x1000 1\n0x2000 maybe\n")},
		{"truncated bmt1", func() []byte {
			var buf bytes.Buffer
			if err := trace.Write(&buf, mem); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()[:buf.Len()-5]
		}()},
		{"corrupt bmc1", func() []byte {
			var buf bytes.Buffer
			if err := trace.WriteColumnar(&buf, mem); err != nil {
				t.Fatal(err)
			}
			data := buf.Bytes()
			data[len(data)/2] ^= 0x40
			return data
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := doJSON(t, "POST", url, bytes.NewReader(tc.body), nil)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			_, got := rawReport(t, base, rep.ID)
			if got.Cursor != 100 {
				t.Fatalf("failed ingest moved the cursor to %d", got.Cursor)
			}
		})
	}

	// Line numbers survive into the error body, exactly as ImportText
	// reports them.
	var errResp errorBody
	doJSON(t, "POST", url, strings.NewReader("0x1 1\n\n0x2 nope\n"), &errResp)
	if !strings.Contains(errResp.Error, "line 3") {
		t.Errorf("text error lost its line number: %q", errResp.Error)
	}

	// And the rolled-back session still works.
	res := ingestText(t, base, rep.ID, good)
	if res.Report.Cursor != 200 {
		t.Fatalf("post-rollback ingest: cursor %d, want 200", res.Report.Cursor)
	}
}

// TestAdmissionBodyLimit: an oversized body is refused with 413 and no
// state change.
func TestAdmissionBodyLimit(t *testing.T) {
	_, base := newTestServer(t, Config{MaxBodyBytes: 1024})
	rep := createSession(t, base, "smith:a=12")
	big := strings.Repeat("0x1000 1\n", 1024)
	resp := doJSON(t, "POST", base+"/v1/sessions/"+rep.ID+"/branches", strings.NewReader(big), nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body: status %d, want 413", resp.StatusCode)
	}
	_, got := rawReport(t, base, rep.ID)
	if got.Cursor != 0 {
		t.Fatalf("oversize body committed %d records", got.Cursor)
	}
}

// TestAdmissionIngestRate: the token bucket refuses work past the budget
// with 429 and an honest Retry-After, deterministically under a fake
// clock.
func TestAdmissionIngestRate(t *testing.T) {
	now := time.Unix(1000, 0)
	_, base := newTestServer(t, Config{
		IngestRate:  1000,
		IngestBurst: 1000,
		Now:         func() time.Time { return now },
	})
	mem := testTrace(t, 1500)
	rep := createSession(t, base, "smith:a=12")
	url := base + "/v1/sessions/" + rep.ID + "/branches"

	// 1000 records fit the burst exactly...
	ingestText(t, base, rep.ID, textBody(mem.Records()[:1000]))
	// ...and the very next record is over budget until the clock moves.
	resp := doJSON(t, "POST", url, strings.NewReader(textBody(mem.Records()[1000:1001])), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget ingest: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}
	_, got := rawReport(t, base, rep.ID)
	if got.Cursor != 1000 {
		t.Fatalf("rejected ingest moved the cursor to %d", got.Cursor)
	}

	// Advancing the clock refills the bucket and the retry succeeds.
	now = now.Add(time.Second)
	res := ingestText(t, base, rep.ID, textBody(mem.Records()[1000:1500]))
	if res.Report.Cursor != 1500 {
		t.Fatalf("post-refill ingest: cursor %d", res.Report.Cursor)
	}
}

// TestAdmissionInFlight: with a single in-flight slot, a second request
// is turned away immediately with 429 rather than queued.
func TestAdmissionInFlight(t *testing.T) {
	_, base := newTestServer(t, Config{MaxInFlight: 1})
	rep := createSession(t, base, "smith:a=12")
	url := base + "/v1/sessions/" + rep.ID + "/branches"

	// Hold the only slot with a request whose body never finishes.
	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest("POST", url, pr)
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	if _, err := pw.Write([]byte("0x1000 1\n")); err != nil {
		t.Fatal(err)
	}
	// The slot is held from the moment the handler starts; poll until the
	// gate is visibly occupied, then assert rejection.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp := doJSON(t, "GET", base+"/v1/sessions/"+rep.ID, nil, nil)
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Errorf("429 without Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("in-flight gate never rejected (last status %d)", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	pw.Close()
	if err := <-errc; err != nil {
		t.Fatalf("held request: %v", err)
	}
}

// TestAdmissionSessionCap: the session table is bounded.
func TestAdmissionSessionCap(t *testing.T) {
	_, base := newTestServer(t, Config{MaxSessions: 1})
	createSession(t, base, "smith:a=12")
	body, _ := json.Marshal(createRequest{Specs: []string{"smith:a=12"}})
	resp := doJSON(t, "POST", base+"/v1/sessions", bytes.NewReader(body), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap create: status %d, want 429", resp.StatusCode)
	}
}

// TestEvictionTransparent: with one resident slot, two sessions ingest
// alternately; every request after the first evicts the other session,
// and none of it is visible in the reports.
func TestEvictionTransparent(t *testing.T) {
	s, base := newTestServer(t, Config{MaxResident: 1})
	mem := testTrace(t, 3000)
	recs := mem.Records()

	a := createSession(t, base, "bimode:b=11")
	b := createSession(t, base, "bimode:b=11")
	for i := 0; i < 3; i++ {
		lo, hi := i*1000, (i+1)*1000
		ingestText(t, base, a.ID, textBody(recs[lo:hi]))
		ingestText(t, base, b.ID, textBody(recs[lo:hi]))
	}
	if ev := s.ctr.evictions.Load(); ev == 0 {
		t.Fatalf("no evictions with MaxResident=1 and two active sessions")
	}
	rawA, repA := rawReport(t, base, a.ID)
	rawB, repB := rawReport(t, base, b.ID)
	if repA.Cursor != 3000 || repB.Cursor != 3000 {
		t.Fatalf("cursors %d/%d, want 3000", repA.Cursor, repB.Cursor)
	}
	// Identical inputs, identical state: the two sessions' reports differ
	// only by id.
	if strings.ReplaceAll(string(rawA), a.ID, "X") != strings.ReplaceAll(string(rawB), b.ID, "X") {
		t.Errorf("eviction perturbed session state:\nA: %s\nB: %s", rawA, rawB)
	}
}

// TestDrain: BeginDrain flips readiness and refuses new sessions while
// existing sessions keep working.
func TestDrain(t *testing.T) {
	s, base := newTestServer(t, Config{})
	rep := createSession(t, base, "smith:a=12")

	s.BeginDrain()
	if resp := doJSON(t, "GET", base+"/readyz", nil, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, "GET", base+"/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz: status %d", resp.StatusCode)
	}
	body, _ := json.Marshal(createRequest{Specs: []string{"smith:a=12"}})
	if resp := doJSON(t, "POST", base+"/v1/sessions", bytes.NewReader(body), nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining create: status %d", resp.StatusCode)
	}
	res := ingestText(t, base, rep.ID, "0x1000 1\n0x2000 0\n")
	if res.Report.Cursor != 2 {
		t.Fatalf("draining ingest broken: %+v", res.Report)
	}
}

// TestPanicRecovery: a handler-level panic (not a per-spec one) becomes
// a 500, the server survives, and the panic counter records it.
func TestPanicRecovery(t *testing.T) {
	cfg := Config{Build: func(spec string) (predictor.Predictor, error) {
		panic("wild panic, not an error")
	}}
	// zoo.New-style builders convert panics; this one deliberately does
	// not, and buildOnce must contain it.
	s, base := newTestServer(t, cfg)
	body, _ := json.Marshal(createRequest{Specs: []string{"bimode:b=11"}})
	resp := doJSON(t, "POST", base+"/v1/sessions", bytes.NewReader(body), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("builder panic: status %d (want 400: spec rejected)", resp.StatusCode)
	}
	if s.ctr.panics.Load() != 0 {
		t.Fatalf("contained panic leaked to the recovery middleware")
	}
	if resp := doJSON(t, "GET", base+"/healthz", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("server did not survive: %d", resp.StatusCode)
	}
}
