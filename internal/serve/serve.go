// Package serve is the prediction service: branch-prediction simulation
// as a long-lived HTTP service (cmd/predserve) rather than a batch run.
// Clients open sessions naming predictor specs, stream branch traces in
// any of the repository's formats (text capture, "BMT1" row binary,
// "BMC1" columnar), and read incremental mispredict / aliasing / H2P
// reports as the trace accumulates.
//
// The design center is crash-safety under hostile conditions — the
// robustness contract the chaos suite (chaos_test.go) enforces:
//
//   - Durability. Every successful ingest journals a full session
//     snapshot (predictor state included, via predictor.Snapshotter)
//     before it is acknowledged. A crash, kill, or eviction loses only
//     requests that were never acknowledged; the client resumes from the
//     reported cursor and reports come back byte-identical.
//   - Bounded memory. Sessions past Config.MaxResident are spilled to
//     their journals LRU-first; the total session count is capped.
//   - Admission control. Concurrency (Config.MaxInFlight), body size
//     (Config.MaxBodyBytes) and ingest rate (Config.IngestRate) are all
//     bounded, with 429 + Retry-After — never queueing collapse.
//   - Graceful degradation. A spec that fails to build or panics at
//     runtime is footnoted and disabled; the session keeps serving its
//     surviving specs (the cmd/paper partial-report idiom).
//   - Graceful drain. BeginDrain flips /readyz and refuses new
//     sessions while in-flight work completes.
package serve

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bimode/internal/predictor"
	"bimode/internal/zoo"
)

// Config parameterizes a Server. The zero value is usable: every limit
// defaults to the production setting noted on its field.
type Config struct {
	// Dir is where session journals live (default: a fresh temp dir, in
	// which case nothing survives the process — pass a real directory to
	// get crash recovery).
	Dir string

	// MaxSessions caps live sessions, resident or spilled (default 1024).
	MaxSessions int
	// MaxResident caps sessions with predictors in memory; the least
	// recently used spill to their journals past it (default 64).
	MaxResident int
	// MaxInFlight caps concurrently executing session requests; excess
	// requests get 429 immediately (default 64).
	MaxInFlight int
	// MaxBodyBytes caps one request body (default 8 MiB).
	MaxBodyBytes int64
	// IngestRate / IngestBurst rate-limit ingested records per second
	// across all sessions; 0 disables (the default).
	IngestRate  float64
	IngestBurst float64
	// RequestTimeout bounds one request's processing (default 30s).
	RequestTimeout time.Duration
	// MaxRetries and RetryBackoff govern predictor-construction retries
	// on transient (sim.Retryable) failures: doubling backoff from
	// RetryBackoff, MaxRetries additional attempts (defaults 3, 10ms).
	MaxRetries   int
	RetryBackoff time.Duration
	// CompactBytes is the journal size that triggers compaction to
	// header + latest snapshot (default 4 MiB).
	CompactBytes int64
	// TopN bounds each spec report's H2P ranking (default 5).
	TopN int

	// Build constructs a predictor from a spec (default zoo.New); tests
	// inject fault-wrapped builders here.
	Build func(spec string) (predictor.Predictor, error)
	// Now is the clock behind the token bucket and uptime (default
	// time.Now); tests inject a fake for deterministic admission.
	Now func() time.Time
}

func (c Config) withDefaults() (Config, error) {
	if c.Dir == "" {
		dir, err := os.MkdirTemp("", "predserve")
		if err != nil {
			return c, err
		}
		c.Dir = dir
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.MaxResident <= 0 {
		c.MaxResident = 64
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.CompactBytes <= 0 {
		c.CompactBytes = 4 << 20
	}
	if c.TopN == 0 {
		c.TopN = 5
	}
	if c.Build == nil {
		c.Build = zoo.New
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c, nil
}

// counters is the server's own /varz surface: plain atomics, one word
// per event class, cheap enough to bump on every request.
type counters struct {
	requests        atomic.Int64
	sessionsCreated atomic.Int64
	sessionsDeleted atomic.Int64
	ingested        atomic.Int64
	evictions       atomic.Int64
	restores        atomic.Int64
	rollbacks       atomic.Int64
	overload        atomic.Int64
	panics          atomic.Int64
	buildRetries    atomic.Int64
}

// Server is the prediction service. Create with New, expose via Handler,
// stop with BeginDrain + Close.
type Server struct {
	cfg    Config
	bucket *tokenBucket
	gate   inflightGate
	mux    *http.ServeMux
	start  time.Time
	ctr    counters

	draining atomic.Bool

	mu       sync.Mutex // guards sessions + lru; always AFTER a session lock
	sessions map[string]*session
	lru      *list.List // resident sessions, front = most recently used
}

// New builds a Server, scanning cfg.Dir for journals of previous
// incarnations: every readable journal re-registers its session
// (spilled — state loads on first touch), an unreadable one is
// quarantined aside so the id can live again.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		bucket:   newTokenBucket(cfg.IngestRate, cfg.IngestBurst, cfg.Now),
		gate:     newInflightGate(cfg.MaxInFlight),
		start:    cfg.Now(),
		sessions: map[string]*session{},
		lru:      list.New(),
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".session") {
			continue
		}
		path := filepath.Join(cfg.Dir, name)
		hdr, err := readSessionHeader(path)
		if err != nil {
			quarantine(path)
			continue
		}
		id := strings.TrimSuffix(name, ".session")
		if hdr.ID != id {
			quarantine(path)
			continue
		}
		s.sessions[id] = &session{
			id:      id,
			name:    hdr.Name,
			mu:      make(chan struct{}, 1),
			journal: &sessionJournal{path: path, hdr: hdr},
		}
	}
	s.routes()
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /varz", s.handleVarz)
	s.mux.Handle("POST /v1/sessions", s.guard(s.handleCreate))
	s.mux.Handle("GET /v1/sessions", s.guard(s.handleList))
	s.mux.Handle("GET /v1/sessions/{id}", s.guard(s.handleReport))
	s.mux.Handle("POST /v1/sessions/{id}/branches", s.guard(s.handleIngest))
	s.mux.Handle("DELETE /v1/sessions/{id}", s.guard(s.handleDelete))
}

// guard is the middleware stack of every /v1 route: panic-to-500, the
// in-flight gate, the per-request deadline, and the body-size cap.
func (s *Server) guard(fn func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.ctr.requests.Add(1)
		defer func() {
			if rec := recover(); rec != nil {
				s.ctr.panics.Add(1)
				writeError(w, httpErrorf(http.StatusInternalServerError, "internal error: %v", rec))
			}
		}()
		if !s.gate.tryAcquire() {
			s.ctr.overload.Add(1)
			writeError(w, overloadError("too many requests in flight", time.Second))
			return
		}
		defer s.gate.release()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		fn(w, r)
	})
}

// createRequest is the body of POST /v1/sessions.
type createRequest struct {
	Name  string   `json:"name"`
	Specs []string `json:"specs"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, httpErrorf(http.StatusServiceUnavailable, "draining: not accepting new sessions"))
		return
	}
	var req createRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, bodyErrorOrBadJSON(err))
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, httpErrorf(http.StatusBadRequest, "no predictor specs requested"))
		return
	}
	ctx := r.Context()

	// Build every requested spec, admitting the Snapshotter-capable ones
	// and footnoting the rest — per-spec degradation from the first
	// request on. Zero admissible specs is a client error, not a session.
	var admitted []string
	var footnotes []string
	var specs []*specState
	for _, spec := range req.Specs {
		p, err := s.buildPredictor(ctx, spec)
		if err != nil {
			footnotes = append(footnotes, fmt.Sprintf("spec %q rejected: %v", spec, err))
			continue
		}
		sp, err := newSpecState(spec, p)
		if err != nil {
			footnotes = append(footnotes, fmt.Sprintf("spec %q rejected: %v", spec, err))
			continue
		}
		admitted = append(admitted, spec)
		specs = append(specs, sp)
	}
	if len(admitted) == 0 {
		writeError(w, httpErrorf(http.StatusBadRequest,
			"no usable predictor specs (%s)", strings.Join(footnotes, "; ")))
		return
	}

	id, err := newSessionID()
	if err != nil {
		writeError(w, err)
		return
	}
	hdr := sessionHeader{ID: id, Name: req.Name, Specs: admitted, Footnotes: footnotes}
	journal, err := createSessionJournal(journalPath(s.cfg.Dir, id), hdr, s.cfg.CompactBytes)
	if err != nil {
		writeError(w, fmt.Errorf("serve: creating session journal: %w", err))
		return
	}
	sess := &session{
		id:        id,
		name:      req.Name,
		mu:        make(chan struct{}, 1),
		resident:  true,
		journal:   journal,
		specs:     specs,
		footnotes: append([]string(nil), footnotes...),
		sites:     map[uint64]uint32{},
	}

	s.mu.Lock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		journal.remove()
		s.ctr.overload.Add(1)
		writeError(w, overloadError("session table full", 5*time.Second))
		return
	}
	s.sessions[id] = sess
	sess.lruToken = s.lru.PushFront(sess)
	s.mu.Unlock()
	s.ctr.sessionsCreated.Add(1)

	rep := sess.report(s.cfg.TopN)
	s.enforceResidentCap(sess)
	writeJSON(w, http.StatusCreated, rep)
}

// sessionSummary is one row of GET /v1/sessions.
type sessionSummary struct {
	ID       string `json:"id"`
	Name     string `json:"name,omitempty"`
	Resident bool   `json:"resident"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]sessionSummary, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sessionSummary{ID: sess.id, Name: sess.name, Resident: sess.resident})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	s.withSession(w, r, func(ctx context.Context, sess *session) (any, int, error) {
		return sess.report(s.cfg.TopN), http.StatusOK, nil
	})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.withSession(w, r, func(ctx context.Context, sess *session) (any, int, error) {
		accepted, err := s.ingest(ctx, sess, r.Body)
		if err != nil {
			return nil, 0, err
		}
		return ingestResult{Accepted: accepted, Report: sess.report(s.cfg.TopN)}, http.StatusOK, nil
	})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		writeError(w, httpErrorf(http.StatusNotFound, "no session %q", id))
		return
	}
	if err := sess.lock(r.Context()); err != nil {
		writeError(w, err)
		return
	}
	defer sess.unlock()
	s.mu.Lock()
	delete(s.sessions, id)
	if sess.lruToken != nil {
		s.lru.Remove(sess.lruToken.(*list.Element))
		sess.lruToken = nil
	}
	s.mu.Unlock()
	sess.resident = false
	sess.specs = nil
	sess.journal.remove()
	s.ctr.sessionsDeleted.Add(1)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// withSession runs fn with the named session locked and resident,
// touching the LRU and enforcing the resident cap afterwards.
func (s *Server) withSession(w http.ResponseWriter, r *http.Request,
	fn func(ctx context.Context, sess *session) (any, int, error)) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		writeError(w, httpErrorf(http.StatusNotFound, "no session %q", id))
		return
	}
	ctx := r.Context()
	if err := sess.lock(ctx); err != nil {
		writeError(w, err)
		return
	}
	v, code, err := func() (any, int, error) {
		defer sess.unlock()
		if err := s.makeResident(ctx, sess); err != nil {
			return nil, 0, err
		}
		s.touch(sess)
		return fn(ctx, sess)
	}()
	if err != nil {
		writeError(w, err)
		return
	}
	s.enforceResidentCap(sess)
	writeJSON(w, code, v)
}

// makeResident loads a spilled session from its journal. Caller holds
// the session lock. A journal that cannot be trusted is quarantined and
// the session unregistered: 410 Gone, never guessed-at state.
func (s *Server) makeResident(ctx context.Context, sess *session) error {
	if sess.resident {
		return nil
	}
	path := sess.journal.path
	journal, snap, err := openSessionJournal(path, s.cfg.CompactBytes)
	if err == nil {
		sess.journal = journal
		err = s.restoreState(ctx, sess, snap)
		if err != nil {
			journal.close()
		}
	}
	if err != nil {
		quarantine(path)
		s.mu.Lock()
		delete(s.sessions, sess.id)
		s.mu.Unlock()
		return httpErrorf(http.StatusGone, "session %s unrecoverable: %v", sess.id, err)
	}
	sess.resident = true
	s.mu.Lock()
	sess.lruToken = s.lru.PushFront(sess)
	s.mu.Unlock()
	s.ctr.restores.Add(1)
	return nil
}

// dropResident spills a session: journal closed, every byte of in-memory
// state discarded. Caller holds the session lock. This is the one
// transition shared by LRU eviction, rollback-on-error, and the chaos
// suite's Kill — state reloads from the last committed snapshot either
// way, which is what makes all three safe.
func (s *Server) dropResident(sess *session) {
	if !sess.resident {
		return
	}
	sess.journal.close()
	sess.resident = false
	sess.specs = nil
	sess.pcs, sess.occ, sess.sites, sess.footnotes = nil, nil, nil, nil
	sess.cursor = 0
	s.mu.Lock()
	if sess.lruToken != nil {
		s.lru.Remove(sess.lruToken.(*list.Element))
		sess.lruToken = nil
	}
	s.mu.Unlock()
}

// touch marks a resident session most recently used.
func (s *Server) touch(sess *session) {
	s.mu.Lock()
	if sess.lruToken != nil {
		s.lru.MoveToFront(sess.lruToken.(*list.Element))
	}
	s.mu.Unlock()
}

// enforceResidentCap spills least-recently-used sessions until the
// resident count fits. It runs with NO session lock held (lock order:
// session before server), locking each victim in turn; current is left
// alone so a request never evicts its own session.
func (s *Server) enforceResidentCap(current *session) {
	for {
		s.mu.Lock()
		if s.lru.Len() <= s.cfg.MaxResident {
			s.mu.Unlock()
			return
		}
		var victim *session
		for e := s.lru.Back(); e != nil; e = e.Prev() {
			if cand := e.Value.(*session); cand != current {
				victim = cand
				break
			}
		}
		s.mu.Unlock()
		if victim == nil {
			return
		}
		// The victim may be mid-request; its lock serializes us behind it.
		// Re-check residency under the lock — it may have been evicted or
		// deleted while we waited.
		victim.mu <- struct{}{}
		if victim.resident {
			s.dropResident(victim)
			s.ctr.evictions.Add(1)
		}
		<-victim.mu
	}
}

// Kill simulates a crash of every resident session: in-memory state is
// dropped WITHOUT a final journal write, exactly as a killed process
// would lose it. The chaos suite uses it to prove that acknowledged
// state — and only acknowledged state — survives.
func (s *Server) Kill() {
	for _, sess := range s.snapshotSessions() {
		sess.mu <- struct{}{}
		s.dropResident(sess)
		<-sess.mu
	}
}

// KillSession crashes one session; see Kill.
func (s *Server) KillSession(id string) bool {
	s.mu.Lock()
	sess := s.sessions[id]
	s.mu.Unlock()
	if sess == nil {
		return false
	}
	sess.mu <- struct{}{}
	s.dropResident(sess)
	<-sess.mu
	return true
}

// BeginDrain starts a graceful shutdown: /readyz goes unready and new
// sessions are refused, while existing sessions keep serving (their
// state is durable; clients finish or resume elsewhere).
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close releases every resident session's journal handle. The server
// must not serve requests afterwards.
func (s *Server) Close() error {
	for _, sess := range s.snapshotSessions() {
		sess.mu <- struct{}{}
		s.dropResident(sess)
		<-sess.mu
	}
	return nil
}

func (s *Server) snapshotSessions() []*session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// varzPayload is the /varz document: the server's own counters plus the
// process-wide sim_* expvars (scheduler retries, injected faults, ...)
// the rest of the runtime already publishes.
type varzPayload struct {
	UptimeSeconds float64                    `json:"uptime_seconds"`
	Server        map[string]int64           `json:"server"`
	Process       map[string]json.RawMessage `json:"process"`
}

func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.varz())
}

func (s *Server) varz() varzPayload {
	v := varzPayload{
		UptimeSeconds: s.cfg.Now().Sub(s.start).Seconds(),
		Server: map[string]int64{
			"requests":         s.ctr.requests.Load(),
			"sessions_created": s.ctr.sessionsCreated.Load(),
			"sessions_deleted": s.ctr.sessionsDeleted.Load(),
			"records_ingested": s.ctr.ingested.Load(),
			"evictions":        s.ctr.evictions.Load(),
			"restores":         s.ctr.restores.Load(),
			"rollbacks":        s.ctr.rollbacks.Load(),
			"overload_rejects": s.ctr.overload.Load(),
			"panics_recovered": s.ctr.panics.Load(),
			"build_retries":    s.ctr.buildRetries.Load(),
		},
		Process: map[string]json.RawMessage{},
	}
	expvar.Do(func(kv expvar.KeyValue) {
		if strings.HasPrefix(kv.Key, "sim_") {
			v.Process[kv.Key] = json.RawMessage(kv.Value.String())
		}
	})
	return v
}

// newSessionID draws a 64-bit random id, hex-encoded: filesystem- and
// URL-safe, dense enough that collisions within MaxSessions are
// negligible (and caught by the map insert being keyed).
func newSessionID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("serve: generating session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// bodyErrorOrBadJSON maps a create-body decode failure.
func bodyErrorOrBadJSON(err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return httpErrorf(http.StatusRequestEntityTooLarge, "request body over %d bytes", mbe.Limit)
	}
	return httpErrorf(http.StatusBadRequest, "decoding request: %v", err)
}
