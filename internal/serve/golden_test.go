package serve

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s\nIf the change is intentional, rerun with -update.",
			name, got, want)
	}
}

// goldenGet performs one request against a fixed-clock server and
// returns status plus raw body.
func goldenGet(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

func goldenServer(t *testing.T) *Server {
	t.Helper()
	fixed := time.Unix(1700000000, 0)
	s, err := New(Config{Dir: t.TempDir(), Now: func() time.Time { return fixed }})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestGoldenHealthz pins the /healthz payload.
func TestGoldenHealthz(t *testing.T) {
	code, body := goldenGet(t, goldenServer(t), "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	checkGolden(t, "healthz.json.golden", body)
}

// TestGoldenReadyz pins both readiness states.
func TestGoldenReadyz(t *testing.T) {
	s := goldenServer(t)
	code, body := goldenGet(t, s, "/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz: %d", code)
	}
	checkGolden(t, "readyz.json.golden", body)

	s.BeginDrain()
	code, body = goldenGet(t, s, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: %d", code)
	}
	checkGolden(t, "readyz_draining.json.golden", body)
}

// TestGoldenVarz pins the /varz document shape: every counter name the
// dashboards key on, with the timing-and-load-dependent values zeroed
// (uptime is already 0 under the fixed clock; the process-wide sim_*
// counters are shared with every other test in the binary, so only
// their presence is pinned, not their values).
func TestGoldenVarz(t *testing.T) {
	s := goldenServer(t)
	code, body := goldenGet(t, s, "/varz")
	if code != http.StatusOK {
		t.Fatalf("varz: %d", code)
	}
	var v varzPayload
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatalf("varz is not valid JSON: %v\n%s", err, body)
	}
	for k := range v.Process {
		v.Process[k] = json.RawMessage("0")
	}
	normalized, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "varz.json.golden", string(normalized)+"\n")
}

// TestRouteSmoke hits every registered route once, pinning the
// status-code surface (including method discipline: the mux's method
// patterns must reject mismatched verbs).
func TestRouteSmoke(t *testing.T) {
	_, base := newTestServer(t, Config{})
	rep := createSession(t, base, "smith:a=12")

	cases := []struct {
		method, path string
		body         string
		want         int
	}{
		{"GET", "/healthz", "", http.StatusOK},
		{"GET", "/readyz", "", http.StatusOK},
		{"GET", "/varz", "", http.StatusOK},
		{"GET", "/v1/sessions", "", http.StatusOK},
		{"GET", "/v1/sessions/" + rep.ID, "", http.StatusOK},
		{"POST", "/v1/sessions/" + rep.ID + "/branches", "0x10 1\n", http.StatusOK},
		{"GET", "/v1/sessions/nope", "", http.StatusNotFound},
		{"POST", "/v1/sessions/nope/branches", "0x10 1\n", http.StatusNotFound},
		{"DELETE", "/v1/sessions/nope", "", http.StatusNotFound},
		{"PUT", "/v1/sessions", "", http.StatusMethodNotAllowed},
		{"DELETE", "/healthz", "", http.StatusMethodNotAllowed},
		{"GET", "/nope", "", http.StatusNotFound},
		{"DELETE", "/v1/sessions/" + rep.ID, "", http.StatusOK},
	}
	for _, tc := range cases {
		var body io.Reader
		if tc.body != "" {
			body = strings.NewReader(tc.body)
		}
		req, err := http.NewRequest(tc.method, base+tc.path, body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}
