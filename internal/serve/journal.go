package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// The per-session journal: an append-only JSONL file, one per session,
// holding the session's immutable header followed by one full state
// snapshot per committed ingest request. It follows the idiom of
// sim.Journal (PR 5) — every line flushed as written, a torn trailing
// line tolerated as the residue of a killed writer, damage anywhere else
// refused rather than guessed at — but where sim.Journal checkpoints a
// batch run's (seq, idx) cells, this journal checkpoints a live session:
// the last good snapshot line IS the session's durable state, and a
// server (re)start or an LRU eviction recovers a session by replaying
// nothing — it just reloads that snapshot.
//
// One writer per journal: a session's requests are serialized under the
// session lock, so exactly one goroutine ever appends to a given file
// (the invariant sim.Journal documents in DESIGN.md §11; the concurrent-
// sessions test there pins that many journals in parallel are fine, one
// writer each).
//
// Growth is bounded by compaction: once the file exceeds the configured
// threshold, it is rewritten as header + latest snapshot into a temp
// file and atomically renamed into place, so a long-lived session's
// journal stays proportional to its state, not its request count.

// journalVersion guards the line schema.
const journalVersion = 1

// sessionHeader is the journal's first line: the session's identity and
// admitted plan, immutable for the session's life.
type sessionHeader struct {
	V         int      `json:"v"`
	ID        string   `json:"id"`
	Name      string   `json:"name,omitempty"`
	Specs     []string `json:"specs"`
	Footnotes []string `json:"footnotes,omitempty"`
}

// sessionSnap is one committed state snapshot: everything needed to
// rebuild the session exactly — the site table (dense static id -> PC,
// so the slice index is the id), per-static occurrence counts, the
// cursor, runtime footnotes accrued since creation, and per-spec state.
type sessionSnap struct {
	Cursor    int        `json:"cursor"`
	PCs       []uint64   `json:"pcs,omitempty"`
	Occ       []int64    `json:"occ,omitempty"`
	Footnotes []string   `json:"footnotes,omitempty"`
	Specs     []specSnap `json:"specs"`
}

// specSnap is one predictor's slice of a snapshot. State carries the
// predictor.Snapshotter bytes; Last packs the aliasing tracker's
// consulted-counter ownership array (little-endian int32s). A failed
// spec (disabled by a runtime panic, see session.runSpecChunk) keeps its
// frozen counts but no State.
type specSnap struct {
	Spec             string  `json:"spec"`
	Mispredicts      int64   `json:"mispredicts"`
	Miss             []int64 `json:"miss,omitempty"`
	State            []byte  `json:"state,omitempty"`
	Last             []byte  `json:"last,omitempty"`
	AliasConflicts   int64   `json:"alias_conflicts"`
	AliasDestructive int64   `json:"alias_destructive"`
	Failed           bool    `json:"failed,omitempty"`
}

// journalLine is the on-disk union: exactly one field set per line.
type journalLine struct {
	Header *sessionHeader `json:"header,omitempty"`
	Snap   *sessionSnap   `json:"snap,omitempty"`
}

// sessionJournal is the open handle a resident session appends through.
type sessionJournal struct {
	path      string
	hdr       sessionHeader
	f         *os.File
	w         *bufio.Writer
	size      int64
	compactAt int64
}

// journalPath maps a session id to its file.
func journalPath(dir, id string) string {
	return filepath.Join(dir, id+".session")
}

// createSessionJournal starts a fresh journal, writing the header line.
func createSessionJournal(path string, hdr sessionHeader, compactAt int64) (*sessionJournal, error) {
	hdr.V = journalVersion
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	j := &sessionJournal{path: path, hdr: hdr, f: f, w: bufio.NewWriter(f), compactAt: compactAt}
	if err := j.writeLine(journalLine{Header: &j.hdr}); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return j, nil
}

// readSessionHeader parses just the header line; the startup scan uses
// it to register spilled sessions without loading their state.
func readSessionHeader(path string) (sessionHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return sessionHeader{}, err
	}
	defer f.Close()
	hdr, _, err := loadJournal(f)
	return hdr, err
}

// openSessionJournal loads a journal — header plus the last good
// snapshot, nil if none was ever committed — and reopens it for
// appending. A torn final line is tolerated; any other damage is an
// error and the session is unrecoverable by contract (the caller
// quarantines the file rather than serving guessed state).
func openSessionJournal(path string, compactAt int64) (*sessionJournal, *sessionSnap, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, nil, err
	}
	hdr, snap, err := loadJournal(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	j := &sessionJournal{path: path, hdr: hdr, f: f, w: bufio.NewWriter(f), size: size, compactAt: compactAt}
	return j, snap, nil
}

// loadJournal scans r, returning the header and the last good snapshot.
func loadJournal(r io.Reader) (sessionHeader, *sessionSnap, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var hdr sessionHeader
	var snap *sessionSnap
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var line journalLine
		if err := json.Unmarshal(raw, &line); err != nil {
			// The torn-tail rule of sim.Journal: a malformed final line is
			// the residue of a killed writer and loses only the request it
			// was acknowledging; malformed anywhere else, the file lies.
			if lineNo > 1 && !sc.Scan() {
				break
			}
			return hdr, nil, fmt.Errorf("serve: session journal line %d malformed: %v", lineNo, err)
		}
		switch {
		case lineNo == 1:
			if line.Header == nil {
				return hdr, nil, fmt.Errorf("serve: session journal does not start with a header")
			}
			if line.Header.V != journalVersion {
				return hdr, nil, fmt.Errorf("serve: session journal version %d, want %d", line.Header.V, journalVersion)
			}
			hdr = *line.Header
		case line.Snap != nil:
			snap = line.Snap
		}
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, fmt.Errorf("serve: reading session journal: %w", err)
	}
	if lineNo == 0 {
		return hdr, nil, fmt.Errorf("serve: session journal is empty")
	}
	return hdr, snap, nil
}

// append journals one snapshot and flushes it, so a kill after append
// returns loses nothing the client was told is committed. Once the file
// outgrows compactAt, it is compacted to header + this snapshot.
func (j *sessionJournal) append(snap *sessionSnap) error {
	if j.compactAt > 0 && j.size > j.compactAt {
		return j.compact(snap)
	}
	return j.writeLine(journalLine{Snap: snap})
}

// writeLine appends one JSONL line and flushes.
func (j *sessionJournal) writeLine(line journalLine) error {
	data, err := json.Marshal(line)
	if err != nil {
		return err
	}
	n, err := j.w.Write(append(data, '\n'))
	j.size += int64(n)
	if err != nil {
		return err
	}
	return j.w.Flush()
}

// compact rewrites the journal as header + snap via temp-file-and-rename,
// so the switch is atomic: a kill at any point leaves either the old
// journal (complete) or the new one (complete), never a half-file.
func (j *sessionJournal) compact(snap *sessionSnap) error {
	tmp := j.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, line := range []journalLine{{Header: &j.hdr}, {Snap: snap}} {
		data, err := json.Marshal(line)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		os.Remove(tmp)
		return err
	}
	old := j.f
	nf, err := os.OpenFile(j.path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	size, err := nf.Seek(0, io.SeekEnd)
	if err != nil {
		nf.Close()
		return err
	}
	old.Close()
	j.f, j.w, j.size = nf, bufio.NewWriter(nf), size
	return nil
}

// close releases the file handle; the journal stays on disk.
func (j *sessionJournal) close() error {
	if j.f == nil {
		return nil
	}
	err := j.w.Flush()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// remove closes and deletes the journal (session deletion).
func (j *sessionJournal) remove() error {
	err := j.close()
	if rerr := os.Remove(j.path); err == nil {
		err = rerr
	}
	return err
}

// quarantine renames a damaged journal aside so the session id can be
// reused while the evidence survives for inspection.
func quarantine(path string) {
	os.Rename(path, path+".damaged")
}
