package serve

// The service chaos suite: seeded fault schedules over concurrent
// clients, asserting the service's robustness contract end to end —
// every session ends cleanly errored or resumable, the committed cursor
// never lies, nothing hangs, and no goroutines leak. CI's service-chaos
// job runs this under -race with BIMODE_CHAOS_SEEDS=100; the default is
// a quick 8-seed smoke (the same knob as internal/faults' chaos suite).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bimode/internal/faults"
	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/trace"
	"bimode/internal/zoo"
)

// chaosSeeds mirrors the seed-matrix knob of internal/faults.
func chaosSeeds(t *testing.T) []int64 {
	t.Helper()
	n := 8
	if env := os.Getenv("BIMODE_CHAOS_SEEDS"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil || v < 1 {
			t.Fatalf("BIMODE_CHAOS_SEEDS=%q: want a positive integer", env)
		}
		n = v
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// chaosOp enumerates the client behaviors a schedule can draw.
type chaosOp int

const (
	opCleanText chaosOp = iota
	opCleanBinary
	opSlowLoris
	opCutBody
	opCorruptColumnar
	opBadText
	opKillSession
	numChaosOps
)

func (o chaosOp) String() string {
	return [...]string{"text", "binary", "slow-loris", "cut", "corrupt-columnar",
		"bad-text", "kill"}[o]
}

// chaosClient is one concurrent client's world: its own session, its own
// deterministic rng, and its own view of the committed cursor.
type chaosClient struct {
	t        *testing.T
	client   *http.Client
	base     string
	srv      *Server
	rng      *rand.Rand
	recs     []trace.Record
	statics  int
	id       string
	expected int // records the server has acknowledged
	pos      int // position in recs of the next clean chunk
}

// TestServiceChaos is the tentpole's proof: N concurrent clients per
// schedule, each interleaving clean traffic with injected faults, every
// acknowledged record durable and every fault either cleanly surfaced or
// transparently healed. A final sweep checks the server is still healthy
// and every surviving session still answers.
func TestServiceChaos(t *testing.T) {
	mem := testTrace(t, 4000)
	before := runtime.NumGoroutine()
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosSchedule(t, seed, mem)
		})
	}
	// Goroutine-leak check: once every schedule's server and client are
	// closed, the count must settle back to the starting baseline (plus
	// slack for the runtime's own background workers).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d before chaos, %d after\n%s",
			before, after, buf[:runtime.Stack(buf, true)])
	}
}

func runChaosSchedule(t *testing.T, seed int64, mem *trace.Memory) {
	rng := rand.New(rand.NewSource(seed))

	// A transiently flaky builder: every few constructions fail once with
	// a sim.Transient error, which the retry loop must absorb invisibly.
	var builds atomic.Int64
	cfg := Config{
		Dir:          t.TempDir(),
		MaxResident:  2, // force heavy eviction churn across clients
		RetryBackoff: time.Millisecond,
		MaxRetries:   3,
		Build: func(spec string) (predictor.Predictor, error) {
			if builds.Add(1)%5 == 3 {
				return nil, sim.Transient(fmt.Errorf("chaos: injected transient build failure"))
			}
			return zoo.New(spec)
		},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	tr := &http.Transport{}
	client := &http.Client{Transport: tr}
	defer func() {
		ts.Close()
		s.Close()
		tr.CloseIdleConnections()
	}()

	const nClients = 3
	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		cc := &chaosClient{
			t:       t,
			client:  client,
			base:    ts.URL,
			srv:     s,
			rng:     rand.New(rand.NewSource(seed*1000 + int64(c))),
			recs:    mem.Records(),
			statics: mem.StaticCount(),
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			cc.run()
		}()
	}
	wg.Wait()
	_ = rng

	// The server survived its schedule: health intact, every listed
	// session still resumable.
	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after chaos: %v / %v", resp, err)
	}
	resp.Body.Close()
	var list []sessionSummary
	resp, err = client.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, sum := range list {
		resp, err := client.Get(ts.URL + "/v1/sessions/" + sum.ID)
		if err != nil {
			t.Fatalf("surviving session %s: %v", sum.ID, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("surviving session %s not resumable: status %d", sum.ID, resp.StatusCode)
		}
	}
}

// run is one client's schedule: create (sometimes with a doomed spec in
// the list), then a fixed number of operations drawn from the fault mix,
// verifying the committed cursor after every single one.
func (c *chaosClient) run() {
	specs := []string{snapSpecs[c.rng.Intn(len(snapSpecs))]}
	if c.rng.Intn(3) == 0 {
		specs = append(specs, "nosuch:x=1") // footnoted away, never fatal
	}
	body, _ := json.Marshal(createRequest{Name: "chaos", Specs: specs})
	resp, err := c.client.Post(c.base+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		c.t.Errorf("chaos create: %v", err)
		return
	}
	var rep Report
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		c.t.Errorf("chaos create: status %d: %s", resp.StatusCode, data)
		return
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		c.t.Errorf("chaos create: %v", err)
		return
	}
	c.id = rep.ID

	const ops = 7
	for i := 0; i < ops; i++ {
		op := chaosOp(c.rng.Intn(int(numChaosOps)))
		c.do(op)
		if c.t.Failed() {
			return
		}
		c.verify(op)
		if c.t.Failed() {
			return
		}
	}
	if c.rng.Intn(3) == 0 {
		req, _ := http.NewRequest("DELETE", c.base+"/v1/sessions/"+c.id, nil)
		resp, err := c.client.Do(req)
		if err != nil {
			c.t.Errorf("chaos delete: %v", err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			c.t.Errorf("chaos delete: status %d", resp.StatusCode)
		}
		c.id = ""
	}
}

// chunk carves the next clean slice off the client's trace, wrapping.
func (c *chaosClient) chunk() []trace.Record {
	n := 100 + c.rng.Intn(500)
	if c.pos+n > len(c.recs) {
		c.pos = 0
	}
	out := c.recs[c.pos : c.pos+n]
	c.pos += n
	return out
}

// post sends one ingest body and returns the status (0 on transport
// error, which several fault classes legitimately produce client-side).
func (c *chaosClient) post(body io.Reader) (int, string) {
	resp, err := c.client.Post(c.base+"/v1/sessions/"+c.id+"/branches", "text/plain", body)
	if err != nil {
		return 0, err.Error()
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(data)
}

func (c *chaosClient) do(op chaosOp) {
	switch op {
	case opCleanText:
		recs := c.chunk()
		status, body := c.post(strings.NewReader(textBody(recs)))
		if status != http.StatusOK {
			c.t.Errorf("%v: status %d: %s", op, status, body)
			return
		}
		c.expected += len(recs)

	case opCleanBinary:
		recs := c.chunk()
		var buf bytes.Buffer
		if err := trace.Write(&buf, trace.NewMemory("chaos", c.statics, recs)); err != nil {
			c.t.Errorf("%v: encoding: %v", op, err)
			return
		}
		status, body := c.post(&buf)
		if status != http.StatusOK {
			c.t.Errorf("%v: status %d: %s", op, status, body)
			return
		}
		c.expected += len(recs)

	case opSlowLoris:
		// A dribbling but complete body must succeed, just slowly.
		recs := c.chunk()[:50]
		slow := faults.SlowReader(context.Background(), strings.NewReader(textBody(recs)), 16, 100*time.Microsecond)
		status, body := c.post(slow)
		if status != http.StatusOK {
			c.t.Errorf("%v: status %d: %s", op, status, body)
			return
		}
		c.expected += len(recs)

	case opCutBody:
		// The connection drops mid-body: the client sees a transport
		// error, the server a truncated stream. Nothing commits.
		text := textBody(c.chunk())
		cut := faults.CutReader(strings.NewReader(text), len(text)/2)
		status, _ := c.post(cut)
		if status == http.StatusOK {
			c.t.Errorf("%v: truncated body was accepted", op)
		}

	case opCorruptColumnar:
		recs := c.chunk()
		var buf bytes.Buffer
		if err := trace.WriteColumnar(&buf, trace.NewMemory("chaos", c.statics, recs)); err != nil {
			c.t.Errorf("%v: encoding: %v", op, err)
			return
		}
		flipped := faults.FlipByte(buf.Bytes(), int64(c.rng.Intn(1<<20)))
		status, body := c.post(bytes.NewReader(flipped))
		if status != http.StatusBadRequest {
			c.t.Errorf("%v: status %d (want 400): %s", op, status, body)
		}

	case opBadText:
		status, body := c.post(strings.NewReader("0x10 1\n0x20 sideways\n"))
		if status != http.StatusBadRequest {
			c.t.Errorf("%v: status %d (want 400): %s", op, status, body)
		}

	case opKillSession:
		if !c.srv.KillSession(c.id) {
			c.t.Errorf("%v: session %s vanished", op, c.id)
		}
	}
}

// verify asserts the one invariant every operation must preserve: the
// session reports exactly the acknowledged cursor — faults neither
// destroy committed records nor smuggle in uncommitted ones.
func (c *chaosClient) verify(op chaosOp) {
	resp, err := c.client.Get(c.base + "/v1/sessions/" + c.id)
	if err != nil {
		c.t.Errorf("after %v: report: %v", op, err)
		return
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.t.Errorf("after %v: report status %d: %s", op, resp.StatusCode, data)
		return
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		c.t.Errorf("after %v: report decode: %v", op, err)
		return
	}
	if rep.Cursor != c.expected {
		c.t.Errorf("after %v: cursor %d, want %d acknowledged", op, rep.Cursor, c.expected)
	}
	for _, sr := range rep.Specs {
		if sr.Failed {
			c.t.Errorf("after %v: spec %q failed without an injected predictor fault", op, sr.Spec)
		}
	}
}
