package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"sort"
)

// Wire types for the service's JSON responses. Reports deliberately carry
// no timestamps or timing — only simulation state — so a report is a pure
// function of the branches committed to the session, and the kill-and-
// resume equivalence test can demand byte-identical bytes across a crash.

// Report is the session report returned by GET /v1/sessions/{id} and,
// incrementally, by every successful ingest.
type Report struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// Cursor is the number of records committed so far; after a crash or
	// eviction a client resumes by re-streaming its capture from this
	// offset. It is the durability watermark: everything below it
	// survives any kill, everything above it was never acknowledged.
	Cursor  int `json:"cursor"`
	Statics int `json:"statics"`
	// Footnotes record graceful degradation: specs rejected at creation,
	// specs disabled by a runtime failure. A report with footnotes is
	// partial by declaration, never silently.
	Footnotes []string     `json:"footnotes,omitempty"`
	Specs     []SpecReport `json:"specs"`
}

// SpecReport is one predictor's slice of a Report.
type SpecReport struct {
	Spec        string  `json:"spec"`
	Predictor   string  `json:"predictor,omitempty"`
	CostBytes   float64 `json:"cost_bytes,omitempty"`
	Mispredicts int64   `json:"mispredicts"`
	// MispredictRate is mispredicts over the session cursor (0 when no
	// records have been committed).
	MispredictRate float64 `json:"mispredict_rate"`
	// Failed marks a spec disabled by a runtime failure; its counts are
	// frozen at the point of failure and the session's footnotes say why.
	Failed   bool            `json:"failed,omitempty"`
	Aliasing *AliasingReport `json:"aliasing,omitempty"`
	Top      []H2PEntry      `json:"top,omitempty"`
}

// AliasingReport is the streaming aliasing proxy for predictor.Indexed
// families: how often a consulted second-level counter was last consulted
// by a different static branch (a conflict), and how many of those
// conflicts coincided with a mispredict (destructive, the paper's
// Section 3 failure mode).
type AliasingReport struct {
	Counters    int   `json:"counters"`
	Conflicts   int64 `json:"conflicts"`
	Destructive int64 `json:"destructive"`
}

// H2PEntry is one static branch in a spec's hard-to-predict ranking,
// mirroring the H2P top-N of internal/sim's observability reports.
type H2PEntry struct {
	Static      int    `json:"static"`
	PC          string `json:"pc"`
	Occurrences int64  `json:"occurrences"`
	Mispredicts int64  `json:"mispredicts"`
}

// h2pTop ranks statics by per-spec mispredicts (descending, then by
// static id for determinism), keeping the top n.
func h2pTop(miss []int64, occ []int64, pcs []uint64, n int) []H2PEntry {
	if n <= 0 {
		return nil
	}
	var out []H2PEntry
	for st, m := range miss {
		if m > 0 {
			out = append(out, H2PEntry{Static: st, Mispredicts: m})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Mispredicts != out[j].Mispredicts {
			return out[i].Mispredicts > out[j].Mispredicts
		}
		return out[i].Static < out[j].Static
	})
	if len(out) > n {
		out = out[:n]
	}
	for i := range out {
		st := out[i].Static
		out[i].Occurrences = occ[st]
		out[i].PC = pcHex(pcs[st])
	}
	return out
}

// pcHex formats a branch address the way the text import accepts it back.
func pcHex(pc uint64) string {
	const digits = "0123456789abcdef"
	buf := make([]byte, 0, 18)
	buf = append(buf, '0', 'x')
	started := false
	for shift := 60; shift >= 0; shift -= 4 {
		d := byte(pc>>uint(shift)) & 0xf
		if d != 0 || started || shift == 0 {
			started = true
			buf = append(buf, digits[d])
		}
	}
	return string(buf)
}

// ingestResult is the body of a successful POST .../branches: the updated
// report plus what this request contributed.
type ingestResult struct {
	Accepted int    `json:"accepted"`
	Report   Report `json:"report"`
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// writeJSON renders v with a trailing newline (curl-friendly).
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

// writeError renders err as the JSON envelope, honoring an httpError's
// status and Retry-After; anything else is a 500.
func writeError(w http.ResponseWriter, err error) {
	var he *httpError
	if !errors.As(err, &he) {
		he = &httpError{code: http.StatusInternalServerError, msg: err.Error()}
	}
	if he.retryAfter > 0 {
		w.Header().Set("Retry-After", retryAfterHeader(he.retryAfter))
	}
	writeJSON(w, he.code, errorBody{Error: he.msg})
}
