package core

// Exhaustive coverage for the packed-plane bit fields: every counter
// state through every field of both layouts, against every possible
// value of the co-resident bits. The property and differential tests
// exercise the planes through realistic streams; these loops close the
// gap to "all 256 byte values x all states", so a mask or shift typo in
// the layout constants cannot hide in an unreached corner.

import (
	"testing"

	"bimode/internal/counter"
)

// planeFields enumerates every (shift, width) field the two packed
// layouts use, with the plane byte's bits that do NOT belong to the
// field.
var planeFields = []struct {
	name         string
	shift, width uint
}{
	{"bimode-choice", fusedChoiceShift, 2},
	{"bimode-nt", 0, 2},
	{"bimode-t", fusedBankTShift, 2},
	{"trimode-choice", 0, 3},
	{"trimode-nt", 0, 2},
	{"trimode-t", 2, 2},
	{"trimode-wb", 4, 2},
}

// TestPackPlaneFieldExhaustive packs every representable state into every
// field over every possible prior byte value, and checks the field reads
// back exactly and the co-resident bits are untouched.
func TestPackPlaneFieldExhaustive(t *testing.T) {
	for _, fld := range planeFields {
		t.Run(fld.name, func(t *testing.T) {
			fieldMask := uint8(1<<fld.width-1) << fld.shift
			for prior := 0; prior < 256; prior++ {
				for v := uint8(0); v < 1<<fld.width; v++ {
					plane := []uint8{uint8(prior)}
					packPlaneField(plane, []counter.State{eightStates[v]}, fld.shift, fld.width)
					got := unpackPlaneField(nil, plane, fld.shift, fld.width)
					if len(got) != 1 || got[0] != eightStates[v] {
						t.Fatalf("prior %#02x: packed %d, unpacked %v", prior, v, got)
					}
					if rest := plane[0] &^ fieldMask; rest != uint8(prior)&^fieldMask {
						t.Fatalf("prior %#02x state %d: co-resident bits %#02x -> %#02x",
							prior, v, uint8(prior)&^fieldMask, rest)
					}
				}
			}
		})
	}
}

// TestBiModePlaneViewsExhaustive drives the predictor-level pack/unpack
// accessors through every counter state at every index and pins bank
// isolation: writing one bank's states must not perturb the other's.
func TestBiModePlaneViewsExhaustive(t *testing.T) {
	b := MustNew(Config{ChoiceBits: 2, BankBits: 2, HistoryBits: 1})
	n := len(b.dirPlane)
	states := func(seed int) []counter.State {
		out := make([]counter.State, n)
		for i := range out {
			out[i] = twoBitStates[(seed+i)&3]
		}
		return out
	}
	for seed := 0; seed < 4; seed++ {
		ch, nt, tb := states(seed), states(seed+1), states(seed+2)
		b.setChoiceStates(ch)
		b.setBankStates(BankNotTaken, nt)
		b.setBankStates(BankTaken, tb)
		for i := 0; i < n; i++ {
			if got := b.choiceStates(nil)[i]; got != ch[i] {
				t.Fatalf("seed %d: choice[%d] = %d, want %d", seed, i, got, ch[i])
			}
			if got := b.dirStateAt(BankNotTaken, i); got != nt[i] {
				t.Fatalf("seed %d: nt[%d] = %d, want %d", seed, i, got, nt[i])
			}
			if got := b.dirStateAt(BankTaken, i); got != tb[i] {
				t.Fatalf("seed %d: t[%d] = %d, want %d", seed, i, got, tb[i])
			}
		}
		// Rewrite one bank with fresh values; the other must not move.
		b.setBankStates(BankNotTaken, states(seed+3))
		for i := 0; i < n; i++ {
			if got := b.dirStateAt(BankTaken, i); got != tb[i] {
				t.Fatalf("seed %d: taken bank leaked at %d after NT rewrite", seed, i)
			}
		}
	}
}

// TestFusedLUTKeyRange pins the key construction invariant the kernels
// rely on for bounds-check elimination: every reachable key has the top
// bit clear and every reachable value's pair field stays representable.
func TestFusedLUTKeyRange(t *testing.T) {
	for variant, lut := range fusedLUTs {
		for tk := uint8(0); tk < 2; tk++ {
			for cv := uint8(0); cv < 4; cv++ {
				for pair := uint8(0); pair < 16; pair++ {
					key := tk<<fusedOutcomeShift | cv<<fusedChoiceShift | pair
					if key >= 128 {
						t.Fatalf("variant %d: key %#02x has the top bit set", variant, key)
					}
					v := lut[key]
					if v&^uint8(1<<fusedMissShift|fusedChoiceMask|fusedPairMask) != 0 {
						t.Fatalf("variant %d key %#02x: value %#02x has stray bits", variant, key, v)
					}
				}
			}
		}
	}
}
