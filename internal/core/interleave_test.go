package core

import (
	"fmt"
	"math/rand"
	"testing"

	"bimode/internal/trace"
)

// interleaveTrace builds a deterministic synthetic record stream.
func interleaveTrace(seed int64, n int) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			PC:     uint64(rng.Intn(1<<14)) << 2,
			Taken:  rng.Intn(100) < 60,
			Static: uint32(rng.Intn(64)),
		}
	}
	return recs
}

// TestRunBatchInterleavedEquivalence proves the lockstep kernel is
// Result-for-Result identical to running each lane alone with RunBatch:
// same miss counts, same final table state (via snapshots), same history —
// across uneven lane lengths, distinct configs per lane, and the ablation
// variants.
func TestRunBatchInterleavedEquivalence(t *testing.T) {
	cfgs := []Config{
		DefaultConfig(6),
		DefaultConfig(9),
		{ChoiceBits: 5, BankBits: 8, HistoryBits: 4},
		{ChoiceBits: 8, BankBits: 6, HistoryBits: 6, FullChoiceUpdate: true},
		{ChoiceBits: 7, BankBits: 7, HistoryBits: 7, UpdateBothBanks: true},
		{ChoiceBits: 6, BankBits: 6, HistoryBits: 0, FullChoiceUpdate: true, UpdateBothBanks: true},
	}
	lens := []int{0, 1, 777, 4096, 5000, 12345}
	for lanes := 1; lanes <= 6; lanes++ {
		t.Run(fmt.Sprintf("lanes=%d", lanes), func(t *testing.T) {
			ref := make([]*BiMode, lanes)
			il := make([]Lane, lanes)
			wantMiss := make([]int, lanes)
			for i := 0; i < lanes; i++ {
				cfg := cfgs[i%len(cfgs)]
				recs := interleaveTrace(int64(1000*lanes+i), lens[i%len(lens)])
				ref[i] = MustNew(cfg)
				wantMiss[i] = ref[i].RunBatch(recs)
				il[i] = Lane{P: MustNew(cfg), Recs: recs}
			}
			got := RunBatchInterleaved(il)
			if len(got) != lanes {
				t.Fatalf("got %d miss counts for %d lanes", len(got), lanes)
			}
			for i := 0; i < lanes; i++ {
				if got[i] != wantMiss[i] {
					t.Errorf("lane %d: interleaved misses = %d, RunBatch = %d", i, got[i], wantMiss[i])
				}
				if g, w := il[i].P.HistoryValue(), ref[i].HistoryValue(); g != w {
					t.Errorf("lane %d: history %#x, want %#x", i, g, w)
				}
				gs, ws := il[i].P.Snapshot(nil), ref[i].Snapshot(nil)
				if string(gs) != string(ws) {
					t.Errorf("lane %d: final table state diverged from per-lane RunBatch", i)
				}
			}
		})
	}
}

// TestRunBatchInterleavedEmpty pins the degenerate inputs.
func TestRunBatchInterleavedEmpty(t *testing.T) {
	if got := RunBatchInterleaved(nil); len(got) != 0 {
		t.Fatalf("no lanes must yield no counts, got %v", got)
	}
	b := MustNew(DefaultConfig(5))
	got := RunBatchInterleaved([]Lane{{P: b, Recs: nil}})
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("empty lane must yield a zero count, got %v", got)
	}
}

// BenchmarkRunBatchInterleaved compares K independent simulations run
// back-to-back against the same K stepped in lockstep. The win appears
// when the tables outgrow the fast cache levels; at the default zoo sizes
// the lanes mostly pay loop overhead for each other.
func BenchmarkRunBatchInterleaved(b *testing.B) {
	const n = 1 << 16
	for _, bits := range []int{11, 15} {
		for _, k := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("bits=%d/lanes=%d", bits, k), func(b *testing.B) {
				recs := make([][]trace.Record, k)
				lanes := make([]Lane, k)
				for i := range lanes {
					recs[i] = interleaveTrace(int64(i), n)
				}
				b.SetBytes(int64(k * n * 16))
				b.ResetTimer()
				for it := 0; it < b.N; it++ {
					b.StopTimer()
					for i := range lanes {
						lanes[i] = Lane{P: MustNew(DefaultConfig(bits)), Recs: recs[i]}
					}
					b.StartTimer()
					RunBatchInterleaved(lanes)
				}
			})
		}
	}
}
