package core

// Differential fuzzing of the fused batched kernel: for arbitrary
// configurations and outcome streams, RunBatch and the single-lane
// interleaved kernel must agree exactly — miss count, final table state,
// final history — with the capability-free Predict/Update protocol loop
// (what sim.RunGeneric runs per record). The seed corpus in
// testdata/fuzz is committed so CI's fuzz smoke replays it on every
// push.

import (
	"bytes"
	"testing"

	"bimode/internal/trace"
)

// fuzzRecords decodes two bytes per record: 14 bits of PC and the
// outcome bit.
func fuzzRecords(data []byte) []trace.Record {
	recs := make([]trace.Record, 0, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		pc := (uint64(data[i]) | uint64(data[i+1]&0x3f)<<8) << 2
		recs = append(recs, trace.Record{PC: pc, Taken: data[i+1]>>7 == 1})
	}
	return recs
}

func FuzzRunBatchVsGeneric(f *testing.F) {
	f.Add(uint8(5), uint8(5), uint8(5), uint8(0), []byte("seed stream: taken and not"))
	f.Add(uint8(0), uint8(1), uint8(0), uint8(1), []byte{0x00, 0x80, 0x00, 0x00, 0xff, 0xff})
	f.Add(uint8(9), uint8(3), uint8(200), uint8(2), bytes.Repeat([]byte{0xaa, 0x91}, 40))
	f.Add(uint8(4), uint8(8), uint8(8), uint8(3), bytes.Repeat([]byte{0x13, 0x37, 0x00, 0xfe}, 33))
	f.Fuzz(func(t *testing.T, cb, bb, hb, flags uint8, data []byte) {
		cfg := Config{
			ChoiceBits:       int(cb % 11),
			BankBits:         int(bb%10) + 1,
			HistoryBits:      0,
			FullChoiceUpdate: flags&1 != 0,
			UpdateBothBanks:  flags&2 != 0,
		}
		cfg.HistoryBits = int(hb) % (cfg.BankBits + 1)
		recs := fuzzRecords(data)

		fused := MustNew(cfg)
		gotMiss := fused.RunBatch(recs)

		// The reference: the base predictor protocol, one Predict and one
		// Update per record, exactly sim.RunGeneric's per-record loop.
		ref := MustNew(cfg)
		wantMiss := 0
		for _, r := range recs {
			if ref.Predict(r.PC) != r.Taken {
				wantMiss++
			}
			ref.Update(r.PC, r.Taken)
		}

		if gotMiss != wantMiss {
			t.Fatalf("%s over %d records: RunBatch missed %d, generic %d",
				fused.Name(), len(recs), gotMiss, wantMiss)
		}
		if fused.HistoryValue() != ref.HistoryValue() {
			t.Fatalf("history diverged: %#x vs %#x", fused.HistoryValue(), ref.HistoryValue())
		}
		if !bytes.Equal(fused.Snapshot(nil), ref.Snapshot(nil)) {
			t.Fatalf("%s: final table state diverged from the generic loop", fused.Name())
		}

		// Single-lane interleaved execution is the same state machine again.
		il := MustNew(cfg)
		ilMiss := RunBatchInterleaved([]Lane{{P: il, Recs: recs}})
		if ilMiss[0] != wantMiss || !bytes.Equal(il.Snapshot(nil), ref.Snapshot(nil)) {
			t.Fatalf("%s: interleaved lane diverged (missed %d, want %d)", il.Name(), ilMiss[0], wantMiss)
		}
	})
}
