package core

import "bimode/internal/counter"

// This file defines the packed structure-of-arrays layout behind the
// fused bi-mode and tri-mode kernels, and the transition lookup tables
// that make their per-branch work a single table probe.
//
// The paper's bi-mode state is three logical two-bit counter tables: the
// PC-indexed choice PHT and the two history-indexed direction banks. The
// unpacked representation (one byte per counter, three separate tables)
// costs the hot loop three table walks and two transition computations
// per branch. The packed layout keeps two byte planes instead, sized so
// that eight lanes occupy one 64-bit word of the backing array:
//
//	choice plane: one byte per choice index ci, the two-bit choice
//	    counter pre-shifted into bits 4:6 (values 0x00/0x10/0x20/0x30).
//	    Bit 5 is therefore the steering bit ("send this branch to the
//	    taken bank").
//	direction plane: one byte per direction index di holding BOTH banks'
//	    counters for that index — the not-taken bank counter in bits 0:2
//	    and the taken bank counter in bits 2:4. One load yields the pair;
//	    bank selection is a shift, not a second walk.
//
// The pre-shifted choice encoding is what lets the whole per-branch
// transition collapse into one lookup: the LUT key is simply
//
//	key = outcome<<6 | choicePlane[ci] | dirPlane[di]
//
// (three disjoint bit fields, two ORs) and the LUT value packs the new
// choice field (bits 4:6, pre-shifted, partial-update rule applied), the
// new direction pair (bits 0:4, only the selected bank stepped) and the
// mispredict bit (bit 7) so the stores and the miss count are single
// masks of the same byte. See DESIGN.md §12 for the full mask algebra.

// Bit-field positions of the packed layout and its LUT key/value bytes.
const (
	fusedChoiceShift  = 4    // choice counter field, key and planes
	fusedChoiceMask   = 0x30 // choice field extractor
	fusedPairMask     = 0x0f // direction pair extractor (NT 0:2, T 2:4)
	fusedBankTShift   = 2    // taken-bank counter within the pair
	fusedOutcomeShift = 6    // outcome bit within the LUT key
	fusedMissShift    = 7    // mispredict bit within the LUT value
)

// Plane initialization values (paper footnote 2): choice weakly taken
// (2 pre-shifted into bits 4:6), not-taken bank weakly not-taken (1) and
// taken bank weakly taken (2) packed as a pair. The differential tests
// against the unpacked reference oracle pin these encodings.
const (
	fusedChoiceInit = 2 << fusedChoiceShift
	fusedPairInit   = 1 | 2<<fusedBankTShift
)

// twoBitStates and eightStates map raw bit patterns back into counter
// states. They are literal tables rather than conversions so the
// counterarith analyzer's no-raw-conversion rule keeps holding: the LUT
// builders and the packed-plane accessors reach counter semantics only
// through counter.SatNext / counter.Counter on these literals.
var (
	twoBitStates = [4]counter.State{0, 1, 2, 3}
	eightStates  = [8]counter.State{0, 1, 2, 3, 4, 5, 6, 7}
)

// satBits2 is the saturating two-bit step on raw bit patterns, routed
// through the counter package so the transition provably matches
// counter.Table.Update.
func satBits2(v, tk uint8) uint8 {
	return counter.Bits(counter.SatNext(twoBitStates[v&3], tk&1))
}

// buildFusedLUT precomputes the bi-mode per-branch transition for one
// (FullChoiceUpdate, UpdateBothBanks) configuration. Key and value layout
// are described at the top of this file. Entries above 127 are never
// addressed (the key's top bit is unused); the array is sized 256 so the
// kernel can index it with a uint8 and no bounds check.
func buildFusedLUT(fullChoice, bothBanks bool) *[256]uint8 {
	lut := new([256]uint8)
	for tk := uint8(0); tk < 2; tk++ {
		for cv := uint8(0); cv < 4; cv++ {
			for pair := uint8(0); pair < 16; pair++ {
				nt := pair & 3
				tb := pair >> fusedBankTShift
				choiceBit := cv >> 1
				dv := nt
				if choiceBit == 1 {
					dv = tb
				}
				predBit := dv >> 1

				// Direction banks: the selected counter always learns
				// the outcome; the unselected one only under the
				// UpdateBothBanks ablation.
				nnt, ntb := nt, tb
				if choiceBit == 1 || bothBanks {
					ntb = satBits2(tb, tk)
				}
				if choiceBit == 0 || bothBanks {
					nnt = satBits2(nt, tk)
				}

				// Choice: the paper's partial update — held exactly when
				// the choice was wrong about the bias but the selected
				// counter still predicted the branch.
				hold := (choiceBit^tk)&(predBit^tk^1) == 1
				ncv := cv
				if fullChoice || !hold {
					ncv = satBits2(cv, tk)
				}

				key := tk<<fusedOutcomeShift | cv<<fusedChoiceShift | pair
				lut[key] = (predBit^tk)<<fusedMissShift |
					ncv<<fusedChoiceShift |
					ntb<<fusedBankTShift | nnt
			}
		}
	}
	return lut
}

// fusedLUTs holds the four ablation variants, indexed by
// bothBanks<<1 | fullChoice; New picks the right one per Config so
// RunBatch, Step and Update share one kernel for every configuration.
var fusedLUTs = [4]*[256]uint8{
	buildFusedLUT(false, false),
	buildFusedLUT(true, false),
	buildFusedLUT(false, true),
	buildFusedLUT(true, true),
}

// fusedLUTFor maps a Config's ablation knobs to its transition table.
func fusedLUTFor(cfg Config) *[256]uint8 {
	i := 0
	if cfg.FullChoiceUpdate {
		i |= 1
	}
	if cfg.UpdateBothBanks {
		i |= 2
	}
	return fusedLUTs[i]
}

// unpackPlaneField extracts the width-bit counter field at the given
// shift from every byte of a packed plane, appending the states to dst.
// Shared by the snapshot codec (which must emit the same wire bytes as
// the unpacked tables it replaced) and the state-inspection test hooks.
func unpackPlaneField(dst []counter.State, plane []uint8, shift, width uint) []counter.State {
	mask := uint8(1<<width - 1)
	for _, b := range plane {
		dst = append(dst, eightStates[(b>>shift)&mask&7])
	}
	return dst
}

// packPlaneField stores one counter state per plane byte into the
// width-bit field at the given shift, leaving the other fields intact.
// len(states) must equal len(plane).
func packPlaneField(plane []uint8, states []counter.State, shift, width uint) {
	mask := uint8(1<<width-1) << shift
	for i, s := range states {
		plane[i] = plane[i]&^mask | counter.Bits(s)<<shift&mask
	}
}

// --- tri-mode ---

// Tri-mode packs its three direction banks the same way: one byte per
// direction index, not-taken bank in bits 0:2, taken bank in bits 2:4 and
// the weak bank in bits 4:6. Its choice plane stores the raw 3-bit
// confidence counter (0..7, unshifted — the wider key is assembled with
// explicit shifts). The LUT key is outcome<<9 | choice<<6 | pair and the
// uint16 value packs mispredict<<15 | newChoice<<8 | newPair.
const (
	triPairMask    = 0x3f // three 2-bit bank fields
	triChoiceMask  = 0x07
	triChoiceShift = 6 // choice field within the LUT key
	triOutcomeBit  = 9 // outcome bit within the LUT key
	triKeyMask     = 0x3ff
	triValueShift  = 8  // new choice field within the LUT value
	triMissShift   = 15 // mispredict bit within the LUT value
)

// Tri-mode classification bounds: raw 3-bit choice values in
// (triLoBound, triHiBound) classify the branch weakly biased.
const (
	triLoBound = 1
	triHiBound = 6
)

// triChoiceInit is the tri-mode choice initialization: weakly taken,
// centered (counter.NewTable(…, 3, 4) in the unpacked representation).
const triChoiceInit = 4

// triPairInit packs the three banks' initialization: NT weakly not-taken,
// T weakly taken, WB weakly taken.
const triPairInit = 1 | 2<<2 | 2<<4

// triClassify maps a raw 3-bit choice value to the bank it steers to.
//
//bimode:hotpath
func triClassify(cv uint8) int {
	switch {
	case cv <= triLoBound:
		return BankNotTaken
	case cv >= triHiBound:
		return BankTaken
	default:
		return bankWeak
	}
}

// satBits3 is the saturating three-bit step on raw bit patterns, routed
// through counter.Counter so it provably matches Table.Update at width 3.
func satBits3(v, tk uint8) uint8 {
	c := counter.New(3, eightStates[v&7])
	c.Update(tk&1 == 1)
	return counter.Bits(c.Value())
}

// buildTriLUT precomputes the tri-mode per-branch transition: bank
// classification, selective bank training, and the bi-mode-spirit partial
// choice update (always-track for WB-classified branches).
func buildTriLUT() *[1024]uint16 {
	lut := new([1024]uint16)
	for tk := uint16(0); tk < 2; tk++ {
		for cv := uint16(0); cv < 8; cv++ {
			for pair := uint16(0); pair < 64; pair++ {
				bank := triClassify(uint8(cv))
				sh := uint(2 * bank)
				dv := uint8(pair>>sh) & 3
				predBit := uint16(dv >> 1)

				ndv := uint16(satBits2(dv, uint8(tk)))
				npair := pair&^(3<<sh) | ndv<<sh

				choiceTaken := cv >= 4
				hold := bank != bankWeak &&
					choiceTaken != (tk == 1) && predBit == tk
				ncv := cv
				if !hold {
					ncv = uint16(satBits3(uint8(cv), uint8(tk)))
				}

				key := tk<<triOutcomeBit | cv<<triChoiceShift | pair
				lut[key] = (predBit^tk)<<triMissShift |
					ncv<<triValueShift | npair
			}
		}
	}
	return lut
}

// triLUT is the single tri-mode transition table (tri-mode has no
// ablation knobs).
var triLUT = buildTriLUT()
