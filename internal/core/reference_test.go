package core

import (
	"testing"
	"testing/quick"

	"bimode/internal/baselines"
)

// refBiMode is a deliberately naive, obviously-paper-faithful bi-mode
// model used as a differential-testing oracle: plain integer state, no
// shared tables, each rule written exactly as Section 2.2 states it.
type refBiMode struct {
	choiceBits, bankBits, histBits int
	choice                         []int // 0..3
	banks                          [2][]int
	history                        uint64
}

func newRefBiMode(choiceBits, bankBits, histBits int) *refBiMode {
	r := &refBiMode{choiceBits: choiceBits, bankBits: bankBits, histBits: histBits}
	r.choice = make([]int, 1<<uint(choiceBits))
	for i := range r.choice {
		r.choice[i] = 2 // weakly taken
	}
	r.banks[0] = make([]int, 1<<uint(bankBits))
	r.banks[1] = make([]int, 1<<uint(bankBits))
	for i := range r.banks[0] {
		r.banks[0][i] = 1 // NT bank weakly not-taken
		r.banks[1][i] = 2 // T bank weakly taken
	}
	return r
}

func (r *refBiMode) choiceIdx(pc uint64) int {
	return int((pc >> 2) & (1<<uint(r.choiceBits) - 1))
}

func (r *refBiMode) dirIdx(pc uint64) int {
	h := r.history & (1<<uint(r.histBits) - 1)
	return int(((pc >> 2) ^ h) & (1<<uint(r.bankBits) - 1))
}

func (r *refBiMode) predict(pc uint64) bool {
	bank := 0
	if r.choice[r.choiceIdx(pc)] >= 2 {
		bank = 1
	}
	return r.banks[bank][r.dirIdx(pc)] >= 2
}

func bump(v int, taken bool) int {
	if taken {
		if v < 3 {
			return v + 1
		}
		return v
	}
	if v > 0 {
		return v - 1
	}
	return v
}

func (r *refBiMode) update(pc uint64, taken bool) {
	ci, di := r.choiceIdx(pc), r.dirIdx(pc)
	choiceTaken := r.choice[ci] >= 2
	bank := 0
	if choiceTaken {
		bank = 1
	}
	dirPred := r.banks[bank][di] >= 2

	// Only the selected counter is updated.
	r.banks[bank][di] = bump(r.banks[bank][di], taken)

	// Choice always updated, except: choice opposite to outcome but the
	// selected counter made a correct final prediction.
	exception := choiceTaken != taken && dirPred == taken
	if !exception {
		r.choice[ci] = bump(r.choice[ci], taken)
	}

	r.history = r.history<<1 | b2u(taken)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// TestBiModeMatchesReference drives the production implementation and the
// naive oracle with identical random branch streams and demands
// bit-identical predictions throughout.
func TestBiModeMatchesReference(t *testing.T) {
	f := func(pcs []uint16, outcomes []bool, seed uint8) bool {
		cb := 4 + int(seed%3)
		bb := 4 + int(seed%4)
		hb := int(seed) % (bb + 1)
		impl := MustNew(Config{ChoiceBits: cb, BankBits: bb, HistoryBits: hb})
		ref := newRefBiMode(cb, bb, hb)
		n := len(pcs)
		if len(outcomes) < n {
			n = len(outcomes)
		}
		for i := 0; i < n; i++ {
			pc := uint64(pcs[i]) << 2
			if impl.Predict(pc) != ref.predict(pc) {
				return false
			}
			impl.Update(pc, outcomes[i])
			ref.update(pc, outcomes[i])
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestGshareMatchesReference does the same for gshare against an inline
// oracle.
func TestGshareMatchesReference(t *testing.T) {
	f := func(pcs []uint16, outcomes []bool, seed uint8) bool {
		ib := 4 + int(seed%5)
		hb := int(seed) % (ib + 1)
		impl := baselines.NewGshare(ib, hb)
		table := make([]int, 1<<uint(ib))
		for i := range table {
			table[i] = 2
		}
		var hist uint64
		n := len(pcs)
		if len(outcomes) < n {
			n = len(outcomes)
		}
		for i := 0; i < n; i++ {
			pc := uint64(pcs[i]) << 2
			idx := int(((pc >> 2) ^ (hist & (1<<uint(hb) - 1))) & (1<<uint(ib) - 1))
			if impl.Predict(pc) != (table[idx] >= 2) {
				return false
			}
			impl.Update(pc, outcomes[i])
			table[idx] = bump(table[idx], outcomes[i])
			hist = hist<<1 | b2u(outcomes[i])
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
