package core

import (
	"bimode/internal/counter"
	"bimode/internal/trace"
)

// Interleaved execution of independent bi-mode simulations.
//
// A single RunBatch chain is latency-bound: record i+1's LUT probe cannot
// issue before record i's plane stores retire, so with tables larger than
// the fast cache levels the core idles on serially dependent loads.
// Distinct jobs have no such dependence — each lane owns its own planes
// and history register — so stepping K lanes in lockstep gives the
// out-of-order window K independent load chains to overlap. The schedule
// is round-robin by record position: lane 0 record j, lane 1 record j,
// ..., then record j+1, exactly as if each lane ran alone.

// Lane pairs one bi-mode predictor with the trace it should consume.
// The predictors must be distinct objects: lanes share nothing.
type Lane struct {
	P    *BiMode
	Recs []trace.Record
}

// laneState is the per-lane register set of the interleaved loop: the
// same locals RunBatch keeps for its single chain, one copy per lane.
type laneState struct {
	choice []uint8
	dir    []uint8
	lut    *[256]uint8
	recs   []trace.Record
	h      uint64
	hMask  uint64
	miss   int
}

// RunBatchInterleaved runs every lane to completion and returns the
// per-lane mispredict counts, in lane order. Each lane's final predictor
// state and miss count are exactly what lane-by-lane RunBatch calls would
// produce — interleaving changes the instruction schedule, not the
// simulation.
//
//bimode:hotpath
func RunBatchInterleaved(lanes []Lane) []int {
	misses := make([]int, len(lanes))       //bimode:allow hotpath allocproof -- per-call result slice, not per-record
	states := make([]laneState, len(lanes)) //bimode:allow hotpath allocproof -- per-call lane registers, not per-record
	minLen := -1
	for i := range lanes {
		p := lanes[i].P
		s := &states[i]
		s.choice = p.choicePlane
		s.dir = p.dirPlane
		s.lut = p.lut
		s.recs = lanes[i].Recs
		s.h = p.ghr.Value()
		if nb := p.ghr.Bits(); nb > 0 {
			s.hMask = 1<<uint(nb) - 1
		}
		if minLen < 0 || len(s.recs) < minLen {
			minLen = len(s.recs)
		}
	}
	if minLen < 0 {
		return misses
	}

	// Lockstep phase: one record per lane per round. The inner loop body
	// is RunBatch's per-record body with the lane's registers behind a
	// single pointer. The guard re-establishes, per lane, the facts the
	// prove pass needs (j in range, planes non-empty, masks == len-1) so
	// the five indexing operations carry no bounds checks; it never fires
	// because j < minLen <= len(recs) and the planes are non-empty by
	// construction.
	for j := 0; j < minLen; j++ {
		for l := range states {
			s := &states[l]
			recs, choice, dir := s.recs, s.choice, s.dir
			if uint(j) >= uint(len(recs)) || len(choice) == 0 || len(dir) == 0 {
				continue // unreachable, see above
			}
			r := &recs[uint(j)]
			addr := r.PC >> 2
			tk := counter.OutcomeBit(r.Taken)
			ci := addr & uint64(len(choice)-1)
			di := (addr ^ s.h) & uint64(len(dir)-1)
			v := s.lut[tk<<fusedOutcomeShift|choice[ci]|dir[di]]
			dir[di] = v & fusedPairMask
			choice[ci] = v & fusedChoiceMask
			s.miss += int(v >> fusedMissShift)
			s.h = (s.h<<1 | uint64(tk)) & s.hMask
		}
	}

	// Tails: lanes longer than the shortest finish on the plain batched
	// kernel. The history register is written back first so RunBatch
	// resumes from the lockstep phase's state.
	for i := range lanes {
		s := &states[i]
		lanes[i].P.ghr.Set(s.h)
		tail := s.recs
		if uint(minLen) <= uint(len(tail)) {
			tail = tail[uint(minLen):]
		} else {
			tail = nil // unreachable: minLen is the minimum lane length
		}
		misses[i] = s.miss + lanes[i].P.RunBatch(tail)
	}
	return misses
}
