package core

import (
	"testing"

	"bimode/internal/predictor"
)

var (
	_ predictor.Predictor = (*TriMode)(nil)
	_ predictor.Indexed   = (*TriMode)(nil)
)

func TestTriModeValidation(t *testing.T) {
	if _, err := NewTriMode(Config{BankBits: -1}); err == nil {
		t.Fatalf("invalid config must fail")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("MustNewTriMode must panic on invalid config")
			}
		}()
		MustNewTriMode(Config{BankBits: -1})
	}()
}

func TestTriModeClassification(t *testing.T) {
	tm := MustNewTriMode(Config{ChoiceBits: 8, BankBits: 6, HistoryBits: 0})
	pc := uint64(0x100)
	// Fresh choice value 5 classifies as WB.
	if got := tm.classify(5); got != bankWeak {
		t.Fatalf("value 5 should classify WB, got bank %d", got)
	}
	// Strongly taken branch drives the confidence counter to the top:
	// classification moves to the taken bank.
	for i := 0; i < 10; i++ {
		tm.Update(pc, true)
	}
	if id := tm.CounterID(pc); id < BankTaken<<6 || id >= (BankTaken+1)<<6 {
		t.Fatalf("taken-biased branch should live in the taken bank, id=%d", id)
	}
	if !tm.Predict(pc) {
		t.Fatalf("taken-biased branch must predict taken")
	}
	// Retrain strongly not-taken: classification flips to the NT bank.
	for i := 0; i < 16; i++ {
		tm.Update(pc, false)
	}
	if id := tm.CounterID(pc); id >= 1<<6 {
		t.Fatalf("not-taken-biased branch should live in the NT bank, id=%d", id)
	}
}

func TestTriModeWBIsolation(t *testing.T) {
	// An alternating (weakly biased) branch must stay in the WB bank and
	// never touch the strong banks' counters.
	tm := MustNewTriMode(Config{ChoiceBits: 8, BankBits: 6, HistoryBits: 0})
	pc := uint64(0x140)
	ntBefore := tm.dirStateAt(BankNotTaken, tm.dirIndex(pc))
	tBefore := tm.dirStateAt(BankTaken, tm.dirIndex(pc))
	for i := 0; i < 200; i++ {
		tm.Update(pc, i%2 == 0)
	}
	if tm.classify(tm.choiceStateAt(tm.choiceIndex(pc))) != bankWeak {
		t.Fatalf("alternating branch should classify WB")
	}
	if tm.dirStateAt(BankNotTaken, tm.dirIndex(pc)) != ntBefore ||
		tm.dirStateAt(BankTaken, tm.dirIndex(pc)) != tBefore {
		t.Fatalf("WB branch must not train the strong banks")
	}
}

func TestTriModeLearnsWBPatternWithHistory(t *testing.T) {
	tm := MustNewTriMode(Config{ChoiceBits: 8, BankBits: 8, HistoryBits: 8})
	pc := uint64(0x180)
	last := false
	for i := 0; i < 300; i++ {
		last = !last
		tm.Predict(pc)
		tm.Update(pc, last)
	}
	miss := 0
	for i := 0; i < 100; i++ {
		last = !last
		if tm.Predict(pc) != last {
			miss++
		}
		tm.Update(pc, last)
	}
	if miss > 2 {
		t.Fatalf("tri-mode's WB bank must learn an alternating pattern via history, missed %d", miss)
	}
}

func TestTriModeCostAndCounters(t *testing.T) {
	tm := MustNewTriMode(Config{ChoiceBits: 7, BankBits: 7, HistoryBits: 7})
	want := 128*3 + 3*128*2
	if tm.CostBits() != want {
		t.Fatalf("cost = %d, want %d", tm.CostBits(), want)
	}
	if tm.NumCounters() != 3*128 {
		t.Fatalf("NumCounters = %d", tm.NumCounters())
	}
	if tm.Name() != "tri-mode(7c,7b,7h)" {
		t.Fatalf("name = %q", tm.Name())
	}
}

func TestTriModeReset(t *testing.T) {
	tm := MustNewTriMode(DefaultConfig(6))
	pc := uint64(0x1C0)
	for i := 0; i < 50; i++ {
		tm.Update(pc, false)
	}
	tm.Reset()
	if !tm.Predict(pc) {
		t.Fatalf("reset tri-mode must return to the initial WB/taken prediction")
	}
	if tm.classify(tm.choiceStateAt(tm.choiceIndex(pc))) != bankWeak {
		t.Fatalf("reset choice counters must classify WB")
	}
}
