// Package core implements the paper's contribution: the bi-mode branch
// predictor of Lee, Chen and Mudge (MICRO-30, 1997).
//
// The bi-mode predictor splits the second-level two-bit counter table of a
// global-history predictor into two direction banks. Both banks are
// indexed gshare-style (branch address XOR global history); a separate
// choice predictor, a plain PC-indexed two-bit counter table, selects
// which bank supplies the prediction. Branches the choice predictor deems
// "mostly taken" are steered to one bank and "mostly not-taken" branches
// to the other, so two branches with the same history pattern but opposite
// biases no longer destroy each other's counters: the choice predictor
// separates the destructive aliases while keeping harmless aliases
// together.
//
// Update policy (paper Section 2.2):
//   - only the *selected* direction counter is updated with the outcome;
//     the unselected bank is untouched;
//   - the choice predictor is always updated with the outcome, EXCEPT when
//     its choice disagreed with the outcome but the selected direction
//     counter still predicted correctly (the "partial update" that makes
//     small configurations work).
//
// Initialization (paper footnote 2): the choice predictor is reset to
// weakly taken, the not-taken bank to weakly not-taken, and the taken bank
// to weakly taken.
//
// Representation: the logical counter tables live in the packed
// structure-of-arrays planes described in packed.go — a pre-shifted
// choice byte plane and a direction plane holding both banks' counters
// for the same index in one byte — so the simulation loops do one probe
// per logical table walk and step every counter through a single fused
// transition LUT. The packing is invisible outside the package: all
// accessors speak counter.State and the snapshot wire format is
// byte-identical to the unpacked tables this layout replaced.
package core

import (
	"fmt"

	"bimode/internal/counter"
	"bimode/internal/history"
	"bimode/internal/predictor"
	"bimode/internal/trace"
)

// Bank identifiers for the two direction predictors.
const (
	// BankNotTaken holds branches the choice predictor classifies as
	// mostly not-taken.
	BankNotTaken = 0
	// BankTaken holds branches the choice predictor classifies as mostly
	// taken.
	BankTaken = 1
)

// Config parameterizes a bi-mode predictor. The zero value is not valid;
// use DefaultConfig or fill in the widths explicitly.
type Config struct {
	// ChoiceBits is log2 of the number of choice-predictor counters.
	ChoiceBits int
	// BankBits is log2 of the number of counters in EACH direction bank.
	BankBits int
	// HistoryBits is the global history length XOR-ed into the direction
	// index. Must not exceed BankBits.
	HistoryBits int

	// FullChoiceUpdate disables the paper's partial update policy: the
	// choice predictor is then always updated with the outcome. Ablation
	// knob; the paper's design wants false.
	FullChoiceUpdate bool
	// UpdateBothBanks trains the unselected direction bank too. Ablation
	// knob; the paper's design wants false (selective update).
	UpdateBothBanks bool
}

// DefaultConfig returns the paper's canonical shape at a given bank width:
// the choice table has as many entries as one direction bank and the
// direction index uses all available bits of history (HistoryBits ==
// BankBits), the configuration of Section 4.2.
func DefaultConfig(bankBits int) Config {
	return Config{ChoiceBits: bankBits, BankBits: bankBits, HistoryBits: bankBits}
}

func (c Config) validate() error {
	if c.ChoiceBits < 0 || c.ChoiceBits > 28 {
		return fmt.Errorf("core: choice width %d out of range [0,28]", c.ChoiceBits)
	}
	if c.BankBits < 1 || c.BankBits > 27 {
		return fmt.Errorf("core: bank width %d out of range [1,27]", c.BankBits)
	}
	if c.HistoryBits < 0 || c.HistoryBits > c.BankBits {
		return fmt.Errorf("core: history width %d out of range [0,%d]", c.HistoryBits, c.BankBits)
	}
	return nil
}

// BiMode is the bi-mode branch predictor.
type BiMode struct {
	cfg Config
	// choicePlane and dirPlane are the packed counter planes (layout in
	// packed.go): choicePlane[ci] holds the choice counter pre-shifted
	// into bits 4:6, dirPlane[di] holds the not-taken bank counter in
	// bits 0:2 and the taken bank counter in bits 2:4.
	choicePlane []uint8
	dirPlane    []uint8
	// lut is the fused transition table for this configuration's ablation
	// knobs; one lookup yields the next choice field, the next direction
	// pair and the mispredict bit.
	lut     *[256]uint8
	ghr     *history.Global
	chMask  uint64
	dirMask uint64
}

// New returns a bi-mode predictor for the given configuration.
func New(cfg Config) (*BiMode, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	b := &BiMode{
		cfg:         cfg,
		choicePlane: make([]uint8, 1<<uint(cfg.ChoiceBits)),
		dirPlane:    make([]uint8, 1<<uint(cfg.BankBits)),
		lut:         fusedLUTFor(cfg),
		ghr:         history.NewGlobal(cfg.HistoryBits),
		chMask:      1<<uint(cfg.ChoiceBits) - 1,
		dirMask:     1<<uint(cfg.BankBits) - 1,
	}
	b.resetPlanes()
	return b, nil
}

// MustNew is New for configurations known valid at compile time; it panics
// on error.
func MustNew(cfg Config) *BiMode {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// resetPlanes restores the paper's initialization (footnote 2) in packed
// form.
func (b *BiMode) resetPlanes() {
	for i := range b.choicePlane {
		b.choicePlane[i] = fusedChoiceInit
	}
	for i := range b.dirPlane {
		b.dirPlane[i] = fusedPairInit
	}
}

// Name implements predictor.Predictor.
func (b *BiMode) Name() string {
	tag := fmt.Sprintf("bi-mode(%dc,%db,%dh)", b.cfg.ChoiceBits, b.cfg.BankBits, b.cfg.HistoryBits)
	if b.cfg.FullChoiceUpdate {
		tag += "+fullchoice"
	}
	if b.cfg.UpdateBothBanks {
		tag += "+bothbanks"
	}
	return tag
}

// Config returns the predictor's configuration.
func (b *BiMode) Config() Config { return b.cfg }

// choiceIndex maps a branch PC to its choice counter.
//
//bimode:hotpath
func (b *BiMode) choiceIndex(pc uint64) int { return int((pc >> 2) & b.chMask) }

// dirIndex maps (PC, current history) to the counter consulted in either
// direction bank.
//
//bimode:hotpath
func (b *BiMode) dirIndex(pc uint64) int {
	return int(((pc >> 2) ^ b.ghr.Value()) & b.dirMask)
}

// bankFor translates a choice prediction into a bank identifier.
//
//bimode:hotpath
func bankFor(choiceTaken bool) int {
	if choiceTaken {
		return BankTaken
	}
	return BankNotTaken
}

// choiceBitAt returns the steering bit (1 = taken bank) of the choice
// counter at plane index ci. Re-masking ci with len-1 (equal to chMask by
// construction, so a no-op for in-range callers) under the non-empty
// guard lets the prove pass drop the bounds check.
//
//bimode:hotpath
func (b *BiMode) choiceBitAt(ci int) uint8 {
	choice := b.choicePlane
	if len(choice) == 0 {
		return 0 // unreachable: planes are non-empty by construction
	}
	return choice[uint(ci)&uint(len(choice)-1)] >> (fusedChoiceShift + 1)
}

// dirStateAt returns the given bank's counter at plane index di as a
// counter.State. Bounds-check-free via the same re-mask as choiceBitAt.
//
//bimode:hotpath
func (b *BiMode) dirStateAt(bank, di int) counter.State {
	dir := b.dirPlane
	if len(dir) == 0 {
		return eightStates[0] // unreachable: planes are non-empty by construction
	}
	return eightStates[dir[uint(di)&uint(len(dir)-1)]>>(uint(bank)*fusedBankTShift)&3]
}

// Predict implements predictor.Predictor.
func (b *BiMode) Predict(pc uint64) bool {
	cb := b.choiceBitAt(b.choiceIndex(pc))
	return b.dirStateAt(int(cb), b.dirIndex(pc)).Taken2()
}

// stepAt applies the full bi-mode transition — selective bank training and
// the partial choice update, per this configuration's LUT — at the given
// plane indices and returns the mispredict bit. Shared by Update, Step and
// UpdateCounters; RunBatch inlines the same expression with the planes in
// locals.
//
//bimode:hotpath
func (b *BiMode) stepAt(ci, di int, tk uint8) uint8 {
	choice := b.choicePlane
	dir := b.dirPlane
	if len(choice) == 0 || len(dir) == 0 {
		return 0 // unreachable: planes are non-empty by construction
	}
	c := uint(ci) & uint(len(choice)-1)
	d := uint(di) & uint(len(dir)-1)
	key := tk<<fusedOutcomeShift | choice[c] | dir[d]
	v := b.lut[key]
	dir[d] = v & fusedPairMask
	choice[c] = v & fusedChoiceMask
	return v >> fusedMissShift
}

// Update implements predictor.Predictor, applying the paper's partial
// update policy (or the ablation variants selected in the Config).
func (b *BiMode) Update(pc uint64, taken bool) {
	b.stepAt(b.choiceIndex(pc), b.dirIndex(pc), counter.OutcomeBit(taken))
	b.ghr.Push(taken)
}

// Step implements predictor.Stepper: Predict and Update fused into one
// call that computes the choice and direction indices once and performs
// the whole counter transition as a single fused-LUT probe.
//
//bimode:hotpath
func (b *BiMode) Step(pc uint64, taken bool) bool {
	tk := counter.OutcomeBit(taken)
	missBit := b.stepAt(b.choiceIndex(pc), b.dirIndex(pc), tk)
	b.ghr.Push(taken)
	return missBit^tk == 1
}

// RunBatch implements predictor.BatchRunner: the whole-trace loop with the
// packed planes, the transition LUT and the history register held in
// locals. Per branch it does exactly two plane loads, one LUT probe and
// two plane stores — no conditional branch but the record loop itself, for
// every configuration including the ablation variants (their policy
// differences are baked into the LUT at construction). The paper's partial
// update rule costs nothing here: it is pre-applied in the LUT's choice
// field (mask algebra in DESIGN.md §12). The uint8 key makes the LUT probe
// bounds-check-free; the plane masks are len-1 by construction.
//
//bimode:hotpath
func (b *BiMode) RunBatch(recs []trace.Record) int {
	choice := b.choicePlane
	dir := b.dirPlane
	lut := b.lut
	if len(choice) == 0 || len(dir) == 0 {
		return 0 // unreachable (planes are non-empty); lets the compiler drop bounds checks
	}
	chMask := uint64(len(choice) - 1)
	dirMask := uint64(len(dir) - 1)
	h := b.ghr.Value()
	var hMask uint64
	if nb := b.ghr.Bits(); nb > 0 {
		hMask = 1<<uint(nb) - 1
	}

	// Two-way unroll with split mispredict accumulators: halves the loop
	// overhead per record and keeps the two LUT probe chains independent
	// of each other's count update. The table state itself is serially
	// dependent by definition (record i+1 may hit the byte record i just
	// wrote), which the in-order store->load forwarding handles.
	// The pair loop advances by reslicing (recs = recs[2:]) rather than by
	// a two-stride index: the len(recs) >= 2 guard then proves recs[0] and
	// recs[1] in range, so the record loads carry no bounds checks either.
	miss0, miss1 := 0, 0
	for len(recs) >= 2 {
		r0 := &recs[0]
		addr := r0.PC >> 2
		tk := counter.OutcomeBit(r0.Taken)
		ci := addr & chMask
		di := (addr ^ h) & dirMask
		v := lut[tk<<fusedOutcomeShift|choice[ci]|dir[di]]
		dir[di] = v & fusedPairMask
		choice[ci] = v & fusedChoiceMask
		miss0 += int(v >> fusedMissShift)
		h = (h<<1 | uint64(tk)) & hMask

		r1 := &recs[1]
		addr = r1.PC >> 2
		tk = counter.OutcomeBit(r1.Taken)
		ci = addr & chMask
		di = (addr ^ h) & dirMask
		v = lut[tk<<fusedOutcomeShift|choice[ci]|dir[di]]
		dir[di] = v & fusedPairMask
		choice[ci] = v & fusedChoiceMask
		miss1 += int(v >> fusedMissShift)
		h = (h<<1 | uint64(tk)) & hMask

		recs = recs[2:]
	}
	for j := range recs {
		r := &recs[j]
		addr := r.PC >> 2
		tk := counter.OutcomeBit(r.Taken)
		ci := addr & chMask
		di := (addr ^ h) & dirMask
		v := lut[tk<<fusedOutcomeShift|choice[ci]|dir[di]]
		dir[di] = v & fusedPairMask
		choice[ci] = v & fusedChoiceMask
		miss0 += int(v >> fusedMissShift)
		h = (h<<1 | uint64(tk)) & hMask
	}
	b.ghr.Set(h)
	return miss0 + miss1
}

// Reset implements predictor.Predictor, restoring the paper's
// initialization (footnote 2).
func (b *BiMode) Reset() {
	b.resetPlanes()
	b.ghr.Reset()
}

// CostBits implements predictor.Predictor: choice counters plus both
// direction banks, all two bits wide. With ChoiceBits == BankBits this is
// 3*2^BankBits two-bit counters, i.e. 1.5x the cost of a
// 2^(BankBits+1)-counter gshare, matching the paper's placement on the
// size axis. The cost is the modeled hardware budget, not the packed
// in-memory footprint.
func (b *BiMode) CostBits() int {
	return 2*len(b.choicePlane) + 2*2*len(b.dirPlane)
}

// CounterID implements predictor.Indexed. The two banks' counters get
// disjoint dense identifiers: bank*2^BankBits + index. The identifier
// reflects the counter the *current* choice state would consult.
func (b *BiMode) CounterID(pc uint64) int {
	bank := int(b.choiceBitAt(b.choiceIndex(pc)))
	return bank<<uint(b.cfg.BankBits) + b.dirIndex(pc)
}

// NumCounters implements predictor.Indexed (both banks).
func (b *BiMode) NumCounters() int { return 2 << uint(b.cfg.BankBits) }

// ProbeLookup implements predictor.Probe: the bank the choice predictor
// steers pc to, the choice direction itself, and the direction counter the
// selected bank would consult. Read-only, like Predict.
func (b *BiMode) ProbeLookup(pc uint64) predictor.Lookup {
	bank := int(b.choiceBitAt(b.choiceIndex(pc)))
	return predictor.Lookup{
		CounterID:   bank<<uint(b.cfg.BankBits) + b.dirIndex(pc),
		Bank:        bank,
		ChoiceTaken: bank == BankTaken,
		HasChoice:   true,
	}
}

// ChoiceState returns the raw state of the choice counter for pc; exposed
// for the analysis tooling and tests.
func (b *BiMode) ChoiceState(pc uint64) counter.State {
	return eightStates[b.choicePlane[b.choiceIndex(pc)]>>fusedChoiceShift&3]
}

// BankCounterState returns the raw state of the given bank's counter that
// pc currently maps to; exposed for tests.
func (b *BiMode) BankCounterState(bank int, pc uint64) counter.State {
	return b.dirStateAt(bank, b.dirIndex(pc))
}

// choiceStates appends the unpacked choice table to dst in index order;
// the unpacked view behind the snapshot codec and the property tests.
func (b *BiMode) choiceStates(dst []counter.State) []counter.State {
	return unpackPlaneField(dst, b.choicePlane, fusedChoiceShift, 2)
}

// bankStates appends the given direction bank's unpacked counters to dst
// in index order.
func (b *BiMode) bankStates(bank int, dst []counter.State) []counter.State {
	return unpackPlaneField(dst, b.dirPlane, uint(bank)*fusedBankTShift, 2)
}

// setChoiceStates overwrites the choice table from an unpacked view;
// len(states) must equal the table length.
func (b *BiMode) setChoiceStates(states []counter.State) {
	packPlaneField(b.choicePlane, states, fusedChoiceShift, 2)
}

// setBankStates overwrites one direction bank from an unpacked view,
// leaving the other bank's bits intact; len(states) must equal the bank
// length.
func (b *BiMode) setBankStates(bank int, states []counter.State) {
	packPlaneField(b.dirPlane, states, uint(bank)*fusedBankTShift, 2)
}

// HistoryValue implements predictor.SpeculativeHistory.
func (b *BiMode) HistoryValue() uint64 { return b.ghr.Value() }

// SetHistory implements predictor.SpeculativeHistory.
func (b *BiMode) SetHistory(v uint64) { b.ghr.Set(v) }

// PushHistory implements predictor.SpeculativeHistory.
func (b *BiMode) PushHistory(taken bool) { b.ghr.Push(taken) }

// UpdateCounters implements predictor.SpeculativeHistory: the full
// bi-mode update policy (selective bank training, partial choice update)
// indexed with the supplied history snapshot, leaving the register
// untouched.
func (b *BiMode) UpdateCounters(pc uint64, history uint64, taken bool) {
	ci := b.choiceIndex(pc)
	di := int(((pc >> 2) ^ history) & b.dirMask)
	b.stepAt(ci, di, counter.OutcomeBit(taken))
}
