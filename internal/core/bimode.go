// Package core implements the paper's contribution: the bi-mode branch
// predictor of Lee, Chen and Mudge (MICRO-30, 1997).
//
// The bi-mode predictor splits the second-level two-bit counter table of a
// global-history predictor into two direction banks. Both banks are
// indexed gshare-style (branch address XOR global history); a separate
// choice predictor, a plain PC-indexed two-bit counter table, selects
// which bank supplies the prediction. Branches the choice predictor deems
// "mostly taken" are steered to one bank and "mostly not-taken" branches
// to the other, so two branches with the same history pattern but opposite
// biases no longer destroy each other's counters: the choice predictor
// separates the destructive aliases while keeping harmless aliases
// together.
//
// Update policy (paper Section 2.2):
//   - only the *selected* direction counter is updated with the outcome;
//     the unselected bank is untouched;
//   - the choice predictor is always updated with the outcome, EXCEPT when
//     its choice disagreed with the outcome but the selected direction
//     counter still predicted correctly (the "partial update" that makes
//     small configurations work).
//
// Initialization (paper footnote 2): the choice predictor is reset to
// weakly taken, the not-taken bank to weakly not-taken, and the taken bank
// to weakly taken.
package core

import (
	"fmt"

	"bimode/internal/counter"
	"bimode/internal/history"
	"bimode/internal/predictor"
	"bimode/internal/trace"
)

// Bank identifiers for the two direction predictors.
const (
	// BankNotTaken holds branches the choice predictor classifies as
	// mostly not-taken.
	BankNotTaken = 0
	// BankTaken holds branches the choice predictor classifies as mostly
	// taken.
	BankTaken = 1
)

// Config parameterizes a bi-mode predictor. The zero value is not valid;
// use DefaultConfig or fill in the widths explicitly.
type Config struct {
	// ChoiceBits is log2 of the number of choice-predictor counters.
	ChoiceBits int
	// BankBits is log2 of the number of counters in EACH direction bank.
	BankBits int
	// HistoryBits is the global history length XOR-ed into the direction
	// index. Must not exceed BankBits.
	HistoryBits int

	// FullChoiceUpdate disables the paper's partial update policy: the
	// choice predictor is then always updated with the outcome. Ablation
	// knob; the paper's design wants false.
	FullChoiceUpdate bool
	// UpdateBothBanks trains the unselected direction bank too. Ablation
	// knob; the paper's design wants false (selective update).
	UpdateBothBanks bool
}

// DefaultConfig returns the paper's canonical shape at a given bank width:
// the choice table has as many entries as one direction bank and the
// direction index uses all available bits of history (HistoryBits ==
// BankBits), the configuration of Section 4.2.
func DefaultConfig(bankBits int) Config {
	return Config{ChoiceBits: bankBits, BankBits: bankBits, HistoryBits: bankBits}
}

func (c Config) validate() error {
	if c.ChoiceBits < 0 || c.ChoiceBits > 28 {
		return fmt.Errorf("core: choice width %d out of range [0,28]", c.ChoiceBits)
	}
	if c.BankBits < 1 || c.BankBits > 27 {
		return fmt.Errorf("core: bank width %d out of range [1,27]", c.BankBits)
	}
	if c.HistoryBits < 0 || c.HistoryBits > c.BankBits {
		return fmt.Errorf("core: history width %d out of range [0,%d]", c.HistoryBits, c.BankBits)
	}
	return nil
}

// BiMode is the bi-mode branch predictor.
type BiMode struct {
	cfg     Config
	choice  *counter.Table
	banks   [2]*counter.Table
	ghr     *history.Global
	chMask  uint64
	dirMask uint64
	// dirScratch is a lazily allocated contiguous view of both direction
	// banks (not-taken bank first) used by RunBatch so bank selection is
	// index arithmetic instead of a data-dependent branch; it is copied
	// from and back to the banks at the batch boundaries.
	dirScratch []counter.State
}

// New returns a bi-mode predictor for the given configuration.
func New(cfg Config) (*BiMode, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	b := &BiMode{
		cfg:     cfg,
		choice:  counter.NewTwoBit(1<<uint(cfg.ChoiceBits), counter.WeakTaken),
		ghr:     history.NewGlobal(cfg.HistoryBits),
		chMask:  1<<uint(cfg.ChoiceBits) - 1,
		dirMask: 1<<uint(cfg.BankBits) - 1,
	}
	b.banks[BankNotTaken] = counter.NewTwoBit(1<<uint(cfg.BankBits), counter.WeakNotTaken)
	b.banks[BankTaken] = counter.NewTwoBit(1<<uint(cfg.BankBits), counter.WeakTaken)
	return b, nil
}

// MustNew is New for configurations known valid at compile time; it panics
// on error.
func MustNew(cfg Config) *BiMode {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Name implements predictor.Predictor.
func (b *BiMode) Name() string {
	tag := fmt.Sprintf("bi-mode(%dc,%db,%dh)", b.cfg.ChoiceBits, b.cfg.BankBits, b.cfg.HistoryBits)
	if b.cfg.FullChoiceUpdate {
		tag += "+fullchoice"
	}
	if b.cfg.UpdateBothBanks {
		tag += "+bothbanks"
	}
	return tag
}

// Config returns the predictor's configuration.
func (b *BiMode) Config() Config { return b.cfg }

// choiceIndex maps a branch PC to its choice counter.
//
//bimode:hotpath
func (b *BiMode) choiceIndex(pc uint64) int { return int((pc >> 2) & b.chMask) }

// dirIndex maps (PC, current history) to the counter consulted in either
// direction bank.
//
//bimode:hotpath
func (b *BiMode) dirIndex(pc uint64) int {
	return int(((pc >> 2) ^ b.ghr.Value()) & b.dirMask)
}

// bankFor translates a choice prediction into a bank identifier.
//
//bimode:hotpath
func bankFor(choiceTaken bool) int {
	if choiceTaken {
		return BankTaken
	}
	return BankNotTaken
}

// Predict implements predictor.Predictor.
func (b *BiMode) Predict(pc uint64) bool {
	bank := bankFor(b.choice.Taken(b.choiceIndex(pc)))
	return b.banks[bank].Taken(b.dirIndex(pc))
}

// Update implements predictor.Predictor, applying the paper's partial
// update policy (or the ablation variants selected in the Config).
func (b *BiMode) Update(pc uint64, taken bool) {
	ci := b.choiceIndex(pc)
	di := b.dirIndex(pc)
	choiceTaken := b.choice.Taken(ci)
	sel := bankFor(choiceTaken)
	dirPred := b.banks[sel].Taken(di)

	// Direction banks: only the selected counter learns the outcome.
	b.banks[sel].Update(di, taken)
	if b.cfg.UpdateBothBanks {
		b.banks[1-sel].Update(di, taken)
	}

	// Choice predictor: always updated with the outcome, except when the
	// choice was wrong about the bias but the selected direction counter
	// still got the branch right.
	if b.cfg.FullChoiceUpdate || !(choiceTaken != taken && dirPred == taken) {
		b.choice.Update(ci, taken)
	}

	b.ghr.Push(taken)
}

// Step implements predictor.Stepper: Predict and Update fused into one
// call that computes the choice and direction indices once and reads the
// consulted counters once, instead of the two passes the split protocol
// pays.
//
//bimode:hotpath
func (b *BiMode) Step(pc uint64, taken bool) bool {
	ci := b.choiceIndex(pc)
	di := b.dirIndex(pc)
	choiceTaken := b.choice.Taken(ci)
	sel := bankFor(choiceTaken)
	pred := b.banks[sel].Taken(di)

	b.banks[sel].Update(di, taken)
	if b.cfg.UpdateBothBanks {
		b.banks[1-sel].Update(di, taken)
	}
	if b.cfg.FullChoiceUpdate || !(choiceTaken != taken && pred == taken) {
		b.choice.Update(ci, taken)
	}
	b.ghr.Push(taken)
	return pred
}

// choiceNext2[hold<<3|outcome<<2|state] is the choice counter transition
// under the paper's partial update rule: the saturating step when hold=0,
// the unchanged value when hold=1 (choice wrong about the bias but the
// selected bank predicted correctly).
var choiceNext2 = [16]counter.State{
	0, 0, 1, 2, 1, 2, 3, 3, // hold=0: counter.SatNext2
	0, 1, 2, 3, 0, 1, 2, 3, // hold=1: identity
}

// RunBatch implements predictor.BatchRunner: the whole-trace loop with the
// choice table, a contiguous two-bank direction view and the history
// register held in locals, so the per-branch work is branch-free slice
// arithmetic — the only conditional branch left is the record loop itself.
// Counter transitions go through lookup tables (counter.SatNext,
// choiceNext2) and bank selection is index arithmetic, because every one
// of those conditions depends on trace data the host CPU cannot predict.
// All three tables are two-bit by construction (New), so the taken
// threshold is the counter's high bit and the LUT transitions match
// counter.Table.Update exactly. The paper's partial choice update becomes
// the bit expression hold = (choiceBit^outcome) & ^(predBit^outcome).
//
//bimode:hotpath
func (b *BiMode) RunBatch(recs []trace.Record) int {
	if b.cfg.FullChoiceUpdate || b.cfg.UpdateBothBanks {
		return b.runBatchAblation(recs)
	}
	choice := b.choice.Raw()
	bankNT := b.banks[BankNotTaken].Raw()
	bankT := b.banks[BankTaken].Raw()
	n := len(bankNT)
	if b.dirScratch == nil {
		b.dirScratch = make([]counter.State, 2*n) //bimode:allow hotpath -- amortized scratch allocation at the batch boundary, not per record
	}
	dir := b.dirScratch
	if len(choice) == 0 || len(dir) == 0 {
		return 0 // unreachable (tables are non-empty); lets the compiler drop bounds checks
	}
	copy(dir[:n], bankNT)
	copy(dir[n:], bankT)

	chMask := uint64(len(choice) - 1)
	dirMask := uint64(n - 1)
	bankSize := uint64(n)
	allMask := uint64(len(dir) - 1)
	h := b.ghr.Value()
	var hMask uint64
	if nb := b.ghr.Bits(); nb > 0 {
		hMask = 1<<uint(nb) - 1
	}

	miss := 0
	for i := range recs {
		r := &recs[i]
		addr := r.PC >> 2
		var tk uint8
		if r.Taken {
			tk = 1
		}

		ci := addr & chMask
		cv := choice[ci]
		choiceBit := cv.TakenBit() // 1 = steer to the taken bank

		// Bank selection as an index offset (multiply, not a branch).
		di := ((addr^h)&dirMask + uint64(choiceBit)*bankSize) & allMask
		dv := dir[di]
		predBit := dv.TakenBit()
		miss += int(predBit ^ tk)

		// Selected bank always learns the outcome.
		dir[di] = counter.SatNext(dv, tk)

		// Choice predictor: the paper's partial update rule.
		hold := (choiceBit ^ tk) & (predBit ^ tk ^ 1)
		choice[ci] = choiceNext2[(hold<<3|tk<<2|counter.Bits(cv))&15]

		h = (h<<1 | uint64(tk)) & hMask
	}
	copy(bankNT, dir[:n])
	copy(bankT, dir[n:])
	b.ghr.Set(h)
	return miss
}

// runBatchAblation is RunBatch for the ablation configurations
// (FullChoiceUpdate / UpdateBothBanks); the paper's design takes the
// tight loop above.
//
//bimode:hotpath
func (b *BiMode) runBatchAblation(recs []trace.Record) int {
	miss := 0
	for _, r := range recs {
		if b.Step(r.PC, r.Taken) != r.Taken {
			miss++
		}
	}
	return miss
}

// Reset implements predictor.Predictor, restoring the paper's
// initialization (footnote 2).
func (b *BiMode) Reset() {
	b.choice.Reset()
	b.banks[BankNotTaken].Reset()
	b.banks[BankTaken].Reset()
	b.ghr.Reset()
}

// CostBits implements predictor.Predictor: choice counters plus both
// direction banks. With ChoiceBits == BankBits this is 3*2^BankBits
// two-bit counters, i.e. 1.5x the cost of a 2^(BankBits+1)-counter gshare,
// matching the paper's placement on the size axis.
func (b *BiMode) CostBits() int {
	return b.choice.CostBits() + b.banks[0].CostBits() + b.banks[1].CostBits()
}

// CounterID implements predictor.Indexed. The two banks' counters get
// disjoint dense identifiers: bank*2^BankBits + index. The identifier
// reflects the counter the *current* choice state would consult.
func (b *BiMode) CounterID(pc uint64) int {
	bank := bankFor(b.choice.Taken(b.choiceIndex(pc)))
	return bank<<uint(b.cfg.BankBits) + b.dirIndex(pc)
}

// NumCounters implements predictor.Indexed (both banks).
func (b *BiMode) NumCounters() int { return 2 << uint(b.cfg.BankBits) }

// ProbeLookup implements predictor.Probe: the bank the choice predictor
// steers pc to, the choice direction itself, and the direction counter the
// selected bank would consult. Read-only, like Predict.
func (b *BiMode) ProbeLookup(pc uint64) predictor.Lookup {
	choiceTaken := b.choice.Taken(b.choiceIndex(pc))
	bank := bankFor(choiceTaken)
	return predictor.Lookup{
		CounterID:   bank<<uint(b.cfg.BankBits) + b.dirIndex(pc),
		Bank:        bank,
		ChoiceTaken: choiceTaken,
		HasChoice:   true,
	}
}

// ChoiceState returns the raw state of the choice counter for pc; exposed
// for the analysis tooling and tests.
func (b *BiMode) ChoiceState(pc uint64) counter.State { return b.choice.Value(b.choiceIndex(pc)) }

// BankCounterState returns the raw state of the given bank's counter that
// pc currently maps to; exposed for tests.
func (b *BiMode) BankCounterState(bank int, pc uint64) counter.State {
	return b.banks[bank].Value(b.dirIndex(pc))
}

// HistoryValue implements predictor.SpeculativeHistory.
func (b *BiMode) HistoryValue() uint64 { return b.ghr.Value() }

// SetHistory implements predictor.SpeculativeHistory.
func (b *BiMode) SetHistory(v uint64) { b.ghr.Set(v) }

// PushHistory implements predictor.SpeculativeHistory.
func (b *BiMode) PushHistory(taken bool) { b.ghr.Push(taken) }

// UpdateCounters implements predictor.SpeculativeHistory: the full
// bi-mode update policy (selective bank training, partial choice update)
// indexed with the supplied history snapshot, leaving the register
// untouched.
func (b *BiMode) UpdateCounters(pc uint64, history uint64, taken bool) {
	ci := b.choiceIndex(pc)
	di := int(((pc >> 2) ^ history) & b.dirMask)
	choiceTaken := b.choice.Taken(ci)
	sel := bankFor(choiceTaken)
	dirPred := b.banks[sel].Taken(di)

	b.banks[sel].Update(di, taken)
	if b.cfg.UpdateBothBanks {
		b.banks[1-sel].Update(di, taken)
	}
	if b.cfg.FullChoiceUpdate || !(choiceTaken != taken && dirPred == taken) {
		b.choice.Update(ci, taken)
	}
}
