package core

// Property test for the paper's Section 2.2 update policy, driven by
// random outcome streams: after every single Update the table state must
// have moved exactly as the policy prescribes — the unselected direction
// bank untouched, the selected bank stepped only at the consulted counter,
// and the choice table stepped only at the branch's choice counter unless
// the partial-update hold condition applies.
//
// The observations go through the unpacked-view accessors
// (choiceStates/bankStates), so the test also pins the packed plane
// layout: any cross-talk between the co-located bit fields — a choice
// store clobbering a direction pair, one bank's update leaking into the
// other's bits of the same byte — shows up as a spurious diff.

import (
	"math/rand"
	"testing"

	"bimode/internal/counter"
)

// diffAt returns the indices where two unpacked table views differ.
func diffAt(a, b []counter.State) []int {
	var idx []int
	for i := range a {
		if a[i] != b[i] {
			idx = append(idx, i)
		}
	}
	return idx
}

func TestPartialUpdateProperty(t *testing.T) {
	configs := []Config{
		DefaultConfig(5),
		DefaultConfig(7),
		{ChoiceBits: 4, BankBits: 6, HistoryBits: 3},
		{ChoiceBits: 8, BankBits: 5, HistoryBits: 0},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(MustNew(cfg).Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x51eede))
			b := MustNew(cfg)

			// A small PC pool forces heavy aliasing in every table, so
			// both banks, both choice directions and the hold condition
			// all get exercised.
			pcs := make([]uint64, 24)
			for i := range pcs {
				pcs[i] = rng.Uint64() &^ 3
			}

			holds, steps := 0, 0
			for step := 0; step < 20000; step++ {
				pc := pcs[rng.Intn(len(pcs))]
				taken := rng.Intn(100) < 70 // biased, like real branches

				// The indices and reads the policy is defined over, taken
				// before Update (dirIndex consumes the pre-update history).
				ci := b.choiceIndex(pc)
				di := b.dirIndex(pc)
				choiceTaken := b.choiceBitAt(ci) == 1
				sel := bankFor(choiceTaken)
				dirPred := b.dirStateAt(sel, di).Taken2()

				choiceBefore := b.choiceStates(nil)
				selBefore := b.bankStates(sel, nil)
				otherBefore := b.bankStates(1-sel, nil)

				b.Update(pc, taken)

				// Non-chosen bank: untouched, every counter.
				if d := diffAt(otherBefore, b.bankStates(1-sel, nil)); len(d) != 0 {
					t.Fatalf("step %d: unselected bank %d changed at %v", step, 1-sel, d)
				}

				// Chosen bank: only the consulted counter moves, by one
				// saturating step toward the outcome.
				wantSel := counter.SatNext(selBefore[di], counter.OutcomeBit(taken))
				for _, i := range diffAt(selBefore, b.bankStates(sel, nil)) {
					if i != di {
						t.Fatalf("step %d: selected bank %d changed at %d, consulted %d", step, sel, i, di)
					}
				}
				if got := b.dirStateAt(sel, di); got != wantSel {
					t.Fatalf("step %d: selected counter %d -> %d, want SatNext=%d (was %d, taken=%v)",
						step, di, got, wantSel, selBefore[di], taken)
				}

				// Choice table: held exactly when the choice was wrong
				// about the bias but the selected bank still predicted the
				// branch; otherwise stepped with the outcome at ci only.
				hold := choiceTaken != taken && dirPred == taken
				wantChoice := choiceBefore[ci]
				if !hold {
					wantChoice = counter.SatNext(choiceBefore[ci], counter.OutcomeBit(taken))
					steps++
				} else {
					holds++
				}
				choiceAfter := b.choiceStates(nil)
				for _, i := range diffAt(choiceBefore, choiceAfter) {
					if i != ci {
						t.Fatalf("step %d: choice table changed at %d, branch maps to %d", step, i, ci)
					}
				}
				if got := choiceAfter[ci]; got != wantChoice {
					t.Fatalf("step %d: choice counter %d -> %d, want %d (hold=%v, was %d, taken=%v)",
						step, ci, got, wantChoice, hold, choiceBefore[ci], taken)
				}
			}
			// The stream must actually exercise both arms of the policy,
			// or the assertions above prove nothing.
			if holds == 0 || steps == 0 {
				t.Fatalf("degenerate stream: %d holds, %d steps", holds, steps)
			}
		})
	}
}

// TestPartialUpdateAblations pins the two ablation knobs against the same
// single-step observation: FullChoiceUpdate always steps the choice
// counter, and UpdateBothBanks trains the unselected bank too.
func TestPartialUpdateAblations(t *testing.T) {
	rng := rand.New(rand.NewSource(0xb1a5))
	cfg := DefaultConfig(5)
	cfg.FullChoiceUpdate = true
	cfg.UpdateBothBanks = true
	b := MustNew(cfg)
	for step := 0; step < 5000; step++ {
		pc := rng.Uint64() &^ 3
		taken := rng.Intn(2) == 0
		ci := b.choiceIndex(pc)
		di := b.dirIndex(pc)
		sel := bankFor(b.choiceBitAt(ci) == 1)
		choiceWas := b.choiceStates(nil)[ci]
		otherWas := b.dirStateAt(1-sel, di)

		b.Update(pc, taken)

		if got, want := b.choiceStates(nil)[ci], counter.SatNext(choiceWas, counter.OutcomeBit(taken)); got != want {
			t.Fatalf("step %d: fullchoice counter -> %d, want %d", step, got, want)
		}
		if got, want := b.dirStateAt(1-sel, di), counter.SatNext(otherWas, counter.OutcomeBit(taken)); got != want {
			t.Fatalf("step %d: bothbanks unselected counter -> %d, want %d", step, got, want)
		}
	}
}
