package core

import (
	"fmt"

	"bimode/internal/counter"
	"bimode/internal/history"
	"bimode/internal/predictor"
)

// TriMode is this repository's concrete take on the paper's stated future
// work: "further separate the weakly-biased substreams from the strongly-
// biased substreams for the counters" (Section 5).
//
// It extends bi-mode with a THIRD direction bank reserved for weakly
// biased branches. The choice predictor is widened to a 3-bit confidence
// counter per branch: its direction bit steers between the taken and
// not-taken banks exactly as in bi-mode, but when the counter sits in the
// low-confidence middle of its range the branch is classified weakly
// biased and steered to the dedicated WB bank instead. Strongly biased
// branches therefore never share direction counters with the noisy WB
// substreams that the paper identifies as bi-mode's residual
// interference.
//
// Updates follow bi-mode's discipline: only the selected bank's counter
// is trained, and the choice counter keeps bi-mode's partial update rule
// (it is not weakened when its direction call was wrong but the selected
// counter predicted correctly).
type TriMode struct {
	cfg     Config
	choice  *counter.Table // 3-bit confidence/direction counters
	banks   [3]*counter.Table
	ghr     *history.Global
	chMask  uint64
	dirMask uint64
	loBound uint8 // raw choice values in (loBound, hiBound) classify as WB
	hiBound uint8
}

// bankWeak is the third direction bank, holding weakly biased branches.
const bankWeak = 2

// NewTriMode builds a tri-mode predictor from a bi-mode configuration;
// the WB bank has the same size as each direction bank, so total cost is
// 4*2^BankBits direction counters plus a 3-bit choice table.
func NewTriMode(cfg Config) (*TriMode, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &TriMode{
		cfg:     cfg,
		choice:  counter.NewTable(1<<uint(cfg.ChoiceBits), 3, 4), // weakly taken, centered
		ghr:     history.NewGlobal(cfg.HistoryBits),
		chMask:  1<<uint(cfg.ChoiceBits) - 1,
		dirMask: 1<<uint(cfg.BankBits) - 1,
		loBound: 1, // 0..1 -> strong NT class, 2..5 -> WB, 6..7 -> strong T
		hiBound: 6,
	}
	t.banks[BankNotTaken] = counter.NewTwoBit(1<<uint(cfg.BankBits), counter.WeakNotTaken)
	t.banks[BankTaken] = counter.NewTwoBit(1<<uint(cfg.BankBits), counter.WeakTaken)
	t.banks[bankWeak] = counter.NewTwoBit(1<<uint(cfg.BankBits), counter.WeakTaken)
	return t, nil
}

// MustNewTriMode is NewTriMode that panics on error.
func MustNewTriMode(cfg Config) *TriMode {
	t, err := NewTriMode(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements predictor.Predictor.
func (t *TriMode) Name() string {
	return fmt.Sprintf("tri-mode(%dc,%db,%dh)", t.cfg.ChoiceBits, t.cfg.BankBits, t.cfg.HistoryBits)
}

//bimode:hotpath
func (t *TriMode) choiceIndex(pc uint64) int { return int((pc >> 2) & t.chMask) }

//bimode:hotpath
func (t *TriMode) dirIndex(pc uint64) int { return int(((pc >> 2) ^ t.ghr.Value()) & t.dirMask) }

// classify maps a choice-counter state to a bank. The band comparison
// needs the raw bit pattern, so it goes through counter.Bits — the one
// sanctioned escape from the counter-state encapsulation.
//
//bimode:hotpath
func (t *TriMode) classify(v counter.State) int {
	b := counter.Bits(v)
	switch {
	case b <= t.loBound:
		return BankNotTaken
	case b >= t.hiBound:
		return BankTaken
	default:
		return bankWeak
	}
}

// Predict implements predictor.Predictor.
func (t *TriMode) Predict(pc uint64) bool {
	bank := t.classify(t.choice.Value(t.choiceIndex(pc)))
	return t.banks[bank].Taken(t.dirIndex(pc))
}

// Update implements predictor.Predictor.
func (t *TriMode) Update(pc uint64, taken bool) {
	ci := t.choiceIndex(pc)
	di := t.dirIndex(pc)
	v := t.choice.Value(ci)
	bank := t.classify(v)
	dirPred := t.banks[bank].Taken(di)

	t.banks[bank].Update(di, taken)

	// Partial update in bi-mode's spirit, applied only while the branch
	// is classified strongly biased: the confidence counter moves toward
	// the outcome except when its direction call disagreed with the
	// outcome but the selected bank's counter predicted correctly. For
	// WB-classified branches the counter always tracks the outcome —
	// the exception rule's asymmetric skips would otherwise drift weakly
	// biased branches out of the WB bank.
	choiceTaken := counter.Bits(v) >= 4
	if bank == bankWeak || !(choiceTaken != taken && dirPred == taken) {
		t.choice.Update(ci, taken)
	}
	t.ghr.Push(taken)
}

// Step implements predictor.Stepper: the fused Predict+Update, computing
// the choice and direction indices once and classifying the choice
// counter once per branch.
//
//bimode:hotpath
func (t *TriMode) Step(pc uint64, taken bool) bool {
	ci := t.choiceIndex(pc)
	di := t.dirIndex(pc)
	v := t.choice.Value(ci)
	bank := t.classify(v)
	pred := t.banks[bank].Taken(di)

	t.banks[bank].Update(di, taken)
	choiceTaken := counter.Bits(v) >= 4
	if bank == bankWeak || !(choiceTaken != taken && pred == taken) {
		t.choice.Update(ci, taken)
	}
	t.ghr.Push(taken)
	return pred
}

// Reset implements predictor.Predictor.
func (t *TriMode) Reset() {
	t.choice.Reset()
	for _, b := range t.banks {
		b.Reset()
	}
	t.ghr.Reset()
}

// CostBits implements predictor.Predictor: three two-bit banks plus the
// 3-bit choice counters.
func (t *TriMode) CostBits() int {
	total := t.choice.CostBits()
	for _, b := range t.banks {
		total += b.CostBits()
	}
	return total
}

// CounterID implements predictor.Indexed: dense ids across the three
// banks.
func (t *TriMode) CounterID(pc uint64) int {
	bank := t.classify(t.choice.Value(t.choiceIndex(pc)))
	return bank<<uint(t.cfg.BankBits) + t.dirIndex(pc)
}

// NumCounters implements predictor.Indexed.
func (t *TriMode) NumCounters() int { return 3 << uint(t.cfg.BankBits) }

// ProbeLookup implements predictor.Probe: the bank the confidence counter
// classifies pc into (including the WB bank) and the counter it would
// consult there. ChoiceTaken is the counter's direction half, the vote
// bi-mode would have made.
func (t *TriMode) ProbeLookup(pc uint64) predictor.Lookup {
	v := t.choice.Value(t.choiceIndex(pc))
	bank := t.classify(v)
	return predictor.Lookup{
		CounterID:   bank<<uint(t.cfg.BankBits) + t.dirIndex(pc),
		Bank:        bank,
		ChoiceTaken: counter.Bits(v) >= 4,
		HasChoice:   true,
	}
}
