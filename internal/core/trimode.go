package core

import (
	"fmt"

	"bimode/internal/counter"
	"bimode/internal/history"
	"bimode/internal/predictor"
	"bimode/internal/trace"
)

// TriMode is this repository's concrete take on the paper's stated future
// work: "further separate the weakly-biased substreams from the strongly-
// biased substreams for the counters" (Section 5).
//
// It extends bi-mode with a THIRD direction bank reserved for weakly
// biased branches. The choice predictor is widened to a 3-bit confidence
// counter per branch: its direction bit steers between the taken and
// not-taken banks exactly as in bi-mode, but when the counter sits in the
// low-confidence middle of its range the branch is classified weakly
// biased and steered to the dedicated WB bank instead. Strongly biased
// branches therefore never share direction counters with the noisy WB
// substreams that the paper identifies as bi-mode's residual
// interference.
//
// Updates follow bi-mode's discipline: only the selected bank's counter
// is trained, and the choice counter keeps bi-mode's partial update rule
// (it is not weakened when its direction call was wrong but the selected
// counter predicted correctly).
//
// Representation: like BiMode, the counters live in packed planes — the
// raw 3-bit confidence counters in one byte plane, all three direction
// banks' counters for the same index packed into one byte of the other —
// and the whole per-branch transition (classification, selective bank
// training, partial choice update) is one probe of the precomputed triLUT
// (packed.go).
type TriMode struct {
	cfg Config
	// choicePlane holds the raw 3-bit confidence counters, one byte each.
	// dirPlane packs the three banks per direction index: not-taken bank
	// in bits 0:2, taken bank in bits 2:4, WB bank in bits 4:6.
	choicePlane []uint8
	dirPlane    []uint8
	ghr         *history.Global
	chMask      uint64
	dirMask     uint64
}

// bankWeak is the third direction bank, holding weakly biased branches.
const bankWeak = 2

// NewTriMode builds a tri-mode predictor from a bi-mode configuration;
// the WB bank has the same size as each direction bank, so total cost is
// 4*2^BankBits direction counters plus a 3-bit choice table.
func NewTriMode(cfg Config) (*TriMode, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &TriMode{
		cfg:         cfg,
		choicePlane: make([]uint8, 1<<uint(cfg.ChoiceBits)),
		dirPlane:    make([]uint8, 1<<uint(cfg.BankBits)),
		ghr:         history.NewGlobal(cfg.HistoryBits),
		chMask:      1<<uint(cfg.ChoiceBits) - 1,
		dirMask:     1<<uint(cfg.BankBits) - 1,
	}
	t.resetPlanes()
	return t, nil
}

// MustNewTriMode is NewTriMode that panics on error.
func MustNewTriMode(cfg Config) *TriMode {
	t, err := NewTriMode(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// resetPlanes restores the initialization: confidence counters weakly
// taken and centered, NT bank weakly not-taken, T and WB banks weakly
// taken.
func (t *TriMode) resetPlanes() {
	for i := range t.choicePlane {
		t.choicePlane[i] = triChoiceInit
	}
	for i := range t.dirPlane {
		t.dirPlane[i] = triPairInit
	}
}

// Name implements predictor.Predictor.
func (t *TriMode) Name() string {
	return fmt.Sprintf("tri-mode(%dc,%db,%dh)", t.cfg.ChoiceBits, t.cfg.BankBits, t.cfg.HistoryBits)
}

//bimode:hotpath
func (t *TriMode) choiceIndex(pc uint64) int { return int((pc >> 2) & t.chMask) }

//bimode:hotpath
func (t *TriMode) dirIndex(pc uint64) int { return int(((pc >> 2) ^ t.ghr.Value()) & t.dirMask) }

// classify maps a choice-counter state to a bank. The band comparison
// needs the raw bit pattern, so it goes through counter.Bits — the one
// sanctioned escape from the counter-state encapsulation.
//
//bimode:hotpath
func (t *TriMode) classify(v counter.State) int {
	return triClassify(counter.Bits(v))
}

// choiceStateAt returns the raw confidence counter at plane index ci as a
// counter.State; exposed in-package for the tests.
//
//bimode:hotpath
func (t *TriMode) choiceStateAt(ci int) counter.State {
	choice := t.choicePlane
	if len(choice) == 0 {
		return eightStates[0] // unreachable: planes are non-empty by construction
	}
	return eightStates[choice[uint(ci)&uint(len(choice)-1)]&7]
}

// dirStateAt returns the given bank's counter at plane index di.
// Re-masking di with len-1 (equal to dirMask by construction, so a no-op
// for in-range callers) under the non-empty guard lets the prove pass
// drop the bounds check.
//
//bimode:hotpath
func (t *TriMode) dirStateAt(bank, di int) counter.State {
	dir := t.dirPlane
	if len(dir) == 0 {
		return eightStates[0] // unreachable: planes are non-empty by construction
	}
	return eightStates[dir[uint(di)&uint(len(dir)-1)]>>(uint(bank)*2)&3]
}

// Predict implements predictor.Predictor.
func (t *TriMode) Predict(pc uint64) bool {
	bank := triClassify(t.choicePlane[t.choiceIndex(pc)])
	return t.dirStateAt(bank, t.dirIndex(pc)).Taken2()
}

// stepAt applies the full tri-mode transition — classification, selective
// bank training, the partial/always-track choice update — at the given
// plane indices via one triLUT probe, returning the mispredict bit.
//
//bimode:hotpath
func (t *TriMode) stepAt(ci, di int, tk uint8) uint8 {
	choice := t.choicePlane
	dir := t.dirPlane
	if len(choice) == 0 || len(dir) == 0 {
		return 0 // unreachable: planes are non-empty by construction
	}
	c := uint(ci) & uint(len(choice)-1)
	d := uint(di) & uint(len(dir)-1)
	key := (uint16(tk)<<triOutcomeBit |
		uint16(choice[c])<<triChoiceShift |
		uint16(dir[d])) & triKeyMask
	v := triLUT[key]
	dir[d] = uint8(v) & triPairMask
	choice[c] = uint8(v>>triValueShift) & triChoiceMask
	return uint8(v >> triMissShift)
}

// Update implements predictor.Predictor.
//
// The choice policy baked into triLUT is partial update in bi-mode's
// spirit, applied only while the branch is classified strongly biased:
// the confidence counter moves toward the outcome except when its
// direction call disagreed with the outcome but the selected bank's
// counter predicted correctly. For WB-classified branches the counter
// always tracks the outcome — the exception rule's asymmetric skips would
// otherwise drift weakly biased branches out of the WB bank.
func (t *TriMode) Update(pc uint64, taken bool) {
	t.stepAt(t.choiceIndex(pc), t.dirIndex(pc), counter.OutcomeBit(taken))
	t.ghr.Push(taken)
}

// Step implements predictor.Stepper: the fused Predict+Update, one index
// computation and one LUT probe per branch.
//
//bimode:hotpath
func (t *TriMode) Step(pc uint64, taken bool) bool {
	tk := counter.OutcomeBit(taken)
	missBit := t.stepAt(t.choiceIndex(pc), t.dirIndex(pc), tk)
	t.ghr.Push(taken)
	return missBit^tk == 1
}

// RunBatch implements predictor.BatchRunner: the same fused whole-trace
// loop as BiMode.RunBatch on the tri-mode planes — two plane loads, one
// triLUT probe and two stores per branch, with classification and both
// update policies pre-applied in the LUT. The masked uint16 key keeps the
// LUT probe bounds-check-free.
//
//bimode:hotpath
func (t *TriMode) RunBatch(recs []trace.Record) int {
	choice := t.choicePlane
	dir := t.dirPlane
	if len(choice) == 0 || len(dir) == 0 {
		return 0 // unreachable (planes are non-empty); lets the compiler drop bounds checks
	}
	chMask := uint64(len(choice) - 1)
	dirMask := uint64(len(dir) - 1)
	h := t.ghr.Value()
	var hMask uint64
	if nb := t.ghr.Bits(); nb > 0 {
		hMask = 1<<uint(nb) - 1
	}

	miss := 0
	for i := range recs {
		r := &recs[i]
		addr := r.PC >> 2
		tk := counter.OutcomeBit(r.Taken)

		ci := addr & chMask
		di := (addr ^ h) & dirMask
		key := (uint16(tk)<<triOutcomeBit |
			uint16(choice[ci])<<triChoiceShift |
			uint16(dir[di])) & triKeyMask
		v := triLUT[key]
		dir[di] = uint8(v) & triPairMask
		choice[ci] = uint8(v>>triValueShift) & triChoiceMask
		miss += int(v >> triMissShift)

		h = (h<<1 | uint64(tk)) & hMask
	}
	t.ghr.Set(h)
	return miss
}

// Reset implements predictor.Predictor.
func (t *TriMode) Reset() {
	t.resetPlanes()
	t.ghr.Reset()
}

// CostBits implements predictor.Predictor: three two-bit banks plus the
// 3-bit choice counters. As with BiMode, the cost models the hardware
// budget, not the packed in-memory footprint.
func (t *TriMode) CostBits() int {
	return 3*len(t.choicePlane) + 3*2*len(t.dirPlane)
}

// CounterID implements predictor.Indexed: dense ids across the three
// banks.
func (t *TriMode) CounterID(pc uint64) int {
	bank := triClassify(t.choicePlane[t.choiceIndex(pc)])
	return bank<<uint(t.cfg.BankBits) + t.dirIndex(pc)
}

// NumCounters implements predictor.Indexed.
func (t *TriMode) NumCounters() int { return 3 << uint(t.cfg.BankBits) }

// ProbeLookup implements predictor.Probe: the bank the confidence counter
// classifies pc into (including the WB bank) and the counter it would
// consult there. ChoiceTaken is the counter's direction half, the vote
// bi-mode would have made.
func (t *TriMode) ProbeLookup(pc uint64) predictor.Lookup {
	cv := t.choicePlane[t.choiceIndex(pc)]
	bank := triClassify(cv)
	return predictor.Lookup{
		CounterID:   bank<<uint(t.cfg.BankBits) + t.dirIndex(pc),
		Bank:        bank,
		ChoiceTaken: cv >= 4,
		HasChoice:   true,
	}
}

// choiceStates appends the unpacked confidence table to dst in index
// order; behind the snapshot codec and tests.
func (t *TriMode) choiceStates(dst []counter.State) []counter.State {
	return unpackPlaneField(dst, t.choicePlane, 0, 3)
}

// bankStates appends the given bank's unpacked counters to dst in index
// order.
func (t *TriMode) bankStates(bank int, dst []counter.State) []counter.State {
	return unpackPlaneField(dst, t.dirPlane, uint(bank)*2, 2)
}

// setChoiceStates overwrites the confidence table from an unpacked view.
func (t *TriMode) setChoiceStates(states []counter.State) {
	packPlaneField(t.choicePlane, states, 0, 3)
}

// setBankStates overwrites one bank from an unpacked view, leaving the
// other banks' bits intact.
func (t *TriMode) setBankStates(bank int, states []counter.State) {
	packPlaneField(t.dirPlane, states, uint(bank)*2, 2)
}
