package core

import "fmt"

// predictor.Snapshotter implementations for the bi-mode and tri-mode
// predictors. Each snapshot is a one-byte type tag followed by the
// constituent table and register snapshots in a fixed order; the tag
// catches a snapshot restored into the wrong predictor kind before the
// shape checks inside counter/history reject the details. dirScratch is
// deliberately absent from the bi-mode encoding: it is a transient view
// copied from and back to the banks at RunBatch boundaries, never live
// state between calls.
const (
	snapTagBiMode  = 0x01
	snapTagTriMode = 0x02
)

// Snapshot implements predictor.Snapshotter.
func (b *BiMode) Snapshot(dst []byte) []byte {
	dst = append(dst, snapTagBiMode)
	dst = b.choice.AppendSnapshot(dst)
	dst = b.banks[BankNotTaken].AppendSnapshot(dst)
	dst = b.banks[BankTaken].AppendSnapshot(dst)
	return b.ghr.AppendSnapshot(dst)
}

// RestoreSnapshot implements predictor.Snapshotter.
func (b *BiMode) RestoreSnapshot(data []byte) error {
	rest, err := checkSnapTag("bi-mode", snapTagBiMode, data)
	if err != nil {
		return err
	}
	if rest, err = b.choice.ReadSnapshot(rest); err != nil {
		return fmt.Errorf("core: bi-mode choice table: %w", err)
	}
	if rest, err = b.banks[BankNotTaken].ReadSnapshot(rest); err != nil {
		return fmt.Errorf("core: bi-mode not-taken bank: %w", err)
	}
	if rest, err = b.banks[BankTaken].ReadSnapshot(rest); err != nil {
		return fmt.Errorf("core: bi-mode taken bank: %w", err)
	}
	if rest, err = b.ghr.ReadSnapshot(rest); err != nil {
		return fmt.Errorf("core: bi-mode history: %w", err)
	}
	return checkSnapEmpty("bi-mode", rest)
}

// Snapshot implements predictor.Snapshotter.
func (t *TriMode) Snapshot(dst []byte) []byte {
	dst = append(dst, snapTagTriMode)
	dst = t.choice.AppendSnapshot(dst)
	for _, bank := range t.banks {
		dst = bank.AppendSnapshot(dst)
	}
	return t.ghr.AppendSnapshot(dst)
}

// RestoreSnapshot implements predictor.Snapshotter.
func (t *TriMode) RestoreSnapshot(data []byte) error {
	rest, err := checkSnapTag("tri-mode", snapTagTriMode, data)
	if err != nil {
		return err
	}
	if rest, err = t.choice.ReadSnapshot(rest); err != nil {
		return fmt.Errorf("core: tri-mode choice table: %w", err)
	}
	for i, bank := range t.banks {
		if rest, err = bank.ReadSnapshot(rest); err != nil {
			return fmt.Errorf("core: tri-mode bank %d: %w", i, err)
		}
	}
	if rest, err = t.ghr.ReadSnapshot(rest); err != nil {
		return fmt.Errorf("core: tri-mode history: %w", err)
	}
	return checkSnapEmpty("tri-mode", rest)
}

// checkSnapTag consumes and validates the leading type tag.
func checkSnapTag(kind string, tag byte, data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty %s snapshot", kind)
	}
	if data[0] != tag {
		return nil, fmt.Errorf("core: snapshot tag %#x is not a %s snapshot (want %#x)", data[0], kind, tag)
	}
	return data[1:], nil
}

// checkSnapEmpty rejects trailing bytes, which indicate a shape mismatch
// the per-field checks could not see.
func checkSnapEmpty(kind string, rest []byte) error {
	if len(rest) != 0 {
		return fmt.Errorf("core: %s snapshot has %d trailing bytes", kind, len(rest))
	}
	return nil
}
