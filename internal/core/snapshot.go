package core

import (
	"fmt"

	"bimode/internal/counter"
)

// predictor.Snapshotter implementations for the bi-mode and tri-mode
// predictors. Each snapshot is a one-byte type tag followed by the
// constituent table and register snapshots in a fixed order; the tag
// catches a snapshot restored into the wrong predictor kind before the
// shape checks inside counter/history reject the details.
//
// The wire format predates the packed plane layout and is kept
// byte-identical to it: each logical table is unpacked into counter.State
// scratch and encoded with counter.AppendStates exactly as the standalone
// counter.Table it replaced would have, so snapshots taken before the
// packing (the PR 5 journal corpus) restore into the packed planes and
// vice versa. Restore goes through the same scratch in the other
// direction, validating with counter.ReadStates before any plane byte is
// touched.
const (
	snapTagBiMode  = 0x01
	snapTagTriMode = 0x02
)

// Snapshot implements predictor.Snapshotter.
func (b *BiMode) Snapshot(dst []byte) []byte {
	dst = append(dst, snapTagBiMode)
	scratch := make([]counter.State, 0, len(b.choicePlane))
	dst = counter.AppendStates(dst, 2, b.choiceStates(scratch))
	dst = counter.AppendStates(dst, 2, b.bankStates(BankNotTaken, scratch[:0]))
	dst = counter.AppendStates(dst, 2, b.bankStates(BankTaken, scratch[:0]))
	return b.ghr.AppendSnapshot(dst)
}

// RestoreSnapshot implements predictor.Snapshotter.
func (b *BiMode) RestoreSnapshot(data []byte) error {
	rest, err := checkSnapTag("bi-mode", snapTagBiMode, data)
	if err != nil {
		return err
	}
	choice := make([]counter.State, len(b.choicePlane))
	nt := make([]counter.State, len(b.dirPlane))
	tb := make([]counter.State, len(b.dirPlane))
	if rest, err = counter.ReadStates(rest, 2, choice); err != nil {
		return fmt.Errorf("core: bi-mode choice table: %w", err)
	}
	if rest, err = counter.ReadStates(rest, 2, nt); err != nil {
		return fmt.Errorf("core: bi-mode not-taken bank: %w", err)
	}
	if rest, err = counter.ReadStates(rest, 2, tb); err != nil {
		return fmt.Errorf("core: bi-mode taken bank: %w", err)
	}
	if rest, err = b.ghr.ReadSnapshot(rest); err != nil {
		return fmt.Errorf("core: bi-mode history: %w", err)
	}
	if err = checkSnapEmpty("bi-mode", rest); err != nil {
		return err
	}
	b.setChoiceStates(choice)
	b.setBankStates(BankNotTaken, nt)
	b.setBankStates(BankTaken, tb)
	return nil
}

// Snapshot implements predictor.Snapshotter.
func (t *TriMode) Snapshot(dst []byte) []byte {
	dst = append(dst, snapTagTriMode)
	scratch := make([]counter.State, 0, len(t.choicePlane))
	dst = counter.AppendStates(dst, 3, t.choiceStates(scratch))
	for bank := 0; bank < 3; bank++ {
		scratch = scratch[:0]
		dst = counter.AppendStates(dst, 2, t.bankStates(bank, scratch))
	}
	return t.ghr.AppendSnapshot(dst)
}

// RestoreSnapshot implements predictor.Snapshotter.
func (t *TriMode) RestoreSnapshot(data []byte) error {
	rest, err := checkSnapTag("tri-mode", snapTagTriMode, data)
	if err != nil {
		return err
	}
	choice := make([]counter.State, len(t.choicePlane))
	if rest, err = counter.ReadStates(rest, 3, choice); err != nil {
		return fmt.Errorf("core: tri-mode choice table: %w", err)
	}
	var banks [3][]counter.State
	for i := range banks {
		banks[i] = make([]counter.State, len(t.dirPlane))
		if rest, err = counter.ReadStates(rest, 2, banks[i]); err != nil {
			return fmt.Errorf("core: tri-mode bank %d: %w", i, err)
		}
	}
	if rest, err = t.ghr.ReadSnapshot(rest); err != nil {
		return fmt.Errorf("core: tri-mode history: %w", err)
	}
	if err = checkSnapEmpty("tri-mode", rest); err != nil {
		return err
	}
	t.setChoiceStates(choice)
	for i := range banks {
		t.setBankStates(i, banks[i])
	}
	return nil
}

// checkSnapTag consumes and validates the leading type tag.
func checkSnapTag(kind string, tag byte, data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty %s snapshot", kind)
	}
	if data[0] != tag {
		return nil, fmt.Errorf("core: snapshot tag %#x is not a %s snapshot (want %#x)", data[0], kind, tag)
	}
	return data[1:], nil
}

// checkSnapEmpty rejects trailing bytes, which indicate a shape mismatch
// the per-field checks could not see.
func checkSnapEmpty(kind string, rest []byte) error {
	if len(rest) != 0 {
		return fmt.Errorf("core: %s snapshot has %d trailing bytes", kind, len(rest))
	}
	return nil
}
