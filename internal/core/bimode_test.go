package core

import (
	"testing"
	"testing/quick"

	"bimode/internal/baselines"
	"bimode/internal/counter"
	"bimode/internal/predictor"
)

// Interface compliance.
var (
	_ predictor.Predictor = (*BiMode)(nil)
	_ predictor.Indexed   = (*BiMode)(nil)
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{ChoiceBits: -1, BankBits: 4, HistoryBits: 4},
		{ChoiceBits: 4, BankBits: 0, HistoryBits: 0},
		{ChoiceBits: 4, BankBits: 28, HistoryBits: 0},
		{ChoiceBits: 4, BankBits: 4, HistoryBits: 5},
		{ChoiceBits: 4, BankBits: 4, HistoryBits: -1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) must fail", cfg)
		}
	}
	if _, err := New(DefaultConfig(10)); err != nil {
		t.Fatalf("default config must be valid: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNew with invalid config must panic")
		}
	}()
	MustNew(Config{BankBits: -1})
}

// TestInitialization checks the paper's footnote 2: choice weakly taken,
// not-taken bank weakly not-taken, taken bank weakly taken.
func TestInitialization(t *testing.T) {
	b := MustNew(DefaultConfig(6))
	pc := uint64(0x100)
	if b.ChoiceState(pc) != counter.WeakTaken {
		t.Fatalf("choice init = %d, want weakly taken", b.ChoiceState(pc))
	}
	if b.BankCounterState(BankNotTaken, pc) != counter.WeakNotTaken {
		t.Fatalf("NT bank init = %d, want weakly not-taken", b.BankCounterState(BankNotTaken, pc))
	}
	if b.BankCounterState(BankTaken, pc) != counter.WeakTaken {
		t.Fatalf("T bank init = %d, want weakly taken", b.BankCounterState(BankTaken, pc))
	}
	// A fresh predictor therefore predicts taken (choice taken -> taken
	// bank -> weakly taken).
	if !b.Predict(pc) {
		t.Fatalf("fresh bi-mode must predict taken")
	}
}

// TestSelectiveBankUpdate: only the selected direction counter is
// trained; the unselected bank must be untouched.
func TestSelectiveBankUpdate(t *testing.T) {
	b := MustNew(Config{ChoiceBits: 6, BankBits: 6, HistoryBits: 0})
	pc := uint64(0x180)
	ntBefore := b.BankCounterState(BankNotTaken, pc)
	// Choice starts weakly-taken, so the taken bank is selected.
	b.Update(pc, true)
	if b.BankCounterState(BankTaken, pc) != counter.StrongTaken {
		t.Fatalf("selected taken-bank counter must strengthen")
	}
	if b.BankCounterState(BankNotTaken, pc) != ntBefore {
		t.Fatalf("unselected bank must not change")
	}
}

// TestPartialChoiceUpdate encodes the paper's exception rule: when the
// choice is wrong about the direction but the selected counter predicts
// correctly, the choice predictor is NOT updated.
func TestPartialChoiceUpdate(t *testing.T) {
	b := MustNew(Config{ChoiceBits: 6, BankBits: 6, HistoryBits: 0})
	pc := uint64(0x1C0)

	// Drive the selected (taken) bank's counter to predict NOT taken
	// while the choice still says taken: two not-taken outcomes move the
	// taken bank counter 2 -> 0, and the choice 2 -> 1 ... so rebuild:
	// first outcome not-taken: choice 2->1 would deselect. Instead use
	// the exception directly: set up state by hand via updates.
	//
	// Step 1: one not-taken outcome. Choice(2) selects T bank; T counter
	// 2 -> 1; choice predicted taken, outcome not-taken, dirPred taken
	// (==2 at predict time) was WRONG, so no exception: choice 2 -> 1.
	b.Update(pc, false)
	if b.ChoiceState(pc) != counter.WeakNotTaken {
		t.Fatalf("choice should weaken to 1, got %d", b.ChoiceState(pc))
	}
	// Step 2: now choice=1 selects NT bank (counter 1, predicts NT).
	// Outcome taken: choice wrong (said NT), selected counter wrong too
	// (said NT) -> choice updated: 1 -> 2. NT bank counter 1 -> 2.
	b.Update(pc, true)
	if b.ChoiceState(pc) != counter.WeakTaken {
		t.Fatalf("choice should strengthen back to 2, got %d", b.ChoiceState(pc))
	}
	// Step 3: choice=2 selects T bank (counter at 1 from step 1 -> NT
	// prediction). Outcome not-taken: choice wrong (said taken) BUT the
	// selected counter was right (said not-taken) -> exception: choice
	// must NOT be updated; T counter 1 -> 0.
	b.Update(pc, false)
	if b.ChoiceState(pc) != counter.WeakTaken {
		t.Fatalf("partial update violated: choice changed to %d on the exception case", b.ChoiceState(pc))
	}
	if b.BankCounterState(BankTaken, pc) != counter.StrongNotTaken {
		t.Fatalf("selected counter must keep training, got %d", b.BankCounterState(BankTaken, pc))
	}

	// The ablation variant must update the choice in the same situation.
	fb := MustNew(Config{ChoiceBits: 6, BankBits: 6, HistoryBits: 0, FullChoiceUpdate: true})
	fb.Update(pc, false)
	fb.Update(pc, true)
	fb.Update(pc, false)
	if fb.ChoiceState(pc) != counter.WeakNotTaken {
		t.Fatalf("full-choice-update ablation should have weakened the choice, got %d", fb.ChoiceState(pc))
	}
}

func TestUpdateBothBanksAblation(t *testing.T) {
	b := MustNew(Config{ChoiceBits: 6, BankBits: 6, HistoryBits: 0, UpdateBothBanks: true})
	pc := uint64(0x200)
	b.Update(pc, true)
	if b.BankCounterState(BankNotTaken, pc) != counter.WeakTaken {
		t.Fatalf("both-banks ablation must train the unselected bank too")
	}
}

// TestDeAliasing reproduces the paper's core claim in miniature: two
// opposite-bias branches that collide on a gshare counter are separated
// by the bi-mode choice predictor into different banks.
func TestDeAliasing(t *testing.T) {
	bm := MustNew(Config{ChoiceBits: 8, BankBits: 4, HistoryBits: 4})
	gs := baselines.NewGshare(4, 4)
	// Steady-state histories of the stream [a taken, b not-taken] are
	// 1010 before a and 0101 before b; pca>>2=0, pcb>>2=15 collide at
	// gshare index 10. The bi-mode direction banks collide identically,
	// but the choice predictor (PC-indexed, 256 entries) steers a and b
	// to different banks.
	a, b := uint64(0x0), uint64(0xF<<2)
	missBM, missGS := 0, 0
	for i := 0; i < 500; i++ {
		if bm.Predict(a) != true {
			missBM++
		}
		bm.Update(a, true)
		if bm.Predict(b) != false {
			missBM++
		}
		bm.Update(b, false)

		if gs.Predict(a) != true {
			missGS++
		}
		gs.Update(a, true)
		if gs.Predict(b) != false {
			missGS++
		}
		gs.Update(b, false)
	}
	if missGS < 200 {
		t.Fatalf("setup broken: gshare should thrash, missed %d/1000", missGS)
	}
	if missBM > 20 {
		t.Fatalf("bi-mode must de-alias the opposite-bias pair, missed %d/1000", missBM)
	}
}

func TestCostIsOneAndAHalfGshare(t *testing.T) {
	b := MustNew(DefaultConfig(10))
	gshareNextSmaller := baselines.NewGshare(11, 11)
	if b.CostBits() != gshareNextSmaller.CostBits()*3/2 {
		t.Fatalf("bi-mode cost %d, want 1.5x gshare(11) = %d", b.CostBits(), gshareNextSmaller.CostBits()*3/2)
	}
}

func TestCounterIDContract(t *testing.T) {
	b := MustNew(DefaultConfig(5))
	if b.NumCounters() != 2<<5 {
		t.Fatalf("NumCounters = %d, want %d", b.NumCounters(), 2<<5)
	}
	f := func(pc uint64, outcomes []bool) bool {
		id := b.CounterID(pc)
		if id < 0 || id >= b.NumCounters() {
			return false
		}
		for _, o := range outcomes {
			b.Update(pc, o)
			id := b.CounterID(pc)
			if id < 0 || id >= b.NumCounters() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCounterIDReflectsBankSelection: the identifier moves between bank
// halves when the choice flips.
func TestCounterIDReflectsBankSelection(t *testing.T) {
	b := MustNew(Config{ChoiceBits: 6, BankBits: 6, HistoryBits: 0})
	pc := uint64(0x240)
	idTaken := b.CounterID(pc)
	if idTaken < 1<<6 {
		t.Fatalf("fresh predictor selects the taken bank; id %d should be in the upper half", idTaken)
	}
	b.Update(pc, false)
	b.Update(pc, false) // choice -> not-taken side
	idNT := b.CounterID(pc)
	if idNT >= 1<<6 {
		t.Fatalf("after retraining, id %d should be in the NT bank half", idNT)
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	b := MustNew(DefaultConfig(6))
	pc := uint64(0x280)
	for i := 0; i < 50; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Fatalf("trained predictor should predict not-taken")
	}
	b.Reset()
	if !b.Predict(pc) || b.HistoryValue() != 0 {
		t.Fatalf("reset must restore initialization and clear history")
	}
}

// TestDeterminism: two identical predictors fed the same stream make
// identical predictions.
func TestDeterminism(t *testing.T) {
	f := func(pcs []uint16, outcomes []bool) bool {
		a := MustNew(DefaultConfig(6))
		b := MustNew(DefaultConfig(6))
		n := len(pcs)
		if len(outcomes) < n {
			n = len(outcomes)
		}
		for i := 0; i < n; i++ {
			pc := uint64(pcs[i]) << 2
			if a.Predict(pc) != b.Predict(pc) {
				return false
			}
			a.Update(pc, outcomes[i])
			b.Update(pc, outcomes[i])
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestName(t *testing.T) {
	if got := MustNew(DefaultConfig(9)).Name(); got != "bi-mode(9c,9b,9h)" {
		t.Fatalf("name = %q", got)
	}
	cfg := DefaultConfig(9)
	cfg.FullChoiceUpdate = true
	cfg.UpdateBothBanks = true
	if got := MustNew(cfg).Name(); got != "bi-mode(9c,9b,9h)+fullchoice+bothbanks" {
		t.Fatalf("ablation name = %q", got)
	}
}

func TestConfigEcho(t *testing.T) {
	cfg := Config{ChoiceBits: 5, BankBits: 7, HistoryBits: 3}
	b := MustNew(cfg)
	if b.Config() != cfg {
		t.Fatalf("Config() = %+v, want %+v", b.Config(), cfg)
	}
}
