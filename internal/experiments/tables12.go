package experiments

import (
	"fmt"
	"strings"

	"bimode/internal/synth"
	"bimode/internal/trace"
)

// Table1Row documents the input standing in for one SPEC CINT95 input
// data file (the paper's Table 1), extended with the profile parameters
// that define the substitute workload.
type Table1Row struct {
	Benchmark  string
	PaperInput string
	Profile    synth.Profile
}

// Table1 returns the SPEC CINT95 input documentation rows.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, p := range synth.Profiles() {
		if p.Suite != synth.SuiteSPEC {
			continue
		}
		rows = append(rows, Table1Row{Benchmark: p.Name, PaperInput: p.InputNote, Profile: p})
	}
	return rows
}

// RenderTable1 formats Table 1 as text.
//
//bimode:deterministic
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: SPEC CINT95 input data files (paper) and the synthetic profile standing in\n\n")
	fmt.Fprintf(&b, "%-10s %-28s %-48s\n", "benchmark", "paper input", "profile mix (loop/corr/pat/weak, seed)")
	for _, r := range rows {
		p := r.Profile
		fmt.Fprintf(&b, "%-10s %-28s %4.0f%%/%2.0f%%/%2.0f%%/%2.0f%%  seed=%#x\n",
			r.Benchmark, r.PaperInput,
			100*p.FracLoop, 100*p.FracCorrelated, 100*p.FracPattern, 100*p.FracWeak, p.Seed)
	}
	return b.String()
}

// Table2Row is one row of the paper's Table 2: static and dynamic
// conditional branch counts per benchmark.
type Table2Row struct {
	Suite string
	Stats trace.Stats
	// PaperStatic and PaperDynamic are the counts the paper reports, for
	// side-by-side comparison (dynamic counts are scaled by 1/8 in the
	// default configuration).
	PaperStatic, PaperDynamic int
}

// paperTable2 records the counts from the paper's Table 2.
var paperTable2 = map[string][2]int{
	"compress":   {482, 10114353},
	"gcc":        {16035, 26520618},
	"go":         {5112, 17873772},
	"xlisp":      {636, 25008567},
	"perl":       {1974, 39714684},
	"vortex":     {6599, 27792020},
	"groff":      {6333, 11901481},
	"gs":         {12852, 16307247},
	"mpeg_play":  {5598, 9566290},
	"nroff":      {5249, 22574884},
	"real_gcc":   {17361, 14309867},
	"sdet":       {5310, 5514439},
	"verilog":    {4636, 6212381},
	"video_play": {4606, 5759231},
}

// Table2 measures branch statistics for all fourteen benchmarks; the
// per-benchmark collection runs through cfg's scheduler with row order
// (and therefore the rendered bytes) independent of the worker count.
func Table2(cfg Config) []Table2Row {
	profiles := synth.Profiles()
	rows := make([]Table2Row, len(profiles))
	mustAll(cfg.sched().Do(len(profiles), func(i int) error {
		p := profiles[i]
		if cfg.Dynamic > 0 {
			p = p.WithDynamic(cfg.Dynamic)
		}
		paper := paperTable2[p.Name]
		rows[i] = Table2Row{
			Suite:        p.Suite,
			Stats:        trace.Collect(synth.MustWorkload(p)),
			PaperStatic:  paper[0],
			PaperDynamic: paper[1],
		}
		return nil
	}))
	return rows
}

// RenderTable2 formats Table 2 as text.
//
//bimode:deterministic
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: static and dynamic conditional branch counts\n")
	b.WriteString("(dynamic counts are the paper's scaled by 1/8; static = sites that appeared)\n\n")
	fmt.Fprintf(&b, "%-12s %-12s %10s %10s %12s %12s %8s\n",
		"suite", "benchmark", "static", "paper", "dynamic", "paper/8", "taken%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %10d %10d %12d %12d %7.1f%%\n",
			r.Suite, r.Stats.Name, r.Stats.StaticBranches, r.PaperStatic,
			r.Stats.DynamicBranches, r.PaperDynamic/8, 100*r.Stats.TakenRate())
	}
	return b.String()
}
