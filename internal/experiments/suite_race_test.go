package experiments

import (
	"sync"
	"testing"

	"bimode/internal/synth"
	"bimode/internal/trace"
)

// TestSuiteSourcesMemoRace hammers the process-wide suite memo from many
// goroutines requesting the same (suite, dynamic) key and asserts a single
// materialization: every caller must receive the exact same *trace.Memory
// instances (pointer identity), not freshly regenerated traces. Run under
// `go test -race` (the CI default) this also proves the memo's locking.
func TestSuiteSourcesMemoRace(t *testing.T) {
	// A dynamic count no other test uses, so this test owns the memo key.
	cfg := Config{Dynamic: 1777}
	const goroutines = 16

	results := make([][]trace.Source, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer done.Done()
			start.Wait() // maximize contention on the first materialization
			results[g] = SuiteSources(synth.SuiteSPEC, cfg)
		}(g)
	}
	start.Done()
	done.Wait()

	ref := results[0]
	if len(ref) == 0 {
		t.Fatal("no SPEC sources")
	}
	refMems := asMemories(t, ref)
	for g := 1; g < goroutines; g++ {
		if len(results[g]) != len(ref) {
			t.Fatalf("goroutine %d got %d sources, want %d", g, len(results[g]), len(ref))
		}
		for i, m := range asMemories(t, results[g]) {
			if m != refMems[i] {
				t.Fatalf("goroutine %d source %d is a distinct materialization (%p vs %p)",
					g, i, m, refMems[i])
			}
		}
	}

	// A later sequential call still hits the same memo entry...
	for i, m := range asMemories(t, SuiteSources(synth.SuiteSPEC, cfg)) {
		if m != refMems[i] {
			t.Errorf("sequential call re-materialized source %d", i)
		}
	}
	// ...while a different key gets a different set.
	other := asMemories(t, SuiteSources(synth.SuiteSPEC, Config{Dynamic: 1778}))
	if other[0] == refMems[0] {
		t.Error("distinct dynamic counts share a materialization")
	}

	// Callers get fresh slices they may reorder without corrupting the memo.
	a := SuiteSources(synth.SuiteSPEC, cfg)
	a[0], a[1] = a[1], a[0]
	b := SuiteSources(synth.SuiteSPEC, cfg)
	if asMemories(t, b)[0] != refMems[0] {
		t.Error("mutating a returned slice leaked into the memo")
	}
}

func asMemories(t *testing.T, srcs []trace.Source) []*trace.Memory {
	t.Helper()
	out := make([]*trace.Memory, len(srcs))
	for i, s := range srcs {
		m, ok := s.(*trace.Memory)
		if !ok {
			t.Fatalf("source %d is %T, not a materialized trace", i, s)
		}
		out[i] = m
	}
	return out
}
