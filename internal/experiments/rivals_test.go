package experiments

import (
	"strings"
	"testing"
)

func TestRivalsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	cfg := Config{Dynamic: 25000, MinSizeBits: 9, MaxSizeBits: 10}
	rows := Rivals(cfg)
	if len(rows) != 2 {
		t.Fatalf("want 2 size rows, got %d", len(rows))
	}
	for _, row := range rows {
		if len(row) != 8 {
			t.Fatalf("want 8 schemes, got %d", len(row))
		}
		for _, p := range row {
			if p.SPECRate <= 0 || p.SPECRate > 0.6 || p.IBSRate <= 0 || p.IBSRate > 0.6 {
				t.Fatalf("%s: implausible rates %+v", p.Scheme, p)
			}
			if p.CostBytes <= 0 {
				t.Fatalf("%s: missing cost", p.Scheme)
			}
		}
	}
	// Budgets must grow along the axis.
	if rows[1][0].CostBytes <= rows[0][0].CostBytes {
		t.Fatalf("cost axis not increasing")
	}
	text := RenderRivals(rows)
	for _, want := range []string{"bi-mode", "e-gskew", "tournament", "IBS-Ultrix"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q", want)
		}
	}
	if RenderRivals(nil) == "" {
		t.Fatalf("empty render must still produce a header")
	}
}
