package experiments

// Experiment-level half of the determinism oracle (the job-level half
// lives in internal/sim): the figure sweep, report grid and rendered
// artifacts produced through the worker pool must be byte-identical to the
// sequential reference scheduler's output — and to the committed golden
// files, which were generated sequentially. Plus the concurrency stress
// test over the shared suite memo. CI runs this file under -race in the
// test-parallel job.

import (
	"bytes"
	"encoding/json"
	"runtime"
	"sync"
	"testing"
	"time"

	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/synth"
	"bimode/internal/zoo"
)

// seqCfg and parCfg are the golden configuration pinned to each scheduler
// path; everything else identical.
func oracleCfgs() (seq, par Config) {
	seq, par = goldenCfg, goldenCfg
	seq.Sched = sim.NewScheduler(0)
	par.Sched = sim.NewScheduler(8)
	return seq, par
}

// TestParallelFiguresMatchSequential renders the full Figures 2-4 sweep
// through both schedulers and compares the emitted bytes: the CSV that
// feeds replotting and every rendered panel. Parallelism must never move
// a digit.
func TestParallelFiguresMatchSequential(t *testing.T) {
	seqCfg, parCfg := oracleCfgs()
	render := func(f *Fig234) string {
		var b bytes.Buffer
		panels := append([]SizeCurves{f.SPECAvg, f.IBSAvg}, append(f.SPEC, f.IBS...)...)
		b.WriteString(CurvesCSV(panels))
		for _, c := range panels {
			b.WriteString(RenderSizeCurves(c))
		}
		return b.String()
	}
	seq := render(Figures234(seqCfg))
	par := render(Figures234(parCfg))
	if seq != par {
		t.Errorf("parallel Figures234 output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

// TestParallelMatchesGolden checks the pooled path against the committed
// golden artifacts directly: the bytes a -parallel 8 run emits are the
// bytes in testdata/, not merely self-consistent.
func TestParallelMatchesGolden(t *testing.T) {
	_, parCfg := oracleCfgs()
	f := Figures234(parCfg)
	panels := append([]SizeCurves{f.SPECAvg, f.IBSAvg}, append(f.SPEC, f.IBS...)...)
	checkGolden(t, "curves.csv.golden", CurvesCSV(panels))
	checkGolden(t, "fig2_spec_avg.txt.golden", RenderSizeCurves(f.SPECAvg))
	checkGolden(t, "table2.txt.golden", RenderTable2(Table2(parCfg)))
}

// TestObserveSuiteOracle compares the serialized report bundle across
// schedulers. The engine's self-measurement (wall seconds, branches/sec)
// is inherently nondeterministic and is zeroed on both sides; every
// simulation-derived byte must match.
func TestObserveSuiteOracle(t *testing.T) {
	seqCfg, parCfg := oracleCfgs()
	specs := []string{"bimode:b=8", "gshare:i=9,h=9"}
	marshal := func(cfg Config) []byte {
		t.Helper()
		obs, err := ObserveSuite(synth.SuiteSPEC, specs, cfg, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range obs.Reports {
			obs.Reports[i].WallSeconds = 0
			obs.Reports[i].BranchesPerSec = 0
		}
		data, err := json.MarshalIndent(obs, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	seq := marshal(seqCfg)
	par := marshal(parCfg)
	if !bytes.Equal(seq, par) {
		t.Errorf("parallel ObserveSuite JSON differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

// TestParallelStress hammers the shared suite memo with mixed RunAll and
// ObserveSuite traffic from 16 goroutines (over 100 iterations total) and
// then checks the pool leaked no goroutines: every worker the schedulers
// spawned must have exited. Run under -race this is the scheduler's
// aliasing audit.
func TestParallelStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// A dynamic count no other test uses, so this test owns its memo key.
	cfg := Config{Dynamic: 1779, Sched: sim.NewScheduler(4)}
	before := runtime.NumGoroutine()

	const goroutines = 16
	const iters = 7 // 16 * 7 = 112 mixed operations
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	errc := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer done.Done()
			start.Wait()
			for it := 0; it < iters; it++ {
				if (g+it)%2 == 0 {
					sources := SuiteSources(synth.SuiteSPEC, cfg)
					jobs := make([]sim.Job, len(sources))
					for i, src := range sources {
						jobs[i] = sim.Job{
							Make:   func() predictor.Predictor { return zoo.MustNew("bimode:b=7") },
							Source: src,
						}
					}
					for _, res := range cfg.sched().RunAll(jobs) {
						if res.Err != nil {
							errc <- res.Err
						}
					}
				} else {
					if _, err := ObserveSuite(synth.SuiteIBS, []string{"gshare:i=8,h=8"}, cfg, 3); err != nil {
						errc <- err
					}
				}
			}
		}(g)
	}
	start.Done()
	done.Wait()
	close(errc)
	for err := range errc {
		t.Errorf("stress operation failed: %v", err)
	}

	// Pool goroutines end when Do returns; give the runtime a moment to
	// reap them before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before stress, %d after", before, after)
	}
}
