package experiments

import (
	"fmt"
	"strings"

	"bimode/internal/analysis"
	"bimode/internal/baselines"
	"bimode/internal/core"
	"bimode/internal/predictor"
	"bimode/internal/textplot"
	"bimode/internal/trace"
)

// BiasBreakdown is the data behind one panel of Figures 5 or 6: the
// per-counter dominant / non-dominant / WB fractions, sorted by WB
// fraction, plus the aggregate area shares.
type BiasBreakdown struct {
	Scheme   string
	Workload string
	// Counters holds (dominant, nonDominant, wb) fraction triples in the
	// figure's x order.
	Counters [][3]float64
	// DominantArea, NonDominantArea and WBArea are the aggregate shares.
	DominantArea, NonDominantArea, WBArea float64
	// Study retains the full analysis for further inspection.
	Study *analysis.Study
}

func newBreakdown(st *analysis.Study) BiasBreakdown {
	b := BiasBreakdown{Scheme: st.Predictor, Workload: st.Workload, Study: st}
	for _, cb := range st.SortedByWB() {
		d, nd, w := cb.Fractions()
		b.Counters = append(b.Counters, [3]float64{d, nd, w})
	}
	b.DominantArea, b.NonDominantArea, b.WBArea = st.AreaShares()
	return b
}

// Figure5 reproduces the paper's Figure 5 on the given workload
// (canonically gcc): bias breakdowns of a 256-counter gshare indexed with
// 8 bits of history ("history-indexed") and with 2 bits of history
// ("address-indexed").
func Figure5(workload string, cfg Config) (history, address BiasBreakdown, err error) {
	src, err := Workload(workload, cfg)
	if err != nil {
		return BiasBreakdown{}, BiasBreakdown{}, err
	}
	makes := []func() predictor.Predictor{
		func() predictor.Predictor { return baselines.NewGshare(8, 8) },
		func() predictor.Predictor { return baselines.NewGshare(8, 2) },
	}
	studies := make([]*analysis.Study, len(makes))
	if err := firstErr(cfg.sched().Do(len(makes), func(i int) error {
		st, err := analysis.RunStudy(makes[i], src)
		studies[i] = st
		return err
	})); err != nil {
		return BiasBreakdown{}, BiasBreakdown{}, err
	}
	return newBreakdown(studies[0]), newBreakdown(studies[1]), nil
}

// Figure6 reproduces Figure 6: the bias breakdown of the bi-mode scheme
// with a 128-counter choice predictor and two 128-counter direction banks.
func Figure6(workload string, cfg Config) (BiasBreakdown, error) {
	src, err := Workload(workload, cfg)
	if err != nil {
		return BiasBreakdown{}, err
	}
	st, err := analysis.RunStudy(func() predictor.Predictor {
		return core.MustNew(core.DefaultConfig(7))
	}, src)
	if err != nil {
		return BiasBreakdown{}, err
	}
	return newBreakdown(st), nil
}

// RenderBreakdown formats a bias breakdown as area shares plus a compact
// per-decile profile of the sorted counters.
//
//bimode:deterministic
func RenderBreakdown(b BiasBreakdown) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s on %s — bias breakdown over %d counters\n",
		b.Scheme, b.Workload, len(b.Counters))
	sb.WriteString(textplot.Bar("dominant", b.DominantArea, 40) + "\n")
	sb.WriteString(textplot.Bar("non-dominant", b.NonDominantArea, 40) + "\n")
	sb.WriteString(textplot.Bar("WB", b.WBArea, 40) + "\n")
	sb.WriteString("per-decile WB / non-dominant fractions along the sorted counter axis:\n  ")
	n := len(b.Counters)
	for d := 0; d < 10 && n > 0; d++ {
		lo, hi := d*n/10, (d+1)*n/10
		if hi == lo {
			continue
		}
		var wb, nd float64
		for _, c := range b.Counters[lo:hi] {
			nd += c[1]
			wb += c[2]
		}
		fmt.Fprintf(&sb, "%2.0f/%2.0f ", 100*wb/float64(hi-lo), 100*nd/float64(hi-lo))
	}
	sb.WriteString("\n")
	return sb.String()
}

// Table3 reproduces the worked normalized-count example on the most
// contended counter of the history-indexed gshare from Figure 5.
func Table3(workload string, cfg Config) (analysis.CounterExample, error) {
	src, err := Workload(workload, cfg)
	if err != nil {
		return analysis.CounterExample{}, err
	}
	st, err := analysis.RunStudy(func() predictor.Predictor { return baselines.NewGshare(8, 8) }, src)
	if err != nil {
		return analysis.CounterExample{}, err
	}
	pcOf := pcIndex(src)
	ex, ok := analysis.FindExample(st, pcOf)
	if !ok {
		return analysis.CounterExample{}, fmt.Errorf("experiments: workload %s produced no branches", workload)
	}
	return ex, nil
}

// pcIndex builds a static-id -> representative-PC map from a trace.
func pcIndex(src trace.Source) func(uint32) uint64 {
	pcs := map[uint32]uint64{}
	st := src.Stream()
	for {
		r, ok := st.Next()
		if !ok {
			break
		}
		if _, seen := pcs[r.Static]; !seen {
			pcs[r.Static] = r.PC &^ (1 << 63)
		}
	}
	return func(s uint32) uint64 { return pcs[s] }
}

// RenderTable3 formats the counter example like the paper's Table 3.
//
//bimode:deterministic
func RenderTable3(ex analysis.CounterExample) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: normalized counts at counter %d (most destructive aliasing)\n\n", ex.Counter)
	fmt.Fprintf(&b, "%-12s %10s %10s %6s %12s\n", "branch PC", "count", "taken", "class", "normalized")
	rows := ex.Rows
	if len(rows) > 12 {
		rows = rows[:12]
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "0x%-10x %10d %10d %6s %11.1f%%\n",
			r.PC, r.Count, r.Taken, r.Class, 100*r.Normalized)
	}
	fmt.Fprintf(&b, "\ndominant class %s holds %.1f%% of accesses; WB holds %.1f%%\n",
		ex.DominantClass, 100*ex.DominantShare, 100*ex.WBShare)
	return b.String()
}

// Table4Result compares bias-class interruption counts between the
// history-indexed gshare and the bi-mode scheme (the paper's Table 4).
type Table4Result struct {
	Workload string
	// HistoryIndexed and BiMode hold interruption counts indexed by
	// analysis.CatDominant/CatNonDominant/CatWB.
	HistoryIndexed, BiMode [3]int
	// Branches is the dynamic branch count, for rate context.
	Branches int
}

// Table4 runs the interruption-count comparison.
func Table4(workload string, cfg Config) (Table4Result, error) {
	src, err := Workload(workload, cfg)
	if err != nil {
		return Table4Result{}, err
	}
	makes := []func() predictor.Predictor{
		func() predictor.Predictor { return baselines.NewGshare(8, 8) },
		func() predictor.Predictor { return core.MustNew(core.DefaultConfig(7)) },
	}
	studies := make([]*analysis.Study, len(makes))
	if err := firstErr(cfg.sched().Do(len(makes), func(i int) error {
		st, err := analysis.RunStudy(makes[i], src)
		studies[i] = st
		return err
	})); err != nil {
		return Table4Result{}, err
	}
	return Table4Result{
		Workload:       workload,
		HistoryIndexed: studies[0].Interruptions,
		BiMode:         studies[1].Interruptions,
		Branches:       studies[0].Branches,
	}, nil
}

// RenderTable4 formats the interruption comparison.
//
//bimode:deterministic
func RenderTable4(t Table4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: bias-class interruption counts on %s (%d branches)\n\n", t.Workload, t.Branches)
	fmt.Fprintf(&b, "%-16s %12s %12s %12s %12s\n", "scheme", "dominant", "non-dominant", "WB", "total")
	row := func(name string, c [3]int) {
		fmt.Fprintf(&b, "%-16s %12d %12d %12d %12d\n", name, c[0], c[1], c[2], c[0]+c[1]+c[2])
	}
	row("history-indexed", t.HistoryIndexed)
	row("bi-mode", t.BiMode)
	return b.String()
}

// ClassBreakdownPoint is one bar of Figures 7-8: one scheme at one size,
// with misprediction attributed to the three bias classes.
type ClassBreakdownPoint struct {
	// Label matches the paper's bar labels, e.g. "gshare(8)" or
	// "bi-mode(7)".
	Label string
	// Counters is the total second-level counter count.
	Counters int
	// SNT, ST and WB are misprediction contributions as fractions of all
	// branches; their sum is the scheme's misprediction rate.
	SNT, ST, WB float64
}

// Figures78 reproduces the misprediction-by-class comparison (Figure 7
// for gcc, Figure 8 for go): at 256, 1K and 32K second-level counters it
// compares an address-indexed gshare (few history bits), a history-
// indexed gshare (full history), and the bi-mode scheme whose direction
// banks total the same counter count.
func Figures78(workload string, cfg Config) ([]ClassBreakdownPoint, error) {
	src, err := Workload(workload, cfg)
	if err != nil {
		return nil, err
	}
	// (size log2, few-history bits) pairs per the paper's bar labels. The
	// nine studies are independent; they fan out through cfg's scheduler
	// with the output order fixed by the bar list, not by completion.
	sizes := []struct{ s, few int }{{8, 2}, {10, 4}, {15, 7}}
	type bar struct {
		label    string
		counters int
		mk       func() predictor.Predictor
	}
	var bars []bar
	for _, sz := range sizes {
		sz := sz
		bars = append(bars,
			bar{fmt.Sprintf("gshare(%d)", sz.few), 1 << uint(sz.s), func() predictor.Predictor { return baselines.NewGshare(sz.s, sz.few) }},
			bar{fmt.Sprintf("gshare(%d)", sz.s), 1 << uint(sz.s), func() predictor.Predictor { return baselines.NewGshare(sz.s, sz.s) }},
			bar{fmt.Sprintf("bi-mode(%d)", sz.s-1), 1 << uint(sz.s), func() predictor.Predictor { return core.MustNew(core.DefaultConfig(sz.s - 1)) }},
		)
	}
	out := make([]ClassBreakdownPoint, len(bars))
	if err := firstErr(cfg.sched().Do(len(bars), func(i int) error {
		st, err := analysis.RunStudy(bars[i].mk, src)
		if err != nil {
			return err
		}
		out[i] = ClassBreakdownPoint{
			Label:    bars[i].label,
			Counters: bars[i].counters,
			SNT:      st.ClassRate(analysis.SNT),
			ST:       st.ClassRate(analysis.ST),
			WB:       st.ClassRate(analysis.WB),
		}
		return nil
	})); err != nil {
		return nil, err
	}
	return out, nil
}

// RenderFigures78 formats the class breakdown bars.
//
//bimode:deterministic
func RenderFigures78(workload string, pts []ClassBreakdownPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Misprediction by bias class on %s (%% of all branches)\n\n", workload)
	fmt.Fprintf(&b, "%-10s %-14s %8s %8s %8s %8s\n", "counters", "scheme", "SNT", "ST", "WB", "total")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-10d %-14s %8.2f %8.2f %8.2f %8.2f\n",
			p.Counters, p.Label, 100*p.SNT, 100*p.ST, 100*p.WB, 100*(p.SNT+p.ST+p.WB))
	}
	return b.String()
}
