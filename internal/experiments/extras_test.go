package experiments

import (
	"strings"
	"testing"
)

func TestProgramsCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("program runs")
	}
	res, err := ProgramsCrossCheck(Config{Dynamic: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 7*3 {
		t.Fatalf("want 21 results, got %d", len(res))
	}
	for _, r := range res {
		if r.Branches != 30000 {
			t.Fatalf("%s on %s: branches %d", r.Predictor, r.Workload, r.Branches)
		}
	}
	text := RenderProgramsCrossCheck(res)
	for _, want := range []string{"lzw", "regexish", "bi-mode"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestContextSwitch(t *testing.T) {
	if testing.Short() {
		t.Skip("interleave runs")
	}
	rows, err := ContextSwitch("xlisp", "sdet", 200, Config{Dynamic: 60000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 schemes, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Isolated <= 0 || r.Interleaved <= 0 {
			t.Fatalf("%s: rates missing: %+v", r.Scheme, r)
		}
		// Interleaving should not massively IMPROVE accuracy.
		if r.Interleaved < r.Isolated*0.9 {
			t.Errorf("%s: interleaving improved accuracy implausibly: %+v", r.Scheme, r)
		}
	}
	if !strings.Contains(RenderContextSwitch("xlisp", "sdet", 200, rows), "interleaved") {
		t.Fatalf("render incomplete")
	}
}

func TestContextSwitchErrors(t *testing.T) {
	if _, err := ContextSwitch("nope", "sdet", 100, Config{Dynamic: 1000}); err == nil {
		t.Fatalf("unknown workload must fail")
	}
	if _, err := ContextSwitch("xlisp", "nope", 100, Config{Dynamic: 1000}); err == nil {
		t.Fatalf("unknown workload must fail")
	}
}
