package experiments

import (
	"fmt"
	"strings"

	"bimode/internal/baselines"
	"bimode/internal/core"
	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/trace"
	"bimode/internal/workloads"
)

// ProgramsCrossCheck runs the three headline schemes over the
// instrumented real programs — the non-parametric sanity check on the
// synthetic calibration: genuine branch streams from real algorithms
// should show the same qualitative ordering.
func ProgramsCrossCheck(cfg Config) ([]sim.Result, error) {
	names := []string{"lzw", "expr", "minilisp", "sortbench", "playout", "huffman", "regexish"}
	dyn := cfg.Dynamic
	if dyn == 0 {
		dyn = 400000
	}
	// Instantiate (cheap, fallible) sequentially, run each instrumented
	// program to a trace through the scheduler, then dispatch the
	// simulation grid over the shared materializations.
	sched := cfg.sched()
	srcs := make([]trace.Source, len(names))
	for i, name := range names {
		src, err := workloads.Get(name, workloads.Options{Dynamic: dyn})
		if err != nil {
			return nil, err
		}
		srcs[i] = src
	}
	mats := make([]*trace.Memory, len(srcs))
	mustAll(sched.Do(len(srcs), func(i int) error {
		mats[i] = trace.Materialize(srcs[i])
		return nil
	}))
	var jobs []sim.Job
	for _, mat := range mats {
		for _, mk := range []func() predictor.Predictor{
			func() predictor.Predictor { return baselines.NewSmith(12) },
			func() predictor.Predictor { return baselines.NewGshare(12, 12) },
			func() predictor.Predictor { return core.MustNew(core.DefaultConfig(11)) },
		} {
			jobs = append(jobs, sim.Job{Make: mk, Source: mat})
		}
	}
	return sched.RunAll(jobs), nil
}

// RenderProgramsCrossCheck formats the cross-check.
//
//bimode:deterministic
func RenderProgramsCrossCheck(results []sim.Result) string {
	var b strings.Builder
	b.WriteString("Instrumented real programs (non-parametric cross-check), mispredict %:\n\n")
	fmt.Fprintf(&b, "%-12s %10s %12s %10s\n", "program", "smith 1KB", "gshare 1KB", "bi-mode 1.5KB")
	for i := 0; i+2 < len(results); i += 3 {
		fmt.Fprintf(&b, "%-12s %9.2f%% %11.2f%% %9.2f%%\n",
			results[i].Workload,
			100*results[i].MispredictRate(),
			100*results[i+1].MispredictRate(),
			100*results[i+2].MispredictRate())
	}
	return b.String()
}

// ContextSwitchResult measures how quantum-interleaving two workloads
// (kernel+user style, as in the IBS traces) damages each scheme compared
// to running the same workloads back to back.
type ContextSwitchResult struct {
	Scheme string
	// Isolated is the average rate over the two workloads run alone;
	// Interleaved is the rate on the quantum-mixed trace.
	Isolated, Interleaved float64
}

// ContextSwitch runs the study on two named synthetic benchmarks.
func ContextSwitch(a, b string, quantum int, cfg Config) ([]ContextSwitchResult, error) {
	srcA, err := Workload(a, cfg)
	if err != nil {
		return nil, err
	}
	srcB, err := Workload(b, cfg)
	if err != nil {
		return nil, err
	}
	mixed, err := trace.Interleave(a+"+"+b, quantum, srcA, srcB)
	if err != nil {
		return nil, err
	}
	schemes := []struct {
		name string
		mk   func() predictor.Predictor
	}{
		{"smith(13)", func() predictor.Predictor { return baselines.NewSmith(13) }},
		{"gshare.1PHT(13)", func() predictor.Predictor { return baselines.NewGshare(13, 13) }},
		{"bi-mode(12)", func() predictor.Predictor { return core.MustNew(core.DefaultConfig(12)) }},
	}
	// Three jobs per scheme (isolated a, isolated b, interleaved) in one
	// scheduler grid; the interleaved trace materializes once and is
	// shared across schemes.
	var jobs []sim.Job
	for _, sc := range schemes {
		for _, src := range []trace.Source{srcA, srcB, mixed} {
			jobs = append(jobs, sim.Job{Make: sc.mk, Source: src})
		}
	}
	flat := cfg.sched().RunAll(jobs)
	var out []ContextSwitchResult
	for i, sc := range schemes {
		ra, rb, rm := flat[3*i], flat[3*i+1], flat[3*i+2]
		iso := (float64(ra.Mispredicts) + float64(rb.Mispredicts)) /
			(float64(ra.Branches) + float64(rb.Branches))
		out = append(out, ContextSwitchResult{
			Scheme:      sc.name,
			Isolated:    iso,
			Interleaved: rm.MispredictRate(),
		})
	}
	return out, nil
}

// RenderContextSwitch formats the study.
//
//bimode:deterministic
func RenderContextSwitch(a, b string, quantum int, rows []ContextSwitchResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Context-switch study: %s and %s interleaved every %d branches\n", a, b, quantum)
	sb.WriteString("(the IBS traces mix kernel and user activity the same way)\n\n")
	fmt.Fprintf(&sb, "%-18s %10s %12s %8s\n", "scheme", "isolated", "interleaved", "damage")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %9.2f%% %11.2f%% %+7.2f\n",
			r.Scheme, 100*r.Isolated, 100*r.Interleaved, 100*(r.Interleaved-r.Isolated))
	}
	return sb.String()
}
