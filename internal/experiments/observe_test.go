package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"bimode/internal/synth"
)

// TestSection4DestructiveAliasing is the tentpole acceptance test: on the
// SPEC-like suite, bi-mode must show strictly less destructive aliasing
// than gshare at equal cost. There is no power-of-two gshare at exactly
// bi-mode's cost, so the test brackets it: bi-mode with 2^9-counter banks
// (384 B) must beat both the next cheaper gshare (2^10 counters, 256 B)
// and the next costlier one (2^11 counters, 512 B) — beating the larger
// gshare makes the equal-cost claim a fortiori.
func TestSection4DestructiveAliasing(t *testing.T) {
	cfg := Config{Dynamic: 100000}
	obs, err := ObserveSuite(synth.SuiteSPEC, []string{
		"gshare:i=10,h=10", "gshare:i=11,h=11", "bimode:b=9",
	}, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	rate := func(name string) float64 {
		r, ok := obs.DestructiveRate(name)
		if !ok {
			t.Fatalf("no interference metrics for %q", name)
		}
		return r
	}
	bimode := rate("bi-mode(9c,9b,9h)")
	gshareSmall := rate("gshare.1PHT(10)")
	gshareLarge := rate("gshare.1PHT(11)")
	if bimode <= 0 {
		t.Fatal("bi-mode shows no destructive aliasing at all; classification is broken")
	}
	if bimode >= gshareSmall {
		t.Errorf("bi-mode destructive rate %.4f not below cheaper gshare's %.4f", bimode, gshareSmall)
	}
	if bimode >= gshareLarge {
		t.Errorf("bi-mode destructive rate %.4f not below costlier gshare's %.4f", bimode, gshareLarge)
	}
	t.Logf("destructive aliasing per branch: bi-mode(384B)=%.4f gshare(256B)=%.4f gshare(512B)=%.4f",
		bimode, gshareSmall, gshareLarge)
}

// TestFigure2Observation checks the figure-attached reports: one per
// (spec, SPEC workload), each carrying interference metrics, and the
// bundle serializing cleanly.
func TestFigure2Observation(t *testing.T) {
	obs, err := Figure2Observation(Config{Dynamic: 30000}, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	specWorkloads := len(SuiteSources(synth.SuiteSPEC, Config{Dynamic: 30000}))
	if want := 2 * specWorkloads; len(obs.Reports) != want {
		t.Fatalf("got %d reports, want %d", len(obs.Reports), want)
	}
	for i := range obs.Reports {
		r := &obs.Reports[i]
		if r.Branches != 30000 {
			t.Errorf("%s/%s: %d branches, want 30000", r.Predictor, r.Workload, r.Branches)
		}
		if r.Interference == nil {
			t.Errorf("%s/%s: no interference metrics", r.Predictor, r.Workload)
		}
		if len(r.TopBranches) == 0 || len(r.TopBranches) > 5 {
			t.Errorf("%s/%s: top branches %d out of bounds", r.Predictor, r.Workload, len(r.TopBranches))
		}
	}
	// Bi-mode reports carry choice metrics; gshare reports must not.
	for i := range obs.Reports {
		r := &obs.Reports[i]
		isBimode := r.Predictor == "bi-mode(9c,9b,9h)"
		if isBimode != (r.Choice != nil) {
			t.Errorf("%s/%s: choice metrics presence wrong", r.Predictor, r.Workload)
		}
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(obs); err != nil {
		t.Fatal(err)
	}
	var back SuiteObservation
	if err := json.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if len(back.Reports) != len(obs.Reports) || back.Suite != obs.Suite {
		t.Error("observation did not survive a JSON round trip")
	}
}

func TestObserveSuiteErrors(t *testing.T) {
	if _, err := ObserveSuite("no-such-suite", []string{"smith:a=8"}, Config{Dynamic: 1000}, 0); err == nil {
		t.Error("unknown suite should fail")
	}
	if _, err := ObserveSuite(synth.SuiteSPEC, []string{"warlock:x=1"}, Config{Dynamic: 1000}, 0); err == nil {
		t.Error("unknown spec should fail")
	}
	if _, err := Figure2Observation(Config{Dynamic: 1000}, 1, 0); err == nil {
		t.Error("degenerate size should fail")
	}
}
