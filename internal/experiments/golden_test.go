package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenCfg is a deliberately small, fully deterministic configuration:
// synthetic workloads are seeded, the sweep math is integer counting, and
// renders use fixed-precision formatting, so the emitted bytes are stable
// across platforms. Regenerate with `go test ./internal/experiments -run
// Golden -update` after an intentional change to workloads or emitters.
var goldenCfg = Config{Dynamic: 4000, MinSizeBits: 8, MaxSizeBits: 9}

// goldenFig234 runs the figure sweep once for all golden tests.
var goldenFig234 = sync.OnceValue(func() *Fig234 { return Figures234(goldenCfg) })

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s\nIf the change is intentional, rerun with -update.",
			name, got, want)
	}
}

// TestGoldenCurvesCSV pins the replotting CSV for the Figures 2-4 sweep:
// the averaged panels plus every per-benchmark panel.
func TestGoldenCurvesCSV(t *testing.T) {
	f := goldenFig234()
	panels := append([]SizeCurves{f.SPECAvg, f.IBSAvg}, append(f.SPEC, f.IBS...)...)
	checkGolden(t, "curves.csv.golden", CurvesCSV(panels))
}

// TestGoldenSizeCurves pins the rendered Figure 2 panel (table + ASCII
// chart) for the SPEC average.
func TestGoldenSizeCurves(t *testing.T) {
	checkGolden(t, "fig2_spec_avg.txt.golden", RenderSizeCurves(goldenFig234().SPECAvg))
}

// TestGoldenTable1 pins the Table 1 text (profile documentation; no
// simulation involved, so it catches profile drift specifically).
func TestGoldenTable1(t *testing.T) {
	checkGolden(t, "table1.txt.golden", RenderTable1(Table1()))
}

// TestGoldenTable2 pins the Table 2 text (branch statistics at the golden
// scale).
func TestGoldenTable2(t *testing.T) {
	checkGolden(t, "table2.txt.golden", RenderTable2(Table2(goldenCfg)))
}
