// Package experiments defines one driver per table and figure of the
// paper's evaluation, each returning a typed result that the renderers in
// this package turn into text tables, ASCII figures and CSV. The mapping
// from paper artifact to driver is recorded in DESIGN.md's experiment
// index; measured-vs-paper values live in EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"bimode/internal/synth"
	"bimode/internal/trace"
	"bimode/internal/workloads"
)

// Config adjusts experiment scale. The zero value runs the defaults used
// by EXPERIMENTS.md.
type Config struct {
	// Dynamic overrides every workload's dynamic branch count; 0 keeps
	// the calibrated per-benchmark defaults (paper counts / 8).
	Dynamic int
	// MinSizeBits/MaxSizeBits bound the gshare size axis as log2(counter
	// count): defaults 10..17 = 0.25 KB .. 32 KB, the paper's axis.
	MinSizeBits, MaxSizeBits int
}

func (c Config) withDefaults() Config {
	if c.MinSizeBits == 0 {
		c.MinSizeBits = 10
	}
	if c.MaxSizeBits == 0 {
		c.MaxSizeBits = 17
	}
	return c
}

// SuiteSources materializes the named suite's workloads once so every
// simulation replays the same in-memory traces.
func SuiteSources(suite string, cfg Config) []trace.Source {
	var out []trace.Source
	for _, p := range synth.Profiles() {
		if p.Suite != suite {
			continue
		}
		if cfg.Dynamic > 0 {
			p = p.WithDynamic(cfg.Dynamic)
		}
		out = append(out, trace.Materialize(synth.MustWorkload(p)))
	}
	return out
}

// Workload materializes one named workload.
func Workload(name string, cfg Config) (trace.Source, error) {
	src, err := workloads.Get(name, workloads.Options{Dynamic: cfg.Dynamic})
	if err != nil {
		return nil, err
	}
	return trace.Materialize(src), nil
}

// kb formats a byte count the way the paper's size axis does.
func kb(bytes float64) string {
	switch {
	case bytes >= 1024:
		return fmt.Sprintf("%gK", bytes/1024)
	default:
		return fmt.Sprintf("%gB", bytes)
	}
}
