// Package experiments defines one driver per table and figure of the
// paper's evaluation, each returning a typed result that the renderers in
// this package turn into text tables, ASCII figures and CSV. The mapping
// from paper artifact to driver is recorded in DESIGN.md's experiment
// index; measured-vs-paper values live in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sync"

	"bimode/internal/synth"
	"bimode/internal/trace"
	"bimode/internal/workloads"
)

// Config adjusts experiment scale. The zero value runs the defaults used
// by EXPERIMENTS.md.
type Config struct {
	// Dynamic overrides every workload's dynamic branch count; 0 keeps
	// the calibrated per-benchmark defaults (paper counts / 8).
	Dynamic int
	// MinSizeBits/MaxSizeBits bound the gshare size axis as log2(counter
	// count): defaults 10..17 = 0.25 KB .. 32 KB, the paper's axis.
	MinSizeBits, MaxSizeBits int
}

func (c Config) withDefaults() Config {
	if c.MinSizeBits == 0 {
		c.MinSizeBits = 10
	}
	if c.MaxSizeBits == 0 {
		c.MaxSizeBits = 17
	}
	return c
}

// suiteMemo caches materialized suites across SuiteSources calls, keyed by
// the two parameters that determine the trace contents. cmd/paper,
// cmd/sweep and the benchmarks all sweep the same suites repeatedly;
// without the memo each call regenerated identical multi-million-branch
// traces from scratch.
var suiteMemo = struct {
	sync.Mutex
	m map[suiteKey][]*trace.Memory
}{m: map[suiteKey][]*trace.Memory{}}

type suiteKey struct {
	suite   string
	dynamic int
}

// SuiteSources materializes the named suite's workloads once per (suite,
// Dynamic) and memoizes the result process-wide, so every simulation
// replays the same immutable in-memory traces. Callers receive a fresh
// slice; the traces themselves are shared and must not be mutated.
func SuiteSources(suite string, cfg Config) []trace.Source {
	key := suiteKey{suite: suite, dynamic: cfg.Dynamic}
	suiteMemo.Lock()
	defer suiteMemo.Unlock()
	mems, ok := suiteMemo.m[key]
	if !ok {
		for _, p := range synth.Profiles() {
			if p.Suite != suite {
				continue
			}
			if cfg.Dynamic > 0 {
				p = p.WithDynamic(cfg.Dynamic)
			}
			mems = append(mems, trace.Materialize(synth.MustWorkload(p)))
		}
		suiteMemo.m[key] = mems
	}
	out := make([]trace.Source, len(mems))
	for i, m := range mems {
		out[i] = m
	}
	return out
}

// Workload materializes one named workload.
func Workload(name string, cfg Config) (trace.Source, error) {
	src, err := workloads.Get(name, workloads.Options{Dynamic: cfg.Dynamic})
	if err != nil {
		return nil, err
	}
	return trace.Materialize(src), nil
}

// kb formats a byte count the way the paper's size axis does.
func kb(bytes float64) string {
	switch {
	case bytes >= 1024:
		return fmt.Sprintf("%gK", bytes/1024)
	default:
		return fmt.Sprintf("%gB", bytes)
	}
}
