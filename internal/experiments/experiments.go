// Package experiments defines one driver per table and figure of the
// paper's evaluation, each returning a typed result that the renderers in
// this package turn into text tables, ASCII figures and CSV. The mapping
// from paper artifact to driver is recorded in DESIGN.md's experiment
// index; measured-vs-paper values live in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"

	"bimode/internal/sim"
	"bimode/internal/synth"
	"bimode/internal/trace"
	"bimode/internal/workloads"
)

// Config adjusts experiment scale. The zero value runs the defaults used
// by EXPERIMENTS.md.
type Config struct {
	// Dynamic overrides every workload's dynamic branch count; 0 keeps
	// the calibrated per-benchmark defaults (paper counts / 8).
	Dynamic int
	// MinSizeBits/MaxSizeBits bound the gshare size axis as log2(counter
	// count): defaults 10..17 = 0.25 KB .. 32 KB, the paper's axis.
	MinSizeBits, MaxSizeBits int
	// Sched executes every simulation and materialization job of the
	// experiment drivers. nil uses sim.DefaultScheduler() (GOMAXPROCS
	// workers); sim.NewScheduler(0) is the sequential oracle path that
	// every parallel run is proven byte-identical to. The scheduler never
	// affects results, only wall clock.
	Sched *sim.Scheduler
}

func (c Config) withDefaults() Config {
	if c.MinSizeBits == 0 {
		c.MinSizeBits = 10
	}
	if c.MaxSizeBits == 0 {
		c.MaxSizeBits = 17
	}
	return c
}

// sched returns the scheduler experiment drivers dispatch through.
func (c Config) sched() *sim.Scheduler {
	if c.Sched != nil {
		return c.Sched
	}
	return sim.DefaultScheduler()
}

// suiteMemo caches materialized suites across SuiteSources calls, keyed
// by the two parameters that determine the trace contents. cmd/paper,
// cmd/sweep and the benchmarks all sweep the same suites repeatedly;
// without the memo each call regenerated identical multi-million-branch
// traces from scratch. The memo is sharded by key hash so concurrent
// generators materializing different suites never serialize on one lock,
// and each entry materializes under its own mutex so concurrent requests
// for the same key share a single materialization (the shard mutex guards
// only map access, never trace generation). The entry deliberately does
// NOT use sync.Once: Once treats a panicked f as done, so a generation
// that fails (canceled context, per-job deadline, injected fault) would
// poison the entry forever and every later caller would silently see an
// empty suite — zero jobs, zero-branch artifacts, exit 0. A failed
// materialization leaves done=false so the next caller retries cold.
var suiteMemo [8]struct {
	sync.Mutex
	m map[suiteKey]*suiteEntry
}

type suiteKey struct {
	suite   string
	dynamic int
}

type suiteEntry struct {
	mu   sync.Mutex
	done bool
	mems []*trace.Memory
}

// memoEntry returns the (unique, process-wide) entry for a key.
func memoEntry(key suiteKey) *suiteEntry {
	h := fnv.New32a()
	h.Write([]byte(key.suite))
	h.Write([]byte(strconv.Itoa(key.dynamic)))
	shard := &suiteMemo[h.Sum32()%uint32(len(suiteMemo))]
	shard.Lock()
	defer shard.Unlock()
	if shard.m == nil {
		shard.m = map[suiteKey]*suiteEntry{}
	}
	e, ok := shard.m[key]
	if !ok {
		e = &suiteEntry{}
		shard.m[key] = e
	}
	return e
}

// SuiteSources materializes the named suite's workloads once per (suite,
// Dynamic) and memoizes the result process-wide, so every simulation
// replays the same immutable in-memory traces; the per-workload
// materializations of a cold entry run through cfg's scheduler. Callers
// receive a fresh slice; the traces themselves are shared and must not be
// mutated.
func SuiteSources(suite string, cfg Config) []trace.Source {
	e := memoEntry(suiteKey{suite: suite, dynamic: cfg.Dynamic})
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.done {
		var profs []synth.Profile
		for _, p := range synth.Profiles() {
			if p.Suite != suite {
				continue
			}
			if cfg.Dynamic > 0 {
				p = p.WithDynamic(cfg.Dynamic)
			}
			profs = append(profs, p)
		}
		mems := make([]*trace.Memory, len(profs))
		mustAll(cfg.sched().DoContext(len(profs), func(ctx context.Context, i int) error {
			m, err := trace.MaterializeContext(ctx, synth.MustWorkload(profs[i]))
			if err != nil {
				return err
			}
			mems[i] = m
			return nil
		}))
		e.mems = mems
		e.done = true
	}
	out := make([]trace.Source, len(e.mems))
	for i, m := range e.mems {
		out[i] = m
	}
	return out
}

// mustAll re-raises the first captured panic from a Scheduler.Do fan-out
// whose tasks are infallible by contract (the generators here wrap
// Must-constructors); keeping the panic loud matches the sequential
// behavior exactly instead of memoizing or returning holes.
func mustAll(errs []error) {
	for _, err := range errs {
		if err != nil {
			panic(err)
		}
	}
}

// firstErr collapses a Scheduler.Do error slice for drivers with an error
// return: the lowest-index failure wins, matching what a sequential loop
// that stopped at the first error would have reported.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Workload materializes one named workload.
func Workload(name string, cfg Config) (trace.Source, error) {
	src, err := workloads.Get(name, workloads.Options{Dynamic: cfg.Dynamic})
	if err != nil {
		return nil, err
	}
	return trace.Materialize(src), nil
}

// kb formats a byte count the way the paper's size axis does.
func kb(bytes float64) string {
	switch {
	case bytes >= 1024:
		return fmt.Sprintf("%gK", bytes/1024)
	default:
		return fmt.Sprintf("%gB", bytes)
	}
}
