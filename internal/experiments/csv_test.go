package experiments

import (
	"strings"
	"testing"
)

func TestBreakdownCSV(t *testing.T) {
	b := BiasBreakdown{
		Scheme:   "demo",
		Workload: "w",
		Counters: [][3]float64{{0.7, 0.2, 0.1}, {0.5, 0.3, 0.2}},
	}
	csv := BreakdownCSV(b)
	if !strings.HasPrefix(csv, "scheme,workload,counter_rank") {
		t.Fatalf("header missing")
	}
	if strings.Count(csv, "\n") != 3 {
		t.Fatalf("want 3 lines, got %q", csv)
	}
	if !strings.Contains(csv, "demo,w,1,0.500000,0.300000,0.200000") {
		t.Fatalf("row missing: %q", csv)
	}
}

func TestClassBreakdownCSV(t *testing.T) {
	pts := []ClassBreakdownPoint{{Label: "bi-mode(7)", Counters: 256, SNT: 0.01, ST: 0.02, WB: 0.03}}
	csv := ClassBreakdownCSV("gcc", pts)
	if !strings.Contains(csv, "gcc,256,bi-mode(7),0.010000,0.020000,0.030000,0.060000") {
		t.Fatalf("row missing: %q", csv)
	}
}
