package experiments

import (
	"strings"
	"testing"

	"bimode/internal/synth"
)

// small keeps experiment tests fast: tiny dynamic budgets and a short
// size axis.
var small = Config{Dynamic: 40000, MinSizeBits: 8, MaxSizeBits: 10}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("Table 1 must list the 6 SPEC benchmarks, got %d", len(rows))
	}
	text := RenderTable1(rows)
	for _, want := range []string{"compress", "bigtest.in", "vortex"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Table 1 text missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	rows := Table2(Config{Dynamic: 30000})
	if len(rows) != 14 {
		t.Fatalf("Table 2 must list 14 benchmarks, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Stats.DynamicBranches != 30000 {
			t.Fatalf("%s: dynamic %d", r.Stats.Name, r.Stats.DynamicBranches)
		}
		if r.Stats.StaticBranches <= 0 || r.Stats.StaticBranches > r.PaperStatic {
			t.Fatalf("%s: static %d vs paper %d", r.Stats.Name, r.Stats.StaticBranches, r.PaperStatic)
		}
		if r.PaperDynamic == 0 {
			t.Fatalf("%s: paper dynamic missing", r.Stats.Name)
		}
	}
	if !strings.Contains(RenderTable2(rows), "video_play") {
		t.Fatalf("Table 2 text incomplete")
	}
}

func TestSuiteSources(t *testing.T) {
	spec := SuiteSources(synth.SuiteSPEC, Config{Dynamic: 1000})
	if len(spec) != 6 {
		t.Fatalf("SPEC sources = %d", len(spec))
	}
	if spec[0].Name() != "compress" {
		t.Fatalf("paper order not preserved: %s", spec[0].Name())
	}
}

func TestWorkloadUnknown(t *testing.T) {
	if _, err := Workload("nope", small); err == nil {
		t.Fatalf("unknown workload must fail")
	}
}

func TestFigures234Small(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	f := Figures234(small)
	if len(f.SizeBits) != 3 {
		t.Fatalf("size axis = %v", f.SizeBits)
	}
	if len(f.SPEC) != 6 || len(f.IBS) != 8 {
		t.Fatalf("panel counts wrong: %d/%d", len(f.SPEC), len(f.IBS))
	}
	for _, c := range append(append([]SizeCurves{f.SPECAvg, f.IBSAvg}, f.SPEC...), f.IBS...) {
		if len(c.Gshare1PHT) != 3 || len(c.GshareBest) != 3 || len(c.BiMode) != 3 {
			t.Fatalf("%s: missing points", c.Workload)
		}
		for i := range c.Gshare1PHT {
			if c.GshareBest[i] > c.Gshare1PHT[i]+1e-9 {
				t.Errorf("%s size %d: gshare.best (%v) worse than 1PHT (%v) — best must include h=index",
					c.Workload, i, c.GshareBest[i], c.Gshare1PHT[i])
			}
			for _, v := range []float64{c.Gshare1PHT[i], c.GshareBest[i], c.BiMode[i]} {
				if v < 0 || v > 1 {
					t.Fatalf("%s: rate out of range %v", c.Workload, v)
				}
			}
		}
		// Cost axis: gshare doubles, bi-mode is 0.75x gshare's bytes.
		if c.GshareCost[1] != 2*c.GshareCost[0] {
			t.Fatalf("gshare cost axis wrong: %v", c.GshareCost)
		}
		// bi-mode with banks of 2^(s-1) counters costs 1.5x the gshare of
		// the same column (and 1.5x the next smaller gshare's counter
		// count, the paper's phrasing).
		if c.BiModeCost[0] != 1.5*c.GshareCost[0] {
			t.Fatalf("bi-mode cost placement wrong: %v vs %v", c.BiModeCost[0], c.GshareCost[0])
		}
	}
	if len(f.BestHistorySPEC) != 3 || len(f.BestHistoryIBS) != 3 {
		t.Fatalf("best-history records missing")
	}
	// Render paths.
	if out := RenderSizeCurves(f.SPECAvg); !strings.Contains(out, "gshare.best") {
		t.Fatalf("render missing series")
	}
	csv := CurvesCSV(f.SPEC)
	if !strings.Contains(csv, "compress,bi-mode") {
		t.Fatalf("csv missing rows")
	}
	if got := strings.Count(csv, "\n"); got != 1+6*3*3 {
		t.Fatalf("csv rows = %d, want %d", got, 1+6*3*3)
	}
}

func TestFigure56AndTables(t *testing.T) {
	hist, addr, err := Figure5("gcc", small)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []BiasBreakdown{hist, addr} {
		sum := b.DominantArea + b.NonDominantArea + b.WBArea
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s: areas sum to %v", b.Scheme, sum)
		}
		if len(b.Counters) == 0 {
			t.Fatalf("%s: no counters", b.Scheme)
		}
		if RenderBreakdown(b) == "" {
			t.Fatalf("render empty")
		}
	}
	// Paper claim (Figure 5): history-indexed has a smaller WB area than
	// address-indexed.
	if hist.WBArea >= addr.WBArea {
		t.Errorf("history-indexed WB area %v should be below address-indexed %v", hist.WBArea, addr.WBArea)
	}

	bm, err := Figure6("gcc", small)
	if err != nil {
		t.Fatal(err)
	}
	// Paper claim (Figure 6): bi-mode keeps WB small and shrinks the
	// non-dominant area relative to the history-indexed gshare.
	if bm.NonDominantArea >= hist.NonDominantArea {
		t.Errorf("bi-mode non-dominant %v should be below history-indexed %v",
			bm.NonDominantArea, hist.NonDominantArea)
	}

	ex, err := Table3("gcc", small)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Rows) == 0 || RenderTable3(ex) == "" {
		t.Fatalf("Table 3 empty")
	}

	t4, err := Table4("gcc", small)
	if err != nil {
		t.Fatal(err)
	}
	gsTotal := t4.HistoryIndexed[0] + t4.HistoryIndexed[1] + t4.HistoryIndexed[2]
	bmTotal := t4.BiMode[0] + t4.BiMode[1] + t4.BiMode[2]
	if bmTotal >= gsTotal {
		t.Errorf("Table 4: bi-mode interruptions %d should be below history-indexed %d", bmTotal, gsTotal)
	}
	if !strings.Contains(RenderTable4(t4), "bi-mode") {
		t.Fatalf("Table 4 render incomplete")
	}
}

func TestFigures78Small(t *testing.T) {
	pts, err := Figures78("gcc", small)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 9 {
		t.Fatalf("want 9 bars (3 sizes x 3 schemes), got %d", len(pts))
	}
	for _, p := range pts {
		total := p.SNT + p.ST + p.WB
		if total < 0 || total > 1 {
			t.Fatalf("%s: breakdown out of range", p.Label)
		}
	}
	if !strings.Contains(RenderFigures78("gcc", pts), "bi-mode(7)") {
		t.Fatalf("figure 7 render incomplete")
	}
}

func TestKBFormat(t *testing.T) {
	if kb(256) != "256B" || kb(2048) != "2K" || kb(1536) != "1.5K" {
		t.Fatalf("kb format wrong: %s %s %s", kb(256), kb(2048), kb(1536))
	}
}
