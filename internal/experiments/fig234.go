package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"bimode/internal/core"
	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/synth"
	"bimode/internal/textplot"
	"bimode/internal/trace"
)

// SizeCurves holds, for one workload (or a suite average), the
// misprediction rate of each scheme across the size axis — the contents
// of one panel of Figures 2, 3 or 4.
type SizeCurves struct {
	// Workload is the benchmark name, or "CINT95-AVERAGE"/"IBS-AVERAGE".
	Workload string
	// Gshare1PHT[i] and GshareBest[i] are rates at 2^(MinSizeBits+i)
	// counters; BiMode[i] is the rate of the bi-mode predictor with banks
	// of 2^(MinSizeBits+i-1) counters (cost 1.5x the next smaller
	// gshare), matching the paper's placement.
	Gshare1PHT, GshareBest, BiMode []float64
	// GshareCost and BiModeCost give the x positions in bytes.
	GshareCost, BiModeCost []float64
}

// Fig234 is the result of the Figures 2-4 sweep.
type Fig234 struct {
	// SPECAvg and IBSAvg are the two panels of Figure 2.
	SPECAvg, IBSAvg SizeCurves
	// SPEC and IBS are the per-benchmark panels of Figures 3 and 4.
	SPEC, IBS []SizeCurves
	// BestHistory records the winning gshare history length per size
	// (indexed like the curves), per suite.
	BestHistorySPEC, BestHistoryIBS []int
	// SizeBits echoes the swept sizes.
	SizeBits []int
	// Failures annotates every grid cell that did not complete (one line
	// per failed (scheme, workload, size) cell, in sweep order). The
	// corresponding curve points are NaN — rendered as gaps — instead of
	// aborting the whole figure; RenderFootnotes turns these lines into
	// the figure's error footnote.
	Failures []string
}

// Figures234 runs the full sweep behind Figures 2, 3 and 4: for every
// size on the paper's axis it simulates gshare at every history length
// (selecting gshare.best on the suite average, separately per suite as
// the paper does), the single-PHT gshare, and the bi-mode predictor, over
// all fourteen benchmarks.
func Figures234(cfg Config) *Fig234 {
	cfg = cfg.withDefaults()
	out := &Fig234{}
	for s := cfg.MinSizeBits; s <= cfg.MaxSizeBits; s++ {
		out.SizeBits = append(out.SizeBits, s)
	}

	specSources := SuiteSources(synth.SuiteSPEC, cfg)
	ibsSources := SuiteSources(synth.SuiteIBS, cfg)

	var specFails, ibsFails []string
	out.SPECAvg, out.SPEC, out.BestHistorySPEC, specFails = sweepSuite(cfg.sched(), "CINT95-AVERAGE", specSources, out.SizeBits)
	out.IBSAvg, out.IBS, out.BestHistoryIBS, ibsFails = sweepSuite(cfg.sched(), "IBS-AVERAGE", ibsSources, out.SizeBits)
	out.Failures = append(specFails, ibsFails...)
	return out
}

// cellRate converts one sweep cell to a curve point: a failed cell (a
// canceled suite, a panicked job) becomes NaN — a gap in the rendered
// panel — rather than a fake zero or an abort.
func cellRate(res sim.Result) float64 {
	if res.Err != nil {
		return math.NaN()
	}
	return res.MispredictRate()
}

// suiteRate averages a suite row, NaN if any constituent cell failed
// (a partial average would silently misstate the suite).
func suiteRate(results []sim.Result) float64 {
	for _, r := range results {
		if r.Err != nil {
			return math.NaN()
		}
	}
	return sim.AverageRate(results)
}

// noteFailures appends one annotation per failed cell of a sweep row.
func noteFailures(fails []string, scheme string, sizeBits int, results []sim.Result) []string {
	for _, r := range results {
		if r.Err != nil {
			fails = append(fails, fmt.Sprintf("%s @ %s, size 2^%d: %v", scheme, r.Workload, sizeBits, r.Err))
		}
	}
	return fails
}

func sweepSuite(sched *sim.Scheduler, avgName string, sources []trace.Source, sizeBits []int) (SizeCurves, []SizeCurves, []int, []string) {
	avg := SizeCurves{Workload: avgName}
	per := make([]SizeCurves, len(sources))
	for i, src := range sources {
		per[i].Workload = src.Name()
	}
	var bestHist []int
	var fails []string

	for _, s := range sizeBits {
		sweep := sched.SweepGshare(s, sources)
		best := sim.PickBestGshare(s, sweep)
		onePHT := sweep[s]

		bankBits := s - 1
		jobs := make([]sim.Job, len(sources))
		for i, src := range sources {
			jobs[i] = sim.Job{
				Make: func() predictor.Predictor {
					return core.MustNew(core.DefaultConfig(bankBits))
				},
				Source: src,
			}
		}
		bimodeRes := sched.RunAll(jobs)

		fails = noteFailures(fails, "gshare.1PHT", s, onePHT)
		fails = noteFailures(fails, "gshare.best", s, best.PerWorkload)
		fails = noteFailures(fails, "bi-mode", s, bimodeRes)

		gCost := float64(int(1) << uint(s) * 2 / 8)
		bCost := float64(3 * (int(1) << uint(bankBits)) * 2 / 8)
		avg.GshareCost = append(avg.GshareCost, gCost)
		avg.BiModeCost = append(avg.BiModeCost, bCost)
		avg.Gshare1PHT = append(avg.Gshare1PHT, suiteRate(onePHT))
		avg.GshareBest = append(avg.GshareBest, bestAvgRate(best))
		avg.BiMode = append(avg.BiMode, suiteRate(bimodeRes))
		bestHist = append(bestHist, best.HistoryBits)

		for i := range sources {
			per[i].GshareCost = append(per[i].GshareCost, gCost)
			per[i].BiModeCost = append(per[i].BiModeCost, bCost)
			per[i].Gshare1PHT = append(per[i].Gshare1PHT, cellRate(onePHT[i]))
			per[i].GshareBest = append(per[i].GshareBest, cellRate(best.PerWorkload[i]))
			per[i].BiMode = append(per[i].BiMode, cellRate(bimodeRes[i]))
		}
	}
	return avg, per, bestHist, fails
}

// bestAvgRate is best.AvgRate unless the winning row carried a failed
// cell, in which case the average is NaN like any other damaged suite
// aggregate.
func bestAvgRate(best sim.BestGshare) float64 {
	for _, r := range best.PerWorkload {
		if r.Err != nil {
			return math.NaN()
		}
	}
	return best.AvgRate
}

// RenderSizeCurves formats one panel as a table plus an ASCII chart.
//
//bimode:deterministic
func RenderSizeCurves(c SizeCurves) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: misprediction rate (%%) vs predictor size\n\n", c.Workload)
	fmt.Fprintf(&b, "%-12s", "size")
	for _, cost := range c.GshareCost {
		fmt.Fprintf(&b, "%8s", kb(cost))
	}
	b.WriteString("\n")
	row := func(name string, ys []float64) {
		fmt.Fprintf(&b, "%-12s", name)
		for _, y := range ys {
			b.WriteString(fmtRate(y))
		}
		b.WriteString("\n")
	}
	row("gshare.1PHT", c.Gshare1PHT)
	row("gshare.best", c.GshareBest)
	fmt.Fprintf(&b, "%-12s", "  (bi-mode at")
	for _, cost := range c.BiModeCost {
		fmt.Fprintf(&b, "%8s", kb(cost))
	}
	b.WriteString(")\n")
	row("bi-mode", c.BiMode)
	b.WriteString("\n")

	labels := make([]string, len(c.GshareCost))
	for i, cost := range c.GshareCost {
		labels[i] = kb(cost)
	}
	pct := func(ys []float64) []float64 {
		out := make([]float64, len(ys))
		for i, y := range ys {
			out[i] = 100 * y
		}
		return out
	}
	chart := textplot.Chart{
		Title:   c.Workload,
		XLabels: labels,
		YLabel:  "mispredict % (bi-mode point costs 1.5x its column's gshare size)",
		Series: []textplot.Series{
			{Name: "gshare.1PHT", Y: pct(c.Gshare1PHT)},
			{Name: "gshare.best", Y: pct(c.GshareBest)},
			{Name: "bi-mode", Y: pct(c.BiMode)},
		},
	}
	b.WriteString(chart.Render())
	return b.String()
}

// fmtRate renders one table cell of a panel: the fixed-precision
// percentage for a measured point, a right-aligned "--" gap for a NaN
// (failed) cell. Healthy cells are byte-identical to the historical
// "%8.2f" rendering, so goldens only change where cells actually failed.
func fmtRate(y float64) string {
	if math.IsNaN(y) {
		return fmt.Sprintf("%8s", "--")
	}
	return fmt.Sprintf("%8.2f", 100*y)
}

// RenderFootnotes renders the failed-cell annotations of a sweep as a
// footnote block for the figure artifacts, or "" when the sweep was
// clean. Each failure is one bullet, in sweep order.
//
//bimode:deterministic
func RenderFootnotes(failures []string) string {
	if len(failures) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d cell(s) did not complete; gaps (--) mark them above:\n", len(failures))
	for _, f := range failures {
		fmt.Fprintf(&b, "  [!] %s\n", f)
	}
	return b.String()
}

// CostAdvantage estimates the paper's headline cost claim from a panel:
// the largest factor by which gshare.best must outsize bi-mode to reach
// the same misprediction rate, over the upper half of the size axis.
// When bi-mode's rate is below anything gshare.best achieves in range,
// the largest swept gshare cost is used, so the result is a lower bound
// (lowerBound reports that).
func CostAdvantage(c SizeCurves) (factor float64, lowerBound bool) {
	maxCost := c.GshareCost[len(c.GshareCost)-1]
	minRate := math.Inf(1)
	for _, r := range c.GshareBest {
		minRate = math.Min(minRate, r)
	}
	bestAt := func(rate float64) (float64, bool) {
		// Interpolate gshare.best's cost at the given rate (log-cost,
		// linear-rate interpolation).
		for i := 0; i+1 < len(c.GshareBest); i++ {
			r0, r1 := c.GshareBest[i], c.GshareBest[i+1]
			if (rate <= r0 && rate >= r1) || (rate >= r0 && rate <= r1) {
				if r0 == r1 {
					return c.GshareCost[i], false
				}
				t := (rate - r0) / (r1 - r0)
				return math.Exp(math.Log(c.GshareCost[i])*(1-t) + math.Log(c.GshareCost[i+1])*t), false
			}
		}
		// Off the bottom of the curve: gshare.best never gets this good
		// in range.
		if rate < minRate {
			return maxCost, true
		}
		return math.NaN(), false
	}
	worst := math.NaN()
	for i := len(c.BiMode) / 2; i < len(c.BiMode); i++ {
		g, lb := bestAt(c.BiMode[i])
		if math.IsNaN(g) {
			continue
		}
		f := g / c.BiModeCost[i]
		if math.IsNaN(worst) || f > worst {
			worst = f
			lowerBound = lb
		}
	}
	return worst, lowerBound
}

// SortCurves orders panels by workload name for stable rendering.
func SortCurves(cs []SizeCurves) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Workload < cs[j].Workload })
}
