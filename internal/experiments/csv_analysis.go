package experiments

import (
	"fmt"
	"strings"
)

// BreakdownCSV serializes per-counter bias breakdowns (Figures 5-6) with
// one row per counter in the sorted-by-WB figure order, suitable for
// replotting the paper's stacked-area panels.
//
//bimode:deterministic
func BreakdownCSV(bs ...BiasBreakdown) string {
	var b strings.Builder
	b.WriteString("scheme,workload,counter_rank,dominant,non_dominant,wb\n")
	for _, bd := range bs {
		for i, c := range bd.Counters {
			fmt.Fprintf(&b, "%s,%s,%d,%.6f,%.6f,%.6f\n",
				bd.Scheme, bd.Workload, i, c[0], c[1], c[2])
		}
	}
	return b.String()
}

// ClassBreakdownCSV serializes the Figures 7-8 bars.
//
//bimode:deterministic
func ClassBreakdownCSV(workload string, pts []ClassBreakdownPoint) string {
	var b strings.Builder
	b.WriteString("workload,counters,scheme,snt,st,wb,total\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%s,%d,%s,%.6f,%.6f,%.6f,%.6f\n",
			workload, p.Counters, p.Label, p.SNT, p.ST, p.WB, p.SNT+p.ST+p.WB)
	}
	return b.String()
}
