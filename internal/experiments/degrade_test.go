package experiments

import (
	"context"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"bimode/internal/sim"
	"bimode/internal/synth"
)

var retryKeys atomic.Int64

// degradedPanel is a deterministic fixture standing in for a sweep with
// two failed cells: one gshare.best point and one bi-mode point are NaN,
// with the matching footnote annotations.
func degradedPanel() (SizeCurves, []string) {
	c := SizeCurves{
		Workload:   "CINT95-AVERAGE",
		GshareCost: []float64{64, 128, 256},
		BiModeCost: []float64{96, 192, 384},
		Gshare1PHT: []float64{0.141, 0.122, 0.103},
		GshareBest: []float64{0.128, math.NaN(), 0.094},
		BiMode:     []float64{0.119, 0.101, math.NaN()},
	}
	fails := []string{
		"gshare.best @ go, size 2^9: sim: job 3 of 14 panicked: injected fault",
		"bi-mode @ gcc, size 2^10: context canceled",
	}
	return c, fails
}

// TestGoldenDegradedPanel pins the degraded rendering: failed cells
// appear as aligned "--" gaps in the table, the chart still renders (NaN
// points skipped), and the footnote block annotates each failure — the
// suite reports what it measured instead of aborting.
func TestGoldenDegradedPanel(t *testing.T) {
	c, fails := degradedPanel()
	checkGolden(t, "fig2_degraded.txt.golden", RenderSizeCurves(c)+"\n"+RenderFootnotes(fails))
}

// TestRenderFootnotesEmpty: a clean sweep renders no footnote block at
// all, keeping healthy artifacts byte-identical to the pre-degradation
// format.
func TestRenderFootnotesEmpty(t *testing.T) {
	if got := RenderFootnotes(nil); got != "" {
		t.Fatalf("clean sweep rendered a footnote block: %q", got)
	}
}

// TestSuiteSourcesRetryAfterFailedMaterialization: a suite whose cold
// materialization fails (here: a scheduler whose context is already
// canceled) must not poison the memo entry — the failure panics per the
// mustAll contract, and the next call with a healthy scheduler
// materializes the full suite. Before this guarantee a failed generation
// left a done sync.Once over nil sources, and every later sweep silently
// saw an empty suite (zero jobs, zero-branch artifacts, exit 0).
func TestSuiteSourcesRetryAfterFailedMaterialization(t *testing.T) {
	// A dynamic count no other test uses, so this test owns its memo key;
	// the counter keeps the key cold across -count reruns in one process.
	cfg := Config{Dynamic: 1700 + int(retryKeys.Add(1))}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bad := cfg
	bad.Sched = sim.NewScheduler(0).WithContext(ctx)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("materialization under a canceled context must panic")
			}
		}()
		SuiteSources(synth.SuiteSPEC, bad)
	}()

	srcs := SuiteSources(synth.SuiteSPEC, cfg)
	if len(srcs) == 0 {
		t.Fatal("memo entry poisoned: healthy retry returned an empty suite")
	}
	for _, s := range srcs {
		if s == nil {
			t.Fatal("memo entry holds a nil source after retry")
		}
	}
}

// TestFiguresDegradeOnFailedCells drives the real sweep through a
// scheduler whose context is already canceled: every simulation cell
// fails, and the driver must return a fully annotated figure — every
// curve point NaN, every cell in Failures — rather than aborting or
// fabricating zeros.
func TestFiguresDegradeOnFailedCells(t *testing.T) {
	cfg := Config{Dynamic: 1000, MinSizeBits: 8, MaxSizeBits: 8}
	// Warm the suite memo with a healthy scheduler: the degradation under
	// test is per-cell simulation failure, not workload generation.
	SuiteSources(synth.SuiteSPEC, cfg)
	SuiteSources(synth.SuiteIBS, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg.Sched = sim.NewScheduler(0).WithContext(ctx)
	f := Figures234(cfg)
	if len(f.Failures) == 0 {
		t.Fatalf("canceled sweep reported no failures")
	}
	for _, y := range f.SPECAvg.BiMode {
		if !math.IsNaN(y) {
			t.Fatalf("canceled sweep produced a measured point: %v", y)
		}
	}
	for _, fail := range f.Failures {
		if !strings.Contains(fail, "context canceled") {
			t.Fatalf("failure annotation lost the error: %q", fail)
		}
	}
	// The degraded figure must still render end to end.
	if out := RenderSizeCurves(f.SPECAvg) + RenderFootnotes(f.Failures); !strings.Contains(out, "--") {
		t.Fatalf("degraded panel rendered no gaps:\n%s", out)
	}
}
