package experiments

import (
	"fmt"

	"bimode/internal/sim"
	"bimode/internal/synth"
	"bimode/internal/zoo"
)

// SuiteObservation attaches instrumented runs to a figure sweep: one
// sim.Report per (predictor spec, suite workload). It is the per-run form
// of the paper's Section 4 analysis — where the offline internal/analysis
// pass replays a trace per study, these reports fall out of ordinary
// simulation runs and serialize with the rest of the figure data.
type SuiteObservation struct {
	Suite   string       `json:"suite"`
	Dynamic int          `json:"dynamic"`
	Reports []sim.Report `json:"reports"`
}

// ObserveSuite runs every spec over every workload of the named suite
// through the instrumented tier, fanning the (spec, workload) grid out
// over cfg's scheduler; report order is fixed by the grid (specs outer,
// workloads inner), independent of the worker count. Specs must name
// predictors known to package zoo; topN bounds each report's H2P ranking.
func ObserveSuite(suite string, specs []string, cfg Config, topN int) (*SuiteObservation, error) {
	sources := SuiteSources(suite, cfg)
	if len(sources) == 0 {
		return nil, fmt.Errorf("experiments: unknown suite %q", suite)
	}
	for _, spec := range specs {
		if _, err := zoo.New(spec); err != nil {
			return nil, err
		}
	}
	out := &SuiteObservation{Suite: suite, Dynamic: cfg.Dynamic}
	out.Reports = make([]sim.Report, len(specs)*len(sources))
	if err := firstErr(cfg.sched().Do(len(out.Reports), func(k int) error {
		spec := specs[k/len(sources)]
		src := sources[k%len(sources)]
		out.Reports[k] = *sim.Observe(zoo.MustNew(spec), src, sim.ObserveOptions{TopN: topN})
		return nil
	})); err != nil {
		return nil, err
	}
	return out, nil
}

// Figure2Observation instruments the Figure 2 comparison at one size
// point: the single-PHT gshare with 2^sizeBits counters against the
// bi-mode predictor the paper places alongside it (banks of
// 2^(sizeBits-1) counters, 1.5x the gshare cost), over the SPEC suite.
// The resulting reports reproduce the Section 4 finding as run metadata:
// bi-mode's destructive-aliasing rate sits below gshare's.
func Figure2Observation(cfg Config, sizeBits, topN int) (*SuiteObservation, error) {
	if sizeBits < 2 {
		return nil, fmt.Errorf("experiments: size 2^%d too small for the figure 2 pair", sizeBits)
	}
	return ObserveSuite(synth.SuiteSPEC, []string{
		fmt.Sprintf("gshare:i=%d,h=%d", sizeBits, sizeBits),
		fmt.Sprintf("bimode:b=%d", sizeBits-1),
	}, cfg, topN)
}

// DestructiveRate aggregates one predictor's destructive aliased accesses
// per branch across the suite (reports without interference metrics are
// skipped). The bool reports whether any matching run carried them.
func (o *SuiteObservation) DestructiveRate(predictorName string) (float64, bool) {
	branches, destructive, seen := 0, 0, false
	for i := range o.Reports {
		r := &o.Reports[i]
		if r.Predictor != predictorName || r.Interference == nil {
			continue
		}
		seen = true
		branches += r.Branches
		destructive += r.Interference.Destructive
	}
	if !seen || branches == 0 {
		return 0, seen
	}
	return float64(destructive) / float64(branches), true
}
