package experiments

import (
	"fmt"
	"strings"
)

// CurvesCSV serializes size-curve panels as CSV with one row per
// (workload, scheme, size) point, suitable for replotting.
//
//bimode:deterministic
func CurvesCSV(cs []SizeCurves) string {
	var b strings.Builder
	b.WriteString("workload,scheme,cost_bytes,mispredict_rate\n")
	for _, c := range cs {
		for i := range c.Gshare1PHT {
			fmt.Fprintf(&b, "%s,gshare.1PHT,%g,%.6f\n", c.Workload, c.GshareCost[i], c.Gshare1PHT[i])
			fmt.Fprintf(&b, "%s,gshare.best,%g,%.6f\n", c.Workload, c.GshareCost[i], c.GshareBest[i])
			fmt.Fprintf(&b, "%s,bi-mode,%g,%.6f\n", c.Workload, c.BiModeCost[i], c.BiMode[i])
		}
	}
	return b.String()
}
