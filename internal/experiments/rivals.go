package experiments

import (
	"fmt"
	"strings"

	"bimode/internal/baselines"
	"bimode/internal/core"
	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/synth"
	"bimode/internal/trace"
)

// RivalPoint is one (scheme, size) cell of the de-aliasing shoot-out.
type RivalPoint struct {
	Scheme    string
	CostBytes float64
	// SPECRate and IBSRate are suite-average misprediction rates.
	SPECRate, IBSRate float64
}

// Rivals compares the de-aliasing designs the paper discusses (and its
// successors) at matched budgets across the size axis: gshare, agree,
// e-gskew, YAGS, the filter mechanism, the 21264-style tournament,
// bi-mode and tri-mode. This is the [Lee97] comparison the paper points
// to, regenerated on the calibrated workloads.
func Rivals(cfg Config) [][]RivalPoint {
	cfg = cfg.withDefaults()
	spec := SuiteSources(synth.SuiteSPEC, cfg)
	ibs := SuiteSources(synth.SuiteIBS, cfg)

	type scheme struct {
		name string
		mk   func(s int) predictor.Predictor
	}
	schemes := []scheme{
		{"gshare.1PHT", func(s int) predictor.Predictor { return baselines.NewGshare(s, s) }},
		{"agree", func(s int) predictor.Predictor { return baselines.NewAgree(s, s, s-2) }},
		{"filter", func(s int) predictor.Predictor { return baselines.NewFilter(s, s, s-2, 32) }},
		{"e-gskew", func(s int) predictor.Predictor { return baselines.NewGskew(s-1, s-1, true) }},
		{"yags", func(s int) predictor.Predictor { return baselines.NewYAGS(s-1, s-2, s-2, 6) }},
		{"tournament", func(s int) predictor.Predictor { return baselines.NewAlpha21264Style(s - 1) }},
		{"bi-mode", func(s int) predictor.Predictor { return core.MustNew(core.DefaultConfig(s - 1)) }},
		{"tri-mode", func(s int) predictor.Predictor { return core.MustNewTriMode(core.DefaultConfig(s - 2)) }},
	}

	// One flat job grid per size point — every scheme over both suites in
	// a single scheduler dispatch, sliced back apart in job order.
	sched := cfg.sched()
	var out [][]RivalPoint
	for s := cfg.MinSizeBits; s <= cfg.MaxSizeBits; s++ {
		s := s
		perScheme := len(spec) + len(ibs)
		jobs := make([]sim.Job, 0, len(schemes)*perScheme)
		for _, sc := range schemes {
			sc := sc
			for _, src := range append(append([]trace.Source{}, spec...), ibs...) {
				jobs = append(jobs, sim.Job{Make: func() predictor.Predictor { return sc.mk(s) }, Source: src})
			}
		}
		flat := sched.RunAll(jobs)
		row := make([]RivalPoint, len(schemes))
		for i, sc := range schemes {
			res := flat[i*perScheme : (i+1)*perScheme]
			row[i] = RivalPoint{
				Scheme:    sc.name,
				CostBytes: predictor.CostBytes(sc.mk(s)),
				SPECRate:  sim.AverageRate(res[:len(spec)]),
				IBSRate:   sim.AverageRate(res[len(spec):]),
			}
		}
		out = append(out, row)
	}
	return out
}

// RenderRivals formats the shoot-out.
//
//bimode:deterministic
func RenderRivals(rows [][]RivalPoint) string {
	var b strings.Builder
	b.WriteString("De-aliasing rivals at matched budgets (suite-average mispredict %)\n")
	b.WriteString("(costs differ slightly per scheme; shown per cell in KB)\n\n")
	for _, suite := range []string{"SPEC CINT95", "IBS-Ultrix"} {
		fmt.Fprintf(&b, "%s (columns: increasing budget, rate%%@cost):\n", suite)
		if len(rows) == 0 {
			continue
		}
		for i := range rows[0] {
			fmt.Fprintf(&b, "%-12s", rows[0][i].Scheme)
			for _, row := range rows {
				p := row[i]
				rate := p.SPECRate
				if suite == "IBS-Ultrix" {
					rate = p.IBSRate
				}
				fmt.Fprintf(&b, "  %5.2f@%-5s", 100*rate, kb(p.CostBytes))
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}
