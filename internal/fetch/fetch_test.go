package fetch

import (
	"strings"
	"testing"

	"bimode/internal/baselines"
	"bimode/internal/core"
	"bimode/internal/synth"
	"bimode/internal/trace"
)

func TestBTBBasics(t *testing.T) {
	b := NewBTB(4, 2, 8)
	if _, _, ok := b.Lookup(0x100); ok {
		t.Fatalf("empty BTB must miss")
	}
	b.Update(0x100, 0x500, trace.KindJump)
	target, kind, ok := b.Lookup(0x100)
	if !ok || target != 0x500 || kind != trace.KindJump {
		t.Fatalf("lookup after update wrong: %x %v %v", target, kind, ok)
	}
	// Target refresh.
	b.Update(0x100, 0x600, trace.KindJump)
	if target, _, _ := b.Lookup(0x100); target != 0x600 {
		t.Fatalf("update must refresh the target")
	}
	if b.HitRate() <= 0 {
		t.Fatalf("hit rate must be positive")
	}
}

func TestBTBLRUReplacement(t *testing.T) {
	b := NewBTB(0, 2, 16) // one set, two ways
	b.Update(0x100, 1, trace.KindJump)
	b.Update(0x200, 2, trace.KindJump)
	b.Lookup(0x100) // make 0x100 most recent
	b.Update(0x300, 3, trace.KindJump)
	if _, _, ok := b.Lookup(0x200); ok {
		t.Fatalf("LRU way (0x200) must have been evicted")
	}
	if _, _, ok := b.Lookup(0x100); !ok {
		t.Fatalf("MRU way (0x100) must survive")
	}
}

func TestBTBAliasing(t *testing.T) {
	b := NewBTB(2, 1, 4) // tiny: tags 4 bits
	a := uint64(0x100)
	// Same set, same partial tag: pc differing only beyond set+tag bits.
	alias := a + 4<<(2+4)<<2
	b.Update(a, 0xAAA, trace.KindJump)
	if target, _, ok := b.Lookup(alias); ok && target == 0xAAA {
		t.Logf("aliased hit with wrong target, as real partial-tag BTBs do")
	}
}

func TestBTBResetAndCost(t *testing.T) {
	b := NewBTB(3, 2, 8)
	b.Update(0x40, 1, trace.KindCall)
	b.Reset()
	if _, _, ok := b.Lookup(0x40); ok {
		t.Fatalf("reset must clear entries")
	}
	if b.CostBits() != 8*2*(1+8+32+3+8) {
		t.Fatalf("cost = %d", b.CostBits())
	}
}

func TestBTBPanics(t *testing.T) {
	cases := []func(){
		func() { NewBTB(-1, 2, 8) },
		func() { NewBTB(4, 0, 8) },
		func() { NewBTB(4, 2, 0) },
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d must panic", i)
				}
			}()
			c()
		}()
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Fatalf("empty stack must not predict")
	}
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for _, want := range []uint64{3, 2, 1} {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("pop = %d/%v, want %d", got, ok, want)
		}
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if got, _ := r.Pop(); got != 3 {
		t.Fatalf("top must be 3")
	}
	if got, _ := r.Pop(); got != 2 {
		t.Fatalf("next must be 2")
	}
	if _, ok := r.Pop(); ok {
		t.Fatalf("entry 1 was overwritten; stack must be empty")
	}
}

func TestRASResetCostPanic(t *testing.T) {
	r := NewRAS(8)
	r.Push(5)
	r.Reset()
	if r.Depth() != 0 {
		t.Fatalf("reset must empty the stack")
	}
	if r.CostBits() != 8*32 {
		t.Fatalf("cost = %d", r.CostBits())
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("bad size must panic")
		}
	}()
	NewRAS(0)
}

// craftedCF builds a control-flow stream exercising every kind with
// known-correct behavior.
type craftedCF struct{ recs []trace.ControlRecord }

func (c craftedCF) Name() string { return "crafted" }
func (c craftedCF) ControlFlow() trace.ControlStream {
	return &craftedStream{recs: c.recs}
}

type craftedStream struct {
	recs []trace.ControlRecord
	pos  int
}

func (s *craftedStream) Next() (trace.ControlRecord, bool) {
	if s.pos >= len(s.recs) {
		return trace.ControlRecord{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

func TestEngineOnCraftedStream(t *testing.T) {
	// call -> return pair, repeated: after warm-up the engine should be
	// bubble-free (perfect RAS, warm BTB, biased branch).
	var recs []trace.ControlRecord
	for i := 0; i < 50; i++ {
		recs = append(recs,
			trace.ControlRecord{PC: 0x100, Kind: trace.KindBranch, Taken: true, Target: 0x180},
			trace.ControlRecord{PC: 0x200, Kind: trace.KindCall, Taken: true, Target: 0x800},
			trace.ControlRecord{PC: 0x900, Kind: trace.KindReturn, Taken: true, Target: 0x204},
		)
	}
	eng := NewEngine(Config{
		Direction:  baselines.NewSmith(8),
		BTBSetBits: 6, BTBWays: 2, BTBTagBits: 8,
		RASSize: 8,
	})
	m := eng.Run(craftedCF{recs: recs})
	if m.Events != 150 || m.Conditionals != 50 {
		t.Fatalf("counts wrong: %+v", m)
	}
	// Cold misses only: one direction hiccup at most, two BTB cold
	// misses, zero RAS misses (returns always match pushes).
	if m.RASMisses != 0 {
		t.Fatalf("RAS must be perfect on matched call/return: %d misses", m.RASMisses)
	}
	if m.BTBMisses > 3 {
		t.Fatalf("only cold BTB misses expected, got %d", m.BTBMisses)
	}
	if m.DirectionMisses > 1 {
		t.Fatalf("biased branch should be learned, %d misses", m.DirectionMisses)
	}
	if m.BubbleCycles == 0 {
		t.Fatalf("cold-start bubbles expected")
	}
	if !strings.Contains(m.String(), "bubbles") {
		t.Fatalf("String incomplete")
	}
}

func TestEngineRASUnderflowCounted(t *testing.T) {
	recs := []trace.ControlRecord{
		{PC: 0x900, Kind: trace.KindReturn, Taken: true, Target: 0x204},
	}
	eng := NewEngine(Config{Direction: baselines.NewSmith(4), BTBSetBits: 4, BTBWays: 1, BTBTagBits: 8, RASSize: 4})
	m := eng.Run(craftedCF{recs: recs})
	if m.RASMisses != 1 {
		t.Fatalf("underflowed return must count as a RAS miss")
	}
}

func TestEngineOnSyntheticControlFlow(t *testing.T) {
	p, _ := synth.ProfileByName("perl")
	w := synth.MustWorkload(p.WithDynamic(60000))
	eng := NewEngine(Config{
		Direction:  core.MustNew(core.DefaultConfig(10)),
		BTBSetBits: 9, BTBWays: 4, BTBTagBits: 8,
		RASSize: 16,
	})
	m := eng.Run(w)
	if m.Events != 60000 {
		t.Fatalf("events = %d", m.Events)
	}
	if m.Conditionals < m.Events/2 {
		t.Fatalf("conditionals should dominate the stream: %d of %d", m.Conditionals, m.Events)
	}
	if m.BTBHitRate < 0.8 {
		t.Fatalf("warm BTB hit rate %v too low", m.BTBHitRate)
	}
	if rate := m.DirectionRate(); rate <= 0 || rate > 0.3 {
		t.Fatalf("direction rate %v implausible", rate)
	}
	// Returns must overwhelmingly match the stack.
	if m.RASMisses > m.Events/50 {
		t.Fatalf("too many RAS misses: %d", m.RASMisses)
	}
}

func TestEngineDeterministic(t *testing.T) {
	p, _ := synth.ProfileByName("sdet")
	w := synth.MustWorkload(p.WithDynamic(20000))
	mk := func() Metrics {
		eng := NewEngine(Config{Direction: baselines.NewGshare(10, 10), BTBSetBits: 8, BTBWays: 2, BTBTagBits: 8, RASSize: 16})
		return eng.Run(w)
	}
	if mk() != mk() {
		t.Fatalf("engine runs must be deterministic")
	}
}

func TestEnginePanicsWithoutDirection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("missing direction predictor must panic")
		}
	}()
	NewEngine(Config{BTBSetBits: 4, BTBWays: 1, BTBTagBits: 8, RASSize: 4})
}

func TestEngineCost(t *testing.T) {
	eng := NewEngine(Config{Direction: baselines.NewSmith(8), BTBSetBits: 4, BTBWays: 2, BTBTagBits: 8, RASSize: 8})
	want := baselines.NewSmith(8).CostBits() + NewBTB(4, 2, 8).CostBits() + NewRAS(8).CostBits()
	if eng.CostBits() != want {
		t.Fatalf("cost = %d, want %d", eng.CostBits(), want)
	}
}
