package fetch

import (
	"fmt"

	"bimode/internal/predictor"
	"bimode/internal/trace"
)

// Penalties gives the cycle cost of each front-end failure mode.
type Penalties struct {
	// DirectionMispredict is the pipeline refill after a wrong
	// conditional direction (resolved at execute).
	DirectionMispredict int
	// TargetMispredict is the refill after fetching from a stale or
	// wrong target (wrong BTB target, RAS miss, indirect miss).
	TargetMispredict int
	// BTBMiss is the smaller bubble when a taken transfer is not in the
	// BTB at all (redirect at decode once the instruction is seen).
	BTBMiss int
}

// DefaultPenalties models the paper era's pipelines.
func DefaultPenalties() Penalties {
	return Penalties{DirectionMispredict: 11, TargetMispredict: 11, BTBMiss: 3}
}

// Config assembles a front end.
type Config struct {
	// Direction is the conditional-branch direction predictor.
	Direction predictor.Predictor
	// BTBSetBits, BTBWays and BTBTagBits size the target buffer.
	BTBSetBits, BTBWays, BTBTagBits int
	// RASSize is the return address stack depth.
	RASSize int
	// Penalties is the cycle model; zero value uses DefaultPenalties.
	Penalties Penalties
}

// Metrics aggregates one front-end simulation.
type Metrics struct {
	// Events counts all control transfers; Conditionals the subset.
	Events, Conditionals int
	// DirectionMisses counts wrong conditional directions.
	DirectionMisses int
	// TargetMisses counts wrong predicted targets on taken transfers
	// that hit the BTB (stale target or aliased entry), plus wrong RAS
	// and indirect targets.
	TargetMisses int
	// BTBMisses counts taken transfers absent from the BTB.
	BTBMisses int
	// RASMisses counts returns whose stack prediction was wrong or
	// unavailable.
	RASMisses int
	// BubbleCycles is the penalty-weighted total.
	BubbleCycles int
	// BTBHitRate is the final buffer hit rate.
	BTBHitRate float64
}

// DirectionRate returns wrong directions per conditional branch.
func (m Metrics) DirectionRate() float64 {
	if m.Conditionals == 0 {
		return 0
	}
	return float64(m.DirectionMisses) / float64(m.Conditionals)
}

// BubblesPerKiloEvent returns penalty cycles per 1000 control transfers,
// the front end's summary figure of merit.
func (m Metrics) BubblesPerKiloEvent() float64 {
	if m.Events == 0 {
		return 0
	}
	return 1000 * float64(m.BubbleCycles) / float64(m.Events)
}

// String renders the metrics in one line.
func (m Metrics) String() string {
	return fmt.Sprintf("%d events: dir %.2f%%, target-miss %d, btb-miss %d (hit %.1f%%), ras-miss %d, %.1f bubbles/1k",
		m.Events, 100*m.DirectionRate(), m.TargetMisses, m.BTBMisses,
		100*m.BTBHitRate, m.RASMisses, m.BubblesPerKiloEvent())
}

// Engine is an assembled front end.
type Engine struct {
	dir predictor.Predictor
	btb *BTB
	ras *RAS
	pen Penalties
}

// NewEngine builds a front end from the configuration.
func NewEngine(cfg Config) *Engine {
	if cfg.Direction == nil {
		panic("fetch: engine needs a direction predictor")
	}
	pen := cfg.Penalties
	if pen == (Penalties{}) {
		pen = DefaultPenalties()
	}
	return &Engine{
		dir: cfg.Direction,
		btb: NewBTB(cfg.BTBSetBits, cfg.BTBWays, cfg.BTBTagBits),
		ras: NewRAS(cfg.RASSize),
		pen: pen,
	}
}

// CostBits totals the front end's predictor state.
func (e *Engine) CostBits() int {
	return e.dir.CostBits() + e.btb.CostBits() + e.ras.CostBits()
}

// Run processes a control-flow trace and returns the metrics.
func (e *Engine) Run(src trace.ControlSource) Metrics {
	var m Metrics
	st := src.ControlFlow()
	for {
		rec, ok := st.Next()
		if !ok {
			break
		}
		m.Events++
		switch rec.Kind {
		case trace.KindBranch:
			m.Conditionals++
			predictedTaken := e.dir.Predict(rec.PC)
			target, _, btbHit := e.btb.Lookup(rec.PC)
			switch {
			case predictedTaken != rec.Taken:
				m.DirectionMisses++
				m.BubbleCycles += e.pen.DirectionMispredict
			case rec.Taken && !btbHit:
				// Right direction but nowhere to fetch from.
				m.BTBMisses++
				m.BubbleCycles += e.pen.BTBMiss
			case rec.Taken && target != rec.Target:
				m.TargetMisses++
				m.BubbleCycles += e.pen.TargetMispredict
			}
			e.dir.Update(rec.PC, rec.Taken)
			if rec.Taken {
				e.btb.Update(rec.PC, rec.Target, rec.Kind)
			}

		case trace.KindJump, trace.KindCall:
			target, _, btbHit := e.btb.Lookup(rec.PC)
			if !btbHit {
				m.BTBMisses++
				m.BubbleCycles += e.pen.BTBMiss
			} else if target != rec.Target {
				m.TargetMisses++
				m.BubbleCycles += e.pen.TargetMispredict
			}
			e.btb.Update(rec.PC, rec.Target, rec.Kind)
			if rec.Kind == trace.KindCall {
				e.ras.Push(rec.PC + 4)
			}

		case trace.KindReturn:
			predicted, ok := e.ras.Pop()
			if !ok || predicted != rec.Target {
				m.RASMisses++
				m.BubbleCycles += e.pen.TargetMispredict
			}

		case trace.KindIndirect, trace.KindIndirectCall:
			// Last-target prediction through the BTB.
			target, _, btbHit := e.btb.Lookup(rec.PC)
			if !btbHit {
				m.BTBMisses++
				m.BubbleCycles += e.pen.BTBMiss
			} else if target != rec.Target {
				m.TargetMisses++
				m.BubbleCycles += e.pen.TargetMispredict
			}
			e.btb.Update(rec.PC, rec.Target, rec.Kind)
			if rec.Kind == trace.KindIndirectCall {
				e.ras.Push(rec.PC + 4)
			}
		}
	}
	m.BTBHitRate = e.btb.HitRate()
	return m
}
