// Package fetch models the processor front end around the direction
// predictor: a set-associative branch target buffer (BTB), a return
// address stack (RAS), and a fetch engine that charges realistic
// penalties for every way the front end can lose cycles — wrong
// conditional directions, unknown or stale targets, and return
// mispredictions. It turns the paper's misprediction rates into the
// fetch-bubble arithmetic that motivated the work.
package fetch

import (
	"fmt"

	"bimode/internal/trace"
)

// BTBEntry is one BTB way.
type BTBEntry struct {
	valid  bool
	tag    uint32
	target uint64
	kind   trace.Kind
	lru    uint32
}

// BTB is a set-associative branch target buffer with partial tags and
// true-LRU replacement within each set.
type BTB struct {
	sets    [][]BTBEntry
	setBits int
	ways    int
	tagBits int
	clock   uint32
	tagMask uint64
	idxMask uint64
	// Stats.
	lookups, hits int
}

// NewBTB builds a BTB with 2^setBits sets of the given associativity and
// tagBits-wide partial tags.
func NewBTB(setBits, ways, tagBits int) *BTB {
	if setBits < 0 || setBits > 20 {
		panic(fmt.Sprintf("fetch: btb set width %d out of range [0,20]", setBits))
	}
	if ways < 1 || ways > 16 {
		panic(fmt.Sprintf("fetch: btb associativity %d out of range [1,16]", ways))
	}
	if tagBits < 1 || tagBits > 32 {
		panic(fmt.Sprintf("fetch: btb tag width %d out of range [1,32]", tagBits))
	}
	sets := make([][]BTBEntry, 1<<uint(setBits))
	for i := range sets {
		sets[i] = make([]BTBEntry, ways)
	}
	return &BTB{
		sets:    sets,
		setBits: setBits,
		ways:    ways,
		tagBits: tagBits,
		tagMask: 1<<uint(tagBits) - 1,
		idxMask: 1<<uint(setBits) - 1,
	}
}

func (b *BTB) index(pc uint64) uint64 { return (pc >> 2) & b.idxMask }
func (b *BTB) tag(pc uint64) uint32 {
	return uint32((pc >> (2 + uint(b.setBits))) & b.tagMask)
}

// Lookup returns the predicted target and kind for pc. ok is false on a
// miss (the front end does not know pc is a control transfer).
func (b *BTB) Lookup(pc uint64) (target uint64, kind trace.Kind, ok bool) {
	b.lookups++
	set := b.sets[b.index(pc)]
	tag := b.tag(pc)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			b.clock++
			set[i].lru = b.clock
			b.hits++
			return set[i].target, set[i].kind, true
		}
	}
	return 0, 0, false
}

// Update installs or refreshes the entry for pc.
func (b *BTB) Update(pc uint64, target uint64, kind trace.Kind) {
	set := b.sets[b.index(pc)]
	tag := b.tag(pc)
	b.clock++
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].target = target
			set[i].kind = kind
			set[i].lru = b.clock
			return
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = BTBEntry{valid: true, tag: tag, target: target, kind: kind, lru: b.clock}
}

// HitRate returns the fraction of lookups that hit.
func (b *BTB) HitRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.hits) / float64(b.lookups)
}

// Reset clears entries and statistics.
func (b *BTB) Reset() {
	for _, set := range b.sets {
		for i := range set {
			set[i] = BTBEntry{}
		}
	}
	b.clock, b.lookups, b.hits = 0, 0, 0
}

// CostBits returns the storage cost: per entry a valid bit, the partial
// tag, a 32-bit target field, 3 kind bits and an 8-bit LRU stamp.
func (b *BTB) CostBits() int {
	perEntry := 1 + b.tagBits + 32 + 3 + 8
	return len(b.sets) * b.ways * perEntry
}
