package fetch

import "fmt"

// RAS is a fixed-depth return address stack. On overflow the oldest entry
// is overwritten (circular), and on underflow Pop reports no prediction —
// the behaviors of real hardware stacks that make deep recursion
// mispredict its returns.
type RAS struct {
	entries []uint64
	top     int // index of the next push slot
	depth   int // live entries, capped at len(entries)
}

// NewRAS returns a stack with the given number of entries.
func NewRAS(size int) *RAS {
	if size < 1 || size > 1024 {
		panic(fmt.Sprintf("fetch: ras size %d out of range [1,1024]", size))
	}
	return &RAS{entries: make([]uint64, size)}
}

// Push records a return address (on a call).
func (r *RAS) Push(addr uint64) {
	r.entries[r.top] = addr
	r.top = (r.top + 1) % len(r.entries)
	if r.depth < len(r.entries) {
		r.depth++
	}
}

// Pop predicts the next return target. ok is false when the stack is
// empty (underflow: no prediction available).
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.depth--
	return r.entries[r.top], true
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.depth }

// Reset empties the stack.
func (r *RAS) Reset() {
	r.top, r.depth = 0, 0
}

// CostBits charges 32 bits per entry.
func (r *RAS) CostBits() int { return len(r.entries) * 32 }
