// Package fingerprint infers the structure of a branch predictor from
// the outside: given nothing but the predictor.Predictor interface, a
// suite of crafted probe traces recovers its history depth, history
// scope, index width, index-hash class and choice-mechanism presence,
// the way microarchitectural dissections recover shipped predictors
// from mispredict counters. Each probe is a deterministic trace
// generator paired with a decision rule over per-site mispredict
// counts; Fingerprint composes them into a Report with per-attribute
// confidence, and the zoo's declared Geometry (internal/zoo) is the
// ground truth the suite is validated against in TestFingerprintZoo.
package fingerprint

import "bimode/internal/trace"

// Probe site identifiers. Decision rules count mispredicts only on
// records whose Static id is siteCounted; warm-up filler and context
// branches carry other ids so their own transients never pollute a
// measurement. The predictor sees only PCs — Static is measurement
// metadata.
const (
	siteCounted = 0 // the record the decision rule scores
	siteProbe   = 1 // probe branch visits that are not scored
	siteFill    = 2 // history-forcing filler
	siteNoise   = 3 // interleaved context branch
)

// fillerXor displaces the filler PC from the probe base. The shifted
// displacement (fillerXor>>2 = 0x154C, bits {2,3,6,8,10,12}) is chosen
// so the filler cannot alias a scored branch in any zoo organization:
// its low bits are zero through bit 1, so concatenated set-selection
// fields (gas/pas sets) put the filler in the probe base's own set,
// never the scored branch's; and masked to any history width >= 9 it
// keeps at least three scattered bits, so filler^probe is never zero,
// a single bit, or a single carry chain — the displacements a folded
// index could cancel with one history bit. Word-aligned so filler PCs
// stay aligned.
const fillerXor = 0x5530

// rec is the one-line record constructor all generators share.
func rec(pc uint64, site uint32, taken bool) trace.Record {
	return trace.Record{PC: pc, Static: site, Taken: taken}
}

// constProbe is the adaptivity probe: one branch, one constant outcome.
// Any table of trainable counters drives its miss fraction to zero; a
// hardwired (static) predictor stays wrong forever on one direction.
//
//bimode:deterministic
func constProbe(base uint64, visits int, taken bool) []trace.Record {
	recs := make([]trace.Record, 0, visits)
	for i := 0; i < visits; i++ {
		recs = append(recs, rec(base, siteCounted, taken))
	}
	return recs
}

// historyProbe is the history-depth probe: one branch repeating the
// pattern T^length F. A predictor with effective history >= length sees
// a unique context before the single not-taken outcome (the window
// T^length occurs nowhere else in the period) and learns it; anything
// shallower confuses that context with a deep position inside the taken
// run, whose majority pins the counter taken, and misses the F every
// period. Only the F records are scored.
//
//bimode:deterministic
func historyProbe(base uint64, length, rounds int) []trace.Record {
	recs := make([]trace.Record, 0, rounds*(length+1))
	for r := 0; r < rounds; r++ {
		for j := 0; j < length; j++ {
			recs = append(recs, rec(base, siteProbe, true))
		}
		recs = append(recs, rec(base, siteCounted, false))
	}
	return recs
}

// scopeProbe is the history-scope probe: the pattern branch X = (T^e F)
// interleaved with an always-NOT-taken context branch N before every X
// visit. A per-address history register keeps X's own outcomes intact,
// so X stays predictable whenever e fits its depth — and because X's
// windows always contain taken bits, they can never land on the
// all-zeros entry N saturates in a shared history-indexed table (the
// reason N's direction is not-taken: an always-taken N would pin the
// all-ones entry that X's own deepest window needs). A global register
// sees the interleaving: X's previous F is 2(e+1)-1 records back, so
// once 2e+1 exceeds the global depth the window before the F and the
// windows before late taken positions are the same noise/taken
// alternation, the shared context's taken majority pins the counter,
// and the F misses every period. Only X's F records are scored.
//
//bimode:deterministic
func scopeProbe(base uint64, e, rounds int) []trace.Record {
	noise := base ^ fillerXor
	recs := make([]trace.Record, 0, 2*rounds*(e+1))
	for r := 0; r < rounds; r++ {
		for j := 0; j <= e; j++ {
			recs = append(recs, rec(noise, siteNoise, false))
			if j < e {
				recs = append(recs, rec(base, siteProbe, true))
			} else {
				recs = append(recs, rec(base, siteCounted, false))
			}
		}
	}
	return recs
}

// fillWindow appends hmax filler outcomes that force the global history
// window to a chosen value w: bit 0 of w is the newest outcome after
// the run, bit j the outcome j records before it. With hmax at least
// the predictor's depth, the window after the run is fully determined
// regardless of what preceded it.
func fillWindow(recs []trace.Record, fillPC uint64, hmax int, w uint64) []trace.Record {
	for j := hmax - 1; j >= 0; j-- {
		recs = append(recs, rec(fillPC, siteFill, w&(1<<uint(j)) != 0))
	}
	return recs
}

// onesWindow is the all-taken history window of width hmax.
func onesWindow(hmax int) uint64 { return 1<<uint(hmax) - 1 }

// strideProbe is the index-width probe for global-history predictors:
// branch A at base is always taken, branch B at base+4*2^stride is
// always not-taken, and every visit is preceded by a filler run forcing
// the same all-ones history window for both. With identical windows the
// two index computations differ only in their PC contribution, so B's
// counter is shared with A's exactly when the table's PC field cannot
// separate a 2^stride word distance — and A's taken majority then costs
// B its not-taken outcome every round. Only B's records are scored.
//
//bimode:deterministic
func strideProbe(base uint64, stride, hmax, rounds int) []trace.Record {
	fillPC := base ^ fillerXor
	pcB := base + 4<<uint(stride)
	ones := onesWindow(hmax)
	recs := make([]trace.Record, 0, rounds*2*(hmax+1))
	for r := 0; r < rounds; r++ {
		recs = fillWindow(recs, fillPC, hmax, ones)
		recs = append(recs, rec(base, siteProbe, true))
		recs = fillWindow(recs, fillPC, hmax, ones)
		recs = append(recs, rec(pcB, siteCounted, false))
	}
	return recs
}

// strideProbePerAddr is the index-width probe for per-address-history
// predictors, where global filler runs cannot force a window: branch A
// at base is always taken (its per-address window saturates to all
// ones), branch B at base+4*2^stride repeats T^e F with e at the
// measured per-address depth, so B's own window before its F is the
// same all-ones value. When the stride defeats the PC (set) field the
// two branches share the all-ones-context counter, A's taken majority
// pins it, and B misses its F every period. Only B's F records are
// scored.
//
//bimode:deterministic
func strideProbePerAddr(base uint64, stride, e, rounds int) []trace.Record {
	pcB := base + 4<<uint(stride)
	recs := make([]trace.Record, 0, 2*rounds*(e+1))
	for r := 0; r < rounds; r++ {
		for j := 0; j <= e; j++ {
			recs = append(recs, rec(base, siteProbe, true))
			if j < e {
				recs = append(recs, rec(pcB, siteProbe, true))
			} else {
				recs = append(recs, rec(pcB, siteCounted, false))
			}
		}
	}
	return recs
}

// foldBitContext returns the PC pair and window masks for a fold-style
// collision at bit position bit: branches A (base) and B (base xor
// 4<<bit) differ in exactly PC index bit `bit`, m1 is the history bit
// that an xor-folding index would cancel that difference with, and m2
// is a second, disjoint window bit used to give each branch two
// distinct contexts.
func foldBitContext(base uint64, bit int) (pcB, m1, m2 uint64) {
	pcB = base ^ 4<<uint(bit)
	m1 = 1 << uint(bit)
	m2 = 1
	if bit == 0 {
		m2 = 2
	}
	return pcB, m1, m2
}

// foldProbe is the xor-discrimination probe at one bit position.
// Branches A (base) and B (base^(4<<bit)) differ in PC index bit
// `bit`; the filler forces four history windows W, W^m1, W^m2 and
// W^m1^m2 (W all ones, m1 the window bit at the same position, m2 a
// disjoint bit). The schedule gives A outcome taken under W and
// not-taken under W^m2, and B taken under W^m1^m2 and not-taken under
// W^m1. An index that xor-folds PC into history maps A@W and B@W^m1 to
// the same counter (the PC bit cancels the history bit) with opposite
// outcomes — likewise A@W^m2 and B@W^m1^m2 — so both fold pairs
// thrash. Disjoint-field (concatenated) or history-only indexing keeps
// all four contexts distinct and every outcome, though 50/50 per
// branch, is constant per context. Choice mechanisms cannot rescue the
// folded case because neither branch has a usable bias. Probing bit
// positions above zero matters: tagged structures (YAGS) disambiguate
// low-bit folds with their tags, and only a fold above the tag width
// reaches the shared counter.
//
// Only B's not-taken visits are scored. A's F context (W^m2 with m2 a
// low window bit) is one of the single-zero windows that every filler
// run's sliding zero passes through, so in predictors whose index
// cannot see the filler's PC displacement (shared sets, history-only
// fields) A's entry picks up filler-taken pollution; B's entry is
// displaced from the filler by the probed PC bit, which the sweep only
// visits below the measured index width, so it stays clean whenever
// the index genuinely separates the pair.
//
//bimode:deterministic
func foldProbe(base uint64, bit, hmax, rounds int) []trace.Record {
	fillPC := base ^ fillerXor
	pcB, m1, m2 := foldBitContext(base, bit)
	w := onesWindow(hmax)
	recs := make([]trace.Record, 0, rounds*4*(hmax+1))
	for r := 0; r < rounds; r++ {
		recs = fillWindow(recs, fillPC, hmax, w)
		recs = append(recs, rec(base, siteProbe, true))
		recs = fillWindow(recs, fillPC, hmax, w^m1^m2)
		recs = append(recs, rec(pcB, siteProbe, true))
		recs = fillWindow(recs, fillPC, hmax, w^m2)
		recs = append(recs, rec(base, siteProbe, false))
		recs = fillWindow(recs, fillPC, hmax, w^m1)
		recs = append(recs, rec(pcB, siteCounted, false))
	}
	return recs
}

// choiceProbe is the choice-mechanism probe, run at the bit position
// where foldProbe found xor folding: A (base) is always taken under
// window W, B (base^(4<<bit)) is always not-taken under W^m1 — the
// same engineered collision, but now each branch is perfectly biased.
// A monolithic folded table shares one counter between a taken and a
// not-taken stream and B misses nearly every visit; a bias-separating
// mechanism (choice banks, agree bias, filter counters, tagged
// exceptions) keyed by PC alone splits the two streams and both
// predict cleanly. Only B's records are scored.
//
//bimode:deterministic
func choiceProbe(base uint64, bit, hmax, rounds int) []trace.Record {
	fillPC := base ^ fillerXor
	pcB, m1, _ := foldBitContext(base, bit)
	w := onesWindow(hmax)
	recs := make([]trace.Record, 0, rounds*2*(hmax+1))
	for r := 0; r < rounds; r++ {
		recs = fillWindow(recs, fillPC, hmax, w)
		recs = append(recs, rec(base, siteProbe, true))
		recs = fillWindow(recs, fillPC, hmax, w^m1)
		recs = append(recs, rec(pcB, siteCounted, false))
	}
	return recs
}
