package fingerprint

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bimode/internal/predictor"
	"bimode/internal/trace"
	"bimode/internal/zoo"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestFingerprintZoo is the suite's oracle: for every example spec in
// the zoo, the black-box probes must infer exactly the structure the
// spec's declared geometry implies — history depth, scope, index width,
// hash class, capacity and choice presence, through the observability
// adapter in expect.go.
func TestFingerprintZoo(t *testing.T) {
	for _, spec := range zoo.Known() {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			g, err := zoo.Describe(spec)
			if err != nil {
				t.Fatalf("Describe(%q): %v", spec, err)
			}
			opts := Options{Workers: 2}
			rep := Fingerprint(spec, func() predictor.Predictor { return zoo.MustNew(spec) }, opts)
			for _, line := range Expected(g, opts).Diff(rep) {
				t.Errorf("%s: %s", spec, line)
			}
			if t.Failed() {
				t.Logf("report:\n%s", rep.String())
			}
		})
	}
}

// TestFingerprintConfidence pins that clean verdicts come with real
// separation margins, not threshold-grazing luck.
func TestFingerprintConfidence(t *testing.T) {
	rep := Fingerprint("bimode:b=11", func() predictor.Predictor { return zoo.MustNew("bimode:b=11") }, Options{})
	for name, conf := range map[string]float64{
		"adaptive": rep.AdaptiveConf,
		"history":  rep.HistoryConf,
		"scope":    rep.ScopeConf,
		"stride":   rep.StrideConf,
		"fold":     rep.FoldConf,
		"choice":   rep.ChoiceConf,
		"hash":     rep.HashConf,
	} {
		if conf < 0.8 {
			t.Errorf("%s confidence %.3f below 0.8; the probe separation is too thin to trust", name, conf)
		}
	}
}

// TestProbeGeneratorsDeterministic is the property test for satellite
// determinism: every generator, called twice with identical arguments,
// must produce byte-identical traces — no clocks, no ambient
// randomness, no map-order dependence. (The static proof of the same
// property is the //bimode:deterministic annotation on each generator,
// checked by the detlint analyzer over the whole repo.)
func TestProbeGeneratorsDeterministic(t *testing.T) {
	gens := map[string]func() []trace.Record{
		"const-taken":    func() []trace.Record { return constProbe(0x40000, 257, true) },
		"const-nottaken": func() []trace.Record { return constProbe(0x40000, 257, false) },
		"history":        func() []trace.Record { return historyProbe(0xA64D0, 7, 64) },
		"scope":          func() []trace.Record { return scopeProbe(0xA64D0, 5, 64) },
		"stride":         func() []trace.Record { return strideProbe(0x1C3F40, 9, 14, 64) },
		"stride-peraddr": func() []trace.Record { return strideProbePerAddr(0x1C3F40, 9, 8, 64) },
		"fold":           func() []trace.Record { return foldProbe(0x40000, 6, 14, 64) },
		"choice":         func() []trace.Record { return choiceProbe(0x40000, 6, 14, 64) },
	}
	for name, gen := range gens {
		a, b := gen(), gen()
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two generations of the same probe differ", name)
		}
		if len(a) == 0 {
			t.Errorf("%s: generator produced an empty trace", name)
		}
	}
}

// TestFingerprintDeterministicAcrossWorkers pins that the report does
// not depend on scheduler fan-out: sequential and parallel runs must be
// byte-identical, since every probe runs against its own fresh
// predictor instance and results are index-addressed.
func TestFingerprintDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		rep := Fingerprint("gshare:i=12,h=8",
			func() predictor.Predictor { return zoo.MustNew("gshare:i=12,h=8") },
			Options{Workers: workers})
		b, err := rep.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		return b
	}
	if seq, par := run(0), run(4); !bytes.Equal(seq, par) {
		t.Errorf("fingerprint differs between sequential and 4-worker runs")
	}
}

// TestFingerprintGolden pins the full bi-mode report — verdicts,
// confidences and raw evidence — against a committed golden, so any
// drift in probe construction or decision rules is a reviewed diff.
// Regenerate with: go test ./internal/fingerprint -run Golden -update
func TestFingerprintGolden(t *testing.T) {
	rep := Fingerprint("bimode:b=11", func() predictor.Predictor { return zoo.MustNew("bimode:b=11") }, Options{})
	got, err := rep.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "fingerprint_report.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("bi-mode fingerprint drifted from golden %s; rerun with -update and review the diff", path)
	}
	// The golden must itself be valid JSON for downstream tooling.
	var chk Report
	if err := json.Unmarshal(want, &chk); err != nil {
		t.Fatalf("golden is not valid JSON: %v", err)
	}
}
