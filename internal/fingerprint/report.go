package fingerprint

import (
	"encoding/json"
	"fmt"
	"strings"

	"bimode/internal/textplot"
)

// Inferred history-scope verdicts. These are the prober's vocabulary,
// deliberately narrower than the zoo's declared scopes: a black box
// cannot tell "hybrid" from "peraddr" (a tournament's per-address side
// is what survives the interleaving probe), so the expectation adapter
// in expect.go maps declared scopes onto these.
const (
	ScopeReportNone       = "none"
	ScopeReportGlobal     = "global"
	ScopeReportPerAddr    = "peraddr"
	ScopeReportUnresolved = "unresolved"
)

// Inferred index-hash verdicts.
const (
	HashReportStatic     = "static"     // not adaptive; no table at all
	HashReportPC         = "pc"         // PC-only indexing, no history
	HashReportXor        = "xor"        // history folded into the PC field
	HashReportUnfolded   = "unfolded"   // disjoint PC and history fields
	HashReportHistory    = "history"    // history-only indexing
	HashReportShielded   = "shielded"   // no stride in the sweep collides
	HashReportUnresolved = "unresolved" // gated off (capped history sweep)
)

// Evidence is the raw measurement record behind a report: every probe
// execution the decision rules consumed, for rendering and for the
// committed golden.
type Evidence struct {
	Adaptivity []Measure `json:"adaptivity,omitempty"`
	History    []Measure `json:"history,omitempty"`
	Scope      []Measure `json:"scope,omitempty"`
	Stride     []Measure `json:"stride,omitempty"`
	Fold       []Measure `json:"fold,omitempty"`
	Choice     []Measure `json:"choice,omitempty"`
}

// Report is the inferred structure of a probed predictor. Confidence
// fields are separation margins in [0, 1]: the scored miss fraction's
// distance from the 0.5 decision threshold, doubled, minimised over the
// measurements the verdict rests on.
type Report struct {
	Predictor string  `json:"predictor"`
	Options   Options `json:"options"`

	// Adaptive: both constant-outcome streams became predictable.
	Adaptive     bool    `json:"adaptive"`
	AdaptiveConf float64 `json:"adaptive_conf"`

	// HistoryBits is the deepest predictable T^L F pattern; capped
	// means every probed depth was predictable (a loop-style capture)
	// so the true depth is beyond the sweep.
	HistoryBits   int     `json:"history_bits"`
	HistoryCapped bool    `json:"history_capped,omitempty"`
	HistoryConf   float64 `json:"history_conf"`

	// Scope is the inferred history scope; PerAddrHistoryBits is the
	// interleaving-robust depth when the scope is per-address.
	Scope              string  `json:"scope"`
	PerAddrHistoryBits int     `json:"peraddr_history_bits,omitempty"`
	ScopeConf          float64 `json:"scope_conf"`

	// PCIndexBits is the smallest colliding stride exponent (-1: no
	// stride in the sweep collided — the index is shielded).
	PCIndexBits int     `json:"pc_index_bits"`
	StrideConf  float64 `json:"stride_conf"`

	// Folded: some bit-compensated collision pair thrashed, so PC and
	// history share index bits (xor-style folding); FoldBit is the
	// lowest thrashing bit position (-1 when not folded — for tagged
	// structures the first fold sits above the tag width).
	Folded   bool    `json:"folded"`
	FoldBit  int     `json:"fold_bit"`
	FoldConf float64 `json:"fold_conf"`

	// HasChoice: the index folds, yet perfectly biased streams on the
	// same engineered collision stay separated.
	HasChoice  bool    `json:"has_choice"`
	ChoiceConf float64 `json:"choice_conf"`

	// IndexHash and TableEntries are derived from the verdicts above
	// (TableEntries 0 when unresolved).
	IndexHash    string  `json:"index_hash"`
	TableEntries int     `json:"table_entries"`
	HashConf     float64 `json:"hash_conf"`

	// Evidence holds every measurement behind the verdicts.
	Evidence Evidence `json:"evidence"`
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders a one-screen summary: the inferred attributes with
// their confidences, then miss-fraction bars for the history and stride
// sweeps (the two measurements whose shape, not just verdict, carries
// information).
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fingerprint: %s\n", r.Predictor)
	row := func(label, value string, conf float64) {
		fmt.Fprintf(&b, "  %-22s %-14s conf %.2f\n", label, value, conf)
	}
	row("adaptive", fmt.Sprintf("%v", r.Adaptive), r.AdaptiveConf)
	hist := fmt.Sprintf("%d", r.HistoryBits)
	if r.HistoryCapped {
		hist = fmt.Sprintf(">=%d (capped)", r.HistoryBits)
	}
	row("history bits", hist, r.HistoryConf)
	scope := r.Scope
	if r.Scope == ScopeReportPerAddr {
		scope = fmt.Sprintf("peraddr/%d", r.PerAddrHistoryBits)
	}
	row("history scope", scope, r.ScopeConf)
	stride := fmt.Sprintf("%d", r.PCIndexBits)
	if r.PCIndexBits < 0 {
		stride = "shielded"
	}
	row("pc index bits", stride, r.StrideConf)
	row("index hash", r.IndexHash, r.HashConf)
	entries := fmt.Sprintf("%d", r.TableEntries)
	if r.TableEntries == 0 {
		entries = "unresolved"
	}
	row("table entries", entries, r.HashConf)
	row("choice mechanism", fmt.Sprintf("%v", r.HasChoice), r.ChoiceConf)

	if len(r.Evidence.History) > 0 {
		b.WriteString("\n  history sweep (miss fraction of the pattern F):\n")
		for _, m := range r.Evidence.History {
			fmt.Fprintf(&b, "  %s\n", textplot.Bar(fmt.Sprintf("L=%2d", m.Param), m.Frac, 40))
		}
	}
	if medians := medianByParam(r.Evidence.Stride); len(medians) > 0 {
		b.WriteString("\n  stride sweep (median miss fraction of branch B):\n")
		for _, m := range medians {
			fmt.Fprintf(&b, "  %s\n", textplot.Bar(fmt.Sprintf("k=%2d", m.Param), m.Frac, 40))
		}
	}
	return b.String()
}
