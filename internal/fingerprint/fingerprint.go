package fingerprint

import (
	"math"
	"sort"

	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/trace"
)

// Options sizes the probe suite.
type Options struct {
	// MaxHistory bounds the history-depth sweep and sizes the
	// window-forcing filler runs. It must exceed every plausible
	// history depth but stay below run-length thresholds of filtering
	// structures (the zoo's filter predictor ignores branches with
	// 32-outcome runs), so the default is 14 against the zoo's maximum
	// depth of 12.
	MaxHistory int
	// MaxIndexBits bounds the stride sweep. A skewed predictor's
	// collision stride is twice its per-bank index width, so the
	// default 22 covers the zoo's 2*10-bit gskew with headroom.
	MaxIndexBits int
	// Rounds is the repetition count per probe; decision thresholds
	// sit at half the scored visits, far from both the O(depth)
	// warm-up transients of a clean measurement and the every-round
	// misses of a collision.
	Rounds int
	// Workers is the probe fan-out width (0 = sequential reference
	// scheduler). Excluded from report JSON: fan-out must not change
	// any measurement, and the determinism test pins that.
	Workers int `json:"-"`
}

// Defaults for Options fields left zero.
const (
	DefaultMaxHistory   = 14
	DefaultMaxIndexBits = 22
	DefaultRounds       = 512
)

// entriesCapBits bounds derived table-entry claims: an unfolded index
// whose PC and history fields sum past this is reported unresolved
// rather than extrapolated (the gskew skewing functions, for example,
// make raw capacity invisible to stride probes).
const entriesCapBits = 24

func (o Options) withDefaults() Options {
	if o.MaxHistory <= 0 {
		o.MaxHistory = DefaultMaxHistory
	}
	if o.MaxIndexBits <= 0 {
		o.MaxIndexBits = DefaultMaxIndexBits
	}
	if o.Rounds <= 0 {
		o.Rounds = DefaultRounds
	}
	if o.Workers < 0 {
		o.Workers = 0
	}
	return o
}

// strideBases are the probe base PCs; the stride sweep takes the
// per-stride median across them so an accidental index collision at one
// base (a filler PC aliasing the probe pair, a skewing function hitting
// a degenerate input) cannot fake or hide a collision. All are 16-byte
// aligned so the fold probe's PC bit-0 pairing is well defined.
var strideBases = [...]uint64{0x40000, 0xA64D0, 0x1C3F40}

// Measure is one probe execution: the trace's identifying parameters
// and the scored mispredict count. Scored counts only the records the
// probe's decision rule is about (Static == siteCounted), so filler and
// context-branch transients never pollute a verdict.
type Measure struct {
	Probe  string  `json:"probe"`
	Param  int     `json:"param"`
	Base   uint64  `json:"base"`
	Scored int     `json:"scored"`
	Misses int     `json:"misses"`
	Frac   float64 `json:"miss_fraction"`
}

// failed reports whether the scored stream was effectively
// unpredictable (miss fraction at or above one half — a clean
// measurement sits near 0, a collision near 1), along with the
// separation confidence: the distance from the threshold, doubled, so
// 0 means undecidable and 1 means maximally separated.
func (m Measure) failed() (bool, float64) {
	return m.Frac >= 0.5, math.Min(1, 2*math.Abs(m.Frac-0.5))
}

// session is one fingerprinting run over one predictor factory.
type session struct {
	factory func() predictor.Predictor
	sched   *sim.Scheduler
	o       Options
}

// job is one probe trace waiting to run.
type job struct {
	probe string
	param int
	base  uint64
	gen   func() []trace.Record
}

// runTrace replays one probe trace against a predictor through the
// plain black-box interface (Predict then Update, once per record) and
// scores the counted records.
func runTrace(p predictor.Predictor, recs []trace.Record) (scored, misses int) {
	for _, r := range recs {
		pred := p.Predict(r.PC)
		p.Update(r.PC, r.Taken)
		if r.Static == siteCounted {
			scored++
			if pred != r.Taken {
				misses++
			}
		}
	}
	return scored, misses
}

// sweep fans a batch of probe jobs out through the scheduler, each
// against a fresh predictor instance, and collects the measurements in
// job order (index-addressed writes keep the result deterministic for
// any worker count).
func (s *session) sweep(jobs []job) []Measure {
	out := make([]Measure, len(jobs))
	s.sched.Do(len(jobs), func(i int) error {
		recs := jobs[i].gen()
		scored, misses := runTrace(s.factory(), recs)
		frac := 0.0
		if scored > 0 {
			frac = float64(misses) / float64(scored)
		}
		out[i] = Measure{
			Probe: jobs[i].probe, Param: jobs[i].param, Base: jobs[i].base,
			Scored: scored, Misses: misses, Frac: frac,
		}
		return nil
	})
	return out
}

// medianByParam groups stride measurements by stride exponent and
// returns the per-exponent median measurement (by miss fraction), in
// ascending exponent order.
func medianByParam(ms []Measure) []Measure {
	byParam := map[int][]Measure{}
	var order []int
	for _, m := range ms {
		if _, ok := byParam[m.Param]; !ok {
			order = append(order, m.Param)
		}
		byParam[m.Param] = append(byParam[m.Param], m)
	}
	sort.Ints(order)
	out := make([]Measure, 0, len(order))
	for _, k := range order {
		group := byParam[k]
		sort.Slice(group, func(i, j int) bool { return group[i].Frac < group[j].Frac })
		out = append(out, group[len(group)/2])
	}
	return out
}

// Fingerprint probes a black-box predictor and infers its structure.
// The factory must return a fresh, identically configured instance per
// call: every probe starts from reset state. name labels the report.
func Fingerprint(name string, factory func() predictor.Predictor, opts Options) *Report {
	o := opts.withDefaults()
	s := &session{factory: factory, sched: sim.NewScheduler(o.Workers), o: o}
	rep := &Report{Predictor: name, Options: o}
	base := strideBases[0]

	// Phase 1: adaptivity and history depth, independent probes in one
	// fan-out wave.
	wave := []job{
		{probe: "const", param: 1, base: base, gen: func() []trace.Record { return constProbe(base, o.Rounds, true) }},
		{probe: "const", param: 0, base: base, gen: func() []trace.Record { return constProbe(base, o.Rounds, false) }},
	}
	for l := 1; l <= o.MaxHistory; l++ {
		l := l
		wave = append(wave, job{probe: "history", param: l, base: base,
			gen: func() []trace.Record { return historyProbe(base, l, o.Rounds) }})
	}
	ms := s.sweep(wave)
	rep.Evidence.Adaptivity = ms[:2]
	rep.Evidence.History = ms[2:]
	s.decideAdaptive(rep)
	s.decideHistory(rep)
	if !rep.Adaptive {
		rep.Scope = ScopeReportNone
		rep.PCIndexBits = -1
		rep.IndexHash = HashReportStatic
		return rep
	}

	// Phase 2: history scope, a sweep over interleaved pattern depths.
	// Gated off when the depth sweep was capped (a loop-like capturer
	// predicts the pattern at any depth, so the interleaving tells us
	// nothing) or when no history is consulted at all.
	if !rep.HistoryCapped && rep.HistoryBits > 0 {
		var scopeWave []job
		for e := 1; e <= rep.HistoryBits; e++ {
			e := e
			scopeWave = append(scopeWave, job{probe: "scope", param: e, base: base,
				gen: func() []trace.Record { return scopeProbe(base, e, o.Rounds) }})
		}
		rep.Evidence.Scope = s.sweep(scopeWave)
		s.decideScope(rep)
	} else {
		rep.Scope = ScopeReportUnresolved
		if rep.HistoryBits == 0 {
			rep.Scope = ScopeReportNone
		}
	}

	// Phase 3: the stride sweep (index width) and the fold sweep (xor
	// discrimination over every controllable bit position), one wave.
	// The per-address stride variant replaces the window-forced one
	// when the scope probe found per-branch history; the fold sweep
	// needs at least two controllable history bits and an uncapped
	// depth sweep.
	perAddr := rep.Scope == ScopeReportPerAddr
	var wave3 []job
	for k := 0; k <= o.MaxIndexBits; k++ {
		for _, b := range strideBases {
			k, b := k, b
			if perAddr {
				e := rep.PerAddrHistoryBits
				wave3 = append(wave3, job{probe: "stride-peraddr", param: k, base: b,
					gen: func() []trace.Record { return strideProbePerAddr(b, k, e, o.Rounds) }})
			} else {
				wave3 = append(wave3, job{probe: "stride", param: k, base: b,
					gen: func() []trace.Record { return strideProbe(b, k, o.MaxHistory, o.Rounds) }})
			}
		}
	}
	rep.Evidence.Stride = s.sweep(wave3)
	s.decideStride(rep)

	// Phase 3b: the fold sweep, a dependent wave over the bit positions
	// where a PC/history fold is possible at all — below both the
	// history depth (the compensating window bit must exist) and the
	// measured index width (above it the pair collides by exhaustion,
	// not folding). An index with no PC field (width 0) or no resolved
	// width has nothing to fold; the verdict is a structural false.
	foldable := !rep.HistoryCapped && rep.HistoryBits >= 2 && rep.PCIndexBits >= 1
	if foldable {
		var foldWave []job
		maxBit := rep.HistoryBits
		if rep.PCIndexBits < maxBit {
			maxBit = rep.PCIndexBits
		}
		for bit := 0; bit < maxBit; bit++ {
			for _, b := range strideBases {
				bit, b := bit, b
				foldWave = append(foldWave, job{probe: "fold", param: bit, base: b,
					gen: func() []trace.Record { return foldProbe(b, bit, o.MaxHistory, o.Rounds) }})
			}
		}
		rep.Evidence.Fold = s.sweep(foldWave)
	}
	s.decideFold(rep, foldable)

	// Phase 4: the choice probe, a dependent wave at the bit position
	// where folding was observed — the only place an engineered
	// collision provably reaches a shared counter.
	if rep.Folded {
		var wave4 []job
		for _, b := range strideBases {
			b := b
			wave4 = append(wave4, job{probe: "choice", param: rep.FoldBit, base: b,
				gen: func() []trace.Record { return choiceProbe(b, rep.FoldBit, o.MaxHistory, o.Rounds) }})
		}
		rep.Evidence.Choice = s.sweep(wave4)
	}
	s.decideChoice(rep)
	s.deriveHashAndEntries(rep)
	return rep
}

// decideAdaptive: adaptive means both constant streams become
// predictable — any trainable table passes, a hardwired direction
// fails one of the two.
func (s *session) decideAdaptive(rep *Report) {
	rep.Adaptive = true
	rep.AdaptiveConf = 1
	for _, m := range rep.Evidence.Adaptivity {
		failed, conf := m.failed()
		if failed {
			rep.Adaptive = false
		}
		rep.AdaptiveConf = math.Min(rep.AdaptiveConf, conf)
	}
}

// decideHistory: the inferred depth is the longest contiguous prefix of
// predictable pattern lengths. If every probed length is predictable
// the sweep is capped — a loop-termination structure captures periodic
// patterns regardless of history depth — and depth is unresolved.
func (s *session) decideHistory(rep *Report) {
	depth := 0
	conf := 1.0
	capped := true
	for _, m := range rep.Evidence.History {
		failed, c := m.failed()
		if failed {
			capped = false
			conf = math.Min(conf, c)
			break
		}
		depth = m.Param
		conf = math.Min(conf, c)
	}
	rep.HistoryBits = depth
	rep.HistoryCapped = capped
	rep.HistoryConf = conf
}

// decideScope: the largest interleaving-robust depth ePA tells global
// and per-address history apart. A global register needs 2e+1 of its
// own bits to survive the interleaving, so it stays clean only up to
// about half the measured depth; a per-branch register is immune and
// stays clean to the full depth.
func (s *session) decideScope(rep *Report) {
	ePA := 0
	conf := 1.0
	for _, m := range rep.Evidence.Scope {
		failed, c := m.failed()
		conf = math.Min(conf, c)
		if failed {
			break
		}
		ePA = m.Param
	}
	if ePA >= (rep.HistoryBits+2)/2 {
		rep.Scope = ScopeReportPerAddr
		rep.PerAddrHistoryBits = ePA
	} else {
		rep.Scope = ScopeReportGlobal
	}
	rep.ScopeConf = conf
}

// decideStride: the inferred index width is the smallest stride
// exponent whose per-base median collides; none across the whole sweep
// means the structure is shielded from stride aliasing.
func (s *session) decideStride(rep *Report) {
	medians := medianByParam(rep.Evidence.Stride)
	rep.PCIndexBits = -1
	rep.StrideConf = 1
	for _, m := range medians {
		failed, c := m.failed()
		rep.StrideConf = math.Min(rep.StrideConf, c)
		if failed {
			rep.PCIndexBits = m.Param
			break
		}
	}
}

// decideFold: folding (xor) shows as thrash on a bit-compensated 50/50
// pair at some bit position. The sweep takes the per-position median
// across bases; the index folds if any position thrashes, and FoldBit
// is the lowest such position (for a plain xor index that is bit 0;
// for a tagged structure it is the first bit above the tag width,
// where the tags stop disambiguating the engineered alias).
func (s *session) decideFold(rep *Report, foldable bool) {
	rep.FoldBit = -1
	if !foldable {
		rep.Folded = false
		return
	}
	rep.FoldConf = 1
	for _, m := range medianByParam(rep.Evidence.Fold) {
		failed, c := m.failed()
		rep.FoldConf = math.Min(rep.FoldConf, c)
		if failed {
			rep.Folded = true
			rep.FoldBit = m.Param
			break
		}
	}
}

// decideChoice: a choice mechanism shows as a folded index that
// nonetheless separates the same engineered collision once each branch
// is perfectly biased. Majority vote across bases; without observed
// folding the verdict is a structural false (nothing to separate).
func (s *session) decideChoice(rep *Report) {
	if !rep.Folded {
		rep.HasChoice = false
		return
	}
	fails, conf := 0, 1.0
	for _, m := range rep.Evidence.Choice {
		failed, c := m.failed()
		conf = math.Min(conf, c)
		if failed {
			fails++
		}
	}
	rep.HasChoice = fails*2 < len(rep.Evidence.Choice)
	rep.ChoiceConf = math.Min(rep.FoldConf, conf)
}

// deriveHashAndEntries composes the index-hash class and the
// addressable entry count from the phase verdicts.
func (s *session) deriveHashAndEntries(rep *Report) {
	switch {
	case rep.HistoryCapped:
		rep.IndexHash = HashReportUnresolved
	case rep.HistoryBits == 0:
		rep.IndexHash = HashReportPC
		if rep.PCIndexBits >= 0 {
			rep.TableEntries = 1 << rep.PCIndexBits
		}
	case rep.PCIndexBits < 0:
		rep.IndexHash = HashReportShielded
	case rep.PCIndexBits == 0:
		rep.IndexHash = HashReportHistory
		depth := rep.HistoryBits
		if rep.Scope == ScopeReportPerAddr {
			depth = rep.PerAddrHistoryBits
		}
		rep.TableEntries = 1 << depth
	case rep.Folded:
		rep.IndexHash = HashReportXor
		rep.TableEntries = 1 << rep.PCIndexBits
	default:
		rep.IndexHash = HashReportUnfolded
		depth := rep.HistoryBits
		if rep.Scope == ScopeReportPerAddr {
			depth = rep.PerAddrHistoryBits
		}
		if rep.PCIndexBits+depth <= entriesCapBits {
			rep.TableEntries = 1 << (rep.PCIndexBits + depth)
		}
	}
	if rep.HistoryCapped || rep.HistoryBits < 2 {
		rep.HashConf = 0
		return
	}
	rep.HashConf = math.Min(rep.StrideConf, rep.FoldConf)
}
