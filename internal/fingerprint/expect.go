package fingerprint

import (
	"fmt"

	"bimode/internal/zoo"
)

// Expectation is what the probe suite should infer for a predictor with
// a given declared geometry — the observability adapter between the
// zoo's white-box declarations and the prober's black-box vocabulary.
// The two differ wherever structure is declared but not observable from
// mispredict counts alone:
//
//   - A loop-termination side structure (HasLoop) predicts every
//     repeating probe pattern, so the history sweep caps out and scope,
//     hash and choice verdicts are unresolved; only the stride sweep
//     still lands (an always-not-taken collision victim never builds the
//     trip confidence the loop side needs to override).
//   - A hybrid (tournament) reads as per-address: its per-branch side is
//     what survives the interleaving probe, and its choice mechanism is
//     unobservable because the engineered collisions live in component
//     tables the meta-chooser simply routes around.
//   - A skewed index reads as unfolded with unresolved capacity: no
//     single-bit PC/history compensation cancels in a majority of banks,
//     so the fold probe stays clean, and the first colliding stride is
//     the full hash input width (twice the per-bank index), whose
//     implied capacity exceeds what a stride probe may honestly claim.
//   - Choice mechanisms are observable only behind a folded (xor) index:
//     that is the only regime where the choice probe's engineered
//     collision actually lands in a shared counter.
type Expectation struct {
	Adaptive           bool   `json:"adaptive"`
	HistoryBits        int    `json:"history_bits"`
	HistoryCapped      bool   `json:"history_capped"`
	Scope              string `json:"scope"`
	PerAddrHistoryBits int    `json:"peraddr_history_bits"`
	PCIndexBits        int    `json:"pc_index_bits"`
	IndexHash          string `json:"index_hash"`
	TableEntries       int    `json:"table_entries"`
	HasChoice          bool   `json:"has_choice"`
	// CheckChoice is false when the choice verdict is unresolved by
	// construction (capped history sweep) rather than a real false.
	CheckChoice bool `json:"check_choice"`
}

// Expected maps a declared geometry to the report the probe suite
// should produce under the given options.
func Expected(g zoo.Geometry, opts Options) Expectation {
	o := opts.withDefaults()

	if g.IndexHash == zoo.HashNone {
		// Static predictors: one constant stream stays wrong forever.
		return Expectation{Adaptive: false, Scope: ScopeReportNone, PCIndexBits: -1, IndexHash: HashReportStatic}
	}
	if g.HasLoop {
		return Expectation{
			Adaptive:      true,
			HistoryBits:   o.MaxHistory,
			HistoryCapped: true,
			Scope:         ScopeReportUnresolved,
			PCIndexBits:   g.PCIndexBits,
			IndexHash:     HashReportUnresolved,
		}
	}

	e := Expectation{
		Adaptive:    true,
		HistoryBits: g.HistoryBits,
		PCIndexBits: g.PCIndexBits,
		CheckChoice: true,
	}
	if e.HistoryBits > o.MaxHistory {
		e.HistoryBits = o.MaxHistory
		e.HistoryCapped = true
	}

	depth := e.HistoryBits
	switch g.HistoryScope {
	case zoo.ScopeNone:
		e.Scope = ScopeReportNone
	case zoo.ScopeGlobal:
		e.Scope = ScopeReportGlobal
	case zoo.ScopePerAddr, zoo.ScopeHybrid:
		e.Scope = ScopeReportPerAddr
		e.PerAddrHistoryBits = g.PerAddrHistoryBits
		depth = g.PerAddrHistoryBits
	}

	switch g.IndexHash {
	case zoo.HashPC:
		e.IndexHash = HashReportPC
		e.TableEntries = 1 << e.PCIndexBits
	case zoo.HashXor:
		e.IndexHash = HashReportXor
		e.TableEntries = 1 << e.PCIndexBits
	case zoo.HashHistory:
		e.IndexHash = HashReportHistory
		e.TableEntries = 1 << depth
	case zoo.HashConcat, zoo.HashSkew:
		e.IndexHash = HashReportUnfolded
		if e.PCIndexBits+depth <= entriesCapBits {
			e.TableEntries = 1 << (e.PCIndexBits + depth)
		}
	}
	e.HasChoice = g.HasChoice && e.IndexHash == HashReportXor
	return e
}

// Diff compares a report against an expectation and returns one line
// per disagreement (empty: the inference matches the declared
// structure on every observable attribute).
func (e Expectation) Diff(r *Report) []string {
	var d []string
	mism := func(field string, got, want interface{}) {
		d = append(d, fmt.Sprintf("%s: inferred %v, declared geometry implies %v", field, got, want))
	}
	if r.Adaptive != e.Adaptive {
		mism("adaptive", r.Adaptive, e.Adaptive)
	}
	if !e.Adaptive {
		// A static predictor resolves nothing else; the remaining
		// fields are placeholders by construction.
		if e.Adaptive == r.Adaptive && r.IndexHash != HashReportStatic {
			mism("index_hash", r.IndexHash, HashReportStatic)
		}
		return d
	}
	if r.HistoryBits != e.HistoryBits {
		mism("history_bits", r.HistoryBits, e.HistoryBits)
	}
	if r.HistoryCapped != e.HistoryCapped {
		mism("history_capped", r.HistoryCapped, e.HistoryCapped)
	}
	if r.Scope != e.Scope {
		mism("scope", r.Scope, e.Scope)
	}
	if r.Scope == ScopeReportPerAddr && r.PerAddrHistoryBits != e.PerAddrHistoryBits {
		mism("peraddr_history_bits", r.PerAddrHistoryBits, e.PerAddrHistoryBits)
	}
	if r.PCIndexBits != e.PCIndexBits {
		mism("pc_index_bits", r.PCIndexBits, e.PCIndexBits)
	}
	if r.IndexHash != e.IndexHash {
		mism("index_hash", r.IndexHash, e.IndexHash)
	}
	if r.TableEntries != e.TableEntries {
		mism("table_entries", r.TableEntries, e.TableEntries)
	}
	if e.CheckChoice && r.HasChoice != e.HasChoice {
		mism("has_choice", r.HasChoice, e.HasChoice)
	}
	return d
}
