package workloads

import (
	"testing"

	"bimode/internal/baselines"
	"bimode/internal/synth"
	"bimode/internal/trace"
)

func TestNamesCoverBothFamilies(t *testing.T) {
	names := Names()
	if len(names) != 14+9 {
		t.Fatalf("want 23 workloads, got %d: %v", len(names), names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate workload name %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"gcc", "go", "video_play", "lzw", "playout"} {
		if !seen[want] {
			t.Fatalf("missing workload %q", want)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("spice", Options{}); err == nil {
		t.Fatalf("unknown workload must fail")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("MustGet must panic on unknown workload")
			}
		}()
		MustGet("spice", Options{})
	}()
}

func TestGetSyntheticWithOptions(t *testing.T) {
	src, err := Get("compress", Options{Dynamic: 1000, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	stats := trace.Collect(src)
	if stats.DynamicBranches != 1000 {
		t.Fatalf("dynamic override ignored: %d", stats.DynamicBranches)
	}
	// A different seed must give a different stream.
	other := MustGet("compress", Options{Dynamic: 1000, Seed: 78})
	s1, s2 := src.Stream(), other.Stream()
	diff := false
	for {
		r1, ok1 := s1.Next()
		r2, ok2 := s2.Next()
		if !ok1 || !ok2 {
			break
		}
		if r1.Taken != r2.Taken {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatalf("different seeds should give different outcome streams")
	}
}

func TestSuite(t *testing.T) {
	if got := len(Suite(synth.SuiteSPEC)); got != 6 {
		t.Fatalf("SPEC suite size %d, want 6", got)
	}
	if got := len(Suite(synth.SuiteIBS)); got != 8 {
		t.Fatalf("IBS suite size %d, want 8", got)
	}
}

func TestBackwardBitMatchesBaselines(t *testing.T) {
	// synth and workloads duplicate the constant to avoid an import; the
	// BTFN predictor depends on them agreeing.
	if baselines.BackwardBit != 1<<63 {
		t.Fatalf("BackwardBit moved; update synth.backwardBit and the tracer")
	}
}

func TestProgramsDeterministicAndSized(t *testing.T) {
	for _, name := range []string{"lzw", "expr", "minilisp", "sortbench", "playout", "huffman", "regexish"} {
		name := name
		t.Run(name, func(t *testing.T) {
			const n = 30000
			a := MustGet(name, Options{Dynamic: n})
			b := MustGet(name, Options{Dynamic: n})
			sa, sb := a.Stream(), b.Stream()
			count := 0
			for {
				ra, oka := sa.Next()
				rb, okb := sb.Next()
				if oka != okb {
					t.Fatalf("nondeterministic length")
				}
				if !oka {
					break
				}
				if ra != rb {
					t.Fatalf("nondeterministic record at %d", count)
				}
				count++
				if int(ra.Static) >= a.StaticCount() {
					t.Fatalf("static %d out of range %d", ra.Static, a.StaticCount())
				}
			}
			if count != n {
				t.Fatalf("got %d branches, want %d", count, n)
			}
		})
	}
}

func TestProgramsExerciseBothDirections(t *testing.T) {
	for _, name := range []string{"lzw", "expr", "minilisp", "sortbench", "playout", "huffman", "regexish"} {
		stats := trace.Collect(MustGet(name, Options{Dynamic: 20000}))
		if stats.TakenRate() < 0.05 || stats.TakenRate() > 0.95 {
			t.Errorf("%s taken rate %v is degenerate", name, stats.TakenRate())
		}
		if stats.StaticBranches < 5 {
			t.Errorf("%s has only %d static sites", name, stats.StaticBranches)
		}
	}
}

func TestProgramNote(t *testing.T) {
	if ProgramNote("lzw") == "" {
		t.Fatalf("lzw should have a note")
	}
	if ProgramNote("gcc") != "" {
		t.Fatalf("synthetic benchmarks are not programs")
	}
}

func TestTracerSiteStability(t *testing.T) {
	tr := newTracer(100)
	a1 := tr.Site("x", false)
	b := tr.Site("y", true)
	a2 := tr.Site("x", false)
	if a1.id != a2.id || a1.pc != a2.pc {
		t.Fatalf("re-registering a site must return the same identity")
	}
	if b.id == a1.id {
		t.Fatalf("distinct sites must get distinct ids")
	}
	if b.pc&(1<<63) == 0 {
		t.Fatalf("backward site must carry the backward bit")
	}
	if !a1.Taken(true) || a1.Taken(false) {
		t.Fatalf("Taken must pass the condition through")
	}
	if len(tr.recs) != 2 {
		t.Fatalf("tracer must record each decision")
	}
}

func TestTracerFull(t *testing.T) {
	tr := newTracer(3)
	s := tr.Site("s", false)
	for i := 0; i < 3; i++ {
		if tr.Full() {
			t.Fatalf("tracer full too early at %d", i)
		}
		s.Taken(true)
	}
	if !tr.Full() {
		t.Fatalf("tracer must report full at its limit")
	}
}
