package workloads

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"bimode/internal/baselines"
	"bimode/internal/sim"
	"bimode/internal/trace"
)

// TestProgramEmitsNoBranchesPanics: a program that records nothing in a
// round would spin materialize forever, so the tracer harness must panic
// with a message naming the program instead of hanging.
func TestProgramEmitsNoBranchesPanics(t *testing.T) {
	silent := program{
		name:    "silent",
		dynamic: 10,
		run:     func(t *Tracer, seed uint64, round int) {},
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("materialize must panic on a program that emits no branches")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "emitted no branches") || !strings.Contains(msg, "silent") {
			t.Fatalf("panic %v must name the silent program and the cause", r)
		}
	}()
	newProgramSource(silent, 10, 1).Stream()
}

// TestSingleBranchProgram: the degenerate one-site program must still
// produce a well-formed trace — exactly the dynamic budget, one static
// site, a stable PC, and Len agreeing with the stream.
func TestSingleBranchProgram(t *testing.T) {
	mono := program{
		name:    "mono",
		dynamic: 7,
		run: func(t *Tracer, seed uint64, round int) {
			t.Site("only", false).Taken(round%2 == 0)
		},
	}
	ps := newProgramSource(mono, 7, 1)
	if ps.Len() != 7 {
		t.Fatalf("Len %d, want 7", ps.Len())
	}
	m, err := trace.MaterializeContext(context.Background(), ps)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 7 {
		t.Fatalf("got %d records, want 7", m.Len())
	}
	if ps.StaticCount() != 1 {
		t.Fatalf("static count %d, want 1", ps.StaticCount())
	}
	for i, r := range m.Records() {
		if r.Static != 0 {
			t.Fatalf("record %d static %d, want 0", i, r.Static)
		}
		if r.PC != m.Records()[0].PC {
			t.Fatalf("record %d PC %#x moved from %#x", i, r.PC, m.Records()[0].PC)
		}
		if r.Taken != (i%2 == 0) {
			t.Fatalf("record %d direction %v, want round parity", i, r.Taken)
		}
	}
}

// TestProgramColumnarRoundTrip: an instrumented program's trace must
// survive the columnar store byte-for-byte — the reopened trace drives a
// predictor to the identical simulation result.
func TestProgramColumnarRoundTrip(t *testing.T) {
	src := MustGet("kmpmatch", Options{Dynamic: 5000})
	m, err := trace.MaterializeContext(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := trace.WriteColumnarBlocks(&buf, m, 1024); err != nil {
		t.Fatal(err)
	}
	c, err := trace.OpenColumnar(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	back, err := trace.MaterializeContext(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != m.Len() || back.StaticCount() != m.StaticCount() {
		t.Fatalf("round-trip shape: got (%d recs, %d statics), want (%d, %d)",
			back.Len(), back.StaticCount(), m.Len(), m.StaticCount())
	}
	for i, r := range back.Records() {
		if r != m.Records()[i] {
			t.Fatalf("round-trip changed record %d: got %+v want %+v", i, r, m.Records()[i])
		}
	}

	direct := sim.Run(baselines.NewGshare(10, 8), m)
	reload := sim.Run(baselines.NewGshare(10, 8), back)
	if direct.Err != nil || reload.Err != nil {
		t.Fatalf("sim errors: %v / %v", direct.Err, reload.Err)
	}
	if direct.Mispredicts != reload.Mispredicts || direct.Branches != reload.Branches {
		t.Fatalf("simulation diverged across the columnar store: direct %+v, reloaded %+v", direct, reload)
	}
}
