package workloads

// runRegex is an instrumented backtracking pattern matcher (a tiny glob/
// regex engine supporting literals, '.', '*', and character classes) run
// over generated text. Matcher branches are deeply input-correlated:
// the same pattern positions succeed or fail depending on recent text,
// the structure that gives grep-like codes their branch behavior.

type rxNode struct {
	kind byte // 'c' literal, '.' any, '[' class, '*' star (wraps prev)
	ch   byte
	set  [8]uint32 // class bitmap
	sub  int       // for '*': index of the repeated node
}

type rxState struct {
	t     *Tracer
	prog  []rxNode
	text  []byte
	depth int

	matchLoop, litHit, anyHit, classHit Site
	starTry, starBack                   Site
	scanLoop, found                     Site
	depthGuard                          Site
}

func runRegex(t *Tracer, seed uint64, _ int) {
	rng := NewProgramRNG(seed)
	s := &rxState{t: t}
	s.matchLoop = t.Site("regex.match.loop", true)
	s.litHit = t.Site("regex.lit.hit", false)
	s.anyHit = t.Site("regex.any.hit", false)
	s.classHit = t.Site("regex.class.hit", false)
	s.starTry = t.Site("regex.star.try", false)
	s.starBack = t.Site("regex.star.back", true)
	s.scanLoop = t.Site("regex.scan.loop", true)
	s.found = t.Site("regex.found", false)
	s.depthGuard = t.Site("regex.depth.guard", false)

	alphabet := []byte("abcdef")
	for round := 0; round < 128 && !t.Full(); round++ {
		// Generate text with embedded repeats so patterns sometimes match.
		s.text = s.text[:0]
		for len(s.text) < 512 {
			if rng.Bool(0.3) {
				s.text = append(s.text, 'a', 'b', 'c')
			} else {
				s.text = append(s.text, alphabet[rng.Intn(len(alphabet))])
			}
		}
		// Generate a small pattern.
		s.prog = s.prog[:0]
		n := 2 + rng.Intn(5)
		for i := 0; i < n; i++ {
			switch {
			case rng.Bool(0.2):
				s.prog = append(s.prog, rxNode{kind: '.'})
			case rng.Bool(0.25):
				var node rxNode
				node.kind = '['
				for k := 0; k < 2+rng.Intn(3); k++ {
					c := alphabet[rng.Intn(len(alphabet))]
					node.set[c>>5] |= 1 << (c & 31)
				}
				s.prog = append(s.prog, node)
			default:
				s.prog = append(s.prog, rxNode{kind: 'c', ch: alphabet[rng.Intn(len(alphabet))]})
			}
			// Star-wrap the node occasionally.
			if rng.Bool(0.25) && len(s.prog) > 0 {
				s.prog = append(s.prog, rxNode{kind: '*', sub: len(s.prog) - 1})
			}
		}

		// Scan: try to match at every text position.
		for pos := 0; s.scanLoop.Taken(pos < len(s.text)); pos++ {
			s.depth = 0
			if s.found.Taken(s.match(0, pos)) {
				pos += 2 // skip ahead after a hit, as grep -o would
			}
			if t.Full() {
				return
			}
		}
	}
}

// match reports whether prog[pi:] matches text starting at ti, with
// backtracking for stars.
func (s *rxState) match(pi, ti int) bool {
	if s.depthGuard.Taken(s.depth > 64) {
		return false
	}
	s.depth++
	defer func() { s.depth-- }()

	for s.matchLoop.Taken(pi < len(s.prog)) {
		node := s.prog[pi]
		// A star node consumed greedily with backtracking.
		if pi+1 < len(s.prog) && s.prog[pi+1].kind == '*' {
			star := s.prog[pi+1]
			// Count maximal run of the starred node.
			run := 0
			for ti+run < len(s.text) && s.single(s.prog[star.sub], s.text[ti+run]) {
				run++
			}
			if s.starTry.Taken(run > 0) {
				for k := run; s.starBack.Taken(k >= 0); k-- {
					if s.match(pi+2, ti+k) {
						return true
					}
				}
				return false
			}
			pi += 2
			continue
		}
		if node.kind == '*' { // orphan star (pattern generator artifact): skip
			pi++
			continue
		}
		if ti >= len(s.text) || !s.single(node, s.text[ti]) {
			return false
		}
		pi++
		ti++
	}
	return true
}

// single matches one node against one byte, recording the class-specific
// branch sites.
func (s *rxState) single(n rxNode, c byte) bool {
	switch n.kind {
	case 'c':
		return s.litHit.Taken(n.ch == c)
	case '.':
		return s.anyHit.Taken(true)
	case '[':
		return s.classHit.Taken(n.set[c>>5]&(1<<(c&31)) != 0)
	default:
		return false
	}
}
