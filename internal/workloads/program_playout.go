package workloads

// runPlayout is an instrumented game-playout kernel in the spirit of the
// go benchmark: random playouts on a small board with legality checks,
// neighbor-pattern heuristics and capture detection. Move-choice branches
// depend on evolving board state and are intrinsically weakly biased,
// reproducing why go is the paper's hardest benchmark.

const playoutSize = 11 // board is playoutSize x playoutSize

type playoutState struct {
	t     *Tracer
	board [playoutSize * playoutSize]int8 // 0 empty, 1 black, 2 white

	moveLoop, cellEmpty, heurNeighbor, heurEdge Site
	tryCapture, captureHit, libLoop, libFound   Site
	passCheck, gameLoop                         Site
}

func runPlayout(t *Tracer, seed uint64, _ int) {
	rng := NewProgramRNG(seed)
	s := &playoutState{t: t}
	s.moveLoop = t.Site("playout.move.loop", true)
	s.cellEmpty = t.Site("playout.cell.empty", false)
	s.heurNeighbor = t.Site("playout.heur.neighbor", false)
	s.heurEdge = t.Site("playout.heur.edge", false)
	s.tryCapture = t.Site("playout.try.capture", false)
	s.captureHit = t.Site("playout.capture.hit", false)
	s.libLoop = t.Site("playout.lib.loop", true)
	s.libFound = t.Site("playout.lib.found", false)
	s.passCheck = t.Site("playout.pass", false)
	s.gameLoop = t.Site("playout.game.loop", true)

	for game := 0; game < 64 && !t.Full(); game++ {
		for i := range s.board {
			s.board[i] = 0
		}
		color := int8(1)
		passes := 0
		for move := 0; s.gameLoop.Taken(move < 200 && passes < 2); move++ {
			if s.playMove(rng, color) {
				passes = 0
			} else {
				passes++
			}
			if s.passCheck.Taken(passes >= 2) {
				break
			}
			color = 3 - color
		}
	}
}

// playMove tries up to 16 random cells, applying pattern heuristics, and
// plays the first acceptable one. Returns false on pass.
func (s *playoutState) playMove(rng *ProgramRNG, color int8) bool {
	for try := 0; s.moveLoop.Taken(try < 16); try++ {
		idx := rng.Intn(len(s.board))
		if !s.cellEmpty.Taken(s.board[idx] == 0) {
			continue
		}
		x, y := idx%playoutSize, idx/playoutSize
		// Heuristic: prefer cells adjacent to friendly stones...
		friendly := s.countNeighbors(x, y, color)
		if s.heurNeighbor.Taken(friendly >= 3) {
			continue // avoid filling own eyes
		}
		// ...and avoid the first line unless contact.
		onEdge := x == 0 || y == 0 || x == playoutSize-1 || y == playoutSize-1
		if s.heurEdge.Taken(onEdge && friendly == 0 && rng.Bool(0.7)) {
			continue
		}
		s.board[idx] = color
		// Capture check on enemy neighbors.
		enemy := 3 - color
		if s.tryCapture.Taken(s.countNeighbors(x, y, enemy) > 0) {
			s.captureAround(x, y, enemy)
		}
		return true
	}
	return false
}

func (s *playoutState) countNeighbors(x, y int, color int8) int {
	n := 0
	for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
		nx, ny := x+d[0], y+d[1]
		if nx < 0 || ny < 0 || nx >= playoutSize || ny >= playoutSize {
			continue
		}
		if s.board[ny*playoutSize+nx] == color {
			n++
		}
	}
	return n
}

// captureAround removes adjacent enemy stones that have no liberties in a
// small flood-filled region (a cheap approximation of real capture).
func (s *playoutState) captureAround(x, y int, enemy int8) {
	for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
		nx, ny := x+d[0], y+d[1]
		if nx < 0 || ny < 0 || nx >= playoutSize || ny >= playoutSize {
			continue
		}
		idx := ny*playoutSize + nx
		if s.board[idx] != enemy {
			continue
		}
		if s.captureHit.Taken(!s.hasLiberty(nx, ny)) {
			s.board[idx] = 0
		}
	}
}

// hasLiberty scans the stone's 8-neighborhood for an empty cell.
func (s *playoutState) hasLiberty(x, y int) bool {
	for dy := -1; s.libLoop.Taken(dy <= 1); dy++ {
		for dx := -1; dx <= 1; dx++ {
			nx, ny := x+dx, y+dy
			if nx < 0 || ny < 0 || nx >= playoutSize || ny >= playoutSize {
				continue
			}
			if s.libFound.Taken(s.board[ny*playoutSize+nx] == 0) {
				return true
			}
		}
	}
	return false
}
