package workloads

import (
	"fmt"

	"bimode/internal/synth"
	"bimode/internal/trace"
)

// Tracer records the branch decisions of an instrumented program. A
// program declares each static branch site once (Site) and then routes
// every dynamic decision through Site.Taken, which records the outcome and
// passes the value through so instrumentation reads naturally:
//
//	if probe.Taken(key == want) { ... }
type Tracer struct {
	recs    []trace.Record
	ids     map[string]uint32
	pcs     []uint64
	nextPC  uint64
	limit   int
	reached bool
}

// newTracer returns a tracer that stops a program politely once limit
// records exist (programs poll Full between work units).
func newTracer(limit int) *Tracer {
	return &Tracer{ids: map[string]uint32{}, nextPC: 0x40000, limit: limit}
}

// Site declares (or looks up) a static branch site by name. backward
// marks loop back-edges for the BTFN static predictor.
type Site struct {
	t        *Tracer
	id       uint32
	pc       uint64
	backward bool
}

// Site returns the site registered under name, creating it on first use.
// Sites get word-spaced synthetic PCs in registration order, clustered the
// way a compiler lays out a function's branches.
func (t *Tracer) Site(name string, backward bool) Site {
	id, ok := t.ids[name]
	if !ok {
		id = uint32(len(t.pcs))
		t.ids[name] = id
		t.pcs = append(t.pcs, t.nextPC)
		t.nextPC += 8
		if len(t.pcs)%16 == 0 {
			t.nextPC += 0x100 // new "function" cluster
		}
	}
	pc := t.pcs[id]
	if backward {
		pc |= 1 << 63 // baselines.BackwardBit
	}
	return Site{t: t, id: id, pc: pc, backward: backward}
}

// Taken records the branch outcome and returns it, so the call can sit
// directly inside an if condition.
func (s Site) Taken(cond bool) bool {
	t := s.t
	t.recs = append(t.recs, trace.Record{PC: s.pc, Static: s.id, Taken: cond})
	if len(t.recs) >= t.limit {
		t.reached = true
	}
	return cond
}

// Full reports whether the tracer has collected its branch budget;
// programs check it between work units and stop early.
func (t *Tracer) Full() bool { return t.reached }

// programSource adapts an instrumented program to trace.Source. The
// program is run (over as many rounds as needed) at Stream time and the
// records replayed; results are cached after the first run since the
// program is deterministic.
type programSource struct {
	prog    program
	dynamic int
	seed    uint64
	cached  *trace.Memory
}

func newProgramSource(p program, dynamic int, seed uint64) *programSource {
	return &programSource{prog: p, dynamic: dynamic, seed: seed}
}

// Name implements trace.Source.
func (ps *programSource) Name() string { return ps.prog.name }

// StaticCount implements trace.Source.
func (ps *programSource) StaticCount() int { return ps.materialize().StaticCount() }

// Stream implements trace.Source.
func (ps *programSource) Stream() trace.Stream { return ps.materialize().Stream() }

// Len implements trace.Sized: the tracer runs the program until exactly
// `dynamic` branches are recorded (materialize truncates any overshoot).
func (ps *programSource) Len() int { return ps.dynamic }

func (ps *programSource) materialize() *trace.Memory {
	if ps.cached != nil {
		return ps.cached
	}
	t := newTracer(ps.dynamic)
	for round := 0; !t.Full(); round++ {
		before := len(t.recs)
		ps.prog.run(t, ps.seed+uint64(round)*0x9E3779B9, round)
		if len(t.recs) == before {
			panic(fmt.Sprintf("workloads: program %s emitted no branches in round %d", ps.prog.name, round))
		}
	}
	recs := t.recs
	if len(recs) > ps.dynamic {
		recs = recs[:ps.dynamic]
	}
	ps.cached = trace.NewMemory(ps.prog.name, len(ps.pcsOf(t)), recs)
	return ps.cached
}

func (ps *programSource) pcsOf(t *Tracer) []uint64 { return t.pcs }

// ProgramRNG is re-exported so program implementations share the
// deterministic generator used everywhere else.
type ProgramRNG = synth.RNG

// NewProgramRNG seeds a deterministic generator for program inputs.
func NewProgramRNG(seed uint64) *ProgramRNG { return synth.NewRNG(seed) }
