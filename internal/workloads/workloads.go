// Package workloads is the benchmark registry: it maps workload names to
// trace sources. Two families are available:
//
//   - The fourteen calibrated synthetic benchmarks standing in for the
//     paper's SPEC CINT95 and IBS-Ultrix traces (see internal/synth and
//     DESIGN.md section 2 for the substitution rationale).
//   - Instrumented real programs (LZW compression, expression parsing and
//     evaluation, a lisp-style interpreter, sorting/searching, and a
//     game-playout kernel) whose genuine branch decisions are recorded
//     through the Tracer harness — a non-parametric cross-check on the
//     synthetic results.
package workloads

import (
	"fmt"
	"sort"

	"bimode/internal/synth"
	"bimode/internal/trace"
)

// Options adjusts a workload when it is instantiated.
type Options struct {
	// Dynamic overrides the number of dynamic branches (0 keeps the
	// workload default).
	Dynamic int
	// Seed overrides the workload seed (0 keeps the default).
	Seed uint64
}

// program describes one instrumented real program.
type program struct {
	name    string
	note    string
	dynamic int // default dynamic branch budget
	run     func(t *Tracer, seed uint64, round int)
}

// programs lists the instrumented real programs; definitions live in the
// program_*.go files.
var programs = []program{
	{name: "lzw", note: "LZW compression of generated text (compress-like)", dynamic: 400000, run: runLZW},
	{name: "expr", note: "recursive-descent parsing and evaluation (gcc-like front end)", dynamic: 400000, run: runExpr},
	{name: "minilisp", note: "list-structured interpreter (xlisp-like)", dynamic: 400000, run: runLisp},
	{name: "sortbench", note: "quicksort, heapsort and binary search (comparison-heavy)", dynamic: 400000, run: runSort},
	{name: "playout", note: "game-tree playouts with pattern heuristics (go-like)", dynamic: 400000, run: runPlayout},
	{name: "huffman", note: "Huffman tree build, encode and decode (heap + tree walks)", dynamic: 400000, run: runHuffman},
	{name: "regexish", note: "backtracking pattern matcher over generated text (grep-like)", dynamic: 400000, run: runRegex},
	{name: "mpmatch", note: "Morris-Pratt string search with analytic comparison traces", dynamic: 400000, run: runMPMatch},
	{name: "kmpmatch", note: "Knuth-Morris-Pratt search, strong-failure shifting", dynamic: 400000, run: runKMPMatch},
}

// Names returns every registered workload name, synthetic benchmarks
// first in paper order, then the instrumented programs alphabetically.
func Names() []string {
	var names []string
	for _, p := range synth.Profiles() {
		names = append(names, p.Name)
	}
	var progs []string
	for _, p := range programs {
		progs = append(progs, p.name)
	}
	sort.Strings(progs)
	return append(names, progs...)
}

// Get instantiates the named workload.
func Get(name string, opts Options) (trace.Source, error) {
	if prof, ok := synth.ProfileByName(name); ok {
		if opts.Dynamic > 0 {
			prof = prof.WithDynamic(opts.Dynamic)
		}
		if opts.Seed != 0 {
			prof = prof.WithSeed(opts.Seed)
		}
		return synth.NewWorkload(prof)
	}
	for _, p := range programs {
		if p.name != name {
			continue
		}
		dyn := p.dynamic
		if opts.Dynamic > 0 {
			dyn = opts.Dynamic
		}
		seed := uint64(0x5EED0000) + uint64(len(p.name))
		if opts.Seed != 0 {
			seed = opts.Seed
		}
		return newProgramSource(p, dyn, seed), nil
	}
	return nil, fmt.Errorf("workloads: unknown workload %q (try one of %v)", name, Names())
}

// MustGet is Get for names fixed at compile time; panics on error.
func MustGet(name string, opts Options) trace.Source {
	src, err := Get(name, opts)
	if err != nil {
		panic(err)
	}
	return src
}

// Suite returns the calibrated synthetic benchmarks of one suite
// (synth.SuiteSPEC or synth.SuiteIBS) with default parameters, in paper
// order.
func Suite(suite string) []trace.Source {
	var out []trace.Source
	for _, p := range synth.Profiles() {
		if p.Suite == suite {
			out = append(out, synth.MustWorkload(p))
		}
	}
	return out
}

// ProgramNote returns the one-line description of an instrumented
// program, or "" if name is not a program.
func ProgramNote(name string) string {
	for _, p := range programs {
		if p.name == name {
			return p.note
		}
	}
	return ""
}
