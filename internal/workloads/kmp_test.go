package workloads

import (
	"bytes"
	"fmt"
	"testing"

	"bimode/internal/baselines"
	"bimode/internal/sim"
	"bimode/internal/trace"
)

// lastOutcome is the 1-bit last-direction predictor the closed forms
// are stated over: predict whatever the branch did last, initially
// taken. Test-local because the baseline zoo starts at 2-bit counters.
type lastOutcome struct{ last bool }

func newLastOutcome() *lastOutcome             { return &lastOutcome{last: true} }
func (l *lastOutcome) Name() string            { return "last-outcome" }
func (l *lastOutcome) Predict(uint64) bool     { return l.last }
func (l *lastOutcome) Update(_ uint64, t bool) { l.last = t }
func (l *lastOutcome) Reset()                  { l.last = true }
func (l *lastOutcome) CostBits() int           { return 1 }

// repeat returns c repeated n times.
func repeat(c byte, n int) []byte { return bytes.Repeat([]byte{c}, n) }

// breaker returns a^(m-1) b.
func breaker(m int) []byte { return append(repeat('a', m-1), 'b') }

// misses runs p over the trace and returns the exact mispredict count.
func misses(t *testing.T, p interface {
	Name() string
	Predict(uint64) bool
	Update(uint64, bool)
	Reset()
	CostBits() int
}, src trace.Source) int {
	t.Helper()
	res := sim.Run(p, src)
	if res.Err != nil {
		t.Fatalf("sim.Run: %v", res.Err)
	}
	return res.Mispredicts
}

// TestKMPAnalytic pins the exact misprediction counts of three
// predictors — 1-bit last-outcome (init taken), a 2-bit counter (init
// weak-taken) and GAg global-history — over the comparison traces of
// the MP and KMP matchers on three closed-form pattern/text families:
//
//	family a: p = a^m, t = a^n          — all comparisons succeed
//	family b: p = a^(m-1)b, t = a^n     — T^(m-1) (F T)^(n-m+1), MP == KMP
//	family c: p = a^m, t = (a^(m-1)b)^r — MP: (T^(m-1) F^m)^r,
//	                                      KMP: (T^(m-1) F)^r
//
// Every count below is derived by hand from the trace shape and the
// predictor's state machine; the simulation must hit it exactly.
func TestKMPAnalytic(t *testing.T) {
	const m, n, r = 5, 40, 12

	cases := []struct {
		name    string
		src     *trace.Memory
		length  int // structural pin: comparisons in the trace
		oneBit  int
		twoBit  int
		gagHist int
		gag     int
	}{
		{
			// Family a, MP: n successful comparisons, never a miss for
			// any of the three (all-taken stream, taken-initialized).
			name: "a/mp", src: MPTrace(repeat('a', m), repeat('a', n)),
			length: n, oneBit: 0, twoBit: 0, gagHist: 2, gag: 0,
		},
		{
			// Family a, KMP: identical — no mismatches, so shifting
			// never runs and the tables never differ.
			name: "a/kmp", src: KMPTrace(repeat('a', m), repeat('a', n)),
			length: n, oneBit: 0, twoBit: 0, gagHist: 2, gag: 0,
		},
		{
			// Family b, MP: T^(m-1) then (F T) per remaining text
			// position. 1-bit misses both halves of every F T pair:
			// 2(n-m+1). 2-bit stays weak-taken through the pairs and
			// misses only each F: n-m+1. GAg(h=2) walks contexts
			// 00->01->11 during the opening run, then the F T pairs
			// alternate contexts 01 and 10: the first F (context 11,
			// counter weak/strong taken) misses, the F-at-01 counter
			// takes two misses to train down from its one T visit, and
			// everything after is exact: 3 misses total.
			name: "b/mp", src: MPTrace(breaker(m), repeat('a', n)),
			length: 2*n - m + 1, oneBit: 2 * (n - m + 1), twoBit: n - m + 1, gagHist: 2, gag: 3,
		},
		{
			// Family c, MP: each text block a^(m-1)b opens with m-1
			// successful comparisons, then the mismatch cascades
			// through every border: F at j = m-1 .. 0, m failures.
			// 1-bit misses the first F and first T of each block
			// except the opening block's T: 2r-1. 2-bit takes two
			// misses down each F run and two back up each T run,
			// minus the opening run: 4r-2.
			name: "c/mp", src: MPTrace(repeat('a', m), bytes.Repeat(breaker(m), r)),
			length: r * (2*m - 1), oneBit: 2*r - 1, twoBit: 4*r - 2, gagHist: 2 * m, gag: -1,
		},
		{
			// Family c, KMP: the strong table knows every border of
			// a^m is followed by a, so one F per block: (T^(m-1) F)^r.
			// 1-bit: as family b blocks, 2r-1. 2-bit: the single F
			// never drives the counter below weak-taken: r. GAg with
			// h = m sees a unique all-ones-prefixed context before
			// each F and the periodic steady state makes exactly the
			// first block's F miss: 1.
			name: "c/kmp", src: KMPTrace(repeat('a', m), bytes.Repeat(breaker(m), r)),
			length: r * m, oneBit: 2*r - 1, twoBit: r, gagHist: m, gag: 1,
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.src.Len(); got != tc.length {
				t.Fatalf("trace length: got %d comparisons, closed form says %d", got, tc.length)
			}
			if got := misses(t, newLastOutcome(), tc.src); got != tc.oneBit {
				t.Errorf("1-bit last-outcome: got %d misses, closed form says %d", got, tc.oneBit)
			}
			if got := misses(t, baselines.NewSmith(4), tc.src); got != tc.twoBit {
				t.Errorf("2-bit counter: got %d misses, closed form says %d", got, tc.twoBit)
			}
			if tc.gag >= 0 {
				if got := misses(t, baselines.NewGAg(tc.gagHist), tc.src); got != tc.gag {
					t.Errorf("GAg(h=%d): got %d misses, closed form says %d", tc.gagHist, got, tc.gag)
				}
			}
		})
	}

	// Family b is the shifting-equivalence pin: on a^(m-1)b the strong
	// failure at the only mismatch position equals the weak one, so MP
	// and KMP comparison traces are byte-identical.
	mp := MPTrace(breaker(m), repeat('a', n))
	kmp := KMPTrace(breaker(m), repeat('a', n))
	if mp.Len() != kmp.Len() {
		t.Fatalf("family b: MP %d comparisons, KMP %d — traces must be identical", mp.Len(), kmp.Len())
	}
	ms, ks := mp.Stream(), kmp.Stream()
	for i := 0; i < mp.Len(); i++ {
		mr, _ := ms.Next()
		kr, _ := ks.Next()
		if mr.Taken != kr.Taken {
			t.Fatalf("family b: comparison %d differs (MP %v, KMP %v)", i, mr.Taken, kr.Taken)
		}
	}

	// Occurrence cross-check: a^m occurs n-m+1 times in a^n.
	if got := MPOccurrences(repeat('a', m), repeat('a', n)); got != n-m+1 {
		t.Errorf("occurrences of a^%d in a^%d: got %d, want %d", m, n, got, n-m+1)
	}
}

// TestKMPFamilyCGagClosedForm pins the family-c MP GAg count, which
// depends on the full 2m-1-deep context structure: with h = 2m-1 every
// window the F cascade sees is period-distinct, and the steady-state
// periodic trace misses exactly m times (once per cascade position in
// the first period, never again).
func TestKMPFamilyCGagClosedForm(t *testing.T) {
	for _, m := range []int{3, 4, 5} {
		const r = 12
		src := MPTrace(repeat('a', m), bytes.Repeat(breaker(m), r))
		if got := misses(t, baselines.NewGAg(2*m-1), src); got != m {
			t.Errorf("m=%d: GAg(h=%d) got %d misses, closed form says %d", m, 2*m-1, got, m)
		}
	}
}

// TestMatchPrograms smoke-tests the registered workload programs: they
// must materialize their full dynamic budget and produce sane traces.
func TestMatchPrograms(t *testing.T) {
	for _, name := range []string{"mpmatch", "kmpmatch"} {
		src, err := Get(name, Options{Dynamic: 20000})
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		stats := trace.Collect(src)
		if stats.DynamicBranches != 20000 {
			t.Errorf("%s: got %d dynamic branches, want 20000", name, stats.DynamicBranches)
		}
		if stats.TakenRate() <= 0.05 || stats.TakenRate() >= 0.95 {
			t.Errorf("%s: degenerate taken fraction %.3f", name, stats.TakenRate())
		}
	}
}

// ExampleMPTrace shows the analytic surface: the family-b comparison
// trace and its closed-form length.
func ExampleMPTrace() {
	src := MPTrace([]byte("aaab"), []byte("aaaaaaaa"))
	fmt.Println(src.Len())
	// Output: 13
}
