package workloads

// runLZW is an instrumented LZW compressor in the spirit of SPEC's
// compress: it compresses Markov-generated text through a hand-rolled
// open-addressing dictionary, emitting real branch decisions for hash
// probing, dictionary hits, code-width growth, and the text generator's
// own character-class logic.
func runLZW(t *Tracer, seed uint64, _ int) {
	rng := NewProgramRNG(seed)

	// Branch sites, declared up front so ids are stable across rounds.
	genSpace := t.Site("lzw.gen.space", false)
	genUpper := t.Site("lzw.gen.upper", false)
	scanLoop := t.Site("lzw.scan.loop", true)
	probeLoop := t.Site("lzw.probe.loop", true)
	probeHit := t.Site("lzw.probe.hit", false)
	probeEmpty := t.Site("lzw.probe.empty", false)
	dictFull := t.Site("lzw.dict.full", false)
	widthGrow := t.Site("lzw.width.grow", false)
	flushCheck := t.Site("lzw.flush", false)

	// Markov-ish text: word lengths and letter frequencies give the
	// compressor realistic repetition to find.
	text := make([]byte, 8192)
	wordLen := 0
	for i := range text {
		if genSpace.Taken(wordLen > 2 && rng.Bool(0.25)) {
			text[i] = ' '
			wordLen = 0
			continue
		}
		wordLen++
		c := byte('a' + rng.Intn(16)) // skewed small alphabet
		if genUpper.Taken(wordLen == 1 && rng.Bool(0.12)) {
			c -= 'a' - 'A'
		}
		text[i] = c
	}

	const (
		tableSize = 1 << 12
		maxCodes  = 1 << 11
	)
	type entry struct {
		prefix int32
		ch     byte
		code   int32
	}
	table := make([]entry, tableSize)
	for i := range table {
		table[i].code = -1
	}
	nextCode := int32(256)
	codeWidth := 9
	outputBits := 0

	hash := func(prefix int32, ch byte) int {
		return int((uint32(prefix)*31 + uint32(ch)) & (tableSize - 1))
	}

	prefix := int32(text[0])
	for i := 1; scanLoop.Taken(i < len(text)); i++ {
		if t.Full() {
			return
		}
		ch := text[i]
		h := hash(prefix, ch)
		found := int32(-1)
		for probes := 0; probeLoop.Taken(probes < tableSize); probes++ {
			e := table[h]
			if probeEmpty.Taken(e.code < 0) {
				break
			}
			if probeHit.Taken(e.prefix == prefix && e.ch == ch) {
				found = e.code
				break
			}
			h = (h + 1) & (tableSize - 1)
		}
		if found >= 0 {
			prefix = found
			continue
		}
		// Emit code for prefix, add (prefix, ch) to dictionary.
		outputBits += codeWidth
		if !dictFull.Taken(nextCode >= maxCodes) {
			table[h] = entry{prefix: prefix, ch: ch, code: nextCode}
			if widthGrow.Taken(nextCode == 1<<uint(codeWidth)-1) {
				codeWidth++
			}
			nextCode++
		} else if flushCheck.Taken(outputBits > 1<<16) {
			// Dictionary flush, as compress does when ratio degrades.
			for j := range table {
				table[j].code = -1
			}
			nextCode = 256
			codeWidth = 9
			outputBits = 0
		}
		prefix = int32(ch)
	}
}
