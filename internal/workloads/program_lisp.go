package workloads

// runLisp is an instrumented list interpreter in the spirit of xlisp:
// it evaluates generated programs over cons cells with an
// association-list environment. Type-dispatch, environment-walk and
// recursion-depth branches dominate, with the strongly repetitive
// structure interpreters exhibit.

type lispCell struct {
	atom bool
	num  int64
	sym  byte
	car  *lispCell
	cdr  *lispCell
}

type lispState struct {
	t   *Tracer
	env []struct {
		sym byte
		val int64
	}

	evalAtom, evalNum, evalSym Site
	envLoop, envHit            Site
	opDispatch, opIf, opAdd    Site
	ifTrue                     Site
	listLoop                   Site
	depthGuard                 Site
}

func runLisp(t *Tracer, seed uint64, _ int) {
	rng := NewProgramRNG(seed)
	s := &lispState{t: t}
	s.evalAtom = t.Site("lisp.eval.atom", false)
	s.evalNum = t.Site("lisp.eval.num", false)
	s.evalSym = t.Site("lisp.eval.sym", false)
	s.envLoop = t.Site("lisp.env.loop", true)
	s.envHit = t.Site("lisp.env.hit", false)
	s.opDispatch = t.Site("lisp.op.dispatch", false)
	s.opIf = t.Site("lisp.op.if", false)
	s.opAdd = t.Site("lisp.op.add", false)
	s.ifTrue = t.Site("lisp.if.true", false)
	s.listLoop = t.Site("lisp.list.loop", true)
	s.depthGuard = t.Site("lisp.depth.guard", false)

	for round := 0; round < 512 && !t.Full(); round++ {
		// Fresh environment of 6 bindings.
		s.env = s.env[:0]
		for i := 0; i < 6; i++ {
			s.env = append(s.env, struct {
				sym byte
				val int64
			}{sym: byte('a' + i), val: int64(rng.Intn(20) - 10)})
		}
		prog := genLisp(rng, 0)
		s.eval(prog, 0)
	}
}

// genLisp builds a random expression tree: (op arg arg ...) forms with
// if/+/*/sum-list operators, numbers and symbols at the leaves.
func genLisp(rng *ProgramRNG, depth int) *lispCell {
	if depth >= 4 || rng.Bool(0.35) {
		if rng.Bool(0.5) {
			return &lispCell{atom: true, num: int64(rng.Intn(40) - 20)}
		}
		return &lispCell{atom: true, sym: byte('a' + rng.Intn(6)), num: -1}
	}
	ops := []byte{'+', '*', '?', 'l'} // ? = if, l = list-sum
	op := ops[rng.Intn(len(ops))]
	head := &lispCell{atom: true, sym: op, num: -2}
	n := 2 + rng.Intn(3)
	if op == '?' {
		n = 3
	}
	cells := []*lispCell{head}
	for i := 0; i < n; i++ {
		cells = append(cells, genLisp(rng, depth+1))
	}
	// Build the cons chain.
	var list *lispCell
	for i := len(cells) - 1; i >= 0; i-- {
		list = &lispCell{car: cells[i], cdr: list}
	}
	return list
}

func (s *lispState) lookup(sym byte) int64 {
	for i := 0; s.envLoop.Taken(i < len(s.env)); i++ {
		if s.envHit.Taken(s.env[i].sym == sym) {
			return s.env[i].val
		}
	}
	return 0
}

func (s *lispState) eval(c *lispCell, depth int) int64 {
	if s.depthGuard.Taken(depth > 32 || c == nil) {
		return 0
	}
	if s.evalAtom.Taken(c.atom) {
		if s.evalNum.Taken(c.num != -1 || c.sym == 0) {
			return c.num
		}
		if s.evalSym.Taken(c.sym >= 'a' && c.sym <= 'f') {
			return s.lookup(c.sym)
		}
		return 0
	}
	// Application form: car is the operator atom.
	op := c.car
	if op == nil || !op.atom {
		return s.eval(op, depth+1)
	}
	if s.opDispatch.Taken(op.num == -2) {
		switch {
		case s.opIf.Taken(op.sym == '?'):
			cond := s.eval(argN(c, 1), depth+1)
			if s.ifTrue.Taken(cond > 0) {
				return s.eval(argN(c, 2), depth+1)
			}
			return s.eval(argN(c, 3), depth+1)
		case s.opAdd.Taken(op.sym == '+'):
			sum := int64(0)
			for a := c.cdr; s.listLoop.Taken(a != nil); a = a.cdr {
				sum += s.eval(a.car, depth+1)
			}
			return sum
		case op.sym == '*':
			prod := int64(1)
			for a := c.cdr; s.listLoop.Taken(a != nil); a = a.cdr {
				prod *= s.eval(a.car, depth+1)
				if prod > 1<<20 || prod < -(1<<20) {
					prod %= 9973
				}
			}
			return prod
		default: // 'l': sum of evaluated list with guard
			sum := int64(0)
			for a := c.cdr; s.listLoop.Taken(a != nil); a = a.cdr {
				v := s.eval(a.car, depth+1)
				if v > 0 {
					sum += v
				} else {
					sum -= v
				}
			}
			return sum
		}
	}
	return 0
}

// argN returns the nth element of an application form (0 = operator).
func argN(c *lispCell, n int) *lispCell {
	for i := 0; i < n && c != nil; i++ {
		c = c.cdr
	}
	if c == nil {
		return nil
	}
	return c.car
}
