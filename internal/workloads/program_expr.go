package workloads

// runExpr is an instrumented compiler front end in miniature: it
// tokenizes, parses (recursive descent with precedence climbing) and
// evaluates randomly generated arithmetic/comparison expressions over a
// small variable environment. Token-dispatch and precedence branches give
// the highly correlated if-then-else structure typical of gcc-style code.

type exprToken struct {
	kind byte // 'n' number, 'v' variable, or the operator/paren character
	val  int64
	name byte
}

type exprState struct {
	t    *Tracer
	toks []exprToken
	pos  int
	vars [8]int64

	// branch sites
	lexLoop, lexDigit, lexAlpha, lexSpace Site
	atEnd, isNum, isVar, isParen, isNeg   Site
	precLoop, precMul, precCmp            Site
	divZero, cmpTrue                      Site
}

func runExpr(t *Tracer, seed uint64, _ int) {
	rng := NewProgramRNG(seed)
	s := &exprState{t: t}
	s.lexLoop = t.Site("expr.lex.loop", true)
	s.lexDigit = t.Site("expr.lex.digit", false)
	s.lexAlpha = t.Site("expr.lex.alpha", false)
	s.lexSpace = t.Site("expr.lex.space", false)
	s.atEnd = t.Site("expr.parse.atEnd", false)
	s.isNum = t.Site("expr.parse.isNum", false)
	s.isVar = t.Site("expr.parse.isVar", false)
	s.isParen = t.Site("expr.parse.isParen", false)
	s.isNeg = t.Site("expr.parse.isNeg", false)
	s.precLoop = t.Site("expr.parse.precLoop", true)
	s.precMul = t.Site("expr.parse.precMul", false)
	s.precCmp = t.Site("expr.parse.precCmp", false)
	s.divZero = t.Site("expr.eval.divZero", false)
	s.cmpTrue = t.Site("expr.eval.cmpTrue", false)

	for round := 0; round < 256 && !t.Full(); round++ {
		src := genExpr(rng, 0)
		s.lex(src)
		s.pos = 0
		for i := range s.vars {
			s.vars[i] = int64(rng.Intn(100) - 50)
		}
		s.parseExpr(0)
	}
}

// genExpr emits a random expression string with nested parens.
func genExpr(rng *ProgramRNG, depth int) []byte {
	var out []byte
	var term func(d int)
	term = func(d int) {
		switch {
		case d < 3 && rng.Bool(0.3):
			out = append(out, '(')
			term(d + 1)
			ops := []byte{'+', '-', '*', '/', '<', '>'}
			out = append(out, ops[rng.Intn(len(ops))])
			term(d + 1)
			out = append(out, ')')
		case rng.Bool(0.5):
			out = append(out, byte('a'+rng.Intn(8)))
		default:
			n := rng.Intn(1000)
			if n == 0 {
				n = 7
			}
			for _, c := range []byte{byte('0' + n/100), byte('0' + n/10%10), byte('0' + n%10)} {
				out = append(out, c)
			}
		}
	}
	term(depth)
	n := 2 + rng.Intn(5)
	for i := 0; i < n; i++ {
		ops := []byte{'+', '-', '*', '/', '<', '>'}
		out = append(out, ' ', ops[rng.Intn(len(ops))], ' ')
		term(depth)
	}
	return out
}

func (s *exprState) lex(src []byte) {
	s.toks = s.toks[:0]
	i := 0
	for s.lexLoop.Taken(i < len(src)) {
		c := src[i]
		if s.lexSpace.Taken(c == ' ') {
			i++
			continue
		}
		if s.lexDigit.Taken(c >= '0' && c <= '9') {
			v := int64(0)
			for i < len(src) && src[i] >= '0' && src[i] <= '9' {
				v = v*10 + int64(src[i]-'0')
				i++
			}
			s.toks = append(s.toks, exprToken{kind: 'n', val: v})
			continue
		}
		if s.lexAlpha.Taken(c >= 'a' && c <= 'h') {
			s.toks = append(s.toks, exprToken{kind: 'v', name: c})
			i++
			continue
		}
		s.toks = append(s.toks, exprToken{kind: c})
		i++
	}
}

func (s *exprState) peek() byte {
	if s.pos >= len(s.toks) {
		return 0
	}
	return s.toks[s.pos].kind
}

// prec returns operator binding power; 0 means not an operator.
func prec(op byte) int {
	switch op {
	case '<', '>':
		return 1
	case '+', '-':
		return 2
	case '*', '/':
		return 3
	}
	return 0
}

// parseExpr is precedence-climbing parse+eval fused, as a one-pass
// interpreter would do it.
func (s *exprState) parseExpr(minPrec int) int64 {
	lhs := s.parsePrimary()
	for {
		op := s.peek()
		p := prec(op)
		if !s.precLoop.Taken(p != 0 && p >= minPrec) {
			return lhs
		}
		s.pos++
		rhs := s.parseExpr(p + 1)
		if s.precMul.Taken(op == '*' || op == '/') {
			if op == '*' {
				lhs *= rhs
			} else if s.divZero.Taken(rhs == 0) {
				lhs = 0
			} else {
				lhs /= rhs
			}
		} else if s.precCmp.Taken(op == '<' || op == '>') {
			var res bool
			if op == '<' {
				res = lhs < rhs
			} else {
				res = lhs > rhs
			}
			if s.cmpTrue.Taken(res) {
				lhs = 1
			} else {
				lhs = 0
			}
		} else if op == '+' {
			lhs += rhs
		} else {
			lhs -= rhs
		}
	}
}

func (s *exprState) parsePrimary() int64 {
	if s.atEnd.Taken(s.pos >= len(s.toks)) {
		return 0
	}
	tok := s.toks[s.pos]
	if s.isNum.Taken(tok.kind == 'n') {
		s.pos++
		return tok.val
	}
	if s.isVar.Taken(tok.kind == 'v') {
		s.pos++
		return s.vars[tok.name-'a']
	}
	if s.isParen.Taken(tok.kind == '(') {
		s.pos++
		v := s.parseExpr(1)
		if s.pos < len(s.toks) && s.toks[s.pos].kind == ')' {
			s.pos++
		}
		return v
	}
	if s.isNeg.Taken(tok.kind == '-') {
		s.pos++
		return -s.parsePrimary()
	}
	s.pos++
	return 0
}
