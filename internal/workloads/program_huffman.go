package workloads

// runHuffman is an instrumented Huffman coder: it builds a frequency-
// sorted code tree over generated text (heap operations, tree walks) and
// then encodes and decodes the text bit by bit. Tree-descent branches
// follow the source's symbol distribution — biased but data-dependent —
// while the heap maintenance branches mirror sortbench's comparisons.
func runHuffman(t *Tracer, seed uint64, _ int) {
	rng := NewProgramRNG(seed)

	heapLoop := t.Site("huff.heap.loop", true)
	heapLess := t.Site("huff.heap.less", false)
	buildLoop := t.Site("huff.build.loop", true)
	walkLeft := t.Site("huff.walk.left", false)
	walkLeaf := t.Site("huff.walk.leaf", false)
	encLoop := t.Site("huff.enc.loop", true)
	decLoop := t.Site("huff.dec.loop", true)
	decBit := t.Site("huff.dec.bit", false)

	const nsym = 24
	type node struct {
		freq        int
		sym         int
		left, right int // indices; -1 for leaves
	}

	for round := 0; round < 64 && !t.Full(); round++ {
		// Skewed symbol frequencies (Zipf-ish), plus noise.
		text := make([]int, 2048)
		for i := range text {
			s := 0
			for s < nsym-1 && rng.Bool(0.6) {
				s++
			}
			text[i] = s
		}
		freq := make([]int, nsym)
		for _, s := range text {
			freq[s]++
		}

		// Build the tree with a hand-rolled min-heap of node indices.
		nodes := make([]node, 0, 2*nsym)
		heap := make([]int, 0, nsym)
		siftUp := func(i int) {
			for i > 0 {
				parent := (i - 1) / 2
				if !heapLess.Taken(nodes[heap[i]].freq < nodes[heap[parent]].freq) {
					return
				}
				heap[i], heap[parent] = heap[parent], heap[i]
				i = parent
			}
		}
		siftDown := func(i int) {
			for {
				c := 2*i + 1
				if !heapLoop.Taken(c < len(heap)) {
					return
				}
				if c+1 < len(heap) && nodes[heap[c+1]].freq < nodes[heap[c]].freq {
					c++
				}
				if nodes[heap[c]].freq >= nodes[heap[i]].freq {
					return
				}
				heap[i], heap[c] = heap[c], heap[i]
				i = c
			}
		}
		for s := 0; s < nsym; s++ {
			nodes = append(nodes, node{freq: freq[s] + 1, sym: s, left: -1, right: -1})
			heap = append(heap, s)
			siftUp(len(heap) - 1)
		}
		for buildLoop.Taken(len(heap) > 1) {
			a := heap[0]
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
			siftDown(0)
			b := heap[0]
			nodes = append(nodes, node{freq: nodes[a].freq + nodes[b].freq, left: a, right: b})
			heap[0] = len(nodes) - 1
			siftDown(0)
		}
		root := heap[0]

		// Derive codes by walking the tree.
		codes := make([][]byte, nsym)
		var walk func(n int, prefix []byte)
		walk = func(n int, prefix []byte) {
			if walkLeaf.Taken(nodes[n].left < 0) {
				codes[nodes[n].sym] = append([]byte(nil), prefix...)
				return
			}
			if walkLeft.Taken(len(prefix)%2 == 0) {
				walk(nodes[n].left, append(prefix, 0))
				walk(nodes[n].right, append(prefix, 1))
			} else {
				walk(nodes[n].right, append(prefix, 1))
				walk(nodes[n].left, append(prefix, 0))
			}
		}
		walk(root, nil)

		// Encode, then decode and spot-check.
		var bits []byte
		for i := 0; encLoop.Taken(i < len(text)); i++ {
			bits = append(bits, codes[text[i]]...)
			if t.Full() {
				return
			}
		}
		pos, decoded := 0, 0
		for decLoop.Taken(pos < len(bits) && decoded < len(text)) {
			n := root
			for nodes[n].left >= 0 && pos < len(bits) {
				if decBit.Taken(bits[pos] == 1) {
					n = nodes[n].right
				} else {
					n = nodes[n].left
				}
				pos++
			}
			decoded++
			if t.Full() {
				return
			}
		}
	}
}
