package workloads

// Instrumented Morris-Pratt and Knuth-Morris-Pratt string matchers.
//
// These two programs are the analytically tractable end of the workload
// suite: for structured pattern/text families the comparison branch's
// outcome stream has a closed form, and so do the exact misprediction
// counts of small predictors running over it (TestKMPAnalytic pins
// them). The matcher is written in the single-comparison-per-step form
//
//	if text[i] == pattern[j] { advance } else { shift }
//
// so each character comparison is exactly one traced branch — the
// property the closed forms are stated over. MP shifts through the
// plain border (failure) table; KMP uses the strong failure table,
// which skips borders whose next character would repeat the mismatch.
// The difference is observable in the comparison trace itself: on
// a^(m-1)b patterns the two are byte-identical, while on a^m patterns
// KMP collapses MP's length-m mismatch cascades into a single miss.

import "bimode/internal/trace"

// borders returns the MP failure table over pattern p: fail[j] is the
// length of the longest proper border of p[:j], defined for j = 1..m so
// fail[m] restarts matching after a reported occurrence.
func borders(p []byte) []int {
	m := len(p)
	fail := make([]int, m+1)
	k := 0
	for j := 1; j < m; j++ {
		for k > 0 && p[j] != p[k] {
			k = fail[k]
		}
		if p[j] == p[k] {
			k++
		}
		fail[j+1] = k
	}
	return fail
}

// strongBorders returns the KMP strong failure table: sf[j] is the
// fallback position after a mismatch at j, skipping any border whose
// next character equals p[j] (it would mismatch again for sure); -1
// means no viable border remains and the text position advances.
func strongBorders(p []byte, fail []int) []int {
	m := len(p)
	sf := make([]int, m)
	sf[0] = -1
	for j := 1; j < m; j++ {
		if p[j] == p[fail[j]] {
			sf[j] = sf[fail[j]]
		} else {
			sf[j] = fail[j]
		}
	}
	return sf
}

// runMatch runs one search of pattern p over text, emitting every
// character comparison through cmp. strong selects KMP shifting (MP
// otherwise). Returns the number of occurrences found. Occurrence
// bookkeeping is deliberately branch-free so the comparison site is
// the trace's only signal.
func runMatch(cmp Site, p, text []byte, strong bool) int {
	m := len(p)
	if m == 0 || len(text) == 0 {
		return 0
	}
	fail := borders(p)
	var sf []int
	if strong {
		sf = strongBorders(p, fail)
	}
	occs, j := 0, 0
	for i := 0; i < len(text); {
		if cmp.Taken(text[i] == p[j]) {
			i++
			j++
			if j == m {
				occs++
				j = fail[m]
			}
		} else if j == 0 {
			i++
		} else if strong {
			if j = sf[j]; j < 0 {
				j = 0
				i++
			}
		} else {
			j = fail[j]
		}
	}
	return occs
}

// matcherTrace builds the comparison-branch trace of one search: a
// single static site, one record per character comparison.
func matcherTrace(name string, p, text []byte, strong bool) *trace.Memory {
	t := newTracer(2*len(text) + len(p) + 1)
	cmp := t.Site(name+".cmp", false)
	runMatch(cmp, p, text, strong)
	return trace.NewMemory(name, len(t.pcs), t.recs)
}

// MPTrace returns the comparison-branch trace of the Morris-Pratt
// matcher searching pattern in text: the workload TestKMPAnalytic pins
// against closed-form misprediction counts.
func MPTrace(pattern, text []byte) *trace.Memory {
	return matcherTrace("mp", pattern, text, false)
}

// KMPTrace is MPTrace with strong (KMP) shifting.
func KMPTrace(pattern, text []byte) *trace.Memory {
	return matcherTrace("kmp", pattern, text, true)
}

// MPOccurrences counts pattern occurrences with the MP matcher without
// tracing — the cross-check that instrumentation never changes results.
func MPOccurrences(pattern, text []byte) int {
	t := newTracer(2*len(text) + len(pattern) + 1)
	return runMatch(t.Site("occ.cmp", false), pattern, text, false)
}

// runMPMatch and runKMPMatch are the registered workload programs: the
// instrumented matchers over generated text with planted occurrences,
// pattern families mixing the analytic shapes (runs, run-breakers) with
// random strings.
func runMPMatch(t *Tracer, seed uint64, round int) { runMatchProgram(t, seed, round, false, "mp") }

func runKMPMatch(t *Tracer, seed uint64, round int) { runMatchProgram(t, seed, round, true, "kmp") }

func runMatchProgram(t *Tracer, seed uint64, round int, strong bool, name string) {
	rng := NewProgramRNG(seed)
	cmp := t.Site(name+".cmp", false)
	searchLoop := t.Site(name+".search.loop", true)
	hit := t.Site(name+".hit", false)
	alphabet := []byte("abcd")

	for searches := 0; searchLoop.Taken(searches < 64 && !t.Full()); searches++ {
		// Pattern: runs (a^m), broken runs (a^(m-1)b) and random
		// strings, the mix covering both analytic families and
		// general text.
		m := 3 + rng.Intn(6)
		p := make([]byte, 0, m)
		switch rng.Intn(3) {
		case 0:
			for k := 0; k < m; k++ {
				p = append(p, 'a')
			}
		case 1:
			for k := 0; k < m-1; k++ {
				p = append(p, 'a')
			}
			p = append(p, 'b')
		default:
			for k := 0; k < m; k++ {
				p = append(p, alphabet[rng.Intn(len(alphabet))])
			}
		}
		// Text: random with planted pattern copies so hits occur.
		text := make([]byte, 0, 512)
		for len(text) < 512 {
			if rng.Bool(0.1) {
				text = append(text, p...)
			} else {
				text = append(text, alphabet[rng.Intn(len(alphabet))])
			}
		}
		occs := runMatch(cmp, p, text, strong)
		hit.Taken(occs > 0)
	}
}
