package workloads

// runSort is an instrumented sorting and searching kernel: quicksort with
// an insertion-sort cutoff, heapsort, and binary search over the sorted
// result. Comparison branches on random data are the canonical weakly
// biased (hard) branches; the loop and cutoff branches are strongly
// biased, giving a natural mixed stream.

type sortState struct {
	t *Tracer

	qsSmall, qsLess, qsSwap       Site
	insLoop, insShift             Site
	heapLoop, heapChild, heapLess Site
	bsLoop, bsLess, bsFound       Site
	outerLoop                     Site
}

func runSort(t *Tracer, seed uint64, _ int) {
	rng := NewProgramRNG(seed)
	s := &sortState{t: t}
	s.qsSmall = t.Site("sort.qs.small", false)
	s.qsLess = t.Site("sort.qs.less", false)
	s.qsSwap = t.Site("sort.qs.swap", false)
	s.insLoop = t.Site("sort.ins.loop", true)
	s.insShift = t.Site("sort.ins.shift", false)
	s.heapLoop = t.Site("sort.heap.loop", true)
	s.heapChild = t.Site("sort.heap.child", false)
	s.heapLess = t.Site("sort.heap.less", false)
	s.bsLoop = t.Site("sort.bs.loop", true)
	s.bsLess = t.Site("sort.bs.less", false)
	s.bsFound = t.Site("sort.bs.found", false)
	s.outerLoop = t.Site("sort.outer", true)

	for round := 0; s.outerLoop.Taken(round < 64) && !t.Full(); round++ {
		n := 256 + rng.Intn(256)
		a := make([]int32, n)
		for i := range a {
			a[i] = int32(rng.Intn(1 << 16))
		}
		b := make([]int32, n)
		copy(b, a)

		s.quicksort(a, 0, len(a)-1)
		s.heapsort(b)

		for q := 0; q < 64; q++ {
			s.binarySearch(a, int32(rng.Intn(1<<16)))
		}
	}
}

func (s *sortState) quicksort(a []int32, lo, hi int) {
	for lo < hi {
		if s.qsSmall.Taken(hi-lo < 12) {
			s.insertion(a, lo, hi)
			return
		}
		// Median-of-three pivot.
		mid := (lo + hi) / 2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		pivot := a[mid]
		i, j := lo, hi
		for i <= j {
			for s.qsLess.Taken(a[i] < pivot) {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if s.qsSwap.Taken(i <= j) {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		// Recurse into the smaller side, loop on the larger.
		if j-lo < hi-i {
			s.quicksort(a, lo, j)
			lo = i
		} else {
			s.quicksort(a, i, hi)
			hi = j
		}
	}
}

func (s *sortState) insertion(a []int32, lo, hi int) {
	for i := lo + 1; s.insLoop.Taken(i <= hi); i++ {
		v := a[i]
		j := i - 1
		for j >= lo && s.insShift.Taken(a[j] > v) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func (s *sortState) heapsort(a []int32) {
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		s.sift(a, i, n)
	}
	for end := n - 1; s.heapLoop.Taken(end > 0); end-- {
		a[0], a[end] = a[end], a[0]
		s.sift(a, 0, end)
	}
}

func (s *sortState) sift(a []int32, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if s.heapChild.Taken(child+1 < n && a[child+1] > a[child]) {
			child++
		}
		if s.heapLess.Taken(a[root] >= a[child]) {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}

func (s *sortState) binarySearch(a []int32, key int32) int {
	lo, hi := 0, len(a)
	for s.bsLoop.Taken(lo < hi) {
		mid := (lo + hi) / 2
		if s.bsFound.Taken(a[mid] == key) {
			return mid
		}
		if s.bsLess.Taken(a[mid] < key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return -1
}
