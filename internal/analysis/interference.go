package analysis

import (
	"fmt"

	"bimode/internal/predictor"
	"bimode/internal/trace"
)

// InterferenceBreakdown decomposes a predictor's mispredictions in the
// style of Michaud, Seznec and Uhlig's conflict/capacity analysis (the
// hashing paper the bi-mode paper compares against):
//
//	Compulsory - the branch touches this counter for the first time
//	             (cold counter: nothing could have been learned yet).
//	Conflict   - the counter was last written by a DIFFERENT static
//	             branch (interference damage, destructive aliasing).
//	Intrinsic  - the branch itself trained the counter last and still
//	             mispredicted (the stream's own unpredictability).
//
// The three counts partition Mispredicts exactly.
type InterferenceBreakdown struct {
	Predictor   string
	Workload    string
	Branches    int
	Mispredicts int
	Compulsory  int
	Conflict    int
	Intrinsic   int
	// ConflictAccesses counts ALL accesses (not just mispredictions)
	// whose counter was last written by another branch — the raw
	// interference exposure.
	ConflictAccesses int
}

// Rates returns the three components as fractions of all branches.
func (b InterferenceBreakdown) Rates() (compulsory, conflict, intrinsic float64) {
	if b.Branches == 0 {
		return 0, 0, 0
	}
	n := float64(b.Branches)
	return float64(b.Compulsory) / n, float64(b.Conflict) / n, float64(b.Intrinsic) / n
}

// String renders the breakdown in one line.
func (b InterferenceBreakdown) String() string {
	c, f, i := b.Rates()
	return fmt.Sprintf("%s on %s: %.2f%% mispredict = %.2f%% compulsory + %.2f%% conflict + %.2f%% intrinsic",
		b.Predictor, b.Workload,
		100*float64(b.Mispredicts)/float64(max(b.Branches, 1)), 100*c, 100*f, 100*i)
}

// MeasureInterference runs the decomposition for a predictor implementing
// predictor.Indexed.
func MeasureInterference(p predictor.Predictor, src trace.Source) (InterferenceBreakdown, error) {
	ix, ok := p.(predictor.Indexed)
	if !ok {
		return InterferenceBreakdown{}, fmt.Errorf("analysis: predictor %s does not expose counter indices", p.Name())
	}
	out := InterferenceBreakdown{Predictor: p.Name(), Workload: src.Name()}
	lastWriter := make([]int64, ix.NumCounters())
	for i := range lastWriter {
		lastWriter[i] = -1
	}
	st := src.Stream()
	for {
		rec, ok := st.Next()
		if !ok {
			break
		}
		cid := ix.CounterID(rec.PC)
		writer := lastWriter[cid]
		conflictAccess := writer >= 0 && writer != int64(rec.Static)
		if conflictAccess {
			out.ConflictAccesses++
		}
		miss := p.Predict(rec.PC) != rec.Taken
		if miss {
			out.Mispredicts++
			switch {
			case writer < 0:
				out.Compulsory++
			case conflictAccess:
				out.Conflict++
			default:
				out.Intrinsic++
			}
		}
		p.Update(rec.PC, rec.Taken)
		lastWriter[cid] = int64(rec.Static)
		out.Branches++
	}
	return out, nil
}
