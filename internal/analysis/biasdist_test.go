package analysis

import (
	"math"
	"strings"
	"testing"

	"bimode/internal/synth"
	"bimode/internal/trace"
)

func TestBiasDistributionOnCraftedStream(t *testing.T) {
	// Two fully biased branches (75% of dynamics) + one 50/50 branch.
	recs := make([]trace.Record, 0, 400)
	for i := 0; i < 100; i++ {
		recs = append(recs, trace.Record{PC: 0, Static: 0, Taken: true})
		recs = append(recs, trace.Record{PC: 4, Static: 1, Taken: false})
		recs = append(recs, trace.Record{PC: 8, Static: 1, Taken: false})
		recs = append(recs, trace.Record{PC: 12, Static: 2, Taken: i%2 == 0})
	}
	d := MeasureBiasDistribution(trace.NewMemory("crafted", 3, recs))
	if math.Abs(d.StronglyBiasedShare-0.75) > 1e-9 {
		t.Fatalf("strongly biased share = %v, want 0.75", d.StronglyBiasedShare)
	}
	sum := 0.0
	for _, b := range d.Buckets {
		sum += b
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("buckets sum to %v", sum)
	}
	// The 50/50 branch must land in the lowest-bias bucket.
	if math.Abs(d.Buckets[0]-0.25) > 1e-9 {
		t.Fatalf("weak bucket = %v, want 0.25", d.Buckets[0])
	}
	if !strings.Contains(d.String(), "biased") {
		t.Fatalf("String incomplete")
	}
}

func TestBiasDistributionEmpty(t *testing.T) {
	d := MeasureBiasDistribution(trace.NewMemory("empty", 1, nil))
	if d.StronglyBiasedShare != 0 {
		t.Fatalf("empty stream must have zero shares")
	}
}

// TestCalibrationMatchesChang94: the paper cites Chang et al.'s finding
// that about half of dynamic branches come from statics biased >90% one
// way. The calibrated benchmark suite should land in that neighborhood
// on average (go deliberately lower, vortex higher).
func TestCalibrationMatchesChang94(t *testing.T) {
	if testing.Short() {
		t.Skip("workload scan")
	}
	total := 0.0
	n := 0
	for _, name := range []string{"gcc", "go", "vortex", "perl", "groff", "sdet"} {
		p, ok := synth.ProfileByName(name)
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		d := MeasureBiasDistribution(synth.MustWorkload(p.WithDynamic(150000)))
		total += d.StronglyBiasedShare
		n++
		if name == "go" && d.StronglyBiasedShare > 0.6 {
			t.Errorf("go should be WB-heavy, strongly biased share = %v", d.StronglyBiasedShare)
		}
	}
	avg := total / float64(n)
	if avg < 0.35 || avg > 0.8 {
		t.Errorf("suite-average strongly-biased share = %v, want roughly half ([Chang94])", avg)
	}
}
