package analysis

import (
	"strings"
	"testing"

	"bimode/internal/baselines"
	"bimode/internal/core"
)

func TestInterferencePartitionsMispredictions(t *testing.T) {
	src := aliasedSource(400)
	b, err := MeasureInterference(baselines.NewGshare(2, 2), src)
	if err != nil {
		t.Fatal(err)
	}
	if b.Compulsory+b.Conflict+b.Intrinsic != b.Mispredicts {
		t.Fatalf("components %d+%d+%d do not partition %d",
			b.Compulsory, b.Conflict, b.Intrinsic, b.Mispredicts)
	}
	if b.Branches != 1200 {
		t.Fatalf("branches = %d", b.Branches)
	}
	if b.ConflictAccesses == 0 {
		t.Fatalf("the crafted stream must show conflict accesses")
	}
	c, f, i := b.Rates()
	if sum := c + f + i; sum < 0 || sum > 1 {
		t.Fatalf("rates out of range: %v", sum)
	}
	if !strings.Contains(b.String(), "conflict") {
		t.Fatalf("String incomplete")
	}
}

func TestInterferenceRequiresIndexed(t *testing.T) {
	_, err := MeasureInterference(baselines.NewStatic(baselines.AlwaysTaken), aliasedSource(5))
	if err == nil {
		t.Fatalf("non-Indexed predictor must be rejected")
	}
}

func TestBiModeReducesConflictComponent(t *testing.T) {
	// The core claim seen through this lens: bi-mode converts conflict
	// mispredictions into (fewer) intrinsic ones on the aliasing-heavy
	// crafted stream.
	src := aliasedSource(600)
	gs, err := MeasureInterference(baselines.NewGshare(2, 2), src)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := MeasureInterference(core.MustNew(core.Config{ChoiceBits: 8, BankBits: 2, HistoryBits: 2}), src)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Conflict >= gs.Conflict {
		t.Fatalf("bi-mode conflict misses %d should be below gshare's %d", bm.Conflict, gs.Conflict)
	}
}

func TestInterferenceNoConflictsWhenTableHuge(t *testing.T) {
	// With a table far larger than the branch/pattern working set, every
	// counter is private: no conflict accesses at all.
	src := aliasedSource(100)
	b, err := MeasureInterference(baselines.NewSmith(16), src)
	if err != nil {
		t.Fatal(err)
	}
	if b.Conflict != 0 || b.ConflictAccesses != 0 {
		t.Fatalf("a huge smith table must be conflict-free, got %d/%d", b.Conflict, b.ConflictAccesses)
	}
}

func TestInterferenceEmptyStream(t *testing.T) {
	var z InterferenceBreakdown
	c, f, i := z.Rates()
	if c != 0 || f != 0 || i != 0 {
		t.Fatalf("empty breakdown rates must be zero")
	}
}
