// Package analysis implements the measurement machinery of the paper's
// Section 4: substream bias classification, per-counter bias breakdowns
// (Figures 5 and 6), bias-class change counting (Table 4), the worked
// normalized-count example (Table 3), and the two-pass attribution of
// mispredictions to bias classes (Figures 7 and 8).
//
// The central object is the substream s(i,c): the sequence of outcomes
// that static branch i sends to second-level counter c. Each substream is
// assigned one of three bias classes (paper Section 4.1):
//
//	ST  - strongly taken:     taken >= 90% of the time
//	SNT - strongly not-taken: not-taken >= 90% of the time
//	WB  - weakly biased:      everything else
package analysis

// Class is a substream bias class.
type Class uint8

// The three bias classes.
const (
	// WB is the weakly biased class.
	WB Class = iota
	// ST is the strongly taken class.
	ST
	// SNT is the strongly not-taken class.
	SNT
)

// String returns the paper's abbreviation for the class.
func (c Class) String() string {
	switch c {
	case ST:
		return "ST"
	case SNT:
		return "SNT"
	default:
		return "WB"
	}
}

// StrongThreshold is the paper's 90% bias-class boundary.
const StrongThreshold = 0.9

// Classify assigns a bias class to a substream with the given outcome
// counts.
func Classify(taken, total int) Class {
	if total == 0 {
		return WB
	}
	rate := float64(taken) / float64(total)
	switch {
	case rate >= StrongThreshold:
		return ST
	case rate <= 1-StrongThreshold:
		return SNT
	default:
		return WB
	}
}

// Substream accumulates one s(i,c).
type Substream struct {
	// Static is the static branch identifier i.
	Static uint32
	// Counter is the second-level counter identifier c.
	Counter int
	// Len is |s(i,c)|, the number of outcomes in the substream.
	Len int
	// Taken is the number of taken outcomes.
	Taken int
}

// Class returns the substream's bias class.
func (s Substream) Class() Class { return Classify(s.Taken, s.Len) }

// CounterBias is the per-counter aggregation behind Figures 5 and 6: the
// dynamic counts of each bias class arriving at one counter, split into
// dominant and non-dominant strongly biased classes.
type CounterBias struct {
	// Counter is the counter identifier.
	Counter int
	// Total is the number of dynamic accesses to the counter.
	Total int
	// STCount, SNTCount and WBCount are dynamic accesses from substreams
	// of each class.
	STCount, SNTCount, WBCount int
}

// Dominant returns the dynamic count of the more frequent strongly biased
// class at this counter (paper Section 4.1).
func (c CounterBias) Dominant() int {
	if c.STCount >= c.SNTCount {
		return c.STCount
	}
	return c.SNTCount
}

// NonDominant returns the dynamic count of the less frequent strongly
// biased class.
func (c CounterBias) NonDominant() int {
	if c.STCount >= c.SNTCount {
		return c.SNTCount
	}
	return c.STCount
}

// DominantClass returns which strongly biased class dominates.
func (c CounterBias) DominantClass() Class {
	if c.STCount >= c.SNTCount {
		return ST
	}
	return SNT
}

// Fractions returns the dominant, non-dominant and WB shares of the
// counter's accesses (the paper's "normalized dynamic counts").
func (c CounterBias) Fractions() (dominant, nonDominant, wb float64) {
	if c.Total == 0 {
		return 0, 0, 0
	}
	t := float64(c.Total)
	return float64(c.Dominant()) / t, float64(c.NonDominant()) / t, float64(c.WBCount) / t
}
