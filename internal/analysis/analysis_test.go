package analysis

import (
	"testing"
	"testing/quick"

	"bimode/internal/baselines"
	"bimode/internal/core"
	"bimode/internal/predictor"
	"bimode/internal/trace"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		taken, total int
		want         Class
	}{
		{90, 100, ST},
		{89, 100, WB},
		{10, 100, SNT},
		{11, 100, WB},
		{0, 0, WB},
		{5, 5, ST},
		{0, 5, SNT},
	}
	for _, c := range cases {
		if got := Classify(c.taken, c.total); got != c.want {
			t.Errorf("Classify(%d,%d) = %s, want %s", c.taken, c.total, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	if ST.String() != "ST" || SNT.String() != "SNT" || WB.String() != "WB" {
		t.Fatalf("class names wrong")
	}
}

func TestCounterBias(t *testing.T) {
	cb := CounterBias{Counter: 3, Total: 100, STCount: 60, SNTCount: 30, WBCount: 10}
	if cb.Dominant() != 60 || cb.NonDominant() != 30 || cb.DominantClass() != ST {
		t.Fatalf("dominance wrong: %+v", cb)
	}
	d, nd, wb := cb.Fractions()
	if d != 0.6 || nd != 0.3 || wb != 0.1 {
		t.Fatalf("fractions wrong: %v %v %v", d, nd, wb)
	}
	var zero CounterBias
	if d, nd, wb := zero.Fractions(); d != 0 || nd != 0 || wb != 0 {
		t.Fatalf("zero counter fractions must be 0")
	}
}

// aliasedSource builds a stream with one always-taken branch, one
// always-not-taken branch, and one hash-random (weakly biased even given
// history) branch. Studied with a tiny 4-counter gshare, the three
// branches spread across every counter and collide constantly, so every
// bias class and plenty of interference appear.
func aliasedSource(n int) trace.Source {
	recs := make([]trace.Record, 0, 3*n)
	for i := 0; i < n; i++ {
		recs = append(recs, trace.Record{PC: 0x0, Static: 0, Taken: true})
		recs = append(recs, trace.Record{PC: 0x4, Static: 1, Taken: false})
		noise := uint32(i)*2654435761>>13&1 != 0
		recs = append(recs, trace.Record{PC: 0x8, Static: 2, Taken: noise})
	}
	return trace.NewMemory("aliased", 3, recs)
}

// studyTable is the gshare configuration used by the crafted-stream
// studies: 4 counters, 2 history bits.
func studyGshare() predictor.Predictor { return baselines.NewGshare(2, 2) }

func TestRunStudyRequiresIndexed(t *testing.T) {
	_, err := RunStudy(func() predictor.Predictor {
		return baselines.NewStatic(baselines.AlwaysTaken)
	}, aliasedSource(10))
	if err == nil {
		t.Fatalf("non-Indexed predictor must be rejected")
	}
}

func TestRunStudySubstreams(t *testing.T) {
	st, err := RunStudy(studyGshare, aliasedSource(500))
	if err != nil {
		t.Fatal(err)
	}
	if st.Branches != 1500 {
		t.Fatalf("branches = %d", st.Branches)
	}
	// Substream counts must partition the stream.
	total := 0
	classSeen := map[Class]bool{}
	for _, sub := range st.Substreams {
		total += sub.Len
		classSeen[sub.Class()] = true
	}
	if total != 1500 {
		t.Fatalf("substreams cover %d branches, want 1500", total)
	}
	for _, c := range []Class{ST, SNT, WB} {
		if !classSeen[c] {
			t.Errorf("class %s missing from substreams", c)
		}
	}
	// Counter aggregation must cover the same accesses.
	ctot := 0
	for _, cb := range st.Counters {
		ctot += cb.Total
	}
	if ctot != 1500 {
		t.Fatalf("counters cover %d accesses", ctot)
	}
	// Class misprediction attribution must sum to the total.
	if st.MissByClass[WB]+st.MissByClass[ST]+st.MissByClass[SNT] != st.Mispredicts {
		t.Fatalf("class attribution does not sum: %v vs %d", st.MissByClass, st.Mispredicts)
	}
	if st.ClassRate(WB)+st.ClassRate(ST)+st.ClassRate(SNT)-st.MispredictRate() > 1e-12 {
		t.Fatalf("class rates must sum to the overall rate")
	}
}

func TestStudyMatchesPlainSimulation(t *testing.T) {
	// The study's pass-2 misprediction count must equal an ordinary run.
	src := aliasedSource(300)
	st, err := RunStudy(studyGshare, src)
	if err != nil {
		t.Fatal(err)
	}
	g := studyGshare()
	miss := 0
	stream := src.Stream()
	for {
		r, ok := stream.Next()
		if !ok {
			break
		}
		if g.Predict(r.PC) != r.Taken {
			miss++
		}
		g.Update(r.PC, r.Taken)
	}
	if st.Mispredicts != miss {
		t.Fatalf("study mispredicts %d, plain run %d", st.Mispredicts, miss)
	}
}

func TestAreaSharesSumToOne(t *testing.T) {
	st, err := RunStudy(func() predictor.Predictor { return baselines.NewGshare(6, 6) }, aliasedSource(400))
	if err != nil {
		t.Fatal(err)
	}
	d, nd, wb := st.AreaShares()
	if sum := d + nd + wb; sum < 0.999 || sum > 1.001 {
		t.Fatalf("area shares sum to %v", sum)
	}
}

func TestSortedByWB(t *testing.T) {
	st, err := RunStudy(func() predictor.Predictor { return baselines.NewGshare(6, 6) }, aliasedSource(400))
	if err != nil {
		t.Fatal(err)
	}
	sorted := st.SortedByWB()
	if len(sorted) != len(st.Counters) {
		t.Fatalf("sort must preserve length")
	}
	for i := 1; i < len(sorted); i++ {
		_, _, w0 := sorted[i-1].Fractions()
		_, _, w1 := sorted[i].Fractions()
		if w0 > w1 {
			t.Fatalf("not sorted by WB fraction at %d", i)
		}
	}
}

func TestInterruptionsOnCraftedStream(t *testing.T) {
	// One counter (smith, 1-entry table) receiving substreams of known
	// classes: static 0 always taken (ST, dominant), static 1 always
	// not-taken (SNT, non-dominant). Sequence 0,0,1,0 has: run(0) cut by
	// 1 (dominant interrupted), run(1) cut by 0 (non-dominant
	// interrupted).
	recs := []trace.Record{
		{PC: 0, Static: 0, Taken: true},
		{PC: 4, Static: 0, Taken: true}, // same counter in a 1-entry table
		{PC: 0, Static: 1, Taken: false},
		{PC: 4, Static: 0, Taken: true},
	}
	// Make static 0 dominant by count (3 vs 1).
	src := trace.NewMemory("crafted", 2, recs)
	st, err := RunStudy(func() predictor.Predictor { return baselines.NewSmith(0) }, src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Interruptions[CatDominant] != 1 || st.Interruptions[CatNonDominant] != 1 || st.Interruptions[CatWB] != 0 {
		t.Fatalf("interruptions = %v, want [1 1 0]", st.Interruptions)
	}
}

func TestBiModeDeAliasingVisibleInStudy(t *testing.T) {
	// The paper's Table 4 claim: bi-mode shows fewer interruptions and a
	// larger dominant area than the history-indexed gshare on an
	// aliasing-heavy stream.
	src := aliasedSource(500)
	gs, err := RunStudy(studyGshare, src)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := RunStudy(func() predictor.Predictor {
		return core.MustNew(core.Config{ChoiceBits: 8, BankBits: 2, HistoryBits: 2})
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	gsTotal := gs.Interruptions[0] + gs.Interruptions[1] + gs.Interruptions[2]
	bmTotal := bm.Interruptions[0] + bm.Interruptions[1] + bm.Interruptions[2]
	if bmTotal >= gsTotal {
		t.Fatalf("bi-mode interruptions %d should be below gshare's %d", bmTotal, gsTotal)
	}
	_, gsND, _ := gs.AreaShares()
	_, bmND, _ := bm.AreaShares()
	if bmND >= gsND {
		t.Fatalf("bi-mode non-dominant share %v should be below gshare's %v", bmND, gsND)
	}
}

func TestFindExample(t *testing.T) {
	src := aliasedSource(300)
	st, err := RunStudy(studyGshare, src)
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := FindExample(st, func(s uint32) uint64 { return uint64(s) * 4 })
	if !ok {
		t.Fatalf("example must exist")
	}
	if len(ex.Rows) == 0 {
		t.Fatalf("example must have rows")
	}
	sum := 0.0
	for i, r := range ex.Rows {
		sum += r.Normalized
		if i > 0 && ex.Rows[i-1].Count < r.Count {
			t.Fatalf("rows must be sorted by count descending")
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("normalized counts sum to %v", sum)
	}
	// The chosen counter should exhibit real aliasing: both strong
	// classes present.
	hasST, hasSNT := false, false
	for _, r := range ex.Rows {
		switch r.Class {
		case ST:
			hasST = true
		case SNT:
			hasSNT = true
		}
	}
	if !hasST || !hasSNT {
		t.Fatalf("example counter should mix opposite classes")
	}
}

func TestFindExampleEmpty(t *testing.T) {
	st := &Study{Substreams: map[uint64]*Substream{}}
	if _, ok := FindExample(st, func(uint32) uint64 { return 0 }); ok {
		t.Fatalf("empty study must not produce an example")
	}
}

// TestKeyPacking: the (static, counter) packing must be collision-free
// for realistic ranges.
func TestKeyPacking(t *testing.T) {
	f := func(s1, s2 uint32, c1, c2 uint16) bool {
		if s1 == s2 && c1 == c2 {
			return true
		}
		return key(s1, int(c1)) != key(s2, int(c2)) || (s1 == s2 && c1 == c2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
