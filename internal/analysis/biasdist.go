package analysis

import (
	"fmt"

	"bimode/internal/trace"
)

// BiasDistribution summarizes how a workload's dynamic branches
// distribute over per-static-branch bias levels — the measurement of
// Chang et al. [Chang94] the paper leans on ("about 50% of total dynamic
// branches are attributed to the static branches that are biased in
// either direction for more than 90% of the time"), used here as a
// calibration check on the synthetic workloads.
type BiasDistribution struct {
	Workload string
	// Buckets holds the dynamic branch share whose static branch's
	// overall taken-rate falls in [Bounds[i], Bounds[i+1]).
	Buckets []float64
	// Bounds are the bucket edges over max(rate, 1-rate), i.e. bias
	// level from 0.5 (unbiased) to 1.0 (fully biased).
	Bounds []float64
	// StronglyBiasedShare is the dynamic share from statics biased >= 90%
	// one way (the paper's headline statistic).
	StronglyBiasedShare float64
}

// MeasureBiasDistribution classifies every static branch by its
// whole-run bias and reports the dynamic-weighted distribution.
func MeasureBiasDistribution(src trace.Source) BiasDistribution {
	taken := map[uint32]int{}
	total := map[uint32]int{}
	n := 0
	st := src.Stream()
	for {
		r, ok := st.Next()
		if !ok {
			break
		}
		n++
		total[r.Static]++
		if r.Taken {
			taken[r.Static]++
		}
	}
	bounds := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0000001}
	out := BiasDistribution{
		Workload: src.Name(),
		Bounds:   bounds,
		Buckets:  make([]float64, len(bounds)-1),
	}
	if n == 0 {
		return out
	}
	for s, tot := range total {
		rate := float64(taken[s]) / float64(tot)
		bias := rate
		if bias < 0.5 {
			bias = 1 - bias
		}
		for i := 0; i+1 < len(bounds); i++ {
			if bias >= bounds[i] && bias < bounds[i+1] {
				out.Buckets[i] += float64(tot)
				break
			}
		}
		if bias >= 0.9 {
			out.StronglyBiasedShare += float64(tot)
		}
	}
	for i := range out.Buckets {
		out.Buckets[i] /= float64(n)
	}
	out.StronglyBiasedShare /= float64(n)
	return out
}

// String renders the distribution compactly.
func (b BiasDistribution) String() string {
	s := fmt.Sprintf("%s bias distribution (dynamic share by |bias|):", b.Workload)
	for i := range b.Buckets {
		s += fmt.Sprintf(" [%.2f,%.2f)=%.1f%%", b.Bounds[i], min(b.Bounds[i+1], 1.0), 100*b.Buckets[i])
	}
	s += fmt.Sprintf("; >=90%% biased: %.1f%%", 100*b.StronglyBiasedShare)
	return s
}
