package analysis

import (
	"fmt"
	"sort"

	"bimode/internal/predictor"
	"bimode/internal/trace"
)

// Study is the result of a two-pass bias analysis of one predictor over
// one workload.
//
// Pass 1 simulates the predictor and accumulates every substream s(i,c);
// substreams are then classified over the whole run, as in the paper.
// Pass 2 re-simulates a fresh predictor over the identical stream and,
// now knowing each substream's class, attributes every misprediction to a
// bias class (Figures 7-8) and counts bias-class interruptions at each
// counter (Table 4).
type Study struct {
	// Predictor and Workload identify the run.
	Predictor string
	Workload  string
	// NumCounters is the predictor's second-level counter count.
	NumCounters int
	// Branches and Mispredicts summarize pass 2 (identical to pass 1 by
	// determinism; asserted in tests).
	Branches    int
	Mispredicts int

	// Substreams maps packed (static, counter) keys to accumulated
	// substreams.
	Substreams map[uint64]*Substream
	// Counters aggregates per-counter class counts (only counters that
	// were accessed appear).
	Counters []CounterBias

	// MissByClass counts mispredictions of branches whose substream is in
	// each class; index with Class values.
	MissByClass [3]int

	// Interruptions counts, per category relative to the counter's
	// dominant class, how many times a run of same-class accesses at a
	// counter was cut off by an access of a different class (the paper's
	// Table 4 "numbers of changes between bias classes"). Index 0 counts
	// interruptions of the dominant class, 1 of the non-dominant class,
	// 2 of the WB class.
	Interruptions [3]int
}

// Category indices for Study.Interruptions.
const (
	// CatDominant indexes interruptions of the counter's dominant class.
	CatDominant = 0
	// CatNonDominant indexes interruptions of the non-dominant class.
	CatNonDominant = 1
	// CatWB indexes interruptions of the weakly biased class.
	CatWB = 2
)

// MispredictRate returns the overall misprediction rate.
func (s *Study) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// ClassRate returns the misprediction attributable to class c as a
// fraction of ALL branches, so the three class rates sum to the overall
// misprediction rate (the stacking in Figures 7-8).
func (s *Study) ClassRate(c Class) float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.MissByClass[c]) / float64(s.Branches)
}

func key(static uint32, counter int) uint64 {
	return uint64(static)<<32 | uint64(uint32(counter))
}

// RunStudy performs the two-pass analysis. mk must construct identical
// fresh predictors implementing predictor.Indexed.
func RunStudy(mk func() predictor.Predictor, src trace.Source) (*Study, error) {
	p1 := mk()
	ix1, ok := p1.(predictor.Indexed)
	if !ok {
		return nil, fmt.Errorf("analysis: predictor %s does not expose counter indices", p1.Name())
	}
	st := &Study{
		Predictor:   p1.Name(),
		Workload:    src.Name(),
		NumCounters: ix1.NumCounters(),
		Substreams:  map[uint64]*Substream{},
	}

	// Pass 1: accumulate substreams.
	stream := src.Stream()
	for {
		rec, ok := stream.Next()
		if !ok {
			break
		}
		cid := ix1.CounterID(rec.PC)
		k := key(rec.Static, cid)
		sub := st.Substreams[k]
		if sub == nil {
			sub = &Substream{Static: rec.Static, Counter: cid}
			st.Substreams[k] = sub
		}
		sub.Len++
		if rec.Taken {
			sub.Taken++
		}
		p1.Predict(rec.PC) // keep speculative state protocol honest
		p1.Update(rec.PC, rec.Taken)
	}

	// Aggregate per-counter class counts and determine dominant classes.
	counterAgg := map[int]*CounterBias{}
	for _, sub := range st.Substreams {
		cb := counterAgg[sub.Counter]
		if cb == nil {
			cb = &CounterBias{Counter: sub.Counter}
			counterAgg[sub.Counter] = cb
		}
		cb.Total += sub.Len
		switch sub.Class() {
		case ST:
			cb.STCount += sub.Len
		case SNT:
			cb.SNTCount += sub.Len
		default:
			cb.WBCount += sub.Len
		}
	}
	st.Counters = make([]CounterBias, 0, len(counterAgg))
	for _, cb := range counterAgg {
		st.Counters = append(st.Counters, *cb)
	}
	sort.Slice(st.Counters, func(i, j int) bool { return st.Counters[i].Counter < st.Counters[j].Counter })

	dominantOf := make(map[int]Class, len(counterAgg))
	for c, cb := range counterAgg {
		dominantOf[c] = cb.DominantClass()
	}

	// Pass 2: attribute mispredictions and count interruptions.
	p2 := mk()
	ix2 := p2.(predictor.Indexed) // same concrete type as p1
	lastClass := map[int]Class{}
	hasLast := map[int]bool{}
	stream = src.Stream()
	for {
		rec, ok := stream.Next()
		if !ok {
			break
		}
		cid := ix2.CounterID(rec.PC)
		sub := st.Substreams[key(rec.Static, cid)]
		cls := sub.Class()

		if hasLast[cid] && lastClass[cid] != cls {
			// The previous run of lastClass accesses was interrupted.
			st.Interruptions[categoryOf(lastClass[cid], dominantOf[cid])]++
		}
		lastClass[cid] = cls
		hasLast[cid] = true

		if p2.Predict(rec.PC) != rec.Taken {
			st.Mispredicts++
			st.MissByClass[cls]++
		}
		p2.Update(rec.PC, rec.Taken)
		st.Branches++
	}
	return st, nil
}

// categoryOf maps a substream class to its Table 4 category relative to
// the counter's dominant class.
func categoryOf(c, dominant Class) int {
	switch {
	case c == WB:
		return CatWB
	case c == dominant:
		return CatDominant
	default:
		return CatNonDominant
	}
}

// AreaShares returns the dynamic-weighted shares of the dominant,
// non-dominant and WB regions over all counters — the "area sizes" the
// paper reads off Figures 5 and 6.
func (s *Study) AreaShares() (dominant, nonDominant, wb float64) {
	var d, nd, w, tot int
	for _, cb := range s.Counters {
		d += cb.Dominant()
		nd += cb.NonDominant()
		w += cb.WBCount
		tot += cb.Total
	}
	if tot == 0 {
		return 0, 0, 0
	}
	t := float64(tot)
	return float64(d) / t, float64(nd) / t, float64(w) / t
}

// SortedByWB returns the counters ordered by ascending WB fraction, the
// x-axis ordering of Figures 5 and 6.
func (s *Study) SortedByWB() []CounterBias {
	out := append([]CounterBias(nil), s.Counters...)
	sort.Slice(out, func(i, j int) bool {
		_, _, wi := out[i].Fractions()
		_, _, wj := out[j].Fractions()
		if wi != wj {
			return wi < wj
		}
		return out[i].Counter < out[j].Counter
	})
	return out
}
