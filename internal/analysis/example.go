package analysis

import "sort"

// ExampleRow is one row of the paper's Table 3: one static branch's
// contribution to a particular counter.
type ExampleRow struct {
	// PC is the static branch address.
	PC uint64
	// Static is the static branch identifier.
	Static uint32
	// Count is |s(i,c)|, the substream length.
	Count int
	// Taken is the taken count within the substream.
	Taken int
	// Class is the substream's bias class.
	Class Class
	// Normalized is N(b,c) = |s(b,c)| / sum_i |s(i,c)|.
	Normalized float64
}

// CounterExample reproduces the paper's Table 3 for a real counter: the
// per-branch normalized counts at the most contended counter.
type CounterExample struct {
	// Counter is the chosen counter identifier.
	Counter int
	// Rows lists the contributing static branches, largest first.
	Rows []ExampleRow
	// DominantClass and DominantShare summarize the counter.
	DominantClass Class
	// DominantShare is the normalized count of the dominant class.
	DominantShare float64
	// WBShare is the normalized count of the WB class.
	WBShare float64
}

// FindExample selects the counter that best illustrates destructive
// aliasing — the one with the largest non-dominant dynamic count — and
// assembles its Table 3 rows. pcOf maps static ids to a representative
// PC. Returns ok=false if the study saw no branches.
func FindExample(s *Study, pcOf func(uint32) uint64) (CounterExample, bool) {
	best := -1
	bestND := -1
	for i, cb := range s.Counters {
		if nd := cb.NonDominant(); nd > bestND {
			bestND = nd
			best = i
		}
	}
	if best < 0 {
		return CounterExample{}, false
	}
	cb := s.Counters[best]
	ex := CounterExample{Counter: cb.Counter, DominantClass: cb.DominantClass()}
	total := 0
	for _, sub := range s.Substreams {
		if sub.Counter == cb.Counter {
			total += sub.Len
		}
	}
	for _, sub := range s.Substreams {
		if sub.Counter != cb.Counter {
			continue
		}
		ex.Rows = append(ex.Rows, ExampleRow{
			PC:         pcOf(sub.Static),
			Static:     sub.Static,
			Count:      sub.Len,
			Taken:      sub.Taken,
			Class:      sub.Class(),
			Normalized: float64(sub.Len) / float64(total),
		})
	}
	sort.Slice(ex.Rows, func(i, j int) bool {
		if ex.Rows[i].Count != ex.Rows[j].Count {
			return ex.Rows[i].Count > ex.Rows[j].Count
		}
		return ex.Rows[i].Static < ex.Rows[j].Static
	})
	d, _, w := cb.Fractions()
	ex.DominantShare = d
	ex.WBShare = w
	return ex, true
}
