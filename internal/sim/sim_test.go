package sim

import (
	"math"
	"testing"

	"bimode/internal/baselines"
	"bimode/internal/core"
	"bimode/internal/predictor"
	"bimode/internal/trace"
)

// fixedSource emits a deterministic synthetic stream for tests: one
// always-taken branch and one alternating branch.
func fixedSource(n int) trace.Source {
	recs := make([]trace.Record, 0, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			recs = append(recs, trace.Record{PC: 0x100, Static: 0, Taken: true})
		} else {
			recs = append(recs, trace.Record{PC: 0x200, Static: 1, Taken: i%4 == 1})
		}
	}
	return trace.NewMemory("fixed", 2, recs)
}

func TestRunCountsEverything(t *testing.T) {
	src := fixedSource(1000)
	res := Run(baselines.NewStatic(baselines.AlwaysTaken), src)
	if res.Branches != 1000 {
		t.Fatalf("branches = %d", res.Branches)
	}
	// Static-taken mispredicts exactly the not-taken halves of the
	// alternating branch: 250 of 1000.
	if res.Mispredicts != 250 {
		t.Fatalf("mispredicts = %d, want 250", res.Mispredicts)
	}
	if res.MispredictRate() != 0.25 || res.Accuracy() != 0.75 {
		t.Fatalf("rates wrong: %v %v", res.MispredictRate(), res.Accuracy())
	}
	if res.Workload != "fixed" || res.Predictor != "static-taken" {
		t.Fatalf("labels wrong: %+v", res)
	}
}

func TestResultZeroBranches(t *testing.T) {
	var r Result
	if r.MispredictRate() != 0 || r.Accuracy() != 1 {
		t.Fatalf("zero-branch result must have rate 0")
	}
}

func TestRunAllMatchesSerialAndOrder(t *testing.T) {
	src := trace.Materialize(fixedSource(2000))
	mks := []func() predictor.Predictor{
		func() predictor.Predictor { return baselines.NewSmith(8) },
		func() predictor.Predictor { return baselines.NewGshare(8, 8) },
		func() predictor.Predictor { return core.MustNew(core.DefaultConfig(7)) },
		func() predictor.Predictor { return baselines.NewStatic(baselines.AlwaysNotTaken) },
	}
	jobs := make([]Job, len(mks))
	want := make([]Result, len(mks))
	for i, mk := range mks {
		jobs[i] = Job{Make: mk, Source: src}
		want[i] = Run(mk(), src)
	}
	got := RunAll(jobs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("job %d: parallel %+v != serial %+v", i, got[i], want[i])
		}
	}
}

func TestRunAllEmpty(t *testing.T) {
	if res := RunAll(nil); len(res) != 0 {
		t.Fatalf("empty jobs must give empty results")
	}
}

func TestAverageRate(t *testing.T) {
	rs := []Result{
		{Branches: 100, Mispredicts: 10},
		{Branches: 100, Mispredicts: 30},
	}
	if got := AverageRate(rs); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("average = %v, want 0.2", got)
	}
	if AverageRate(nil) != 0 {
		t.Fatalf("empty average must be 0")
	}
}

func TestSweepGshareShape(t *testing.T) {
	src := trace.Materialize(fixedSource(4000))
	sweep := SweepGshare(4, []trace.Source{src, src})
	if len(sweep) != 5 {
		t.Fatalf("sweep rows = %d, want 5", len(sweep))
	}
	for h, row := range sweep {
		if len(row) != 2 {
			t.Fatalf("h=%d: %d results, want 2", h, len(row))
		}
		for _, r := range row {
			if r.Branches != 4000 {
				t.Fatalf("h=%d: branches %d", h, r.Branches)
			}
		}
	}
}

func TestFindBestGshare(t *testing.T) {
	// The fixed source's alternating branch needs history: the best
	// configuration must use at least one history bit and beat h=0.
	src := trace.Materialize(fixedSource(4000))
	best := FindBestGshare(6, []trace.Source{src})
	if best.HistoryBits < 1 {
		t.Fatalf("alternating workload should favor history, got h=%d", best.HistoryBits)
	}
	sweep := SweepGshare(6, []trace.Source{src})
	for h := range sweep {
		if AverageRate(sweep[h]) < best.AvgRate {
			t.Fatalf("best is not best: h=%d beats it", h)
		}
	}
	if len(best.PerWorkload) != 1 || best.IndexBits != 6 {
		t.Fatalf("best metadata wrong: %+v", best)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Predictor: "p", Workload: "w", CostBytes: 128, Branches: 10, Mispredicts: 1}
	if s := r.String(); s == "" {
		t.Fatalf("String must render")
	}
}
