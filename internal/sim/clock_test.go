package sim

import (
	"testing"
	"time"

	"bimode/internal/synth"
	"bimode/internal/trace"
	"bimode/internal/zoo"
)

// TestObserveClockInjectable pins the golden-test affordance behind the
// now hook: with a frozen clock, a Report carries zero timing metadata —
// WallSeconds and BranchesPerSec both exactly 0 — while every simulation
// metric is unchanged, so fixtures can compare reports byte-for-byte.
func TestObserveClockInjectable(t *testing.T) {
	prof, ok := synth.ProfileByName("gcc")
	if !ok {
		t.Fatal("no gcc profile")
	}
	mem := trace.Materialize(synth.MustWorkload(prof.WithDynamic(20000)))

	frozen := time.Unix(1136239445, 0)
	orig := now
	now = func() time.Time { return frozen }
	defer func() { now = orig }()

	frozenRep := Observe(zoo.MustNew("bimode:b=8"), mem, ObserveOptions{TopN: 3})
	if frozenRep.WallSeconds != 0 || frozenRep.BranchesPerSec != 0 {
		t.Errorf("frozen clock leaked timing: WallSeconds=%v BranchesPerSec=%v",
			frozenRep.WallSeconds, frozenRep.BranchesPerSec)
	}

	now = orig
	liveRep := Observe(zoo.MustNew("bimode:b=8"), mem, ObserveOptions{TopN: 3})
	if liveRep.WallSeconds <= 0 {
		t.Errorf("live clock produced no timing: WallSeconds=%v", liveRep.WallSeconds)
	}
	if frozenRep.Branches != liveRep.Branches || frozenRep.Mispredicts != liveRep.Mispredicts {
		t.Errorf("clock choice changed simulation results: %d/%d vs %d/%d",
			frozenRep.Mispredicts, frozenRep.Branches, liveRep.Mispredicts, liveRep.Branches)
	}
}
