package sim_test

import (
	"bytes"
	"testing"

	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/synth"
	"bimode/internal/trace"
	"bimode/internal/zoo"
)

// observeWorkload materializes a small deterministic workload for the
// observability tests.
func observeWorkload(t testing.TB, name string, dynamic int) *trace.Memory {
	t.Helper()
	prof, ok := synth.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %q", name)
	}
	return trace.Materialize(synth.MustWorkload(prof.WithDynamic(dynamic)))
}

// TestObserveMatchesRun pins the tentpole invariant: the instrumented tier
// must count exactly what the uninstrumented engine counts, for every
// capability shape in the zoo (BatchRunner, Stepper, probe-less,
// non-Indexed).
func TestObserveMatchesRun(t *testing.T) {
	mem := observeWorkload(t, "gcc", 60000)
	specs := []string{
		"bimode:b=9",          // BatchRunner + Probe
		"trimode:b=8",         // Stepper + Probe
		"gshare:i=10,h=10",    // BatchRunner + Probe
		"gshare:i=10,h=7",     // multi-PHT
		"smith:a=10",          // PC-indexed Probe
		"agree:i=10,h=10,b=8", // Probe with bias-bit choice
		"gselect:a=5,h=5",     // Indexed, Probe
		"gas:h=8,s=2",         // Indexed only (no Probe)
		"taken",               // neither Indexed nor Probe
	}
	for _, spec := range specs {
		runRes := sim.Run(zoo.MustNew(spec), mem)
		rep := sim.Observe(zoo.MustNew(spec), mem, sim.ObserveOptions{TopN: 5})
		if rep.Branches != runRes.Branches || rep.Mispredicts != runRes.Mispredicts {
			t.Errorf("%s: Observe counted %d/%d, Run counted %d/%d",
				spec, rep.Mispredicts, rep.Branches, runRes.Mispredicts, runRes.Branches)
		}
		if rep.Predictor != runRes.Predictor || rep.CostBytes != runRes.CostBytes {
			t.Errorf("%s: identity mismatch: %q/%g vs %q/%g",
				spec, rep.Predictor, rep.CostBytes, runRes.Predictor, runRes.CostBytes)
		}
		if rep.WallSeconds <= 0 || rep.BranchesPerSec <= 0 {
			t.Errorf("%s: missing throughput metrics: %+v", spec, rep)
		}
	}
}

// TestObserveLeavesIdenticalState checks that probing is read-only: a
// predictor driven through Observe ends in the same state as one driven
// through Run, witnessed by identical predictions on a follow-up trace.
func TestObserveLeavesIdenticalState(t *testing.T) {
	mem := observeWorkload(t, "go", 40000)
	tail := observeWorkload(t, "compress", 10000)
	for _, spec := range []string{"bimode:b=8", "trimode:b=7", "agree:i=9,h=9,b=7"} {
		p1, p2 := zoo.MustNew(spec), zoo.MustNew(spec)
		sim.Run(p1, mem)
		sim.Observe(p2, mem, sim.ObserveOptions{})
		r1 := sim.Run(p1, tail)
		r2 := sim.Run(p2, tail)
		if r1.Mispredicts != r2.Mispredicts {
			t.Errorf("%s: state diverged: tail mispredicts %d vs %d", spec, r1.Mispredicts, r2.Mispredicts)
		}
	}
}

// TestObserveMetricsInvariants checks the internal consistency of the
// collected metrics on a predictor with every capability (bi-mode).
func TestObserveMetricsInvariants(t *testing.T) {
	mem := observeWorkload(t, "gcc", 60000)
	rep := sim.Observe(zoo.MustNew("bimode:b=8"), mem, sim.ObserveOptions{TopN: 8})

	m := rep.Interference
	if m == nil {
		t.Fatal("bi-mode report has no interference metrics")
	}
	if m.Counters != 2<<8 {
		t.Errorf("counters = %d, want %d", m.Counters, 2<<8)
	}
	if m.Destructive+m.Constructive+m.Neutral != m.Aliased {
		t.Errorf("aliasing classes %d+%d+%d do not partition aliased %d",
			m.Destructive, m.Constructive, m.Neutral, m.Aliased)
	}
	if m.Aliased+m.Cold > rep.Branches {
		t.Errorf("aliased %d + cold %d exceed branches %d", m.Aliased, m.Cold, rep.Branches)
	}
	if m.AliasedMispredicts > m.Aliased || m.AliasedMispredicts > rep.Mispredicts {
		t.Errorf("aliased mispredicts %d out of range", m.AliasedMispredicts)
	}

	c := rep.Choice
	if c == nil {
		t.Fatal("bi-mode report has no choice metrics")
	}
	if c.Branches != rep.Branches {
		t.Errorf("choice branches %d != %d", c.Branches, rep.Branches)
	}
	if c.AgreeOutcome <= 0 || c.AgreeOutcome > c.Branches {
		t.Errorf("choice agreement %d out of range", c.AgreeOutcome)
	}
	if c.PartialHold > c.Branches-c.AgreeOutcome {
		t.Errorf("partial holds %d exceed choice misses %d", c.PartialHold, c.Branches-c.AgreeOutcome)
	}
	if len(c.BankUse) != 2 {
		t.Fatalf("bank use %v, want two banks", c.BankUse)
	}
	if c.BankUse[0]+c.BankUse[1] != rep.Branches {
		t.Errorf("bank selections %v do not sum to branches %d", c.BankUse, rep.Branches)
	}

	if len(rep.TopBranches) == 0 || len(rep.TopBranches) > 8 {
		t.Fatalf("top branches length %d out of bounds", len(rep.TopBranches))
	}
	for i := range rep.TopBranches {
		b := rep.TopBranches[i]
		if i > 0 && b.Mispredicts > rep.TopBranches[i-1].Mispredicts {
			t.Errorf("top branches not sorted at %d", i)
		}
		if b.Mispredicts > b.Count || b.Taken > b.Count {
			t.Errorf("implausible branch metrics %+v", b)
		}
	}
	if rep.TopShare <= 0 || rep.TopShare > 1 {
		t.Errorf("top share %g out of range", rep.TopShare)
	}
	if rep.StaticBranches <= 0 || rep.StaticBranches > mem.StaticCount() {
		t.Errorf("static branches %d out of range", rep.StaticBranches)
	}
}

// TestObserveGracefulDegradation: predictors without Indexed/Probe still
// get counts, throughput and the H2P ranking.
func TestObserveGracefulDegradation(t *testing.T) {
	mem := observeWorkload(t, "xlisp", 30000)
	rep := sim.Observe(zoo.MustNew("taken"), mem, sim.ObserveOptions{TopN: 4})
	if rep.Interference != nil || rep.Choice != nil {
		t.Errorf("static predictor should carry no probe metrics: %+v", rep)
	}
	if rep.Branches != mem.Len() || len(rep.TopBranches) == 0 {
		t.Errorf("base metrics missing: %+v", rep)
	}
	if rep.Mispredicts == 0 {
		t.Error("always-taken should mispredict somewhere")
	}

	// TopN < 0 disables the ranking.
	rep = sim.Observe(zoo.MustNew("smith:a=8"), mem, sim.ObserveOptions{TopN: -1})
	if len(rep.TopBranches) != 0 {
		t.Errorf("TopN<0 should disable ranking, got %d rows", len(rep.TopBranches))
	}
}

// TestReportJSONRoundTrip: WriteJSON and ReadReport are inverses.
func TestReportJSONRoundTrip(t *testing.T) {
	mem := observeWorkload(t, "compress", 20000)
	rep := sim.Observe(zoo.MustNew("bimode:b=7"), mem, sim.ObserveOptions{TopN: 3})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := sim.ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Predictor != rep.Predictor || got.Branches != rep.Branches ||
		got.Mispredicts != rep.Mispredicts || got.TopShare != rep.TopShare {
		t.Errorf("round trip changed report: %+v vs %+v", got, rep)
	}
	if got.Interference == nil || *got.Interference != *rep.Interference {
		t.Errorf("round trip changed interference: %+v vs %+v", got.Interference, rep.Interference)
	}
	if len(got.TopBranches) != len(rep.TopBranches) {
		t.Errorf("round trip changed top branches")
	}
}

// TestLookupOf covers the capability ladder's fallback rungs directly.
func TestLookupOf(t *testing.T) {
	if fn := predictor.LookupOf(zoo.MustNew("taken")); fn != nil {
		t.Error("static predictor should expose no lookup")
	}
	// GAs is Indexed but not Probe: fallback path, no choice, bank -1.
	gas := zoo.MustNew("gas:h=8,s=2")
	fn := predictor.LookupOf(gas)
	if fn == nil {
		t.Fatal("Indexed predictor should get a fallback lookup")
	}
	look := fn(0x40)
	if look.HasChoice || look.Bank != -1 {
		t.Errorf("fallback lookup should be bankless and choiceless: %+v", look)
	}
	ix := gas.(predictor.Indexed)
	if look.CounterID != ix.CounterID(0x40) {
		t.Errorf("fallback counter id %d != CounterID %d", look.CounterID, ix.CounterID(0x40))
	}
	// Bi-mode's probe must agree with its Indexed view.
	bm := zoo.MustNew("bimode:b=8")
	look = predictor.LookupOf(bm)(0x40)
	if want := bm.(predictor.Indexed).CounterID(0x40); look.CounterID != want {
		t.Errorf("bi-mode probe counter id %d != CounterID %d", look.CounterID, want)
	}
	if !look.HasChoice || look.Bank < 0 || look.Bank > 1 {
		t.Errorf("bi-mode probe missing choice/bank: %+v", look)
	}
}
