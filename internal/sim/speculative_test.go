package sim

import (
	"testing"

	"bimode/internal/baselines"
	"bimode/internal/core"
	"bimode/internal/predictor"
	"bimode/internal/synth"
	"bimode/internal/trace"
)

// TestSpeculativeZeroLagEqualsRun is the correctness invariant: with
// immediate resolution, speculative-with-repair history management is
// EXACTLY the idealized protocol.
func TestSpeculativeZeroLagEqualsRun(t *testing.T) {
	src := trace.Materialize(fixedSource(5000))
	mks := []func() predictor.Predictor{
		func() predictor.Predictor { return baselines.NewGshare(8, 8) },
		func() predictor.Predictor { return baselines.NewGshare(10, 4) },
		func() predictor.Predictor { return core.MustNew(core.DefaultConfig(7)) },
	}
	for _, mk := range mks {
		ideal := Run(mk(), src)
		spec := RunSpeculative(mk(), src, 0)
		if ideal.Mispredicts != spec.Mispredicts {
			t.Errorf("%s: speculative lag-0 (%d) != ideal (%d)",
				ideal.Predictor, spec.Mispredicts, ideal.Mispredicts)
		}
	}
}

// TestSpeculativeBeatsDelayed: with lag on a realistic (aperiodic)
// workload, speculative history management must recover most of what the
// pessimistic stale-state model loses, and must land at or above the
// ideal protocol.
func TestSpeculativeBeatsDelayed(t *testing.T) {
	p, ok := synth.ProfileByName("gcc")
	if !ok {
		t.Fatal("gcc profile missing")
	}
	src := trace.Materialize(synth.MustWorkload(p.WithDynamic(80000)))
	const lag = 8
	spec := RunSpeculative(baselines.NewGshare(11, 11), src, lag)
	stale := RunDelayed(baselines.NewGshare(11, 11), src, lag)
	ideal := Run(baselines.NewGshare(11, 11), src)
	if float64(spec.Mispredicts) > 1.1*float64(ideal.Mispredicts) {
		t.Fatalf("speculative at lag %d (%d) should track ideal (%d) closely",
			lag, spec.Mispredicts, ideal.Mispredicts)
	}
	if spec.Mispredicts >= stale.Mispredicts {
		t.Fatalf("speculative (%d) should beat stale-state (%d) at lag %d",
			spec.Mispredicts, stale.Mispredicts, lag)
	}
}

func TestSpeculativePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("negative lag must panic")
			}
		}()
		RunSpeculative(baselines.NewGshare(4, 4), fixedSource(10), -1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("non-speculative predictor must panic")
			}
		}()
		RunSpeculative(baselines.NewSmith(4), fixedSource(10), 0)
	}()
}

func TestSpeculativeCountsBranches(t *testing.T) {
	src := trace.Materialize(fixedSource(1234))
	res := RunSpeculative(core.MustNew(core.DefaultConfig(6)), src, 3)
	if res.Branches != 1234 {
		t.Fatalf("branches = %d", res.Branches)
	}
}
