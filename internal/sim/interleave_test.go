package sim_test

// Oracle and race coverage for the interleaved RunAll dispatch and the
// materialization arena. The oracle here uses bi-mode tables past the
// interleaveMinBytes gate so the lockstep kernel actually engages (the
// zoo-sized tables in scheduler_test.go stay on the per-job path); the
// race test hammers one pooled scheduler's arena and sharded counters
// from several goroutines and runs under -race in CI.

import (
	"sync"
	"testing"

	"bimode/internal/core"
	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/synth"
	"bimode/internal/trace"
	"bimode/internal/zoo"
)

const interleaveOracleDynamic = 30000

// bigBiMode is a bi-mode instance whose packed footprint (2x256KB)
// clears the interleave gate.
func bigBiMode() predictor.Predictor {
	return core.MustNew(core.Config{ChoiceBits: 18, BankBits: 18, HistoryBits: 14})
}

// TestRunAllInterleavedOracle proves the interleaved dispatch invisible:
// a pooled RunAll over a grid that mixes gate-clearing bi-mode jobs,
// small bi-mode jobs and a non-bi-mode predictor — over both materialized
// and generator sources — returns exactly the sequential scheduler's
// results.
func TestRunAllInterleavedOracle(t *testing.T) {
	profiles := synth.Profiles()[:3]
	var jobs []sim.Job
	for _, p := range profiles {
		src := synth.MustWorkload(p.WithDynamic(interleaveOracleDynamic))
		mem := trace.Materialize(synth.MustWorkload(p.WithDynamic(interleaveOracleDynamic)))
		for _, mk := range []func() predictor.Predictor{
			bigBiMode,
			func() predictor.Predictor { return zoo.MustNew("bimode:b=8") },
			func() predictor.Predictor { return zoo.MustNew("gshare:i=12,h=12") },
		} {
			jobs = append(jobs, sim.Job{Make: mk, Source: src})
			jobs = append(jobs, sim.Job{Make: mk, Source: mem})
		}
	}
	want := sim.NewScheduler(0).RunAll(jobs)
	for _, workers := range []int{1, 3, 8} {
		got := sim.NewScheduler(workers).RunAll(jobs)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d job %d: %+v != sequential %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestRunAllArenaRace runs overlapping suites through one pooled
// scheduler so the arena's get/put/recycle and the sharded expvar
// counters are exercised concurrently; any unsynchronized buffer reuse
// is a -race hit and any cross-suite aliasing shows up as a wrong count
// against the sequential reference.
func TestRunAllArenaRace(t *testing.T) {
	profile := synth.Profiles()[0].WithDynamic(interleaveOracleDynamic)
	mkJobs := func() []sim.Job {
		// Fresh generator sources each call: every RunAll materializes
		// through the arena instead of sharing a *trace.Memory.
		src := synth.MustWorkload(profile)
		return []sim.Job{
			{Make: bigBiMode, Source: src},
			{Make: bigBiMode, Source: src},
			{Make: func() predictor.Predictor { return zoo.MustNew("bimode:b=10") }, Source: src},
			{Make: func() predictor.Predictor { return zoo.MustNew("smith:a=10") }, Source: src},
		}
	}
	want := sim.NewScheduler(0).RunAll(mkJobs())
	s := sim.NewScheduler(4)
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 3; it++ {
				got := s.RunAll(mkJobs())
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("job %d: %+v != sequential %+v", i, got[i], want[i])
					}
				}
			}
		}()
	}
	wg.Wait()
}
