package sim

import (
	"bimode/internal/baselines"
	"bimode/internal/predictor"
	"bimode/internal/trace"
)

// BestGshare describes the winning configuration of the Section 3.1
// exhaustive search at one predictor size.
type BestGshare struct {
	// IndexBits is log2 of the second-level counter count (fixed by the
	// size point).
	IndexBits int
	// HistoryBits is the winning global history length.
	HistoryBits int
	// AvgRate is the winning suite-average misprediction rate.
	AvgRate float64
	// PerWorkload holds the winning configuration's per-workload results,
	// in the order of the sources passed to FindBestGshare.
	PerWorkload []Result
}

// SweepGshare simulates every gshare history length 0..indexBits at a
// fixed second-level size over all sources using the default scheduler.
// The returned matrix is indexed [historyBits][source].
func SweepGshare(indexBits int, sources []trace.Source) [][]Result {
	return sweepGshare(DefaultScheduler(), indexBits, sources)
}

// sweepGshare is the scheduler-routed sweep behind SweepGshare and
// Scheduler.SweepGshare.
func sweepGshare(s *Scheduler, indexBits int, sources []trace.Source) [][]Result {
	jobs := make([]Job, 0, (indexBits+1)*len(sources))
	for h := 0; h <= indexBits; h++ {
		h := h
		for _, src := range sources {
			jobs = append(jobs, Job{
				Make:   func() predictor.Predictor { return baselines.NewGshare(indexBits, h) },
				Source: src,
			})
		}
	}
	flat := s.RunAll(jobs)
	out := make([][]Result, indexBits+1)
	for h := 0; h <= indexBits; h++ {
		out[h] = flat[h*len(sources) : (h+1)*len(sources)]
	}
	return out
}

// FindBestGshare reproduces the paper's gshare.best methodology: for a
// fixed second-level size of 2^indexBits counters it simulates every
// history length 0..indexBits over all sources and returns the
// configuration with the lowest *suite-average* misprediction rate (the
// paper stresses the best configuration is chosen on the average, not per
// benchmark, and in general has multiple PHTs).
func FindBestGshare(indexBits int, sources []trace.Source) BestGshare {
	return PickBestGshare(indexBits, SweepGshare(indexBits, sources))
}

// PickBestGshare selects the best configuration from a SweepGshare
// matrix.
func PickBestGshare(indexBits int, sweep [][]Result) BestGshare {
	best := BestGshare{IndexBits: indexBits, HistoryBits: -1}
	for h, results := range sweep {
		avg := AverageRate(results)
		if best.HistoryBits < 0 || avg < best.AvgRate {
			best = BestGshare{IndexBits: indexBits, HistoryBits: h, AvgRate: avg, PerWorkload: results}
		}
	}
	return best
}
