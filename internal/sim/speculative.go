package sim

import (
	"fmt"

	"bimode/internal/predictor"
	"bimode/internal/trace"
)

// RunSpeculative drives a predictor the way a real front end does:
// the PREDICTED direction is shifted into the global history immediately
// (so back-to-back predictions see current history), a checkpoint is
// taken per branch, and counters train at resolution (lag branches
// later) using the history snapshot the prediction used. On a
// misprediction the history register is restored from the checkpoint,
// corrected with the real outcome, and — as a pipeline flush would — the
// younger in-flight branches are refetched: they are re-predicted with
// the repaired history, and the prediction a branch retires with is the
// one that is scored.
//
// With lag 0 this is exactly equivalent to the idealized Run protocol
// (asserted by tests); with lag > 0 the residual gap to Run is pure
// delayed counter training, with the history damage of the pessimistic
// RunDelayed model repaired.
func RunSpeculative(p predictor.Predictor, src trace.Source, lag int) Result {
	if lag < 0 {
		panic(fmt.Sprintf("sim: negative resolution lag %d", lag))
	}
	sh, ok := p.(predictor.SpeculativeHistory)
	if !ok {
		panic(fmt.Sprintf("sim: predictor %s does not support speculative history", p.Name()))
	}
	res := Result{
		Predictor: fmt.Sprintf("%s/spec-lag=%d", p.Name(), lag),
		Workload:  src.Name(),
		CostBytes: predictor.CostBytes(p),
	}
	type inflight struct {
		pc         uint64
		checkpoint uint64
		predicted  bool
		taken      bool
	}
	var queue []inflight

	resolveHead := func() {
		f := queue[0]
		queue = queue[1:]
		sh.UpdateCounters(f.pc, f.checkpoint, f.taken)
		if f.predicted == f.taken {
			return
		}
		res.Mispredicts++
		// Flush: repair the history and refetch the younger branches
		// with it.
		sh.SetHistory(f.checkpoint)
		sh.PushHistory(f.taken)
		for i := range queue {
			queue[i].checkpoint = sh.HistoryValue()
			queue[i].predicted = p.Predict(queue[i].pc)
			sh.PushHistory(queue[i].predicted)
		}
	}

	st := src.Stream()
	for {
		rec, ok := st.Next()
		if !ok {
			break
		}
		ckpt := sh.HistoryValue()
		pred := p.Predict(rec.PC)
		res.Branches++
		sh.PushHistory(pred) // speculative history update
		queue = append(queue, inflight{pc: rec.PC, checkpoint: ckpt, predicted: pred, taken: rec.Taken})
		if len(queue) > lag {
			resolveHead()
		}
	}
	for len(queue) > 0 {
		resolveHead()
	}
	return res
}
