package sim_test

// Simulator throughput benchmarks: branches/sec of the generic
// Predict/Update stream loop vs the capability fast path, on a
// materialized SPEC workload. The perf_opt acceptance bar for the batched
// engine is >= 2x generic branches/sec for bi-mode here; BENCH_sim.json
// (cmd/simbench) records the same comparison as the baseline for future
// perf work.

import (
	"sync"
	"testing"

	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/synth"
	"bimode/internal/trace"
	"bimode/internal/zoo"
)

// throughputDynamic is sized so the record slice (16 B/branch) stays
// cache-resident, measuring the engines rather than DRAM: past ~1M
// records the stream itself becomes the bottleneck and both loops
// converge on memory bandwidth.
const throughputDynamic = 1 << 18

// throughputTrace lazily materializes the SPEC gcc workload once for all
// throughput benchmarks.
var throughputTrace = sync.OnceValue(func() *trace.Memory {
	prof, ok := synth.ProfileByName("gcc")
	if !ok {
		panic("sim: no gcc profile")
	}
	return trace.Materialize(synth.MustWorkload(prof.WithDynamic(throughputDynamic)))
})

func benchLoop(b *testing.B, run func(p predictor.Predictor, src trace.Source) sim.Result, spec string, src trace.Source) {
	b.Helper()
	p := zoo.MustNew(spec)
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Reset()
		res := run(p, src)
		n += res.Branches
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(n)/secs, "branches/s")
	}
}

// BenchmarkThroughput compares the simulation engine's paths per hot
// predictor: "generic" is the capability-free reference loop, "batched"
// is sim.Run over a materialized trace (BatchRunner where implemented,
// fused Stepper otherwise).
func BenchmarkThroughput(b *testing.B) {
	mem := throughputTrace()
	specs := []string{
		"bimode:b=11",
		"trimode:b=10",
		"gshare:i=12,h=12",
		"smith:a=12",
		"gas:h=10,s=2",
	}
	for _, spec := range specs {
		spec := spec
		b.Run("generic/"+spec, func(b *testing.B) {
			benchLoop(b, sim.RunGeneric, spec, mem)
		})
		b.Run("batched/"+spec, func(b *testing.B) {
			benchLoop(b, sim.Run, spec, mem)
		})
	}
}

// BenchmarkRunAllSharedTrace measures the sweep driver's shared
// materialization: many predictors over one non-materialized source.
func BenchmarkRunAllSharedTrace(b *testing.B) {
	prof, _ := synth.ProfileByName("compress")
	src := synth.MustWorkload(prof.WithDynamic(1 << 18))
	jobs := make([]sim.Job, 8)
	for i := range jobs {
		jobs[i] = sim.Job{
			Make:   func() predictor.Predictor { return zoo.MustNew("bimode:b=10") },
			Source: src,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := sim.RunAll(jobs); len(res) != len(jobs) {
			b.Fatal("short results")
		}
	}
}
