package sim

import (
	"errors"
	"fmt"
	"time"
)

// Error classification for the fault-tolerant runtime. The scheduler's
// retry policy acts on exactly one property of a failure: whether
// retrying the job could plausibly succeed. That property travels on the
// error itself via the retryable interface, so any layer (a fault
// injector, a trace loader, a predictor constructor) can mark a failure
// transient without the scheduler knowing its type, and wrapping with
// fmt.Errorf("...: %w", err) preserves the classification.
//
// The classes are:
//
//	transient  — marked via Transient (or any error whose chain reports
//	             Retryable() == true): retried up to Policy.MaxRetries.
//	deadline   — a job that exceeded Policy.JobTimeout while the suite as
//	             a whole was still live: retryable (the stall may pass).
//	permanent  — everything else, including cancellation of the whole
//	             suite (context.Canceled is never retryable: the caller
//	             asked the work to stop).

// retryable is the interface an error (anywhere in its Unwrap chain)
// implements to opt into the scheduler's retry policy.
type retryable interface {
	Retryable() bool
}

// Transient wraps err as a retryable failure. The scheduler retries jobs
// whose error chain contains a transient error, up to Policy.MaxRetries.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

type transientError struct{ err error }

func (e *transientError) Error() string   { return "sim: transient: " + e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Retryable() bool { return true }

// Retryable reports whether err's chain opts into the retry policy. The
// outermost classification wins, so a wrapper can veto an inner
// transient marker by reporting Retryable() == false.
func Retryable(err error) bool {
	for err != nil {
		if r, ok := err.(retryable); ok {
			return r.Retryable()
		}
		err = errors.Unwrap(err)
	}
	return false
}

// jobTimeoutError tags a job that exceeded its per-job deadline. It
// unwraps to context.DeadlineExceeded (so errors.Is sees the standard
// sentinel) and is retryable: the timeout bounds one attempt, not the
// fault behind it.
type jobTimeoutError struct {
	timeout time.Duration
	err     error
}

func (e *jobTimeoutError) Error() string {
	return fmt.Sprintf("sim: job exceeded its %v deadline: %v", e.timeout, e.err)
}
func (e *jobTimeoutError) Unwrap() error   { return e.err }
func (e *jobTimeoutError) Retryable() bool { return true }
