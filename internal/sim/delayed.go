package sim

import (
	"fmt"

	"bimode/internal/predictor"
	"bimode/internal/trace"
)

// RunDelayed simulates the pipeline reality the simple Predict/Update
// protocol idealizes: a branch's outcome is not known at predict time —
// it resolves only after `lag` further branches have been predicted. The
// predictor therefore predicts with state that is `lag` updates stale.
//
// This models a machine that does NOT speculatively update its history
// registers (the pessimistic end of the design space; real machines
// checkpoint speculative history, landing between RunDelayed and Run).
// The accuracy gap between Run and RunDelayed measures how sensitive a
// predictor is to update latency — global-history schemes degrade because
// their history register lags the fetch stream, while PC-indexed tables
// barely notice.
func RunDelayed(p predictor.Predictor, src trace.Source, lag int) Result {
	if lag < 0 {
		panic(fmt.Sprintf("sim: negative resolution lag %d", lag))
	}
	res := Result{
		Predictor: fmt.Sprintf("%s/lag=%d", p.Name(), lag),
		Workload:  src.Name(),
		CostBytes: predictor.CostBytes(p),
	}
	type pending struct {
		pc    uint64
		taken bool
	}
	queue := make([]pending, 0, lag+1)
	st := src.Stream()
	for {
		rec, ok := st.Next()
		if !ok {
			break
		}
		if p.Predict(rec.PC) != rec.Taken {
			res.Mispredicts++
		}
		res.Branches++
		queue = append(queue, pending{pc: rec.PC, taken: rec.Taken})
		if len(queue) > lag {
			head := queue[0]
			queue = queue[1:]
			p.Update(head.pc, head.taken)
		}
	}
	// Drain outstanding resolutions (no more predictions depend on them,
	// but completing keeps predictor state well-defined for reuse).
	for _, h := range queue {
		p.Update(h.pc, h.taken)
	}
	return res
}

// DelaySweep measures a predictor family's sensitivity to resolution lag:
// one Result per lag value, over the same source.
func DelaySweep(mk func() predictor.Predictor, src trace.Source, lags []int) []Result {
	out := make([]Result, len(lags))
	for i, lag := range lags {
		out[i] = RunDelayed(mk(), src, lag)
	}
	return out
}
