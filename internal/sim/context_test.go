package sim_test

// Cancellation, deadline and retry tests for the fault-tolerant
// scheduler layer. Everything here runs under -race in CI (test-race and
// test-chaos jobs).

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/trace"
	"bimode/internal/zoo"
)

func expvarInt(t *testing.T, name string) int64 {
	t.Helper()
	v := expvar.Get(name)
	if v == nil {
		t.Fatalf("expvar %q not published", name)
	}
	// The scheduler counters are sharded and published as an expvar.Func
	// summing the shards; the observation counters are plain Ints.
	switch iv := v.(type) {
	case *expvar.Int:
		return iv.Value()
	case expvar.Func:
		n, ok := iv().(int64)
		if !ok {
			t.Fatalf("expvar %q yields %T, want int64", name, iv())
		}
		return n
	default:
		t.Fatalf("expvar %q is %T, want *expvar.Int or expvar.Func", name, v)
		return 0
	}
}

// TestDoEdgeCases pins the documented boundary behaviors of Do: n <= 0
// returns an empty slice without invoking the task, and a negative
// worker count clamps to the sequential path.
func TestDoEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		workers int
		n       int
	}{
		{"zero jobs sequential", 0, 0},
		{"zero jobs pooled", 4, 0},
		{"negative jobs", 4, -3},
		{"negative workers", -2, 5},
		{"more workers than jobs", 16, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var calls atomic.Int64
			errs := sim.NewScheduler(tc.workers).Do(tc.n, func(i int) error {
				calls.Add(1)
				return nil
			})
			wantCalls := int64(tc.n)
			if wantCalls < 0 {
				wantCalls = 0
			}
			if calls.Load() != wantCalls {
				t.Errorf("task ran %d times, want %d", calls.Load(), wantCalls)
			}
			if len(errs) != int(wantCalls) {
				t.Errorf("got %d error slots, want %d", len(errs), wantCalls)
			}
			for i, err := range errs {
				if err != nil {
					t.Errorf("slot %d: %v", i, err)
				}
			}
		})
	}
}

// TestDoContextSkipsAfterCancel proves cancellation semantics on the
// sequential path, where ordering is deterministic: jobs before the
// cancel complete, jobs after it are skipped with context.Canceled and
// never invoked.
func TestDoContextSkipsAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n, cutoff = 10, 4
	ran := make([]bool, n)
	errs := sim.NewScheduler(0).WithContext(ctx).DoContext(n, func(_ context.Context, i int) error {
		ran[i] = true
		if i == cutoff {
			cancel()
		}
		return nil
	})
	for i := 0; i < n; i++ {
		if i <= cutoff {
			if !ran[i] {
				t.Errorf("job %d should have run before the cancel", i)
			}
			if errs[i] != nil {
				t.Errorf("job %d: unexpected error %v", i, errs[i])
			}
		} else {
			if ran[i] {
				t.Errorf("job %d ran after the cancel", i)
			}
			if !errors.Is(errs[i], context.Canceled) {
				t.Errorf("job %d: error %v, want context.Canceled", i, errs[i])
			}
		}
	}
}

// TestRunAllCancelKeepsPrefix is the suite-level cancellation contract:
// a canceled RunAll returns every completed cell intact and tags the
// rest with context.Canceled, and sim_sched_cancelled counts them.
func TestRunAllCancelKeepsPrefix(t *testing.T) {
	mem := suiteTraces()[0]
	jobs := make([]sim.Job, 8)
	for i := range jobs {
		jobs[i] = sim.Job{
			Make:   func() predictor.Predictor { return zoo.MustNew("bimode:b=11") },
			Source: mem,
		}
	}
	want := sim.NewScheduler(0).RunAll(jobs)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	cancelJobs := make([]sim.Job, len(jobs))
	for i := range jobs {
		i := i
		cancelJobs[i] = sim.Job{
			Make: func() predictor.Predictor {
				p := zoo.MustNew("bimode:b=11")
				if done.Add(1) == 3 {
					cancel()
				}
				return p
			},
			Source: jobs[i].Source,
		}
	}
	before := expvarInt(t, "sim_sched_cancelled")
	got := sim.NewScheduler(0).WithContext(ctx).RunAll(cancelJobs)

	completed, cancelled := 0, 0
	for i, r := range got {
		switch {
		case r.Err == nil:
			completed++
			if r != want[i] {
				t.Errorf("completed cell %d: %+v != sequential %+v", i, r, want[i])
			}
		case errors.Is(r.Err, context.Canceled):
			cancelled++
			if r.Workload != mem.Name() {
				t.Errorf("cancelled cell %d: workload %q, want %q", i, r.Workload, mem.Name())
			}
		default:
			t.Errorf("cell %d: unexpected error class %v", i, r.Err)
		}
	}
	if completed == 0 || cancelled == 0 {
		t.Fatalf("expected a completed prefix and cancelled remainder, got %d completed / %d cancelled", completed, cancelled)
	}
	if gotCancelled := expvarInt(t, "sim_sched_cancelled") - before; gotCancelled < int64(cancelled) {
		t.Errorf("sim_sched_cancelled advanced %d, want >= %d", gotCancelled, cancelled)
	}
}

// stallStream blocks inside Next until its context is canceled, then
// ends the stream; it models a hung trace generator that only cooperates
// via cancellation.
type stallStream struct{ ctx context.Context }

func (s *stallStream) Next() (trace.Record, bool) {
	<-s.ctx.Done()
	return trace.Record{}, false
}

type stallSource struct{ ctx context.Context }

func (s *stallSource) Name() string         { return "stall" }
func (s *stallSource) StaticCount() int     { return 1 }
func (s *stallSource) Stream() trace.Stream { return &stallStream{ctx: s.ctx} }

// TestChunkedCancelStopsMidCell proves the record-batch granularity: a
// cell already running when the context is canceled stops at the next
// batch boundary instead of finishing the trace.
func TestChunkedCancelStopsMidCell(t *testing.T) {
	mem := suiteTraces()[0]
	ctx, cancel := context.WithCancel(context.Background())
	jobs := []sim.Job{{
		Make: func() predictor.Predictor {
			p := zoo.MustNew("bimode:b=11")
			cancel() // cancel after the job starts but before its loop
			return p
		},
		Source: mem,
	}}
	got := sim.NewScheduler(0).WithContext(ctx).RunAll(jobs)
	if !errors.Is(got[0].Err, context.Canceled) {
		t.Fatalf("mid-cell cancel: err %v, want context.Canceled", got[0].Err)
	}
	if got[0].Branches != 0 {
		t.Fatalf("cancelled cell leaked partial counts: %+v", got[0])
	}
}

// TestPolicyRetriesTransient proves the retry loop: a job failing with a
// Transient-wrapped error is re-attempted up to MaxRetries and succeeds
// once the fault clears, with sim_sched_retries counting the
// re-attempts.
func TestPolicyRetriesTransient(t *testing.T) {
	var attempts atomic.Int64
	before := expvarInt(t, "sim_sched_retries")
	s := sim.NewScheduler(0).WithPolicy(sim.Policy{MaxRetries: 3, Backoff: time.Microsecond})
	errs := s.Do(1, func(int) error {
		if attempts.Add(1) <= 2 {
			return sim.Transient(fmt.Errorf("flaky I/O"))
		}
		return nil
	})
	if errs[0] != nil {
		t.Fatalf("job failed despite retries: %v", errs[0])
	}
	if attempts.Load() != 3 {
		t.Fatalf("job attempted %d times, want 3", attempts.Load())
	}
	if got := expvarInt(t, "sim_sched_retries") - before; got < 2 {
		t.Errorf("sim_sched_retries advanced %d, want >= 2", got)
	}
}

// TestPolicyRetryBudgetExhausted: a persistently transient job fails
// after MaxRetries re-attempts, and the transient classification is
// still visible on the returned error.
func TestPolicyRetryBudgetExhausted(t *testing.T) {
	var attempts atomic.Int64
	s := sim.NewScheduler(0).WithPolicy(sim.Policy{MaxRetries: 2, Backoff: time.Microsecond})
	errs := s.Do(1, func(int) error {
		attempts.Add(1)
		return sim.Transient(fmt.Errorf("still down"))
	})
	if errs[0] == nil {
		t.Fatalf("persistently failing job reported success")
	}
	if attempts.Load() != 3 {
		t.Fatalf("job attempted %d times, want 1 + 2 retries", attempts.Load())
	}
	if !sim.Retryable(errs[0]) {
		t.Errorf("returned error lost its transient classification: %v", errs[0])
	}
}

// TestPolicyDoesNotRetryPermanent: an unclassified error is never
// re-attempted, whatever the budget.
func TestPolicyDoesNotRetryPermanent(t *testing.T) {
	var attempts atomic.Int64
	s := sim.NewScheduler(0).WithPolicy(sim.Policy{MaxRetries: 5, Backoff: time.Microsecond})
	permanent := errors.New("bad spec")
	errs := s.Do(1, func(int) error {
		attempts.Add(1)
		return permanent
	})
	if !errors.Is(errs[0], permanent) {
		t.Fatalf("got %v, want the permanent error", errs[0])
	}
	if attempts.Load() != 1 {
		t.Fatalf("permanent failure attempted %d times, want 1", attempts.Load())
	}
}

// TestPolicyJobTimeout: a stalled job is abandoned at its deadline and
// the error both names the deadline and unwraps to
// context.DeadlineExceeded; the suite context stays live.
func TestPolicyJobTimeout(t *testing.T) {
	s := sim.NewScheduler(0).WithPolicy(sim.Policy{JobTimeout: 10 * time.Millisecond})
	errs := s.DoContext(1, func(ctx context.Context, _ int) error {
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(errs[0], context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded in the chain", errs[0])
	}
	if !sim.Retryable(errs[0]) {
		t.Errorf("a job timeout should be retryable: %v", errs[0])
	}
}

// TestPolicyTimeoutRetryRecovers composes the two: a job that stalls
// past its deadline once and then behaves completes successfully.
func TestPolicyTimeoutRetryRecovers(t *testing.T) {
	var attempts atomic.Int64
	s := sim.NewScheduler(0).WithPolicy(sim.Policy{
		JobTimeout: 20 * time.Millisecond,
		MaxRetries: 1,
		Backoff:    time.Microsecond,
	})
	errs := s.DoContext(1, func(ctx context.Context, _ int) error {
		if attempts.Add(1) == 1 {
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	})
	if errs[0] != nil {
		t.Fatalf("stall-once job failed: %v", errs[0])
	}
	if attempts.Load() != 2 {
		t.Fatalf("attempted %d times, want 2", attempts.Load())
	}
}

// TestCancelNotRetryable: whole-suite cancellation is never retried,
// even under a generous budget — the caller asked the work to stop.
func TestCancelNotRetryable(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var attempts atomic.Int64
	s := sim.NewScheduler(0).WithContext(ctx).WithPolicy(sim.Policy{MaxRetries: 5, Backoff: time.Microsecond})
	errs := s.DoContext(1, func(context.Context, int) error {
		attempts.Add(1)
		cancel()
		return ctx.Err()
	})
	if !errors.Is(errs[0], context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", errs[0])
	}
	if attempts.Load() != 1 {
		t.Fatalf("cancelled job attempted %d times, want 1", attempts.Load())
	}
}

// TestPanicPreservesErrorClass: a panic whose value is an error keeps
// its classification through the recovery, so a fault injector can panic
// with a Transient error and still be retried.
func TestPanicPreservesErrorClass(t *testing.T) {
	var attempts atomic.Int64
	s := sim.NewScheduler(0).WithPolicy(sim.Policy{MaxRetries: 1, Backoff: time.Microsecond})
	errs := s.Do(1, func(int) error {
		if attempts.Add(1) == 1 {
			panic(sim.Transient(fmt.Errorf("injected")))
		}
		return nil
	})
	if errs[0] != nil {
		t.Fatalf("panicking-transient job did not recover via retry: %v", errs[0])
	}
	if attempts.Load() != 2 {
		t.Fatalf("attempted %d times, want 2", attempts.Load())
	}
}

// TestObserveContextCancel: the instrumented tier also honors
// cancellation, and Observe (the background form) still works.
func TestObserveContextCancel(t *testing.T) {
	mem := suiteTraces()[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.ObserveContext(ctx, zoo.MustNew("bimode:b=11"), mem, sim.ObserveOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ObserveContext under canceled ctx: err %v, want context.Canceled", err)
	}
	rep, err := sim.ObserveContext(context.Background(), zoo.MustNew("bimode:b=11"), mem, sim.ObserveOptions{})
	if err != nil || rep.Branches != mem.Len() {
		t.Fatalf("ObserveContext background run: %v, branches %d want %d", err, rep.Branches, mem.Len())
	}
}

// TestMaterializeContextCancel: a canceled context stops a stalled
// generator's materialization (the stall source only yields when its
// stream's context fires, so an uncancelable Materialize would hang).
func TestMaterializeContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := trace.MaterializeContext(ctx, &stallSource{ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("MaterializeContext: err %v, want context.Canceled", err)
	}
}

// TestChunkedRunMatchesPlainRun: attaching a cancelable context (never
// canceled) switches runCell to the chunked loop; its results must be
// byte-identical to the plain path for the whole spec x workload grid.
func TestChunkedRunMatchesPlainRun(t *testing.T) {
	jobs := oracleJobs(t)
	want := sim.NewScheduler(0).RunAll(jobs)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := sim.NewScheduler(0).WithContext(ctx).RunAll(jobs)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("job %d: chunked %+v != plain %+v", i, got[i], want[i])
		}
	}
}
