package sim

import (
	"sync"

	"bimode/internal/trace"
)

// arenaMaxBufs bounds how many record buffers an arena retains; beyond
// that the smallest is dropped, so a scheduler that once materialized an
// unusually wide suite does not pin its peak footprint forever.
const arenaMaxBufs = 16

// matArena recycles the record buffers behind internally materialized
// traces across RunAll calls. Materialization is the scheduler's largest
// per-suite allocation — the default suite is 14 workloads x 2^21
// records x 16 bytes — and simbench-style callers run the same suite
// dozens of times back to back; with the arena the steady state
// materializes into the previous run's buffers and allocates nothing.
// The mutex is uncontended in practice: the arena is touched once per
// distinct source per RunAll, not per job or per record.
type matArena struct {
	mu   sync.Mutex
	bufs [][]trace.Record
}

// get pops the largest retained buffer (nil when empty). The caller owns
// it until it comes back via put or recycle.
func (a *matArena) get() []trace.Record {
	a.mu.Lock()
	defer a.mu.Unlock()
	best := -1
	for i := range a.bufs {
		if best < 0 || cap(a.bufs[i]) > cap(a.bufs[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	buf := a.bufs[best]
	a.bufs[best] = a.bufs[len(a.bufs)-1]
	a.bufs = a.bufs[:len(a.bufs)-1]
	return buf
}

// put returns a buffer to the arena; zero-capacity buffers are ignored
// and the smallest buffer is dropped once the arena is full.
func (a *matArena) put(buf []trace.Record) {
	if cap(buf) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.bufs = append(a.bufs, buf[:0])
	if len(a.bufs) <= arenaMaxBufs {
		return
	}
	small := 0
	for i := range a.bufs {
		if cap(a.bufs[i]) < cap(a.bufs[small]) {
			small = i
		}
	}
	a.bufs[small] = a.bufs[len(a.bufs)-1]
	a.bufs = a.bufs[:len(a.bufs)-1]
}

// recycle returns the buffers of internally materialized traces to the
// arena. Callers must guarantee the traces are no longer reachable.
func (a *matArena) recycle(mems []*trace.Memory) {
	for _, m := range mems {
		if m != nil {
			a.put(m.Records())
		}
	}
}
