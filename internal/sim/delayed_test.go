package sim

import (
	"testing"

	"bimode/internal/baselines"
	"bimode/internal/core"
	"bimode/internal/predictor"
	"bimode/internal/trace"
)

func TestRunDelayedZeroLagMatchesRun(t *testing.T) {
	src := trace.Materialize(fixedSource(3000))
	a := Run(baselines.NewGshare(8, 8), src)
	b := RunDelayed(baselines.NewGshare(8, 8), src, 0)
	if a.Mispredicts != b.Mispredicts || a.Branches != b.Branches {
		t.Fatalf("lag 0 must equal the plain run: %+v vs %+v", a, b)
	}
}

func TestRunDelayedDegradesHistorySchemes(t *testing.T) {
	src := trace.Materialize(fixedSource(6000))
	// The alternating branch in fixedSource is perfectly predictable by
	// history at lag 0 and unpredictable with a stale history register.
	lag0 := RunDelayed(baselines.NewGshare(8, 8), src, 0)
	lag8 := RunDelayed(baselines.NewGshare(8, 8), src, 8)
	if lag8.Mispredicts <= lag0.Mispredicts {
		t.Fatalf("resolution lag should hurt a history predictor: %d vs %d",
			lag8.Mispredicts, lag0.Mispredicts)
	}
	// A PC-indexed predictor barely cares.
	s0 := RunDelayed(baselines.NewSmith(8), src, 0)
	s8 := RunDelayed(baselines.NewSmith(8), src, 8)
	if s8.Mispredicts > s0.Mispredicts+s0.Branches/50 {
		t.Fatalf("smith should be nearly lag-insensitive: %d vs %d", s8.Mispredicts, s0.Mispredicts)
	}
}

func TestRunDelayedBranchesCounted(t *testing.T) {
	src := trace.Materialize(fixedSource(1000))
	res := RunDelayed(core.MustNew(core.DefaultConfig(6)), src, 5)
	if res.Branches != 1000 {
		t.Fatalf("branches = %d", res.Branches)
	}
}

func TestRunDelayedPanicsOnNegativeLag(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("negative lag must panic")
		}
	}()
	RunDelayed(baselines.NewSmith(4), fixedSource(10), -1)
}

func TestDelaySweep(t *testing.T) {
	src := trace.Materialize(fixedSource(2000))
	results := DelaySweep(func() predictor.Predictor { return baselines.NewGshare(6, 6) }, src, []int{0, 2, 4})
	if len(results) != 3 {
		t.Fatalf("want 3 results")
	}
	for i := 1; i < len(results); i++ {
		if results[i].Mispredicts < results[i-1].Mispredicts {
			t.Logf("note: lag %d beat lag %d (possible but unusual)", i, i-1)
		}
	}
}
