package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"

	"bimode/internal/trace"
)

// Scheduler executes independent simulation jobs on a bounded goroutine
// pool. It is the one concurrency primitive of the suite layer: RunAll,
// the gshare.best search and every generator in internal/experiments
// dispatch through a Scheduler, and nothing else in the repository spawns
// goroutines on the simulation path.
//
// A Scheduler with zero workers runs every job inline on the caller's
// goroutine, in submission order, with no pool machinery at all. That
// sequential path is load-bearing: it is the ground truth the determinism
// oracle compares the pool against (parallel output must be byte-identical
// to it), so it must remain reachable forever — the CLIs expose it as
// `-parallel 0`.
//
// Regardless of worker count, job panics are recovered per job and
// surfaced as errors (Result.Err for RunAll) rather than taking down the
// whole suite, and the expvar counters sim_sched_jobs_inflight /
// sim_sched_jobs_completed track progress.
type Scheduler struct {
	workers int
}

// NewScheduler returns a scheduler with the given number of pool workers.
// workers <= 0 yields the sequential reference scheduler.
func NewScheduler(workers int) *Scheduler {
	if workers < 0 {
		workers = 0
	}
	return &Scheduler{workers: workers}
}

// DefaultScheduler returns the scheduler package-level entry points use:
// one worker per GOMAXPROCS.
func DefaultScheduler() *Scheduler {
	return &Scheduler{workers: runtime.GOMAXPROCS(0)}
}

// Workers reports the pool width; 0 means sequential execution.
func (s *Scheduler) Workers() int { return s.workers }

// Sequential reports whether this scheduler is the inline reference path.
func (s *Scheduler) Sequential() bool { return s.workers == 0 }

// Do runs task(0) .. task(n-1) and returns one error slot per task. With
// workers, tasks are distributed over the pool; without, they run inline
// in index order. A panicking task is recovered into its error slot and
// the remaining tasks still run. Tasks writing to disjoint slots of a
// shared slice indexed by their argument is the intended result-passing
// pattern; Do establishes the necessary happens-before edges.
func (s *Scheduler) Do(n int, task func(int) error) []error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	run := func(i int) {
		schedInFlight.Add(1)
		defer func() {
			schedInFlight.Add(-1)
			schedCompleted.Add(1)
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("sim: job %d of %d panicked: %v", i, n, r)
			}
		}()
		errs[i] = task(i)
	}

	workers := s.workers
	if workers > n {
		workers = n
	}
	if workers == 0 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return errs
	}

	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return errs
}

// RunAll executes the jobs through the scheduler and returns results in
// job order, byte-identical to the sequential scheduler's output. Each
// distinct Source is materialized once up front and the in-memory trace
// shared (read-only) by every worker, so an N-predictor sweep over one
// workload regenerates the trace once instead of N times and every cell
// takes the batched fast path. A job that panics (in Make, the predictor,
// or the source) yields a Result whose Err field records the panic; the
// other jobs are unaffected.
func (s *Scheduler) RunAll(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	shared, matErrs := s.sharedSources(jobs)
	errs := s.Do(len(jobs), func(i int) error {
		if matErrs[i] != nil {
			return matErrs[i]
		}
		results[i] = Run(jobs[i].Make(), shared[i])
		return nil
	})
	for i, err := range errs {
		if err == nil {
			continue
		}
		results[i].Err = err
		if results[i].Workload == "" {
			results[i].Workload = safeSourceName(jobs[i].Source)
		}
	}
	return results
}

// safeSourceName names a source for an error-carrying Result without
// trusting the source not to panic again.
func safeSourceName(src trace.Source) (name string) {
	if src == nil {
		return ""
	}
	defer func() { _ = recover() }()
	return src.Name()
}

// sharedSources maps each job to a materialized trace, deduplicating
// identical sources by interface identity; the distinct materializations
// themselves run through the scheduler. Sources whose dynamic type is not
// comparable cannot be used as memo keys and are materialized
// individually. A source whose materialization panics gets a nil slot and
// a per-job error for every job that shares it.
func (s *Scheduler) sharedSources(jobs []Job) ([]trace.Source, []error) {
	out := make([]trace.Source, len(jobs))
	jobErrs := make([]error, len(jobs))

	// First pass, sequential: resolve already-materialized sources and
	// group the rest into distinct materialization slots.
	type slot struct {
		src  trace.Source
		idxs []int
	}
	var slots []*slot
	var memo map[trace.Source]*slot
	for i, j := range jobs {
		src := j.Source
		if src == nil {
			continue
		}
		if m, ok := src.(*trace.Memory); ok {
			out[i] = m
			continue
		}
		if !reflect.TypeOf(src).Comparable() {
			slots = append(slots, &slot{src: src, idxs: []int{i}})
			continue
		}
		if sl, ok := memo[src]; ok {
			sl.idxs = append(sl.idxs, i)
			continue
		}
		sl := &slot{src: src, idxs: []int{i}}
		if memo == nil {
			memo = map[trace.Source]*slot{}
		}
		memo[src] = sl
		slots = append(slots, sl)
	}

	// Second pass: materialize the distinct sources through the pool.
	mems := make([]*trace.Memory, len(slots))
	matErrs := s.Do(len(slots), func(k int) error {
		mems[k] = trace.Materialize(slots[k].src)
		return nil
	})
	for k, sl := range slots {
		for _, i := range sl.idxs {
			out[i] = mems[k]
			jobErrs[i] = matErrs[k]
		}
	}
	return out, jobErrs
}

// SweepGshare simulates every gshare history length 0..indexBits at a
// fixed second-level size over all sources through the scheduler. The
// returned matrix is indexed [historyBits][source].
func (s *Scheduler) SweepGshare(indexBits int, sources []trace.Source) [][]Result {
	return sweepGshare(s, indexBits, sources)
}

// FindBestGshare is the scheduler-routed form of the package-level
// FindBestGshare.
func (s *Scheduler) FindBestGshare(indexBits int, sources []trace.Source) BestGshare {
	return PickBestGshare(indexBits, s.SweepGshare(indexBits, sources))
}
