package sim

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bimode/internal/predictor"
	"bimode/internal/trace"
)

// Scheduler executes independent simulation jobs on a bounded goroutine
// pool. It is the one concurrency primitive of the suite layer: RunAll,
// the gshare.best search and every generator in internal/experiments
// dispatch through a Scheduler, and nothing else in the repository spawns
// goroutines on the simulation path.
//
// A Scheduler with zero workers runs every job inline on the caller's
// goroutine, in submission order, with no pool machinery at all. That
// sequential path is load-bearing: it is the ground truth the determinism
// oracle compares the pool against (parallel output must be byte-identical
// to it), so it must remain reachable forever — the CLIs expose it as
// `-parallel 0`.
//
// Regardless of worker count, job panics are recovered per job and
// surfaced as errors (Result.Err for RunAll) rather than taking down the
// whole suite, and the expvar counters sim_sched_jobs_inflight /
// sim_sched_jobs_completed track progress.
//
// The fault-tolerant layer rides on three optional attachments, each set
// by a With* copy (the zero configuration behaves exactly as before):
//
//   - WithContext: a Context whose cancellation stops the fan-out in
//     bounded time — queued jobs are skipped with a context.Canceled
//     error, running RunAll cells stop at the next record batch
//     (batchRecords), and completed results are kept.
//   - WithPolicy: a per-job deadline and a bounded retry-with-backoff
//     policy for failures whose error chain is Retryable.
//   - WithJournal: a checkpoint file that records completed cells and
//     serves them back on a resumed run; see Journal.
type Scheduler struct {
	workers int
	ctx     context.Context
	policy  Policy
	journal *Journal
	// arena recycles the record buffers of traces RunAll materializes
	// internally (pool schedulers only; nil on the sequential reference
	// path, which stays allocation-plain). The pointer is shared by every
	// With* copy, so a scheduler reconfigured mid-flight keeps one pool.
	arena *matArena
}

// Policy bounds how hard the scheduler works to complete one job. The
// zero value — no deadline, no retries — is the policy of every run that
// does not opt in.
type Policy struct {
	// JobTimeout, when positive, bounds each attempt of a job: the job's
	// context expires after this long and cooperative checkpoints (the
	// record-batch loop, MaterializeContext) abandon the attempt with an
	// error that unwraps to context.DeadlineExceeded. The timeout is
	// retryable — it bounds an attempt, not the fault behind it.
	JobTimeout time.Duration
	// MaxRetries is how many times a job failing with a retryable error
	// (see Retryable) is re-attempted after its first failure.
	MaxRetries int
	// Backoff is the wait before the first retry, doubling each retry
	// after that. The wait respects the scheduler's context.
	Backoff time.Duration
}

// NewScheduler returns a scheduler with the given number of pool workers.
// workers <= 0 yields the sequential reference scheduler.
func NewScheduler(workers int) *Scheduler {
	if workers < 0 {
		workers = 0
	}
	s := &Scheduler{workers: workers}
	if workers > 0 {
		s.arena = &matArena{}
	}
	return s
}

// DefaultScheduler returns the scheduler package-level entry points use:
// one worker per GOMAXPROCS.
func DefaultScheduler() *Scheduler {
	return &Scheduler{workers: runtime.GOMAXPROCS(0), arena: &matArena{}}
}

// WithContext returns a copy of s whose fan-outs stop cooperatively when
// ctx is canceled. The scheduler never fails results that completed
// before the cancellation: RunAll returns them alongside the canceled
// slots.
func (s *Scheduler) WithContext(ctx context.Context) *Scheduler {
	c := *s
	c.ctx = ctx
	return &c
}

// WithPolicy returns a copy of s applying the given per-job deadline and
// retry policy.
func (s *Scheduler) WithPolicy(p Policy) *Scheduler {
	c := *s
	c.policy = p
	return &c
}

// WithJournal returns a copy of s that checkpoints completed RunAll cells
// into j and serves cached cells from it. The journal's (seq, idx) keying
// assumes fan-outs are issued from one goroutine in a deterministic
// order; see Journal.
func (s *Scheduler) WithJournal(j *Journal) *Scheduler {
	c := *s
	c.journal = j
	return &c
}

// Workers reports the pool width; 0 means sequential execution.
func (s *Scheduler) Workers() int { return s.workers }

// Sequential reports whether this scheduler is the inline reference path.
func (s *Scheduler) Sequential() bool { return s.workers == 0 }

// Context returns the scheduler's cancellation context
// (context.Background() unless WithContext attached one).
func (s *Scheduler) Context() context.Context {
	if s.ctx != nil {
		return s.ctx
	}
	return context.Background()
}

// Do runs task(0) .. task(n-1) and returns one error slot per task. With
// workers, tasks are distributed over the pool; without, they run inline
// in index order. A panicking task is recovered into its error slot and
// the remaining tasks still run. Tasks writing to disjoint slots of a
// shared slice indexed by their argument is the intended result-passing
// pattern; Do establishes the necessary happens-before edges. n <= 0
// returns an empty slice. Cancellation and the retry policy apply as in
// DoContext; tasks that want to observe the per-attempt context (for
// cooperative deadline checks) use DoContext directly.
func (s *Scheduler) Do(n int, task func(int) error) []error {
	return s.DoContext(n, func(_ context.Context, i int) error { return task(i) })
}

// DoContext is Do for context-aware tasks: each attempt receives a
// context that carries the scheduler's cancellation and, when
// Policy.JobTimeout is set, the attempt's deadline. Jobs not yet started
// when the scheduler's context is canceled are skipped with a
// context.Canceled error in their slot (counted by sim_sched_cancelled);
// jobs failing with a retryable error are re-attempted per the Policy
// (counted by sim_sched_retries).
func (s *Scheduler) DoContext(n int, task func(ctx context.Context, i int) error) []error {
	if n <= 0 {
		return nil
	}
	parent := s.Context()
	errs := make([]error, n)
	// run executes job i on behalf of worker w; w doubles as the expvar
	// shard so workers never contend on a counter cache line.
	run := func(w, i int) {
		schedInFlight.add(w, 1)
		defer func() {
			schedInFlight.add(w, -1)
			schedCompleted.add(w, 1)
		}()
		errs[i] = s.runJob(parent, w, n, i, task)
		if errors.Is(errs[i], context.Canceled) {
			schedCancelled.add(w, 1)
		}
	}

	workers := s.workers
	if workers < 0 {
		workers = 0
	}
	if workers > n {
		workers = n
	}
	if workers == 0 {
		for i := 0; i < n; i++ {
			run(0, i)
		}
		return errs
	}

	// Work-stealing-free dispatch: an atomic cursor the workers claim
	// indices from. The previous channel dispatch cost two goroutine
	// rendezvous per job (send + receive on an unbuffered channel, each a
	// scheduler round-trip); the cursor is one uncontended-in-the-common-
	// case atomic add, so the pool's per-job overhead no longer dwarfs
	// short jobs.
	var wg sync.WaitGroup
	var cursor atomic.Int64
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				run(w, i)
			}
		}(w)
	}
	wg.Wait()
	return errs
}

// runJob drives one job through the attempt/retry loop. w is the worker's
// expvar shard.
func (s *Scheduler) runJob(parent context.Context, w, n, i int, task func(context.Context, int) error) error {
	for attempt := 0; ; attempt++ {
		// Skip-if-canceled: a canceled suite stops dispatching instantly,
		// leaving the untouched jobs tagged rather than half-run.
		if err := parent.Err(); err != nil {
			return err
		}
		err := s.attempt(parent, n, i, task)
		if err == nil || attempt >= s.policy.MaxRetries || !Retryable(err) {
			return err
		}
		schedRetries.add(w, 1)
		if !sleepBackoff(parent, s.policy.Backoff<<uint(attempt)) {
			return err
		}
	}
}

// attempt runs one attempt of one job under the per-job deadline, with
// panic recovery. A panic whose value is an error is wrapped with %w so
// classifications (Retryable, context sentinels) survive the recovery.
func (s *Scheduler) attempt(parent context.Context, n, i int, task func(context.Context, int) error) (err error) {
	ctx := parent
	if s.policy.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(parent, s.policy.JobTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("sim: job %d of %d panicked: %w", i, n, e)
			} else {
				err = fmt.Errorf("sim: job %d of %d panicked: %v", i, n, r)
			}
		}
		if err != nil && s.policy.JobTimeout > 0 &&
			errors.Is(err, context.DeadlineExceeded) && parent.Err() == nil {
			err = &jobTimeoutError{timeout: s.policy.JobTimeout, err: err}
		}
	}()
	return task(ctx, i)
}

// sleepBackoff waits d (no-op when d <= 0), returning false if ctx was
// canceled first.
func sleepBackoff(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// RunAll executes the jobs through the scheduler and returns results in
// job order, byte-identical to the sequential scheduler's output. Each
// distinct Source is materialized once up front and the in-memory trace
// shared (read-only) by every worker, so an N-predictor sweep over one
// workload regenerates the trace once instead of N times and every cell
// takes the batched fast path. A job that panics (in Make, the predictor,
// or the source) yields a Result whose Err field records the panic; the
// other jobs are unaffected. Under a canceled context the completed
// prefix is returned, with context.Canceled-tagged Err fields on the
// remaining slots; with a journal attached, completed cells are
// checkpointed and served from cache on a resumed run.
//
//bimode:deterministic
func (s *Scheduler) RunAll(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	seq := 0
	if s.journal != nil {
		seq = s.journal.beginRun()
	}
	shared, matErrs, owned := s.sharedSources(jobs)
	if s.arena != nil {
		// The internally materialized traces are dead once the results
		// are computed — jobs keep their original Sources and Results
		// hold only counts — so their record buffers go back to the
		// arena for the next RunAll.
		defer s.arena.recycle(owned)
	}
	if s.interleaving() {
		s.runAllInterleaved(jobs, shared, matErrs, results)
		return results
	}
	errs := s.DoContext(len(jobs), func(ctx context.Context, i int) error {
		if s.journal != nil {
			if res, ok := s.journal.cached(seq, i, shared[i]); ok {
				results[i] = res
				return nil
			}
		}
		if matErrs[i] != nil {
			return matErrs[i]
		}
		res, err := s.runCell(ctx, jobs[i], shared[i], seq, i)
		if err != nil {
			return err
		}
		results[i] = res
		if s.journal != nil {
			s.journal.recordCell(seq, i, res)
		}
		return nil
	})
	for i, err := range errs {
		if err == nil {
			continue
		}
		results[i] = Result{Err: err, Workload: safeSourceName(jobs[i].Source)}
	}
	return results
}

// batchRecords is the cooperative-cancellation granularity of a RunAll
// cell: between consecutive sub-batches the cell re-checks its context
// and (when journaling parts) snapshots the predictor. Running a record
// slice as consecutive sub-slices is state-identical to one call for
// every engine tier — RunBatch, Step and Predict/Update all advance the
// same per-record state machine — so the chunked loop returns exactly
// what Run would (TestRunCellChunkEquivalence pins it).
const batchRecords = 1 << 16

// runCell simulates one RunAll cell. Without a cancelable context or a
// journal it is exactly Run; with them it runs the materialized records
// in batchRecords chunks, checking the context between chunks and
// journaling mid-cell snapshots for predictors that implement
// predictor.Snapshotter. A usable journaled part (matching predictor,
// workload and cursor) restores the predictor and skips the records
// already simulated.
//
//bimode:deterministic
func (s *Scheduler) runCell(ctx context.Context, job Job, src trace.Source, seq, idx int) (Result, error) {
	b, batched := src.(trace.Batched)
	if !batched || (ctx.Done() == nil && s.journal == nil) {
		return Run(job.Make(), src), nil
	}
	p := job.Make()
	res := Result{
		Predictor: p.Name(),
		Workload:  src.Name(),
		CostBytes: predictor.CostBytes(p),
	}
	recs := b.Records()
	pos, miss := 0, 0

	partEvery := 0
	var snapper predictor.Snapshotter
	if s.journal != nil && s.journal.PartEvery > 0 {
		if sn, ok := p.(predictor.Snapshotter); ok {
			partEvery = s.journal.PartEvery
			snapper = sn
		}
	}
	if s.journal != nil {
		if part, ok := s.journal.part(seq, idx); ok && snapper != nil &&
			part.Predictor == res.Predictor && part.Workload == res.Workload &&
			part.Cursor > 0 && part.Cursor <= len(recs) {
			if err := snapper.RestoreSnapshot(part.Snap); err == nil {
				pos, miss = part.Cursor, part.Mispredicts
			} else {
				p.Reset() // a bad snapshot must not leave partial state behind
			}
		}
	}

	nextPart := len(recs) + 1
	if partEvery > 0 {
		nextPart = pos + partEvery
	}
	for pos < len(recs) {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		end := pos + batchRecords
		if end > nextPart {
			end = nextPart
		}
		if end > len(recs) {
			end = len(recs)
		}
		miss += runRecords(p, recs[pos:end])
		pos = end
		if pos == nextPart && pos < len(recs) {
			s.journal.recordPart(partRecord{
				Seq:         seq,
				Idx:         idx,
				Predictor:   res.Predictor,
				Workload:    res.Workload,
				Cursor:      pos,
				Mispredicts: miss,
				Snap:        snapper.Snapshot(nil),
			})
			nextPart = pos + partEvery
		}
	}
	res.Branches = len(recs)
	res.Mispredicts = miss
	return res, nil
}

// sameArray reports whether two record slices share a backing array.
func sameArray(a, b []trace.Record) bool {
	return cap(a) > 0 && cap(b) > 0 && &a[:cap(a)][0] == &b[:cap(b)][0]
}

// safeSourceName names a source for an error-carrying Result without
// trusting the source not to panic again.
func safeSourceName(src trace.Source) (name string) {
	if src == nil {
		return ""
	}
	defer func() { _ = recover() }()
	return src.Name()
}

// sharedSources maps each job to a materialized trace, deduplicating
// identical sources by interface identity; the distinct materializations
// themselves run through the scheduler (and therefore observe the
// cancellation context and per-job deadline cooperatively, via
// trace.MaterializeContext). Sources whose dynamic type is not comparable
// cannot be used as memo keys and are materialized individually. A source
// whose materialization panics or fails gets a nil slot and a per-job
// error for every job that shares it.
//
// The third return value lists the Memory traces this call created (as
// opposed to *trace.Memory sources passed through): the ones whose
// buffers the caller may recycle once the results no longer need them.
// With an arena attached the materializations drain into recycled
// buffers, so a scheduler running suite after suite stops allocating
// trace storage at all.
func (s *Scheduler) sharedSources(jobs []Job) ([]trace.Source, []error, []*trace.Memory) {
	out := make([]trace.Source, len(jobs))
	jobErrs := make([]error, len(jobs))

	// First pass, sequential: resolve already-materialized sources and
	// group the rest into distinct materialization slots.
	type slot struct {
		src  trace.Source
		idxs []int
	}
	var slots []*slot
	var memo map[trace.Source]*slot
	for i, j := range jobs {
		src := j.Source
		if src == nil {
			continue
		}
		if m, ok := src.(*trace.Memory); ok {
			out[i] = m
			continue
		}
		if !reflect.TypeOf(src).Comparable() {
			slots = append(slots, &slot{src: src, idxs: []int{i}})
			continue
		}
		if sl, ok := memo[src]; ok {
			sl.idxs = append(sl.idxs, i)
			continue
		}
		sl := &slot{src: src, idxs: []int{i}}
		if memo == nil {
			memo = map[trace.Source]*slot{}
		}
		memo[src] = sl
		slots = append(slots, sl)
	}

	// Second pass: materialize the distinct sources through the pool,
	// draining into arena buffers when the scheduler has one.
	mems := make([]*trace.Memory, len(slots))
	matErrs := s.DoContext(len(slots), func(ctx context.Context, k int) error {
		var buf []trace.Record
		if s.arena != nil {
			buf = s.arena.get()
		}
		m, err := trace.MaterializeIntoContext(ctx, slots[k].src, buf)
		if err != nil {
			if s.arena != nil {
				s.arena.put(buf)
			}
			return err
		}
		if s.arena != nil && !sameArray(m.Records(), buf) {
			// The source outgrew the arena buffer (or there was none):
			// the drain allocated its own array, so the unused buffer
			// goes straight back.
			s.arena.put(buf)
		}
		mems[k] = m
		return nil
	})
	for k, sl := range slots {
		for _, i := range sl.idxs {
			out[i] = mems[k]
			jobErrs[i] = matErrs[k]
		}
	}
	return out, jobErrs, mems
}

// SweepGshare simulates every gshare history length 0..indexBits at a
// fixed second-level size over all sources through the scheduler. The
// returned matrix is indexed [historyBits][source].
func (s *Scheduler) SweepGshare(indexBits int, sources []trace.Source) [][]Result {
	return sweepGshare(s, indexBits, sources)
}

// FindBestGshare is the scheduler-routed form of the package-level
// FindBestGshare.
func (s *Scheduler) FindBestGshare(indexBits int, sources []trace.Source) BestGshare {
	return PickBestGshare(indexBits, s.SweepGshare(indexBits, sources))
}
