package sim_test

// Determinism oracle and pool-contract tests for the suite scheduler.
// NewScheduler(0) is the sequential reference path; these tests prove the
// pooled path equal to it job for job (the experiment-level artifacts —
// golden figures, report JSON, CSV bytes — are proven byte-identical in
// internal/experiments). The whole file runs under -race in CI's
// test-parallel job.

import (
	"expvar"
	"sync"
	"sync/atomic"
	"testing"

	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/trace"
	"bimode/internal/zoo"
)

// oracleJobs builds the full zoo-spec x suite-workload grid the oracle
// compares across schedulers.
func oracleJobs(t *testing.T) []sim.Job {
	t.Helper()
	traces := suiteTraces()
	if len(traces) != 14 {
		t.Fatalf("expected the 14 suite workloads, got %d", len(traces))
	}
	var jobs []sim.Job
	for _, spec := range zoo.Known() {
		spec := spec
		for _, mem := range traces {
			jobs = append(jobs, sim.Job{
				Make:   func() predictor.Predictor { return zoo.MustNew(spec) },
				Source: mem,
			})
		}
	}
	return jobs
}

// TestSchedulerOracle is the determinism oracle: for every registered
// predictor spec over all 14 suite workloads, the pooled scheduler's
// RunAll must return exactly the sequential scheduler's results, in the
// same order. Any scheduling-dependent state shared between jobs shows up
// here as a diff (and as a race under -race).
func TestSchedulerOracle(t *testing.T) {
	jobs := oracleJobs(t)
	want := sim.NewScheduler(0).RunAll(jobs)
	got := sim.NewScheduler(8).RunAll(jobs)
	if len(got) != len(want) {
		t.Fatalf("parallel returned %d results, sequential %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("job %d: parallel %+v != sequential %+v", i, got[i], want[i])
		}
	}
}

// panicSource panics as soon as the simulation touches it.
type panicSource struct{}

func (panicSource) Name() string         { return "panic-source" }
func (panicSource) StaticCount() int     { return 1 }
func (panicSource) Stream() trace.Stream { panic("stream exploded") }

// TestRunAllPanicCapture checks the panic contract on both scheduler
// paths: a panicking constructor and a panicking source each surface as
// Result.Err on their own slot, while the surrounding healthy jobs
// complete normally and identically.
func TestRunAllPanicCapture(t *testing.T) {
	mem := suiteTraces()[0]
	healthy := sim.Job{
		Make:   func() predictor.Predictor { return zoo.MustNew("bimode:b=8") },
		Source: mem,
	}
	jobs := []sim.Job{
		healthy,
		{Make: func() predictor.Predictor { panic("bad constructor") }, Source: mem},
		healthy,
		{Make: healthy.Make, Source: panicSource{}},
		healthy,
	}
	ref := sim.NewScheduler(0).RunAll([]sim.Job{healthy})[0]
	if ref.Err != nil {
		t.Fatalf("healthy reference job failed: %v", ref.Err)
	}
	for _, workers := range []int{0, 8} {
		res := sim.NewScheduler(workers).RunAll(jobs)
		for _, i := range []int{0, 2, 4} {
			if res[i] != ref {
				t.Errorf("workers=%d: healthy job %d = %+v, want %+v", workers, i, res[i], ref)
			}
		}
		if res[1].Err == nil || res[1].Branches != 0 {
			t.Errorf("workers=%d: constructor panic not captured: %+v", workers, res[1])
		}
		if res[3].Err == nil {
			t.Errorf("workers=%d: source panic not captured: %+v", workers, res[3])
		}
		if res[3].Workload != "panic-source" {
			t.Errorf("workers=%d: panicking job workload = %q, want panic-source", workers, res[3].Workload)
		}
	}
}

// TestDoPanicKeepsRemainingTasks checks that a panicking task only poisons
// its own slot: every other task still runs.
func TestDoPanicKeepsRemainingTasks(t *testing.T) {
	for _, workers := range []int{0, 4} {
		ran := make([]bool, 9)
		errs := sim.NewScheduler(workers).Do(len(ran), func(i int) error {
			ran[i] = true
			if i == 4 {
				panic("task 4")
			}
			return nil
		})
		for i, ok := range ran {
			if !ok {
				t.Errorf("workers=%d: task %d never ran", workers, i)
			}
			if (errs[i] != nil) != (i == 4) {
				t.Errorf("workers=%d: task %d err = %v", workers, i, errs[i])
			}
		}
	}
}

// TestDoSequentialOrder pins the reference path's contract: workers=0 runs
// tasks inline in index order on the calling goroutine.
func TestDoSequentialOrder(t *testing.T) {
	var order []int
	sim.NewScheduler(0).Do(16, func(i int) error {
		order = append(order, i) // no lock: inline execution is the contract
		return nil
	})
	for i, got := range order {
		if got != i {
			t.Fatalf("sequential order %v, want 0..15 ascending", order)
		}
	}
	if len(order) != 16 {
		t.Fatalf("ran %d of 16 tasks", len(order))
	}
}

// TestDoBoundsConcurrency checks the pool never runs more tasks at once
// than its worker count.
func TestDoBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var gate sync.WaitGroup
	gate.Add(workers) // released once `workers` tasks are provably concurrent
	sim.NewScheduler(workers).Do(24, func(i int) error {
		n := cur.Add(1)
		defer cur.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		if i < workers {
			gate.Done()
			gate.Wait() // force full pool occupancy at least once
		}
		return nil
	})
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent tasks, pool width %d", p, workers)
	} else if p < workers {
		t.Errorf("pool never reached full width: peak %d of %d", p, workers)
	}
}

// TestSchedulerExpvars checks the progress counters on both paths: after a
// fan-out, in-flight returns to its prior level and completed advances by
// the task count.
func TestSchedulerExpvars(t *testing.T) {
	// The scheduler counters are sharded internally and published as an
	// expvar.Func summing the shards.
	inflight := func() int64 { return expvar.Get("sim_sched_jobs_inflight").(expvar.Func)().(int64) }
	completed := func() int64 { return expvar.Get("sim_sched_jobs_completed").(expvar.Func)().(int64) }
	for _, workers := range []int{0, 4} {
		baseIn, baseDone := inflight(), completed()
		sim.NewScheduler(workers).Do(10, func(int) error { return nil })
		if got := inflight(); got != baseIn {
			t.Errorf("workers=%d: in-flight %d after Do, want %d", workers, got, baseIn)
		}
		if got := completed(); got != baseDone+10 {
			t.Errorf("workers=%d: completed %d after Do, want %d", workers, got, baseDone+10)
		}
	}
}

// TestNewSchedulerClamp pins the constructor contract: negative widths are
// the sequential scheduler, and Sequential() reflects exactly workers==0.
func TestNewSchedulerClamp(t *testing.T) {
	if s := sim.NewScheduler(-3); s.Workers() != 0 || !s.Sequential() {
		t.Errorf("NewScheduler(-3) = %d workers, sequential=%v", s.Workers(), s.Sequential())
	}
	if s := sim.NewScheduler(5); s.Workers() != 5 || s.Sequential() {
		t.Errorf("NewScheduler(5) = %d workers, sequential=%v", s.Workers(), s.Sequential())
	}
	if s := sim.DefaultScheduler(); s.Workers() < 1 {
		t.Errorf("DefaultScheduler has %d workers", s.Workers())
	}
}
