package sim

import (
	"fmt"

	"bimode/internal/core"
	"bimode/internal/predictor"
	"bimode/internal/trace"
)

// Interleaved RunAll dispatch: on the plain pooled scheduler, adjacent
// jobs whose predictors are large bi-mode instances are stepped in
// lockstep through core.RunBatchInterleaved instead of one after the
// other, so each worker core overlaps several independent table-walk
// chains (the rationale is in core/interleave.go). The dispatch is an
// instruction-schedule change only — lane results are exactly what
// per-job Run calls produce — and it never engages on the sequential
// reference path, so the determinism oracle keeps its ground truth.

const (
	// interleaveLanes is how many jobs one worker steps in lockstep: enough
	// independent load chains to cover a table-walk miss, few enough that
	// the lane registers stay in L1.
	interleaveLanes = 4
	// interleaveMinBytes gates lane formation on the predictor's packed
	// table footprint. Small tables live in the fast cache levels where
	// the single-chain kernel is already throughput-bound, and
	// interleaving only adds loop overhead; the win is hiding load
	// latency, which needs tables that miss.
	interleaveMinBytes = 1 << 18
)

// interleaving reports whether RunAll may use the interleaved dispatch:
// a pooled scheduler with none of the fault-tolerance attachments. The
// chunked-cancellation and journaling paths need per-batch control of a
// single predictor, which lockstep execution does not give.
func (s *Scheduler) interleaving() bool {
	return s.workers > 0 && s.ctx == nil && s.journal == nil && s.policy == Policy{}
}

// interleaveFootprint returns the packed in-memory table footprint that
// gates lane formation.
func interleaveFootprint(cfg core.Config) int {
	return 1<<uint(cfg.ChoiceBits) + 1<<uint(cfg.BankBits)
}

// runAllInterleaved is RunAll's job loop for the interleaving scheduler:
// jobs are dispatched to the pool in units of interleaveLanes, each unit
// runs its eligible jobs through the lockstep kernel and the rest through
// the ordinary Run, and every job still gets individual panic recovery
// and its own result slot.
func (s *Scheduler) runAllInterleaved(jobs []Job, shared []trace.Source, matErrs []error, results []Result) {
	n := len(jobs)
	units := (n + interleaveLanes - 1) / interleaveLanes
	errs := s.Do(units, func(u int) error {
		lo, hi := u*interleaveLanes, (u+1)*interleaveLanes
		if hi > n {
			hi = n
		}
		var lanes []core.Lane
		var laneIdx []int
		for i := lo; i < hi; i++ {
			if matErrs[i] != nil {
				results[i] = Result{Err: matErrs[i], Workload: safeSourceName(jobs[i].Source)}
				continue
			}
			p, err := safeMake(jobs[i], i, n)
			if err != nil {
				results[i] = Result{Err: err, Workload: safeSourceName(jobs[i].Source)}
				continue
			}
			if bm, ok := p.(*core.BiMode); ok {
				if b, ok := shared[i].(trace.Batched); ok && interleaveFootprint(bm.Config()) >= interleaveMinBytes {
					lanes = append(lanes, core.Lane{P: bm, Recs: b.Records()})
					laneIdx = append(laneIdx, i)
					continue
				}
			}
			results[i] = runSafe(p, shared[i], i, n)
		}
		switch {
		case len(lanes) >= 2:
			misses, err := runLanes(lanes)
			for k, i := range laneIdx {
				if err != nil {
					// The lanes' table state is unspecified after a
					// recovered panic; rebuild each job and run it alone.
					if p, mkErr := safeMake(jobs[i], i, n); mkErr == nil {
						results[i] = runSafe(p, shared[i], i, n)
					} else {
						results[i] = Result{Err: mkErr, Workload: safeSourceName(jobs[i].Source)}
					}
					continue
				}
				results[i] = Result{
					Predictor:   lanes[k].P.Name(),
					Workload:    shared[i].Name(),
					CostBytes:   predictor.CostBytes(lanes[k].P),
					Branches:    len(lanes[k].Recs),
					Mispredicts: misses[k],
				}
			}
		case len(lanes) == 1:
			i := laneIdx[0]
			results[i] = runSafe(lanes[0].P, shared[i], i, n)
		}
		// A unit is one pool task but hi-lo jobs; keep the process-wide
		// completed counter counting jobs, as on every other path. (Do
		// itself adds 1 for the unit.)
		schedCompleted.add(u, int64(hi-lo-1))
		return nil
	})
	// Belt and braces: the unit bodies recover everything themselves, but
	// should one somehow fail wholesale, tag its jobs instead of leaving
	// silently empty result slots.
	for u, err := range errs {
		if err == nil {
			continue
		}
		lo, hi := u*interleaveLanes, (u+1)*interleaveLanes
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			if results[i].Err == nil && results[i].Predictor == "" {
				results[i] = Result{Err: err, Workload: safeSourceName(jobs[i].Source)}
			}
		}
	}
}

// runLanes runs the lockstep kernel with panic containment: a recovered
// panic fails the whole unit (the caller reruns its jobs individually).
func runLanes(lanes []core.Lane) (misses []int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: interleaved unit panicked: %v", r)
		}
	}()
	return core.RunBatchInterleaved(lanes), nil
}

// safeMake invokes a job's constructor with the panic contract of the
// ordinary RunAll path.
func safeMake(job Job, i, n int) (p predictor.Predictor, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = recoveredErr(r, i, n)
		}
	}()
	return job.Make(), nil
}

// runSafe is Run with the per-job panic recovery the pooled dispatch
// owes every cell.
func runSafe(p predictor.Predictor, src trace.Source, i, n int) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			res = Result{Err: recoveredErr(r, i, n), Workload: safeSourceName(src)}
		}
	}()
	return Run(p, src)
}

// recoveredErr formats a recovered panic value like Scheduler.attempt
// does, keeping error-typed panics unwrappable.
func recoveredErr(r any, i, n int) error {
	if e, ok := r.(error); ok {
		return fmt.Errorf("sim: job %d of %d panicked: %w", i, n, e)
	}
	return fmt.Errorf("sim: job %d of %d panicked: %v", i, n, r)
}
