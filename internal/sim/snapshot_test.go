package sim_test

// Snapshot property tests: for every registered predictor implementing
// predictor.Snapshotter, serializing mid-run and restoring into a fresh
// instance must be undetectable — the restored predictor predicts
// Step-for-Step identically to the uninterrupted one from the cut point
// on. This is the correctness backbone of mid-cell checkpoint resume
// (Scheduler.runCell restores a journaled part and continues).

import (
	"bytes"
	"strings"
	"testing"

	"bimode/internal/predictor"
	"bimode/internal/zoo"
)

// snapshotterSpecs returns the registered specs whose predictors
// implement Snapshotter, failing the test if one of the families the
// checkpoint machinery documents (bi-mode, tri-mode, gshare, smith) has
// lost the capability.
func snapshotterSpecs(t *testing.T) []string {
	t.Helper()
	want := map[string]bool{"bimode": false, "trimode": false, "gshare": false, "smith": false}
	var specs []string
	for _, spec := range zoo.Known() {
		if _, ok := zoo.MustNew(spec).(predictor.Snapshotter); !ok {
			continue
		}
		specs = append(specs, spec)
		fam, _, _ := strings.Cut(spec, ":")
		if _, tracked := want[fam]; tracked {
			want[fam] = true
		}
	}
	for fam, seen := range want {
		if !seen {
			t.Errorf("family %q no longer implements predictor.Snapshotter", fam)
		}
	}
	return specs
}

func TestSnapshotRoundTripEquivalence(t *testing.T) {
	recs := suiteTraces()[0].Records()
	cut := len(recs) / 2
	for _, spec := range snapshotterSpecs(t) {
		t.Run(spec, func(t *testing.T) {
			ref := zoo.MustNew(spec)
			for _, r := range recs[:cut] {
				ref.Predict(r.PC)
				ref.Update(r.PC, r.Taken)
			}
			snap := ref.(predictor.Snapshotter).Snapshot(nil)

			restored := zoo.MustNew(spec)
			if err := restored.(predictor.Snapshotter).RestoreSnapshot(snap); err != nil {
				t.Fatalf("RestoreSnapshot: %v", err)
			}
			// Restoring must not consume or mutate the snapshot bytes: the
			// journal may serve the same part to a retried attempt.
			if again := restored.(predictor.Snapshotter).Snapshot(nil); !bytes.Equal(again, snap) {
				t.Fatalf("snapshot of the restored predictor differs from the snapshot it was restored from")
			}
			for i, r := range recs[cut:] {
				want := ref.Predict(r.PC)
				got := restored.Predict(r.PC)
				if got != want {
					t.Fatalf("record %d after cut: restored predicted %v, uninterrupted predicted %v", i, got, want)
				}
				ref.Update(r.PC, r.Taken)
				restored.Update(r.PC, r.Taken)
			}
			final := ref.(predictor.Snapshotter).Snapshot(nil)
			if got := restored.(predictor.Snapshotter).Snapshot(nil); !bytes.Equal(got, final) {
				t.Fatalf("final state diverged after identical suffix")
			}
		})
	}
}

// TestSnapshotRestoreRejectsForeign proves a snapshot can only land in an
// identically configured instance: every (source spec, destination spec)
// pair with differing specs must refuse the restore, and the refused
// destination must be rewindable with Reset (what runCell does).
func TestSnapshotRestoreRejectsForeign(t *testing.T) {
	specs := snapshotterSpecs(t)
	recs := suiteTraces()[0].Records()
	snaps := make(map[string][]byte, len(specs))
	for _, spec := range specs {
		p := zoo.MustNew(spec)
		for _, r := range recs[:2000] {
			p.Predict(r.PC)
			p.Update(r.PC, r.Taken)
		}
		snaps[spec] = p.(predictor.Snapshotter).Snapshot(nil)
	}
	for _, src := range specs {
		for _, dst := range specs {
			if src == dst {
				continue
			}
			p := zoo.MustNew(dst)
			if err := p.(predictor.Snapshotter).RestoreSnapshot(snaps[src]); err == nil {
				t.Errorf("%s accepted a snapshot from %s", dst, src)
			}
		}
	}
}

func TestSnapshotRestoreRejectsCorruption(t *testing.T) {
	for _, spec := range snapshotterSpecs(t) {
		p := zoo.MustNew(spec)
		snap := p.(predictor.Snapshotter).Snapshot(nil)
		for _, tc := range []struct {
			name string
			data []byte
		}{
			{"empty", nil},
			{"truncated", snap[:len(snap)/2]},
			{"trailing", append(append([]byte(nil), snap...), 0x00)},
		} {
			q := zoo.MustNew(spec)
			if err := q.(predictor.Snapshotter).RestoreSnapshot(tc.data); err == nil {
				t.Errorf("%s: RestoreSnapshot accepted %s snapshot", spec, tc.name)
			}
		}
	}
}
