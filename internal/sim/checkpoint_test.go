package sim_test

// Checkpoint/resume tests: the Journal must make a killed suite
// resumable with Result-for-Result identical output, and must never
// trust a checkpoint entry that does not match the live plan.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/zoo"
)

// TestKillResumeEquivalence is the headline acceptance test: over the
// full zoo-spec x suite-workload grid, a run killed partway (cancellation
// after a fixed number of completed cells) and then resumed from its
// checkpoint produces exactly the Results — and exactly the rendered
// result lines — of an uninterrupted run.
func TestKillResumeEquivalence(t *testing.T) {
	jobs := oracleJobs(t)
	want := sim.NewScheduler(0).RunAll(jobs)

	path := filepath.Join(t.TempDir(), "suite.ckpt")
	const key = "kill-resume-grid-v1"

	// First run: journaled, canceled after 40 completed cells.
	j1, err := sim.CreateJournal(path, key)
	if err != nil {
		t.Fatalf("CreateJournal: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completed atomic.Int64
	j1.OnCell = func(seq, idx int, res sim.Result) {
		if completed.Add(1) == 40 {
			cancel()
		}
	}
	partial := sim.NewScheduler(8).WithContext(ctx).WithJournal(j1).RunAll(jobs)
	if err := j1.Close(); err != nil {
		t.Fatalf("closing journal after kill: %v", err)
	}
	sawCancel := false
	for i, r := range partial {
		switch {
		case r.Err == nil:
			if r != want[i] {
				t.Fatalf("partial run cell %d: %+v != reference %+v", i, r, want[i])
			}
		case errors.Is(r.Err, context.Canceled):
			sawCancel = true
		default:
			t.Fatalf("partial run cell %d: unexpected error %v", i, r.Err)
		}
	}
	if !sawCancel {
		t.Fatalf("the kill did not interrupt the run; the resume leg would prove nothing")
	}

	// Resume: the journal must serve the completed cells and the resumed
	// output must be indistinguishable from an uninterrupted run.
	j2, err := sim.ResumeJournal(path, key)
	if err != nil {
		t.Fatalf("ResumeJournal: %v", err)
	}
	defer j2.Close()
	cached := j2.Cells()
	if cached == 0 || cached >= len(jobs) {
		t.Fatalf("journal cached %d cells, want a strict partial of %d", cached, len(jobs))
	}
	var rerun atomic.Int64
	j2.OnCell = func(int, int, sim.Result) { rerun.Add(1) }
	got := sim.NewScheduler(8).WithJournal(j2).RunAll(jobs)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("resumed cell %d: %+v != uninterrupted %+v", i, got[i], want[i])
		}
		if got[i].String() != want[i].String() {
			t.Errorf("resumed cell %d renders differently", i)
		}
	}
	if int(rerun.Load()) != len(jobs)-cached {
		t.Errorf("resume re-ran %d cells, want %d (total %d minus %d cached)",
			rerun.Load(), len(jobs)-cached, len(jobs), cached)
	}
}

// countingSnap wraps a Snapshotter predictor with only the base
// Predict/Update protocol (hiding the inner fast-path capabilities) so a
// test can count exactly how many records a resumed cell simulates, and
// trigger a deterministic mid-cell cancel at a chosen record.
type countingSnap struct {
	inner    predictor.Predictor
	predicts *atomic.Int64
	cancelAt int64
	cancel   context.CancelFunc
}

func (c *countingSnap) Name() string { return c.inner.Name() }
func (c *countingSnap) Predict(pc uint64) bool {
	if n := c.predicts.Add(1); c.cancel != nil && n == c.cancelAt {
		c.cancel()
	}
	return c.inner.Predict(pc)
}
func (c *countingSnap) Update(pc uint64, taken bool) { c.inner.Update(pc, taken) }
func (c *countingSnap) Reset()                       { c.inner.Reset() }
func (c *countingSnap) CostBits() int                { return c.inner.CostBits() }
func (c *countingSnap) Snapshot(dst []byte) []byte {
	return c.inner.(predictor.Snapshotter).Snapshot(dst)
}
func (c *countingSnap) RestoreSnapshot(data []byte) error {
	return c.inner.(predictor.Snapshotter).RestoreSnapshot(data)
}

// TestMidCellPartResume proves the fine-grained leg of checkpointing: a
// cell killed mid-trace resumes from its last journaled part snapshot
// instead of record zero, and still finishes with exactly the
// uninterrupted cell's counts.
func TestMidCellPartResume(t *testing.T) {
	mem := suiteTraces()[0]
	const spec = "bimode:b=11"
	const partEvery = 4096
	want := sim.Run(zoo.MustNew(spec), mem)

	path := filepath.Join(t.TempDir(), "cell.ckpt")
	const key = "mid-cell-v1"
	j1, err := sim.CreateJournal(path, key)
	if err != nil {
		t.Fatalf("CreateJournal: %v", err)
	}
	j1.PartEvery = partEvery
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var firstRun atomic.Int64
	jobs := []sim.Job{{
		Make: func() predictor.Predictor {
			return &countingSnap{
				inner:    zoo.MustNew(spec),
				predicts: &firstRun,
				cancelAt: int64(2*partEvery + 1000),
				cancel:   cancel,
			}
		},
		Source: mem,
	}}
	partial := sim.NewScheduler(0).WithContext(ctx).WithJournal(j1).RunAll(jobs)
	if err := j1.Close(); err != nil {
		t.Fatalf("closing journal: %v", err)
	}
	if !errors.Is(partial[0].Err, context.Canceled) {
		t.Fatalf("first run was not killed mid-cell: %+v", partial[0])
	}

	j2, err := sim.ResumeJournal(path, key)
	if err != nil {
		t.Fatalf("ResumeJournal: %v", err)
	}
	defer j2.Close()
	j2.PartEvery = partEvery
	var resumed atomic.Int64
	jobs[0].Make = func() predictor.Predictor {
		return &countingSnap{inner: zoo.MustNew(spec), predicts: &resumed}
	}
	got := sim.NewScheduler(0).WithJournal(j2).RunAll(jobs)
	if got[0].Err != nil {
		t.Fatalf("resumed cell failed: %v", got[0].Err)
	}
	if got[0] != want {
		t.Fatalf("resumed cell %+v != uninterrupted %+v", got[0], want)
	}
	// The kill landed past the second part boundary, so the resume must
	// have restored a snapshot and skipped at least 2*partEvery records.
	if resumed.Load() >= int64(mem.Len())-2*partEvery {
		t.Errorf("resume simulated %d of %d records; the part snapshot was not used", resumed.Load(), mem.Len())
	}
	if resumed.Load() == 0 {
		t.Errorf("resume simulated nothing; the cell cannot have been journaled as complete")
	}
}

// TestJournalRejectsKeyMismatch: a checkpoint written under one plan key
// must refuse to resume under another.
func TestJournalRejectsKeyMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.ckpt")
	j, err := sim.CreateJournal(path, "plan-a")
	if err != nil {
		t.Fatalf("CreateJournal: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := sim.ResumeJournal(path, "plan-b"); err == nil || !strings.Contains(err.Error(), "different run") {
		t.Fatalf("ResumeJournal under wrong key: err %v, want key-mismatch error", err)
	}
}

// TestJournalToleratesTornTrailingLine: a kill mid-write leaves a
// truncated final line; resume must keep every whole line and drop only
// the torn one.
func TestJournalToleratesTornTrailingLine(t *testing.T) {
	mem := suiteTraces()[0]
	path := filepath.Join(t.TempDir(), "torn.ckpt")
	const key = "torn-v1"
	j, err := sim.CreateJournal(path, key)
	if err != nil {
		t.Fatalf("CreateJournal: %v", err)
	}
	jobs := []sim.Job{
		{Make: func() predictor.Predictor { return zoo.MustNew("smith:a=12") }, Source: mem},
		{Make: func() predictor.Predictor { return zoo.MustNew("bimode:b=11") }, Source: mem},
	}
	sim.NewScheduler(0).WithJournal(j).RunAll(jobs)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("reopening checkpoint: %v", err)
	}
	if _, err := f.WriteString(`{"cell":{"seq":0,"idx":7,"pred`); err != nil {
		t.Fatalf("appending torn line: %v", err)
	}
	f.Close()

	j2, err := sim.ResumeJournal(path, key)
	if err != nil {
		t.Fatalf("ResumeJournal over torn trailing line: %v", err)
	}
	defer j2.Close()
	if j2.Cells() != 2 {
		t.Fatalf("resumed journal holds %d cells, want 2", j2.Cells())
	}
}

// TestJournalRejectsDamage: a torn header or a torn interior line is
// corruption, not kill residue, and an empty file is not a checkpoint.
func TestJournalRejectsDamage(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"empty", ""},
		{"torn header", `{"v":1,"key":"d`},
		{"torn interior", "{\"v\":1,\"key\":\"damage-v1\"}\n{\"cell\":{\"seq\"\n{\"cell\":{\"seq\":0,\"idx\":1,\"predictor\":\"x\",\"workload\":\"y\",\"cost_bytes\":1,\"branches\":1,\"mispredicts\":0}}\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "bad.ckpt")
			if err := os.WriteFile(path, []byte(tc.body), 0o644); err != nil {
				t.Fatalf("writing fixture: %v", err)
			}
			if _, err := sim.ResumeJournal(path, "damage-v1"); err == nil {
				t.Fatalf("ResumeJournal accepted a damaged checkpoint")
			}
		})
	}
}

// TestJournalConcurrentSessions pins the one-writer-per-journal contract
// (DESIGN.md §11): a Journal serializes appends from the worker
// goroutines of ONE scheduler, but nothing coordinates two schedulers
// sharing a file — so concurrent sessions must each own a private
// journal. This test runs several sessions in parallel under -race, each
// with its own journal and its own mid-run kill, then resumes every
// session concurrently and demands per-session results identical to an
// uninterrupted control. Cross-session interference of any kind — shared
// state in the journal layer, cache slots leaking between files —
// surfaces here as a diff or a race report.
func TestJournalConcurrentSessions(t *testing.T) {
	traces := suiteTraces()
	const sessions = 4
	dir := t.TempDir()

	type session struct {
		path string
		key  string
		jobs []sim.Job
		want []sim.Result
	}
	specs := []string{"smith:a=12", "bimode:b=11", "gshare:i=12,h=12", "trimode:b=10"}
	svs := make([]*session, sessions)
	for i := range svs {
		spec := specs[i%len(specs)]
		var jobs []sim.Job
		for _, mem := range traces[:6] {
			mem := mem
			jobs = append(jobs, sim.Job{
				Make:   func() predictor.Predictor { return zoo.MustNew(spec) },
				Source: mem,
			})
		}
		svs[i] = &session{
			path: filepath.Join(dir, spec[:strings.IndexByte(spec, ':')]+".ckpt"),
			key:  "session-" + spec,
			jobs: jobs,
			want: sim.NewScheduler(0).RunAll(jobs),
		}
	}

	// Phase 1: all sessions journal concurrently, each killed after a few
	// completed cells of its own (a per-session OnCell, not a global one).
	var wg sync.WaitGroup
	for _, sv := range svs {
		sv := sv
		wg.Add(1)
		go func() {
			defer wg.Done()
			j, err := sim.CreateJournal(sv.path, sv.key)
			if err != nil {
				t.Errorf("%s: CreateJournal: %v", sv.key, err)
				return
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var n atomic.Int64
			j.OnCell = func(int, int, sim.Result) {
				if n.Add(1) == 3 {
					cancel()
				}
			}
			sim.NewScheduler(4).WithContext(ctx).WithJournal(j).RunAll(sv.jobs)
			if err := j.Close(); err != nil {
				t.Errorf("%s: Close: %v", sv.key, err)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Phase 2: all sessions resume concurrently; every one must land on
	// its own uninterrupted results, with at least one cell served from
	// its own cache (proof the right file fed the right session).
	for _, sv := range svs {
		sv := sv
		wg.Add(1)
		go func() {
			defer wg.Done()
			j, err := sim.ResumeJournal(sv.path, sv.key)
			if err != nil {
				t.Errorf("%s: ResumeJournal: %v", sv.key, err)
				return
			}
			defer j.Close()
			if j.Cells() == 0 {
				t.Errorf("%s: resumed journal is empty; the kill leg journaled nothing", sv.key)
				return
			}
			got := sim.NewScheduler(4).WithJournal(j).RunAll(sv.jobs)
			for i := range sv.want {
				if got[i] != sv.want[i] {
					t.Errorf("%s cell %d: resumed %+v != uninterrupted %+v", sv.key, i, got[i], sv.want[i])
				}
			}
		}()
	}
	wg.Wait()
}

// TestJournalIgnoresMismatchedCell: a cached cell whose workload does not
// match the live job is re-run, never served.
func TestJournalIgnoresMismatchedCell(t *testing.T) {
	traces := suiteTraces()
	memA, memB := traces[0], traces[1]
	path := filepath.Join(t.TempDir(), "swap.ckpt")
	const key = "swap-v1"
	j, err := sim.CreateJournal(path, key)
	if err != nil {
		t.Fatalf("CreateJournal: %v", err)
	}
	mk := func() predictor.Predictor { return zoo.MustNew("bimode:b=11") }
	sim.NewScheduler(0).WithJournal(j).RunAll([]sim.Job{{Make: mk, Source: memA}})
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Same key, but the job grid now runs workload B in slot 0: the cached
	// A cell must be ignored and B actually simulated.
	j2, err := sim.ResumeJournal(path, key)
	if err != nil {
		t.Fatalf("ResumeJournal: %v", err)
	}
	defer j2.Close()
	got := sim.NewScheduler(0).WithJournal(j2).RunAll([]sim.Job{{Make: mk, Source: memB}})
	want := sim.Run(mk(), memB)
	if got[0] != want {
		t.Fatalf("mismatched cache slot: got %+v, want freshly simulated %+v", got[0], want)
	}
}
