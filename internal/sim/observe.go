package sim

import (
	"context"
	"sort"
	"time"

	"bimode/internal/counter"
	"bimode/internal/predictor"
	"bimode/internal/trace"
)

// now is the clock the instrumented tier stamps Report timing with.
// It is a package-level hook rather than a direct time.Now call for two
// reasons: golden tests replace it to zero WallSeconds without
// special-casing, and the function-value indirection keeps the wall-clock
// read out of detlint's static call graph — timing metadata is the one
// sanctioned nondeterminism in a Report, and it never influences the
// simulation results themselves.
var now = time.Now

// ObserveOptions parameterizes an instrumented run. The zero value uses
// the defaults.
type ObserveOptions struct {
	// TopN bounds the H2P ranking (default 10; negative disables it).
	TopN int
}

// Observe is the instrumented simulation tier: it drives p over src with
// the same Predict/Update semantics as Run — identical predictions,
// identical final predictor state — while collecting the per-run metrics
// of a Report. It is a separate entry point, not a mode of Run, so the
// uninstrumented fast paths stay untouched and pay nothing for the
// capability; the differential test in observe_test.go pins the
// equivalence.
//
// Metrics degrade gracefully with the predictor's capabilities:
// interference classification needs predictor.Indexed (directly or via
// predictor.Probe), choice metrics need predictor.Probe with a steering
// structure; the H2P ranking and throughput need only the base interface.
func Observe(p predictor.Predictor, src trace.Source, opts ObserveOptions) *Report {
	rep, err := ObserveContext(context.Background(), p, src, opts)
	if err != nil {
		// Unreachable: the background context never cancels and the
		// instrumented loop has no other failure mode.
		panic(err)
	}
	return rep
}

// ObserveContext is Observe with cooperative cancellation: every 4096
// records the loop checks ctx and, if it is done, abandons the run and
// returns ctx's error instead of a report. With a non-cancelable context
// the check is skipped entirely and the run is identical to Observe.
func ObserveContext(ctx context.Context, p predictor.Predictor, src trace.Source, opts ObserveOptions) (*Report, error) {
	cancelable := ctx.Done() != nil
	rep := &Report{
		Predictor: p.Name(),
		Workload:  src.Name(),
		CostBytes: predictor.CostBytes(p),
	}
	topN := opts.TopN
	if topN == 0 {
		topN = 10
	}

	lookup := predictor.LookupOf(p)
	var inter *InterferenceMetrics
	var lastWriter []int32
	var choice *ChoiceMetrics
	if lookup != nil {
		if ix, ok := p.(predictor.Indexed); ok {
			inter = &InterferenceMetrics{Counters: ix.NumCounters()}
			lastWriter = make([]int32, ix.NumCounters())
			for i := range lastWriter {
				lastWriter[i] = -1
			}
		}
		if _, ok := p.(predictor.Probe); ok {
			choice = &ChoiceMetrics{}
		}
	}

	// Per-static state: occurrence/taken/miss counts, first-seen PC, and
	// the two-bit own-bias shadow counter the aliasing classification is
	// judged against.
	statics := src.StaticCount()
	if statics < 0 {
		statics = 0
	}
	counts := make([]int, statics)
	takens := make([]int, statics)
	misses := make([]int, statics)
	firstPC := make([]uint64, statics)
	shadow := make([]counter.State, statics)
	for i := range shadow {
		shadow[i] = counter.WeakTaken
	}

	st := src.Stream()
	start := now()
	for {
		if cancelable && rep.Branches&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		rec, ok := st.Next()
		if !ok {
			break
		}
		s := int(rec.Static)
		if counts[s] == 0 {
			firstPC[s] = rec.PC &^ (1 << 63)
		}

		var look predictor.Lookup
		if lookup != nil {
			look = lookup(rec.PC)
		}

		pred := p.Predict(rec.PC)
		miss := pred != rec.Taken
		shadowMiss := shadow[s].Taken2() != rec.Taken

		if inter != nil && look.CounterID >= 0 {
			writer := lastWriter[look.CounterID]
			switch {
			case writer < 0:
				inter.Cold++
			case writer != int32(rec.Static):
				inter.Aliased++
				if miss {
					inter.AliasedMispredicts++
				}
				switch {
				case miss && !shadowMiss:
					inter.Destructive++
				case !miss && shadowMiss:
					inter.Constructive++
				default:
					inter.Neutral++
				}
			}
			lastWriter[look.CounterID] = int32(rec.Static)
		}
		if choice != nil && look.HasChoice {
			choice.Branches++
			if look.ChoiceTaken == rec.Taken {
				choice.AgreeOutcome++
			}
			if pred == look.ChoiceTaken {
				choice.PredictionAgrees++
			}
			if look.ChoiceTaken != rec.Taken && !miss {
				choice.PartialHold++
			}
			if look.Bank >= 0 {
				for len(choice.BankUse) <= look.Bank {
					choice.BankUse = append(choice.BankUse, 0)
				}
				choice.BankUse[look.Bank]++
			}
		}

		p.Update(rec.PC, rec.Taken)
		shadow[s] = counter.SatNext(shadow[s], counter.OutcomeBit(rec.Taken))

		counts[s]++
		if rec.Taken {
			takens[s]++
		}
		if miss {
			misses[s]++
			rep.Mispredicts++
		}
		rep.Branches++
	}
	rep.WallSeconds = now().Sub(start).Seconds()
	if rep.WallSeconds > 0 {
		rep.BranchesPerSec = float64(rep.Branches) / rep.WallSeconds
	}
	if rep.Branches > 0 {
		rep.MispredictRate = float64(rep.Mispredicts) / float64(rep.Branches)
	}
	for _, c := range counts {
		if c > 0 {
			rep.StaticBranches++
		}
	}
	rep.Interference = inter
	if choice != nil && choice.Branches > 0 {
		rep.Choice = choice
	}
	if topN > 0 {
		rep.TopBranches, rep.TopShare = rankBranches(counts, takens, misses, firstPC, rep.Mispredicts, topN)
	}

	observedRuns.Add(1)
	observedBranches.Add(int64(rep.Branches))
	observedMispredicts.Add(int64(rep.Mispredicts))
	return rep, nil
}

// rankBranches builds the H2P top-N: static branches ordered by
// misprediction count (ties by static id for determinism).
func rankBranches(counts, takens, misses []int, firstPC []uint64, totalMiss, topN int) ([]BranchMetrics, float64) {
	order := make([]int, 0, len(counts))
	for s, m := range misses {
		if m > 0 {
			order = append(order, s)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if misses[a] != misses[b] {
			return misses[a] > misses[b]
		}
		return a < b
	})
	if len(order) > topN {
		order = order[:topN]
	}
	out := make([]BranchMetrics, 0, len(order))
	covered := 0
	for _, s := range order {
		covered += misses[s]
		out = append(out, BranchMetrics{
			Static:      uint32(s),
			PC:          firstPC[s],
			Count:       counts[s],
			Taken:       takens[s],
			Mispredicts: misses[s],
			MissRate:    float64(misses[s]) / float64(counts[s]),
		})
	}
	share := 0.0
	if totalMiss > 0 {
		share = float64(covered) / float64(totalMiss)
	}
	return out, share
}
