package sim_test

// Differential harness for the columnar trace store: the columnar
// encoding of every suite workload must be indistinguishable from its
// row-format Memory — byte-identical after a round trip, and
// Result-for-Result identical under sim.Run for every registered
// predictor spec — and columnar sources must flow through the
// scheduler, the journal and kill/resume exactly like materialized
// traces. TestColumnarSchedulerRace iterates one shared *Columnar from
// the whole pool and runs under -race in CI's test-parallel job.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"

	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/trace"
	"bimode/internal/zoo"
)

// columnarize encodes m at the given block size and opens the result as
// a zero-copy columnar handle.
func columnarize(t *testing.T, m *trace.Memory, blockSize int) *trace.Columnar {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteColumnarBlocks(&buf, m, blockSize); err != nil {
		t.Fatalf("WriteColumnarBlocks(%q, %d): %v", m.Name(), blockSize, err)
	}
	c, err := trace.OpenColumnar(buf.Bytes())
	if err != nil {
		t.Fatalf("OpenColumnar(%q): %v", m.Name(), err)
	}
	return c
}

// TestColumnarDifferential is the equivalence proof the issue demands:
// over all 14 suite workloads, (1) encode -> open -> materialize ->
// re-encode is byte-identical, and (2) for EVERY registered zoo spec,
// sim.Run over the columnar handle returns exactly the Result it
// returns over the row-format Memory. Two block sizes are swept so both
// the many-small-blocks and few-big-blocks shapes are proven.
func TestColumnarDifferential(t *testing.T) {
	traces := suiteTraces()
	if len(traces) != 14 {
		t.Fatalf("expected the 14 suite workloads, got %d", len(traces))
	}
	specs := zoo.Known()
	for _, blockSize := range []int{257, trace.DefaultColumnarBlock} {
		blockSize := blockSize
		t.Run(fmt.Sprintf("block=%d", blockSize), func(t *testing.T) {
			for _, mem := range traces {
				c := columnarize(t, mem, blockSize)

				// Byte-identical round trip: materializing the columnar
				// handle and re-encoding it reproduces the same bytes.
				var first, second bytes.Buffer
				if err := trace.WriteColumnarBlocks(&first, mem, blockSize); err != nil {
					t.Fatalf("encode %q: %v", mem.Name(), err)
				}
				again := trace.Materialize(c)
				if err := trace.WriteColumnarBlocks(&second, again, blockSize); err != nil {
					t.Fatalf("re-encode %q: %v", mem.Name(), err)
				}
				if !bytes.Equal(first.Bytes(), second.Bytes()) {
					t.Fatalf("workload %q: columnar round trip is not byte-identical", mem.Name())
				}

				// Result-for-Result: every spec, columnar vs Memory.
				for _, spec := range specs {
					want := sim.Run(zoo.MustNew(spec), mem)
					got := sim.Run(zoo.MustNew(spec), c)
					if got != want {
						t.Errorf("spec %q workload %q: columnar %+v != memory %+v",
							spec, mem.Name(), got, want)
					}
				}
			}
		})
	}
}

// columnarJobs is oracleJobs with every Source swapped for its columnar
// encoding: the zoo-spec x suite-workload grid over zero-copy handles.
func columnarJobs(t *testing.T, blockSize int) []sim.Job {
	t.Helper()
	traces := suiteTraces()
	var jobs []sim.Job
	for _, spec := range zoo.Known() {
		spec := spec
		for _, mem := range traces {
			jobs = append(jobs, sim.Job{
				Make:   func() predictor.Predictor { return zoo.MustNew(spec) },
				Source: columnarize(t, mem, blockSize),
			})
		}
	}
	return jobs
}

// TestColumnarSchedulerOracle: the pooled scheduler over columnar
// sources equals both the sequential scheduler over the same sources and
// the sequential scheduler over the original Memories. This is the
// "scheduler works unchanged over columnar sources" clause — shared
// handles are deduped and materialized through the arena exactly once.
func TestColumnarSchedulerOracle(t *testing.T) {
	ref := sim.NewScheduler(0).RunAll(oracleJobs(t))
	jobs := columnarJobs(t, trace.DefaultColumnarBlock)
	seq := sim.NewScheduler(0).RunAll(jobs)
	par := sim.NewScheduler(8).RunAll(jobs)
	if len(seq) != len(ref) || len(par) != len(ref) {
		t.Fatalf("result counts differ: ref %d, seq %d, par %d", len(ref), len(seq), len(par))
	}
	for i := range ref {
		if seq[i] != ref[i] {
			t.Errorf("job %d: sequential columnar %+v != memory reference %+v", i, seq[i], ref[i])
		}
		if par[i] != ref[i] {
			t.Errorf("job %d: pooled columnar %+v != memory reference %+v", i, par[i], ref[i])
		}
	}
}

// TestColumnarKillResume is the columnar leg of the kill/resume
// acceptance test: a journaled suite over columnar sources, canceled
// after 40 completed cells and resumed from its checkpoint, produces
// exactly the Results of an uninterrupted run.
func TestColumnarKillResume(t *testing.T) {
	jobs := columnarJobs(t, 1024)
	want := sim.NewScheduler(0).RunAll(jobs)

	path := filepath.Join(t.TempDir(), "columnar-suite.ckpt")
	const key = "columnar-kill-resume-v1"

	j1, err := sim.CreateJournal(path, key)
	if err != nil {
		t.Fatalf("CreateJournal: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var completed atomic.Int64
	j1.OnCell = func(seq, idx int, res sim.Result) {
		if completed.Add(1) == 40 {
			cancel()
		}
	}
	partial := sim.NewScheduler(8).WithContext(ctx).WithJournal(j1).RunAll(jobs)
	if err := j1.Close(); err != nil {
		t.Fatalf("closing journal after kill: %v", err)
	}
	sawCancel := false
	for i, r := range partial {
		switch {
		case r.Err == nil:
			if r != want[i] {
				t.Fatalf("partial run cell %d: %+v != reference %+v", i, r, want[i])
			}
		case errors.Is(r.Err, context.Canceled):
			sawCancel = true
		default:
			t.Fatalf("partial run cell %d: unexpected error %v", i, r.Err)
		}
	}
	if !sawCancel {
		t.Fatalf("the kill did not interrupt the run; the resume leg would prove nothing")
	}

	j2, err := sim.ResumeJournal(path, key)
	if err != nil {
		t.Fatalf("ResumeJournal: %v", err)
	}
	defer j2.Close()
	cached := j2.Cells()
	if cached == 0 || cached >= len(jobs) {
		t.Fatalf("journal cached %d cells, want a strict partial of %d", cached, len(jobs))
	}
	got := sim.NewScheduler(8).WithJournal(j2).RunAll(jobs)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("resumed cell %d: %+v != uninterrupted %+v", i, got[i], want[i])
		}
	}
}

// TestColumnarSchedulerRace drives concurrent block iteration through
// the scheduler pool: every task runs sim.Run directly against ONE
// shared *Columnar (each sim.Run pulls its own BlockStream off the
// shared handle), so -race observes the iterators proving their
// no-shared-mutable-state contract.
func TestColumnarSchedulerRace(t *testing.T) {
	mem := suiteTraces()[0]
	c := columnarize(t, mem, 512)
	specs := zoo.Known()
	want := make([]sim.Result, len(specs))
	for i, spec := range specs {
		want[i] = sim.Run(zoo.MustNew(spec), c)
	}
	const rounds = 4
	got := make([]sim.Result, rounds*len(specs))
	errs := sim.NewScheduler(8).Do(len(got), func(i int) error {
		got[i] = sim.Run(zoo.MustNew(specs[i%len(specs)]), c)
		return nil
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range got {
		if r != want[i%len(specs)] {
			t.Errorf("concurrent run %d: %+v != sequential %+v", i, r, want[i%len(specs)])
		}
	}
}
