package sim

import (
	"math"
	"testing"
)

func TestCPIModel(t *testing.T) {
	m := PipelineModel{BaseCPI: 1, MispredictPenalty: 10, BranchFraction: 0.2}
	if got := m.CPI(0); got != 1 {
		t.Fatalf("perfect prediction CPI = %v", got)
	}
	// 5% misprediction: 1 + 0.2*0.05*10 = 1.1
	if got := m.CPI(0.05); math.Abs(got-1.1) > 1e-12 {
		t.Fatalf("CPI(5%%) = %v, want 1.1", got)
	}
	// Halving the misprediction rate from 10% to 5% speeds up by 1.2/1.1.
	if got := m.Speedup(0.05, 0.10); math.Abs(got-1.2/1.1) > 1e-12 {
		t.Fatalf("speedup = %v", got)
	}
	if DefaultPipeline().String() == "" {
		t.Fatalf("String must render")
	}
}
