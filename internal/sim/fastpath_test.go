package sim_test

// Differential correctness gate for the batched/fused simulation fast
// path: for every registered predictor spec and every synthetic suite
// workload, sim.Run (which dispatches on the trace.Batched,
// predictor.Stepper and predictor.BatchRunner capabilities) must produce
// bit-identical results to sim.RunGeneric, the capability-free
// Predict/Update stream loop. The fast path is an optimization, never a
// semantic fork.

import (
	"testing"

	"bimode/internal/predictor"
	"bimode/internal/sim"
	"bimode/internal/synth"
	"bimode/internal/trace"
	"bimode/internal/zoo"
)

// fastpathDynamic keeps the all-specs x all-workloads grid fast enough
// for `go test` while still exercising table wraparound and saturation.
const fastpathDynamic = 20000

// fastpathSpecs is every registered predictor family (one example spec
// each) plus the bi-mode ablation variants, whose update policies take
// different branches through the fused loops.
func fastpathSpecs() []string {
	return append(zoo.Known(),
		"bimode:b=8,fullchoice=1",
		"bimode:b=8,bothbanks=1",
		"bimode:c=6,b=8,h=5",
		"gshare:i=10,h=0",
	)
}

// suiteTraces materializes every workload of both synthetic suites at the
// reduced dynamic count.
func suiteTraces() []*trace.Memory {
	var out []*trace.Memory
	for _, p := range synth.Profiles() {
		out = append(out, trace.Materialize(synth.MustWorkload(p.WithDynamic(fastpathDynamic))))
	}
	return out
}

// hideCaps wraps a Source so only the base trace.Source methods are in
// its method set: type assertions to trace.Batched or trace.Sized fail,
// forcing sim.Run down the stream path.
type hideCaps struct{ trace.Source }

func TestFastPathEquivalence(t *testing.T) {
	traces := suiteTraces()
	if len(traces) != 14 {
		t.Fatalf("expected the 14 suite workloads, got %d", len(traces))
	}
	for _, spec := range fastpathSpecs() {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			for _, mem := range traces {
				ref := sim.RunGeneric(zoo.MustNew(spec), mem)
				if ref.Branches != mem.Len() {
					t.Fatalf("%s: generic loop saw %d branches, trace has %d",
						mem.Name(), ref.Branches, mem.Len())
				}

				// Batched fast path (BatchRunner or Stepper over the slice).
				fast := sim.Run(zoo.MustNew(spec), mem)
				if fast != ref {
					t.Errorf("%s: batched path %+v != generic %+v", mem.Name(), fast, ref)
				}

				// Stream path with capabilities hidden on the source side
				// (exercises the Stepper stream loop for predictors that
				// also implement BatchRunner).
				streamed := sim.Run(zoo.MustNew(spec), hideCaps{mem})
				if streamed != ref {
					t.Errorf("%s: stream path %+v != generic %+v", mem.Name(), streamed, ref)
				}
			}
		})
	}
}

// TestStepMatchesPredictUpdate drives a Stepper in lockstep with a twin
// predictor using the split protocol, checking every individual
// prediction (a stronger property than equal mispredict totals).
func TestStepMatchesPredictUpdate(t *testing.T) {
	mem := suiteTraces()[0]
	for _, spec := range fastpathSpecs() {
		stepper, ok := zoo.MustNew(spec).(predictor.Stepper)
		if !ok {
			continue
		}
		twin := zoo.MustNew(spec)
		for i, r := range mem.Records() {
			want := twin.Predict(r.PC)
			twin.Update(r.PC, r.Taken)
			if got := stepper.Step(r.PC, r.Taken); got != want {
				t.Fatalf("%s: branch %d (pc %#x): Step=%v, Predict+Update=%v",
					spec, i, r.PC, got, want)
			}
		}
	}
}

// TestRunBatchSplitInvocation checks that RunBatch composes: running a
// trace as two half-batches must equal one whole batch (history and
// table state must round-trip through the batch boundary).
func TestRunBatchSplitInvocation(t *testing.T) {
	mem := suiteTraces()[0]
	recs := mem.Records()
	for _, spec := range fastpathSpecs() {
		whole, ok := zoo.MustNew(spec).(predictor.BatchRunner)
		if !ok {
			continue
		}
		split := zoo.MustNew(spec).(predictor.BatchRunner)
		want := whole.RunBatch(recs)
		half := len(recs) / 2
		got := split.RunBatch(recs[:half]) + split.RunBatch(recs[half:])
		if got != want {
			t.Errorf("%s: split batches %d mispredicts, whole batch %d", spec, got, want)
		}
	}
}
