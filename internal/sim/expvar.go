package sim

import "expvar"

// Cumulative process-wide counters for the instrumented tier, published
// under /debug/vars for any process that serves expvar (cmd/obsreport
// exposes the endpoint behind its -http flag). Only Observe updates them;
// the uninstrumented tiers never touch expvar.
var (
	observedRuns        = expvar.NewInt("sim_observed_runs")
	observedBranches    = expvar.NewInt("sim_observed_branches")
	observedMispredicts = expvar.NewInt("sim_observed_mispredicts")
)
