package sim

import "expvar"

// Cumulative process-wide counters for the instrumented tier, published
// under /debug/vars for any process that serves expvar (cmd/obsreport
// exposes the endpoint behind its -http flag). Only Observe updates them;
// the uninstrumented tiers never touch expvar.
var (
	observedRuns        = expvar.NewInt("sim_observed_runs")
	observedBranches    = expvar.NewInt("sim_observed_branches")
	observedMispredicts = expvar.NewInt("sim_observed_mispredicts")
)

// Scheduler progress counters, updated by Scheduler.Do on every path
// (pool and sequential alike, so the expvar surface does not depend on
// the worker count): jobs currently executing, and jobs finished since
// process start (including jobs that panicked and were recovered).
var (
	schedInFlight  = expvar.NewInt("sim_sched_jobs_inflight")
	schedCompleted = expvar.NewInt("sim_sched_jobs_completed")
)

// Fault-tolerance counters: retries issued by the scheduler's Policy
// (sim_sched_retries counts re-attempts, not first attempts) and jobs
// whose slot ended context.Canceled because the suite was canceled before
// or during them.
var (
	schedRetries   = expvar.NewInt("sim_sched_retries")
	schedCancelled = expvar.NewInt("sim_sched_cancelled")
)
