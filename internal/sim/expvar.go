package sim

import (
	"expvar"
	"sync/atomic"
)

// Cumulative process-wide counters for the instrumented tier, published
// under /debug/vars for any process that serves expvar (cmd/obsreport
// exposes the endpoint behind its -http flag). Only Observe updates them;
// the uninstrumented tiers never touch expvar.
var (
	observedRuns        = expvar.NewInt("sim_observed_runs")
	observedBranches    = expvar.NewInt("sim_observed_branches")
	observedMispredicts = expvar.NewInt("sim_observed_mispredicts")
)

// counterShards is the shard count of the scheduler counters; a power of
// two so the shard pick is a mask, sized past any plausible worker count
// on the target boxes.
const counterShards = 16

// shardedCounter is an expvar-published int64 counter striped over
// cache-line-padded shards. The scheduler's progress counters sit on the
// per-job path of every pool worker; a single expvar.Int there is a
// contended cache line every worker bounces on every job — exactly the
// kind of per-job overhead the pool is supposed to amortize. Each worker
// adds to its own shard (the sequential path uses shard 0) and readers
// sum the shards through the published expvar.Func, so the counter names
// and their /debug/vars semantics are unchanged.
type shardedCounter struct {
	shards [counterShards]struct {
		n atomic.Int64
		_ [56]byte // pad to a 64-byte line so two shards never share one
	}
}

// newShardedCounter publishes a sharded counter under name. The published
// value is the shard sum as an int64, like the expvar.Int it replaces.
func newShardedCounter(name string) *shardedCounter {
	c := &shardedCounter{}
	expvar.Publish(name, expvar.Func(func() any { return c.Value() }))
	return c
}

// add adds delta to the counter on the given shard (any int; masked).
func (c *shardedCounter) add(shard int, delta int64) {
	c.shards[shard&(counterShards-1)].n.Add(delta)
}

// Value returns the current total across shards.
func (c *shardedCounter) Value() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].n.Load()
	}
	return sum
}

// Scheduler progress counters, updated by Scheduler.Do on every path
// (pool and sequential alike, so the expvar surface does not depend on
// the worker count): jobs currently executing, and jobs finished since
// process start (including jobs that panicked and were recovered).
var (
	schedInFlight  = newShardedCounter("sim_sched_jobs_inflight")
	schedCompleted = newShardedCounter("sim_sched_jobs_completed")
)

// Fault-tolerance counters: retries issued by the scheduler's Policy
// (sim_sched_retries counts re-attempts, not first attempts) and jobs
// whose slot ended context.Canceled because the suite was canceled before
// or during them.
var (
	schedRetries   = newShardedCounter("sim_sched_retries")
	schedCancelled = newShardedCounter("sim_sched_cancelled")
)
