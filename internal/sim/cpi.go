package sim

import "fmt"

// PipelineModel converts misprediction rates into cycles-per-instruction
// estimates, the "why it matters" arithmetic behind branch prediction
// papers: every mispredicted branch costs a pipeline refill.
type PipelineModel struct {
	// BaseCPI is the machine's CPI with perfect branch prediction.
	BaseCPI float64
	// MispredictPenalty is the refill cost of one misprediction, in
	// cycles (the paper era's deep pipelines: ~4-11; modern: ~15-20).
	MispredictPenalty float64
	// BranchFraction is the fraction of instructions that are
	// conditional branches (typically ~0.15-0.20 for integer code).
	BranchFraction float64
}

// DefaultPipeline models a Pentium Pro-class machine of the paper's era.
func DefaultPipeline() PipelineModel {
	return PipelineModel{BaseCPI: 1.0, MispredictPenalty: 11, BranchFraction: 0.18}
}

// CPI estimates cycles per instruction at the given misprediction rate.
func (m PipelineModel) CPI(mispredictRate float64) float64 {
	return m.BaseCPI + m.BranchFraction*mispredictRate*m.MispredictPenalty
}

// Speedup returns the relative performance of running at rate a instead
// of rate b (>1 means a is faster).
func (m PipelineModel) Speedup(a, b float64) float64 {
	return m.CPI(b) / m.CPI(a)
}

// String renders the model parameters.
func (m PipelineModel) String() string {
	return fmt.Sprintf("pipeline(base=%.2f, penalty=%.0f, branches=%.0f%%)",
		m.BaseCPI, m.MispredictPenalty, 100*m.BranchFraction)
}
