package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Report is the structured result of one instrumented simulation run (see
// Observe): the plain Result counts plus the per-run metrics behind the
// paper's Section 4 argument — aliasing classification, choice-structure
// agreement, misprediction concentration — and engine throughput. It
// serializes to JSON so runs can be archived and diffed; cmd/obsreport
// renders it for terminals.
type Report struct {
	Predictor      string  `json:"predictor"`
	Workload       string  `json:"workload"`
	CostBytes      float64 `json:"cost_bytes"`
	Branches       int     `json:"branches"`
	Mispredicts    int     `json:"mispredicts"`
	MispredictRate float64 `json:"mispredict_rate"`
	// StaticBranches is the number of distinct static sites that appeared.
	StaticBranches int `json:"static_branches"`

	// WallSeconds and BranchesPerSec measure the instrumented engine
	// itself. Instrumentation is not free; compare against BENCH_sim.json
	// for the uninstrumented tiers.
	WallSeconds    float64 `json:"wall_seconds"`
	BranchesPerSec float64 `json:"branches_per_sec"`

	// Interference is present when the predictor exposes counter indices
	// (predictor.Indexed or predictor.Probe).
	Interference *InterferenceMetrics `json:"interference,omitempty"`
	// Choice is present when the predictor has a steering structure
	// (bi-mode, tri-mode, agree) and implements predictor.Probe.
	Choice *ChoiceMetrics `json:"choice,omitempty"`

	// TopBranches lists the most-mispredicting static branches (H2P),
	// hardest first; TopShare is the fraction of all mispredictions they
	// account for.
	TopBranches []BranchMetrics `json:"top_branches,omitempty"`
	TopShare    float64         `json:"top_share"`
}

// InterferenceMetrics classifies every counter access by aliasing effect,
// the per-run form of the paper's Section 4 analysis. An access is aliased
// when the consulted counter was last written by a different static
// branch. Aliased accesses are judged against a per-static two-bit shadow
// counter (the branch's own bias, trained only by its own outcomes): the
// prediction the branch would plausibly have received without sharing.
//
//	Destructive  - predictor wrong, own-bias shadow right: sharing broke a
//	               branch its own bias had learned.
//	Constructive - predictor right, own-bias shadow wrong: a neighbor's
//	               training helped.
//	Neutral      - predictor and shadow agree (both right or both wrong):
//	               sharing changed nothing observable.
//
// Destructive+Constructive+Neutral == Aliased. Cold counts first-touch
// accesses (the counter had no writer yet).
type InterferenceMetrics struct {
	Counters     int `json:"counters"`
	Aliased      int `json:"aliased_accesses"`
	Destructive  int `json:"destructive"`
	Constructive int `json:"constructive"`
	Neutral      int `json:"neutral"`
	Cold         int `json:"cold_accesses"`
	// AliasedMispredicts counts mispredictions on aliased accesses (the
	// conflict-miss exposure, cf. analysis.InterferenceBreakdown).
	AliasedMispredicts int `json:"aliased_mispredicts"`
}

// DestructiveRate returns destructive aliased accesses per branch.
func (m *InterferenceMetrics) DestructiveRate(branches int) float64 {
	if branches == 0 {
		return 0
	}
	return float64(m.Destructive) / float64(branches)
}

// ChoiceMetrics aggregates the steering structure's behavior: how often
// its vote matched the resolved outcome, how often the selected bank
// agreed with it, and how often the paper's partial-update exception fired
// (choice wrong about the bias, selected counter still right).
type ChoiceMetrics struct {
	Branches         int `json:"branches"`
	AgreeOutcome     int `json:"choice_agrees_outcome"`
	PredictionAgrees int `json:"prediction_agrees_choice"`
	PartialHold      int `json:"partial_hold"`
	// BankUse counts dynamic selections per bank id; empty when the
	// predictor reports no banks.
	BankUse []int `json:"bank_use,omitempty"`
}

// BranchMetrics is one static branch's row in the H2P ranking.
type BranchMetrics struct {
	Static      uint32  `json:"static"`
	PC          uint64  `json:"pc"`
	Count       int     `json:"count"`
	Taken       int     `json:"taken"`
	Mispredicts int     `json:"mispredicts"`
	MissRate    float64 `json:"miss_rate"`
}

// WriteJSON serializes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport deserializes a report written by WriteJSON.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("sim: decoding report: %w", err)
	}
	return &r, nil
}

// String renders the headline numbers in one line.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: %d branches, %.2f%% mispredict, %.1f Mbr/s",
		r.Predictor, r.Workload, r.Branches, 100*r.MispredictRate, r.BranchesPerSec/1e6)
	if m := r.Interference; m != nil && r.Branches > 0 {
		fmt.Fprintf(&b, ", aliasing %.2f%% destructive / %.2f%% neutral / %.2f%% constructive",
			100*float64(m.Destructive)/float64(r.Branches),
			100*float64(m.Neutral)/float64(r.Branches),
			100*float64(m.Constructive)/float64(r.Branches))
	}
	return b.String()
}
