package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"bimode/internal/trace"
)

// Journal is the suite-level checkpoint: an append-only JSONL file
// recording every completed (fan-out, cell) Result and, optionally,
// mid-cell predictor snapshots for cells still in flight. A scheduler
// carrying a Journal (see WithJournal) writes cells as they complete and,
// on a resumed run, serves cached cells instead of re-simulating them —
// so a suite killed partway re-runs only the work it lost, and the
// resumed output is Result-for-Result identical to an uninterrupted run
// (TestKillResumeEquivalence pins this for every zoo spec over the whole
// suite).
//
// Cells are keyed by (seq, idx): idx is the job's position in its RunAll
// call and seq numbers the RunAll (and materialization) fan-outs a
// scheduler issues, in order. That key is only meaningful because the
// CLIs issue their fan-outs from a single goroutine in a deterministic
// order fixed by the flags; the journal's header key (built from those
// flags) guards against resuming under a different plan. Cached cells are
// additionally validated against the live job's workload name, and
// mid-cell snapshots against the predictor name too — a mismatched entry
// is ignored and the cell re-run, never trusted.
//
// Each line is flushed as it is written, so a killed process loses at
// most the line in flight; Load tolerates a truncated trailing line.
type Journal struct {
	// PartEvery, when positive, is the record interval at which the
	// scheduler writes mid-cell snapshots for predictors implementing
	// predictor.Snapshotter. Zero journals completed cells only.
	PartEvery int

	// OnCell, when non-nil, is called after each newly completed cell is
	// journaled (not for cells served from cache). Callers use it for
	// progress output; tests use it to cancel a run at a chosen cell. It
	// may be called concurrently from worker goroutines.
	OnCell func(seq, idx int, res Result)

	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	key   string
	seq   int
	cells map[cellKey]cellRecord
	parts map[cellKey]partRecord
}

type cellKey struct{ Seq, Idx int }

// cellRecord is one completed Result. Only successful cells are
// journaled: a failed cell must re-run on resume, and Err would not
// survive JSON anyway.
type cellRecord struct {
	Seq         int     `json:"seq"`
	Idx         int     `json:"idx"`
	Predictor   string  `json:"predictor"`
	Workload    string  `json:"workload"`
	CostBytes   float64 `json:"cost_bytes"`
	Branches    int     `json:"branches"`
	Mispredicts int     `json:"mispredicts"`
}

// partRecord is a mid-cell snapshot: the predictor's serialized state
// after Cursor records, plus the mispredictions counted so far.
type partRecord struct {
	Seq         int    `json:"seq"`
	Idx         int    `json:"idx"`
	Predictor   string `json:"predictor"`
	Workload    string `json:"workload"`
	Cursor      int    `json:"cursor"`
	Mispredicts int    `json:"mispredicts"`
	Snap        []byte `json:"snap"`
}

// journalLine is the on-disk union: exactly one field set per line.
type journalLine struct {
	V    int         `json:"v,omitempty"`
	Key  string      `json:"key,omitempty"`
	Cell *cellRecord `json:"cell,omitempty"`
	Part *partRecord `json:"part,omitempty"`
}

const journalVersion = 1

// CreateJournal starts a fresh checkpoint file at path, truncating any
// existing one. key identifies the run plan (the CLIs build it from the
// flags that determine the job grid); ResumeJournal refuses a different
// key rather than serving cells from a different plan.
func CreateJournal(path, key string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	j := &Journal{
		f:     f,
		w:     bufio.NewWriter(f),
		key:   key,
		cells: map[cellKey]cellRecord{},
		parts: map[cellKey]partRecord{},
	}
	if err := j.writeLine(journalLine{V: journalVersion, Key: key}); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// ResumeJournal loads an existing checkpoint file and reopens it for
// appending, so the resumed run both serves the cached cells and keeps
// journaling new ones. A truncated trailing line (a killed writer) is
// tolerated; a key mismatch or a malformed interior is an error.
func ResumeJournal(path, key string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	j := &Journal{
		f:     f,
		cells: map[cellKey]cellRecord{},
		parts: map[cellKey]partRecord{},
	}
	if err := j.load(f, key); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	j.key = key
	j.w = bufio.NewWriter(f)
	return j, nil
}

// load parses the journal, populating the cell and part caches. Later
// lines win, so a cell completed after a resume shadows stale parts.
func (j *Journal) load(r io.Reader, key string) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var line journalLine
		if err := json.Unmarshal(raw, &line); err != nil {
			// A torn final line is the expected residue of a killed
			// writer; a torn interior line (or header) means the file is
			// damaged.
			if lineNo > 1 && !sc.Scan() {
				break
			}
			return fmt.Errorf("sim: checkpoint line %d malformed: %v", lineNo, err)
		}
		switch {
		case lineNo == 1:
			if line.V != journalVersion {
				return fmt.Errorf("sim: checkpoint version %d, want %d", line.V, journalVersion)
			}
			if line.Key != key {
				return fmt.Errorf("sim: checkpoint was written for a different run (key %q, want %q)", line.Key, key)
			}
		case line.Cell != nil:
			k := cellKey{line.Cell.Seq, line.Cell.Idx}
			j.cells[k] = *line.Cell
			delete(j.parts, k) // the completed cell supersedes its parts
		case line.Part != nil:
			j.parts[cellKey{line.Part.Seq, line.Part.Idx}] = *line.Part
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("sim: reading checkpoint: %w", err)
	}
	if lineNo == 0 {
		return fmt.Errorf("sim: checkpoint file is empty")
	}
	return nil
}

// Close flushes and closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w != nil {
		if err := j.w.Flush(); err != nil {
			j.f.Close()
			return err
		}
	}
	return j.f.Close()
}

// Cells returns the number of completed cells currently cached; the CLIs
// report it when announcing a resume.
func (j *Journal) Cells() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.cells)
}

// beginRun allocates the sequence number for one scheduler fan-out.
func (j *Journal) beginRun() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	seq := j.seq
	j.seq++
	return seq
}

// cached returns the journaled Result for (seq, idx) if one exists and
// matches the live job's workload; a mismatch (the plan changed despite
// the key) falls through to a re-run.
func (j *Journal) cached(seq, idx int, src trace.Source) (Result, bool) {
	j.mu.Lock()
	c, ok := j.cells[cellKey{seq, idx}]
	j.mu.Unlock()
	if !ok || src == nil || c.Workload != src.Name() {
		return Result{}, false
	}
	return Result{
		Predictor:   c.Predictor,
		Workload:    c.Workload,
		CostBytes:   c.CostBytes,
		Branches:    c.Branches,
		Mispredicts: c.Mispredicts,
	}, true
}

// part returns the latest mid-cell snapshot for (seq, idx), if any.
func (j *Journal) part(seq, idx int) (partRecord, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	p, ok := j.parts[cellKey{seq, idx}]
	return p, ok
}

// recordCell journals one completed Result and fires OnCell.
//
//bimode:deterministic
func (j *Journal) recordCell(seq, idx int, res Result) {
	rec := cellRecord{
		Seq:         seq,
		Idx:         idx,
		Predictor:   res.Predictor,
		Workload:    res.Workload,
		CostBytes:   res.CostBytes,
		Branches:    res.Branches,
		Mispredicts: res.Mispredicts,
	}
	j.mu.Lock()
	j.cells[cellKey{seq, idx}] = rec
	delete(j.parts, cellKey{seq, idx})
	j.writeLine(journalLine{Cell: &rec})
	j.mu.Unlock()
	if j.OnCell != nil {
		j.OnCell(seq, idx, res)
	}
}

// recordPart journals a mid-cell snapshot.
//
//bimode:deterministic
func (j *Journal) recordPart(rec partRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.parts[cellKey{rec.Seq, rec.Idx}] = rec
	j.writeLine(journalLine{Part: &rec})
}

// writeLine appends one JSONL line and flushes it, so a kill loses at
// most the line being written. Write errors are reported once via the
// file close; checkpointing is best-effort and never fails a simulation.
//
//bimode:deterministic
func (j *Journal) writeLine(line journalLine) error {
	data, err := json.Marshal(line)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(append(data, '\n')); err != nil {
		return err
	}
	return j.w.Flush()
}
