// Package sim drives predictors over branch streams and runs the
// parameter sweeps behind the paper's figures: misprediction measurement,
// parallel (predictor x workload) grids, and the exhaustive gshare.best
// search of Section 3.1.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"bimode/internal/predictor"
	"bimode/internal/trace"
)

// Result summarizes one simulation run.
type Result struct {
	// Predictor is the predictor's Name().
	Predictor string
	// Workload is the trace source's Name().
	Workload string
	// CostBytes is the predictor's storage cost in bytes.
	CostBytes float64
	// Branches is the number of dynamic conditional branches simulated.
	Branches int
	// Mispredicts is the number of wrong direction predictions.
	Mispredicts int
}

// MispredictRate returns mispredictions per branch (0..1).
func (r Result) MispredictRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Branches)
}

// Accuracy returns 1 - MispredictRate.
func (r Result) Accuracy() float64 { return 1 - r.MispredictRate() }

// String renders the result in one line.
func (r Result) String() string {
	return fmt.Sprintf("%-24s %-12s %8.0fB  %9d branches  %6.2f%% mispredict",
		r.Predictor, r.Workload, r.CostBytes, r.Branches, 100*r.MispredictRate())
}

// Run simulates p over a fresh stream of src: for every dynamic branch,
// Predict then Update, counting mispredictions. The predictor is NOT reset
// first; callers pass fresh or explicitly Reset predictors. Following the
// paper, no warm-up exclusion is applied (its tables start weakly-taken
// and the cold-start transient is part of the measurement).
func Run(p predictor.Predictor, src trace.Source) Result {
	res := Result{
		Predictor: p.Name(),
		Workload:  src.Name(),
		CostBytes: predictor.CostBytes(p),
	}
	st := src.Stream()
	for {
		rec, ok := st.Next()
		if !ok {
			break
		}
		if p.Predict(rec.PC) != rec.Taken {
			res.Mispredicts++
		}
		p.Update(rec.PC, rec.Taken)
		res.Branches++
	}
	return res
}

// Job is one (predictor, workload) cell of a sweep grid. The predictor is
// constructed inside the worker so each goroutine owns its state.
type Job struct {
	// Make constructs the predictor to run.
	Make func() predictor.Predictor
	// Source supplies the workload.
	Source trace.Source
}

// RunAll executes the jobs across GOMAXPROCS workers and returns results
// in job order.
func RunAll(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = Run(jobs[i].Make(), jobs[i].Source)
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// AverageRate returns the arithmetic mean misprediction rate of the
// results, the aggregation the paper's Figure 2 uses.
func AverageRate(results []Result) float64 {
	if len(results) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range results {
		sum += r.MispredictRate()
	}
	return sum / float64(len(results))
}
