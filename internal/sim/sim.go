// Package sim drives predictors over branch streams and runs the
// parameter sweeps behind the paper's figures: misprediction measurement,
// parallel (predictor x workload) grids, and the exhaustive gshare.best
// search of Section 3.1.
package sim

import (
	"fmt"

	"bimode/internal/predictor"
	"bimode/internal/trace"
)

// Result summarizes one simulation run.
type Result struct {
	// Predictor is the predictor's Name().
	Predictor string
	// Workload is the trace source's Name().
	Workload string
	// CostBytes is the predictor's storage cost in bytes.
	CostBytes float64
	// Branches is the number of dynamic conditional branches simulated.
	Branches int
	// Mispredicts is the number of wrong direction predictions.
	Mispredicts int
	// Err records a job that did not complete: RunAll recovers per-job
	// panics (a broken predictor constructor, a predictor or source
	// panicking mid-run) into this field instead of letting one bad cell
	// take down the whole suite. The counting fields are zero when Err is
	// set.
	Err error
}

// MispredictRate returns mispredictions per branch (0..1).
func (r Result) MispredictRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Branches)
}

// Accuracy returns 1 - MispredictRate.
func (r Result) Accuracy() float64 { return 1 - r.MispredictRate() }

// String renders the result in one line.
func (r Result) String() string {
	return fmt.Sprintf("%-24s %-12s %8.0fB  %9d branches  %6.2f%% mispredict",
		r.Predictor, r.Workload, r.CostBytes, r.Branches, 100*r.MispredictRate())
}

// Run simulates p over src, counting mispredictions. The predictor is NOT
// reset first; callers pass fresh or explicitly Reset predictors.
// Following the paper, no warm-up exclusion is applied (its tables start
// weakly-taken and the cold-start transient is part of the measurement).
//
// Run dispatches on optional capabilities, strongest first, falling back
// to the generic Predict/Update stream loop so every Predictor works:
//
//	source implements trace.Batched (a materialized trace):
//	    predictor.BatchRunner  -> one fully inlined whole-trace call
//	    predictor.Stepper      -> one fused call per branch over the slice
//	    otherwise              -> Predict+Update over the slice
//	source implements trace.Blocked (a columnar trace):
//	    the per-slice dispatch above, one decoded block at a time
//	source streams only:
//	    predictor.Stepper      -> one fused call per branch
//	    otherwise              -> the generic loop (see RunGeneric)
//
// Every path produces bit-identical Mispredicts (enforced by
// TestFastPathEquivalence); the capabilities are an optimization, never a
// semantic fork.
func Run(p predictor.Predictor, src trace.Source) Result {
	res := Result{
		Predictor: p.Name(),
		Workload:  src.Name(),
		CostBytes: predictor.CostBytes(p),
	}
	if b, ok := src.(trace.Batched); ok {
		recs := b.Records()
		res.Branches = len(recs)
		res.Mispredicts = runRecords(p, recs)
		return res
	}
	if bl, ok := src.(trace.Blocked); ok {
		res.Mispredicts, res.Branches = runBlocks(p, bl.BlockStream())
		return res
	}
	st := src.Stream()
	if stepper, ok := p.(predictor.Stepper); ok {
		res.Mispredicts, res.Branches = stepStream(stepper, st)
		return res
	}
	res.Mispredicts, res.Branches = predictUpdateStream(p, st)
	return res
}

// runRecords simulates a flat record slice with the fastest capability p
// offers.
func runRecords(p predictor.Predictor, recs []trace.Record) int {
	if br, ok := p.(predictor.BatchRunner); ok {
		return br.RunBatch(recs)
	}
	if stepper, ok := p.(predictor.Stepper); ok {
		return stepRecords(stepper, recs)
	}
	return predictUpdateRecords(p, recs)
}

// runBlocks drives a block-capable source (a columnar trace) through the
// engine one decoded block at a time: each block is a ready-made record
// slice, so every block takes whatever runRecords fast path the predictor
// offers — RunBatch over the slice for BatchRunner predictors — without
// the trace ever being materialized whole. The predictor state carries
// across blocks, so the result is bit-identical to running the
// concatenated records in one call (the same contiguity argument as the
// scheduler's chunked runCell; TestColumnarDifferential pins it). A
// decode error (possible only for crafted files; OpenColumnar verifies
// all checksums up front) panics, surfacing through the scheduler's
// per-job recovery as the cell's Result.Err.
func runBlocks(p predictor.Predictor, bs trace.BlockStream) (int, int) {
	miss, n := 0, 0
	for {
		recs, err := bs.NextBlock()
		if err != nil {
			panic(err)
		}
		if recs == nil {
			return miss, n
		}
		miss += runRecords(p, recs)
		n += len(recs)
	}
}

// stepRecords is the fused per-record loop over a materialized trace: one
// dynamic Step call per branch and nothing else.
//
//bimode:hotpath dispatch
func stepRecords(stepper predictor.Stepper, recs []trace.Record) int {
	miss := 0
	for _, r := range recs {
		if stepper.Step(r.PC, r.Taken) != r.Taken {
			miss++
		}
	}
	return miss
}

// predictUpdateRecords is the base-protocol per-record loop over a
// materialized trace: Predict then Update per branch.
//
//bimode:hotpath dispatch
func predictUpdateRecords(p predictor.Predictor, recs []trace.Record) int {
	miss := 0
	for _, r := range recs {
		if p.Predict(r.PC) != r.Taken {
			miss++
		}
		p.Update(r.PC, r.Taken)
	}
	return miss
}

// stepStream is the fused per-record loop over a stream, returning
// (mispredicts, branches).
//
//bimode:hotpath dispatch
func stepStream(stepper predictor.Stepper, st trace.Stream) (int, int) {
	miss, n := 0, 0
	for {
		rec, ok := st.Next()
		if !ok {
			return miss, n
		}
		if stepper.Step(rec.PC, rec.Taken) != rec.Taken {
			miss++
		}
		n++
	}
}

// predictUpdateStream is the base-protocol per-record loop over a stream,
// returning (mispredicts, branches).
//
//bimode:hotpath dispatch
func predictUpdateStream(p predictor.Predictor, st trace.Stream) (int, int) {
	miss, n := 0, 0
	for {
		rec, ok := st.Next()
		if !ok {
			return miss, n
		}
		if p.Predict(rec.PC) != rec.Taken {
			miss++
		}
		p.Update(rec.PC, rec.Taken)
		n++
	}
}

// RunGeneric simulates p over a fresh stream of src using only the base
// Predictor interface — Predict then Update per branch through the Stream,
// ignoring every fast-path capability. It is the reference implementation
// the differential tests compare Run against; measurement semantics are
// identical.
func RunGeneric(p predictor.Predictor, src trace.Source) Result {
	res := Result{
		Predictor: p.Name(),
		Workload:  src.Name(),
		CostBytes: predictor.CostBytes(p),
	}
	res.Mispredicts, res.Branches = predictUpdateStream(p, src.Stream())
	return res
}

// Job is one (predictor, workload) cell of a sweep grid. The predictor is
// constructed inside the worker so each goroutine owns its state.
type Job struct {
	// Make constructs the predictor to run.
	Make func() predictor.Predictor
	// Source supplies the workload.
	Source trace.Source
}

// RunAll executes the jobs through the default scheduler (GOMAXPROCS
// workers) and returns results in job order; see Scheduler.RunAll for the
// sharing, ordering and panic-capture contract, and NewScheduler(0) for
// the sequential reference path the parallel output is proven against.
func RunAll(jobs []Job) []Result {
	return DefaultScheduler().RunAll(jobs)
}

// AverageRate returns the arithmetic mean misprediction rate of the
// results, the aggregation the paper's Figure 2 uses.
func AverageRate(results []Result) float64 {
	if len(results) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range results {
		sum += r.MispredictRate()
	}
	return sum / float64(len(results))
}
