// Package predictor defines the interface every branch predictor in this
// repository implements, together with the hardware cost model the paper
// uses to place predictors on its size axis, and an introspection
// interface that exposes which second-level counter a lookup consults
// (required by the Section 4 bias analysis).
package predictor

import "bimode/internal/trace"

// Predictor is a dynamic conditional-branch direction predictor.
//
// The simulation protocol is: for each dynamic conditional branch, call
// Predict(pc) to obtain the predicted direction, then Update(pc, taken)
// with the resolved outcome. Update must be called exactly once per
// Predict, in order; predictors are free to keep speculative state between
// the two calls. Implementations are not safe for concurrent use — the
// sweep driver runs one predictor instance per goroutine instead.
type Predictor interface {
	// Name returns a short human-readable identifier, e.g. "bi-mode(7h)".
	Name() string

	// Predict returns the predicted direction (true = taken) for the
	// conditional branch at pc.
	Predict(pc uint64) bool

	// Update trains the predictor with the resolved outcome of the branch
	// at pc and advances any history registers.
	Update(pc uint64, taken bool)

	// Reset restores the predictor to its post-construction state.
	Reset()

	// CostBits returns the predictor's storage cost in bits of counter
	// state. Following the paper, only prediction counters are charged;
	// history registers are not.
	CostBits() int
}

// CostBytes converts a predictor's cost to bytes, the unit of the paper's
// size axis (0.25 KB ... 32 KB).
func CostBytes(p Predictor) float64 { return float64(p.CostBits()) / 8 }

// Stepper is the optional fused-step capability behind the simulator's
// fast path. Step must behave exactly like Predict(pc) immediately
// followed by Update(pc, taken), returning what Predict would have
// returned — one call per dynamic branch instead of two, computing each
// table index once. Implementations must keep Step, Predict and Update
// interchangeable call-for-call: a stream driven through Step must leave
// the predictor in the same state, and produce the same predictions, as
// the same stream driven through Predict+Update (the differential test in
// internal/sim enforces this for every registered predictor).
type Stepper interface {
	// Step predicts the branch at pc, trains with the resolved outcome and
	// advances history, returning the prediction made before training.
	Step(pc uint64, taken bool) bool
}

// BatchRunner is the optional whole-trace capability: a predictor that
// runs an entire record slice in one fully inlined loop, touching its
// tables directly instead of through per-branch method calls. RunBatch
// must be observationally identical to calling Step (equivalently
// Predict+Update) on every record in order and counting mispredictions.
type BatchRunner interface {
	// RunBatch simulates every record in order and returns the number of
	// wrong direction predictions.
	RunBatch(recs []trace.Record) (mispredicts int)
}

// Snapshotter is the optional checkpoint capability: a predictor that can
// serialize its complete mutable state (counter tables and history
// registers) and later restore it into an identically configured
// instance. The suite checkpoint/resume machinery in internal/sim uses it
// to persist in-flight cells, so the contract is strict: after
// RestoreSnapshot(Snapshot(nil)) the predictor must be Step-for-Step
// indistinguishable from the instance that was snapshotted, for any
// subsequent stream (the property test in internal/sim enforces this for
// every implementation in the repository).
//
// Snapshots encode only mutable state, not configuration: restoring is
// defined only into a predictor built with the same constructor
// parameters. Implementations must validate what they can (type tag,
// table widths and lengths, counter ranges) and reject anything else with
// an error, never panic, since snapshot bytes come from checkpoint files.
type Snapshotter interface {
	// Snapshot appends the predictor's mutable state to dst and returns
	// the extended slice (append-style; dst may be nil).
	Snapshot(dst []byte) []byte

	// RestoreSnapshot replaces the predictor's mutable state with a
	// previously captured snapshot. On error the predictor's state is
	// unspecified; callers should Reset or discard it.
	RestoreSnapshot(data []byte) error
}

// Indexed is implemented by predictors whose prediction comes from a
// single identifiable counter in a second-level table. The Section 4
// analysis uses it to attribute each dynamic branch to the counter it
// exercised, building the per-counter substream statistics behind
// Figures 5-8 and Tables 3-4.
type Indexed interface {
	// CounterID returns a stable identifier of the counter that
	// Predict(pc) would consult right now (before Update). Identifiers
	// must be dense in [0, NumCounters()).
	CounterID(pc uint64) int

	// NumCounters returns the number of distinct counter identifiers.
	NumCounters() int
}

// Func adapts a pair of functions to the Predictor interface; used by
// tests and by the static predictors.
type Func struct {
	NameStr   string
	PredictFn func(pc uint64) bool
	UpdateFn  func(pc uint64, taken bool)
	ResetFn   func()
	Cost      int
}

// Name implements Predictor.
func (f *Func) Name() string { return f.NameStr }

// Predict implements Predictor.
func (f *Func) Predict(pc uint64) bool { return f.PredictFn(pc) }

// Update implements Predictor.
func (f *Func) Update(pc uint64, taken bool) {
	if f.UpdateFn != nil {
		f.UpdateFn(pc, taken)
	}
}

// Reset implements Predictor.
func (f *Func) Reset() {
	if f.ResetFn != nil {
		f.ResetFn()
	}
}

// CostBits implements Predictor.
func (f *Func) CostBits() int { return f.Cost }
