package predictor

// Lookup describes the internal decision path of one prediction: which
// second-level counter the predictor is about to consult and, for schemes
// with a steering structure (bi-mode's choice predictor, tri-mode's
// confidence counter, agree's bias bit), which way that structure voted.
// It is the per-branch sample the observability tier in internal/sim
// aggregates into a Report.
type Lookup struct {
	// CounterID is the dense identifier of the direction counter
	// Predict(pc) would consult right now, in [0, Indexed.NumCounters()),
	// or -1 when the predictor has no identifiable counter.
	CounterID int
	// Bank is the predictor-specific bank the lookup selects (bi-mode:
	// core.BankNotTaken/BankTaken; tri-mode adds the WB bank; gshare: the
	// PHT number the address bits select), or -1 for single-table schemes.
	Bank int
	// ChoiceTaken is the direction the steering structure voted; only
	// meaningful when HasChoice is true.
	ChoiceTaken bool
	// HasChoice reports whether the predictor has a steering structure
	// whose vote ChoiceTaken carries.
	HasChoice bool
}

// Probe is the optional observability capability, the introspective rung
// of the same ladder Stepper and BatchRunner form for speed: a predictor
// that can describe, BEFORE Update, the internal decision path the next
// Predict(pc) would take. ProbeLookup must be read-only — it must not
// touch counters or history — so instrumented and uninstrumented runs of
// the same stream leave the predictor in identical states.
type Probe interface {
	// ProbeLookup reports the decision path Predict(pc) would take now.
	ProbeLookup(pc uint64) Lookup
}

// LookupOf returns the observation function for p: ProbeLookup when p
// implements Probe, a fallback derived from Indexed when it only exposes
// counter indices, and nil when the predictor exposes nothing. The nil
// return is the cost-free default: predictors opt in per capability, and
// the uninstrumented simulation tiers never call this at all.
func LookupOf(p Predictor) func(pc uint64) Lookup {
	if pr, ok := p.(Probe); ok {
		return pr.ProbeLookup
	}
	if ix, ok := p.(Indexed); ok {
		return func(pc uint64) Lookup {
			return Lookup{CounterID: ix.CounterID(pc), Bank: -1}
		}
	}
	return nil
}
