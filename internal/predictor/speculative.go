package predictor

// SpeculativeHistory is implemented by predictors whose global history
// register can be managed speculatively, the way real front ends do it:
// the predicted direction is shifted into the history immediately at
// predict time (so back-to-back predictions see up-to-date history), a
// checkpoint is taken per branch, and on a misprediction the history is
// restored from the checkpoint and corrected.
//
// Predictors implementing this interface can be driven by
// sim.RunSpeculative, which separates history management from counter
// training: counters still train at resolution, but the history register
// is maintained speculatively with repair.
type SpeculativeHistory interface {
	// HistoryValue returns the current history register contents.
	HistoryValue() uint64
	// SetHistory forces the history register contents (used to restore a
	// checkpoint during repair).
	SetHistory(v uint64)
	// PushHistory shifts one outcome into the history register without
	// touching any counters.
	PushHistory(taken bool)
	// UpdateCounters trains the prediction counters for the branch at pc
	// with the resolved outcome, indexing with the supplied history
	// snapshot (the history the prediction used), WITHOUT advancing the
	// history register — the speculative driver owns the register.
	UpdateCounters(pc uint64, history uint64, taken bool)
}
