package predictor

import "testing"

func TestFuncAdapter(t *testing.T) {
	calls := 0
	resets := 0
	f := &Func{
		NameStr:   "probe",
		PredictFn: func(pc uint64) bool { return pc&4 != 0 },
		UpdateFn:  func(uint64, bool) { calls++ },
		ResetFn:   func() { resets++ },
		Cost:      12,
	}
	if f.Name() != "probe" || f.CostBits() != 12 {
		t.Fatalf("metadata wrong")
	}
	if f.Predict(0x4) != true || f.Predict(0x8) != false {
		t.Fatalf("predict fn not used")
	}
	f.Update(0, true)
	f.Reset()
	if calls != 1 || resets != 1 {
		t.Fatalf("hooks not invoked")
	}
}

func TestFuncAdapterNilHooks(t *testing.T) {
	f := &Func{NameStr: "bare", PredictFn: func(uint64) bool { return true }}
	f.Update(0, true) // must not panic
	f.Reset()         // must not panic
}

func TestCostBytes(t *testing.T) {
	f := &Func{NameStr: "c", PredictFn: func(uint64) bool { return true }, Cost: 20}
	if CostBytes(f) != 2.5 {
		t.Fatalf("CostBytes = %v, want 2.5", CostBytes(f))
	}
}
