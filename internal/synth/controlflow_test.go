package synth

import (
	"testing"

	"bimode/internal/trace"
)

func cfWorkload() *Workload {
	p, _ := ProfileByName("perl")
	return MustWorkload(p.WithDynamic(40000))
}

func TestControlFlowDeterminism(t *testing.T) {
	w := cfWorkload()
	s1, s2 := w.ControlFlow(), w.ControlFlow()
	for i := 0; ; i++ {
		r1, ok1 := s1.Next()
		r2, ok2 := s2.Next()
		if ok1 != ok2 {
			t.Fatalf("length mismatch at %d", i)
		}
		if !ok1 {
			break
		}
		if r1 != r2 {
			t.Fatalf("divergence at %d: %+v vs %+v", i, r1, r2)
		}
	}
}

func TestControlFlowBudgetAndKinds(t *testing.T) {
	w := cfWorkload()
	st := w.ControlFlow()
	counts := map[trace.Kind]int{}
	n := 0
	for {
		r, ok := st.Next()
		if !ok {
			break
		}
		n++
		counts[r.Kind]++
		if r.PC&(1<<63) != 0 {
			t.Fatalf("control-flow PCs must not carry the backward bit")
		}
		if r.Kind != trace.KindBranch && !r.Taken {
			t.Fatalf("unconditional transfers are always taken")
		}
		if r.Target == 0 {
			t.Fatalf("every transfer needs a target")
		}
	}
	if n != 40000 {
		t.Fatalf("events = %d, want 40000", n)
	}
	if counts[trace.KindBranch] < n/2 {
		t.Fatalf("conditional branches should dominate: %v", counts)
	}
	for _, k := range []trace.Kind{trace.KindCall, trace.KindReturn, trace.KindJump} {
		if counts[k] == 0 {
			t.Fatalf("kind %v missing from the stream: %v", k, counts)
		}
	}
}

// TestControlFlowCallReturnDiscipline: every return's target must equal
// the return address of the most recent unmatched call (PC+4), i.e. a
// sufficiently deep RAS would be perfect.
func TestControlFlowCallReturnDiscipline(t *testing.T) {
	w := cfWorkload()
	st := w.ControlFlow()
	var stack []uint64
	returns, matched := 0, 0
	for {
		r, ok := st.Next()
		if !ok {
			break
		}
		switch r.Kind {
		case trace.KindCall, trace.KindIndirectCall:
			stack = append(stack, r.PC+4)
		case trace.KindReturn:
			returns++
			if len(stack) == 0 {
				t.Fatalf("return without a pending call")
			}
			want := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if r.Target == want {
				matched++
			}
		}
	}
	if returns == 0 {
		t.Fatalf("no returns in the stream")
	}
	if matched != returns {
		t.Fatalf("%d of %d returns mismatched their call", returns-matched, returns)
	}
}

// TestControlFlowLoopTargetsBackward: loop back-edges must target lower
// addresses; other conditionals target forward.
func TestControlFlowLoopTargetsBackward(t *testing.T) {
	p, _ := ProfileByName("perl")
	p = p.WithDynamic(20000)
	rng := NewRNG(p.Seed)
	sites, _ := buildProgram(p, rng)
	isLoop := make(map[uint32]bool, len(sites))
	for _, s := range sites {
		isLoop[s.static] = s.isLoop
	}
	st := MustWorkload(p).ControlFlow()
	for {
		r, ok := st.Next()
		if !ok {
			break
		}
		if r.Kind != trace.KindBranch {
			continue
		}
		if int(r.Static) >= len(sites) {
			t.Fatalf("branch static %d out of site range", r.Static)
		}
		if isLoop[r.Static] {
			if r.Target >= r.PC {
				t.Fatalf("loop site %d target %x not backward of %x", r.Static, r.Target, r.PC)
			}
		} else if r.Target <= r.PC {
			t.Fatalf("forward branch %d target %x not forward of %x", r.Static, r.Target, r.PC)
		}
	}
}

// TestControlFlowStackBounded: call depth must respect the generator's
// bound.
func TestControlFlowStackBounded(t *testing.T) {
	w := cfWorkload()
	st := w.ControlFlow()
	depth, maxDepth := 0, 0
	for {
		r, ok := st.Next()
		if !ok {
			break
		}
		switch r.Kind {
		case trace.KindCall, trace.KindIndirectCall:
			depth++
			if depth > maxDepth {
				maxDepth = depth
			}
		case trace.KindReturn:
			depth--
		}
	}
	if maxDepth > cfMaxDepth {
		t.Fatalf("call depth %d exceeded bound %d", maxDepth, cfMaxDepth)
	}
	if maxDepth < 2 {
		t.Fatalf("call nesting too shallow to exercise a RAS: %d", maxDepth)
	}
}
